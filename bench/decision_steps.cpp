// Experiment E3: rule interpretations per routing decision.
//
// Paper (Section 5): "While NAFTA in the fault-free case proceeds with one
// step and in the worst case needs three, ROUTE_C always needs two steps.
// ... The non-fault-tolerant routing algorithm NARA and a stripped down
// variant of ROUTE_C can be implemented with only one interpretation per
// message."
//
// Measured two ways: (a) static — route() over every (src, dest) pair and
// fault situation, reporting min/avg/max steps; (b) dynamic — full
// simulations reporting the average interpretations per decision under
// uniform traffic.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "routing/route_c.hpp"

namespace {

using namespace flexrouter;

struct StepStats {
  int min = 1 << 30, max = 0;
  double sum = 0;
  std::int64_t n = 0;
  void add(int s) {
    min = std::min(min, s);
    max = std::max(max, s);
    sum += s;
    ++n;
  }
  std::string row() const {
    std::ostringstream os;
    os << min << " / " << bench::fmt(sum / static_cast<double>(n)) << " / "
       << max;
    return os.str();
  }
};

StepStats static_steps(const Topology& topo, const RoutingAlgorithm& algo) {
  StepStats st;
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (NodeId t = 0; t < topo.num_nodes(); ++t) {
      if (s == t) continue;
      RouteContext ctx;
      ctx.node = s;
      ctx.dest = t;
      ctx.src = s;
      ctx.in_port = topo.degree();
      ctx.in_vc = 0;
      st.add(algo.route(ctx).steps);
    }
  }
  return st;
}

}  // namespace

int main() {
  bench::print_header(
      "E3 — rule interpretations per routing decision (min / avg / max)");
  bench::print_row({"algorithm", "situation", "paper", "measured"}, 22);

  {  // NARA — always one.
    Mesh m = Mesh::two_d(8, 8);
    FaultSet f(m);
    Nara nara;
    nara.attach(m, f);
    bench::print_row({"NARA", "fault-free", "1", static_steps(m, nara).row()},
                     22);
  }
  {  // NAFTA fault-free / with faults / worst case.
    Mesh m = Mesh::two_d(8, 8);
    FaultSet f(m);
    Nafta nafta;
    nafta.attach(m, f);
    bench::print_row(
        {"NAFTA", "fault-free", "1", static_steps(m, nafta).row()}, 22);
    Rng rng(1);
    inject_random_link_faults(f, 6, rng);
    nafta.reconfigure();
    bench::print_row(
        {"NAFTA", "6 link faults", "2..3", static_steps(m, nafta).row()}, 22);
    // Worst case: all minimal links of some source broken.
    FaultSet f2(m);
    Nafta nafta2;
    nafta2.attach(m, f2);
    f2.fail_link(m.at(0, 0), port_of(Compass::East));
    nafta2.reconfigure();
    RouteContext ctx;
    ctx.node = m.at(0, 0);
    ctx.dest = m.at(3, 0);
    ctx.src = ctx.node;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    bench::print_row({"NAFTA", "blocked minimal (worst)", "3",
                      std::to_string(nafta2.route(ctx).steps)},
                     22);
  }
  {  // ROUTE_C — always two; stripped — one.
    Hypercube h(6);
    FaultSet f(h);
    RouteC rc;
    rc.attach(h, f);
    bench::print_row(
        {"ROUTE_C", "fault-free", "2", static_steps(h, rc).row()}, 22);
    Rng rng(2);
    inject_random_node_faults(f, 3, rng);
    rc.reconfigure();
    bench::print_row(
        {"ROUTE_C", "3 node faults", "2", static_steps(h, rc).row()}, 22);
    FaultSet f2(h);
    StrippedRouteC nft;
    nft.attach(h, f2);
    bench::print_row(
        {"ROUTE_C nft", "fault-free", "1", static_steps(h, nft).row()}, 22);
  }

  bench::print_header(
      "E3 (dynamic) — average interpretations per decision under uniform "
      "traffic");
  bench::print_row({"algorithm", "faults", "paper", "avg steps"}, 22);
  {
    Mesh m = Mesh::two_d(8, 8);
    UniformTraffic tr(m);
    Nara nara;
    auto r = bench::run_point(m, nara, tr, 0.05, 4, 1);
    bench::print_row({"NARA", "0", "1", bench::fmt(r.avg_decision_steps)},
                     22);
    Nafta nafta0;
    r = bench::run_point(m, nafta0, tr, 0.05, 4, 1);
    bench::print_row({"NAFTA", "0", "1", bench::fmt(r.avg_decision_steps)},
                     22);
    for (const int k : {2, 6, 10}) {
      Nafta nafta;
      Rng rng(static_cast<std::uint64_t>(k));
      r = bench::run_point(m, nafta, tr, 0.05, 4, 1, [&](FaultSet& f) {
        inject_random_link_faults(f, k, rng);
      });
      bench::print_row({"NAFTA", std::to_string(k), "2..3",
                        bench::fmt(r.avg_decision_steps)},
                       22);
    }
  }
  {
    Hypercube h(5);
    UniformTraffic tr(h);
    StrippedRouteC nft;
    auto r = bench::run_point(h, nft, tr, 0.05, 4, 1);
    bench::print_row(
        {"ROUTE_C nft", "0", "1", bench::fmt(r.avg_decision_steps)}, 22);
    for (const int k : {0, 2, 4}) {
      RouteC rc;
      Rng rng(static_cast<std::uint64_t>(k) + 7);
      r = bench::run_point(h, rc, tr, 0.05, 4, 1, [&](FaultSet& f) {
        inject_random_node_faults(f, k, rng);
      });
      bench::print_row({"ROUTE_C", std::to_string(k), "2",
                        bench::fmt(r.avg_decision_steps)},
                       22);
    }
  }
  return 0;
}
