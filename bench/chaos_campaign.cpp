// Chaos-campaign engine — availability SLO distributions under fault
// storms beyond fail-stop.
//
// Thousands of seeded fault patterns per (algorithm x topology x regime)
// are fanned out on the SweepRunner and aggregated into a scorecard that
// ranks all registered routing algorithms per fault regime. Five regimes:
//
//   fail_stop  one or two random fail-stop link kills (the PR 5 baseline)
//   repair     a link dies, then comes back and must be re-adopted
//   flap       an intermittent link with seeded on/off duty cycles
//   failslow   random links throttled to a fraction of their bandwidth
//              (no recovery window — the pure degraded-service regime)
//   storm      a correlated regional kill: a 2-node block on grids, a
//              1-subcube on hypercubes
//
// Hard invariants, checked on EVERY replica:
//   - accounting identity: delivered + unrecoverable == injected and
//     lost == retransmitted + unrecoverable (nothing vanishes),
//   - no watchdog abort: deadlock_suspected must be false — structured
//     recovery has to converge even for non-fault-tolerant algorithms.
//
// The scorecard (availability mean/p50/min, recovery-time p50/p99/max from
// the pooled per-event samples, worst blocked chain) must serialise to a
// byte-identical JSON at 1, 2, 4 and 8 sweep worker threads.
//
// Usage:
//   ./chaos_campaign                 # full campaign (nightly CI)
//   ./chaos_campaign --smoke        # small pattern counts for PR CI
//   ./chaos_campaign --patterns N   # override patterns per cell
//   ./chaos_campaign --json FILE    # write the scorecard
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "common/alloc_counter.hpp"
#include "common/rng.hpp"
#include "routing/nafta.hpp"
#include "topology/graph_algo.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

namespace {

using namespace flexrouter;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

enum class Regime { FailStop, Repair, Flap, FailSlow, Storm };
constexpr Regime kRegimes[] = {Regime::FailStop, Regime::Repair, Regime::Flap,
                               Regime::FailSlow, Regime::Storm};
const char* regime_name(Regime r) {
  switch (r) {
    case Regime::FailStop: return "fail_stop";
    case Regime::Repair: return "repair";
    case Regime::Flap: return "flap";
    case Regime::FailSlow: return "failslow";
    case Regime::Storm: return "storm";
  }
  return "?";
}

/// Each algorithm runs on its native topology (16 nodes everywhere so the
/// regimes are comparable): hypercube algorithms on the 4-cube, the torus
/// router on a 4x4 torus, everything else on a 4x4 mesh.
std::unique_ptr<Topology> make_topology(const std::string& algo) {
  if (algo == "ecube" || algo == "route_c" || algo == "route_c_nft")
    return std::make_unique<Hypercube>(4);
  if (algo == "dor-torus")
    return std::make_unique<Torus>(std::vector<int>{4, 4});
  return std::make_unique<Mesh>(std::vector<int>{4, 4});
}

/// One seeded fault pattern. All randomness comes from a SplitMix64 stream
/// derived from the replica seed and a per-regime salt, so a pattern is
/// fully determined by (regime, topology, seed) and replicas of a parallel
/// sweep carry identical schedules.
FaultSchedule build_schedule(Regime reg, const Topology& topo, Cycle warmup,
                             Cycle measure, std::uint64_t seed) {
  FaultSchedule s;
  SplitMix64 sm(seed ^ (0x9d5c0c5bULL + static_cast<std::uint64_t>(reg)));
  const std::vector<LinkRef> links = topo.undirected_links();
  const auto rand_link = [&] {
    return links[sm.next_below(static_cast<std::uint64_t>(links.size()))];
  };
  const auto rand_cycle = [&] {
    // Somewhere in the middle half of the measurement window, so damage
    // lands under measured traffic and recovery can finish inside the run.
    return warmup + measure / 4 +
           static_cast<Cycle>(
               sm.next_below(static_cast<std::uint64_t>(measure / 2)));
  };
  switch (reg) {
    case Regime::FailStop: {
      const int kills = 1 + static_cast<int>(sm.next_below(2));
      for (int i = 0; i < kills; ++i) {
        const LinkRef l = rand_link();
        s.fail_link_at(rand_cycle(), l.node, l.port);
      }
      break;
    }
    case Regime::Repair: {
      const LinkRef l = rand_link();
      s.fail_link_at(warmup + measure / 4, l.node, l.port);
      s.repair_link_at(warmup + (3 * measure) / 4, l.node, l.port);
      break;
    }
    case Regime::Flap: {
      const LinkRef l = rand_link();
      s.add_flapping_link(l.node, l.port, warmup + measure / 4,
                          warmup + measure, static_cast<double>(measure) / 10,
                          static_cast<double>(measure) / 5, sm.next());
      break;
    }
    case Regime::FailSlow: {
      const int slows = 1 + static_cast<int>(sm.next_below(3));
      for (int i = 0; i < slows; ++i) {
        const LinkRef l = rand_link();
        const int factor = 4 + static_cast<int>(sm.next_below(13));
        s.degrade_link_at(rand_cycle(), l.node, l.port, factor);
      }
      break;
    }
    case Regime::Storm: {
      const Cycle at = warmup + measure / 4;
      if (const auto* cube = dynamic_cast<const Hypercube*>(&topo)) {
        // 1-subcube: fix all but one address bit — two correlated kills.
        const auto all =
            (std::uint64_t{1} << static_cast<unsigned>(cube->dimension())) -
            1;
        const std::uint64_t free_bit =
            std::uint64_t{1} << sm.next_below(
                static_cast<std::uint64_t>(cube->dimension()));
        const std::uint64_t mask = all ^ free_bit;
        s.add_subcube_storm(topo, at, mask, sm.next() & mask);
      } else {
        // 2x1 block at a random grid position (Mesh or Torus).
        const int x = static_cast<int>(sm.next_below(3));
        const int y = static_cast<int>(sm.next_below(4));
        s.add_region_storm(topo, at, {x, y}, {x + 1, y});
      }
      break;
    }
  }
  return s;
}

SimResult run_point(const std::string& algo_name, Regime reg, Cycle warmup,
                    Cycle measure, std::uint64_t seed) {
  const std::unique_ptr<Topology> topo = make_topology(algo_name);
  const std::unique_ptr<RoutingAlgorithm> algo = make_algorithm(algo_name);
  UniformTraffic tr(*topo);
  Network net(*topo, *algo);
  SimConfig cfg;
  cfg.injection_rate = 0.06;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  // Campaign tuning: a tight watchdog window lets structured recovery kill
  // wedged worms quickly (non-fault-tolerant algorithms produce many under
  // storms), and a generous drain budget fits all those kill rounds.
  cfg.watchdog_window = 150;
  cfg.drain_limit = 200000;
  cfg.seed = seed;
  Simulator sim(net, tr, cfg);
  sim.set_fault_schedule(build_schedule(reg, *topo, warmup, measure, seed));
  return sim.run();
}

/// Per-(algorithm x regime) aggregate. Every accumulation walks the sweep
/// results in point order, so the stats are bit-identical whatever thread
/// count produced them.
struct Cell {
  std::string algo;
  int patterns = 0;
  std::vector<double> avails;
  std::vector<Cycle> recovery;  // pooled per-event samples
  std::int64_t injected = 0, delivered = 0, unrecoverable = 0, lost = 0;
  std::int64_t retransmitted = 0;
  int repair_events = 0, degrade_events = 0, worms_killed = 0;
  int deadlocks = 0, accounting_violations = 0;
  std::size_t worst_blocked_chain = 0;
  double p99_latency_sum = 0.0;

  void absorb(const SimResult& r) {
    ++patterns;
    avails.push_back(r.availability);
    recovery.insert(recovery.end(), r.recovery_durations.begin(),
                    r.recovery_durations.end());
    injected += r.injected_packets;
    delivered += r.delivered_packets;
    unrecoverable += r.packets_unrecoverable;
    lost += r.packets_lost;
    retransmitted += r.packets_retransmitted;
    repair_events += r.repair_events;
    degrade_events += r.degrade_events;
    worms_killed += r.worms_killed;
    if (r.deadlock_suspected) ++deadlocks;
    if (r.delivered_packets + r.packets_unrecoverable != r.injected_packets ||
        r.packets_lost !=
            r.packets_retransmitted + r.packets_unrecoverable)
      ++accounting_violations;
    worst_blocked_chain = std::max(worst_blocked_chain,
                                   r.blocked_chain.size());
    p99_latency_sum += r.p99_latency;
  }

  double avail_mean() const {
    double sum = 0.0;
    for (const double a : avails) sum += a;
    return patterns > 0 ? sum / patterns : 1.0;
  }
  double avail_quantile(double q) const {
    if (avails.empty()) return 1.0;
    std::vector<double> v = avails;
    std::sort(v.begin(), v.end());
    const auto idx = std::min(
        v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(
                                                       v.size())));
    return v[idx];
  }
  double avail_min() const {
    double m = 1.0;
    for (const double a : avails) m = std::min(m, a);
    return m;
  }
  Cycle recovery_quantile(double q) const {
    if (recovery.empty()) return 0;
    std::vector<Cycle> v = recovery;
    std::sort(v.begin(), v.end());
    const auto idx = std::min(
        v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(
                                                       v.size())));
    return v[idx];
  }
  Cycle recovery_max() const {
    Cycle m = 0;
    for (const Cycle c : recovery) m = std::max(m, c);
    return m;
  }
  double p99_latency_mean() const {
    return patterns > 0 ? p99_latency_sum / patterns : 0.0;
  }
};

/// Ranking inside a regime: highest mean availability first; ties (the
/// failslow regime gates nothing, so every algorithm sits at 1.0) break on
/// mean p99 latency, then on name, so the order is total and
/// deterministic.
bool ranks_before(const Cell& a, const Cell& b) {
  if (a.avail_mean() != b.avail_mean()) return a.avail_mean() > b.avail_mean();
  if (a.p99_latency_mean() != b.p99_latency_mean())
    return a.p99_latency_mean() < b.p99_latency_mean();
  return a.algo < b.algo;
}

/// Serialise the full scorecard. The byte string is the bit-identity
/// artifact: campaigns at different thread counts must produce the same
/// bytes, and nightly CI archives it for cross-PR diffing.
std::string scorecard_json(
    const std::vector<std::vector<Cell>>& cells_by_regime, int patterns,
    bool smoke) {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"smoke\": " << (smoke ? "true" : "false")
     << ",\n  \"patterns_per_cell\": " << patterns << ",\n  \"regimes\": [\n";
  for (std::size_t ri = 0; ri < cells_by_regime.size(); ++ri) {
    std::vector<Cell> ranked = cells_by_regime[ri];
    std::sort(ranked.begin(), ranked.end(), ranks_before);
    os << "    {\"regime\": \"" << regime_name(kRegimes[ri])
       << "\", \"ranking\": [\n";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      const Cell& c = ranked[i];
      os << "      {\"algorithm\": \"" << c.algo << "\""
         << ", \"availability_mean\": " << c.avail_mean()
         << ", \"availability_p50\": " << c.avail_quantile(0.50)
         << ", \"availability_min\": " << c.avail_min()
         << ", \"recovery_p50\": " << c.recovery_quantile(0.50)
         << ", \"recovery_p99\": " << c.recovery_quantile(0.99)
         << ", \"recovery_max\": " << c.recovery_max()
         << ", \"worst_blocked_chain\": " << c.worst_blocked_chain
         << ", \"p99_latency_mean\": " << c.p99_latency_mean()
         << ", \"injected\": " << c.injected
         << ", \"delivered\": " << c.delivered
         << ", \"unrecoverable\": " << c.unrecoverable
         << ", \"lost\": " << c.lost
         << ", \"retransmitted\": " << c.retransmitted
         << ", \"repair_events\": " << c.repair_events
         << ", \"degrade_events\": " << c.degrade_events
         << ", \"worms_killed\": " << c.worms_killed
         << ", \"deadlocks\": " << c.deadlocks << "}"
         << (i + 1 < ranked.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (ri + 1 < cells_by_regime.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

/// Zero-allocation steady state across the full chaos lifecycle: degrade,
/// live kill + drain + commit, repair + drain + commit — then the network
/// must run off the pre-reserved pools again.
bool run_alloc_guard() {
  Mesh m = Mesh::two_d(8, 8);
  Nafta algo;
  UniformTraffic tr(m);
  NetworkConfig ncfg;
  ncfg.expected_packets = 16384;
  Network net(m, algo, ncfg);
  std::vector<int> comp = components(net.faults());
  Rng rng(42);
  Cycle now = 0;
  const double packet_prob = 0.10 / 4.0;
  const auto inject = [&] {
    for (NodeId s = 0; s < m.num_nodes(); ++s) {
      if (!net.faults().node_ok(s)) continue;
      if (!rng.next_bool(packet_prob)) continue;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId cand = tr.dest(s, rng);
        if (cand == s) continue;
        if (comp[static_cast<std::size_t>(cand)] ==
            comp[static_cast<std::size_t>(s)]) {
          net.send(s, cand, 4, now);
          break;
        }
      }
    }
  };
  // Hand-driven equivalent of the Simulator's drain watchdog: a worm whose
  // only candidates cross dead hardware wedges against the stale routing
  // tables, so a stalled window gets the same structured victim kill
  // (lowest packet id in the blocked wait-for chain).
  const auto drain_and_commit = [&]() -> bool {
    std::int64_t last_moved = net.total_flit_movements();
    Cycle stall = 0;
    for (int c = 0; c < 20000 && !net.idle(); ++c) {
      net.step(now++);
      const std::int64_t moved = net.total_flit_movements();
      if (moved != last_moved) {
        last_moved = moved;
        stall = 0;
        continue;
      }
      if (++stall > 200) {
        PacketId victim = -1;
        for (const Network::BlockedChannel& ch : net.blocked_chain()) {
          if (ch.packet < 0) continue;
          const PacketRecord& rec = net.record(ch.packet);
          if (rec.done() || rec.lost) continue;
          if (victim < 0 || ch.packet < victim) victim = ch.packet;
        }
        if (victim >= 0) net.kill_packet(victim);
        stall = 0;
      }
    }
    if (!net.idle()) return false;
    net.commit_pending_faults();
    comp = components(net.faults());
    return true;
  };
  for (int c = 0; c < 300; ++c) {
    inject();
    net.step(now++);
  }
  // Live kill with its quiescent commit first (hand-driven drains have no
  // watchdog, so the kill runs from the proven healthy-table state), then
  // the fail-slow throttle (applied live, no drain needed — and once the
  // tables know the dead link, a throttled link only delays worms, it
  // cannot wedge them), then the repair with its own commit.
  net.kill_link_live(m.at(3, 3), port_of(Compass::East));
  if (!drain_and_commit()) {
    std::cerr << "alloc guard: network failed to drain after live kill\n";
    return false;
  }
  net.degrade_link_live(m.at(5, 5), port_of(Compass::East), 4);
  for (int c = 0; c < 300; ++c) {
    inject();
    net.step(now++);
  }
  if (!net.repair_link_live(m.at(3, 3), port_of(Compass::East))) {
    std::cerr << "alloc guard: repair of the killed link did not queue\n";
    return false;
  }
  if (!drain_and_commit()) {
    std::cerr << "alloc guard: network failed to drain before repair\n";
    return false;
  }
  for (int c = 0; c < 400; ++c) {  // regrow pools to the new steady state
    inject();
    net.step(now++);
  }
  int clean = 0;
  for (int window = 0; window < 30 && clean < 3; ++window) {
    const std::int64_t before = heap_alloc_count();
    for (int c = 0; c < 100; ++c) {
      inject();
      net.step(now++);
    }
    const std::int64_t grew = heap_alloc_count() - before;
    clean = grew == 0 ? clean + 1 : 0;
  }
  if (clean < 3) {
    std::cerr << "ALLOCATION REGRESSION: post-chaos steady-state cycles "
                 "still allocate\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexrouter;
  bool smoke = false;
  int patterns = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    if (std::strcmp(argv[i], "--patterns") == 0 && i + 1 < argc)
      patterns = std::atoi(argv[++i]);
  }
  if (patterns <= 0) patterns = smoke ? 8 : 1000;
  const Cycle warmup = smoke ? 150 : 200;
  const Cycle measure = smoke ? 600 : 1200;

  bench::print_header("Chaos campaign — fault storms beyond fail-stop");

  if (heap_alloc_counting_enabled()) {
    if (!run_alloc_guard()) return 1;
    std::cout << "alloc guard: post-chaos steady state allocation-free\n\n";
  }

  const std::vector<std::string> algos = algorithm_names();
  const std::size_t num_regimes = std::size(kRegimes);

  // One sweep point per (regime, algorithm, pattern), flattened in that
  // order; the point's derived seed is the pattern seed.
  std::vector<SweepPoint> points;
  points.reserve(num_regimes * algos.size() *
                 static_cast<std::size_t>(patterns));
  for (std::size_t ri = 0; ri < num_regimes; ++ri) {
    const Regime reg = kRegimes[ri];
    for (const std::string& algo : algos) {
      for (int p = 0; p < patterns; ++p) {
        points.push_back({[algo, reg, warmup, measure](std::uint64_t seed) {
          return run_point(algo, reg, warmup, measure, seed);
        }});
      }
    }
  }
  std::cout << points.size() << " replicas: " << num_regimes << " regimes x "
            << algos.size() << " algorithms x " << patterns
            << " fault patterns\n\n";

  std::string reference_json;
  bench::print_row({"threads", "wall s", "scorecard"}, 12);
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.num_threads = threads;
    opts.base_seed = 1898;  // the paper's router, the campaign's seed
    SweepRunner runner(opts);
    const auto t0 = Clock::now();
    const std::vector<SimResult> results = runner.run(points);
    const double wall = seconds_since(t0);

    // Aggregate in point order (index-ordered results: thread-count
    // independent), then serialise.
    std::vector<std::vector<Cell>> cells(num_regimes);
    std::size_t idx = 0;
    int violations = 0, deadlocks = 0;
    for (std::size_t ri = 0; ri < num_regimes; ++ri) {
      cells[ri].resize(algos.size());
      for (std::size_t ai = 0; ai < algos.size(); ++ai) {
        cells[ri][ai].algo = algos[ai];
        for (int p = 0; p < patterns; ++p) cells[ri][ai].absorb(results[idx++]);
        violations += cells[ri][ai].accounting_violations;
        deadlocks += cells[ri][ai].deadlocks;
      }
    }
    const std::string json = scorecard_json(cells, patterns, smoke);
    const bool identical = reference_json.empty() || json == reference_json;
    if (reference_json.empty()) reference_json = json;
    bench::print_row({std::to_string(threads), bench::fmt(wall, 2),
                      identical ? "identical" : "DIVERGED"},
                     12);
    if (violations > 0) {
      std::cerr << "ACCOUNTING VIOLATION: " << violations
                << " replicas broke delivered + unrecoverable == injected\n";
      return 1;
    }
    if (deadlocks > 0) {
      std::cerr << "RECOVERY FAILURE: " << deadlocks
                << " replicas aborted on the watchdog\n";
      return 1;
    }
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: scorecard differs at " << threads
                << " threads\n";
      return 1;
    }

    // Print the ranking tables once (they are identical afterwards).
    if (threads == 1) {
      for (std::size_t ri = 0; ri < num_regimes; ++ri) {
        std::vector<Cell> ranked = cells[ri];
        std::sort(ranked.begin(), ranked.end(), ranks_before);
        std::cout << "\n--- regime: " << regime_name(kRegimes[ri]) << " ---\n";
        bench::print_row({"algorithm", "avail", "av p50", "av min", "rec p50",
                          "rec p99", "rec max", "chain", "unrec"},
                         10);
        for (const Cell& c : ranked) {
          bench::print_row(
              {c.algo, bench::fmt(c.avail_mean(), 4),
               bench::fmt(c.avail_quantile(0.50), 4),
               bench::fmt(c.avail_min(), 4),
               std::to_string(c.recovery_quantile(0.50)),
               std::to_string(c.recovery_quantile(0.99)),
               std::to_string(c.recovery_max()),
               std::to_string(c.worst_blocked_chain),
               std::to_string(c.unrecoverable)},
              10);
        }
      }
      std::cout << "\naccounting identity held on every replica; no watchdog "
                   "aborts\n\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << reference_json;
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
