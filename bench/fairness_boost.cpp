// Section 3, "Scheduling and Fairness": "it may be desirable to favor
// messages misrouted due to faults to compensate the double disadvantage
// of the longer path and higher loaded links."
//
// Ablation over the switch-allocation priority boost for misrouted
// messages: boost 0 (plain round-robin fairness) vs 1 vs 4. Reported: the
// latency of misrouted vs direct packets — the boost should shrink the
// misroute penalty without starving direct traffic.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"

int main() {
  using namespace flexrouter;
  Mesh m = Mesh::two_d(8, 8);
  UniformTraffic tr(m);

  bench::print_header(
      "Misroute priority boost ablation (8x8 mesh, figure-2 wall, "
      "NAFTA, uniform 0.045)");
  bench::print_row({"boost", "avg lat (all)", "lat misrouted", "lat direct",
                    "penalty x", "misrouted %"});
  // -1 actively deprioritises misrouted messages (the anti-fair strawman),
  // 0 is plain round-robin, +1 is the paper's compensation. Magnitudes
  // beyond 1 are equivalent: the boost only competes against priority 0.
  for (const int boost : {-1, 0, 1}) {
    Nafta nafta;
    NetworkConfig ncfg;
    ncfg.router.misroute_priority_boost = boost;
    Network net(m, nafta, ncfg);
    net.apply_faults([&](FaultSet& f) {
      inject_figure2_chain(f, m, 3, 6);
    });
    SimConfig cfg;
    cfg.injection_rate = 0.045;  // near the faulted network's saturation
    cfg.packet_length = 4;
    cfg.warmup_cycles = 800;
    cfg.measure_cycles = 2500;
    cfg.seed = 9;
    Simulator sim(net, tr, cfg);
    const SimResult r = sim.run();
    if (r.deadlock_suspected || r.delivered_packets != r.injected_packets) {
      std::cout << "EXPERIMENT INVALID at boost " << boost << "\n";
      return 1;
    }
    bench::print_row(
        {std::to_string(boost), bench::fmt(r.avg_latency),
         bench::fmt(r.avg_latency_misrouted), bench::fmt(r.avg_latency_direct),
         bench::fmt(r.avg_latency_misrouted /
                    std::max(1.0, r.avg_latency_direct)),
         bench::fmt(r.misrouted_fraction * 100, 1)});
  }
  std::cout
      << "\nReading: misrouted messages pay for their detour twice — longer\n"
         "paths AND contention on the shared workaround links (a 4-5x\n"
         "latency penalty here). The switch-allocation boost moves the\n"
         "penalty monotonically in the expected direction but only by a few\n"
         "percent: most of the penalty is queueing on the wall-gap links,\n"
         "which per-router arbitration cannot remove. The paper hedges the\n"
         "same way — scheduling 'is only marginally touched by faults'.\n";
  return 0;
}
