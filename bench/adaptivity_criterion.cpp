// Section 2.2's NAFTA adaptivity criterion, measured: "for wormhole-routing
// it is known how long the remainder of a message is ... This is exploited
// by using the amount of data that still has to pass a node as adaptivity
// criterion."
//
// Credit-based selection sees only free buffer slots — a 64-flit worm that
// has just grabbed an output looks as attractive as an idle one until its
// flits arrive. The assigned-data criterion knows the commitment up front.
// Bimodal traffic (mostly 2-flit packets, a few 64-flit worms) shows the
// difference.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nara.hpp"

int main() {
  using namespace flexrouter;
  Mesh m = Mesh::two_d(8, 8);
  UniformTraffic tr(m);

  bench::print_header(
      "VA adaptivity criterion: credits vs assigned-data (NARA, 8x8 mesh, "
      "bimodal 2/64-flit traffic)");
  bench::print_row({"criterion", "rate", "avg lat", "p50", "p99"});
  for (const double rate : {0.10, 0.20, 0.30}) {
    for (const bool assigned : {false, true}) {
      Nara nara;
      NetworkConfig ncfg;
      ncfg.router.adaptivity = assigned ? AdaptivityCriterion::AssignedData
                                        : AdaptivityCriterion::Credits;
      Network net(m, nara, ncfg);
      SimConfig cfg;
      cfg.injection_rate = rate;
      cfg.packet_length = 2;
      cfg.long_packet_length = 64;
      cfg.long_packet_fraction = 0.05;
      cfg.warmup_cycles = 800;
      cfg.measure_cycles = 2500;
      cfg.seed = 21;
      Simulator sim(net, tr, cfg);
      const SimResult r = sim.run();
      if (r.deadlock_suspected || r.delivered_packets != r.injected_packets) {
        std::cout << "saturated at rate " << rate << " ("
                  << (assigned ? "assigned-data" : "credits") << ")\n";
        continue;
      }
      bench::print_row({assigned ? "assigned-data" : "credits",
                        bench::fmt(rate), bench::fmt(r.avg_latency),
                        bench::fmt(r.p50_latency), bench::fmt(r.p99_latency)});
    }
    std::cout << "\n";
  }
  std::cout << "Reading: with length knowledge the router steers short\n"
               "packets away from outputs committed to long worms; the\n"
               "credit-only criterion walks them into the queue. The gap\n"
               "grows with load — the paper's argument for exploiting the\n"
               "known message remainder as the adaptivity measure.\n";
  return 0;
}
