// Rule hot-swap benchmark — live program replacement under traffic.
//
// The paper's reprogramming story: a router's rule sets can be streamed in
// while the old ones keep deciding. This bench measures what that costs at
// the system level with the AOT tier active: a complete routing-program
// swap is scheduled in the middle of the measurement window, the new image
// (parse + compile + AOT table fill) is built off the critical path, and
// the commit runs Immediate (stateless programs, between two cycles),
// Quiescent (gate injection, drain, swap, resume), or Rolling (commit
// shard by shard at barrier boundaries — no injection gate at all, only
// the per-node cycles spent waiting for the rolling front are charged).
//
// Reported per scenario: swap downtime (cycles injection was gated by the
// drain), gated node-cycles (the rolling currency), post-swap throughput,
// and the accounting identity
//     delivered + unrecoverable == injected
// (a swap must not lose packets).
//
// A second section scales the same swap to the 4096-node 12-cube, where
// the AOT tier runs compressed (xor-fold dest classes): Rolling must gate
// strictly fewer node-cycles than Quiescent there, while staying
// bit-identical across 1/2/4/8 rolling commit shards.
//
// Also checked, because they are the contracts the swap must not break:
//   - an Immediate self-swap perturbs nothing: the SimResult is
//     bit-identical to the same run without the swap (modulo the swap
//     counter itself),
//   - sweep bit-identity at 1/2/4/8 worker threads with swaps armed, and
//   - the AOT table is serving again after the commit (the swapped-in
//     program was compiled all the way down, 0% fallback).
//
// Usage:
//   ./rule_hotswap              # full run
//   ./rule_hotswap --smoke      # tiny cycle counts for CI
//   ./rule_hotswap --json FILE  # also emit a JSON report
#include <cstring>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "topology/hypercube.hpp"

namespace {

using namespace flexrouter;
using rules::ExecMode;

/// Field-wise bit-identity. `swap_metrics` folds the swap counters into the
/// comparison (the thread-sweep check wants them; the self-swap-vs-no-swap
/// check excludes them — they differ by design).
bool bit_identical(const SimResult& a, const SimResult& b,
                   bool swap_metrics) {
  if (a.blocked_chain.size() != b.blocked_chain.size()) return false;
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    if (a.blocked_chain[i].node != b.blocked_chain[i].node ||
        a.blocked_chain[i].port != b.blocked_chain[i].port ||
        a.blocked_chain[i].vc != b.blocked_chain[i].vc ||
        a.blocked_chain[i].packet != b.blocked_chain[i].packet)
      return false;
  }
  if (swap_metrics &&
      (a.rule_swaps != b.rule_swaps ||
       a.swap_gated_cycles != b.swap_gated_cycles ||
       a.swap_gated_node_cycles != b.swap_gated_node_cycles))
    return false;
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.availability, &b.availability, sizeof(double)) == 0 &&
         a.packets_lost == b.packets_lost &&
         a.packets_retransmitted == b.packets_retransmitted &&
         a.packets_unrecoverable == b.packets_unrecoverable &&
         a.fault_events == b.fault_events &&
         a.recovery_events == b.recovery_events &&
         a.recovery_cycles == b.recovery_cycles &&
         a.worms_killed == b.worms_killed &&
         a.reconfig_exchanges == b.reconfig_exchanges &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

struct Scenario {
  const char* name;
  bool swap = true;  // false: the no-swap baseline for the same point
  Simulator::RuleSwapPolicy policy = Simulator::RuleSwapPolicy::Auto;
  bool self_swap = false;  // swap to the program already running
};

/// One replica: 6-cube, e-cube rules under the AOT tier, swap scheduled
/// halfway through the measurement window. The swap target is the MSB-first
/// e-cube variant — a genuinely different routing function at every
/// multi-bit premise point — unless `self_swap` re-installs the running
/// program. Returns the result plus the post-run AOT table stats so the
/// caller can assert the swapped-in image is serving.
SimResult run_swap_point(const Scenario& sc, double rate, Cycle warmup,
                         Cycle measure, std::uint64_t seed,
                         rules::AotTable::Stats* stats_out = nullptr) {
  constexpr int kDim = 6;
  Hypercube topo(kDim);
  RuleDrivenRouting algo(rulebases::ecube_route_source(kDim), 1,
                         ExecMode::Aot);
  UniformTraffic tr(topo);
  Network net(topo, algo);
  SimConfig cfg;
  cfg.injection_rate = rate;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = seed;
  Simulator sim(net, tr, cfg);
  if (sc.swap)
    sim.schedule_rule_swap(warmup + measure / 2,
                           sc.self_swap
                               ? rulebases::ecube_route_source(kDim)
                               : rulebases::ecube_msb_route_source(kDim),
                           sc.policy);
  SimResult r = sim.run();
  if (stats_out != nullptr) *stats_out = algo.aot_stats();
  return r;
}

/// The 4096-node point: 12-cube, same lsb->msb program swap, with the AOT
/// tier on the compressed (xor-fold) table — the full premise space no
/// longer fits an eager direct table at this scale. `exec_shards` is the
/// network's spatial execution sharding; the rolling commit schedule is
/// deterministic and decoupled from it (SimConfig::rolling_shards stays at
/// its default), so results must not depend on it. The injection rate is
/// lower than the 6-cube point so the large fabric stays affordable in
/// --smoke.
SimResult run_large_swap_point(Simulator::RuleSwapPolicy policy,
                               int exec_shards, Cycle warmup, Cycle measure,
                               std::uint64_t seed,
                               RuleDrivenRouting::AotTierInfo* tier_out,
                               rules::AotTable::Stats* stats_out = nullptr) {
  constexpr int kDim = 12;
  Hypercube topo(kDim);
  RuleDrivenRouting algo(rulebases::ecube_route_source(kDim), 1,
                         ExecMode::Aot);
  UniformTraffic tr(topo);
  NetworkConfig ncfg;
  ncfg.shards = exec_shards;
  Network net(topo, algo, ncfg);
  if (tier_out != nullptr) *tier_out = algo.aot_tier_info();
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = seed;
  Simulator sim(net, tr, cfg);
  sim.schedule_rule_swap(warmup + measure / 2,
                         rulebases::ecube_msb_route_source(kDim), policy);
  SimResult r = sim.run();
  if (stats_out != nullptr) *stats_out = algo.aot_stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexrouter;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const Cycle warmup = smoke ? 200 : 1000;
  const Cycle measure = smoke ? 800 : 4000;
  const double rate = 0.08;

  bench::print_header(
      "Rule hot-swap — live program replacement mid-measurement (AOT tier)");

  const Scenario scenarios[] = {
      {"no swap (baseline)", /*swap=*/false},
      {"lsb->msb, immediate", true, Simulator::RuleSwapPolicy::Auto},
      {"lsb->msb, quiescent", true, Simulator::RuleSwapPolicy::Quiescent},
      {"self-swap, immediate", true, Simulator::RuleSwapPolicy::Auto,
       /*self_swap=*/true},
      {"lsb->msb, rolling", true, Simulator::RuleSwapPolicy::Rolling},
  };
  constexpr int kScenarios = 5;

  // --- 1. swap downtime + post-swap throughput + accounting --------------
  SimResult res[kScenarios];
  bench::print_row({"scenario", "delivered", "swaps", "downtime",
                    "node-cyc", "throughput", "avail"},
                   14);
  for (int s = 0; s < kScenarios; ++s) {
    rules::AotTable::Stats st;
    res[s] = run_swap_point(scenarios[s], rate, warmup, measure, 42, &st);
    const SimResult& r = res[s];
    std::ostringstream frac;
    frac << r.delivered_packets << "/" << r.injected_packets;
    bench::print_row({scenarios[s].name, frac.str(),
                      std::to_string(r.rule_swaps),
                      std::to_string(r.swap_gated_cycles),
                      std::to_string(r.swap_gated_node_cycles),
                      bench::fmt(r.throughput, 4),
                      bench::fmt(r.availability, 4)},
                     14);
    if (r.deadlock_suspected) {
      std::cerr << "SWAP FAILURE: watchdog abort in '" << scenarios[s].name
                << "'\n";
      return 1;
    }
    if (r.rule_swaps != (scenarios[s].swap ? 1 : 0)) {
      std::cerr << "SWAP FAILURE: expected " << (scenarios[s].swap ? 1 : 0)
                << " committed swap(s) in '" << scenarios[s].name
                << "', saw " << r.rule_swaps << "\n";
      return 1;
    }
    if (r.delivered_packets + r.packets_unrecoverable != r.injected_packets) {
      std::cerr << "ACCOUNTING VIOLATION in '" << scenarios[s].name << "': "
                << r.delivered_packets << " delivered + "
                << r.packets_unrecoverable << " unrecoverable != "
                << r.injected_packets << " injected\n";
      return 1;
    }
    // The swapped-in image must be serving from its AOT table again —
    // compiled all the way down, no presentable point left to the VM.
    if (st.entries == 0 || st.fallback != 0) {
      std::cerr << "AOT REGRESSION in '" << scenarios[s].name
                << "': post-run table entries=" << st.entries
                << " fallback=" << st.fallback << "\n";
      return 1;
    }
  }

  // Downtime bounds: Immediate commits between two cycles (zero gated
  // cycles); Quiescent pays a bounded drain — it must gate something (the
  // network is loaded mid-measurement) but far less than the window.
  if (res[1].swap_gated_cycles != 0 || res[3].swap_gated_cycles != 0) {
    std::cerr << "DOWNTIME VIOLATION: immediate swap gated injection\n";
    return 1;
  }
  if (res[2].swap_gated_cycles <= 0 ||
      res[2].swap_gated_cycles >= static_cast<Cycle>(measure)) {
    std::cerr << "DOWNTIME VIOLATION: quiescent drain took "
              << res[2].swap_gated_cycles << " cycles (window " << measure
              << ")\n";
    return 1;
  }
  // Rolling never gates injection — its whole cost is node-cycles spent by
  // nodes waiting for the commit front, and that must undercut what the
  // quiescent drain charges (gated cycles x every node in the fabric).
  if (res[4].swap_gated_cycles != 0) {
    std::cerr << "DOWNTIME VIOLATION: rolling swap gated injection for "
              << res[4].swap_gated_cycles << " cycles\n";
    return 1;
  }
  const Cycle quiescent_node_cycles = res[2].swap_gated_node_cycles;
  if (res[4].swap_gated_node_cycles == 0 ||
      res[4].swap_gated_node_cycles >= quiescent_node_cycles) {
    std::cerr << "DOWNTIME VIOLATION: rolling gated "
              << res[4].swap_gated_node_cycles
              << " node-cycles, quiescent gated " << quiescent_node_cycles
              << " (rolling must gate strictly fewer, nonzero)\n";
    return 1;
  }
  std::cout << "downtime bounds: immediate = 0, quiescent drain = "
            << res[2].swap_gated_cycles << " cycles < " << measure
            << "-cycle window; rolling gated 0 cycles, "
            << res[4].swap_gated_node_cycles << " node-cycles < quiescent's "
            << quiescent_node_cycles << "\n";

  // --- 2. immediate self-swap perturbs nothing ---------------------------
  // Same seed, same traffic, same (re-installed) program: every decision
  // replays identically, so the result must match the no-swap baseline bit
  // for bit — the swap machinery itself is invisible.
  if (!bit_identical(res[3], res[0], /*swap_metrics=*/false)) {
    std::cerr << "PERTURBATION: immediate self-swap changed the result\n";
    return 1;
  }
  std::cout << "self-swap identity: immediate self-swap bit-identical to "
               "the no-swap baseline\n";

  // --- 3. sweep bit-identity with swaps armed ----------------------------
  std::vector<SweepPoint> points;
  for (int s = 0; s < kScenarios; ++s) {
    const Scenario sc = scenarios[s];
    for (const double r : {0.04, 0.08}) {
      points.push_back({[sc, r, warmup, measure](std::uint64_t seed) {
        return run_swap_point(sc, r, warmup, measure, seed);
      }});
    }
  }
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<SimResult> reference;
  std::cout << "\n";
  bench::print_row({"threads", "points", "bit-identical"}, 14);
  for (const int t : thread_counts) {
    SweepOptions opts;
    opts.num_threads = t;
    opts.base_seed = 7;
    SweepRunner runner(opts);
    const std::vector<SimResult> results = runner.run(points);
    bool identical = true;
    if (t == 1) {
      reference = results;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        identical = identical &&
                    bit_identical(results[i], reference[i],
                                  /*swap_metrics=*/true);
    }
    bench::print_row({std::to_string(t), std::to_string(points.size()),
                      identical ? "yes" : "NO"},
                     14);
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: hot-swap sweep differs at " << t
                << " threads\n";
      return 1;
    }
  }

  // --- 4. 4096-node fabric: rolling vs quiescent at scale ----------------
  // Quiescent charges every one of the 4096 nodes for the whole drain;
  // Rolling charges only the nodes still behind the commit front. At this
  // scale that gap is the whole point of the policy, so Rolling must gate
  // strictly fewer node-cycles — and produce a bit-identical SimResult at
  // every execution shard count (the commit schedule is deterministic and
  // decoupled from execution sharding).
  const Cycle lwarm = smoke ? 100 : 400;
  const Cycle lmeas = smoke ? 400 : 1600;
  RuleDrivenRouting::AotTierInfo large_tier;
  rules::AotTable::Stats large_st;
  const SimResult lq =
      run_large_swap_point(Simulator::RuleSwapPolicy::Quiescent, 1, lwarm,
                           lmeas, 91, &large_tier, &large_st);
  std::cout << "\n4096-node 12-cube, lsb->msb swap [tier "
            << RuleDrivenRouting::tier_name(large_tier.tier) << ", "
            << rules::to_string(large_tier.classifier) << ", "
            << bench::fmt(large_tier.compression_ratio, 0)
            << "x compression]\n";
  if (large_tier.tier != RuleDrivenRouting::AotTier::Compressed) {
    std::cerr << "TIER REGRESSION: 12-cube e-cube expected the compressed "
              << "tier, got "
              << RuleDrivenRouting::tier_name(large_tier.tier) << " ("
              << large_tier.reason << ")\n";
    return 1;
  }
  if (large_st.entries == 0 || large_st.fallback != 0) {
    std::cerr << "AOT REGRESSION: 12-cube post-run table entries="
              << large_st.entries << " fallback=" << large_st.fallback
              << "\n";
    return 1;
  }
  bench::print_row({"policy", "shards", "delivered", "downtime", "node-cyc",
                    "identical"},
                   14);
  std::ostringstream lq_frac;
  lq_frac << lq.delivered_packets << "/" << lq.injected_packets;
  bench::print_row({"quiescent", "-", lq_frac.str(),
                    std::to_string(lq.swap_gated_cycles),
                    std::to_string(lq.swap_gated_node_cycles), "-"},
                   14);
  SimResult lr;  // the rolling result (identical at every shard count)
  for (const int shards : {1, 2, 4, 8}) {
    const SimResult r = run_large_swap_point(
        Simulator::RuleSwapPolicy::Rolling, shards, lwarm, lmeas, 91,
        nullptr);
    const bool identical =
        shards == 1 || bit_identical(r, lr, /*swap_metrics=*/true);
    if (shards == 1) lr = r;
    std::ostringstream frac;
    frac << r.delivered_packets << "/" << r.injected_packets;
    bench::print_row({"rolling", std::to_string(shards), frac.str(),
                      std::to_string(r.swap_gated_cycles),
                      std::to_string(r.swap_gated_node_cycles),
                      shards == 1 ? "-" : (identical ? "yes" : "NO")},
                     14);
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: rolling result differs at "
                << shards << " execution shards\n";
      return 1;
    }
    if (r.rule_swaps != 1 ||
        r.delivered_packets + r.packets_unrecoverable != r.injected_packets) {
      std::cerr << "SWAP FAILURE: 12-cube rolling at " << shards
                << " shards: swaps=" << r.rule_swaps << ", accounting "
                << r.delivered_packets << "+" << r.packets_unrecoverable
                << " != " << r.injected_packets << "\n";
      return 1;
    }
  }
  if (lr.swap_gated_cycles != 0 || lr.swap_gated_node_cycles == 0 ||
      lr.swap_gated_node_cycles >= lq.swap_gated_node_cycles) {
    std::cerr << "SCALE VIOLATION: 12-cube rolling gated "
              << lr.swap_gated_cycles << " cycles / "
              << lr.swap_gated_node_cycles
              << " node-cycles vs quiescent's "
              << lq.swap_gated_node_cycles
              << " (rolling must gate 0 cycles and strictly fewer "
              << "node-cycles)\n";
    return 1;
  }
  std::cout << "scale bounds: rolling gated " << lr.swap_gated_node_cycles
            << " node-cycles vs quiescent's " << lq.swap_gated_node_cycles
            << " ("
            << bench::fmt(static_cast<double>(lq.swap_gated_node_cycles) /
                              static_cast<double>(lr.swap_gated_node_cycles),
                          1)
            << "x) on 4096 nodes\n";

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os.precision(17);
    os << "{\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"scenarios\": [\n";
    for (int s = 0; s < kScenarios; ++s) {
      const SimResult& r = res[s];
      os << "    {\"name\": \"" << scenarios[s].name
         << "\", \"injected\": " << r.injected_packets
         << ", \"delivered\": " << r.delivered_packets
         << ", \"rule_swaps\": " << r.rule_swaps
         << ", \"swap_gated_cycles\": " << r.swap_gated_cycles
         << ", \"swap_gated_node_cycles\": " << r.swap_gated_node_cycles
         << ", \"throughput\": " << r.throughput
         << ", \"availability\": " << r.availability << "}"
         << (s + 1 < kScenarios ? "," : "") << "\n";
    }
    os << "  ],\n  \"large_fabric\": {\"nodes\": 4096, \"tier\": \""
       << RuleDrivenRouting::tier_name(large_tier.tier)
       << "\", \"compression_ratio\": " << large_tier.compression_ratio
       << ", \"quiescent_gated_node_cycles\": " << lq.swap_gated_node_cycles
       << ", \"rolling_gated_node_cycles\": " << lr.swap_gated_node_cycles
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
