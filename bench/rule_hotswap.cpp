// Rule hot-swap benchmark — live program replacement under traffic.
//
// The paper's reprogramming story: a router's rule sets can be streamed in
// while the old ones keep deciding. This bench measures what that costs at
// the system level with the AOT tier active: a complete routing-program
// swap is scheduled in the middle of the measurement window, the new image
// (parse + compile + AOT table fill) is built off the critical path, and
// the commit runs either Immediate (stateless programs, between two
// cycles) or Quiescent (gate injection, drain, swap, resume).
//
// Reported per scenario: swap downtime (cycles injection was gated by the
// drain), post-swap throughput, and the accounting identity
//     delivered + unrecoverable == injected
// (a swap must not lose packets).
//
// Also checked, because they are the contracts the swap must not break:
//   - an Immediate self-swap perturbs nothing: the SimResult is
//     bit-identical to the same run without the swap (modulo the swap
//     counter itself),
//   - sweep bit-identity at 1/2/4/8 worker threads with swaps armed, and
//   - the AOT table is serving again after the commit (the swapped-in
//     program was compiled all the way down, 0% fallback).
//
// Usage:
//   ./rule_hotswap              # full run
//   ./rule_hotswap --smoke      # tiny cycle counts for CI
//   ./rule_hotswap --json FILE  # also emit a JSON report
#include <cstring>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "topology/hypercube.hpp"

namespace {

using namespace flexrouter;
using rules::ExecMode;

/// Field-wise bit-identity. `swap_metrics` folds the swap counters into the
/// comparison (the thread-sweep check wants them; the self-swap-vs-no-swap
/// check excludes them — they differ by design).
bool bit_identical(const SimResult& a, const SimResult& b,
                   bool swap_metrics) {
  if (a.blocked_chain.size() != b.blocked_chain.size()) return false;
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    if (a.blocked_chain[i].node != b.blocked_chain[i].node ||
        a.blocked_chain[i].port != b.blocked_chain[i].port ||
        a.blocked_chain[i].vc != b.blocked_chain[i].vc ||
        a.blocked_chain[i].packet != b.blocked_chain[i].packet)
      return false;
  }
  if (swap_metrics && (a.rule_swaps != b.rule_swaps ||
                       a.swap_gated_cycles != b.swap_gated_cycles))
    return false;
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.availability, &b.availability, sizeof(double)) == 0 &&
         a.packets_lost == b.packets_lost &&
         a.packets_retransmitted == b.packets_retransmitted &&
         a.packets_unrecoverable == b.packets_unrecoverable &&
         a.fault_events == b.fault_events &&
         a.recovery_events == b.recovery_events &&
         a.recovery_cycles == b.recovery_cycles &&
         a.worms_killed == b.worms_killed &&
         a.reconfig_exchanges == b.reconfig_exchanges &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

struct Scenario {
  const char* name;
  bool swap = true;  // false: the no-swap baseline for the same point
  Simulator::RuleSwapPolicy policy = Simulator::RuleSwapPolicy::Auto;
  bool self_swap = false;  // swap to the program already running
};

/// One replica: 6-cube, e-cube rules under the AOT tier, swap scheduled
/// halfway through the measurement window. The swap target is the MSB-first
/// e-cube variant — a genuinely different routing function at every
/// multi-bit premise point — unless `self_swap` re-installs the running
/// program. Returns the result plus the post-run AOT table stats so the
/// caller can assert the swapped-in image is serving.
SimResult run_swap_point(const Scenario& sc, double rate, Cycle warmup,
                         Cycle measure, std::uint64_t seed,
                         rules::AotTable::Stats* stats_out = nullptr) {
  constexpr int kDim = 6;
  Hypercube topo(kDim);
  RuleDrivenRouting algo(rulebases::ecube_route_source(kDim), 1,
                         ExecMode::Aot);
  UniformTraffic tr(topo);
  Network net(topo, algo);
  SimConfig cfg;
  cfg.injection_rate = rate;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = seed;
  Simulator sim(net, tr, cfg);
  if (sc.swap)
    sim.schedule_rule_swap(warmup + measure / 2,
                           sc.self_swap
                               ? rulebases::ecube_route_source(kDim)
                               : rulebases::ecube_msb_route_source(kDim),
                           sc.policy);
  SimResult r = sim.run();
  if (stats_out != nullptr) *stats_out = algo.aot_stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexrouter;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const Cycle warmup = smoke ? 200 : 1000;
  const Cycle measure = smoke ? 800 : 4000;
  const double rate = 0.08;

  bench::print_header(
      "Rule hot-swap — live program replacement mid-measurement (AOT tier)");

  const Scenario scenarios[] = {
      {"no swap (baseline)", /*swap=*/false},
      {"lsb->msb, immediate", true, Simulator::RuleSwapPolicy::Auto},
      {"lsb->msb, quiescent", true, Simulator::RuleSwapPolicy::Quiescent},
      {"self-swap, immediate", true, Simulator::RuleSwapPolicy::Auto,
       /*self_swap=*/true},
  };
  constexpr int kScenarios = 4;

  // --- 1. swap downtime + post-swap throughput + accounting --------------
  SimResult res[kScenarios];
  bench::print_row({"scenario", "delivered", "swaps", "downtime",
                    "throughput", "avail"},
                   14);
  for (int s = 0; s < kScenarios; ++s) {
    rules::AotTable::Stats st;
    res[s] = run_swap_point(scenarios[s], rate, warmup, measure, 42, &st);
    const SimResult& r = res[s];
    std::ostringstream frac;
    frac << r.delivered_packets << "/" << r.injected_packets;
    bench::print_row({scenarios[s].name, frac.str(),
                      std::to_string(r.rule_swaps),
                      std::to_string(r.swap_gated_cycles),
                      bench::fmt(r.throughput, 4),
                      bench::fmt(r.availability, 4)},
                     14);
    if (r.deadlock_suspected) {
      std::cerr << "SWAP FAILURE: watchdog abort in '" << scenarios[s].name
                << "'\n";
      return 1;
    }
    if (r.rule_swaps != (scenarios[s].swap ? 1 : 0)) {
      std::cerr << "SWAP FAILURE: expected " << (scenarios[s].swap ? 1 : 0)
                << " committed swap(s) in '" << scenarios[s].name
                << "', saw " << r.rule_swaps << "\n";
      return 1;
    }
    if (r.delivered_packets + r.packets_unrecoverable != r.injected_packets) {
      std::cerr << "ACCOUNTING VIOLATION in '" << scenarios[s].name << "': "
                << r.delivered_packets << " delivered + "
                << r.packets_unrecoverable << " unrecoverable != "
                << r.injected_packets << " injected\n";
      return 1;
    }
    // The swapped-in image must be serving from its AOT table again —
    // compiled all the way down, no presentable point left to the VM.
    if (st.entries == 0 || st.fallback != 0) {
      std::cerr << "AOT REGRESSION in '" << scenarios[s].name
                << "': post-run table entries=" << st.entries
                << " fallback=" << st.fallback << "\n";
      return 1;
    }
  }

  // Downtime bounds: Immediate commits between two cycles (zero gated
  // cycles); Quiescent pays a bounded drain — it must gate something (the
  // network is loaded mid-measurement) but far less than the window.
  if (res[1].swap_gated_cycles != 0 || res[3].swap_gated_cycles != 0) {
    std::cerr << "DOWNTIME VIOLATION: immediate swap gated injection\n";
    return 1;
  }
  if (res[2].swap_gated_cycles <= 0 ||
      res[2].swap_gated_cycles >= static_cast<Cycle>(measure)) {
    std::cerr << "DOWNTIME VIOLATION: quiescent drain took "
              << res[2].swap_gated_cycles << " cycles (window " << measure
              << ")\n";
    return 1;
  }
  std::cout << "downtime bounds: immediate = 0, quiescent drain = "
            << res[2].swap_gated_cycles << " cycles < " << measure
            << "-cycle window\n";

  // --- 2. immediate self-swap perturbs nothing ---------------------------
  // Same seed, same traffic, same (re-installed) program: every decision
  // replays identically, so the result must match the no-swap baseline bit
  // for bit — the swap machinery itself is invisible.
  if (!bit_identical(res[3], res[0], /*swap_metrics=*/false)) {
    std::cerr << "PERTURBATION: immediate self-swap changed the result\n";
    return 1;
  }
  std::cout << "self-swap identity: immediate self-swap bit-identical to "
               "the no-swap baseline\n";

  // --- 3. sweep bit-identity with swaps armed ----------------------------
  std::vector<SweepPoint> points;
  for (int s = 0; s < kScenarios; ++s) {
    const Scenario sc = scenarios[s];
    for (const double r : {0.04, 0.08}) {
      points.push_back({[sc, r, warmup, measure](std::uint64_t seed) {
        return run_swap_point(sc, r, warmup, measure, seed);
      }});
    }
  }
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<SimResult> reference;
  std::cout << "\n";
  bench::print_row({"threads", "points", "bit-identical"}, 14);
  for (const int t : thread_counts) {
    SweepOptions opts;
    opts.num_threads = t;
    opts.base_seed = 7;
    SweepRunner runner(opts);
    const std::vector<SimResult> results = runner.run(points);
    bool identical = true;
    if (t == 1) {
      reference = results;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        identical = identical &&
                    bit_identical(results[i], reference[i],
                                  /*swap_metrics=*/true);
    }
    bench::print_row({std::to_string(t), std::to_string(points.size()),
                      identical ? "yes" : "NO"},
                     14);
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: hot-swap sweep differs at " << t
                << " threads\n";
      return 1;
    }
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os.precision(17);
    os << "{\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"scenarios\": [\n";
    for (int s = 0; s < kScenarios; ++s) {
      const SimResult& r = res[s];
      os << "    {\"name\": \"" << scenarios[s].name
         << "\", \"injected\": " << r.injected_packets
         << ", \"delivered\": " << r.delivered_packets
         << ", \"rule_swaps\": " << r.rule_swaps
         << ", \"swap_gated_cycles\": " << r.swap_gated_cycles
         << ", \"throughput\": " << r.throughput
         << ", \"availability\": " << r.availability << "}"
         << (s + 1 < kScenarios ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
