// Experiment X2: graceful degradation — latency/throughput series under an
// increasing number of faults, for NAFTA on a mesh and ROUTE_C on a
// hypercube. The paper's motivation: a fault-tolerant network keeps
// operating (with measurable but bounded degradation) where an oblivious
// one would have to stop for system-level reconfiguration.
//
// The (faults x load) grid runs on the deterministic SweepRunner: every
// point builds its own algorithm/traffic/network replica, so the tables are
// identical to serial execution at any thread count. Seeds are pinned to
// the historical per-point values so the numbers stay comparable across
// PRs.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"
#include "routing/route_c.hpp"

int main() {
  using namespace flexrouter;
  SweepRunner runner;

  bench::print_header(
      "X2a — NAFTA on an 8x8 mesh, uniform traffic: latency vs offered load "
      "for 0/2/4/8 link faults");
  bench::print_row({"faults", "rate", "avg lat", "p99 lat", "throughput",
                    "hops/min", "misrouted %"});
  {
    Mesh m = Mesh::two_d(8, 8);
    const int fault_counts[] = {0, 2, 4, 8};
    const double rates[] = {0.02, 0.06, 0.10, 0.14, 0.18};

    std::vector<SweepPoint> points;
    for (const int k : fault_counts) {
      for (const double rate : rates) {
        points.push_back({[&m, k, rate](std::uint64_t) {
          Nafta nafta;
          UniformTraffic tr(m);
          Rng rng(static_cast<std::uint64_t>(k) * 31 + 5);
          return bench::run_point(
              m, nafta, tr, rate, 4, static_cast<std::uint64_t>(k * 100 + 1),
              k == 0 ? std::function<void(FaultSet&)>{}
                     : [&](FaultSet& f) {
                         inject_random_link_faults(f, k, rng);
                       });
        }});
      }
    }
    const std::vector<SimResult> results = runner.run(points);

    std::size_t i = 0;
    for (const int k : fault_counts) {
      for (const double rate : rates) {
        const SimResult& r = results[i++];
        bench::print_row(
            {std::to_string(k), bench::fmt(rate), bench::fmt(r.avg_latency),
             bench::fmt(r.p99_latency), bench::fmt(r.throughput, 4),
             bench::fmt(r.min_hops_ratio),
             bench::fmt(r.misrouted_fraction * 100, 1)});
        if (r.deadlock_suspected) {
          std::cout << "DEADLOCK SUSPECTED at faults=" << k
                    << " rate=" << rate << "\n";
          return 1;
        }
      }
      std::cout << "\n";
    }
  }

  bench::print_header(
      "X2b — ROUTE_C on a 32-node hypercube: 0/1/2/4 node faults");
  bench::print_row({"faults", "rate", "avg lat", "p99 lat", "throughput",
                    "hops/min", "misrouted %"});
  {
    Hypercube h(5);
    const int fault_counts[] = {0, 1, 2, 4};
    const double rates[] = {0.03, 0.08, 0.13, 0.18};

    std::vector<SweepPoint> points;
    for (const int k : fault_counts) {
      for (const double rate : rates) {
        points.push_back({[&h, k, rate](std::uint64_t) {
          RouteC rc;
          UniformTraffic tr(h);
          Rng rng(static_cast<std::uint64_t>(k) * 17 + 3);
          return bench::run_point(
              h, rc, tr, rate, 4, static_cast<std::uint64_t>(k * 100 + 2),
              k == 0 ? std::function<void(FaultSet&)>{}
                     : [&](FaultSet& f) {
                         inject_random_node_faults(f, k, rng);
                       });
        }});
      }
    }
    const std::vector<SimResult> results = runner.run(points);

    std::size_t i = 0;
    for (const int k : fault_counts) {
      for (const double rate : rates) {
        const SimResult& r = results[i++];
        bench::print_row(
            {std::to_string(k), bench::fmt(rate), bench::fmt(r.avg_latency),
             bench::fmt(r.p99_latency), bench::fmt(r.throughput, 4),
             bench::fmt(r.min_hops_ratio),
             bench::fmt(r.misrouted_fraction * 100, 1)});
        if (r.deadlock_suspected) {
          std::cout << "DEADLOCK SUSPECTED at faults=" << k
                    << " rate=" << rate << "\n";
          return 1;
        }
      }
      std::cout << "\n";
    }
  }
  std::cout << "Reading: latency rises and saturation throughput falls\n"
               "gradually with the fault count — graceful degradation — "
               "instead\nof the hard stop an oblivious network would "
               "suffer.\n";
  return 0;
}
