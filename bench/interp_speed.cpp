// Experiments F5–F7: rule interpreter speed. The paper's claim: the
// compiled rule table (RBR kernel) "allows an execution nearly as fast as a
// table-based solution", outperforming software (sequential AST)
// interpretation. Google-benchmark microbenches over the ROUTE_C
// update_state rule base, native vs rule-driven routing decisions, the
// off-line compiler itself, and a full router cycle.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/alloc_counter.hpp"
#include "routing/nafta.hpp"
#include "routing/rule_driven.hpp"
#include "topology/hypercube.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/event_manager.hpp"
#include "ruleengine/parser.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrouter;
using rules::EventManager;
using rules::ExecMode;
using rules::Value;

std::unique_ptr<EventManager> make_update_state_machine(ExecMode mode) {
  static const rules::Program prog =
      rules::parse_program(rulebases::route_c_program_source(6, 2));
  auto em = std::make_unique<EventManager>(prog, mode);
  static const rules::SymId sunsafe = prog.syms.lookup("sunsafe");
  em->set_input_provider(
      [](const std::string&, const std::vector<Value>&) {
        return Value::make_sym(sunsafe);
      });
  return em;
}

void BM_RuleFire_Interpreted(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Interpret);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_Interpreted);

void BM_RuleFire_CompiledTable(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Table);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_CompiledTable);

void BM_RuleFire_Vm(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Vm);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_Vm);

void BM_Compile_UpdateState(benchmark::State& state) {
  const rules::Program prog =
      rules::parse_program(rulebases::route_c_program_source(6, 2));
  rules::Interpreter interp(prog);
  for (auto _ : state) {
    const auto compiled =
        rules::compile_rule_base(prog, prog.rule_base("update_state"), interp);
    benchmark::DoNotOptimize(compiled.table_entries());
  }
}
BENCHMARK(BM_Compile_UpdateState);

void BM_Decision_NativeNafta(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  Rng rng(1);
  inject_random_link_faults(f, 4, rng);
  nafta.reconfigure();
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = (s + 13) % m.num_nodes();
    ctx.src = s;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    if (f.node_ok(ctx.node) && f.node_ok(ctx.dest) && ctx.node != ctx.dest) {
      const auto d = nafta.route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = (s + 1) % m.num_nodes();
  }
}
BENCHMARK(BM_Decision_NativeNafta);

void BM_Decision_RuleDrivenNara(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  RuleDrivenRouting algo(rulebases::nara_route_source(8, 8), 2,
                         ExecMode::Table);
  algo.attach(m, f);
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = (s + 13) % m.num_nodes();
    ctx.src = s;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    if (ctx.node != ctx.dest) {
      const auto d = algo.route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = (s + 1) % m.num_nodes();
  }
}
BENCHMARK(BM_Decision_RuleDrivenNara);

// ------------------------------------------------------- F7b: VM decisions
// The NAFTA-family fault-tolerant mesh program and the hypercube e-cube
// program (ROUTE_C's decision baseline), executed per backend. The cold
// variants switch the decision cache off, so they price a full bytecode
// decision; `Warm` replays cached decisions — the table-lookup regime the
// tentpole targets (>=5x cold, >=20x warm over the AST interpreter).
template <typename MakeAlgo>
void decision_bench(benchmark::State& state, const Topology& topo,
                    MakeAlgo make_algo, bool cache_on) {
  FaultSet f(topo);
  auto algo = make_algo();
  algo->set_decision_cache_enabled(cache_on);
  algo->attach(topo, f);
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = static_cast<NodeId>((s + 13) % topo.num_nodes());
    ctx.src = s;
    ctx.in_port = topo.degree();
    ctx.in_vc = 0;
    if (ctx.node != ctx.dest) {
      const auto d = algo->route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = static_cast<NodeId>((s + 1) % topo.num_nodes());
  }
}

std::unique_ptr<RuleDrivenRouting> make_nafta_rules(ExecMode mode) {
  return std::make_unique<RuleDrivenRouting>(
      rulebases::ft_mesh_route_source(8, 8), 3, mode, "route",
      /*escape_vc=*/2);
}

std::unique_ptr<RuleDrivenRouting> make_route_c_rules(ExecMode mode) {
  return std::make_unique<RuleDrivenRouting>(rulebases::ecube_route_source(6),
                                             1, mode);
}

void BM_Decision_Nafta_Interp(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Interpret); }, false);
}
BENCHMARK(BM_Decision_Nafta_Interp);

void BM_Decision_Nafta_Vm(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Vm); }, false);
}
BENCHMARK(BM_Decision_Nafta_Vm);

void BM_Decision_Nafta_VmWarm(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Vm); }, true);
}
BENCHMARK(BM_Decision_Nafta_VmWarm);

void BM_Decision_Nafta_Aot(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Aot); }, true);
}
BENCHMARK(BM_Decision_Nafta_Aot);

void BM_Decision_RouteC_Interp(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Interpret); }, false);
}
BENCHMARK(BM_Decision_RouteC_Interp);

void BM_Decision_RouteC_Vm(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Vm); }, false);
}
BENCHMARK(BM_Decision_RouteC_Vm);

void BM_Decision_RouteC_VmWarm(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Vm); }, true);
}
BENCHMARK(BM_Decision_RouteC_VmWarm);

// The AOT tier: attach() pre-resolved every premise point into the flat
// decision table, so route() is a strided load plus a candidate copy —
// the acceptance bar is >= 3x over the warm VM (whose per-decision cost is
// a hash probe plus the same copy).
void BM_Decision_RouteC_Aot(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Aot); }, true);
}
BENCHMARK(BM_Decision_RouteC_Aot);

// -------------------------------------------- F7c: full premise-space sweep
// The 64-point loop above revisits one premise point per node, so the warm
// VM's per-node decision hash stays entirely in L1 and undersells the AOT
// gap. Random traffic presents the whole premise space — every
// (node, dest, arrival port, non-escape vc) — which blows the hash tier
// out to ~1.5k 600-byte decisions per node while the dense LUT stays a
// strided 16-byte load. This sweep is the workload the >= 3x AOT-over-
// warm-VM acceptance is read from. Escape-VC arrivals are excluded: at
// premise points the escape phase cannot reach they throw by design, and
// both tiers agree on that (the AOT fill marks them unreachable).
std::vector<RouteContext> full_premise_sweep(const Topology& topo,
                                             int sweep_vcs) {
  std::vector<RouteContext> pts;
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (dst == s) continue;
      for (int vc = 0; vc < sweep_vcs; ++vc) {
        RouteContext ctx;
        ctx.node = s;
        ctx.dest = dst;
        ctx.src = s;
        ctx.in_port = topo.degree();  // injection
        ctx.in_vc = vc;
        pts.push_back(ctx);
        for (PortId p = 0; p < topo.degree(); ++p) {
          if (topo.neighbor(s, p) < 0) continue;  // missing boundary link
          ctx.in_port = p;
          pts.push_back(ctx);
        }
      }
    }
  }
  // Fisher–Yates with a fixed-seed LCG: deterministic order, but neither
  // tier gets sequential-prefetch help.
  std::uint64_t lcg = 12345;
  for (std::size_t i = pts.size(); i > 1; --i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(pts[i - 1], pts[(lcg >> 33) % i]);
  }
  return pts;
}

template <typename MakeAlgo>
void sweep_bench(benchmark::State& state, const Topology& topo,
                 MakeAlgo make_algo, int sweep_vcs) {
  FaultSet f(topo);
  auto algo = make_algo();
  algo->attach(topo, f);
  const std::vector<RouteContext> pts = full_premise_sweep(topo, sweep_vcs);
  for (const RouteContext& ctx : pts) {  // warm pass fills the VM cache
    const auto d = algo->route(ctx);
    benchmark::DoNotOptimize(d.candidates.size());
  }
  std::size_t k = 0;
  for (auto _ : state) {
    const auto d = algo->route(pts[k]);
    benchmark::DoNotOptimize(d.candidates.size());
    if (++k == pts.size()) k = 0;
  }
}

void BM_Decision_Nafta_VmWarmSweep(benchmark::State& state) {
  sweep_bench(state, Mesh::two_d(8, 8),
              [] { return make_nafta_rules(ExecMode::Vm); }, /*sweep_vcs=*/2);
}
BENCHMARK(BM_Decision_Nafta_VmWarmSweep);

void BM_Decision_Nafta_AotSweep(benchmark::State& state) {
  sweep_bench(state, Mesh::two_d(8, 8),
              [] { return make_nafta_rules(ExecMode::Aot); }, /*sweep_vcs=*/2);
}
BENCHMARK(BM_Decision_Nafta_AotSweep);

void BM_Decision_RouteC_VmWarmSweep(benchmark::State& state) {
  sweep_bench(state, Hypercube(6),
              [] { return make_route_c_rules(ExecMode::Vm); }, /*sweep_vcs=*/1);
}
BENCHMARK(BM_Decision_RouteC_VmWarmSweep);

void BM_Decision_RouteC_AotSweep(benchmark::State& state) {
  sweep_bench(state, Hypercube(6),
              [] { return make_route_c_rules(ExecMode::Aot); }, /*sweep_vcs=*/1);
}
BENCHMARK(BM_Decision_RouteC_AotSweep);

// ---------------------------------------- F7d: 4096-node fabric decisions
// The fabrics the tier ladder exists for: a 64x64 fault-tolerant mesh
// (402M-point premise space — no eager fill fits, the lazy per-node
// sub-tables serve) and a 12-cube (the xor-fold compressed table collapses
// 436M points to 114k entries). The full premise space cannot be swept, so
// each node routes a bounded, shuffled working set sized to the lazy
// sub-table capacity; the steady-state figure is read after a warm pass
// converges the caches.
//
// The sweep is node-major: each node's points are shuffled, and the node
// visit order is shuffled, but one node's points complete before the next
// node starts. That is the access pattern the figure must price — in the
// fabric every router probes only its OWN sub-table, which stays resident
// in that router; round-robining 4096 routers' tables (64MB) through one
// benchmarking core's cache hierarchy would measure DRAM latency, not the
// tier. Acceptance: the lazy and compressed tiers keep ns/route within 2x
// of the small-fabric direct-LUT sweeps above, and the measured loop
// performs ZERO heap allocations once warm (enforced here under
// FLEXROUTER_COUNT_ALLOCS — the release CI smoke).
std::vector<RouteContext> bounded_premise_sweep(const Topology& topo,
                                                int sweep_vcs,
                                                int dests_per_node) {
  std::uint64_t lcg = 99991;
  const auto next = [&lcg](std::uint64_t bound) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 33) % bound;
  };
  const auto n_nodes = static_cast<std::uint64_t>(topo.num_nodes());
  std::vector<std::vector<RouteContext>> blocks(
      static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    std::vector<RouteContext>& blk = blocks[static_cast<std::size_t>(s)];
    for (int k = 0; k < dests_per_node; ++k) {
      const auto dst = static_cast<NodeId>(next(n_nodes));
      if (dst == s) continue;
      for (int vc = 0; vc < sweep_vcs; ++vc) {
        RouteContext ctx;
        ctx.node = s;
        ctx.dest = dst;
        ctx.src = s;
        ctx.in_port = topo.degree();  // injection
        ctx.in_vc = vc;
        blk.push_back(ctx);
        for (PortId p = 0; p < topo.degree(); ++p) {
          if (topo.neighbor(s, p) < 0) continue;
          ctx.in_port = p;
          blk.push_back(ctx);
        }
      }
    }
    for (std::size_t i = blk.size(); i > 1; --i)
      std::swap(blk[i - 1], blk[next(i)]);
  }
  for (std::size_t i = blocks.size(); i > 1; --i)
    std::swap(blocks[i - 1], blocks[next(i)]);
  std::vector<RouteContext> pts;
  for (const std::vector<RouteContext>& blk : blocks)
    pts.insert(pts.end(), blk.begin(), blk.end());
  return pts;
}

/// The measured loop cycles a bounded prefix of the (node-major) sweep:
/// enough whole node blocks to defeat trivial caching, small enough that
/// the visited sub-tables stay L2-resident — in the fabric each router's
/// own sub-table is always resident in that router, so the steady-state
/// figure must not charge the benchmarking core's capacity misses from
/// round-robining thousands of other routers' tables.
constexpr std::size_t kMeasuredSpan = 2048;

template <typename MakeAlgo>
void large_fabric_bench(benchmark::State& state, const Topology& topo,
                        MakeAlgo make_algo, int sweep_vcs,
                        RuleDrivenRouting::AotTier want_tier) {
  FaultSet f(topo);
  std::unique_ptr<RuleDrivenRouting> algo = make_algo();
  algo->attach(topo, f);
  const auto ti = algo->aot_tier_info();
  if (ti.tier != want_tier) {
    state.SkipWithError(("tier ladder picked '" +
                         std::string(RuleDrivenRouting::tier_name(ti.tier)) +
                         "': " + ti.reason)
                            .c_str());
    return;
  }
  const std::vector<RouteContext> pts =
      bounded_premise_sweep(topo, sweep_vcs, /*dests_per_node=*/16);
  for (const RouteContext& ctx : pts) {  // converge lazy fills + caches
    const auto d = algo->route(ctx);
    benchmark::DoNotOptimize(d.candidates.size());
  }
  // Converged: a full second pass over every point must stay off the heap.
  const std::int64_t allocs_before = heap_alloc_count();
  for (const RouteContext& ctx : pts) {
    const auto d = algo->route(ctx);
    benchmark::DoNotOptimize(d.candidates.size());
  }
  if (heap_alloc_counting_enabled() && heap_alloc_count() != allocs_before)
    state.SkipWithError("steady-state route() touched the heap");
  const std::size_t span = std::min(pts.size(), kMeasuredSpan);
  std::size_t k = 0;
  for (auto _ : state) {
    const auto d = algo->route(pts[k]);
    benchmark::DoNotOptimize(d.candidates.size());
    if (++k == span) k = 0;
  }
}

void BM_Decision_Nafta64x64_VmWarmSweep(benchmark::State& state) {
  Mesh m = Mesh::two_d(64, 64);
  FaultSet f(m);
  auto algo = std::make_unique<RuleDrivenRouting>(
      rulebases::ft_mesh_route_source(64, 64), 3, ExecMode::Vm, "route",
      /*escape_vc=*/2);
  algo->attach(m, f);
  const std::vector<RouteContext> pts =
      bounded_premise_sweep(m, /*sweep_vcs=*/2, /*dests_per_node=*/16);
  for (const RouteContext& ctx : pts) {
    const auto d = algo->route(ctx);
    benchmark::DoNotOptimize(d.candidates.size());
  }
  const std::size_t span = std::min(pts.size(), kMeasuredSpan);
  std::size_t k = 0;
  for (auto _ : state) {
    const auto d = algo->route(pts[k]);
    benchmark::DoNotOptimize(d.candidates.size());
    if (++k == span) k = 0;
  }
}
BENCHMARK(BM_Decision_Nafta64x64_VmWarmSweep);

void BM_Decision_Nafta64x64_LazySweep(benchmark::State& state) {
  large_fabric_bench(
      state, Mesh::two_d(64, 64),
      [] {
        return std::make_unique<RuleDrivenRouting>(
            rulebases::ft_mesh_route_source(64, 64), 3, ExecMode::Aot,
            "route", /*escape_vc=*/2);
      },
      /*sweep_vcs=*/2, RuleDrivenRouting::AotTier::Lazy);
}
BENCHMARK(BM_Decision_Nafta64x64_LazySweep);

void BM_Decision_Ecube12_VmWarmSweep(benchmark::State& state) {
  Hypercube topo(12);
  FaultSet f(topo);
  auto algo = std::make_unique<RuleDrivenRouting>(
      rulebases::ecube_route_source(12), 1, ExecMode::Vm);
  algo->attach(topo, f);
  const std::vector<RouteContext> pts =
      bounded_premise_sweep(topo, /*sweep_vcs=*/1, /*dests_per_node=*/16);
  for (const RouteContext& ctx : pts) {
    const auto d = algo->route(ctx);
    benchmark::DoNotOptimize(d.candidates.size());
  }
  const std::size_t span = std::min(pts.size(), kMeasuredSpan);
  std::size_t k = 0;
  for (auto _ : state) {
    const auto d = algo->route(pts[k]);
    benchmark::DoNotOptimize(d.candidates.size());
    if (++k == span) k = 0;
  }
}
BENCHMARK(BM_Decision_Ecube12_VmWarmSweep);

void BM_Decision_Ecube12_CompressedSweep(benchmark::State& state) {
  large_fabric_bench(
      state, Hypercube(12),
      [] {
        return std::make_unique<RuleDrivenRouting>(
            rulebases::ecube_route_source(12), 1, ExecMode::Aot);
      },
      /*sweep_vcs=*/1, RuleDrivenRouting::AotTier::Compressed);
}
BENCHMARK(BM_Decision_Ecube12_CompressedSweep);

// The same 12-cube program with compression disabled: prices what the
// lazy tier costs on a fabric the compressed table would also fit, i.e.
// the tag probe + 2-way select against the strided load above.
void BM_Decision_Ecube12_LazySweep(benchmark::State& state) {
  large_fabric_bench(
      state, Hypercube(12),
      [] {
        auto algo = std::make_unique<RuleDrivenRouting>(
            rulebases::ecube_route_source(12), 1, ExecMode::Aot);
        algo->set_aot_compression_enabled(false);
        return algo;
      },
      /*sweep_vcs=*/1, RuleDrivenRouting::AotTier::Lazy);
}
BENCHMARK(BM_Decision_Ecube12_LazySweep);

void BM_NetworkCycle_Nafta8x8(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic tr(m);
  SimConfig cfg;
  cfg.injection_rate = 0.1;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 0;
  cfg.seed = 3;
  Simulator sim(net, tr, cfg);
  sim.run();  // load the network
  Cycle now = sim.now();
  Rng rng(4);
  for (auto _ : state) {
    // Keep traffic flowing so the cycle cost reflects a loaded router.
    const auto s = static_cast<NodeId>(rng.next_below(64));
    auto d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    if (net.router(s).injection_space() > 8) net.send(s, d, 4, now);
    net.step(now++);
  }
  state.counters["flits/cycle"] = benchmark::Counter(
      static_cast<double>(net.total_flit_movements()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkCycle_Nafta8x8);

const char* flexrouter_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

// Rewrite the emitted context so `library_build_type` describes the code
// actually measured (this binary + libflexrouter, via NDEBUG); the shared
// google-benchmark library's own claim — distro builds bake in "debug"
// regardless of how the benchmarked code was compiled, which is what
// poisoned the original checked-in baseline — is preserved under
// `benchmark_library_build_type`.
bool rewrite_build_type(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::string key = "\"library_build_type\": \"";
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) return false;
  const std::size_t vstart = pos + key.size();
  const std::size_t vend = text.find('"', vstart);
  if (vend == std::string::npos) return false;
  const std::string original = text.substr(vstart, vend - vstart);
  text.replace(vstart, vend - vstart, flexrouter_build_type());
  text.insert(pos, "\"benchmark_library_build_type\": \"" + original +
                       "\",\n    ");
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

// Writes BENCH_interp_speed.json next to the working directory unless the
// caller already picked an output file — the checked-in artifact the VM/AOT
// speedup acceptance criteria are read from. `--smoke` runs shortened
// benches and hard-fails when the measured code was built without NDEBUG
// (a debug baseline must never be recorded again), so it belongs in the
// release CI job only.
int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
    args.push_back(argv[i]);
  }
  static std::string out;
  static std::string fmt = "--benchmark_out_format=json";
  static std::string min_time = "--benchmark_min_time=0.05";
  if (out_path.empty()) {
    out_path = smoke ? "interp_speed_smoke.json" : "BENCH_interp_speed.json";
    out = "--benchmark_out=" + out_path;
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  if (smoke) args.push_back(min_time.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!rewrite_build_type(out_path)) {
    std::fprintf(stderr, "interp_speed: failed to record build type in %s\n",
                 out_path.c_str());
    return 1;
  }
  if (smoke && std::strcmp(flexrouter_build_type(), "release") != 0) {
    std::fprintf(stderr,
                 "interp_speed --smoke: measured code built as debug "
                 "(library_build_type=%s) — benchmark numbers from this "
                 "build must not be recorded\n",
                 flexrouter_build_type());
    return 1;
  }
  return 0;
}
