// Experiments F5–F7: rule interpreter speed. The paper's claim: the
// compiled rule table (RBR kernel) "allows an execution nearly as fast as a
// table-based solution", outperforming software (sequential AST)
// interpretation. Google-benchmark microbenches over the ROUTE_C
// update_state rule base, native vs rule-driven routing decisions, the
// off-line compiler itself, and a full router cycle.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "routing/nafta.hpp"
#include "routing/rule_driven.hpp"
#include "topology/hypercube.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/event_manager.hpp"
#include "ruleengine/parser.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrouter;
using rules::EventManager;
using rules::ExecMode;
using rules::Value;

std::unique_ptr<EventManager> make_update_state_machine(ExecMode mode) {
  static const rules::Program prog =
      rules::parse_program(rulebases::route_c_program_source(6, 2));
  auto em = std::make_unique<EventManager>(prog, mode);
  static const rules::SymId sunsafe = prog.syms.lookup("sunsafe");
  em->set_input_provider(
      [](const std::string&, const std::vector<Value>&) {
        return Value::make_sym(sunsafe);
      });
  return em;
}

void BM_RuleFire_Interpreted(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Interpret);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_Interpreted);

void BM_RuleFire_CompiledTable(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Table);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_CompiledTable);

void BM_RuleFire_Vm(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Vm);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_Vm);

void BM_Compile_UpdateState(benchmark::State& state) {
  const rules::Program prog =
      rules::parse_program(rulebases::route_c_program_source(6, 2));
  rules::Interpreter interp(prog);
  for (auto _ : state) {
    const auto compiled =
        rules::compile_rule_base(prog, prog.rule_base("update_state"), interp);
    benchmark::DoNotOptimize(compiled.table_entries());
  }
}
BENCHMARK(BM_Compile_UpdateState);

void BM_Decision_NativeNafta(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  Rng rng(1);
  inject_random_link_faults(f, 4, rng);
  nafta.reconfigure();
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = (s + 13) % m.num_nodes();
    ctx.src = s;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    if (f.node_ok(ctx.node) && f.node_ok(ctx.dest) && ctx.node != ctx.dest) {
      const auto d = nafta.route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = (s + 1) % m.num_nodes();
  }
}
BENCHMARK(BM_Decision_NativeNafta);

void BM_Decision_RuleDrivenNara(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  RuleDrivenRouting algo(rulebases::nara_route_source(8, 8), 2,
                         ExecMode::Table);
  algo.attach(m, f);
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = (s + 13) % m.num_nodes();
    ctx.src = s;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    if (ctx.node != ctx.dest) {
      const auto d = algo.route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = (s + 1) % m.num_nodes();
  }
}
BENCHMARK(BM_Decision_RuleDrivenNara);

// ------------------------------------------------------- F7b: VM decisions
// The NAFTA-family fault-tolerant mesh program and the hypercube e-cube
// program (ROUTE_C's decision baseline), executed per backend. The cold
// variants switch the decision cache off, so they price a full bytecode
// decision; `Warm` replays cached decisions — the table-lookup regime the
// tentpole targets (>=5x cold, >=20x warm over the AST interpreter).
template <typename MakeAlgo>
void decision_bench(benchmark::State& state, const Topology& topo,
                    MakeAlgo make_algo, bool cache_on) {
  FaultSet f(topo);
  auto algo = make_algo();
  algo->set_decision_cache_enabled(cache_on);
  algo->attach(topo, f);
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = static_cast<NodeId>((s + 13) % topo.num_nodes());
    ctx.src = s;
    ctx.in_port = topo.degree();
    ctx.in_vc = 0;
    if (ctx.node != ctx.dest) {
      const auto d = algo->route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = static_cast<NodeId>((s + 1) % topo.num_nodes());
  }
}

std::unique_ptr<RuleDrivenRouting> make_nafta_rules(ExecMode mode) {
  return std::make_unique<RuleDrivenRouting>(
      rulebases::ft_mesh_route_source(8, 8), 3, mode, "route",
      /*escape_vc=*/2);
}

std::unique_ptr<RuleDrivenRouting> make_route_c_rules(ExecMode mode) {
  return std::make_unique<RuleDrivenRouting>(rulebases::ecube_route_source(6),
                                             1, mode);
}

void BM_Decision_Nafta_Interp(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Interpret); }, false);
}
BENCHMARK(BM_Decision_Nafta_Interp);

void BM_Decision_Nafta_Vm(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Vm); }, false);
}
BENCHMARK(BM_Decision_Nafta_Vm);

void BM_Decision_Nafta_VmWarm(benchmark::State& state) {
  decision_bench(state, Mesh::two_d(8, 8),
                 [] { return make_nafta_rules(ExecMode::Vm); }, true);
}
BENCHMARK(BM_Decision_Nafta_VmWarm);

void BM_Decision_RouteC_Interp(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Interpret); }, false);
}
BENCHMARK(BM_Decision_RouteC_Interp);

void BM_Decision_RouteC_Vm(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Vm); }, false);
}
BENCHMARK(BM_Decision_RouteC_Vm);

void BM_Decision_RouteC_VmWarm(benchmark::State& state) {
  decision_bench(state, Hypercube(6),
                 [] { return make_route_c_rules(ExecMode::Vm); }, true);
}
BENCHMARK(BM_Decision_RouteC_VmWarm);

void BM_NetworkCycle_Nafta8x8(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic tr(m);
  SimConfig cfg;
  cfg.injection_rate = 0.1;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 0;
  cfg.seed = 3;
  Simulator sim(net, tr, cfg);
  sim.run();  // load the network
  Cycle now = sim.now();
  Rng rng(4);
  for (auto _ : state) {
    // Keep traffic flowing so the cycle cost reflects a loaded router.
    const auto s = static_cast<NodeId>(rng.next_below(64));
    auto d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    if (net.router(s).injection_space() > 8) net.send(s, d, 4, now);
    net.step(now++);
  }
  state.counters["flits/cycle"] = benchmark::Counter(
      static_cast<double>(net.total_flit_movements()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkCycle_Nafta8x8);

}  // namespace

// Writes BENCH_interp_speed.json next to the working directory unless the
// caller already picked an output file — the checked-in artifact the VM
// speedup acceptance criteria are read from.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static std::string out = "--benchmark_out=BENCH_interp_speed.json";
  static std::string fmt = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
