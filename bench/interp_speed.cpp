// Experiments F5–F7: rule interpreter speed. The paper's claim: the
// compiled rule table (RBR kernel) "allows an execution nearly as fast as a
// table-based solution", outperforming software (sequential AST)
// interpretation. Google-benchmark microbenches over the ROUTE_C
// update_state rule base, native vs rule-driven routing decisions, the
// off-line compiler itself, and a full router cycle.
#include <benchmark/benchmark.h>

#include "routing/nafta.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/event_manager.hpp"
#include "ruleengine/parser.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrouter;
using rules::EventManager;
using rules::ExecMode;
using rules::Value;

std::unique_ptr<EventManager> make_update_state_machine(ExecMode mode) {
  static const rules::Program prog =
      rules::parse_program(rulebases::route_c_program_source(6, 2));
  auto em = std::make_unique<EventManager>(prog, mode);
  static const rules::SymId sunsafe = prog.syms.lookup("sunsafe");
  em->set_input_provider(
      [](const std::string&, const std::vector<Value>&) {
        return Value::make_sym(sunsafe);
      });
  return em;
}

void BM_RuleFire_Interpreted(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Interpret);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_Interpreted);

void BM_RuleFire_CompiledTable(benchmark::State& state) {
  auto em = make_update_state_machine(ExecMode::Table);
  std::int64_t dir = 0;
  for (auto _ : state) {
    em->env().set("number_unsafe", 0, Value::make_int(1));
    const auto r = em->fire("update_state", {Value::make_int(dir)});
    benchmark::DoNotOptimize(r.rule_index);
    dir = (dir + 1) % 6;
  }
}
BENCHMARK(BM_RuleFire_CompiledTable);

void BM_Compile_UpdateState(benchmark::State& state) {
  const rules::Program prog =
      rules::parse_program(rulebases::route_c_program_source(6, 2));
  rules::Interpreter interp(prog);
  for (auto _ : state) {
    const auto compiled =
        rules::compile_rule_base(prog, prog.rule_base("update_state"), interp);
    benchmark::DoNotOptimize(compiled.table_entries());
  }
}
BENCHMARK(BM_Compile_UpdateState);

void BM_Decision_NativeNafta(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  Rng rng(1);
  inject_random_link_faults(f, 4, rng);
  nafta.reconfigure();
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = (s + 13) % m.num_nodes();
    ctx.src = s;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    if (f.node_ok(ctx.node) && f.node_ok(ctx.dest) && ctx.node != ctx.dest) {
      const auto d = nafta.route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = (s + 1) % m.num_nodes();
  }
}
BENCHMARK(BM_Decision_NativeNafta);

void BM_Decision_RuleDrivenNara(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  RuleDrivenRouting algo(rulebases::nara_route_source(8, 8), 2,
                         ExecMode::Table);
  algo.attach(m, f);
  NodeId s = 0;
  for (auto _ : state) {
    RouteContext ctx;
    ctx.node = s;
    ctx.dest = (s + 13) % m.num_nodes();
    ctx.src = s;
    ctx.in_port = m.degree();
    ctx.in_vc = 0;
    if (ctx.node != ctx.dest) {
      const auto d = algo.route(ctx);
      benchmark::DoNotOptimize(d.candidates.size());
    }
    s = (s + 1) % m.num_nodes();
  }
}
BENCHMARK(BM_Decision_RuleDrivenNara);

void BM_NetworkCycle_Nafta8x8(benchmark::State& state) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic tr(m);
  SimConfig cfg;
  cfg.injection_rate = 0.1;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 0;
  cfg.seed = 3;
  Simulator sim(net, tr, cfg);
  sim.run();  // load the network
  Cycle now = sim.now();
  Rng rng(4);
  for (auto _ : state) {
    // Keep traffic flowing so the cycle cost reflects a loaded router.
    const auto s = static_cast<NodeId>(rng.next_below(64));
    auto d = static_cast<NodeId>(rng.next_below(64));
    if (d == s) d = (d + 1) % 64;
    if (net.router(s).injection_space() > 8) net.send(s, d, 4, now);
    net.step(now++);
  }
  state.counters["flits/cycle"] = benchmark::Counter(
      static_cast<double>(net.total_flit_movements()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkCycle_Nafta8x8);

}  // namespace

BENCHMARK_MAIN();
