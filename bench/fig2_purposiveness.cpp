// Experiment F2: the paper's Figure 2 — a chain of faulty links attached to
// a border splits the neighbourhood into two regions; a router at the top
// of the chain needs Omega(|F|) fault knowledge to forward messages to the
// correct side. NAFTA's constant-size per-node state cannot represent the
// chain exactly, so traffic pays detours that grow with the chain length,
// while a full-knowledge router (the up*/down* table, whose distributed
// construction cost also grows with |F|) routes tightly.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"
#include "routing/updown.hpp"

int main() {
  using namespace flexrouter;
  const int kW = 16, kH = 16;
  bench::print_header(
      "F2 — wall of faulty links between columns 7 and 8 of a 16x16 mesh");
  bench::print_row({"chain |F|", "algorithm", "avg hops", "hops/minimal",
                    "misrouted %", "avg latency", "reconf. msgs"});

  for (const int len : {1, 3, 6, 9, 12, 15}) {
    Mesh m = Mesh::two_d(kW, kH);
    UniformTraffic traffic(m);
    for (const bool full_knowledge : {false, true}) {
      std::unique_ptr<RoutingAlgorithm> algo;
      if (full_knowledge)
        algo = std::make_unique<UpDownRouting>();
      else
        algo = std::make_unique<Nafta>();
      Network net(m, *algo);
      const int exchanges = net.apply_faults([&](FaultSet& f) {
        inject_figure2_chain(f, m, 7, len);
      });
      SimConfig cfg;
      // Low offered load: the wall funnels all cross traffic through one
      // gap, so higher rates saturate and hide the per-packet detour trend.
      cfg.injection_rate = 0.02;
      cfg.packet_length = 4;
      cfg.warmup_cycles = 600;
      cfg.measure_cycles = 1500;
      cfg.seed = static_cast<std::uint64_t>(len);
      Simulator sim(net, traffic, cfg);
      const SimResult r = sim.run();
      bench::print_row(
          {std::to_string(len),
           full_knowledge ? "full-knowledge" : "NAFTA (const state)",
           bench::fmt(r.avg_hops), bench::fmt(r.min_hops_ratio),
           bench::fmt(r.misrouted_fraction * 100, 1),
           bench::fmt(r.avg_latency),
           std::to_string(exchanges)});
      if (r.deadlock_suspected) {
        std::cout << "DEADLOCK SUSPECTED — experiment invalid\n";
        return 1;
      }
      if (r.delivered_packets != r.injected_packets) {
        std::cout << "LOST PACKETS — experiment invalid\n";
        return 1;
      }
    }
  }
  std::cout
      << "\nReading: detours (hops/minimal) grow with the chain length for\n"
         "both routers — messages that start on the wrong side must walk\n"
         "around the wall — but the information cost differs: NAFTA keeps\n"
         "constant per-node state and pays misroute markings, while the\n"
         "full-knowledge table pays reconfiguration messages that grow with\n"
         "|F| (last column), the paper's Omega(|F|) memory/knowledge bound.\n";
  return 0;
}
