// The conclusion's headline, quantified: "fault tolerance implies a
// considerable overhead in hardware cost and in the time required for a
// routing decision. ... While NAFTA shows an increase mainly in the
// complexity for updating states and choosing the right output, the
// additional hardware cost for ROUTE_C is dominated by the fivefold
// virtual channel demands."
//
// Full per-router hardware account for each algorithm: rule-table bits,
// register bits, FCFB area (relative units), and VC buffer bits
// (vcs x buffer depth x flit width x network ports). FT share = total minus
// the non-fault-tolerant baseline.
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/evaluation.hpp"
#include "routing/negative_hop.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/parser.hpp"

namespace {

using namespace flexrouter;

constexpr int kFlitBits = 64;     // data-path width
constexpr int kBufferDepth = 4;   // flits per VC FIFO

std::int64_t buffer_bits(int vcs, int ports) {
  return static_cast<std::int64_t>(vcs) * kBufferDepth * kFlitBits * ports;
}

double fcfb_area(const rules::Program& prog) {
  rules::Interpreter interp(prog);
  double area = 0;
  for (const auto& rb : prog.rule_bases)
    area += rules::compile_rule_base(prog, rb, interp).all_fcfbs().total_area();
  return area;
}

}  // namespace

int main() {
  bench::print_header(
      "Hardware cost summary per router (buffers: 4-flit FIFOs, 64-bit "
      "flits)");
  bench::print_row({"design", "VCs", "table bits", "reg bits", "FCFB area",
                    "buffer bits", "total bits"},
                   16);

  struct Row {
    std::string name;
    int vcs;
    int ports;
    std::int64_t table, regs;
    double area;
  };
  std::vector<Row> rows;

  {  // Mesh family (4 network ports).
    const auto nara =
        rules::parse_program(rulebases::nara_program_source(16, 16));
    const auto nafta =
        rules::parse_program(rulebases::nafta_program_source(16, 16));
    const auto nara_rep = rules::report_program(nara);
    const auto nafta_rep = rules::report_program(nafta);
    rows.push_back({"NARA (non-FT)", 2, 4, nara_rep.total_table_bits,
                    nara_rep.total_register_bits, fcfb_area(nara)});
    rows.push_back({"NAFTA", 3, 4, nafta_rep.total_table_bits,
                    nafta_rep.total_register_bits, fcfb_area(nafta)});
    // Negative-hop: trivial control (distance-vector tables modelled as the
    // register file: N*log(diam) bits per router), all cost in VCs.
    Mesh m = Mesh::two_d(16, 16);
    const int vcs = NegativeHop::vcs_needed_for(m);
    rows.push_back({"negative-hop", vcs, 4, 0,
                    static_cast<std::int64_t>(m.num_nodes()) * 6, 4.0});
  }
  {  // Hypercube family (d = 6 -> 6 network ports).
    const auto nft =
        rules::parse_program(rulebases::route_c_nft_program_source(6, 2));
    const auto ft =
        rules::parse_program(rulebases::route_c_program_source(6, 2));
    const auto nft_rep = rules::report_program(nft);
    const auto ft_rep = rules::report_program(ft);
    rows.push_back({"ROUTE_C nft", 2, 6, nft_rep.total_table_bits,
                    nft_rep.total_register_bits, fcfb_area(nft)});
    rows.push_back({"ROUTE_C", 5, 6, ft_rep.total_table_bits,
                    ft_rep.total_register_bits, fcfb_area(ft)});
  }

  for (const Row& r : rows) {
    const auto buf = buffer_bits(r.vcs, r.ports);
    bench::print_row({r.name, std::to_string(r.vcs), std::to_string(r.table),
                      std::to_string(r.regs), bench::fmt(r.area, 1),
                      std::to_string(buf),
                      std::to_string(r.table + r.regs + buf)},
                     16);
  }

  bench::print_header("Fault-tolerance overhead decomposition");
  auto get = [&](const std::string& n) -> const Row& {
    for (const Row& r : rows)
      if (r.name == n) return r;
    throw std::logic_error("row");
  };
  {
    const Row& base = get("NARA (non-FT)");
    const Row& ft = get("NAFTA");
    const auto dbuf = buffer_bits(ft.vcs, 4) - buffer_bits(base.vcs, 4);
    const auto dstate = (ft.table - base.table) + (ft.regs - base.regs);
    std::cout << "NAFTA over NARA:   +" << dstate
              << " bits of tables/registers (state & output choice), +"
              << dbuf << " bits of buffers (1 extra VC)\n"
              << "  -> state/update complexity dominates ("
              << bench::fmt(100.0 * dstate / (dstate + dbuf), 1)
              << "% of the added bits are control state)\n";
    const Row& rbase = get("ROUTE_C nft");
    const Row& rft = get("ROUTE_C");
    const auto rdbuf = buffer_bits(rft.vcs, 6) - buffer_bits(rbase.vcs, 6);
    const auto rdstate =
        (rft.table - rbase.table) + (rft.regs - rbase.regs);
    std::cout << "ROUTE_C over nft:  +" << rdstate
              << " bits of tables/registers, +" << rdbuf
              << " bits of buffers (3 extra VCs)\n"
              << "  -> the fivefold virtual-channel demand dominates ("
              << bench::fmt(100.0 * rdbuf / (rdstate + rdbuf), 1)
              << "% of the added bits are buffers), exactly the paper's "
                 "conclusion.\n";
    const Row& nh = get("negative-hop");
    std::cout << "negative-hop:      near-zero control cost but "
              << nh.vcs << " VCs = " << buffer_bits(nh.vcs, 4)
              << " buffer bits — the other end of the trade-off the paper "
                 "sketches\n  (deadlock avoidance untouched by faults, paid "
                 "for in diameter-many VCs).\n";
  }
  return 0;
}
