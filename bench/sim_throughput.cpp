// Simulator hot-loop and sweep-engine throughput benchmark.
//
// Measures:
//   1. Single-replica simulated cycles/second on two fixed scenarios
//      (fault-free and 6-link-fault 8x8 mesh, NAFTA, uniform 0.10) — the
//      number the serial hot-loop overhaul moves.
//   2. Wall-clock for a 16-point (faults x load) sweep at 1/2/4/8 worker
//      threads, with a bit-identical cross-check of every SimResult field
//      against the single-thread run — the determinism contract of
//      SweepRunner.
//
// Usage:
//   ./sim_throughput              # full run, table to stdout
//   ./sim_throughput --smoke      # tiny grid for CI (seconds, still checks
//                                 # bit-identity across thread counts)
//   ./sim_throughput --json FILE  # also emit a JSON report
//
// Plain std::chrono timing — no google-benchmark dependency, so the binary
// stays runnable in every build config.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "common/alloc_counter.hpp"
#include "routing/nafta.hpp"
#include "topology/graph_algo.hpp"

namespace {

using namespace flexrouter;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool bit_identical(const SimResult& a, const SimResult& b) {
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.min_hops_ratio, &b.min_hops_ratio,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.misrouted_fraction, &b.misrouted_fraction,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_latency_misrouted, &b.avg_latency_misrouted,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_latency_direct, &b.avg_latency_direct,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_decision_steps, &b.avg_decision_steps,
                     sizeof(double)) == 0 &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

struct SingleReplica {
  const char* name;
  int link_faults;
  double cycles_per_sec = 0.0;
  Cycle cycles = 0;
};

// Fixed serial scenario: 8x8 mesh, NAFTA, uniform 0.10, seed 42. The
// faulty variant breaks 6 links with Rng(99). Matches the pre-PR baseline
// capture, so cycles/sec is comparable across revisions.
SimResult run_single(int link_faults, Cycle warmup, Cycle measure,
                     Cycle* cycles_out, double* elapsed_out) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta algo;
  UniformTraffic tr(m);
  Network net(m, algo);
  if (link_faults > 0) {
    Rng rng(99);
    net.apply_faults(
        [&](FaultSet& f) { inject_random_link_faults(f, link_faults, rng); });
  }
  SimConfig cfg;
  cfg.injection_rate = 0.10;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = 42;
  Simulator sim(net, tr, cfg);
  const auto t0 = Clock::now();
  SimResult r = sim.run();
  *elapsed_out = seconds_since(t0);
  *cycles_out = sim.now();
  return r;
}

// The 16-point sweep grid: 4 fault counts x 4 offered loads on the same
// 8x8 mesh. Every point constructs its own replica inside the lambda.
std::vector<SweepPoint> make_grid(Cycle warmup, Cycle measure) {
  const int fault_counts[] = {0, 2, 4, 6};
  const double rates[] = {0.04, 0.08, 0.12, 0.16};
  std::vector<SweepPoint> points;
  for (const int k : fault_counts) {
    for (const double rate : rates) {
      points.push_back({[k, rate, warmup, measure](std::uint64_t seed) {
        Mesh m = Mesh::two_d(8, 8);
        Nafta algo;
        UniformTraffic tr(m);
        Rng frng(static_cast<std::uint64_t>(k) * 31 + 5);
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.packet_length = 4;
        cfg.warmup_cycles = warmup;
        cfg.measure_cycles = measure;
        cfg.seed = seed;
        return bench::run_point(m, algo, tr, cfg,
                                k == 0 ? std::function<void(FaultSet&)>{}
                                       : [&](FaultSet& f) {
                                           inject_random_link_faults(f, k,
                                                                     frng);
                                         });
      }});
    }
  }
  return points;
}

// Zero-allocation regression guard (runs only in FLEXROUTER_COUNT_ALLOCS
// builds — CI's bench-smoke step enables it). Drives a network replica by
// hand with Bernoulli injection, then samples the global allocation counter
// over 100-cycle windows: once the pools (rings, slab, worklists) have
// grown to the workload's peak, a steady-state cycle must not touch the
// heap. Requires 3 consecutive clean windows out of 30 — one-time pool
// growth is tolerated, per-cycle churn is not.
bool run_alloc_guard(int link_faults) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta algo;
  UniformTraffic tr(m);
  NetworkConfig ncfg;
  ncfg.expected_packets = 16384;
  Network net(m, algo, ncfg);
  if (link_faults > 0) {
    Rng frng(99);
    net.apply_faults(
        [&](FaultSet& f) { inject_random_link_faults(f, link_faults, frng); });
  }
  const std::vector<int> comp = components(net.faults());
  Rng rng(42);
  Cycle now = 0;
  // Same offered load as the timed scenarios: injection_rate 0.10 flits
  // per node-cycle over 4-flit packets, i.e. 0.025 packets per node-cycle
  // (the Simulator's packet_prob = rate / mean_length).
  const double packet_prob = 0.10 / 4.0;
  const auto inject = [&] {
    for (NodeId s = 0; s < m.num_nodes(); ++s) {
      if (!net.faults().node_ok(s)) continue;
      if (!rng.next_bool(packet_prob)) continue;
      NodeId d = kInvalidNode;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId cand = tr.dest(s, rng);
        if (comp[static_cast<std::size_t>(cand)] ==
            comp[static_cast<std::size_t>(s)]) {
          d = cand;
          break;
        }
      }
      if (d != kInvalidNode) net.send(s, d, 4, now);
    }
  };
  for (int c = 0; c < 400; ++c) {  // warmup: pools grow to peak here
    inject();
    net.step(now++);
  }
  int clean = 0;
  for (int window = 0; window < 30 && clean < 3; ++window) {
    const std::int64_t before = heap_alloc_count();
    for (int c = 0; c < 100; ++c) {
      inject();
      net.step(now++);
    }
    const std::int64_t grew = heap_alloc_count() - before;
    clean = grew == 0 ? clean + 1 : 0;  // a dirty window resets the streak
  }
  if (clean < 3) {
    std::cerr << "ALLOCATION REGRESSION: steady-state cycles still allocate "
              << "(" << link_faults << " link faults)\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexrouter;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const Cycle single_warmup = smoke ? 200 : 2000;
  const Cycle single_measure = smoke ? 800 : 8000;
  const Cycle grid_warmup = smoke ? 100 : 400;
  const Cycle grid_measure = smoke ? 300 : 1600;

  bench::print_header(
      "Simulator throughput — serial hot loop and parallel sweep engine");

  // --- 0. zero-allocation steady-state guard -----------------------------
  if (heap_alloc_counting_enabled()) {
    for (const int faults : {0, 6})
      if (!run_alloc_guard(faults)) return 1;
    std::cout << "alloc guard: steady-state cycles allocation-free "
                 "(both scenarios)\n\n";
  }

  // --- 1. single-replica cycles/sec --------------------------------------
  SingleReplica singles[] = {{"fault-free", 0}, {"6 link faults", 6}};
  bench::print_row({"scenario", "sim cycles", "wall s", "cycles/sec"});
  for (SingleReplica& s : singles) {
    double elapsed = 0.0;
    const SimResult r =
        run_single(s.link_faults, single_warmup, single_measure, &s.cycles,
                   &elapsed);
    if (r.deadlock_suspected) {
      std::cerr << "unexpected deadlock in single-replica scenario\n";
      return 1;
    }
    s.cycles_per_sec = static_cast<double>(s.cycles) / elapsed;
    bench::print_row({s.name, std::to_string(s.cycles), bench::fmt(elapsed, 3),
                      bench::fmt(s.cycles_per_sec, 0)});
  }

  // --- 2. sweep wall-clock at 1/2/4/8 threads ----------------------------
  const std::vector<SweepPoint> points = make_grid(grid_warmup, grid_measure);
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<SimResult> reference;
  double serial_wall = 0.0;
  struct SweepRow {
    int threads;
    double wall;
    bool identical;
  };
  std::vector<SweepRow> sweep_rows;

  std::cout << "\n";
  bench::print_row({"threads", "grid points", "wall s", "speedup",
                    "bit-identical"});
  for (const int t : thread_counts) {
    SweepOptions opts;
    opts.num_threads = t;
    opts.base_seed = 7;
    SweepRunner runner(opts);
    const auto t0 = Clock::now();
    const std::vector<SimResult> results = runner.run(points);
    const double wall = seconds_since(t0);
    bool identical = true;
    if (t == 1) {
      reference = results;
      serial_wall = wall;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        identical = identical && bit_identical(results[i], reference[i]);
    }
    sweep_rows.push_back({t, wall, identical});
    bench::print_row({std::to_string(t), std::to_string(points.size()),
                      bench::fmt(wall, 3), bench::fmt(serial_wall / wall, 2),
                      identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: sweep results differ at " << t
                << " threads\n";
      return 1;
    }
  }

  std::cout << "\nNote: speedup is bounded by the physical core count of the"
               "\nmachine running the bench; bit-identity must hold "
               "everywhere.\n";

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os.precision(17);
    os << "{\n  \"context\": {\n"
       << "    \"num_cpus\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "    \"smoke\": " << (smoke ? "true" : "false") << "\n  },\n";
    os << "  \"single_replica\": [\n";
    for (std::size_t i = 0; i < 2; ++i) {
      os << "    {\"scenario\": \"" << singles[i].name
         << "\", \"sim_cycles\": " << singles[i].cycles
         << ", \"cycles_per_sec\": " << singles[i].cycles_per_sec << "}"
         << (i + 1 < 2 ? "," : "") << "\n";
    }
    os << "  ],\n  \"sweep_16pt\": [\n";
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& sr = sweep_rows[i];
      os << "    {\"threads\": " << sr.threads << ", \"wall_sec\": " << sr.wall
         << ", \"speedup\": " << serial_wall / sr.wall
         << ", \"bit_identical\": " << (sr.identical ? "true" : "false")
         << "}" << (i + 1 < sweep_rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
