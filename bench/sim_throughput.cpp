// Simulator hot-loop and sweep-engine throughput benchmark.
//
// Measures:
//   1. Single-replica simulated cycles/second on two fixed scenarios
//      (fault-free and 6-link-fault 8x8 mesh, NAFTA, uniform 0.10) — the
//      number the serial hot-loop overhaul moves.
//   2. Wall-clock for a 16-point (faults x load) sweep at 1/2/4/8 worker
//      threads, with a bit-identical cross-check of every SimResult field
//      against the single-thread run — the determinism contract of
//      SweepRunner.
//   3. Large fabrics (64x64 mesh NAFTA, 12-d hypercube ROUTE_C — 4096
//      nodes each) at 1/2/4/8 spatial shards, every run bit-checked
//      against the legacy serial path. A mismatch is a hard failure.
//   4. Event-driven idle skipping on a lightly loaded 64x64 mesh with a
//      mid-run link kill and a long detection window: skip-on vs skip-off
//      wall clock (both bit-identical to serial), cycles skipped reported.
//
// Usage:
//   ./sim_throughput              # full run, table to stdout
//   ./sim_throughput --smoke      # tiny grid for CI (seconds, still checks
//                                 # bit-identity across thread counts)
//   ./sim_throughput --json FILE  # also emit a JSON report
//
// Plain std::chrono timing — no google-benchmark dependency, so the binary
// stays runnable in every build config.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "common/alloc_counter.hpp"
#include "routing/nafta.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "topology/graph_algo.hpp"
#include "topology/hypercube.hpp"

namespace {

using namespace flexrouter;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool bit_identical(const SimResult& a, const SimResult& b) {
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.min_hops_ratio, &b.min_hops_ratio,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.misrouted_fraction, &b.misrouted_fraction,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_latency_misrouted, &b.avg_latency_misrouted,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_latency_direct, &b.avg_latency_direct,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_decision_steps, &b.avg_decision_steps,
                     sizeof(double)) == 0 &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

struct SingleReplica {
  const char* name;
  int link_faults;
  double cycles_per_sec = 0.0;
  Cycle cycles = 0;
};

// Fixed serial scenario: 8x8 mesh, NAFTA, uniform 0.10, seed 42. The
// faulty variant breaks 6 links with Rng(99). Matches the pre-PR baseline
// capture, so cycles/sec is comparable across revisions.
SimResult run_single(int link_faults, Cycle warmup, Cycle measure,
                     Cycle* cycles_out, double* elapsed_out) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta algo;
  UniformTraffic tr(m);
  Network net(m, algo);
  if (link_faults > 0) {
    Rng rng(99);
    net.apply_faults(
        [&](FaultSet& f) { inject_random_link_faults(f, link_faults, rng); });
  }
  SimConfig cfg;
  cfg.injection_rate = 0.10;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = 42;
  Simulator sim(net, tr, cfg);
  const auto t0 = Clock::now();
  SimResult r = sim.run();
  *elapsed_out = seconds_since(t0);
  *cycles_out = sim.now();
  return r;
}

// ------------------------------------------------------------ large fabrics

/// A 4096-node scenario stepped at several shard counts. `topo` is
/// "mesh64" (64x64 mesh) or "hcube12" (12-d hypercube); `algo` is a
/// factory name.
struct FabricScenario {
  const char* name;
  const char* topo;
  const char* algo;
  double rate;
  Cycle warmup;
  Cycle measure;
};

std::unique_ptr<Topology> make_fabric_topo(const std::string& kind) {
  if (kind == "mesh64") return std::make_unique<Mesh>(std::vector<int>{64, 64});
  return std::make_unique<Hypercube>(12);
}

/// One timed run of a fabric scenario. `shards == 0` selects the legacy
/// serial step (the bit-identity reference); any other count runs the
/// unified sharded/event-driven path. Timing covers only Simulator::run —
/// topology construction and table building are setup, not throughput.
SimResult run_fabric(const FabricScenario& sc, int shards, bool idle_skip,
                     const FaultSchedule* schedule, Cycle detection_delay,
                     Cycle* cycles_out, double* wall_out,
                     Cycle* skipped_out = nullptr) {
  auto topo = make_fabric_topo(sc.topo);
  auto algo = make_algorithm(sc.algo);
  UniformTraffic tr(*topo);
  NetworkConfig ncfg;
  ncfg.shards = shards == 0 ? 1 : shards;
  ncfg.event_driven = shards != 0;
  Network net(*topo, *algo, ncfg);
  SimConfig cfg;
  cfg.injection_rate = sc.rate;
  cfg.packet_length = 4;
  cfg.warmup_cycles = sc.warmup;
  cfg.measure_cycles = sc.measure;
  cfg.seed = 42;
  cfg.idle_skip = idle_skip;
  cfg.detection_delay = detection_delay;
  Simulator sim(net, tr, cfg);
  if (schedule != nullptr) sim.set_fault_schedule(*schedule);
  const auto t0 = Clock::now();
  SimResult r = sim.run();
  *wall_out = seconds_since(t0);
  *cycles_out = sim.now();
  if (skipped_out != nullptr) *skipped_out = sim.idle_cycles_skipped();
  return r;
}

// The 16-point sweep grid: 4 fault counts x 4 offered loads on the same
// 8x8 mesh. Every point constructs its own replica inside the lambda.
std::vector<SweepPoint> make_grid(Cycle warmup, Cycle measure) {
  const int fault_counts[] = {0, 2, 4, 6};
  const double rates[] = {0.04, 0.08, 0.12, 0.16};
  std::vector<SweepPoint> points;
  for (const int k : fault_counts) {
    for (const double rate : rates) {
      points.push_back({[k, rate, warmup, measure](std::uint64_t seed) {
        Mesh m = Mesh::two_d(8, 8);
        Nafta algo;
        UniformTraffic tr(m);
        Rng frng(static_cast<std::uint64_t>(k) * 31 + 5);
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.packet_length = 4;
        cfg.warmup_cycles = warmup;
        cfg.measure_cycles = measure;
        cfg.seed = seed;
        return bench::run_point(m, algo, tr, cfg,
                                k == 0 ? std::function<void(FaultSet&)>{}
                                       : [&](FaultSet& f) {
                                           inject_random_link_faults(f, k,
                                                                     frng);
                                         });
      }});
    }
  }
  return points;
}

// Zero-allocation regression guard (runs only in FLEXROUTER_COUNT_ALLOCS
// builds — CI's bench-smoke step enables it). Drives a network replica by
// hand with Bernoulli injection, then samples the global allocation counter
// over 100-cycle windows: once the pools (rings, slab, worklists) have
// grown to the workload's peak, a steady-state cycle must not touch the
// heap. Requires 3 consecutive clean windows out of 30 — one-time pool
// growth is tolerated, per-cycle churn is not.
bool run_alloc_guard(int link_faults, int shards, bool aot_rules = false) {
  Mesh m = Mesh::two_d(8, 8);
  // `aot_rules` swaps the native router for the rule-driven one with the
  // pre-resolved decision table: an AOT hit must be as heap-free in the
  // steady state as a native decision (the table is filled during attach/
  // reconfigure, never per decision).
  std::unique_ptr<RoutingAlgorithm> rule_algo;
  if (aot_rules)
    rule_algo = std::make_unique<RuleDrivenRouting>(
        rulebases::ft_mesh_route_source(8, 8), 3, rules::ExecMode::Aot,
        "route", /*escape_vc=*/2);
  Nafta nafta;
  RoutingAlgorithm& algo = aot_rules ? *rule_algo
                                     : static_cast<RoutingAlgorithm&>(nafta);
  UniformTraffic tr(m);
  NetworkConfig ncfg;
  ncfg.expected_packets = 16384;
  ncfg.shards = shards;
  Network net(m, algo, ncfg);
  if (link_faults > 0) {
    Rng frng(99);
    net.apply_faults(
        [&](FaultSet& f) { inject_random_link_faults(f, link_faults, frng); });
  }
  const std::vector<int> comp = components(net.faults());
  Rng rng(42);
  Cycle now = 0;
  // Same offered load as the timed scenarios: injection_rate 0.10 flits
  // per node-cycle over 4-flit packets, i.e. 0.025 packets per node-cycle
  // (the Simulator's packet_prob = rate / mean_length).
  const double packet_prob = 0.10 / 4.0;
  const auto inject = [&] {
    for (NodeId s = 0; s < m.num_nodes(); ++s) {
      if (!net.faults().node_ok(s)) continue;
      if (!rng.next_bool(packet_prob)) continue;
      NodeId d = kInvalidNode;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId cand = tr.dest(s, rng);
        if (comp[static_cast<std::size_t>(cand)] ==
            comp[static_cast<std::size_t>(s)]) {
          d = cand;
          break;
        }
      }
      if (d != kInvalidNode) net.send(s, d, 4, now);
    }
  };
  for (int c = 0; c < 400; ++c) {  // warmup: pools grow to peak here
    inject();
    net.step(now++);
  }
  int clean = 0;
  for (int window = 0; window < 30 && clean < 3; ++window) {
    const std::int64_t before = heap_alloc_count();
    for (int c = 0; c < 100; ++c) {
      inject();
      net.step(now++);
    }
    const std::int64_t grew = heap_alloc_count() - before;
    clean = grew == 0 ? clean + 1 : 0;  // a dirty window resets the streak
  }
  if (clean < 3) {
    std::cerr << "ALLOCATION REGRESSION: steady-state cycles still allocate "
              << "(" << link_faults << " link faults, " << shards
              << " shards" << (aot_rules ? ", AOT rules" : "") << ")\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexrouter;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const Cycle single_warmup = smoke ? 200 : 2000;
  const Cycle single_measure = smoke ? 800 : 8000;
  const Cycle grid_warmup = smoke ? 100 : 400;
  const Cycle grid_measure = smoke ? 300 : 1600;

  bench::print_header(
      "Simulator throughput — serial hot loop and parallel sweep engine");

  // --- 0. zero-allocation steady-state guard -----------------------------
  // Both the legacy serial step and the sharded path must reach an
  // allocation-free steady state (the shard buffers and span lists grow to
  // the workload's peak during warmup, like every other pool).
  if (heap_alloc_counting_enabled()) {
    for (const int shards : {1, 4})
      for (const int faults : {0, 6})
        if (!run_alloc_guard(faults, shards)) return 1;
    // The AOT decision table must hold the same bar: a table hit may not
    // touch the heap, fault-free or after a reconfigure-triggered refill.
    for (const int faults : {0, 6})
      if (!run_alloc_guard(faults, 1, /*aot_rules=*/true)) return 1;
    std::cout << "alloc guard: steady-state cycles allocation-free "
                 "(serial and 4-shard, fault-free and faulted, native and "
                 "AOT rule-driven)\n\n";
  }

  // --- 1. single-replica cycles/sec --------------------------------------
  SingleReplica singles[] = {{"fault-free", 0}, {"6 link faults", 6}};
  bench::print_row({"scenario", "sim cycles", "wall s", "cycles/sec"});
  for (SingleReplica& s : singles) {
    double elapsed = 0.0;
    const SimResult r =
        run_single(s.link_faults, single_warmup, single_measure, &s.cycles,
                   &elapsed);
    if (r.deadlock_suspected) {
      std::cerr << "unexpected deadlock in single-replica scenario\n";
      return 1;
    }
    s.cycles_per_sec = static_cast<double>(s.cycles) / elapsed;
    bench::print_row({s.name, std::to_string(s.cycles), bench::fmt(elapsed, 3),
                      bench::fmt(s.cycles_per_sec, 0)});
  }

  // --- 2. sweep wall-clock at 1/2/4/8 threads ----------------------------
  const std::vector<SweepPoint> points = make_grid(grid_warmup, grid_measure);
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<SimResult> reference;
  double serial_wall = 0.0;
  struct SweepRow {
    int threads;
    double wall;
    bool identical;
  };
  std::vector<SweepRow> sweep_rows;

  std::cout << "\n";
  bench::print_row({"threads", "grid points", "wall s", "speedup",
                    "bit-identical"});
  for (const int t : thread_counts) {
    SweepOptions opts;
    opts.num_threads = t;
    opts.base_seed = 7;
    SweepRunner runner(opts);
    const auto t0 = Clock::now();
    const std::vector<SimResult> results = runner.run(points);
    const double wall = seconds_since(t0);
    bool identical = true;
    if (t == 1) {
      reference = results;
      serial_wall = wall;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        identical = identical && bit_identical(results[i], reference[i]);
    }
    sweep_rows.push_back({t, wall, identical});
    bench::print_row({std::to_string(t), std::to_string(points.size()),
                      bench::fmt(wall, 3), bench::fmt(serial_wall / wall, 2),
                      identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: sweep results differ at " << t
                << " threads\n";
      return 1;
    }
  }

  std::cout << "\nNote: speedup is bounded by the physical core count of the"
               "\nmachine running the bench; bit-identity must hold "
               "everywhere.\n";

  // --- 3. large fabrics at 1/2/4/8 shards --------------------------------
  const FabricScenario fabrics[] = {
      {"mesh64_nafta", "mesh64", "nafta", 0.05, smoke ? Cycle{20} : Cycle{200},
       smoke ? Cycle{80} : Cycle{600}},
      {"hcube12_route_c", "hcube12", "route_c", 0.02,
       smoke ? Cycle{20} : Cycle{100}, smoke ? Cycle{60} : Cycle{300}},
  };
  struct ShardRow {
    int shards;
    double wall;
    double cps;
    bool identical;
  };
  struct FabricReport {
    const char* name;
    Cycle cycles = 0;
    std::vector<ShardRow> rows;
  };
  std::vector<FabricReport> fabric_reports;
  const int shard_counts[] = {1, 2, 4, 8};

  std::cout << "\nlarge fabrics (4096 nodes), bit-checked against the serial "
               "step:\n";
  bench::print_row({"scenario", "shards", "sim cycles", "wall s",
                    "cycles/sec", "bit-identical"});
  for (const FabricScenario& sc : fabrics) {
    FabricReport rep;
    rep.name = sc.name;
    double ref_wall = 0.0;
    const SimResult ref =
        run_fabric(sc, 0, false, nullptr, 0, &rep.cycles, &ref_wall);
    bench::print_row({sc.name, "serial", std::to_string(rep.cycles),
                      bench::fmt(ref_wall, 3),
                      bench::fmt(static_cast<double>(rep.cycles) / ref_wall, 0),
                      "ref"});
    for (const int s : shard_counts) {
      Cycle cycles = 0;
      double wall = 0.0;
      const SimResult r = run_fabric(sc, s, false, nullptr, 0, &cycles, &wall);
      const bool identical = bit_identical(r, ref) && cycles == rep.cycles;
      rep.rows.push_back(
          {s, wall, static_cast<double>(cycles) / wall, identical});
      bench::print_row({"", std::to_string(s), std::to_string(cycles),
                        bench::fmt(wall, 3),
                        bench::fmt(static_cast<double>(cycles) / wall, 0),
                        identical ? "yes" : "NO"});
      if (!identical) {
        std::cerr << "DETERMINISM VIOLATION: " << sc.name << " differs at "
                  << s << " shards\n";
        return 1;
      }
    }
    fabric_reports.push_back(std::move(rep));
  }

  // --- 4. event-driven idle skipping on a lightly loaded fabric -----------
  // A mid-run link kill with a long detection window: injection halts while
  // the diagnosis is open, the in-flight worms drain, and the fabric is
  // provably inert until it fires. The serial tick pays a full link scan
  // for every one of those dead cycles; the event-driven step sees empty
  // worklists, and idle skipping jumps the window in one step. The headline
  // speedup is hybrid (worklists + skip) over the pre-PR serial tick — an
  // inert event-mode cycle is already so cheap that skip-on vs skip-off
  // alone is a small delta on top of it.
  const FabricScenario skip_sc = {
      "mesh64_low_load_skip", "mesh64",        "nafta",
      0.001,                  smoke ? Cycle{100} : Cycle{200},
      smoke ? Cycle{1200} : Cycle{20000}};
  const Cycle skip_detect = smoke ? 800 : 15000;
  FaultSchedule skip_sched;
  {
    // The kill cycle is tuned (per seed 42) so no worm is crossing the dead
    // link: a truncated worm would sit in its buffers through the whole
    // detection window and keep the fabric from ever being inert.
    const Mesh kill_mesh = Mesh::two_d(64, 64);
    skip_sched.fail_link_at(skip_sc.warmup + (smoke ? 100 : 300),
                            kill_mesh.at(10, 10), port_of(Compass::East));
  }
  Cycle skip_cycles = 0, noskip_cycles = 0, serial_cycles = 0;
  Cycle cycles_skipped = 0;
  double skip_ref_wall = 0.0, wall_off = 0.0, wall_on = 0.0;
  const SimResult skip_ref = run_fabric(skip_sc, 0, false, &skip_sched,
                                        skip_detect, &serial_cycles,
                                        &skip_ref_wall);
  const SimResult skip_off = run_fabric(skip_sc, 1, false, &skip_sched,
                                        skip_detect, &noskip_cycles,
                                        &wall_off);
  const SimResult skip_on = run_fabric(skip_sc, 1, true, &skip_sched,
                                       skip_detect, &skip_cycles, &wall_on,
                                       &cycles_skipped);
  const bool skip_identical = bit_identical(skip_off, skip_ref) &&
                              bit_identical(skip_on, skip_ref) &&
                              skip_cycles == noskip_cycles &&
                              skip_cycles == serial_cycles;
  const double cps_serial = static_cast<double>(serial_cycles) / skip_ref_wall;
  const double cps_off = static_cast<double>(noskip_cycles) / wall_off;
  const double cps_on = static_cast<double>(skip_cycles) / wall_on;
  const double skip_speedup = cps_on / cps_serial;
  std::cout << "\nidle skipping (" << skip_sc.name << ", rate "
            << skip_sc.rate << ", detection window " << skip_detect << "):\n";
  bench::print_row({"variant", "sim cycles", "skipped", "wall s",
                    "cycles/sec", "bit-identical"});
  bench::print_row({"serial tick", std::to_string(serial_cycles), "0",
                    bench::fmt(skip_ref_wall, 3), bench::fmt(cps_serial, 0),
                    "ref"});
  bench::print_row({"event, no skip", std::to_string(noskip_cycles), "0",
                    bench::fmt(wall_off, 3), bench::fmt(cps_off, 0),
                    skip_identical ? "yes" : "NO"});
  bench::print_row({"event + skip", std::to_string(skip_cycles),
                    std::to_string(cycles_skipped), bench::fmt(wall_on, 3),
                    bench::fmt(cps_on, 0), skip_identical ? "yes" : "NO"});
  std::cout << "event-skip speedup vs serial tick: "
            << bench::fmt(skip_speedup, 2) << "x ("
            << cycles_skipped << " of " << skip_cycles
            << " cycles skipped; " << bench::fmt(wall_off / wall_on, 2)
            << "x from skipping alone)\n";
  if (!skip_identical) {
    std::cerr << "DETERMINISM VIOLATION: idle skipping changed results\n";
    return 1;
  }
  if (cycles_skipped <= 0) {
    std::cerr << "EVENT-SKIP REGRESSION: no cycles skipped on the low-load "
                 "scenario\n";
    return 1;
  }
  if (!smoke && skip_speedup <= 1.0) {
    std::cerr << "EVENT-SKIP REGRESSION: no single-core win over the serial "
                 "tick\n";
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os.precision(17);
    os << "{\n  \"context\": {\n"
       << "    \"num_cpus\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "    \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "    \"note\": \"captured on a 1-CPU container: shard and sweep "
          "rows are determinism checks there, not parallel wins; the "
          "event-skip speedup is a genuine single-core win\"\n  },\n";
    os << "  \"single_replica\": [\n";
    for (std::size_t i = 0; i < 2; ++i) {
      os << "    {\"scenario\": \"" << singles[i].name
         << "\", \"sim_cycles\": " << singles[i].cycles
         << ", \"cycles_per_sec\": " << singles[i].cycles_per_sec << "}"
         << (i + 1 < 2 ? "," : "") << "\n";
    }
    os << "  ],\n  \"sweep_16pt\": [\n";
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& sr = sweep_rows[i];
      os << "    {\"threads\": " << sr.threads << ", \"wall_sec\": " << sr.wall
         << ", \"speedup\": " << serial_wall / sr.wall
         << ", \"bit_identical\": " << (sr.identical ? "true" : "false")
         << "}" << (i + 1 < sweep_rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"large_fabric\": [\n";
    for (std::size_t i = 0; i < fabric_reports.size(); ++i) {
      const FabricReport& fr = fabric_reports[i];
      os << "    {\"scenario\": \"" << fr.name << "\", \"nodes\": 4096, "
         << "\"sim_cycles\": " << fr.cycles << ", \"shards\": [\n";
      for (std::size_t j = 0; j < fr.rows.size(); ++j) {
        const ShardRow& row = fr.rows[j];
        os << "      {\"shards\": " << row.shards
           << ", \"wall_sec\": " << row.wall
           << ", \"cycles_per_sec\": " << row.cps
           << ", \"bit_identical\": " << (row.identical ? "true" : "false")
           << "}" << (j + 1 < fr.rows.size() ? "," : "") << "\n";
      }
      os << "    ]}" << (i + 1 < fabric_reports.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"event_skip\": {\n"
       << "    \"scenario\": \"" << skip_sc.name << "\",\n"
       << "    \"sim_cycles\": " << skip_cycles << ",\n"
       << "    \"events_skipped\": " << cycles_skipped << ",\n"
       << "    \"cycles_per_sec_serial_tick\": " << cps_serial << ",\n"
       << "    \"cycles_per_sec_event_no_skip\": " << cps_off << ",\n"
       << "    \"cycles_per_sec_event_skip\": " << cps_on << ",\n"
       << "    \"single_core_speedup_vs_serial_tick\": " << skip_speedup
       << ",\n"
       << "    \"speedup_from_skipping_alone\": " << wall_off / wall_on
       << ",\n"
       << "    \"bit_identical\": " << (skip_identical ? "true" : "false")
       << "\n  }\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
