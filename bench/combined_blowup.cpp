// Experiment E4: the exponential blow-up of merging rule interpretation
// steps. The paper: "the combination of the two rule bases of ROUTE_C
// decide_dir and decide_vc requires a rule interpreter configuration with
// 1024 * 2^d x (d+1+a) bits rule table" — i.e. integrating several steps
// into one is possible but prohibitively expensive, which justifies the
// two-interpretation decision pipeline.
//
// The (d, a) grid is embarrassingly parallel, so the rows are computed via
// SweepRunner::run_tasks (the generic fan-out; no simulation involved) and
// printed in grid order afterwards.
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/evaluation.hpp"

int main() {
  using namespace flexrouter;
  bench::print_header(
      "E4 — combined decide_dir+decide_vc table vs the two-step tables");
  bench::print_row({"d", "a", "two-step bits", "combined bits", "blow-up x"});

  struct Row {
    int d = 0;
    int a = 0;
    std::int64_t two_step = 0;
    std::int64_t combined = 0;
  };
  std::vector<Row> rows;
  for (int d = 3; d <= 10; ++d)
    for (int a = 1; a <= 3; ++a) rows.push_back({d, a, 0, 0});

  std::vector<std::function<void()>> tasks;
  tasks.reserve(rows.size());
  for (Row& row : rows) {
    tasks.push_back([&row] {
      const auto rep = hwcost::table2_route_c(row.d, row.a);
      for (const auto& r : rep.rows)
        if (r.name == "decide_dir" || r.name == "decide_vc")
          row.two_step += r.table_bits;
      row.combined = hwcost::combined_rulebase_bits(row.d, row.a);
    });
  }
  SweepRunner runner;
  runner.run_tasks(tasks);

  for (const Row& row : rows) {
    bench::print_row({std::to_string(row.d), std::to_string(row.a),
                      std::to_string(row.two_step),
                      std::to_string(row.combined),
                      bench::fmt(static_cast<double>(row.combined) /
                                 static_cast<double>(row.two_step), 1)});
  }
  std::cout << "\nThe separated interpretation keeps the table memory linear"
               " in d;\nthe merged one grows as 2^d — the paper's argument "
               "for multi-step\nrule interpretation stands.\n";
  return 0;
}
