// Experiment E4: the exponential blow-up of merging rule interpretation
// steps. The paper: "the combination of the two rule bases of ROUTE_C
// decide_dir and decide_vc requires a rule interpreter configuration with
// 1024 * 2^d x (d+1+a) bits rule table" — i.e. integrating several steps
// into one is possible but prohibitively expensive, which justifies the
// two-interpretation decision pipeline.
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/evaluation.hpp"

int main() {
  using namespace flexrouter;
  bench::print_header(
      "E4 — combined decide_dir+decide_vc table vs the two-step tables");
  bench::print_row({"d", "a", "two-step bits", "combined bits", "blow-up x"});
  for (int d = 3; d <= 10; ++d) {
    for (int a = 1; a <= 3; ++a) {
      const auto rep = hwcost::table2_route_c(d, a);
      std::int64_t two_step = 0;
      for (const auto& r : rep.rows)
        if (r.name == "decide_dir" || r.name == "decide_vc")
          two_step += r.table_bits;
      const auto combined = hwcost::combined_rulebase_bits(d, a);
      bench::print_row({std::to_string(d), std::to_string(a),
                        std::to_string(two_step), std::to_string(combined),
                        bench::fmt(static_cast<double>(combined) /
                                   static_cast<double>(two_step), 1)});
    }
  }
  std::cout << "\nThe separated interpretation keeps the table memory linear"
               " in d;\nthe merged one grows as 2^d — the paper's argument "
               "for multi-step\nrule interpretation stands.\n";
  return 0;
}
