// Reconfiguration cost of the diagnosis phase: neighbour exchanges and
// settle rounds as faults accumulate.
//
// Paper claims exercised here: ROUTE_C's "propagation scheme settles fast"
// (the state combination forms a partial order — rounds stay small and
// bounded by the lattice height, not the network size), NAFTA's wave
// propagation cost, and the full-table rebuild cost of the up*/down* and
// spanning-tree layers for comparison.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"
#include "routing/route_c.hpp"
#include "routing/spanning_tree.hpp"
#include "routing/updown.hpp"

int main() {
  using namespace flexrouter;

  bench::print_header(
      "ROUTE_C (d=6, 64 nodes): state-propagation settle rounds vs faults");
  bench::print_row({"node faults", "settle rounds", "exchanges", "unsafe"});
  {
    Rng rng(1);
    Hypercube h(6);
    FaultSet f(h);
    RouteC rc;
    rc.attach(h, f);
    for (const int k : {0, 1, 2, 4, 8, 12}) {
      FaultSet fk(h);
      RouteC rck;
      rck.attach(h, fk);
      Rng r2(static_cast<std::uint64_t>(k) + 3);
      inject_random_node_faults(fk, k, r2);
      const int ex = rck.reconfigure();
      bench::print_row({std::to_string(k),
                        std::to_string(rck.last_settle_rounds()),
                        std::to_string(ex),
                        std::to_string(rck.num_unsafe())});
    }
    std::cout << "Settle rounds stay at the lattice height (<= 3) even as\n"
                 "faults grow — the partial-order argument of the paper.\n";
  }

  bench::print_header(
      "NAFTA (16x16 mesh): reconfiguration cost vs link faults");
  bench::print_row({"link faults", "deact rounds", "exchanges", "deactivated"});
  {
    for (const int k : {0, 2, 4, 8, 16, 32}) {
      Mesh m = Mesh::two_d(16, 16);
      FaultSet f(m);
      Nafta nafta;
      nafta.attach(m, f);
      Rng rng(static_cast<std::uint64_t>(k) + 11);
      inject_random_link_faults(f, k, rng);
      const int ex = nafta.reconfigure();
      bench::print_row({std::to_string(k),
                        std::to_string(nafta.last_settle_rounds()),
                        std::to_string(ex),
                        std::to_string(nafta.num_deactivated())});
    }
  }

  bench::print_header(
      "Escape-layer rebuild (up*/down*) and spanning-tree recompute "
      "(16x16 mesh)");
  bench::print_row({"link faults", "updown exchanges", "tree exchanges"});
  for (const int k : {0, 4, 16, 32}) {
    Mesh m = Mesh::two_d(16, 16);
    FaultSet f(m);
    UpDownRouting ud;
    ud.attach(m, f);
    SpanningTreeRouting st;
    st.attach(m, f);
    Rng rng(static_cast<std::uint64_t>(k) + 29);
    inject_random_link_faults(f, k, rng);
    bench::print_row({std::to_string(k), std::to_string(ud.reconfigure()),
                      std::to_string(st.reconfigure())});
  }
  std::cout << "\nNAFTA's exchange totals are dominated by its embedded\n"
               "escape-layer (up*/down*) rebuild; the rule-state part is the\n"
               "dead-end ripple (2(w-1)h + 2(h-1)w = 960 exchanges on 16x16)\n"
               "plus the handful of deactivation rounds shown above. The\n"
               "table-driven layers pay a network-sized rebuild per fault\n"
               "epoch either way — the paper's case for cheap per-node fault\n"
               "states with a rarely-rebuilt escape structure.\n";
  return 0;
}
