// Experiment X1: Section 2's strawman quantified. "There exists the
// following simple routing algorithm ... compute a spanning tree ... route
// messages by only using edges of the tree. However this algorithm uses
// only a small fraction of the network links in most cases. This has the
// effect that the shortest ways between two nodes are nearly never taken."
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "routing/spanning_tree.hpp"
#include "routing/updown.hpp"
#include "topology/graph_algo.hpp"

int main() {
  using namespace flexrouter;
  Mesh m = Mesh::two_d(8, 8);

  {
    FaultSet f(m);
    SpanningTreeRouting st;
    st.attach(m, f);
    bench::print_header("X1 — link usage on the fault-free 8x8 mesh");
    std::cout << "spanning tree uses " << bench::fmt(
                     st.link_usage_fraction() * 100, 1)
              << "% of the 112 mesh links (63 tree edges);\n"
              << "adaptive routing can use 100%.\n";

    // Fraction of node pairs routed minimally by the tree.
    int minimal = 0, total = 0;
    const auto all = all_pairs_distances(f);
    for (NodeId s = 0; s < m.num_nodes(); ++s)
      for (NodeId t = 0; t < m.num_nodes(); ++t) {
        if (s == t) continue;
        // Walk the unique tree path.
        NodeId at = s;
        int hops = 0;
        while (at != t) {
          RouteContext ctx;
          ctx.node = at;
          ctx.dest = t;
          ctx.src = s;
          ctx.in_port = m.degree();
          ctx.in_vc = 0;
          at = m.neighbor(at, st.route(ctx).candidates[0].port);
          ++hops;
        }
        ++total;
        if (hops == all[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)])
          ++minimal;
      }
    std::cout << "node pairs with a minimal tree path: " << minimal << "/"
              << total << " (" << bench::fmt(100.0 * minimal / total, 1)
              << "%); every pair off the tree spine pays detours, and the\n"
              << "average path is ~1.75x minimal (see hops/min below).\n";
  }

  bench::print_header(
      "X1 — latency/throughput: spanning tree vs up*/down* vs NARA vs NAFTA "
      "(uniform traffic)");
  bench::print_row({"algorithm", "rate", "avg lat", "throughput",
                    "hops/min", "delivered"});
  UniformTraffic tr(m);
  for (const double rate : {0.02, 0.05, 0.08, 0.12}) {
    for (const char* name : {"spanning-tree", "updown", "nara", "nafta"}) {
      auto algo = make_algorithm(name);
      const SimResult r = bench::run_point(m, *algo, tr, rate, 4, 99);
      std::ostringstream delivered;
      delivered << r.delivered_packets << "/" << r.injected_packets;
      bench::print_row({name, bench::fmt(rate), bench::fmt(r.avg_latency),
                        bench::fmt(r.throughput, 4),
                        bench::fmt(r.min_hops_ratio), delivered.str()});
      if (r.deadlock_suspected) {
        std::cout << "DEADLOCK SUSPECTED for " << name << "\n";
        return 1;
      }
    }
    std::cout << "\n";
  }
  bench::print_header(
      "X1 — load concentration at rate 0.05 (link information units)");
  bench::print_row({"algorithm", "max link util", "mean link util",
                    "max/mean"});
  for (const char* name : {"spanning-tree", "updown", "nara"}) {
    auto algo = make_algorithm(name);
    Network net(m, *algo);
    UniformTraffic tr2(m);
    SimConfig cfg;
    cfg.injection_rate = 0.05;
    cfg.packet_length = 4;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 2000;
    cfg.seed = 7;
    Simulator sim(net, tr2, cfg);
    sim.run();
    const auto [max_u, mean_u] = net.utilization_summary(sim.now());
    bench::print_row({name, bench::fmt(max_u, 3), bench::fmt(mean_u, 3),
                      bench::fmt(max_u / mean_u, 1)});
  }
  std::cout
      << "\nReading: the tree concentrates the whole network's traffic onto\n"
         "the links around its root (peak link utilisation several times\n"
         "that of the adaptive routers), saturates at a fraction of\n"
         "their throughput, and its paths are far from minimal — the "
         "paper's\nargument for real fault-tolerant routing.\n";
  return 0;
}
