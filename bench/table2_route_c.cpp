// Experiment T2: regenerate Table 2 — the rule bases of ROUTE_C — for the
// paper's headline configuration (64-node hypercube, a = 2) plus a sweep
// over the dimension, and compare the total rule-table memory with the
// paper's 2960-bit figure.
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/evaluation.hpp"

int main() {
  using namespace flexrouter;
  bench::print_header(
      "T2 — Table 2: rule bases of ROUTE_C (d = 6, a = 2; regenerated)");
  const auto rep = hwcost::table2_route_c(6, 2);
  std::cout << rep.render() << "\n";

  std::cout << "Paper rows for comparison:\n"
            << "  decide_dir     512 x 4        (*)  6 logical units d bits "
               "wide: AND, zero check, input negate\n"
            << "  decide_vc      (4*d) x (1+a)       minimum selection, "
               "compare with constant\n"
            << "  update_state   180 x 7             conditional increment, "
               "compare with constant\n"
            << "  adaptivity     (not specified) (*)\n"
            << "\nPaper total for d=6, a=2: 2960 bits; ours: "
            << rep.total_table_bits << " bits.\n";

  bench::print_header("Total rule-table bits vs hypercube dimension (a = 2)");
  bench::print_row({"d", "nodes", "total bits", "paper model"});
  for (int d = 3; d <= 10; ++d) {
    const auto r = hwcost::table2_route_c(d, 2);
    // The paper's own scaling: decide_dir fixed, decide_vc 4d(1+a),
    // update_state fixed-ish, i.e. near-linear in d.
    bench::print_row({std::to_string(d),
                      std::to_string(std::int64_t{1} << d),
                      std::to_string(r.total_table_bits),
                      "~linear in d"});
  }
  return 0;
}
