// Experiments E1 + E2: register-bit accounting.
//  E1 — NAFTA: 159 bits in 8 registers, 47 of them for fault tolerance.
//  E2 — ROUTE_C: 15d + 2*ceil(log2 d) + 3 bits in 9 registers (one
//       constant), 9d bits needed without fault tolerance. Swept over d.
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/evaluation.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/parser.hpp"

int main() {
  using namespace flexrouter;

  bench::print_header("E1 — NAFTA register budget (16x16 mesh)");
  const auto ft = rules::parse_program(rulebases::nafta_program_source(16, 16));
  const auto nft = rules::parse_program(rulebases::nara_program_source(16, 16));
  bench::print_row({"", "paper", "ours"}, 22);
  bench::print_row({"total bits", "159", std::to_string(ft.total_register_bits())}, 22);
  bench::print_row({"registers", "8", std::to_string(ft.variables.size())}, 22);
  bench::print_row({"non-FT bits (NARA)", "112",
                    std::to_string(nft.total_register_bits())},
                   22);
  bench::print_row({"FT-only bits", "47",
                    std::to_string(ft.total_register_bits() -
                                   nft.total_register_bits())},
                   22);
  std::cout << "\nper-register breakdown:\n";
  for (const auto& v : ft.variables) {
    std::cout << "  " << std::left << std::setw(20) << v.name << " "
              << v.register_bits() << " bits"
              << (nft.find_variable(v.name) ? "" : "   (ft only)") << "\n";
  }

  bench::print_header(
      "E2 — ROUTE_C register bits vs dimension (formula 15d + 2 log d + 3)");
  bench::print_row({"d", "formula", "measured", "non-FT (9d)"});
  for (int d = 2; d <= 10; ++d) {
    const auto measured = hwcost::route_c_register_measured(d, 2);
    const auto formula = hwcost::route_c_register_formula(d);
    const auto nftp =
        rules::parse_program(rulebases::route_c_nft_program_source(d, 2));
    bench::print_row({std::to_string(d), std::to_string(formula),
                      std::to_string(measured),
                      std::to_string(nftp.total_register_bits())});
    if (measured != formula) {
      std::cout << "MISMATCH at d=" << d << "\n";
      return 1;
    }
  }
  std::cout << "\nAll dimensions match the paper's closed form. The nine\n"
               "ROUTE_C registers include one constant register (cube_dim),\n"
               "which holds a configuration-time value and no flexible bits.\n";
  return 0;
}
