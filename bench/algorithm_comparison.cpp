// The introduction's motivation, made concrete: "applications like
// multimedia, number crunching or data warehousing require different and
// flexible behavior in order to achieve an optimized network usage. This
// leads to the fact that switches with configurable behavior are highly
// desirable."
//
// Head-to-head of every mesh routing algorithm in the repository across
// four traffic patterns: no single algorithm wins everywhere, which is why
// a router whose algorithm is a loadable rule base (rather than baked
// silicon) earns its keep.
//
// The full (rate x algorithm x pattern) grid — 40 independent simulations —
// runs on SweepRunner; results are printed in grid order afterwards, so the
// table is identical at any thread count.
#include <iostream>

#include "bench_util.hpp"
#include "routing/routing.hpp"

int main() {
  using namespace flexrouter;
  Mesh m = Mesh::two_d(8, 8);

  const std::vector<std::string> algorithms = {"dor-mesh", "nara", "nafta",
                                               "planar-adaptive", "updown"};
  const std::vector<std::string> patterns = {"uniform", "transpose",
                                             "tornado", "hotspot"};
  const std::vector<double> rates = {0.08, 0.16};

  std::vector<SweepPoint> points;
  for (const double rate : rates) {
    for (const std::string& aname : algorithms) {
      for (const std::string& pname : patterns) {
        points.push_back({[&m, aname, pname, rate](std::uint64_t) {
          auto algo = make_algorithm(aname);
          auto traffic = make_traffic(pname, m, 5);
          return bench::run_point(m, *algo, *traffic, rate, 4, 31, {}, 600,
                                  1500);
        }});
      }
    }
  }

  SweepRunner runner;
  const std::vector<SimResult> results = runner.run(points);

  std::size_t i = 0;
  for (const double rate : rates) {
    bench::print_header("Mesh 8x8, offered load " + bench::fmt(rate) +
                        " flits/node/cycle — avg latency (p99) in cycles");
    std::vector<std::string> head = {"algorithm"};
    for (const std::string& p : patterns) head.push_back(p);
    bench::print_row(head, 18);
    for (const std::string& aname : algorithms) {
      std::vector<std::string> row = {aname};
      for (std::size_t p = 0; p < patterns.size(); ++p) {
        const SimResult& r = results[i++];
        if (r.deadlock_suspected ||
            r.delivered_packets != r.injected_packets) {
          row.push_back("saturated");
        } else {
          row.push_back(bench::fmt(r.avg_latency, 1) + " (" +
                        bench::fmt(r.p99_latency, 0) + ")");
        }
      }
      bench::print_row(row, 18);
    }
  }
  std::cout
      << "\nReading: no fixed choice wins every workload — dimension order\n"
         "collapses on transpose yet edges out minimal-adaptive routing on\n"
         "tornado under load (a classic effect: adaptivity spreads tornado\n"
         "traffic onto already-congested rings), the adaptive algorithms\n"
         "own uniform/transpose, and the tree router is only a fallback.\n"
         "A switch whose algorithm is a loadable rule base can pick the\n"
         "right one per application — the paper's introduction, measured.\n";
  return 0;
}
