// Experiment X3: the adaptivity discussion of Section 3. "An adaptivity
// scheme not aware of fault-tolerance could cause a very ineffective use of
// the network because faulty regions may appear lowly loaded and thus such
// a method may try to assign more traffic to it causing more detours. ...
// a faulty link just has to appear as maximally loaded."
//
// Ablation: NAFTA with fault-aware adaptivity (dead-end regions and the
// escape layer deprioritised) vs a fault-blind variant that ranks them like
// any other output.
#include <iostream>

#include "bench_util.hpp"
#include "routing/nafta.hpp"

int main() {
  using namespace flexrouter;
  Mesh m = Mesh::two_d(8, 8);
  UniformTraffic tr(m);

  bench::print_header(
      "X3 — fault-aware vs fault-blind adaptivity (8x8 mesh, 6 link faults "
      "+ concave fault block)");
  bench::print_row({"variant", "rate", "avg lat", "p99", "hops/min",
                    "misrouted %"});
  for (const double rate : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    for (const bool aware : {true, false}) {
      Nafta nafta(aware);
      Rng rng(2026);
      const SimResult r = bench::run_point(
          m, nafta, tr, rate, 4, 5, [&](FaultSet& f) {
            inject_concave_faults(f, m, 2, 2, 4, 4);
            inject_random_link_faults(f, 3, rng);
          });
      bench::print_row({aware ? "fault-aware" : "fault-blind",
                        bench::fmt(rate), bench::fmt(r.avg_latency),
                        bench::fmt(r.p99_latency),
                        bench::fmt(r.min_hops_ratio),
                        bench::fmt(r.misrouted_fraction * 100, 1)});
      if (r.deadlock_suspected || r.delivered_packets != r.injected_packets) {
        std::cout << "EXPERIMENT INVALID (deadlock or loss)\n";
        return 1;
      }
    }
    std::cout << "\n";
  }
  std::cout
      << "Reading: at low load the fault-blind ranking even wins slightly —\n"
         "the detour resources it recruits (the reconfigured escape tree)\n"
         "look idle and genuinely are. Approaching saturation the picture\n"
         "flips: treating those shared fault-workaround resources as free\n"
         "capacity drags bulk traffic onto them and they congest first,\n"
         "exactly the paper's warning that a fault-unaware adaptivity\n"
         "measure 'may try to assign more traffic to [the faulty region]\n"
         "causing more detours'. Structural protections (faulty links are\n"
         "never candidates; deactivated nodes are filtered) cap the damage\n"
         "in this implementation — see EXPERIMENTS.md for the discussion.\n";
  return 0;
}
