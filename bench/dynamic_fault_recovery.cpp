// Dynamic fault recovery benchmark — the live fault lifecycle end to end.
//
// A link is killed in the middle of the measurement window (fault
// assumption v: faults arrive while the network operates) and the recovery
// controller runs the paper's quiescent diagnosis phase: in-flight victims
// are truncated and accounted, injection is gated while survivors drain,
// the fault is committed (epoch bump + reconfigure) and sources retransmit
// lost packets. Reported per scenario: loss/retransmission counts,
// recovery cycles, availability, and the hard accounting identity
//     delivered + unrecoverable == injected
// (every measured packet must be delivered or explicitly given up on —
// nothing may vanish).
//
// Scenarios compare the paper's two flexibility poles: NAFTA on an 8x8
// mesh vs ROUTE_C on a 4-cube, same offered load, same mid-measurement
// link kill.
//
// Also checked, because they are the contracts the lifecycle must not
// break:
//   - sweep bit-identity at 1/2/4/8 worker threads with the fault
//     schedule armed (recovery metrics included in the comparison), and
//   - the zero-allocation steady state after a live kill + recovery
//     (FLEXROUTER_COUNT_ALLOCS builds only).
//
// Usage:
//   ./dynamic_fault_recovery              # full run
//   ./dynamic_fault_recovery --smoke      # tiny cycle counts for CI
//   ./dynamic_fault_recovery --json FILE  # also emit a JSON report
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "common/alloc_counter.hpp"
#include "routing/nafta.hpp"
#include "topology/graph_algo.hpp"
#include "topology/hypercube.hpp"

namespace {

using namespace flexrouter;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Field-wise bit-identity including the recovery metrics — the sweep
/// determinism contract now covers the lifecycle counters too.
bool bit_identical(const SimResult& a, const SimResult& b) {
  if (a.blocked_chain.size() != b.blocked_chain.size()) return false;
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    if (a.blocked_chain[i].node != b.blocked_chain[i].node ||
        a.blocked_chain[i].port != b.blocked_chain[i].port ||
        a.blocked_chain[i].vc != b.blocked_chain[i].vc ||
        a.blocked_chain[i].packet != b.blocked_chain[i].packet)
      return false;
  }
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.availability, &b.availability, sizeof(double)) == 0 &&
         a.packets_lost == b.packets_lost &&
         a.packets_retransmitted == b.packets_retransmitted &&
         a.packets_unrecoverable == b.packets_unrecoverable &&
         a.fault_events == b.fault_events &&
         a.recovery_events == b.recovery_events &&
         a.recovery_cycles == b.recovery_cycles &&
         a.worms_killed == b.worms_killed &&
         a.reconfig_exchanges == b.reconfig_exchanges &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

constexpr int kScenarios = 2;
const char* scenario_name(int s) {
  return s == 0 ? "nafta / 8x8 mesh" : "route_c / 4-cube";
}

/// One replica of scenario `s`: build topology + algorithm, arm a single
/// link kill halfway through the measurement window, run the lifecycle.
SimResult run_recovery_point(int s, double rate, Cycle warmup, Cycle measure,
                             std::uint64_t seed) {
  std::unique_ptr<Topology> topo;
  std::unique_ptr<RoutingAlgorithm> algo;
  NodeId kill_node = kInvalidNode;
  PortId kill_port = kInvalidPort;
  if (s == 0) {
    auto m = std::make_unique<Mesh>(std::vector<int>{8, 8});
    kill_node = m->at(3, 3);
    kill_port = port_of(Compass::East);
    topo = std::move(m);
    algo = make_algorithm("nafta");
  } else {
    topo = std::make_unique<Hypercube>(4);
    kill_node = 5;
    kill_port = 0;
    algo = make_algorithm("route_c");
  }
  UniformTraffic tr(*topo);
  Network net(*topo, *algo);
  SimConfig cfg;
  cfg.injection_rate = rate;
  cfg.packet_length = 4;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = seed;
  FaultSchedule schedule;
  schedule.fail_link_at(warmup + measure / 2, kill_node, kill_port);
  Simulator sim(net, tr, cfg);
  sim.set_fault_schedule(schedule);
  return sim.run();
}

/// Zero-allocation steady state across a live kill: drive a replica by
/// hand, kill a link mid-run, drain, commit the fault, and verify that
/// post-recovery steady-state cycles stay off the heap (the truncation and
/// recovery machinery must run out of the pre-reserved pools).
bool run_alloc_guard() {
  Mesh m = Mesh::two_d(8, 8);
  Nafta algo;
  UniformTraffic tr(m);
  NetworkConfig ncfg;
  ncfg.expected_packets = 16384;
  Network net(m, algo, ncfg);
  std::vector<int> comp = components(net.faults());
  Rng rng(42);
  Cycle now = 0;
  const double packet_prob = 0.10 / 4.0;
  const auto inject = [&] {
    for (NodeId s = 0; s < m.num_nodes(); ++s) {
      if (!net.faults().node_ok(s)) continue;
      if (!rng.next_bool(packet_prob)) continue;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId cand = tr.dest(s, rng);
        if (cand == s) continue;
        if (comp[static_cast<std::size_t>(cand)] ==
            comp[static_cast<std::size_t>(s)]) {
          net.send(s, cand, 4, now);
          break;
        }
      }
    }
  };
  for (int c = 0; c < 300; ++c) {
    inject();
    net.step(now++);
  }
  // Live kill, quiescent drain, control-plane commit — the lifecycle the
  // Simulator's recovery controller performs, driven by hand, including
  // its drain watchdog: a worm whose only candidates cross the dead link
  // wedges against the stale routing tables, so a stalled window gets the
  // same structured victim kill (lowest packet id in the blocked chain).
  net.kill_link_live(m.at(3, 3), port_of(Compass::East));
  std::int64_t last_moved = net.total_flit_movements();
  Cycle stall = 0;
  for (int c = 0; c < 20000 && !net.idle(); ++c) {
    net.step(now++);
    const std::int64_t moved = net.total_flit_movements();
    if (moved != last_moved) {
      last_moved = moved;
      stall = 0;
      continue;
    }
    if (++stall > 200) {
      PacketId victim = -1;
      for (const Network::BlockedChannel& ch : net.blocked_chain()) {
        if (ch.packet < 0) continue;
        const PacketRecord& rec = net.record(ch.packet);
        if (rec.done() || rec.lost) continue;
        if (victim < 0 || ch.packet < victim) victim = ch.packet;
      }
      if (victim >= 0) net.kill_packet(victim);
      stall = 0;
    }
  }
  if (!net.idle()) {
    std::cerr << "alloc guard: network failed to drain after live kill\n";
    return false;
  }
  net.commit_pending_faults();
  comp = components(net.faults());
  for (int c = 0; c < 400; ++c) {  // regrow pools to the new steady state
    inject();
    net.step(now++);
  }
  int clean = 0;
  for (int window = 0; window < 30 && clean < 3; ++window) {
    const std::int64_t before = heap_alloc_count();
    for (int c = 0; c < 100; ++c) {
      inject();
      net.step(now++);
    }
    const std::int64_t grew = heap_alloc_count() - before;
    clean = grew == 0 ? clean + 1 : 0;
  }
  if (clean < 3) {
    std::cerr << "ALLOCATION REGRESSION: post-recovery steady-state cycles "
                 "still allocate\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexrouter;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const Cycle warmup = smoke ? 200 : 1000;
  const Cycle measure = smoke ? 800 : 4000;
  const double rate = 0.08;

  bench::print_header(
      "Dynamic fault recovery — live link kill mid-measurement");

  // --- 0. zero-allocation guard across a live kill -----------------------
  if (heap_alloc_counting_enabled()) {
    if (!run_alloc_guard()) return 1;
    std::cout << "alloc guard: post-recovery steady state allocation-free\n\n";
  }

  // --- 1. recovery comparison + accounting identity ----------------------
  SimResult scen[kScenarios];
  bench::print_row({"scenario", "delivered", "lost", "retx", "unrec",
                    "kills", "rec cycles", "avail"},
                   12);
  for (int s = 0; s < kScenarios; ++s) {
    scen[s] = run_recovery_point(s, rate, warmup, measure, 42);
    const SimResult& r = scen[s];
    std::ostringstream frac;
    frac << r.delivered_packets << "/" << r.injected_packets;
    bench::print_row(
        {scenario_name(s), frac.str(), std::to_string(r.packets_lost),
         std::to_string(r.packets_retransmitted),
         std::to_string(r.packets_unrecoverable),
         std::to_string(r.worms_killed), std::to_string(r.recovery_cycles),
         bench::fmt(r.availability, 4)},
        12);
    if (r.deadlock_suspected) {
      std::cerr << "RECOVERY FAILURE: watchdog abort in '" << scenario_name(s)
                << "'\n";
      return 1;
    }
    if (r.fault_events != 1) {
      std::cerr << "RECOVERY FAILURE: expected exactly one fault event in '"
                << scenario_name(s) << "', saw " << r.fault_events << "\n";
      return 1;
    }
    if (r.delivered_packets + r.packets_unrecoverable != r.injected_packets) {
      std::cerr << "ACCOUNTING VIOLATION in '" << scenario_name(s) << "': "
                << r.delivered_packets << " delivered + "
                << r.packets_unrecoverable << " unrecoverable != "
                << r.injected_packets << " injected\n";
      return 1;
    }
  }
  std::cout << "accounting identity: delivered + unrecoverable == injected "
               "(both scenarios)\n";

  // --- 2. sweep bit-identity with the lifecycle armed --------------------
  std::vector<SweepPoint> points;
  for (int s = 0; s < kScenarios; ++s) {
    for (const double r : {0.04, 0.08}) {
      points.push_back({[s, r, warmup, measure](std::uint64_t seed) {
        return run_recovery_point(s, r, warmup, measure, seed);
      }});
    }
  }
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<SimResult> reference;
  double serial_wall = 0.0;
  std::cout << "\n";
  bench::print_row({"threads", "points", "wall s", "bit-identical"}, 12);
  for (const int t : thread_counts) {
    SweepOptions opts;
    opts.num_threads = t;
    opts.base_seed = 7;
    SweepRunner runner(opts);
    const auto t0 = Clock::now();
    const std::vector<SimResult> results = runner.run(points);
    const double wall = seconds_since(t0);
    bool identical = true;
    if (t == 1) {
      reference = results;
      serial_wall = wall;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i)
        identical = identical && bit_identical(results[i], reference[i]);
    }
    bench::print_row({std::to_string(t), std::to_string(points.size()),
                      bench::fmt(wall, 3), identical ? "yes" : "NO"},
                     12);
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION: recovery sweep differs at " << t
                << " threads\n";
      return 1;
    }
  }
  static_cast<void>(serial_wall);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os.precision(17);
    os << "{\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"scenarios\": [\n";
    for (int s = 0; s < kScenarios; ++s) {
      const SimResult& r = scen[s];
      os << "    {\"name\": \"" << scenario_name(s)
         << "\", \"injected\": " << r.injected_packets
         << ", \"delivered\": " << r.delivered_packets
         << ", \"lost\": " << r.packets_lost
         << ", \"retransmitted\": " << r.packets_retransmitted
         << ", \"unrecoverable\": " << r.packets_unrecoverable
         << ", \"recovery_cycles\": " << r.recovery_cycles
         << ", \"availability\": " << r.availability << "}"
         << (s + 1 < kScenarios ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
