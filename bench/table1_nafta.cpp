// Experiment T1: regenerate Table 1 — the rule bases of NAFTA, their
// compiled table sizes, FCFB inventories and non-FT markers — and print the
// paper's published numbers next to ours.
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/evaluation.hpp"

namespace {

struct PaperRow {
  const char* name;
  const char* size;
  bool nft;
  const char* fcfbs;
};

// Table 1 of the paper, verbatim.
const PaperRow kPaper[] = {
    {"incoming_message", "1024 x 8", true,
     "2 x magnitude comparator, minimum selection, mesh distance "
     "computation, membership testing"},
    {"in_message_ft", "256 x 7", false, "logical unit, minimum selection"},
    {"update_dir_table", "64 x 28", false, "set subtraction"},
    {"message_finished", "64 x 8", true, "minimum selection, 4 decrementors"},
    {"calculate_new_node_state", "64 x 9", false,
     "computation in a finite lattice, set difference, state comparison"},
    {"test_exception", "32 x 9", false, "membership testing"},
    {"tell_my_neighbors", "16 x 4", true, "no FCFB needed"},
    {"flit_finished", "4 x 4", true, "decrementor, adder, comparator"},
    {"fault_occured", "3 x 4", false, "2 x membership testing, set union"},
    {"message_from_info_channel", "2 x 3", true, "no FCFB needed"},
    {"consider_neighbor_state", "2 x 7", false,
     "incrementor, computation in a finite lattice, integer comparison "
     "with const."},
};

}  // namespace

int main() {
  using namespace flexrouter;
  bench::print_header(
      "T1 — Table 1: rule bases of NAFTA (regenerated from the corpus "
      "through the ARON compiler)");

  const auto rep = hwcost::table1_nafta(16, 16);
  std::cout << rep.render() << "\n";

  bench::print_header("Paper vs regenerated (entries x width)");
  bench::print_row({"rule base", "paper", "ours", "nft paper", "nft ours"},
                   26);
  for (const PaperRow& p : kPaper) {
    for (const auto& r : rep.rows) {
      if (r.name != p.name) continue;
      std::ostringstream ours;
      ours << r.entries << " x " << r.width_bits;
      bench::print_row({p.name, p.size, ours.str(), p.nft ? "*" : "",
                        r.nft ? "*" : ""},
                       26);
    }
  }
  std::cout << "\nPaper register budget: 159 bits in 8 registers, 47 bits "
               "for fault tolerance.\n"
            << "Ours:                  " << rep.register_bits << " bits in "
            << rep.num_registers << " registers, " << rep.ft_register_bits
            << " bits for fault tolerance.\n";
  return 0;
}
