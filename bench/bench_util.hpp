// Shared helpers for the experiment-reproduction binaries: aligned table
// printing and a canonical simulation runner so every bench reports the
// same metrics the same way.
#pragma once

#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace flexrouter::bench {

inline void print_header(const std::string& title) {
  std::cout << "\n" << std::string(78, '=') << "\n"
            << title << "\n"
            << std::string(78, '=') << "\n";
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells)
    std::cout << std::left << std::setw(width) << c;
  std::cout << "\n";
}

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Run one (network, traffic, config) point and return the result. A grid
/// point built for SweepRunner must construct algorithm and traffic inside
/// its own closure (replicas share nothing mutable) and call this.
inline SimResult run_point(const Topology& topo, RoutingAlgorithm& algo,
                           TrafficPattern& traffic, const SimConfig& cfg,
                           const std::function<void(FaultSet&)>& faults = {}) {
  Network net(topo, algo);
  if (faults) net.apply_faults(faults);
  Simulator sim(net, traffic, cfg);
  return sim.run();
}

inline SimResult run_point(const Topology& topo, RoutingAlgorithm& algo,
                           TrafficPattern& traffic, double rate,
                           int packet_length, std::uint64_t seed,
                           const std::function<void(FaultSet&)>& faults = {},
                           Cycle warmup = 800, Cycle measure = 2000) {
  SimConfig cfg;
  cfg.injection_rate = rate;
  cfg.packet_length = packet_length;
  cfg.warmup_cycles = warmup;
  cfg.measure_cycles = measure;
  cfg.seed = seed;
  return run_point(topo, algo, traffic, cfg, faults);
}

}  // namespace flexrouter::bench
