// Tests for the hardware cost model: FCFB catalog/inventory, compiled
// pipeline delay, program reports, Table renderers, and the Section-5
// evaluation module.
#include <gtest/gtest.h>

#include "hwcost/evaluation.hpp"
#include "ruleengine/fcfb.hpp"
#include "ruleengine/parser.hpp"

namespace flexrouter::rules {
namespace {

TEST(Fcfb, CatalogCoversEveryKindWithPositiveCosts) {
  for (int k = 0; k <= static_cast<int>(FcfbKind::Popcount); ++k) {
    const auto kind = static_cast<FcfbKind>(k);
    EXPECT_GT(cost_of(kind).area, 0.0) << to_string(kind);
    EXPECT_GT(cost_of(kind).delay, 0.0) << to_string(kind);
    EXPECT_STRNE(to_string(kind), "?");
  }
}

TEST(Fcfb, InventoryArithmetic) {
  FcfbInventory inv;
  EXPECT_TRUE(inv.empty());
  EXPECT_EQ(inv.to_string(), "no FCFB needed");
  inv.add(FcfbKind::Adder, 2);
  inv.add(FcfbKind::ZeroCheck);
  EXPECT_EQ(inv.total_instances(), 3);
  EXPECT_DOUBLE_EQ(inv.total_area(),
                   2 * cost_of(FcfbKind::Adder).area +
                       cost_of(FcfbKind::ZeroCheck).area);
  EXPECT_DOUBLE_EQ(inv.max_delay(), cost_of(FcfbKind::Adder).delay);
  FcfbInventory other;
  other.add(FcfbKind::Adder);
  inv.merge(other);
  EXPECT_EQ(inv.count(FcfbKind::Adder), 3);
  EXPECT_NE(inv.to_string().find("adder"), std::string::npos);
}

TEST(Fcfb, InferenceDedupesSharedExpressions) {
  // The same comparison in two rules uses ONE hardware comparator (the
  // FCFB pool is shared); distinct comparisons use separate ones.
  const Program p = parse_program(
      "VARIABLE a IN 0 TO 99\n"
      "VARIABLE b IN 0 TO 99\n"
      "ON go\n"
      "  IF a > 50 THEN b <- 0;\n"
      "  IF a > 50 AND b > 10 THEN a <- 0;\n"
      "END go");
  const auto inv = infer_premise_fcfbs(p, p.rule_base("go"));
  EXPECT_EQ(inv.count(FcfbKind::CompareConst), 2);  // a>50 shared, b>10
}

TEST(Fcfb, CounterIdiomsBecomeDedicatedUnits) {
  const Program p = parse_program(
      "VARIABLE up IN 0 TO 15\nVARIABLE down IN 0 TO 15\n"
      "ON go\n"
      "  IF up < 15 THEN up <- up + 1;\n"
      "  IF down > 0 THEN down <- down - 1;\n"
      "END go");
  const auto inv = infer_conclusion_fcfbs(p, p.rule_base("go"));
  EXPECT_EQ(inv.count(FcfbKind::ConditionalIncrement), 1);
  EXPECT_EQ(inv.count(FcfbKind::Decrementer), 1);
  EXPECT_EQ(inv.count(FcfbKind::Adder), 0);  // no general adder needed
}

TEST(Fcfb, MinSelectionAndMeshDistance) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "INPUT q(dirs) IN 0 TO 7\n"
      "INPUT xpos IN 0 TO 15\nINPUT ypos IN 0 TO 15\n"
      "INPUT xdes IN 0 TO 15\nINPUT ydes IN 0 TO 15\n"
      "VARIABLE best IN 0 TO 7\n"
      "ON go\n"
      "  IF EXISTS i IN dirs: (FORALL j IN dirs: q(i) <= q(j))\n"
      "     AND meshdist(xpos, ypos, xdes, ydes) > 2\n"
      "    THEN best <- min(q(0), 7);\n"
      "END go");
  const auto inv = infer_fcfbs(p, p.rule_base("go"));
  EXPECT_GE(inv.count(FcfbKind::MinimumSelection), 1);
  EXPECT_GE(inv.count(FcfbKind::MeshDistance), 1);
}

TEST(HwcostEval, PipelineDelayModel) {
  // Section 4.3: decision time = wiring (negligible) + two FCFB stages +
  // one table access.
  const Program p = parse_program(
      "VARIABLE n IN 0 TO 99\n"
      "ON go\n"
      "  IF n > 50 THEN n <- n - 1;\n"
      "END go");
  Interpreter interp(p);
  const auto c = compile_rule_base(p, p.rule_base("go"), interp);
  const double table_access = 2.0;
  EXPECT_DOUBLE_EQ(c.decision_delay_units(),
                   c.premise_fcfbs().max_delay() +
                       c.conclusion_fcfbs().max_delay() + table_access);
  EXPECT_GT(c.decision_delay_units(), table_access);
}

TEST(HwcostEval, Table1RenderContainsEveryRow) {
  const auto rep = flexrouter::hwcost::table1_nafta(8, 8);
  const std::string text = rep.render();
  for (const auto& row : rep.rows)
    EXPECT_NE(text.find(row.name), std::string::npos) << row.name;
  EXPECT_NE(text.find("47 bits account for fault tolerance"),
            std::string::npos);
}

TEST(HwcostEval, Table1IsStableAcrossMeshSizes) {
  // Rule-base structure does not depend on the mesh size (only input
  // domains widen, which the atom encoding absorbs).
  const auto small = flexrouter::hwcost::table1_nafta(8, 8);
  const auto large = flexrouter::hwcost::table1_nafta(32, 32);
  ASSERT_EQ(small.rows.size(), large.rows.size());
  for (std::size_t i = 0; i < small.rows.size(); ++i) {
    EXPECT_EQ(small.rows[i].entries, large.rows[i].entries)
        << small.rows[i].name;
    EXPECT_EQ(small.rows[i].nft, large.rows[i].nft);
  }
}

TEST(HwcostEval, Table2ScalesOnlyWhereExpected) {
  const auto d4 = flexrouter::hwcost::table2_route_c(4, 2);
  const auto d8 = flexrouter::hwcost::table2_route_c(8, 2);
  auto entries = [](const flexrouter::hwcost::TableReport& r,
                    const std::string& n) -> std::uint64_t {
    for (const auto& row : r.rows)
      if (row.name == n) return row.entries;
    return 0;
  };
  EXPECT_EQ(entries(d4, "decide_dir"), entries(d8, "decide_dir"));  // 512
  EXPECT_EQ(entries(d4, "decide_vc"), 16u);                         // 4d
  EXPECT_EQ(entries(d8, "decide_vc"), 32u);
}

TEST(HwcostEval, CombinedBlowupMonotoneInBothParameters) {
  using flexrouter::hwcost::combined_rulebase_bits;
  for (int d = 3; d < 10; ++d) {
    EXPECT_LT(combined_rulebase_bits(d, 2), combined_rulebase_bits(d + 1, 2));
    EXPECT_LT(combined_rulebase_bits(d, 1), combined_rulebase_bits(d, 2));
  }
  // The paper's instance: 1024 * 2^d * (d + 1 + a).
  EXPECT_EQ(combined_rulebase_bits(6, 2), 1024LL * 64 * 9);
}

TEST(HwcostEval, RegisterFormulaEdgeDimensions) {
  using namespace flexrouter::hwcost;
  EXPECT_EQ(route_c_register_formula(2), 15 * 2 + 2 * 1 + 3);
  EXPECT_EQ(route_c_register_formula(8), 15 * 8 + 2 * 3 + 3);
  EXPECT_EQ(route_c_register_measured(2, 2), route_c_register_formula(2));
  EXPECT_EQ(route_c_register_measured(16, 2), route_c_register_formula(16));
}

}  // namespace
}  // namespace flexrouter::rules
