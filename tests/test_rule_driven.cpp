// Tests for the rule-driven router (rule programs executing inside the
// simulated network) and the Table 1 / Table 2 corpus.
#include <gtest/gtest.h>

#include <set>

#include "hwcost/evaluation.hpp"
#include "routing/cdg.hpp"
#include "routing/dor.hpp"
#include "routing/nara.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/parser.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace flexrouter {
namespace {

std::set<std::pair<PortId, VcId>> candidate_set(const RouteDecision& d) {
  std::set<std::pair<PortId, VcId>> out;
  for (const RouteCandidate& c : d.candidates) out.emplace(c.port, c.vc);
  return out;
}

// ----------------------------------------------- NARA-in-rules differential
class NaraRulesFixture : public ::testing::Test {
 protected:
  NaraRulesFixture()
      : mesh_(Mesh::two_d(6, 6)),
        faults_(mesh_),
        native_(),
        ruled_(rulebases::nara_route_source(6, 6), 2) {
    native_.attach(mesh_, faults_);
    ruled_.attach(mesh_, faults_);
  }

  RouteContext ctx_of(NodeId node, NodeId dest) {
    RouteContext ctx;
    ctx.node = node;
    ctx.dest = dest;
    ctx.src = node;
    ctx.in_port = mesh_.degree();  // injected
    ctx.in_vc = 0;
    return ctx;
  }

  Mesh mesh_;
  FaultSet faults_;
  Nara native_;
  RuleDrivenRouting ruled_;
};

TEST_F(NaraRulesFixture, CandidatesMatchNativeEverywhere) {
  for (NodeId s = 0; s < mesh_.num_nodes(); ++s) {
    for (NodeId t = 0; t < mesh_.num_nodes(); ++t) {
      if (s == t) continue;
      const auto native = candidate_set(native_.route(ctx_of(s, t)));
      const auto ruled = candidate_set(ruled_.route(ctx_of(s, t)));
      ASSERT_EQ(native, ruled) << "mismatch at " << s << " -> " << t;
    }
  }
}

TEST_F(NaraRulesFixture, OneInterpretationPerDecision) {
  const auto d = ruled_.route(ctx_of(mesh_.at(0, 0), mesh_.at(3, 3)));
  EXPECT_EQ(d.steps, 1);
}

TEST_F(NaraRulesFixture, LocalDeliveryCandidate) {
  const auto d = ruled_.route(ctx_of(mesh_.at(2, 2), mesh_.at(2, 2)));
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].port, mesh_.degree());
}

TEST(RuleDrivenNet, NaraRulesDriveAFullNetwork) {
  // End-to-end: the rule program routes real traffic through the simulator,
  // in compiled-table mode.
  Mesh m = Mesh::two_d(5, 5);
  RuleDrivenRouting algo(rulebases::nara_route_source(5, 5), 2,
                         rules::ExecMode::Table);
  Network net(m, algo);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 150;
  cfg.measure_cycles = 400;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_GT(r.injected_packets, 30);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);   // minimal routing
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 1.0);
}

TEST(RuleDrivenNet, InterpretAndTableModesAgree) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  RuleDrivenRouting interp_mode(rulebases::nara_route_source(5, 5), 2,
                                rules::ExecMode::Interpret);
  RuleDrivenRouting table_mode(rulebases::nara_route_source(5, 5), 2,
                               rules::ExecMode::Table);
  interp_mode.attach(m, f);
  table_mode.attach(m, f);
  for (NodeId s = 0; s < m.num_nodes(); ++s)
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t) continue;
      RouteContext ctx;
      ctx.node = s;
      ctx.dest = t;
      ctx.in_port = m.degree();
      ctx.in_vc = 0;
      EXPECT_EQ(candidate_set(interp_mode.route(ctx)),
                candidate_set(table_mode.route(ctx)));
    }
}

// ------------------------------------------------- e-cube-in-rules differential
TEST(EcubeRules, MatchesNativeOnEveryPair) {
  Hypercube h(5);
  FaultSet f(h);
  ECubeHypercube native;
  RuleDrivenRouting ruled(rulebases::ecube_route_source(5), 1,
                          rules::ExecMode::Table);
  native.attach(h, f);
  ruled.attach(h, f);
  for (NodeId s = 0; s < h.num_nodes(); ++s) {
    for (NodeId t = 0; t < h.num_nodes(); ++t) {
      RouteContext ctx;
      ctx.node = s;
      ctx.dest = t;
      ctx.src = s;
      ctx.in_port = h.degree();
      ctx.in_vc = 0;
      ASSERT_EQ(candidate_set(native.route(ctx)),
                candidate_set(ruled.route(ctx)))
          << s << " -> " << t;
    }
  }
}

TEST(EcubeRules, DrivesAHypercubeNetwork) {
  Hypercube h(4);
  RuleDrivenRouting algo(rulebases::ecube_route_source(4), 1,
                         rules::ExecMode::Table);
  Network net(h, algo);
  UniformTraffic traffic(h);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 150;
  cfg.measure_cycles = 400;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
}

// -------------------------------------- fault-tolerant routing, in rules
// The paper's end goal: a fault-tolerant adaptive algorithm written in the
// rule language, compiled to tables, driving every router — with the
// hardware escape layer exposed through the input catalog.
TEST(FtMeshRules, FaultFreePortsMatchNara) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  Nara native;
  RuleDrivenRouting ruled(rulebases::ft_mesh_route_source(6, 6), 3,
                          rules::ExecMode::Table, "route", /*escape_vc=*/2);
  native.attach(m, f);
  ruled.attach(m, f);
  for (NodeId s = 0; s < m.num_nodes(); ++s)
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t) continue;
      RouteContext ctx;
      ctx.node = s;
      ctx.dest = t;
      ctx.src = s;
      ctx.in_port = m.degree();
      ctx.in_vc = 0;
      std::set<PortId> nports, rports;
      for (const auto& c : native.route(ctx).candidates) nports.insert(c.port);
      for (const auto& c : ruled.route(ctx).candidates) rports.insert(c.port);
      ASSERT_EQ(nports, rports) << s << " -> " << t;
    }
}

TEST(FtMeshRules, FullCdgAcyclicUnderFaults) {
  Rng rng(55);
  for (int trial = 0; trial < 4; ++trial) {
    Mesh m = Mesh::two_d(5, 5);
    FaultSet f(m);
    RuleDrivenRouting ruled(rulebases::ft_mesh_route_source(5, 5), 3,
                            rules::ExecMode::Table, "route", 2);
    ruled.attach(m, f);
    inject_random_link_faults(f, 2 * trial, rng);
    ruled.reconfigure();
    // The whole routing function is acyclic: minimal adaptive layer +
    // sticky up*/down* escape with one-way entry.
    const CdgReport rep = check_full_cdg(m, f, ruled);
    EXPECT_TRUE(rep.acyclic) << "trial " << trial << ": " << rep.to_string();
  }
}

TEST(FtMeshRules, DeliversUnderFaultsInTheSimulator) {
  Mesh m = Mesh::two_d(6, 6);
  RuleDrivenRouting ruled(rulebases::ft_mesh_route_source(6, 6), 3,
                          rules::ExecMode::Table, "route", 2);
  Network net(m, ruled);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 700;
  Simulator sim(net, traffic, cfg);
  Rng rng(66);
  const int exchanges = net.apply_faults([&](FaultSet& f) {
    inject_random_link_faults(f, 7, rng);
    inject_random_node_faults(f, 1, rng);
  });
  EXPECT_GT(exchanges, 0);  // the escape table was rebuilt
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_GE(r.min_hops_ratio, 1.0);
}

TEST(FtMeshRules, SurvivesTheFigure2Wall) {
  Mesh m = Mesh::two_d(8, 8);
  RuleDrivenRouting ruled(rulebases::ft_mesh_route_source(8, 8), 3,
                          rules::ExecMode::Table, "route", 2);
  Network net(m, ruled);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 800;
  Simulator sim(net, traffic, cfg);
  net.apply_faults([&](FaultSet& f) {
    inject_figure2_chain(f, m, 3, 6);
  });
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  // Some traffic had to take the escape layer around the wall.
  EXPECT_GT(r.min_hops_ratio, 1.0);
}

// ------------------------------------------------------------ corpus: NAFTA
TEST(Corpus, NaftaProgramParsesAndCompiles) {
  const auto p = rules::parse_program(rulebases::nafta_program_source(16, 16));
  EXPECT_EQ(p.rule_bases.size(), 11u);  // the eleven rows of Table 1
  rules::Interpreter interp(p);
  for (const auto& rb : p.rule_bases)
    EXPECT_NO_THROW(rules::compile_rule_base(p, rb, interp)) << rb.name;
}

TEST(Corpus, NaftaRegisterBudgetMatchesPaper) {
  const auto ft = rules::parse_program(rulebases::nafta_program_source(16, 16));
  const auto nft = rules::parse_program(rulebases::nara_program_source(16, 16));
  // "For the NAFTA implementation 159 bits are organized in 8 registers ...
  //  only 47 bits account for fault-tolerance."
  EXPECT_EQ(ft.total_register_bits(), 159);
  EXPECT_EQ(ft.variables.size(), 8u);
  EXPECT_EQ(nft.total_register_bits(), 112);
  EXPECT_EQ(ft.total_register_bits() - nft.total_register_bits(), 47);
}

TEST(Corpus, Table1KeyRuleBaseSizes) {
  const auto rep = hwcost::table1_nafta(16, 16);
  auto find = [&](const std::string& name) -> const hwcost::TableRow& {
    for (const auto& r : rep.rows)
      if (r.name == name) return r;
    ADD_FAILURE() << "missing rule base " << name;
    static hwcost::TableRow dummy;
    return dummy;
  };
  // The paper's entry counts (our encoding reproduces them exactly for
  // these rows; widths differ slightly, see EXPERIMENTS.md).
  EXPECT_EQ(find("incoming_message").entries, 1024u);
  EXPECT_EQ(find("in_message_ft").entries, 256u);
  EXPECT_EQ(find("update_dir_table").entries, 64u);
  EXPECT_EQ(find("message_finished").entries, 64u);
  EXPECT_EQ(find("calculate_new_node_state").entries, 64u);
  EXPECT_EQ(find("test_exception").entries, 32u);
  EXPECT_EQ(find("tell_my_neighbors").entries, 16u);
  EXPECT_EQ(find("flit_finished").entries, 4u);
  EXPECT_EQ(find("fault_occured").entries, 3u);
  EXPECT_EQ(find("message_from_info_channel").entries, 2u);
  EXPECT_EQ(find("consider_neighbor_state").entries, 2u);
  // nft markers match the paper's asterisks.
  EXPECT_TRUE(find("incoming_message").nft);
  EXPECT_TRUE(find("message_finished").nft);
  EXPECT_TRUE(find("tell_my_neighbors").nft);
  EXPECT_TRUE(find("flit_finished").nft);
  EXPECT_TRUE(find("message_from_info_channel").nft);
  EXPECT_FALSE(find("in_message_ft").nft);
  EXPECT_FALSE(find("update_dir_table").nft);
  EXPECT_FALSE(find("fault_occured").nft);
  EXPECT_EQ(rep.ft_register_bits, 47);
}

TEST(Corpus, NaftaRuleBasesExecute) {
  // The corpus is not just compilable paperwork: fire a few rule bases.
  const auto p = rules::parse_program(rulebases::nafta_program_source(8, 8));
  rules::EventManager em(p, rules::ExecMode::Table);
  std::map<std::string, std::int64_t> ints{
      {"xpos", 1}, {"ypos", 1}, {"xdes", 3}, {"ydes", 3}, {"sel_vc", 1},
      {"msg_len", 10}, {"changed", 1}, {"misrouted_in", 0}, {"plen_over", 0}};
  em.set_input_provider([&](const std::string& name,
                            const std::vector<rules::Value>& idx) {
    (void)idx;
    if (name == "outchan") return rules::Value::make_int(1);
    if (name == "link_fault" || name == "deadend")
      return rules::Value::make_int(0);
    if (name == "info_kind")
      return rules::Value::make_sym(p.syms.lookup("loadmsg"));
    if (name == "new_info" || name == "nb_state")
      return rules::Value::make_sym(p.syms.lookup("ok"));
    if (name == "fault_kind")
      return rules::Value::make_sym(p.syms.lookup("linkf"));
    if (name == "except_dir") return rules::Value::make_int(0);
    return rules::Value::make_int(ints.at(name));
  });
  // Fault-free north-east decision: east wins (first applicable rule).
  const auto r = em.fire("incoming_message", {});
  ASSERT_TRUE(r.returned.has_value());
  EXPECT_EQ(p.syms.name(r.returned->as_sym()), "east");
  // A link fault bumps the fault counter.
  em.fire("fault_occured", {});
  EXPECT_EQ(em.env().get("fault_count").as_int(), 1);
  // Scheduling updates adaptivity registers.
  em.env().set("out_queue", 2, rules::Value::make_int(5));
  em.env().set("sched_credit", 2, rules::Value::make_int(3));
  em.fire("flit_finished", {rules::Value::make_int(2)});
  EXPECT_EQ(em.env().get("out_queue", 2).as_int(), 4);
}

// ---------------------------------------------------------- corpus: ROUTE_C
TEST(Corpus, RouteCRegisterFormulaHolds) {
  // "In total 15d + 2 log d + 3 register bits ... organized as nine
  //  registers ... 9d register bits are needed in the non-fault-tolerant
  //  case too."
  for (int d = 2; d <= 10; ++d) {
    EXPECT_EQ(hwcost::route_c_register_measured(d, 2),
              hwcost::route_c_register_formula(d))
        << "d = " << d;
    const auto nft = rules::parse_program(
        rulebases::route_c_nft_program_source(d, 2));
    EXPECT_EQ(nft.total_register_bits(), 9 * d);
  }
  const auto ft = rules::parse_program(rulebases::route_c_program_source(6, 2));
  EXPECT_EQ(ft.variables.size(), 9u);  // nine registers, one constant
  // The constant register holds a configuration-time value: zero flexible
  // bits.
  EXPECT_EQ(ft.find_variable("cube_dim")->register_bits(), 0);
}

TEST(Corpus, Table2Dimensions) {
  const auto rep = hwcost::table2_route_c(6, 2);
  ASSERT_EQ(rep.rows.size(), 4u);
  auto find = [&](const std::string& name) -> const hwcost::TableRow& {
    for (const auto& r : rep.rows)
      if (r.name == name) return r;
    ADD_FAILURE() << "missing rule base " << name;
    static hwcost::TableRow dummy;
    return dummy;
  };
  EXPECT_EQ(find("decide_dir").entries, 512u);     // paper: 512 x 4
  EXPECT_EQ(find("decide_vc").entries, 24u);       // paper: 4d = 24
  EXPECT_EQ(find("update_state").entries, 200u);   // paper: 180
  EXPECT_TRUE(find("decide_dir").nft);
  EXPECT_TRUE(find("adaptivity").nft);
  EXPECT_FALSE(find("decide_vc").nft);
  EXPECT_FALSE(find("update_state").nft);
  // "The total size of 2960 bits of rule table memory for a 64-node
  //  hypercube and a = 2 is really small." — same order of magnitude here.
  EXPECT_GT(rep.total_table_bits, 1500);
  EXPECT_LT(rep.total_table_bits, 6000);
}

TEST(Corpus, RouteCUpdateStatePropagates) {
  const auto p = rules::parse_program(rulebases::route_c_program_source(4, 2));
  rules::EventManager em(p);
  const rules::SymId sunsafe = p.syms.lookup("sunsafe");
  em.set_input_provider(
      [&](const std::string& name, const std::vector<rules::Value>&) {
        FR_REQUIRE(name == "new_state");
        return rules::Value::make_sym(sunsafe);
      });
  em.env().set("number_unsafe", 0, rules::Value::make_int(2));
  const auto r = em.fire("update_state", {rules::Value::make_int(1)});
  EXPECT_TRUE(r.applied());
  EXPECT_EQ(p.syms.name(em.env().get("state").as_sym()), "ounsafe");
  // Propagation: one message per dimension.
  int sends = 0;
  em.set_host_handler([&](const std::string& name,
                          const std::vector<rules::Value>&) {
    if (name == "send_newmessage") ++sends;
  });
  em.drain();
  EXPECT_EQ(sends, 4);
}

// --------------------------- distributed Figure 4 at network scale
// One rule machine per hypercube node; `!send_newmessage(dir, state)`
// events travel over the topology to the neighbour's `update_state` rule
// base — the paper's wave propagation, executed by the rule engine itself.
TEST(Corpus, DistributedStatePropagationOverHypercube) {
  constexpr int kDim = 3;
  Hypercube cube(kDim);
  const auto p =
      rules::parse_program(rulebases::route_c_program_source(kDim, 2));
  const rules::SymId faulty = p.syms.lookup("faulty");
  const rules::SymId ounsafe = p.syms.lookup("ounsafe");
  const rules::SymId safe = p.syms.lookup("safe");

  // Per-node machines plus a per-node mailbox holding the last state
  // received from each neighbour (the new_state input).
  std::vector<std::unique_ptr<rules::EventManager>> machines;
  std::vector<std::vector<rules::Value>> mailbox(
      static_cast<std::size_t>(cube.num_nodes()),
      std::vector<rules::Value>(kDim, rules::Value::make_sym(safe)));
  std::int64_t messages_sent = 0;
  for (NodeId n = 0; n < cube.num_nodes(); ++n) {
    auto em = std::make_unique<rules::EventManager>(p, rules::ExecMode::Table);
    em->set_input_provider(
        [&mailbox, n](const std::string& name,
                      const std::vector<rules::Value>& idx) {
          FR_REQUIRE(name == "new_state");
          return mailbox[static_cast<std::size_t>(n)]
                        [static_cast<std::size_t>(idx[0].as_int())];
        });
    machines.push_back(std::move(em));
  }
  // Cross-node event transport: a send_newmessage(i, st) emitted at node n
  // lands in neighbour(n, i)'s mailbox and triggers its update_state.
  auto deliver = [&](NodeId from, PortId port, rules::Value st) {
    const NodeId to = cube.neighbor(from, port);
    const PortId back = cube.reverse_port(from, port);
    mailbox[static_cast<std::size_t>(to)][static_cast<std::size_t>(back)] = st;
    machines[static_cast<std::size_t>(to)]->post(
        "update_state", {rules::Value::make_int(back)});
    ++messages_sent;
  };
  for (NodeId n = 0; n < cube.num_nodes(); ++n) {
    machines[static_cast<std::size_t>(n)]->set_host_handler(
        [&, n](const std::string& event, const std::vector<rules::Value>& args) {
          if (event != "send_newmessage") return;
          deliver(n, static_cast<PortId>(args[0].as_int()), args[1]);
        });
  }
  auto drain_network = [&]() {
    bool any = true;
    int rounds = 0;
    while (any) {
      FR_REQUIRE_MSG(++rounds < 1000, "propagation did not settle");
      any = false;
      for (auto& em : machines) {
        if (!em->queue_empty()) {
          em->drain();
          any = true;
        }
      }
    }
    return rounds;
  };

  // Drive node 0 (address 000) to ounsafe: two unsafe notifications raise
  // number_unsafe to 2, a third trips the Figure-4 broadcast rule.
  for (int k = 0; k < 3; ++k) deliver(cube.neighbor(0, 0), 0,
                                      rules::Value::make_sym(ounsafe));
  drain_network();
  auto& m0 = *machines[0];
  EXPECT_EQ(p.syms.name(m0.env().get("state").as_sym()), "ounsafe");
  // The broadcast reached every neighbour: each counted one unsafe report.
  for (PortId i = 0; i < kDim; ++i) {
    const NodeId nb = cube.neighbor(0, i);
    EXPECT_GE(machines[static_cast<std::size_t>(nb)]
                  ->env()
                  .get("number_unsafe")
                  .as_int(),
              1)
        << "neighbour " << nb;
  }
  EXPECT_GE(messages_sent, 3 + kDim);  // seeds + the broadcast wave

  // A hard fault report at node 7 (111) is recorded by the first rule.
  deliver(cube.neighbor(7, 2), 2, rules::Value::make_sym(faulty));
  drain_network();
  auto& m7 = *machines[7];
  EXPECT_EQ(m7.env().get("number_faulty").as_int(), 1);
  EXPECT_EQ(p.syms.name(m7.env().get("neighb_state", 2).as_sym()), "faulty");
}

TEST(Corpus, CombinedBlowupFormula) {
  // E4: merging decide_dir and decide_vc into one step explodes the table.
  EXPECT_EQ(hwcost::combined_rulebase_bits(6, 2),
            std::int64_t{1024} * 64 * 9);
  const auto rep = hwcost::table2_route_c(6, 2);
  EXPECT_GT(hwcost::combined_rulebase_bits(6, 2), 50 * rep.total_table_bits);
}

}  // namespace
}  // namespace flexrouter
