// SweepRunner determinism contract: results are a pure function of the
// grid (point keys + base seed), never of the thread count or of scheduling
// order; a deadlocking replica must not stall the pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>

#include "routing/dynamic_escape.hpp"
#include "routing/nafta.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sweep.hpp"

namespace flexrouter {
namespace {

bool bit_identical(const SimResult& a, const SimResult& b) {
  auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         same(a.avg_latency, b.avg_latency) &&
         same(a.p50_latency, b.p50_latency) &&
         same(a.p99_latency, b.p99_latency) &&
         same(a.avg_hops, b.avg_hops) &&
         same(a.min_hops_ratio, b.min_hops_ratio) &&
         same(a.throughput, b.throughput) &&
         same(a.misrouted_fraction, b.misrouted_fraction) &&
         same(a.avg_latency_misrouted, b.avg_latency_misrouted) &&
         same(a.avg_latency_direct, b.avg_latency_direct) &&
         same(a.avg_decision_steps, b.avg_decision_steps) &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

// A 16-point (faults x load) grid on an 8x8 mesh; each point builds its own
// replica and uses the runner-derived seed.
std::vector<SweepPoint> faulty_mesh_grid() {
  const int fault_counts[] = {0, 2, 4, 6};
  const double rates[] = {0.03, 0.06, 0.09, 0.12};
  std::vector<SweepPoint> points;
  for (const int k : fault_counts) {
    for (const double rate : rates) {
      points.push_back({[k, rate](std::uint64_t seed) {
        Mesh m = Mesh::two_d(8, 8);
        Nafta algo;
        Network net(m, algo);
        if (k > 0) {
          Rng frng(static_cast<std::uint64_t>(k) * 31 + 5);
          net.apply_faults([&](FaultSet& f) {
            inject_random_link_faults(f, k, frng);
          });
        }
        UniformTraffic tr(m);
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.packet_length = 4;
        cfg.warmup_cycles = 150;
        cfg.measure_cycles = 450;
        cfg.seed = seed;
        Simulator sim(net, tr, cfg);
        return sim.run();
      }});
    }
  }
  return points;
}

std::vector<SimResult> run_grid(int threads) {
  SweepOptions opts;
  opts.num_threads = threads;
  opts.base_seed = 11;
  SweepRunner runner(opts);
  return runner.run(faulty_mesh_grid());
}

TEST(SweepSeed, StableAndSpread) {
  // The derivation is part of the determinism contract: same inputs, same
  // seed, forever.
  EXPECT_EQ(sweep_point_seed(1, 0), sweep_point_seed(1, 0));
  EXPECT_NE(sweep_point_seed(1, 0), sweep_point_seed(1, 1));
  EXPECT_NE(sweep_point_seed(1, 0), sweep_point_seed(2, 0));
  // Never zero (xoshiro's all-zero state is degenerate).
  for (std::uint64_t k = 0; k < 64; ++k)
    EXPECT_NE(sweep_point_seed(0, k), 0u);
}

TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  const std::vector<SimResult> serial = run_grid(1);
  ASSERT_EQ(serial.size(), 16u);
  for (const SimResult& r : serial) {
    EXPECT_FALSE(r.deadlock_suspected);
    EXPECT_GT(r.delivered_packets, 0);
  }
  const std::vector<SimResult> two = run_grid(2);
  const std::vector<SimResult> eight = run_grid(8);
  ASSERT_EQ(two.size(), serial.size());
  ASSERT_EQ(eight.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], two[i])) << "point " << i;
    EXPECT_TRUE(bit_identical(serial[i], eight[i])) << "point " << i;
  }
}

TEST(ThreadBudget, ComposesSweepAndShardThreads) {
  // Replica parallelism absorbs the budget first; leftovers feed the shard
  // pools; the product never exceeds the budget.
  ThreadBudget b = compose_thread_budget(8, 3);
  EXPECT_EQ(b.sweep_threads, 3);
  EXPECT_EQ(b.replica_threads, 2);
  b = compose_thread_budget(2, 8);
  EXPECT_EQ(b.sweep_threads, 2);
  EXPECT_EQ(b.replica_threads, 1);
  b = compose_thread_budget(8, 1);
  EXPECT_EQ(b.sweep_threads, 1);
  EXPECT_EQ(b.replica_threads, 8);
  b = compose_thread_budget(5, 5);
  EXPECT_EQ(b.sweep_threads, 5);
  EXPECT_EQ(b.replica_threads, 1);
  b = compose_thread_budget(1, 100);
  EXPECT_EQ(b.sweep_threads, 1);
  EXPECT_EQ(b.replica_threads, 1);
}

TEST(SweepRunner, ShardedReplicasBitIdenticalUnderSweep) {
  // Replica threads (sweep pool) composing with per-replica shard pools:
  // a grid of sharded networks run under a multi-thread sweep must equal
  // the serial single-shard grid bit for bit.
  const auto grid = [](int shards, int shard_threads) {
    const double rates[] = {0.04, 0.08};
    std::vector<SweepPoint> points;
    for (const double rate : rates) {
      points.push_back({[rate, shards, shard_threads](std::uint64_t seed) {
        Mesh m = Mesh::two_d(8, 8);
        Nafta algo;
        NetworkConfig ncfg;
        ncfg.shards = shards;
        ncfg.shard_threads = shard_threads;
        Network net(m, algo, ncfg);
        UniformTraffic tr(m);
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.packet_length = 4;
        cfg.warmup_cycles = 150;
        cfg.measure_cycles = 450;
        cfg.seed = seed;
        Simulator sim(net, tr, cfg);
        return sim.run();
      }});
    }
    return points;
  };
  SweepOptions opts;
  opts.num_threads = 2;
  opts.base_seed = 11;
  SweepRunner runner(opts);
  const std::vector<SimResult> base = runner.run(grid(1, 1));
  const std::vector<SimResult> sharded = runner.run(grid(4, 2));
  ASSERT_EQ(base.size(), sharded.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_TRUE(bit_identical(base[i], sharded[i])) << "point " << i;
}

TEST(SweepRunner, SeedsFollowExplicitKeysUnderReordering) {
  // A point's seed comes from its key, not its position: shuffling the grid
  // must shuffle the results, not change them.
  auto make_point = [](std::uint64_t key) {
    SweepPoint p;
    p.key = key;
    p.run = [](std::uint64_t seed) {
      Mesh m = Mesh::two_d(4, 4);
      Nafta algo;
      Network net(m, algo);
      UniformTraffic tr(m);
      SimConfig cfg;
      cfg.injection_rate = 0.08;
      cfg.warmup_cycles = 100;
      cfg.measure_cycles = 300;
      cfg.seed = seed;
      Simulator sim(net, tr, cfg);
      return sim.run();
    };
    return p;
  };

  std::vector<SweepPoint> forward, backward;
  for (std::uint64_t k = 0; k < 6; ++k) forward.push_back(make_point(k));
  for (std::uint64_t k = 6; k-- > 0;) backward.push_back(make_point(k));

  SweepOptions opts;
  opts.num_threads = 2;
  opts.base_seed = 99;
  SweepRunner runner(opts);
  const std::vector<SimResult> f = runner.run(forward);
  const std::vector<SimResult> b = runner.run(backward);
  ASSERT_EQ(f.size(), 6u);
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_TRUE(bit_identical(f[i], b[5 - i])) << "key " << i;
}

TEST(SweepRunner, DeadlockingReplicaDoesNotStallPool) {
  // One replica spends its whole drain_limit suspecting deadlock (fixed-XY
  // dynamic escape with a broken escape link). The pool must finish every
  // other point and return normally, flagging only the bad one.
  Mesh m = Mesh::two_d(8, 8);
  std::vector<SweepPoint> points;
  points.push_back({[&m](std::uint64_t) {
    DynamicEscape algo(false);  // no reconfiguration: vulnerable
    Network net(m, algo);
    net.apply_faults([&](FaultSet& f) {
      f.fail_link(m.at(3, 4), port_of(Compass::East));
    });
    UniformTraffic tr(m);
    SimConfig cfg;
    cfg.injection_rate = 0.05;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 600;
    cfg.drain_limit = 1500;  // bounded: it will give up, not hang
    cfg.watchdog_window = 400;
    cfg.seed = 4;
    Simulator sim(net, tr, cfg);
    return sim.run();
  }});
  for (int i = 0; i < 3; ++i) {
    points.push_back({[&m](std::uint64_t seed) {
      Nafta algo;
      Network net(m, algo);
      UniformTraffic tr(m);
      SimConfig cfg;
      cfg.injection_rate = 0.05;
      cfg.warmup_cycles = 200;
      cfg.measure_cycles = 600;
      cfg.seed = seed;
      Simulator sim(net, tr, cfg);
      return sim.run();
    }});
  }

  SweepOptions opts;
  opts.num_threads = 2;
  SweepRunner runner(opts);
  const std::vector<SimResult> results = runner.run(points);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].deadlock_suspected);
  EXPECT_LT(results[0].delivered_packets, results[0].injected_packets);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(results[i].deadlock_suspected) << "point " << i;
    EXPECT_EQ(results[i].delivered_packets, results[i].injected_packets);
  }
}

TEST(SweepRunner, RunTasksGenericFanOut) {
  std::vector<int> out(64, 0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i)
    tasks.push_back([&out, i] { out[static_cast<std::size_t>(i)] = i * i; });
  SweepOptions opts;
  opts.num_threads = 4;
  SweepRunner runner(opts);
  runner.run_tasks(tasks);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(SweepRunner, TaskExceptionPropagates) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back([&ran, i] {
      if (i == 3) throw std::runtime_error("replica failed");
      ran.fetch_add(1);
    });
  SweepOptions opts;
  opts.num_threads = 2;
  SweepRunner runner(opts);
  EXPECT_THROW(runner.run_tasks(tasks), std::runtime_error);
  // The pool must stay usable after an exceptional batch.
  std::vector<std::function<void()>> ok = {[&ran] { ran.fetch_add(1); }};
  EXPECT_NO_THROW(runner.run_tasks(ok));
}

TEST(SweepReport, SummarizeAggregates) {
  SimResult a, b;
  a.injected_packets = 10;
  a.delivered_packets = 10;
  a.avg_latency = 20.0;
  a.throughput = 0.05;
  b.injected_packets = 20;
  b.delivered_packets = 19;
  b.avg_latency = 40.0;
  b.throughput = 0.15;
  b.deadlock_suspected = true;
  const SweepReport rep = summarize({a, b});
  EXPECT_EQ(rep.points, 2);
  EXPECT_EQ(rep.deadlocks, 1);
  EXPECT_EQ(rep.injected_packets, 30);
  EXPECT_EQ(rep.delivered_packets, 29);
  EXPECT_DOUBLE_EQ(rep.avg_latency.mean, 30.0);
  EXPECT_DOUBLE_EQ(rep.avg_latency.min, 20.0);
  EXPECT_DOUBLE_EQ(rep.avg_latency.max, 40.0);
  EXPECT_DOUBLE_EQ(rep.throughput.mean, 0.10);
  const std::string js = rep.to_json();
  EXPECT_NE(js.find("\"points\": 2"), std::string::npos);
  EXPECT_NE(js.find("\"deadlocks\": 1"), std::string::npos);
}

}  // namespace
}  // namespace flexrouter
