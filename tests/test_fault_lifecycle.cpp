// Live fault lifecycle tests: mid-run link/node kills, worm truncation and
// loss accounting, the quiescent recovery controller, structured deadlock
// recovery (victim kill + retransmit), blocked-chain diagnostics, epoch
// staleness across every registered algorithm, and determinism of the
// whole story under the parallel sweep engine.
#include <gtest/gtest.h>

#include <cstring>

#include "routing/nafta.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/graph_algo.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

namespace flexrouter {
namespace {

/// Field-wise SimResult equality including the recovery metrics (memcmp on
/// doubles: bit-identity, not approximate equality).
bool results_identical(const SimResult& a, const SimResult& b) {
  if (a.blocked_chain.size() != b.blocked_chain.size()) return false;
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    if (a.blocked_chain[i].node != b.blocked_chain[i].node ||
        a.blocked_chain[i].port != b.blocked_chain[i].port ||
        a.blocked_chain[i].vc != b.blocked_chain[i].vc ||
        a.blocked_chain[i].packet != b.blocked_chain[i].packet)
      return false;
  }
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.availability, &b.availability, sizeof(double)) == 0 &&
         a.packets_lost == b.packets_lost &&
         a.packets_retransmitted == b.packets_retransmitted &&
         a.packets_unrecoverable == b.packets_unrecoverable &&
         a.fault_events == b.fault_events &&
         a.recovery_events == b.recovery_events &&
         a.recovery_cycles == b.recovery_cycles &&
         a.worms_killed == b.worms_killed &&
         a.reconfig_exchanges == b.reconfig_exchanges &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

/// The accounting identity every lifecycle run must satisfy: measured
/// packets end delivered or explicitly unrecoverable, nothing vanishes,
/// and each lost attempt was either retried or abandoned.
void expect_exact_accounting(const SimResult& r) {
  EXPECT_EQ(r.delivered_packets + r.packets_unrecoverable,
            r.injected_packets);
  EXPECT_EQ(r.packets_lost, r.packets_retransmitted + r.packets_unrecoverable);
}

// ------------------------------------------------------- link kill, NAFTA
TEST(FaultLifecycle, LinkKillMidMeasurementFullAccounting) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1200;
  cfg.seed = 42;
  FaultSchedule schedule;
  schedule.fail_link_at(900, m.at(3, 3), port_of(Compass::East));
  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult r = sim.run();

  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.fault_events, 1);
  EXPECT_EQ(r.recovery_events, 1);
  EXPECT_GT(r.recovery_cycles, 0);
  EXPECT_GT(r.reconfig_exchanges, 0);  // NAFTA propagates fault state
  EXPECT_LT(r.availability, 1.0);      // injection was gated during diagnosis
  expect_exact_accounting(r);

  // Truncation released every buffer and slot: once the unmeasured warmup
  // stragglers drain too, the network is empty and the slab holds zero
  // live entries (the ASan job additionally certifies no heap leaks on
  // this same path).
  ASSERT_TRUE(sim.quiesce());
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.packet_store().live_count(), 0u);
  EXPECT_EQ(net.packet_store().poisoned_live(), 0u);

  // The fault is now committed history: the FaultSet knows the link.
  EXPECT_FALSE(net.faults().link_usable(m.at(3, 3), port_of(Compass::East)));
  EXPECT_FALSE(net.recovery_pending());
}

// ------------------------------------------------------- node kill, NAFTA
TEST(FaultLifecycle, NodeKillOrphansEndpointTraffic) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1200;
  cfg.seed = 9;
  FaultSchedule schedule;
  schedule.fail_node_at(900, m.at(4, 4));
  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult r = sim.run();

  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.fault_events, 1);
  expect_exact_accounting(r);
  // Packets addressed to the dead node are gone for good — with uniform
  // traffic at this load some measured packet was bound there.
  EXPECT_GT(r.packets_lost, 0);
  EXPECT_GT(r.packets_unrecoverable, 0);
  ASSERT_TRUE(sim.quiesce());
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.packet_store().live_count(), 0u);
  EXPECT_TRUE(net.faults().node_faulty(m.at(4, 4)));
}

// ------------------------------------------- determinism (sweep contract)
TEST(FaultLifecycle, SweepBitIdentityAcrossThreadCounts) {
  const auto make_points = [] {
    std::vector<SweepPoint> points;
    for (const double rate : {0.05, 0.09}) {
      points.push_back({[rate](std::uint64_t seed) {
        Mesh m = Mesh::two_d(8, 8);
        Nafta algo;
        UniformTraffic tr(m);
        Network net(m, algo);
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.packet_length = 4;
        cfg.warmup_cycles = 200;
        cfg.measure_cycles = 800;
        cfg.seed = seed;
        FaultSchedule schedule;
        schedule.fail_link_at(600, m.at(3, 3), port_of(Compass::East));
        schedule.fail_node_at(800, m.at(6, 2));
        Simulator sim(net, tr, cfg);
        sim.set_fault_schedule(schedule);
        return sim.run();
      }});
    }
    return points;
  };

  std::vector<SimResult> reference;
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.num_threads = threads;
    opts.base_seed = 11;
    SweepRunner runner(opts);
    const std::vector<SimResult> results = runner.run(make_points());
    if (threads == 1) {
      reference = results;
      for (const SimResult& r : results) {
        EXPECT_FALSE(r.deadlock_suspected);
        EXPECT_EQ(r.fault_events, 2);
        expect_exact_accounting(r);
      }
      continue;
    }
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_TRUE(results_identical(results[i], reference[i]))
          << "point " << i << " diverged at " << threads << " threads";
  }
}

// ---------------------------------------- watchdog diagnostics + recovery
/// Adversarial single-VC ring routing on a 2x2 mesh: every packet travels
/// clockwise, one VC, no escape layer — sustained multi-worm load
/// deadlocks by construction (the classic cyclic wait).
class ClockwiseRing final : public RoutingAlgorithm {
 public:
  std::string name() const override { return "clockwise-ring"; }
  int num_vcs() const override { return 1; }

  void attach(const Topology& topo, const FaultSet& faults) override {
    const auto* mesh = dynamic_cast<const Mesh*>(&topo);
    FR_REQUIRE_MSG(mesh != nullptr && mesh->num_nodes() == 4,
                   "clockwise-ring wants the 2x2 mesh");
    topo_ = &topo;
    (void)faults;
    const NodeId ring[4] = {mesh->at(0, 0), mesh->at(1, 0), mesh->at(1, 1),
                            mesh->at(0, 1)};
    for (int i = 0; i < 4; ++i) {
      const NodeId from = ring[i];
      const NodeId to = ring[(i + 1) % 4];
      for (PortId p = 0; p < topo.degree(); ++p) {
        if (topo.neighbor(from, p) == to) {
          next_port_[static_cast<std::size_t>(from)] = p;
          break;
        }
      }
    }
  }

  RouteDecision route(const RouteContext& ctx) const override {
    RouteDecision d;
    if (ctx.dest == ctx.node) {
      d.candidates.push_back({static_cast<PortId>(topo_->degree()), 0, 0});
      return d;
    }
    d.candidates.push_back(
        {next_port_[static_cast<std::size_t>(ctx.node)], 0, 0});
    return d;
  }

 private:
  const Topology* topo_ = nullptr;
  PortId next_port_[4] = {};
};

TEST(FaultLifecycle, WatchdogDumpsBlockedChainOnTrueDeadlock) {
  Mesh m = Mesh::two_d(2, 2);
  ClockwiseRing ring;
  Network net(m, ring);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 4.0;  // saturating: every node offers constantly
  cfg.packet_length = 8;     // worms span multiple ring links
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.watchdog_window = 200;
  cfg.drain_limit = 5000;
  cfg.seed = 3;
  Simulator sim(net, traffic, cfg);  // no lifecycle: legacy give-up path
  const SimResult r = sim.run();

  ASSERT_TRUE(r.deadlock_suspected);
  // The watchdog now explains itself: the blocked wait-for chain names
  // each waiting channel and the worm holding it.
  ASSERT_FALSE(r.blocked_chain.empty());
  for (const SimResult::BlockedChannelInfo& c : r.blocked_chain) {
    EXPECT_TRUE(m.valid_node(c.node));
    EXPECT_GE(c.port, 0);
    EXPECT_EQ(c.vc, 0);  // single-VC algorithm
    EXPECT_GE(c.packet, 0);
    EXPECT_FALSE(net.record(c.packet).done());
  }
  EXPECT_EQ(r.worms_killed, 0);  // diagnosis only, no structured recovery
}

TEST(FaultLifecycle, StructuredWatchdogBreaksDeadlockAndAccounts) {
  Mesh m = Mesh::two_d(2, 2);
  ClockwiseRing ring;
  Network net(m, ring);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 4.0;
  cfg.packet_length = 8;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.watchdog_window = 100;
  cfg.drain_limit = 50000;
  cfg.max_retries = 1;
  cfg.structured_watchdog = true;  // upgrade: kill victims, retransmit
  cfg.seed = 3;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();

  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_GE(r.worms_killed, 1);
  EXPECT_GT(r.packets_lost, 0);
  EXPECT_FALSE(r.blocked_chain.empty());  // first kill records the chain
  expect_exact_accounting(r);
  ASSERT_TRUE(sim.quiesce());
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.packet_store().live_count(), 0u);
}

// ------------------------------------ epoch staleness, every algorithm
/// Kill a link between run() calls (the live path: data-plane kill +
/// quiescent commit) and verify the algorithm routes again afterwards —
/// reconfigure() must clear any per-epoch staleness guards.
TEST(FaultLifecycle, ReconfigureClearsEpochStalenessForEveryAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Topology> topo;
    NodeId kill_node = kInvalidNode;
    PortId kill_port = kInvalidPort;
    NodeId src = kInvalidNode, dest = kInvalidNode;
    if (name == "ecube" || name == "route_c" || name == "route_c_nft") {
      auto h = std::make_unique<Hypercube>(4);
      kill_node = 0;
      kill_port = 0;  // link 0 <-> 1
      src = 4;
      dest = 12;  // single hop in dimension 3, far from the dead link
      topo = std::move(h);
    } else if (name == "dor-torus") {
      auto t = std::make_unique<Torus>(std::vector<int>{4, 4});
      kill_node = 0;
      kill_port = port_of(Compass::East);
      src = 5;
      dest = 6;
      topo = std::move(t);
    } else {
      auto mm = std::make_unique<Mesh>(std::vector<int>{4, 4});
      kill_node = mm->at(1, 1);
      kill_port = port_of(Compass::East);
      src = mm->at(0, 3);
      dest = mm->at(1, 3);
      topo = std::move(mm);
    }
    std::unique_ptr<RoutingAlgorithm> algo = make_algorithm(name);
    Network net(*topo, *algo);

    const auto deliver_one = [&](Cycle& now) {
      const PacketId id = net.send(src, dest, 4, now);
      for (Cycle t = 0; t < 5000 && !net.idle(); ++t) net.step(now++);
      EXPECT_TRUE(net.record(id).done());
    };

    Cycle now = 0;
    deliver_one(now);  // healthy epoch

    net.kill_link_live(kill_node, kill_port);
    ASSERT_TRUE(net.recovery_pending());
    EXPECT_GE(net.commit_pending_faults(), 0);
    EXPECT_FALSE(net.faults().link_usable(kill_node, kill_port));

    // Routing after the epoch bump must not trip staleness contracts and
    // must still deliver (the pair avoids the dead link, so even the
    // non-fault-tolerant algorithms have a path).
    deliver_one(now);
  }
}

// -------------------------------------------- fault injector contracts
TEST(FaultInjectorContracts, ShapedInjectorsRejectOutOfMeshRegions) {
  Mesh m = Mesh::two_d(6, 6);
  Nafta algo;
  Network net(m, algo);
  net.apply_faults([&](FaultSet& f) {
    FaultSet& faults = f;
    // In-bounds shapes are fine.
    inject_figure2_chain(faults, m, 2, 3);
    // Chain: x must leave room for the East link, length must fit.
    EXPECT_THROW(inject_figure2_chain(faults, m, -1, 2), ContractViolation);
    EXPECT_THROW(inject_figure2_chain(faults, m, 5, 2), ContractViolation);
    EXPECT_THROW(inject_figure2_chain(faults, m, 2, 7), ContractViolation);
    EXPECT_THROW(inject_figure2_chain(faults, m, 2, 0), ContractViolation);
    // Block: corners ordered and inside the mesh.
    EXPECT_THROW(inject_fault_block(faults, m, 3, 3, 2, 4),
                 ContractViolation);
    EXPECT_THROW(inject_fault_block(faults, m, -1, 0, 1, 1),
                 ContractViolation);
    EXPECT_THROW(inject_fault_block(faults, m, 4, 4, 6, 5),
                 ContractViolation);
    // Concave region: needs a 2x2+ block, inside the mesh.
    EXPECT_THROW(inject_concave_faults(faults, m, 2, 2, 2, 4),
                 ContractViolation);
    EXPECT_THROW(inject_concave_faults(faults, m, 0, -2, 2, 2),
                 ContractViolation);
    EXPECT_THROW(inject_concave_faults(faults, m, 3, 3, 6, 6),
                 ContractViolation);
    // The failed probes left no partial damage beyond the valid chain.
    for (NodeId n = 0; n < m.num_nodes(); ++n) EXPECT_TRUE(f.node_ok(n));
  });
}

TEST(FaultInjectorContracts, NonTwoDimensionalMeshRejected) {
  // The Mesh type admits any rank; the shaped injectors' 2-D guard is a
  // contract, not a compile-time property.
  Mesh line(std::vector<int>{8});
  FaultSet faults(line);
  EXPECT_THROW(inject_fault_block(faults, line, 0, 0, 1, 1),
               ContractViolation);
  EXPECT_THROW(inject_figure2_chain(faults, line, 0, 1), ContractViolation);
  EXPECT_THROW(inject_concave_faults(faults, line, 0, 0, 1, 1),
               ContractViolation);
}

TEST(FaultInjectorContracts, RegionInjectorCoversKAryMesh) {
  // 3-D mesh: the hyper-rectangle [1,2]x[0,1]x[2,2] is exactly 4 nodes.
  Mesh m(std::vector<int>{4, 3, 3});
  FaultSet faults(m);
  EXPECT_EQ(inject_fault_region(faults, {1, 0, 2}, {2, 1, 2}), 4);
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    const bool inside = m.coord(n, 0) >= 1 && m.coord(n, 0) <= 2 &&
                        m.coord(n, 1) <= 1 && m.coord(n, 2) == 2;
    EXPECT_EQ(faults.node_faulty(n), inside);
  }
  // An overlapping region counts only the nodes it newly fails: the
  // [1,2]x[0,1]x[1,2] box is 8 nodes, 4 of which are already down.
  EXPECT_EQ(inject_fault_region(faults, {1, 0, 1}, {2, 1, 2}), 4);
}

TEST(FaultInjectorContracts, RegionInjectorCoversTorus) {
  Torus t(std::vector<int>{5, 5});
  FaultSet faults(t);
  EXPECT_EQ(inject_fault_region(faults, {3, 1}, {4, 2}), 4);
  EXPECT_TRUE(faults.node_faulty(t.node_at({3, 1})));
  EXPECT_TRUE(faults.node_faulty(t.node_at({4, 2})));
  EXPECT_FALSE(faults.node_faulty(t.node_at({2, 1})));
}

TEST(FaultInjectorContracts, RegionInjectorNamesNonGridTopologies) {
  // Grid coordinates are meaningless on a hypercube; the rejection must
  // say which topology was handed in.
  Hypercube h(3);
  FaultSet faults(h);
  try {
    inject_fault_region(faults, {0, 0, 0}, {1, 1, 1});
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(h.name()), std::string::npos);
  }
}

TEST(FaultInjectorContracts, RegionInjectorValidatesCorners) {
  Mesh m(std::vector<int>{4, 3, 3});
  FaultSet faults(m);
  EXPECT_THROW(inject_fault_region(faults, {0, 0}, {1, 1}),
               ContractViolation);  // wrong arity for a 3-D grid
  EXPECT_THROW(inject_fault_region(faults, {0, 0, 0}, {4, 1, 1}),
               ContractViolation);  // past the edge of dimension 0
  EXPECT_THROW(inject_fault_region(faults, {2, 0, 0}, {1, 1, 1}),
               ContractViolation);  // inverted corners
  for (NodeId n = 0; n < m.num_nodes(); ++n)
    EXPECT_FALSE(faults.node_faulty(n));
}

TEST(FaultInjectorContracts, TwoDimGuardNamesTheMesh) {
  Mesh cube(std::vector<int>{3, 3, 3});
  FaultSet faults(cube);
  try {
    inject_fault_block(faults, cube, 0, 0, 1, 1);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(cube.name()), std::string::npos);
    EXPECT_NE(what.find("inject_fault_region"), std::string::npos);
  }
}

// -------------------------------------------------- random MTBF soak
TEST(FaultLifecycle, RandomMtbfSoakStaysAccountedAndDeterministic) {
  const auto run_once = [] {
    Mesh m = Mesh::two_d(6, 6);
    Nafta algo;
    Network net(m, algo);
    UniformTraffic tr(m);
    SimConfig cfg;
    cfg.injection_rate = 0.06;
    cfg.packet_length = 4;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 1500;
    cfg.seed = 77;
    FaultSchedule schedule;
    schedule.add_random_link_faults(m, /*mtbf_cycles=*/800.0,
                                    /*horizon=*/1500, /*seed=*/5);
    EXPECT_GE(schedule.size(), 1u);
    Simulator sim(net, tr, cfg);
    sim.set_fault_schedule(schedule);
    SimResult r = sim.run();
    EXPECT_TRUE(sim.quiesce());
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.packet_store().live_count(), 0u);
    return r;
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_FALSE(a.deadlock_suspected);
  EXPECT_GE(a.fault_events, 1);
  expect_exact_accounting(a);
  EXPECT_TRUE(results_identical(a, b));  // same seeds, same story
}

}  // namespace
}  // namespace flexrouter
