// Unit tests for the router data path: flits, message interface, buffers,
// arbiters, crossbar, links, and single-router behaviour.
#include <gtest/gtest.h>

#include <type_traits>

#include "router/router.hpp"
#include "routing/dor.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

// ----------------------------------------------------------- message iface
Header sealed_header(PacketId id, NodeId src, NodeId dest, int len) {
  Header h;
  h.packet = id;
  h.src = src;
  h.dest = dest;
  h.length = len;
  MessageInterface::seal(h);
  return h;
}

/// Allocates a sealed header in `store` and returns its slot.
PacketSlot sealed_packet(PacketStore& store, PacketId id, NodeId src,
                         NodeId dest, int len) {
  return store.alloc(sealed_header(id, src, dest, len));
}

TEST(MessageInterface, SealAndVerify) {
  Header h = sealed_header(1, 0, 5, 4);
  EXPECT_TRUE(MessageInterface::checksum_ok(h));
  h.dest = 6;  // corrupt
  EXPECT_FALSE(MessageInterface::checksum_ok(h));
}

TEST(MessageInterface, ExtractRejectsCorruptHeader) {
  PacketStore store;
  const PacketSlot slot = sealed_packet(store, 1, 0, 5, 4);
  store.header(slot).path_len = 9;  // tampered without resealing
  const Flit f = make_head_flit(slot, 4);
  EXPECT_THROW(MessageInterface::extract(store, f), ContractViolation);
}

TEST(MessageInterface, ExtractRejectsBodyFlit) {
  PacketStore store;
  const PacketSlot slot = sealed_packet(store, 1, 0, 5, 4);
  const Flit f = make_body_flit(slot, 1, 4);
  EXPECT_THROW(MessageInterface::extract(store, f), ContractViolation);
}

TEST(MessageInterface, ForwardUpdatesCounterAndChecksum) {
  PacketStore store;
  const PacketSlot slot = sealed_packet(store, 7, 0, 5, 4);
  const Flit f = make_head_flit(slot, 4);
  const int changed = MessageInterface::update_on_forward(store, f, false);
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(store.header(slot).path_len, 1);
  EXPECT_TRUE(MessageInterface::checksum_ok(store.header(slot)));
}

TEST(MessageInterface, MisrouteMarkIsSticky) {
  PacketStore store;
  const PacketSlot slot = sealed_packet(store, 7, 0, 5, 4);
  const Flit f = make_head_flit(slot, 4);
  EXPECT_EQ(MessageInterface::update_on_forward(store, f, true), 2);
  EXPECT_TRUE(store.header(slot).misrouted);
  // Marking again changes only the counter.
  EXPECT_EQ(MessageInterface::update_on_forward(store, f, true), 1);
  EXPECT_TRUE(MessageInterface::checksum_ok(store.header(slot)));
}

TEST(Flits, HeadTailFlags) {
  const PacketSlot slot = 3;  // flit records never dereference the slot
  const Flit single = make_head_flit(slot, 1);
  EXPECT_TRUE(single.head());
  EXPECT_TRUE(single.tail());

  EXPECT_TRUE(make_head_flit(slot, 3).head());
  EXPECT_FALSE(make_head_flit(slot, 3).tail());
  EXPECT_FALSE(make_body_flit(slot, 1, 3).tail());
  EXPECT_TRUE(make_body_flit(slot, 2, 3).tail());
  EXPECT_FALSE(make_body_flit(slot, 1, 3).head());
}

TEST(Flits, RecordIsEightBytePod) {
  static_assert(sizeof(Flit) == 8);
  static_assert(std::is_trivially_copyable_v<Flit>);
  const Flit f = make_body_flit(9, 2, 4);
  EXPECT_EQ(f.slot, 9u);
  EXPECT_EQ(f.seq, 2);
}

// ------------------------------------------------------------ packet store
TEST(PacketStoreBasics, AccessAfterReleaseThrows) {
  PacketStore store;
  const PacketSlot slot = sealed_packet(store, 1, 0, 5, 4);
  EXPECT_TRUE(store.live(slot));
  store.release(slot);
  EXPECT_FALSE(store.live(slot));
  EXPECT_THROW(store.header(slot), ContractViolation);
}

// ------------------------------------------------------------------ buffer
TEST(FlitBuffer, FifoOrderAndCapacity) {
  FlitBuffer buf(2);
  buf.push(make_head_flit(0, 3));
  buf.push(make_body_flit(0, 1, 3));
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(make_body_flit(0, 2, 3)), ContractViolation);
  EXPECT_TRUE(buf.pop().head());
  EXPECT_EQ(buf.pop().seq, 1);
  EXPECT_TRUE(buf.empty());
  EXPECT_THROW(buf.pop(), ContractViolation);
}

// ----------------------------------------------------------------- arbiter
TEST(Arbiter, RoundRobinRotatesAmongEqualPriorities) {
  RoundRobinArbiter arb(3);
  std::vector<int> grants;
  for (int round = 0; round < 6; ++round) {
    arb.begin();
    for (int i = 0; i < 3; ++i) arb.request(i);
    grants.push_back(arb.grant());
  }
  EXPECT_EQ(grants, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Arbiter, HigherPriorityWins) {
  RoundRobinArbiter arb(4);
  arb.begin();
  arb.request(0, 0);
  arb.request(2, 5);
  arb.request(3, 1);
  EXPECT_EQ(arb.grant(), 2);
}

TEST(Arbiter, NoRequestersYieldsMinusOne) {
  RoundRobinArbiter arb(2);
  arb.begin();
  EXPECT_EQ(arb.grant(), -1);
}

TEST(Arbiter, PeekDoesNotAdvancePointer) {
  // A winner whose grant is not consumed keeps its fairness turn: peek()
  // must return the same index until consume() commits it.
  RoundRobinArbiter arb(3);
  arb.begin();
  for (int i = 0; i < 3; ++i) arb.request(i);
  EXPECT_EQ(arb.peek(), 0);
  EXPECT_EQ(arb.peek(), 0);  // unchanged — pointer did not move
  arb.consume(0);
  arb.begin();
  for (int i = 0; i < 3; ++i) arb.request(i);
  EXPECT_EQ(arb.peek(), 1);
}

TEST(Arbiter, StarvationFreedomUnderContention) {
  // With persistent requests from everyone, each index is granted within
  // `size` rounds — the fairness guarantee of Section 3.
  RoundRobinArbiter arb(5);
  std::vector<int> last_grant(5, -1);
  for (int round = 0; round < 25; ++round) {
    arb.begin();
    for (int i = 0; i < 5; ++i) arb.request(i);
    const int g = arb.grant();
    ASSERT_GE(g, 0);
    last_grant[static_cast<std::size_t>(g)] = round;
  }
  for (int i = 0; i < 5; ++i) EXPECT_GE(last_grant[static_cast<std::size_t>(i)], 0);
}

// ---------------------------------------------------------------- crossbar
TEST(Crossbar, PortExclusivityPerCycle) {
  Crossbar xbar(3, 3);
  xbar.begin_cycle();
  xbar.connect(0, 1);
  EXPECT_FALSE(xbar.input_free(0));
  EXPECT_FALSE(xbar.output_free(1));
  EXPECT_TRUE(xbar.input_free(1));
  EXPECT_THROW(xbar.connect(0, 2), ContractViolation);
  EXPECT_THROW(xbar.connect(2, 1), ContractViolation);
  xbar.connect(2, 0);
  EXPECT_EQ(xbar.total_traversals(), 2);
  xbar.begin_cycle();
  EXPECT_TRUE(xbar.input_free(0));
}

// -------------------------------------------------------------------- link
TEST(Link, FlitLatencyAndOrder) {
  Link link(2, /*latency=*/3);
  link.send_flit(10, 1, make_head_flit(0, 2));
  EXPECT_FALSE(link.receive_flit(11).has_value());
  EXPECT_FALSE(link.receive_flit(12).has_value());
  const auto arrival = link.receive_flit(13);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_EQ(arrival->first, 1);
  EXPECT_TRUE(arrival->second.head());
  EXPECT_TRUE(link.idle());
}

TEST(Link, OneFlitPerCycleEnforced) {
  Link link(1, 1);
  link.send_flit(5, 0, make_head_flit(0, 2));
  EXPECT_THROW(link.send_flit(5, 0, make_body_flit(0, 1, 2)),
               ContractViolation);
}

TEST(Link, CreditsTravelBackwardAsVcBitmask) {
  Link link(2, 2);
  link.send_credit(4, 0);
  link.send_credit(4, 1);
  EXPECT_FALSE(link.idle());
  EXPECT_EQ(link.receive_credits(5), 0u);
  EXPECT_EQ(link.receive_credits(6), 0b11u);  // bit v == VC v
  EXPECT_EQ(link.receive_credits(6), 0u);     // consumed
  EXPECT_TRUE(link.idle());
}

TEST(Link, BackToBackFlitsKeepLatency) {
  // A flit delivered at cycle t must survive a send at cycle t (routers
  // step in node order, so the sender may transmit before the receiver
  // picks up) — the pipeline has latency+1 stages for exactly this.
  Link link(1, 1);
  link.send_flit(0, 0, make_head_flit(0, 3));
  link.send_flit(1, 0, make_body_flit(0, 1, 3));
  auto a = link.receive_flit(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->second.head());
  link.send_flit(2, 0, make_body_flit(0, 2, 3));
  a = link.receive_flit(2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->second.seq, 1);
  a = link.receive_flit(3);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->second.tail());
  EXPECT_TRUE(link.idle());
}

TEST(Link, InfoUnitMeasuresLoad) {
  Link link(1, 1);
  for (Cycle t = 0; t < 200; ++t) {
    link.send_flit(t, 0, make_head_flit(0, 1));
    (void)link.receive_flit(t + 1);
    link.info().tick(t, true);
  }
  EXPECT_GT(link.info().load(), 0.8);
  EXPECT_EQ(link.info().flits_total(), 200);
  for (Cycle t = 200; t < 600; ++t) link.info().tick(t, false);
  EXPECT_LT(link.info().load(), 0.05);
}

// -------------------------------------------- two routers connected directly
class TwoRouterFixture : public ::testing::Test {
 protected:
  TwoRouterFixture()
      : mesh_(Mesh::two_d(2, 2)),
        faults_(mesh_),
        algo_(),
        cfg_() {
    algo_.attach(mesh_, faults_);
  }

  Mesh mesh_;
  FaultSet faults_;
  DimensionOrderMesh algo_;
  PacketStore store_;
  RouterConfig cfg_;
};

TEST_F(TwoRouterFixture, PacketCrossesOneHop) {
  Router r0(mesh_.at(0, 0), mesh_, faults_, algo_, store_, cfg_);
  Router r1(mesh_.at(1, 0), mesh_, faults_, algo_, store_, cfg_);
  Link east(algo_.num_vcs(), 1), west(algo_.num_vcs(), 1);
  r0.connect_output(port_of(Compass::East), &east);
  r1.connect_input(port_of(Compass::West), &east);
  r1.connect_output(port_of(Compass::West), &west);
  r0.connect_input(port_of(Compass::East), &west);

  const PacketSlot slot =
      sealed_packet(store_, 0, mesh_.at(0, 0), mesh_.at(1, 0), 3);
  r0.inject(make_head_flit(slot, 3));
  r0.inject(make_body_flit(slot, 1, 3));
  r0.inject(make_body_flit(slot, 2, 3));

  std::vector<Flit> ejected;
  for (Cycle t = 0; t < 30 && ejected.size() < 3; ++t) {
    r0.step(t, ejected);
    r1.step(t, ejected);
  }
  ASSERT_EQ(ejected.size(), 3u);
  EXPECT_TRUE(ejected[0].head());
  EXPECT_EQ(store_.header(slot).path_len, 1);  // one hop
  EXPECT_TRUE(ejected[2].tail());
  EXPECT_TRUE(r0.empty());
  EXPECT_TRUE(r1.empty());
  EXPECT_EQ(r1.stats().flits_ejected, 3);
  EXPECT_EQ(r0.stats().decision_steps, 1);
}

TEST_F(TwoRouterFixture, LocalDeliveryWithoutLinks) {
  Router r0(mesh_.at(0, 0), mesh_, faults_, algo_, store_, cfg_);
  const PacketSlot slot =
      sealed_packet(store_, 0, mesh_.at(1, 0), mesh_.at(0, 0), 2);
  r0.inject(make_head_flit(slot, 2));
  r0.inject(make_body_flit(slot, 1, 2));
  std::vector<Flit> ejected;
  for (Cycle t = 0; t < 10 && ejected.size() < 2; ++t) r0.step(t, ejected);
  ASSERT_EQ(ejected.size(), 2u);
  EXPECT_EQ(store_.header(slot).path_len, 0);  // never left the router
}

TEST_F(TwoRouterFixture, CreditsThrottleAndRecover) {
  // Fill downstream buffer (depth 4), verify upstream stalls, then drains.
  Router r0(mesh_.at(0, 0), mesh_, faults_, algo_, store_, cfg_);
  Router r1(mesh_.at(1, 0), mesh_, faults_, algo_, store_, cfg_);
  Link east(algo_.num_vcs(), 1), west(algo_.num_vcs(), 1);
  r0.connect_output(port_of(Compass::East), &east);
  r1.connect_input(port_of(Compass::West), &east);
  r1.connect_output(port_of(Compass::West), &west);
  r0.connect_input(port_of(Compass::East), &west);

  // A long packet: 12 flits through a depth-4 buffer must still flow.
  const int kLen = 12;
  const PacketSlot slot =
      sealed_packet(store_, 0, mesh_.at(0, 0), mesh_.at(1, 0), kLen);
  r0.inject(make_head_flit(slot, kLen));
  for (int s = 1; s < kLen; ++s) r0.inject(make_body_flit(slot, s, kLen));

  std::vector<Flit> ejected;
  for (Cycle t = 0; t < 100 && ejected.size() < kLen; ++t) {
    r0.step(t, ejected);
    r1.step(t, ejected);
  }
  EXPECT_EQ(ejected.size(), static_cast<std::size_t>(kLen));
  EXPECT_TRUE(r0.empty());
  EXPECT_TRUE(r1.empty());
}

}  // namespace
}  // namespace flexrouter
