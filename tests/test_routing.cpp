// Tests for the routing algorithms: candidate correctness, the paper's
// conditions 1-3, propagated fault states, decision-step accounting, and
// mechanical deadlock-freedom checks via channel dependency graphs.
#include <gtest/gtest.h>

#include <set>

#include "routing/cdg.hpp"
#include "routing/dor.hpp"
#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "routing/route_c.hpp"
#include "routing/spanning_tree.hpp"
#include "routing/updown.hpp"
#include "sim/fault_injector.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {
namespace {

RouteContext ctx_of(NodeId node, NodeId dest, PortId in_port = kInvalidPort,
                    VcId in_vc = 0) {
  RouteContext ctx;
  ctx.node = node;
  ctx.dest = dest;
  ctx.src = node;
  ctx.in_port = in_port;
  ctx.in_vc = in_vc;
  return ctx;
}

std::set<PortId> candidate_ports(const RouteDecision& d) {
  std::set<PortId> out;
  for (const RouteCandidate& c : d.candidates) out.insert(c.port);
  return out;
}

// ---------------------------------------------------------------------- DOR
TEST(Dor, XYOrderOnMesh) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  DimensionOrderMesh dor;
  dor.attach(m, f);
  // x first:
  auto d = dor.route(ctx_of(m.at(0, 0), m.at(2, 3)));
  EXPECT_EQ(candidate_ports(d), std::set<PortId>{port_of(Compass::East)});
  // then y:
  d = dor.route(ctx_of(m.at(2, 0), m.at(2, 3)));
  EXPECT_EQ(candidate_ports(d), std::set<PortId>{port_of(Compass::North)});
  // arrived:
  d = dor.route(ctx_of(m.at(2, 3), m.at(2, 3)));
  EXPECT_EQ(candidate_ports(d), std::set<PortId>{m.degree()});
}

TEST(Dor, FullCdgAcyclic) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  DimensionOrderMesh dor;
  dor.attach(m, f);
  const CdgReport rep = check_full_cdg(m, f, dor);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
}

TEST(ECube, AscendingDimensionOrder) {
  Hypercube h(4);
  FaultSet f(h);
  ECubeHypercube ecube;
  ecube.attach(h, f);
  const auto d = ecube.route(ctx_of(0b0000, 0b1010));
  EXPECT_EQ(candidate_ports(d), std::set<PortId>{1});  // lowest differing bit
  const CdgReport rep = check_full_cdg(h, f, ecube);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
}

// --------------------------------------------------------------------- NARA
TEST(NaraTest, FullyAdaptiveMinimal) {
  // Condition 1: every minimal direction is offered when fault-free.
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  Nara nara;
  nara.attach(m, f);
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t) continue;
      const auto d = nara.route(ctx_of(s, t));
      std::set<PortId> expect;
      if (m.x_of(t) > m.x_of(s)) expect.insert(port_of(Compass::East));
      if (m.x_of(t) < m.x_of(s)) expect.insert(port_of(Compass::West));
      if (m.y_of(t) > m.y_of(s)) expect.insert(port_of(Compass::North));
      if (m.y_of(t) < m.y_of(s)) expect.insert(port_of(Compass::South));
      EXPECT_EQ(candidate_ports(d), expect);
      EXPECT_EQ(d.steps, 1);
    }
  }
}

TEST(NaraTest, VirtualNetworkDiscipline) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  Nara nara;
  nara.attach(m, f);
  // Going north: all candidates on VC 1.
  auto d = nara.route(ctx_of(m.at(2, 2), m.at(4, 5)));
  for (const auto& c : d.candidates) EXPECT_EQ(c.vc, 1);
  // Going south: VC 0.
  d = nara.route(ctx_of(m.at(2, 2), m.at(0, 0)));
  for (const auto& c : d.candidates) EXPECT_EQ(c.vc, 0);
  // Pure x: both VCs offered.
  d = nara.route(ctx_of(m.at(2, 2), m.at(5, 2)));
  std::set<VcId> vcs;
  for (const auto& c : d.candidates) vcs.insert(c.vc);
  EXPECT_EQ(vcs, (std::set<VcId>{0, 1}));
}

TEST(NaraTest, FullCdgAcyclic) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  Nara nara;
  nara.attach(m, f);
  const CdgReport rep = check_full_cdg(m, f, nara);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
}

// ----------------------------------------------------------------- up*/down*
TEST(UpDown, DeliversEverywhereUnderFaults) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Mesh m = Mesh::two_d(6, 6);
    FaultSet f(m);
    inject_random_link_faults(f, 10, rng);
    UpDownTable table;
    table.rebuild(f);
    // Walk from every source to every dest following the table; phase must
    // stay legal and the walk must terminate within the legal distance.
    for (NodeId s = 0; s < m.num_nodes(); ++s) {
      for (NodeId t = 0; t < m.num_nodes(); ++t) {
        if (s == t) continue;
        ASSERT_TRUE(table.reachable(s, t));
        NodeId at = s;
        auto phase = UpDownTable::Phase::Up;
        int steps = 0;
        while (at != t) {
          const auto hops = table.next_hops(at, t, phase);
          ASSERT_FALSE(hops.empty());
          const PortId p = hops[0];
          phase = table.phase_after(at, p);
          at = m.neighbor(at, p);
          ASSERT_LE(++steps, 4 * m.num_nodes());
        }
        EXPECT_EQ(steps, table.distance(s, t, UpDownTable::Phase::Up));
      }
    }
  }
}

TEST(UpDown, DownPhaseNeverGoesUp) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  UpDownTable table;
  table.rebuild(f);
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (n == t || !table.reachable(n, t)) continue;
      if (table.distance(n, t, UpDownTable::Phase::Down) < 0) continue;
      for (const PortId p : table.next_hops(n, t, UpDownTable::Phase::Down))
        EXPECT_FALSE(table.is_up_move(n, p));
    }
  }
}

TEST(UpDown, LegalDistanceAtLeastTopological) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  UpDownTable table;
  table.rebuild(f);
  for (NodeId s = 0; s < m.num_nodes(); ++s)
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t) continue;
      EXPECT_GE(table.distance(s, t, UpDownTable::Phase::Up),
                m.distance(s, t));
    }
}

TEST(UpDown, CdgAcyclicUnderRandomFaults) {
  Rng rng(123);
  for (int trial = 0; trial < 8; ++trial) {
    Mesh m = Mesh::two_d(5, 5);
    FaultSet f(m);
    UpDownRouting algo;
    algo.attach(m, f);
    inject_random_link_faults(f, 2 * trial, rng);
    algo.reconfigure();
    const CdgReport rep = check_full_cdg(m, f, algo);
    EXPECT_TRUE(rep.acyclic) << "trial " << trial << ": " << rep.to_string();
  }
}

// ------------------------------------------------------------ spanning tree
TEST(SpanningTreeAlgo, UsesOnlyTreeLinks) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  SpanningTreeRouting st;
  st.attach(m, f);
  // Collect tree edges.
  std::set<std::pair<NodeId, NodeId>> tree_edges;
  for (NodeId v = 0; v < m.num_nodes(); ++v) {
    const NodeId parent = st.tree().parent[static_cast<std::size_t>(v)];
    if (parent == kInvalidNode) continue;
    tree_edges.emplace(v, parent);
    tree_edges.emplace(parent, v);
  }
  for (NodeId s = 0; s < m.num_nodes(); ++s)
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t) continue;
      const auto d = st.route(ctx_of(s, t));
      ASSERT_EQ(d.candidates.size(), 1u);
      const NodeId next = m.neighbor(s, d.candidates[0].port);
      EXPECT_TRUE(tree_edges.count({s, next}))
          << "non-tree link used " << s << "->" << next;
    }
}

TEST(SpanningTreeAlgo, WastesMostLinks) {
  // The paper's Section 2 claim, quantified: a spanning tree uses N-1 of the
  // 2*W*H-W-H mesh links.
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  SpanningTreeRouting st;
  st.attach(m, f);
  EXPECT_NEAR(st.link_usage_fraction(), 63.0 / 112.0, 1e-9);
}

TEST(SpanningTreeAlgo, SurvivesFaultsViaRecompute) {
  Rng rng(5);
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  SpanningTreeRouting st;
  st.attach(m, f);
  inject_random_link_faults(f, 6, rng);
  const int exchanges = st.reconfigure();
  EXPECT_GT(exchanges, 0);
  const CdgReport rep = check_full_cdg(m, f, st);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
}

// -------------------------------------------------------------------- NAFTA
TEST(NaftaTest, FaultFreeEqualsNara) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  Nafta nafta;
  Nara nara;
  nafta.attach(m, f);
  nara.attach(m, f);
  for (NodeId s = 0; s < m.num_nodes(); ++s)
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t) continue;
      const auto dn = nafta.route(ctx_of(s, t));
      const auto dr = nara.route(ctx_of(s, t));
      EXPECT_EQ(candidate_ports(dn), candidate_ports(dr));
      EXPECT_EQ(dn.steps, 1);  // one interpretation, fault-free
    }
}

TEST(NaftaTest, StepsClimbWithFaults) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  // Fault far away: decisions still need the fault-state lookup (2 steps).
  f.fail_link(m.at(4, 4), port_of(Compass::East));
  nafta.reconfigure();
  const auto d = nafta.route(ctx_of(m.at(0, 0), m.at(2, 0)));
  EXPECT_EQ(d.steps, 2);
  // A message whose every minimal link is broken needs the third step
  // (dest due east, east link broken, north detour remains usable).
  f.fail_link(m.at(0, 0), port_of(Compass::East));
  nafta.reconfigure();
  const auto d2 = nafta.route(ctx_of(m.at(0, 0), m.at(2, 0)));
  EXPECT_EQ(d2.steps, 3);
  EXPECT_TRUE(d2.mark_misrouted);
  EXPECT_FALSE(d2.candidates.empty());
}

TEST(NaftaTest, DeadEndFlagsMatchDefinition) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  // Faults in columns 5 and 7: columns east of x=4 are NOT all faulty
  // (column 6 is clean), east of x=6 they are not either... dead-end-east
  // requires EVERY column to the east to contain a fault.
  f.fail_node(m.at(5, 3));
  f.fail_node(m.at(7, 6));
  nafta.reconfigure();
  EXPECT_FALSE(nafta.dead_end(m.at(4, 0), Compass::East));  // col 6 clean
  EXPECT_FALSE(nafta.dead_end(m.at(5, 0), Compass::East));
  EXPECT_TRUE(nafta.dead_end(m.at(6, 0), Compass::East));   // only col 7 east
  // Now break column 6 too: everything east of 4 is dead.
  f.fail_link(m.at(6, 2), port_of(Compass::North));
  nafta.reconfigure();
  EXPECT_TRUE(nafta.dead_end(m.at(4, 0), Compass::East));
  EXPECT_FALSE(nafta.dead_end(m.at(4, 0), Compass::West));
}

TEST(NaftaTest, ConcaveRegionsAreCompleted) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  // An L-shaped fault: block minus its north-east quadrant. The pocket
  // nodes (healthy, inside the L) must be deactivated.
  inject_concave_faults(f, m, 2, 2, 5, 5);
  nafta.reconfigure();
  EXPECT_GT(nafta.num_deactivated(), 0);
  // The inner corner of the pocket is deactivated...
  EXPECT_TRUE(nafta.deactivated(m.at(4, 4)));
  // ...but healthy nodes far away are not.
  EXPECT_FALSE(nafta.deactivated(m.at(0, 0)));
  EXPECT_FALSE(nafta.deactivated(m.at(7, 7)));
}

TEST(NaftaTest, EscapeCdgAcyclicUnderRandomFaults) {
  Rng rng(321);
  for (int trial = 0; trial < 8; ++trial) {
    Mesh m = Mesh::two_d(5, 5);
    FaultSet f(m);
    Nafta nafta;
    nafta.attach(m, f);
    inject_random_link_faults(f, 1 + trial, rng);
    nafta.reconfigure();
    const CdgReport rep = check_escape_cdg(m, f, nafta);
    EXPECT_TRUE(rep.acyclic) << "trial " << trial << ": " << rep.to_string();
    EXPECT_GT(rep.num_channels, 0);
  }
}

TEST(NaftaTest, Condition3ViaEscape) {
  // Every connected pair still gets at least one candidate with faults.
  Rng rng(77);
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  Nafta nafta;
  nafta.attach(m, f);
  inject_random_link_faults(f, 12, rng);
  inject_random_node_faults(f, 2, rng);
  nafta.reconfigure();
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      if (s == t || f.node_faulty(s) || f.node_faulty(t)) continue;
      if (!connected(f, s, t)) continue;
      const auto d = nafta.route(ctx_of(s, t));
      EXPECT_FALSE(d.candidates.empty())
          << "no candidate from " << s << " to " << t;
    }
  }
}

// ------------------------------------------------------------------ ROUTE_C
TEST(RouteCTest, StrippedIsMinimalKon90) {
  Hypercube h(4);
  FaultSet f(h);
  StrippedRouteC nft;
  nft.attach(h, f);
  // 0 -> 0b0110: ascending flips bits 1 and 2 on VC 0.
  auto d = nft.route(ctx_of(0b0000, 0b0110));
  EXPECT_EQ(candidate_ports(d), (std::set<PortId>{1, 2}));
  for (const auto& c : d.candidates) EXPECT_EQ(c.vc, RouteC::kAscVc);
  // 0b0110 -> 0: only descending corrections remain, VC 1.
  d = nft.route(ctx_of(0b0110, 0b0000));
  for (const auto& c : d.candidates) EXPECT_EQ(c.vc, RouteC::kDescVc);
  // Mixed: ascending first.
  d = nft.route(ctx_of(0b0100, 0b0011));
  EXPECT_EQ(candidate_ports(d), (std::set<PortId>{0, 1}));
  for (const auto& c : d.candidates) EXPECT_EQ(c.vc, RouteC::kAscVc);
}

TEST(RouteCTest, StrippedCdgAcyclic) {
  Hypercube h(4);
  FaultSet f(h);
  StrippedRouteC nft;
  nft.attach(h, f);
  const CdgReport rep = check_full_cdg(h, f, nft);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
}

TEST(RouteCTest, FaultFreeMatchesStripped) {
  Hypercube h(5);
  FaultSet f(h);
  RouteC ft;
  StrippedRouteC nft;
  ft.attach(h, f);
  nft.attach(h, f);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(32));
    const auto t = static_cast<NodeId>(rng.next_below(32));
    if (s == t) continue;
    EXPECT_EQ(candidate_ports(ft.route(ctx_of(s, t))),
              candidate_ports(nft.route(ctx_of(s, t))));
  }
}

TEST(RouteCTest, AlwaysTwoInterpretations) {
  Hypercube h(4);
  FaultSet f(h);
  RouteC ft;
  ft.attach(h, f);
  EXPECT_EQ(ft.route(ctx_of(0, 5)).steps, 2);
  f.fail_node(3);
  ft.reconfigure();
  EXPECT_EQ(ft.route(ctx_of(0, 5)).steps, 2);
}

TEST(RouteCTest, UnsafeStatesFollowDefinition) {
  Hypercube h(3);
  FaultSet f(h);
  RouteC ft;
  ft.attach(h, f);
  // Node 3 (011) has neighbours 2 (010), 1 (001), 7 (111). Fail 2 and 1:
  // node 3 has two faulty neighbours -> strongly unsafe.
  f.fail_node(2);
  f.fail_node(1);
  ft.reconfigure();
  EXPECT_EQ(ft.state(3), NodeState::StronglyUnsafe);
  EXPECT_EQ(ft.state(2), NodeState::Faulty);
  // Node 0 (000) has neighbours 1 (faulty), 2 (faulty), 4 -> also >= 2 hard.
  EXPECT_EQ(ft.state(0), NodeState::StronglyUnsafe);
  // Node 7 (111): neighbours 3 (sunsafe), 5 (safe?), 6 -> check ordinarily
  // unsafe propagation settled monotonically.
  EXPECT_GE(ft.num_unsafe(), 2);
  EXPECT_FALSE(ft.totally_unsafe());
}

TEST(RouteCTest, TotallyUnsafeDetection) {
  Hypercube h(2);  // 4 nodes in a ring
  FaultSet f(h);
  RouteC ft;
  ft.attach(h, f);
  f.fail_node(0);
  f.fail_node(3);  // opposite corners: both remaining nodes get 2 faulty nbrs
  ft.reconfigure();
  EXPECT_TRUE(ft.totally_unsafe());
}

TEST(RouteCTest, EscapeCdgAcyclicUnderRandomFaults) {
  Rng rng(444);
  for (int trial = 0; trial < 8; ++trial) {
    Hypercube h(4);
    FaultSet f(h);
    RouteC ft;
    ft.attach(h, f);
    inject_random_node_faults(f, trial % 4, rng);
    inject_random_link_faults(f, trial % 5, rng);
    ft.reconfigure();
    const CdgReport rep = check_escape_cdg(h, f, ft);
    EXPECT_TRUE(rep.acyclic) << "trial " << trial << ": " << rep.to_string();
  }
}

TEST(RouteCTest, Condition3WhileNotTotallyUnsafe) {
  Rng rng(888);
  Hypercube h(4);
  FaultSet f(h);
  RouteC ft;
  ft.attach(h, f);
  inject_random_node_faults(f, 2, rng);
  inject_random_link_faults(f, 3, rng);
  ft.reconfigure();
  ASSERT_FALSE(ft.totally_unsafe());
  for (NodeId s = 0; s < h.num_nodes(); ++s)
    for (NodeId t = 0; t < h.num_nodes(); ++t) {
      if (s == t || f.node_faulty(s) || f.node_faulty(t)) continue;
      if (!connected(f, s, t)) continue;
      EXPECT_FALSE(ft.route(ctx_of(s, t)).candidates.empty())
          << s << " -> " << t;
    }
}

// ------------------------------------------------------------------ factory
TEST(Factory, AllNamesConstruct) {
  for (const std::string& name : algorithm_names()) {
    EXPECT_NE(make_algorithm(name), nullptr) << name;
  }
  EXPECT_THROW(make_algorithm("bogus"), ContractViolation);
}

}  // namespace
}  // namespace flexrouter
