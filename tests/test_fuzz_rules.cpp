// Property/fuzz tests for the rule engine: randomly generated rule
// programs are executed both by the reference interpreter and through the
// compiled ARON tables; any divergence in selected rule, state effects,
// emitted events or RETURN values is a compiler bug. Also fuzzes the lexer/
// parser for crash-freedom on corrupted sources, and the compressed AOT
// tier against the VM on randomly generated classifier-eligible routing
// programs.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/event_manager.hpp"
#include "ruleengine/lexer.hpp"
#include "ruleengine/parser.hpp"
#include "topology/hypercube.hpp"

namespace flexrouter::rules {
namespace {

/// Generates small random rule programs from a seed. The shapes cover the
/// compiler's whole feature-classification matrix: symbolic direct axes,
/// small-int direct axes, comparison atoms over wide ints, membership
/// tests, parameter axes, quantified atoms over indexed inputs, and
/// conclusions with parallel assignments, counters, FORALL expansion,
/// events and RETURNs.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << "PROGRAM fuzz;\n";
    os << "CONSTANT dirs = 4\n";
    os << "CONSTANT modes = {alpha, beta, gamma"
       << (rng_.next_bool(0.5) ? ", delta" : "") << "}\n";
    // State: one symbolic register, two integer registers (one small/direct,
    // one wide/atom), one array.
    os << "VARIABLE mode IN modes\n";
    os << "VARIABLE small IN 0 TO 3\n";
    os << "VARIABLE wide IN 0 TO 63\n";
    os << "VARIABLE slot[dirs] IN 0 TO 7\n";
    // Inputs: one symbolic, one small int, one wide int, one indexed.
    os << "INPUT sig IN modes\n";
    os << "INPUT tiny IN 0 TO 2\n";
    os << "INPUT big IN 0 TO 99\n";
    os << "INPUT chan(dirs) IN 0 TO 1\n";
    os << "ON step(d IN dirs) RETURNS 0 TO 7\n";
    const int rules = 2 + static_cast<int>(rng_.next_below(5));
    for (int r = 0; r < rules; ++r) {
      os << "  IF " << premise() << " THEN " << conclusion() << ";\n";
    }
    os << "END step\n";
    return os.str();
  }

 private:
  std::string premise() {
    const int atoms = 1 + static_cast<int>(rng_.next_below(3));
    std::ostringstream os;
    for (int i = 0; i < atoms; ++i) {
      if (i) os << (rng_.next_bool(0.8) ? " AND " : " OR ");
      if (rng_.next_bool(0.3)) os << "NOT ";
      os << "(" << atom() << ")";
    }
    return os.str();
  }

  std::string atom() {
    switch (rng_.next_below(8)) {
      case 0: return std::string("mode = ") + sym();
      case 1: return std::string("sig = ") + sym();
      case 2: return "small " + cmp() + " " + std::to_string(rng_.next_below(4));
      case 3: return "wide " + cmp() + " " + std::to_string(rng_.next_below(64));
      case 4: return "big " + cmp() + " " + std::to_string(rng_.next_below(100));
      case 5: return "tiny = " + std::to_string(rng_.next_below(3));
      case 6: {
        std::ostringstream os;
        os << "sig IN {" << sym() << ", " << sym() << "}";
        return os.str();
      }
      default: {
        std::ostringstream os;
        os << (rng_.next_bool(0.5) ? "EXISTS" : "FORALL")
           << " i IN dirs: chan(i) = " << rng_.next_below(2);
        return os.str();
      }
    }
  }

  std::string conclusion() {
    const int cmds = 1 + static_cast<int>(rng_.next_below(3));
    std::ostringstream os;
    // Track assigned targets to avoid parallel-write conflicts.
    bool used_mode = false, used_small = false, used_wide = false,
         used_ret = false, used_slot = false;
    for (int i = 0; i < cmds; ++i) {
      if (i) os << ", ";
      switch (rng_.next_below(7)) {
        case 0:
          if (used_mode) { os << "!noop(0)"; break; }
          used_mode = true;
          os << "mode <- " << sym();
          break;
        case 1:
          if (used_small) { os << "!noop(1)"; break; }
          used_small = true;
          os << "small <- min(small + 1, 3)";
          break;
        case 2:
          if (used_wide) { os << "!noop(2)"; break; }
          used_wide = true;
          os << (rng_.next_bool(0.5) ? "wide <- min(wide + 1, 63)"
                                     : "wide <- 0");
          break;
        case 3:
          if (used_slot) { os << "!noop(3)"; break; }
          used_slot = true;
          os << "slot(d) <- " << rng_.next_below(8);
          break;
        case 4:
          if (used_slot) { os << "!noop(4)"; break; }
          used_slot = true;
          os << "FORALL i IN dirs: slot(i) <- " << rng_.next_below(8);
          break;
        case 5:
          if (used_ret) { os << "!noop(5)"; break; }
          used_ret = true;
          os << "RETURN(" << rng_.next_below(8) << ")";
          break;
        default:
          os << "!emit(d, " << rng_.next_below(16) << ")";
          break;
      }
    }
    return os.str();
  }

  std::string sym() {
    static const char* names[] = {"alpha", "beta", "gamma"};
    return names[rng_.next_below(3)];
  }

  std::string cmp() {
    static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    return ops[rng_.next_below(6)];
  }

  Rng rng_;
};

struct FuzzParam {
  std::uint64_t seed;
};

class RuleFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RuleFuzz, CompiledTableMatchesInterpreter) {
  ProgramGenerator gen(GetParam().seed);
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  Program prog;
  ASSERT_NO_THROW(prog = parse_program(source));

  EventManager direct(prog, ExecMode::Interpret);
  EventManager table(prog, ExecMode::Table);
  EventManager vm(prog, ExecMode::Vm);
  // Aot at the engine level must behave exactly as the VM (the decision
  // table lives a layer up, in RuleDrivenRouting).
  EventManager aot(prog, ExecMode::Aot);

  Rng rng(GetParam().seed ^ 0xf00dULL);
  std::int64_t sig_idx = 0, tiny = 0, big = 0;
  std::int64_t chan[4] = {0, 0, 0, 0};
  const SymId alpha = prog.syms.lookup("alpha");
  const InputFn inputs = [&](const std::string& name,
                             const std::vector<Value>& idx) -> Value {
    if (name == "sig") return Value::make_sym(alpha + static_cast<SymId>(sig_idx));
    if (name == "tiny") return Value::make_int(tiny);
    if (name == "big") return Value::make_int(big);
    if (name == "chan") return Value::make_int(chan[idx[0].as_int()]);
    throw std::logic_error("input " + name);
  };
  direct.set_input_provider(inputs);
  table.set_input_provider(inputs);
  vm.set_input_provider(inputs);
  aot.set_input_provider(inputs);

  for (int iter = 0; iter < 400; ++iter) {
    sig_idx = static_cast<std::int64_t>(rng.next_below(3));
    tiny = static_cast<std::int64_t>(rng.next_below(3));
    big = static_cast<std::int64_t>(rng.next_below(100));
    for (auto& c : chan) c = static_cast<std::int64_t>(rng.next_below(2));
    const auto d = Value::make_int(static_cast<std::int64_t>(rng.next_below(4)));

    const FireResult a = direct.fire("step", {d});
    const FireResult b = table.fire("step", {d});
    const FireResult c = vm.fire("step", {d});
    const FireResult e = aot.fire("step", {d});
    for (const FireResult* other : {&b, &c, &e}) {
      ASSERT_EQ(a.rule_index, other->rule_index) << "iteration " << iter;
      ASSERT_EQ(a.returned.has_value(), other->returned.has_value());
      if (a.returned) {
        ASSERT_TRUE(*a.returned == *other->returned);
      }
      ASSERT_EQ(a.events.size(), other->events.size());
      for (std::size_t e = 0; e < a.events.size(); ++e) {
        ASSERT_EQ(a.events[e].name, other->events[e].name);
        ASSERT_EQ(a.events[e].args.size(), other->events[e].args.size());
        for (std::size_t k = 0; k < a.events[e].args.size(); ++k)
          ASSERT_TRUE(a.events[e].args[k] == other->events[e].args[k]);
      }
    }
    ASSERT_TRUE(direct.env() == table.env()) << "iteration " << iter;
    ASSERT_TRUE(direct.env() == vm.env()) << "iteration " << iter;
    ASSERT_TRUE(direct.env() == aot.env()) << "iteration " << iter;
  }
}

std::vector<FuzzParam> fuzz_seeds() {
  std::vector<FuzzParam> out;
  for (std::uint64_t s = 1; s <= 40; ++s) out.push_back({s * 7919});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleFuzz, ::testing::ValuesIn(fuzz_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// ----------------------------------------- corpus-wide differential fuzzing
// Fire every rule base of the shipped NAFTA and ROUTE_C corpora in both
// execution modes under randomized inputs (memoized per firing so both
// engines observe identical signals) and require bit-identical behaviour.
class CorpusFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusFuzz, BothEnginesAgreeOnRandomInputs) {
  std::string source;
  if (std::string(GetParam()) == "nafta")
    source = flexrouter::rulebases::nafta_program_source(8, 8);
  else
    source = flexrouter::rulebases::route_c_program_source(4, 2);
  const Program prog = parse_program(source);

  EventManager direct(prog, ExecMode::Interpret);
  EventManager table(prog, ExecMode::Table);
  EventManager vm(prog, ExecMode::Vm);
  EventManager aot(prog, ExecMode::Aot);

  Rng rng(0xc0ffee);
  // Memoized random inputs: one value per (name, indices) per iteration.
  std::map<std::string, Value> memo;
  auto key = [&](const std::string& name, const std::vector<Value>& idx) {
    std::string k = name;
    for (const Value& v : idx) k += "/" + v.to_string(prog.syms);
    return k;
  };
  const InputFn inputs = [&](const std::string& name,
                             const std::vector<Value>& idx) {
    const std::string k = key(name, idx);
    const auto it = memo.find(k);
    if (it != memo.end()) return it->second;
    const InputDecl* decl = prog.find_input(name);
    FR_REQUIRE(decl != nullptr);
    const Value v =
        decl->domain.value_at(rng.next_below(decl->domain.cardinality()));
    memo.emplace(k, v);
    return v;
  };
  direct.set_input_provider(inputs);
  table.set_input_provider(inputs);
  vm.set_input_provider(inputs);
  aot.set_input_provider(inputs);

  for (int iter = 0; iter < 600; ++iter) {
    memo.clear();
    const RuleBase& rb = prog.rule_bases[rng.next_below(
        prog.rule_bases.size())];
    std::vector<Value> args;
    for (const Param& p : rb.params)
      args.push_back(p.domain.value_at(rng.next_below(p.domain.cardinality())));

    std::optional<FireResult> a, b, c, d;
    bool a_threw = false, b_threw = false, c_threw = false, d_threw = false;
    try {
      a = direct.fire(rb.name, args);
    } catch (const ContractViolation&) {
      a_threw = true;
    }
    try {
      b = table.fire(rb.name, args);
    } catch (const ContractViolation&) {
      b_threw = true;
    }
    try {
      c = vm.fire(rb.name, args);
    } catch (const ContractViolation&) {
      c_threw = true;
    }
    try {
      d = aot.fire(rb.name, args);
    } catch (const ContractViolation&) {
      d_threw = true;
    }
    ASSERT_EQ(a_threw, b_threw) << rb.name << " iteration " << iter;
    ASSERT_EQ(a_threw, c_threw) << rb.name << " iteration " << iter;
    ASSERT_EQ(a_threw, d_threw) << rb.name << " iteration " << iter;
    if (a_threw) {
      // A domain-range violation may have committed partial state in one
      // engine's env copy semantics; resynchronise all to keep comparing.
      direct.reset_state();
      table.reset_state();
      vm.reset_state();
      aot.reset_state();
      continue;
    }
    for (const auto* other : {&b, &c, &d}) {
      ASSERT_EQ(a->rule_index, (*other)->rule_index)
          << rb.name << " iter " << iter;
      ASSERT_EQ(a->returned.has_value(), (*other)->returned.has_value());
      if (a->returned) {
        ASSERT_TRUE(*a->returned == *(*other)->returned);
      }
      ASSERT_EQ(a->events.size(), (*other)->events.size());
    }
    // Process the generated event cascades in all engines (self-handled
    // events like update_state re-fire; unhandled ones drop) and require
    // the accumulated register state to stay identical.
    try {
      direct.drain();
      table.drain();
      vm.drain();
      aot.drain();
    } catch (const ContractViolation&) {
      direct.reset_state();
      table.reset_state();
      vm.reset_state();
      aot.reset_state();
      continue;
    }
    ASSERT_TRUE(direct.env() == table.env()) << rb.name << " iter " << iter;
    ASSERT_TRUE(direct.env() == vm.env()) << rb.name << " iter " << iter;
    ASSERT_TRUE(direct.env() == aot.env()) << rb.name << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusFuzz,
                         ::testing::Values("nafta", "route_c"));

// ------------------------------------------- compressed-tier routing fuzz
// Random e-cube-shaped decision programs: every node/dest read sits inside
// xor(node, dest) or a direct node-dest comparison, which is exactly the
// shape the XorFold classifier must accept. A budget below the full
// premise space then forces the compressed table; the fill's exhaustive
// validation plus an external premise-space walk require it bit-identical
// to the VM. The lane is gated on classifier applicability — a program the
// classifier (conservatively) rejects is skipped, not failed — but the
// generator's shapes should qualify essentially always.
class XorRouteGenerator {
 public:
  explicit XorRouteGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << "PROGRAM fuzzxor;\n"
       << "CONSTANT dim = " << kDim << "\n"
       << "CONSTANT maxnode = " << ((1 << kDim) - 1) << "\n"
       << "INPUT node IN 0 TO maxnode\n"
       << "INPUT dest IN 0 TO maxnode\n"
       << "INPUT in_port IN 0 TO dim\n"
       << "INPUT in_vc IN 0 TO 1\n"
       << "ON route\n";
    const int rules = 2 + static_cast<int>(rng_.next_below(5));
    for (int r = 0; r < rules; ++r)
      os << "  IF " << premise() << " THEN " << conclusion() << ";\n";
    // Catch-all that reads no id input raw (a bare `node >= 0` would
    // rightly block the classifier).
    os << "  IF in_port >= 0 THEN !cand(dim, 0, 0);\n"
       << "END route;\n";
    return os.str();
  }

  static constexpr int kDim = 3;

 private:
  std::string premise() {
    const int atoms = 1 + static_cast<int>(rng_.next_below(3));
    std::ostringstream os;
    for (int i = 0; i < atoms; ++i) {
      if (i) os << (rng_.next_bool(0.8) ? " AND " : " OR ");
      switch (rng_.next_below(4)) {
        case 0:
          os << "bit(xor(node, dest), " << rng_.next_below(kDim)
             << ") = " << rng_.next_below(2);
          break;
        case 1:
          os << "in_vc = " << rng_.next_below(2);
          break;
        case 2:
          os << "in_port " << cmp() << " " << rng_.next_below(kDim + 1);
          break;
        default:
          os << "node " << (rng_.next_bool(0.5) ? "=" : "<>") << " dest";
          break;
      }
    }
    return os.str();
  }

  std::string conclusion() {
    const int cands = 1 + static_cast<int>(rng_.next_below(3));
    std::ostringstream os;
    for (int i = 0; i < cands; ++i) {
      if (i) os << ", ";
      os << "!cand(" << rng_.next_below(kDim + 1) << ", "
         << rng_.next_below(2) << ", " << rng_.next_below(4) << ")";
    }
    return os.str();
  }

  std::string cmp() {
    static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    return ops[rng_.next_below(6)];
  }

  Rng rng_;
};

TEST(CompressedFuzz, XorFoldProgramsMatchVmOverFullPremiseSpace) {
  constexpr int kDim = XorRouteGenerator::kDim;
  flexrouter::Hypercube topo(kDim);
  // Full premise space: N * N * (degree + 2) * (vcs + 1).
  const std::uint64_t full = std::uint64_t{1} << (2 * kDim);
  const std::uint64_t full_entries =
      full * static_cast<std::uint64_t>(kDim + 2) * 3;
  int compressed = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    XorRouteGenerator gen(seed * 52361);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);
    flexrouter::FaultSet f(topo);
    flexrouter::RuleDrivenRouting vm(source, 2, ExecMode::Vm);
    flexrouter::RuleDrivenRouting aot(source, 2, ExecMode::Aot);
    aot.set_aot_budget(full_entries / 2);
    vm.attach(topo, f);
    aot.attach(topo, f);
    const auto ti = aot.aot_tier_info();
    if (ti.classifier == DestClassifier::None) continue;  // gated lane
    // An eligible program must land on the compressed table, not demote:
    // at this size the fill validates every premise point exhaustively, so
    // a demotion here means the classifier accepted a shape it shouldn't.
    ASSERT_EQ(ti.tier, flexrouter::RuleDrivenRouting::AotTier::Compressed)
        << ti.reason;
    ++compressed;
    for (flexrouter::NodeId n = 0; n < topo.num_nodes(); ++n) {
      for (flexrouter::NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
        for (flexrouter::PortId p = -1; p <= topo.degree(); ++p) {
          for (flexrouter::VcId v = -1; v < 2; ++v) {
            flexrouter::RouteContext ctx;
            ctx.node = n;
            ctx.dest = dst;
            ctx.src = n;
            ctx.in_port = p;
            ctx.in_vc = v;
            bool vm_threw = false, aot_threw = false;
            flexrouter::RouteDecision want, got;
            try {
              want = vm.route(ctx);
            } catch (const ContractViolation&) {
              vm_threw = true;
            } catch (const EvalError&) {
              vm_threw = true;
            }
            try {
              got = aot.route(ctx);
            } catch (const ContractViolation&) {
              aot_threw = true;
            } catch (const EvalError&) {
              aot_threw = true;
            }
            ASSERT_EQ(vm_threw, aot_threw)
                << "node=" << n << " dest=" << dst << " p=" << p
                << " v=" << v;
            if (vm_threw) continue;
            ASSERT_EQ(want.steps, got.steps)
                << "node=" << n << " dest=" << dst << " p=" << p
                << " v=" << v;
            ASSERT_EQ(want.candidates.size(), got.candidates.size());
            for (std::size_t i = 0; i < want.candidates.size(); ++i)
              ASSERT_TRUE(want.candidates[i] == got.candidates[i])
                  << "cand " << i << " node=" << n << " dest=" << dst;
          }
        }
      }
    }
  }
  EXPECT_GT(compressed, 15);
}

// ---------------------------------------------------------- parser fuzzing
TEST(ParserFuzz, CorruptedSourcesNeverCrash) {
  ProgramGenerator gen(101);
  const std::string base = gen.generate();
  Rng rng(2027);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = base;
    // Apply 1-4 random mutations: delete, duplicate or perturb characters.
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const auto pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0: mutated.erase(pos, 1); break;
        case 1: mutated.insert(pos, 1, mutated[pos]); break;
        default:
          mutated[pos] = static_cast<char>(' ' + rng.next_below(94));
          break;
      }
    }
    try {
      const Program p = parse_program(mutated);
      ++parsed;  // still valid — fine
    } catch (const ParseError&) {
      ++rejected;  // clean rejection — fine
    } catch (const ContractViolation&) {
      ++rejected;  // domain-level rejection — fine
    }
    // Anything else (segfault, std::bad_alloc, uncaught logic_error)
    // fails the test by crashing or escaping.
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed + rejected, 0);
}

TEST(ParserFuzz, RandomTokenSoup) {
  static const char* tokens[] = {
      "IF",  "THEN", "ON",    "END",  "CONSTANT", "VARIABLE", "INPUT",
      "IN",  "TO",   "AND",   "OR",   "NOT",      "EXISTS",   "FORALL",
      "<-",  "=",    "<>",    "<",    ">",        "(",        ")",
      "{",   "}",    ",",     ";",    ":",        "!",        "RETURN",
      "x",   "y",    "dirs",  "42",   "7",        "foo",      "MOD",
      "min", "max",  "UNION", "abs"};
  Rng rng(31337);
  for (int iter = 0; iter < 300; ++iter) {
    std::ostringstream os;
    const int len = 1 + static_cast<int>(rng.next_below(60));
    for (int i = 0; i < len; ++i)
      os << tokens[rng.next_below(std::size(tokens))] << " ";
    try {
      parse_program(os.str());
    } catch (const ParseError&) {
    } catch (const ContractViolation&) {
    }
  }
  SUCCEED();  // reaching here without a crash is the property
}

}  // namespace
}  // namespace flexrouter::rules
