// Tests for torus dimension-order routing with dateline VCs.
#include <gtest/gtest.h>

#include "routing/cdg.hpp"
#include "routing/dor_torus.hpp"
#include "sim/simulator.hpp"

namespace flexrouter {
namespace {

RouteContext ctx_of(const Torus& t, NodeId node, NodeId dest,
                    PortId in_port = kInvalidPort, VcId in_vc = 0) {
  RouteContext ctx;
  ctx.node = node;
  ctx.dest = dest;
  ctx.src = node;
  ctx.in_port = in_port < 0 ? t.degree() : in_port;
  ctx.in_vc = in_vc;
  return ctx;
}

TEST(DorTorus, TakesShorterWayAround) {
  Torus t = Torus::two_d(8, 8);
  FaultSet f(t);
  DimensionOrderTorus dor;
  dor.attach(t, f);
  // From (0,0) to (6,0): backwards (2 hops) beats forwards (6 hops).
  auto d = dor.route(ctx_of(t, t.node_at({0, 0}), t.node_at({6, 0})));
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].port, 1);  // -x
  // From (0,0) to (3,0): forwards.
  d = dor.route(ctx_of(t, t.node_at({0, 0}), t.node_at({3, 0})));
  EXPECT_EQ(d.candidates[0].port, 0);  // +x
}

TEST(DorTorus, DatelineVcDiscipline) {
  Torus t = Torus::two_d(8, 8);
  FaultSet f(t);
  DimensionOrderTorus dor;
  dor.attach(t, f);
  // Crossing hop itself uses VC 1: node (7,0) hopping +x wraps to (0,0).
  auto d = dor.route(ctx_of(t, t.node_at({7, 0}), t.node_at({1, 0})));
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].port, 0);
  EXPECT_EQ(d.candidates[0].vc, 1);
  // After the wrap (arrived on VC 1 in the same dimension), stay on VC 1.
  d = dor.route(ctx_of(t, t.node_at({0, 0}), t.node_at({1, 0}),
                       /*in_port=*/1, /*in_vc=*/1));
  EXPECT_EQ(d.candidates[0].vc, 1);
  // Fresh packet not near the dateline uses VC 0.
  d = dor.route(ctx_of(t, t.node_at({2, 0}), t.node_at({4, 0})));
  EXPECT_EQ(d.candidates[0].vc, 0);
  // A new dimension resets to VC 0: arrival on an x-port with VC 1, now
  // correcting y without a wrap.
  d = dor.route(ctx_of(t, t.node_at({3, 3}), t.node_at({3, 5}),
                       /*in_port=*/1, /*in_vc=*/1));
  EXPECT_EQ(d.candidates[0].port, 2);  // +y
  EXPECT_EQ(d.candidates[0].vc, 0);
}

TEST(DorTorus, CdgAcyclic) {
  for (const int radix : {4, 5}) {  // even and odd rings
    Torus t = Torus::two_d(radix, radix);
    FaultSet f(t);
    DimensionOrderTorus dor;
    dor.attach(t, f);
    const CdgReport rep = check_full_cdg(t, f, dor);
    EXPECT_TRUE(rep.acyclic) << radix << "x" << radix << ": "
                             << rep.to_string();
  }
}

TEST(DorTorus, DeliversMinimallyInTheSimulator) {
  Torus t = Torus::two_d(6, 6);
  DimensionOrderTorus dor;
  Network net(t, dor);
  UniformTraffic traffic(t);
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
}

TEST(DorTorus, TornadoTrafficStressesWrapLinks) {
  // Tornado sends everything half-way around: every packet crosses rings,
  // exercising both VC classes heavily. Still deadlock-free and minimal.
  Torus t = Torus::two_d(8, 8);
  DimensionOrderTorus dor;
  Network net(t, dor);
  TornadoTraffic traffic(t);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 800;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
}

}  // namespace
}  // namespace flexrouter
