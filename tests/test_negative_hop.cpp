// Tests for the negative-hop scheme [BoC96]: colouring, VC-class algebra,
// the paper's claim that faults require no deadlock-avoidance changes
// (CDG stays acyclic with the SAME class structure), delivery, and the
// diameter-driven VC budget.
#include <gtest/gtest.h>

#include "routing/cdg.hpp"
#include "routing/negative_hop.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

namespace flexrouter {
namespace {

TEST(NegativeHop, TwoColouringIsProper) {
  Mesh m = Mesh::two_d(6, 5);
  FaultSet f(m);
  NegativeHop nh(NegativeHop::vcs_needed_for(m));
  nh.attach(m, f);
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    for (PortId p = 0; p < m.degree(); ++p) {
      const NodeId v = m.neighbor(n, p);
      if (v == kInvalidNode) continue;
      EXPECT_NE(nh.color(n), nh.color(v));
    }
  }
}

TEST(NegativeHop, OddTorusIsRejected) {
  Torus t = Torus::two_d(3, 4);  // odd cycle in x: not bipartite
  FaultSet f(t);
  NegativeHop nh(10);
  EXPECT_THROW(nh.attach(t, f), ContractViolation);
}

TEST(NegativeHop, NegativeHopCountAlgebra) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  NegativeHop nh(NegativeHop::vcs_needed_for(m));
  nh.attach(m, f);
  NodeId black = kInvalidNode, white = kInvalidNode;
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    if (nh.color(n) == 1) black = n;
    else white = n;
  }
  ASSERT_NE(black, kInvalidNode);
  ASSERT_NE(white, kInvalidNode);
  // Even hop counts: k/2 negatives regardless of where the walk sits.
  EXPECT_EQ(nh.negative_hops(black, 0), 0);
  EXPECT_EQ(nh.negative_hops(white, 0), 0);
  EXPECT_EQ(nh.negative_hops(black, 2), 1);
  EXPECT_EQ(nh.negative_hops(white, 4), 2);
  // Odd hop counts: landing on colour 0 means the odd hop was negative.
  EXPECT_EQ(nh.negative_hops(white, 1), 1);
  EXPECT_EQ(nh.negative_hops(black, 1), 0);
  EXPECT_EQ(nh.negative_hops(white, 3), 2);
  EXPECT_EQ(nh.negative_hops(black, 3), 1);
  // Exhaustive consistency with an explicit walk simulation.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    NodeId at = static_cast<NodeId>(rng.next_below(36));
    int negatives = 0;
    for (int k = 0; k < 12; ++k) {
      EXPECT_EQ(nh.negative_hops(at, k), negatives)
          << "trial " << trial << " hop " << k;
      // Take any usable hop.
      const auto ports = f.usable_ports(at);
      const PortId p = ports[rng.next_below(ports.size())];
      if (nh.color(at) == 1) ++negatives;
      at = m.neighbor(at, p);
    }
  }
}

TEST(NegativeHop, VcClassNeverDecreasesAlongWalks) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  NegativeHop nh(NegativeHop::vcs_needed_for(m));
  nh.attach(m, f);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = static_cast<NodeId>(rng.next_below(36));
    auto t = static_cast<NodeId>(rng.next_below(36));
    if (t == s) continue;
    NodeId at = s;
    int path_len = 0;
    VcId last_vc = -1;
    while (at != t) {
      RouteContext ctx;
      ctx.node = at;
      ctx.dest = t;
      ctx.src = s;
      ctx.path_len = path_len;
      ctx.in_port = path_len == 0 ? m.degree() : 0;
      ctx.in_vc = std::max<VcId>(last_vc, 0);
      const auto d = nh.route(ctx);
      ASSERT_FALSE(d.candidates.empty());
      const auto& c = d.candidates[rng.next_below(d.candidates.size())];
      EXPECT_GE(c.vc, last_vc);  // classes are monotone
      last_vc = c.vc;
      at = m.neighbor(at, c.port);
      ++path_len;
    }
    EXPECT_EQ(path_len, m.distance(s, t));  // distance-vector is minimal
  }
}

TEST(NegativeHop, CdgAcyclicFaultFreeAndFaulted) {
  Rng rng(77);
  for (int faults = 0; faults <= 8; faults += 4) {
    Mesh m = Mesh::two_d(5, 5);
    FaultSet f(m);
    NegativeHop nh(NegativeHop::vcs_needed_for(m));
    nh.attach(m, f);
    inject_random_link_faults(f, faults, rng);
    nh.reconfigure();
    const CdgReport rep = check_full_cdg(m, f, nh);
    EXPECT_TRUE(rep.acyclic) << faults << " faults: " << rep.to_string();
  }
}

TEST(NegativeHop, HypercubeSupport) {
  Hypercube h(4);
  FaultSet f(h);
  NegativeHop nh(NegativeHop::vcs_needed_for(h));
  nh.attach(h, f);
  const CdgReport rep = check_full_cdg(h, f, nh);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
}

TEST(NegativeHop, InsufficientVcBudgetIsRejected) {
  Mesh m = Mesh::two_d(8, 8);  // diameter 14 -> needs ~8 classes minimum
  FaultSet f(m);
  NegativeHop nh(3);
  EXPECT_THROW(nh.attach(m, f), ContractViolation);
}

TEST(NegativeHop, ReconfigureTouchesOnlyDistances) {
  // The paper's point: faults change the routing information, never the
  // deadlock-avoidance structure (colours stay fixed).
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  NegativeHop nh(NegativeHop::vcs_needed_for(m));
  nh.attach(m, f);
  std::vector<int> colors_before;
  for (NodeId n = 0; n < m.num_nodes(); ++n)
    colors_before.push_back(nh.color(n));
  Rng rng(9);
  inject_random_link_faults(f, 6, rng);
  const int exchanges = nh.reconfigure();
  EXPECT_GT(exchanges, 0);
  for (NodeId n = 0; n < m.num_nodes(); ++n)
    EXPECT_EQ(nh.color(n), colors_before[static_cast<std::size_t>(n)]);
  EXPECT_GE(nh.faulted_diameter(), m.diameter());
}

TEST(NegativeHop, DeliversUnderFaultsInTheSimulator) {
  Mesh m = Mesh::two_d(6, 6);
  NegativeHop nh(NegativeHop::vcs_needed_for(m));
  Network net(m, nh);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  Rng rng(13);
  net.apply_faults([&](FaultSet& f) {
    inject_random_link_faults(f, 6, rng);
    inject_random_node_faults(f, 1, rng);
  });
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  // Distance-vector routing: paths are minimal in the faulted graph, so
  // hops may exceed the fault-free minimum but packets never misroute.
  EXPECT_GE(r.min_hops_ratio, 1.0);
  EXPECT_EQ(r.misrouted_fraction, 0.0);
}

}  // namespace
}  // namespace flexrouter
