// Unit tests for topologies, the fault model, and graph algorithms.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "topology/fault_model.hpp"
#include "topology/graph_algo.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace flexrouter {
namespace {

// --------------------------------------------------------------------- mesh
TEST(Mesh, CoordinateRoundTrip) {
  Mesh m = Mesh::two_d(5, 3);
  EXPECT_EQ(m.num_nodes(), 15);
  EXPECT_EQ(m.degree(), 4);
  for (int x = 0; x < 5; ++x)
    for (int y = 0; y < 3; ++y) {
      const NodeId n = m.at(x, y);
      EXPECT_EQ(m.x_of(n), x);
      EXPECT_EQ(m.y_of(n), y);
    }
}

TEST(Mesh, CompassNeighbors) {
  Mesh m = Mesh::two_d(4, 4);
  const NodeId n = m.at(1, 1);
  EXPECT_EQ(m.neighbor(n, port_of(Compass::East)), m.at(2, 1));
  EXPECT_EQ(m.neighbor(n, port_of(Compass::West)), m.at(0, 1));
  EXPECT_EQ(m.neighbor(n, port_of(Compass::North)), m.at(1, 2));
  EXPECT_EQ(m.neighbor(n, port_of(Compass::South)), m.at(1, 0));
}

TEST(Mesh, BordersAreUnconnected) {
  Mesh m = Mesh::two_d(4, 4);
  EXPECT_EQ(m.neighbor(m.at(0, 0), port_of(Compass::West)), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.at(0, 0), port_of(Compass::South)), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.at(3, 3), port_of(Compass::East)), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.at(3, 3), port_of(Compass::North)), kInvalidNode);
}

TEST(Mesh, ReverseLinksAreConsistent) {
  Mesh m({4, 3, 2});
  for (NodeId n = 0; n < m.num_nodes(); ++n)
    for (PortId p = 0; p < m.degree(); ++p) {
      const NodeId other = m.neighbor(n, p);
      if (other == kInvalidNode) continue;
      const PortId back = m.reverse_port(n, p);
      EXPECT_EQ(m.neighbor(other, back), n);
    }
}

TEST(Mesh, DistanceIsManhattan) {
  Mesh m = Mesh::two_d(8, 8);
  EXPECT_EQ(m.distance(m.at(0, 0), m.at(7, 7)), 14);
  EXPECT_EQ(m.distance(m.at(3, 4), m.at(3, 4)), 0);
  EXPECT_EQ(m.distance(m.at(2, 5), m.at(6, 1)), 8);
}

TEST(Mesh, LinkCount2D) {
  Mesh m = Mesh::two_d(4, 5);
  // 2D mesh: (w-1)*h horizontal + w*(h-1) vertical.
  EXPECT_EQ(m.num_undirected_links(), static_cast<std::size_t>(3 * 5 + 4 * 4));
  EXPECT_EQ(m.directed_links().size(), 2 * m.num_undirected_links());
}

TEST(Mesh, DiameterAndName) {
  Mesh m = Mesh::two_d(4, 4);
  EXPECT_EQ(m.diameter(), 6);
  EXPECT_EQ(m.name(), "mesh(4x4)");
}

TEST(Mesh, RejectsDegenerateRadix) {
  EXPECT_THROW(Mesh({1, 4}), ContractViolation);
  EXPECT_THROW(Mesh({}), ContractViolation);
}

// -------------------------------------------------------------------- torus
TEST(Torus, WrapAroundNeighbors) {
  Torus t = Torus::two_d(4, 4);
  EXPECT_EQ(t.neighbor(t.node_at({3, 2}), 0), t.node_at({0, 2}));  // +x wraps
  EXPECT_EQ(t.neighbor(t.node_at({0, 2}), 1), t.node_at({3, 2}));  // -x wraps
  EXPECT_EQ(t.neighbor(t.node_at({1, 3}), 2), t.node_at({1, 0}));  // +y wraps
}

TEST(Torus, DistanceUsesWrap) {
  Torus t = Torus::two_d(8, 8);
  EXPECT_EQ(t.distance(t.node_at({0, 0}), t.node_at({7, 7})), 2);
  EXPECT_EQ(t.distance(t.node_at({0, 0}), t.node_at({4, 4})), 8);
}

TEST(Torus, ReverseLinksAreConsistent) {
  Torus t = Torus::two_d(3, 5);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    for (PortId p = 0; p < t.degree(); ++p) {
      const NodeId other = t.neighbor(n, p);
      ASSERT_NE(other, kInvalidNode);  // torus has no unconnected ports
      EXPECT_EQ(t.neighbor(other, t.reverse_port(n, p)), n);
    }
}

TEST(Torus, EveryNodeHasFullDegree) {
  Torus t = Torus::two_d(4, 4);
  EXPECT_EQ(t.num_undirected_links(), static_cast<std::size_t>(2 * 16));
}

// ---------------------------------------------------------------- hypercube
TEST(Hypercube, NeighborsFlipOneBit) {
  Hypercube h(4);
  EXPECT_EQ(h.num_nodes(), 16);
  EXPECT_EQ(h.degree(), 4);
  EXPECT_EQ(h.neighbor(0b0101, 1), 0b0111);
  EXPECT_EQ(h.neighbor(0b0101, 0), 0b0100);
  EXPECT_EQ(h.reverse_port(3, 2), 2);
}

TEST(Hypercube, DistanceIsHamming) {
  Hypercube h(6);
  EXPECT_EQ(h.distance(0, 63), 6);
  EXPECT_EQ(h.distance(0b101010, 0b010101), 6);
  EXPECT_EQ(h.distance(5, 5), 0);
  EXPECT_EQ(h.diameter(), 6);
}

TEST(Hypercube, DifferingDims) {
  EXPECT_EQ(Hypercube::differing_dims(0b1100, 0b1010), 0b0110u);
}

// --------------------------------------------------------------- fault model
TEST(FaultSet, LinksFailBidirectionally) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  const NodeId a = m.at(1, 1);
  const PortId p = port_of(Compass::East);
  EXPECT_TRUE(f.link_usable(a, p));
  f.fail_link(a, p);
  EXPECT_FALSE(f.link_usable(a, p));
  // The reverse direction fails together (assumption i).
  const NodeId b = m.at(2, 1);
  EXPECT_FALSE(f.link_usable(b, port_of(Compass::West)));
  EXPECT_EQ(f.num_link_faults(), 1);
}

TEST(FaultSet, FailLinkIsIdempotentFromEitherEnd) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  f.fail_link(m.at(1, 1), port_of(Compass::East));
  f.fail_link(m.at(2, 1), port_of(Compass::West));  // same physical link
  EXPECT_EQ(f.num_link_faults(), 1);
}

TEST(FaultSet, NodeFaultDisablesAllItsLinks) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  const NodeId center = m.at(1, 1);
  f.fail_node(center);
  EXPECT_TRUE(f.node_faulty(center));
  for (PortId p = 0; p < m.degree(); ++p) {
    EXPECT_FALSE(f.link_usable(center, p));
  }
  EXPECT_FALSE(f.link_usable(m.at(0, 1), port_of(Compass::East)));
  // But the link hardware itself is not marked faulty.
  EXPECT_FALSE(f.link_marked_faulty(m.at(0, 1), port_of(Compass::East)));
}

TEST(FaultSet, RepairRestoresUsability) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  f.fail_link(m.at(0, 0), port_of(Compass::East));
  f.fail_node(m.at(3, 3));
  f.repair_link(m.at(0, 0), port_of(Compass::East));
  f.repair_node(m.at(3, 3));
  EXPECT_TRUE(f.fault_free());
  EXPECT_TRUE(f.link_usable(m.at(0, 0), port_of(Compass::East)));
}

TEST(FaultSet, EpochAdvancesOnEveryChange) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  const auto e0 = f.epoch();
  f.fail_link(m.at(0, 0), port_of(Compass::East));
  const auto e1 = f.epoch();
  EXPECT_GT(e1, e0);
  f.fail_link(m.at(0, 0), port_of(Compass::East));  // idempotent: no change
  EXPECT_EQ(f.epoch(), e1);
  f.fail_node(m.at(2, 2));
  EXPECT_GT(f.epoch(), e1);
}

TEST(FaultSet, UsableDegreeAndPorts) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  EXPECT_EQ(f.usable_degree(m.at(0, 0)), 2);  // corner
  EXPECT_EQ(f.usable_degree(m.at(1, 1)), 4);  // interior
  f.fail_link(m.at(1, 1), port_of(Compass::North));
  EXPECT_EQ(f.usable_degree(m.at(1, 1)), 3);
  const auto ports = f.usable_ports(m.at(1, 1));
  EXPECT_EQ(ports.size(), 3u);
  EXPECT_TRUE(std::find(ports.begin(), ports.end(),
                        port_of(Compass::North)) == ports.end());
}

TEST(FaultSet, FaultOnUnconnectedPortIsContractViolation) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  EXPECT_THROW(f.fail_link(m.at(0, 0), port_of(Compass::West)),
               ContractViolation);
}

TEST(FaultSet, FaultyInventories) {
  Hypercube h(3);
  FaultSet f(h);
  f.fail_node(5);
  f.fail_link(0, 0);
  EXPECT_EQ(f.faulty_nodes(), std::vector<NodeId>{5});
  const auto links = f.faulty_links();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].node, 0);
  EXPECT_EQ(links[0].port, 0);
}

// --------------------------------------------------------------- graph algos
TEST(GraphAlgo, BfsMatchesManhattanOnFaultFreeMesh) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  const auto dist = bfs_distances(f, m.at(2, 3));
  for (NodeId n = 0; n < m.num_nodes(); ++n)
    EXPECT_EQ(dist[static_cast<std::size_t>(n)], m.distance(m.at(2, 3), n));
}

TEST(GraphAlgo, FaultsLengthenPaths) {
  Mesh m = Mesh::two_d(3, 3);
  FaultSet f(m);
  // Cut the direct link between (0,0) and (1,0).
  f.fail_link(m.at(0, 0), port_of(Compass::East));
  const auto dist = bfs_distances(f, m.at(0, 0));
  EXPECT_EQ(dist[static_cast<std::size_t>(m.at(1, 0))], 3);
}

TEST(GraphAlgo, DisconnectionYieldsMinusOne) {
  Mesh m = Mesh::two_d(2, 2);
  FaultSet f(m);
  // Isolate node (1,1) by failing both its links.
  f.fail_link(m.at(1, 1), port_of(Compass::West));
  f.fail_link(m.at(1, 1), port_of(Compass::South));
  const auto dist = bfs_distances(f, m.at(0, 0));
  EXPECT_EQ(dist[static_cast<std::size_t>(m.at(1, 1))], -1);
  EXPECT_FALSE(connected(f, m.at(0, 0), m.at(1, 1)));
  EXPECT_FALSE(all_healthy_connected(f));
}

TEST(GraphAlgo, ComponentsAfterPartition) {
  Mesh m = Mesh::two_d(4, 2);
  FaultSet f(m);
  // Sever the two links between columns 1 and 2.
  f.fail_link(m.at(1, 0), port_of(Compass::East));
  f.fail_link(m.at(1, 1), port_of(Compass::East));
  const auto comp = components(f);
  EXPECT_EQ(comp[static_cast<std::size_t>(m.at(0, 0))],
            comp[static_cast<std::size_t>(m.at(1, 1))]);
  EXPECT_EQ(comp[static_cast<std::size_t>(m.at(2, 0))],
            comp[static_cast<std::size_t>(m.at(3, 1))]);
  EXPECT_NE(comp[static_cast<std::size_t>(m.at(0, 0))],
            comp[static_cast<std::size_t>(m.at(2, 0))]);
}

TEST(GraphAlgo, FaultyNodesGetComponentMinusOne) {
  Mesh m = Mesh::two_d(3, 3);
  FaultSet f(m);
  f.fail_node(m.at(1, 1));
  const auto comp = components(f);
  EXPECT_EQ(comp[static_cast<std::size_t>(m.at(1, 1))], -1);
  EXPECT_TRUE(all_healthy_connected(f));  // ring around the hole
}

TEST(GraphAlgo, SpanningTreeProperties) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  const NodeId root = m.at(2, 2);
  const auto tree = bfs_spanning_tree(f, root);
  EXPECT_EQ(tree.root, root);
  EXPECT_EQ(tree.level[static_cast<std::size_t>(root)], 0);
  EXPECT_EQ(tree.order[static_cast<std::size_t>(root)], 0);
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    if (n == root) continue;
    ASSERT_TRUE(tree.reaches(n));
    const NodeId parent = tree.parent[static_cast<std::size_t>(n)];
    ASSERT_NE(parent, kInvalidNode);
    // Parent is one level up and adjacent via the recorded port.
    EXPECT_EQ(tree.level[static_cast<std::size_t>(n)],
              tree.level[static_cast<std::size_t>(parent)] + 1);
    EXPECT_EQ(m.neighbor(n, tree.parent_port[static_cast<std::size_t>(n)]),
              parent);
    // BFS level equals true distance from the root.
    EXPECT_EQ(tree.level[static_cast<std::size_t>(n)], m.distance(root, n));
    // Parent precedes child in visit order (the up*/down* invariant).
    EXPECT_LT(tree.order[static_cast<std::size_t>(parent)],
              tree.order[static_cast<std::size_t>(n)]);
  }
}

TEST(GraphAlgo, SpanningTreeSkipsUnreachable) {
  Mesh m = Mesh::two_d(2, 2);
  FaultSet f(m);
  f.fail_link(m.at(1, 1), port_of(Compass::West));
  f.fail_link(m.at(1, 1), port_of(Compass::South));
  const auto tree = bfs_spanning_tree(f, m.at(0, 0));
  EXPECT_FALSE(tree.reaches(m.at(1, 1)));
  EXPECT_EQ(tree.parent[static_cast<std::size_t>(m.at(1, 1))], kInvalidNode);
}

TEST(GraphAlgo, ChooseTreeRootPrefersHighDegree) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  // Interior nodes have degree 4; the first interior node by id is (1,1).
  EXPECT_EQ(choose_tree_root(f), m.at(1, 1));
  // Make a node faulty: cannot be root.
  f.fail_node(m.at(1, 1));
  EXPECT_NE(choose_tree_root(f), m.at(1, 1));
}

TEST(GraphAlgo, AllPairsAgreesWithSingleSource) {
  Hypercube h(3);
  FaultSet f(h);
  f.fail_link(0, 0);
  const auto all = all_pairs_distances(f);
  for (NodeId s = 0; s < h.num_nodes(); ++s) {
    const auto single = bfs_distances(f, s);
    EXPECT_EQ(all[static_cast<std::size_t>(s)], single);
  }
}

// Property: random faults on a mesh — BFS distance never shrinks below the
// fault-free distance, and connectivity matches component equality.
TEST(GraphAlgo, RandomFaultDistanceMonotonicity) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Mesh m = Mesh::two_d(6, 6);
    FaultSet f(m);
    const auto links = m.undirected_links();
    for (int k = 0; k < 8; ++k) {
      const auto& l = links[rng.next_below(links.size())];
      f.fail_link(l.node, l.port);
    }
    const auto comp = components(f);
    const NodeId src = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(m.num_nodes())));
    const auto dist = bfs_distances(f, src);
    for (NodeId n = 0; n < m.num_nodes(); ++n) {
      const bool same_comp =
          comp[static_cast<std::size_t>(src)] ==
          comp[static_cast<std::size_t>(n)];
      EXPECT_EQ(dist[static_cast<std::size_t>(n)] >= 0, same_comp);
      if (dist[static_cast<std::size_t>(n)] >= 0) {
        EXPECT_GE(dist[static_cast<std::size_t>(n)], m.distance(src, n));
      }
    }
  }
}

}  // namespace
}  // namespace flexrouter
