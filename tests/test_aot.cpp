// AOT decision-table tests: the pre-resolved table must be indistinguishable
// from the tiers it accelerates, and the live hot-swap machinery must be
// invisible when it changes nothing.
//
//  * Three-way lockstep: interpreter, VM and AOT walk the complete premise
//    space (every (node, dest, in_port, in_vc) the table is built over) of
//    every shipped runnable rule base, fault-free and after random link
//    kills. Resolved points must agree on candidates AND decision cost;
//    points where one tier throws a contract violation (dynamically
//    unpresentable premise points — the fill marks them unreachable) must
//    throw in all three.
//  * The same lockstep over randomly generated routing programs (the
//    premise/conclusion shapes the soundness analysis classifies).
//  * Hot-swap identity: swapping a rule base for ITSELF at any cycle leaves
//    the SimResult bit-identical to the unswapped run, at 1/2/4/8 sweep
//    threads and 1/2/4 spatial shards.
//  * Quiescent swap accounting: a real program change drains, commits, and
//    loses nothing.
//  * Tier ladder: a narrowed budget forces the compressed (classifier) or
//    lazy (per-node sub-table) tier, which must stay in lockstep with the
//    direct table and the VM over the full premise space; a second identical
//    pass over the lazy tier's working set allocates nothing.
//  * Rolling swap commits: per-shard commits produce bit-identical
//    SimResults at 1/2/4/8 execution shards and gate strictly fewer
//    node-cycles than a quiescent drain of the same swap.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <sstream>

#include "common/alloc_counter.hpp"
#include "common/rng.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

using rules::ExecMode;

struct CorpusCase {
  const char* name;
  std::string source;
  int vcs;
  VcId escape_vc;
  std::unique_ptr<Topology> topo;
};

std::vector<CorpusCase> corpus_cases() {
  std::vector<CorpusCase> cases;
  cases.push_back({"nara_8x8", rulebases::nara_route_source(8, 8), 2, -1,
                   std::make_unique<Mesh>(std::vector<int>{8, 8})});
  cases.push_back({"ft_mesh_8x8", rulebases::ft_mesh_route_source(8, 8), 3, 2,
                   std::make_unique<Mesh>(std::vector<int>{8, 8})});
  cases.push_back({"ecube_5cube", rulebases::ecube_route_source(5), 1, -1,
                   std::make_unique<Hypercube>(5)});
  cases.push_back({"ecube_msb_5cube", rulebases::ecube_msb_route_source(5), 1,
                   -1, std::make_unique<Hypercube>(5)});
  return cases;
}

/// One tier's answer at a premise point: a decision, or "it threw".
struct PointResult {
  bool threw = false;
  RouteDecision d;
};

PointResult route_point(const RuleDrivenRouting& algo,
                        const RouteContext& ctx) {
  PointResult r;
  try {
    r.d = algo.route(ctx);
  } catch (const ContractViolation&) {
    r.threw = true;
  } catch (const rules::EvalError&) {
    // Collapsed-axis premise points (in_port/in_vc = -1) outside a declared
    // input domain: thrown alike by every tier.
    r.threw = true;
  }
  return r;
}

std::string describe(const RouteContext& ctx) {
  std::ostringstream os;
  os << "node=" << ctx.node << " dest=" << ctx.dest
     << " in_port=" << ctx.in_port << " in_vc=" << ctx.in_vc;
  return os.str();
}

void expect_same(const PointResult& a, const PointResult& b,
                 const char* tier, const RouteContext& ctx) {
  ASSERT_EQ(a.threw, b.threw) << tier << " at " << describe(ctx);
  if (a.threw) return;
  ASSERT_EQ(a.d.steps, b.d.steps) << tier << " at " << describe(ctx);
  ASSERT_EQ(a.d.candidates.size(), b.d.candidates.size())
      << tier << " at " << describe(ctx);
  for (std::size_t i = 0; i < a.d.candidates.size(); ++i) {
    EXPECT_EQ(a.d.candidates[i].port, b.d.candidates[i].port)
        << tier << " cand " << i << " at " << describe(ctx);
    EXPECT_EQ(a.d.candidates[i].vc, b.d.candidates[i].vc)
        << tier << " cand " << i << " at " << describe(ctx);
    EXPECT_EQ(a.d.candidates[i].priority, b.d.candidates[i].priority)
        << tier << " cand " << i << " at " << describe(ctx);
  }
}

/// Walk the full premise space the AOT table is built over — including the
/// collapsed -1 axes and injection arrivals — and require the three tiers
/// to agree point by point (same decision, same steps, or the same throw).
void lockstep_premise_space(const Topology& topo,
                            const RuleDrivenRouting& interp,
                            const RuleDrivenRouting& vm,
                            const RuleDrivenRouting& aot, int vcs) {
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      for (PortId p = -1; p <= topo.degree(); ++p) {
        for (VcId v = -1; v < vcs; ++v) {
          RouteContext ctx;
          ctx.node = n;
          ctx.dest = dst;
          ctx.src = n;
          ctx.in_port = p;
          ctx.in_vc = v;
          const PointResult a = route_point(interp, ctx);
          const PointResult b = route_point(vm, ctx);
          const PointResult c = route_point(aot, ctx);
          ASSERT_NO_FATAL_FAILURE(expect_same(a, b, "vm", ctx));
          ASSERT_NO_FATAL_FAILURE(expect_same(a, c, "aot", ctx));
        }
      }
    }
  }
}

class AotCorpusLockstep : public ::testing::TestWithParam<int> {};

TEST_P(AotCorpusLockstep, ThreeTiersAgreeOnEveryPremisePoint) {
  CorpusCase cs = std::move(corpus_cases()[GetParam()]);
  SCOPED_TRACE(cs.name);
  FaultSet f(*cs.topo);
  RuleDrivenRouting interp(cs.source, cs.vcs, ExecMode::Interpret, "route",
                           cs.escape_vc);
  RuleDrivenRouting vm(cs.source, cs.vcs, ExecMode::Vm, "route",
                       cs.escape_vc);
  RuleDrivenRouting aot(cs.source, cs.vcs, ExecMode::Aot, "route",
                        cs.escape_vc);
  interp.attach(*cs.topo, f);
  vm.attach(*cs.topo, f);
  aot.attach(*cs.topo, f);
  ASSERT_TRUE(aot.aot_active()) << cs.name << " did not take the AOT tier";
  EXPECT_EQ(aot.aot_stats().fallback, 0u)
      << cs.name << " left presentable points to the VM";

  lockstep_premise_space(*cs.topo, interp, vm, aot, cs.vcs);

  // Same walk after live faults: the table is rebuilt for the new epoch
  // and must still match the tiers that decide from scratch.
  Rng rng(7);
  inject_random_link_faults(f, 4, rng);
  interp.reconfigure();
  vm.reconfigure();
  aot.reconfigure();
  ASSERT_TRUE(aot.aot_active());
  lockstep_premise_space(*cs.topo, interp, vm, aot, cs.vcs);
}

INSTANTIATE_TEST_SUITE_P(Corpus, AotCorpusLockstep, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(
                               corpus_cases()[info.param].name);
                         });

// ------------------------------------------------------ forced tier ladder
// Halving the budget below the full premise space forces the fill off the
// direct tier: onto the compressed table where a classifier applies
// (nara -> offset-sign, ecube/ecube_msb -> xor-fold), onto the lazy
// sub-tables where none does (ft_mesh reads escape_port). Either way the
// forced tier must stay in lockstep with the direct table and the VM over
// the complete premise space, fault-free and after link kills.
class AotForcedTierLockstep : public ::testing::TestWithParam<int> {};

TEST_P(AotForcedTierLockstep, ForcedTierAgreesWithDirectAndVm) {
  CorpusCase cs = std::move(corpus_cases()[GetParam()]);
  SCOPED_TRACE(cs.name);
  FaultSet f(*cs.topo);
  RuleDrivenRouting vm(cs.source, cs.vcs, ExecMode::Vm, "route",
                       cs.escape_vc);
  RuleDrivenRouting direct(cs.source, cs.vcs, ExecMode::Aot, "route",
                           cs.escape_vc);
  RuleDrivenRouting forced(cs.source, cs.vcs, ExecMode::Aot, "route",
                           cs.escape_vc);
  vm.attach(*cs.topo, f);
  direct.attach(*cs.topo, f);
  ASSERT_EQ(direct.aot_tier_info().tier, RuleDrivenRouting::AotTier::Direct);

  const std::uint64_t full = direct.aot_tier_info().full_entries;
  ASSERT_GT(full, 0u);
  forced.set_aot_budget(full / 2);
  forced.attach(*cs.topo, f);
  const RuleDrivenRouting::AotTierInfo ti = forced.aot_tier_info();
  if (ti.classifier != rules::DestClassifier::None) {
    EXPECT_EQ(ti.tier, RuleDrivenRouting::AotTier::Compressed)
        << ti.reason;
    EXPECT_GT(ti.compression_ratio, 1.0);
    EXPECT_EQ(forced.aot_stats().fallback, 0u);
  } else {
    EXPECT_EQ(ti.tier, RuleDrivenRouting::AotTier::Lazy) << ti.reason;
    EXPECT_GE(ti.lazy_capacity_per_node,
              RuleDrivenRouting::kLazyMinPerNode);
  }
  ASSERT_TRUE(forced.aot_active());

  lockstep_premise_space(*cs.topo, vm, direct, forced, cs.vcs);

  Rng rng(7);
  inject_random_link_faults(f, 4, rng);
  vm.reconfigure();
  direct.reconfigure();
  forced.reconfigure();
  ASSERT_TRUE(forced.aot_active());
  EXPECT_EQ(forced.aot_tier_info().tier, ti.tier)
      << "tier choice changed across the epoch";
  lockstep_premise_space(*cs.topo, vm, direct, forced, cs.vcs);
}

INSTANTIATE_TEST_SUITE_P(Corpus, AotForcedTierLockstep,
                         ::testing::Range(0, 4), [](const auto& info) {
                           return std::string(
                               corpus_cases()[info.param].name);
                         });

// The lazy tier must converge: a second identical pass over a working set
// that fits the sub-tables is pure hits — no new misses, no evictions and
// (the steady-state property the tier exists for) no heap allocation.
TEST(AotLazyTier, SecondPassOverWorkingSetAllocatesNothing) {
  Mesh m = Mesh::two_d(8, 8);
  FaultSet f(m);
  RuleDrivenRouting vm(rulebases::ft_mesh_route_source(8, 8), 3,
                       ExecMode::Vm, "route", /*escape_vc=*/2);
  RuleDrivenRouting lazy(rulebases::ft_mesh_route_source(8, 8), 3,
                         ExecMode::Aot, "route", /*escape_vc=*/2);
  vm.attach(m, f);
  // ft_mesh rejects both classifiers (escape_port reads raw dest bits), so
  // an over-narrow budget lands on the lazy tier directly.
  lazy.set_aot_budget(1 << 15);
  lazy.attach(m, f);
  ASSERT_EQ(lazy.aot_tier_info().tier, RuleDrivenRouting::AotTier::Lazy)
      << lazy.aot_tier_info().reason;

  // A bounded per-node working set (8 dests x every arrival). Only storable
  // points are kept: throwing and non-inline-packable decisions recompute
  // through the VM on every touch by design, which would read as "misses"
  // below. The first pass fills the sub-tables, checks VM identity, and
  // records the storable contexts so the measured second pass can drive the
  // lazy engine alone.
  std::vector<RouteContext> working_set;
  for (NodeId n = 0; n < m.num_nodes(); ++n) {
    for (int k = 1; k <= 8; ++k) {
      for (PortId p = -1; p <= m.degree(); ++p) {
        for (VcId v = -1; v < 3; ++v) {
          RouteContext ctx;
          ctx.node = n;
          ctx.dest = (n + k * 7) % m.num_nodes();
          ctx.src = n;
          ctx.in_port = p;
          ctx.in_vc = v;
          const PointResult want = route_point(vm, ctx);
          if (want.threw || want.d.mark_misrouted ||
              want.d.candidates.size() > rules::AotEntry::kInlineCands)
            continue;
          working_set.push_back(ctx);
          const PointResult got = route_point(lazy, ctx);
          expect_same(want, got, "lazy", ctx);
        }
      }
    }
  }
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  const std::int64_t swept = static_cast<std::int64_t>(working_set.size());
  const RuleDrivenRouting::AotTierInfo warm = lazy.aot_tier_info();
  EXPECT_GT(warm.lazy_misses, 0);
  EXPECT_GT(warm.lazy_nodes_allocated, 0u);

  const std::int64_t allocs_before = heap_alloc_count();
  for (const RouteContext& ctx : working_set)
    route_point(lazy, ctx);  // second pass: hits, bar set conflicts
  const std::int64_t allocs_after = heap_alloc_count();
  const RuleDrivenRouting::AotTierInfo converged = lazy.aot_tier_info();
  // 2-way sets leave a residue of conflict misses (three keys hashed into
  // one set evict each other forever); convergence means the second pass
  // hits for all but that residue — bound it at 2% of the working set.
  const std::int64_t second_pass_misses =
      converged.lazy_misses - warm.lazy_misses;
  EXPECT_LT(second_pass_misses, swept / 50)
      << "second pass missed broadly: the working set did not converge";
  EXPECT_GT(converged.lazy_hits - warm.lazy_hits, swept * 9 / 10);
  // The steady-state property the tier exists for: serving a stored entry
  // never touches the heap (RouteDecision is a StaticVector; the sub-table
  // probe is a strided load). Only the conflict residue may allocate — a
  // recompute re-runs the VM, which builds its evaluation state on the
  // heap — so the delta is bounded per miss, not per point. A hit-path
  // allocation would scale with `swept` and blow through this bound.
  if (heap_alloc_counting_enabled()) {
    EXPECT_LE(allocs_after - allocs_before, second_pass_misses * 64)
        << "lazy hit path touched the heap (" << swept << " points, "
        << second_pass_misses << " conflict misses)";
  }
}

// ------------------------------------------------- fuzzed routing programs
// Random stateless decision programs over the premise-keyed input catalog:
// bit tests on node/dest, arrival port/vc comparisons and link health, with
// 1-3 candidate conclusions per rule. The shapes cover what the soundness
// analysis must classify to enable (or refuse) the table.
class RouteProgramGenerator {
 public:
  explicit RouteProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << "PROGRAM fuzzroute;\n"
       << "CONSTANT dim = " << kDim << "\n"
       << "CONSTANT maxnode = " << ((1 << kDim) - 1) << "\n"
       << "INPUT node IN 0 TO maxnode\n"
       << "INPUT dest IN 0 TO maxnode\n"
       << "INPUT in_port IN 0 TO dim\n"
       << "INPUT in_vc IN 0 TO 1\n"
       << "INPUT link_ok(dim) IN 0 TO 1\n"
       << "ON route\n";
    const int rules = 2 + static_cast<int>(rng_.next_below(5));
    for (int r = 0; r < rules; ++r)
      os << "  IF " << premise() << " THEN " << conclusion() << ";\n";
    // Catch-all so every premise point decides something.
    os << "  IF node >= 0 THEN !cand(dim, 0, 0);\n"
       << "END route;\n";
    return os.str();
  }

  static constexpr int kDim = 3;

 private:
  std::string premise() {
    const int atoms = 1 + static_cast<int>(rng_.next_below(3));
    std::ostringstream os;
    for (int i = 0; i < atoms; ++i) {
      if (i) os << (rng_.next_bool(0.8) ? " AND " : " OR ");
      switch (rng_.next_below(5)) {
        case 0:
          os << "bit(xor(node, dest), " << rng_.next_below(kDim)
             << ") = " << rng_.next_below(2);
          break;
        case 1:
          os << "in_vc = " << rng_.next_below(2);
          break;
        case 2:
          os << "in_port " << cmp() << " " << rng_.next_below(kDim + 1);
          break;
        case 3:
          os << "link_ok(" << rng_.next_below(kDim) << ") = 1";
          break;
        default:
          os << "node " << cmp() << " dest";
          break;
      }
    }
    return os.str();
  }

  std::string conclusion() {
    const int cands = 1 + static_cast<int>(rng_.next_below(3));
    std::ostringstream os;
    for (int i = 0; i < cands; ++i) {
      if (i) os << ", ";
      os << "!cand(" << rng_.next_below(kDim + 1) << ", "
         << rng_.next_below(2) << ", " << rng_.next_below(4) << ")";
    }
    return os.str();
  }

  std::string cmp() {
    static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    return ops[rng_.next_below(6)];
  }

  Rng rng_;
};

TEST(AotFuzz, RandomRoutingProgramsAgreeAcrossTiers) {
  constexpr int kDim = RouteProgramGenerator::kDim;
  Hypercube topo(kDim);
  int aot_engaged = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RouteProgramGenerator gen(seed * 104729);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);
    FaultSet f(topo);
    RuleDrivenRouting interp(source, 2, ExecMode::Interpret);
    RuleDrivenRouting vm(source, 2, ExecMode::Vm);
    RuleDrivenRouting aot(source, 2, ExecMode::Aot);
    interp.attach(topo, f);
    vm.attach(topo, f);
    aot.attach(topo, f);
    if (aot.aot_active()) ++aot_engaged;
    lockstep_premise_space(topo, interp, vm, aot, 2);
  }
  // The generator only emits premise-keyed reads, so the analysis should
  // accept (and the table serve) essentially every program.
  EXPECT_GT(aot_engaged, 20);
}

// ------------------------------------------------------ hot-swap identity
/// `swap_metrics` also compares the swap accounting — used when both runs
/// schedule the same swap (the self-swap-vs-baseline checks compare a
/// swapped run against an unswapped one, where those fields differ by
/// construction).
bool bit_identical(const SimResult& a, const SimResult& b,
                   bool swap_metrics = false) {
  if (swap_metrics &&
      (a.rule_swaps != b.rule_swaps ||
       a.swap_gated_cycles != b.swap_gated_cycles ||
       a.swap_gated_node_cycles != b.swap_gated_node_cycles))
    return false;
  if (a.blocked_chain.size() != b.blocked_chain.size()) return false;
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    if (a.blocked_chain[i].node != b.blocked_chain[i].node ||
        a.blocked_chain[i].port != b.blocked_chain[i].port ||
        a.blocked_chain[i].vc != b.blocked_chain[i].vc ||
        a.blocked_chain[i].packet != b.blocked_chain[i].packet)
      return false;
  }
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p50_latency, &b.p50_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_hops, &b.avg_hops, sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.avg_decision_steps, &b.avg_decision_steps,
                     sizeof(double)) == 0 &&
         a.packets_lost == b.packets_lost &&
         a.packets_unrecoverable == b.packets_unrecoverable &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

constexpr Cycle kWarmup = 150;
constexpr Cycle kMeasure = 500;

/// One 6x6-mesh replica of the fault-tolerant rule program under the AOT
/// tier. `swap_at` >= 0 schedules a swap to `swap_source` (the same
/// program, for the identity checks) at that cycle.
SimResult run_mesh_point(std::uint64_t seed, int shards, Cycle swap_at,
                         const std::string& swap_source,
                         Simulator::RuleSwapPolicy policy =
                             Simulator::RuleSwapPolicy::Auto) {
  Mesh m = Mesh::two_d(6, 6);
  RuleDrivenRouting algo(rulebases::ft_mesh_route_source(6, 6), 3,
                         ExecMode::Aot, "route", /*escape_vc=*/2);
  UniformTraffic tr(m);
  NetworkConfig ncfg;
  ncfg.shards = shards;
  Network net(m, algo, ncfg);
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.packet_length = 4;
  cfg.warmup_cycles = kWarmup;
  cfg.measure_cycles = kMeasure;
  cfg.seed = seed;
  Simulator sim(net, tr, cfg);
  if (swap_at >= 0) sim.schedule_rule_swap(swap_at, swap_source, policy);
  return sim.run();
}

TEST(AotHotSwap, SelfSwapAtAnyCycleIsBitIdentical) {
  const std::string source = rulebases::ft_mesh_route_source(6, 6);
  const SimResult baseline = run_mesh_point(11, 1, -1, "");
  ASSERT_EQ(baseline.rule_swaps, 0);
  // Any cycle: during warmup, mid-measurement, near the end of the window.
  for (const Cycle at : {Cycle{40}, kWarmup + kMeasure / 2,
                         kWarmup + kMeasure - 1}) {
    const SimResult swapped = run_mesh_point(11, 1, at, source);
    EXPECT_EQ(swapped.rule_swaps, 1) << "swap at " << at;
    EXPECT_EQ(swapped.swap_gated_cycles, 0) << "swap at " << at;
    EXPECT_TRUE(bit_identical(swapped, baseline))
        << "self-swap at cycle " << at << " perturbed the run";
  }
}

TEST(AotHotSwap, SelfSwapBitIdenticalAcrossShardCounts) {
  const std::string source = rulebases::ft_mesh_route_source(6, 6);
  const Cycle at = kWarmup + kMeasure / 2;
  const SimResult one = run_mesh_point(13, 1, at, source);
  ASSERT_EQ(one.rule_swaps, 1);
  for (const int shards : {2, 4}) {
    const SimResult sharded = run_mesh_point(13, shards, at, source);
    EXPECT_EQ(sharded.rule_swaps, 1);
    EXPECT_TRUE(bit_identical(sharded, one, /*swap_metrics=*/true))
        << "self-swap differs at " << shards << " shards";
  }
}

TEST(AotHotSwap, SelfSwapBitIdenticalAcrossSweepThreads) {
  const std::string source = rulebases::ft_mesh_route_source(6, 6);
  std::vector<SweepPoint> points;
  for (const Cycle at : {Cycle{40}, kWarmup + kMeasure / 2}) {
    for (const int shards : {1, 2}) {
      points.push_back({[at, shards, source](std::uint64_t seed) {
        return run_mesh_point(seed, shards, at, source);
      }});
    }
  }
  std::vector<SimResult> reference;
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.num_threads = threads;
    opts.base_seed = 5;
    SweepRunner runner(opts);
    const std::vector<SimResult> results = runner.run(points);
    if (threads == 1) {
      reference = results;
      continue;
    }
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_TRUE(bit_identical(results[i], reference[i],
                                /*swap_metrics=*/true))
          << "point " << i << " differs at " << threads << " threads";
  }
}

TEST(AotHotSwap, QuiescentProgramChangeDrainsAndLosesNothing) {
  constexpr int kDim = 4;
  Hypercube topo(kDim);
  RuleDrivenRouting algo(rulebases::ecube_route_source(kDim), 1,
                         ExecMode::Aot);
  UniformTraffic tr(topo);
  Network net(topo, algo);
  SimConfig cfg;
  cfg.injection_rate = 0.10;
  cfg.packet_length = 4;
  cfg.warmup_cycles = kWarmup;
  cfg.measure_cycles = kMeasure;
  cfg.seed = 21;
  Simulator sim(net, tr, cfg);
  sim.schedule_rule_swap(kWarmup + kMeasure / 2,
                         rulebases::ecube_msb_route_source(kDim),
                         Simulator::RuleSwapPolicy::Quiescent);
  const SimResult r = sim.run();
  EXPECT_EQ(r.rule_swaps, 1);
  EXPECT_GT(r.swap_gated_cycles, 0);
  EXPECT_LT(r.swap_gated_cycles, kMeasure);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets + r.packets_unrecoverable,
            r.injected_packets);
  // The swapped-in program is serving from a fresh, complete table.
  EXPECT_TRUE(algo.aot_active());
  EXPECT_EQ(algo.aot_stats().fallback, 0u);
}

// ---------------------------------------------------- rolling swap commits
// The per-shard rolling policy drains one spatial shard at a time: only
// the draining shard's uncommitted nodes stop injecting, so the downtime
// (gated node-cycles) must come in strictly under a quiescent drain of the
// same swap, with the whole-network injection gate never engaging.
TEST(AotRollingSwap, GatesStrictlyFewerNodeCyclesThanQuiescent) {
  const std::string source = rulebases::ft_mesh_route_source(6, 6);
  const Cycle at = kWarmup + kMeasure / 2;
  const SimResult quiescent =
      run_mesh_point(17, 1, at, source, Simulator::RuleSwapPolicy::Quiescent);
  const SimResult rolling =
      run_mesh_point(17, 1, at, source, Simulator::RuleSwapPolicy::Rolling);
  ASSERT_EQ(quiescent.rule_swaps, 1);
  ASSERT_EQ(rolling.rule_swaps, 1);
  // Quiescent gates the whole network for the drain; rolling never engages
  // the global gate and pays only per-shard drains.
  EXPECT_GT(quiescent.swap_gated_cycles, 0);
  EXPECT_EQ(rolling.swap_gated_cycles, 0);
  EXPECT_GT(rolling.swap_gated_node_cycles, 0);
  EXPECT_LT(rolling.swap_gated_node_cycles, quiescent.swap_gated_node_cycles);
  EXPECT_FALSE(rolling.deadlock_suspected);
  EXPECT_EQ(rolling.delivered_packets + rolling.packets_unrecoverable,
            rolling.injected_packets);
}

// Rolling commits happen in the simulator's serial pre-step phase and the
// drain order is a property of the plan, not of the execution parallelism:
// the SimResult must be bit-identical at any shard count.
TEST(AotRollingSwap, BitIdenticalAcrossShardCounts) {
  const std::string source = rulebases::ft_mesh_route_source(6, 6);
  const Cycle at = kWarmup + kMeasure / 2;
  const SimResult one =
      run_mesh_point(19, 1, at, source, Simulator::RuleSwapPolicy::Rolling);
  ASSERT_EQ(one.rule_swaps, 1);
  EXPECT_GT(one.swap_gated_node_cycles, 0);
  for (const int shards : {2, 4, 8}) {
    const SimResult sharded = run_mesh_point(
        19, shards, at, source, Simulator::RuleSwapPolicy::Rolling);
    EXPECT_TRUE(bit_identical(sharded, one, /*swap_metrics=*/true))
        << "rolling swap differs at " << shards << " execution shards";
  }
}

TEST(AotRollingSwap, BitIdenticalAcrossSweepThreads) {
  const std::string source = rulebases::ft_mesh_route_source(6, 6);
  std::vector<SweepPoint> points;
  for (const Cycle at : {Cycle{40}, kWarmup + kMeasure / 2}) {
    for (const int shards : {1, 2}) {
      points.push_back({[at, shards, source](std::uint64_t seed) {
        return run_mesh_point(seed, shards, at, source,
                              Simulator::RuleSwapPolicy::Rolling);
      }});
    }
  }
  std::vector<SimResult> reference;
  for (const int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.num_threads = threads;
    opts.base_seed = 23;
    SweepRunner runner(opts);
    const std::vector<SimResult> results = runner.run(points);
    if (threads == 1) {
      reference = results;
      continue;
    }
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_TRUE(bit_identical(results[i], reference[i],
                                /*swap_metrics=*/true))
          << "rolling point " << i << " differs at " << threads
          << " threads";
  }
}

// A rolling swap to a DIFFERENT program: the two programs coexist while
// the shards drain, and the swapped-in program ends up serving from a
// fresh, complete table with nothing lost in flight.
TEST(AotRollingSwap, ProgramChangeCommitsAndLosesNothing) {
  constexpr int kDim = 4;
  Hypercube topo(kDim);
  RuleDrivenRouting algo(rulebases::ecube_route_source(kDim), 1,
                         ExecMode::Aot);
  UniformTraffic tr(topo);
  Network net(topo, algo);
  SimConfig cfg;
  cfg.injection_rate = 0.10;
  cfg.packet_length = 4;
  cfg.warmup_cycles = kWarmup;
  cfg.measure_cycles = kMeasure;
  cfg.seed = 29;
  Simulator sim(net, tr, cfg);
  sim.schedule_rule_swap(kWarmup + kMeasure / 2,
                         rulebases::ecube_msb_route_source(kDim),
                         Simulator::RuleSwapPolicy::Rolling);
  const SimResult r = sim.run();
  EXPECT_EQ(r.rule_swaps, 1);
  EXPECT_EQ(r.swap_gated_cycles, 0);
  EXPECT_GT(r.swap_gated_node_cycles, 0);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets + r.packets_unrecoverable,
            r.injected_packets);
  EXPECT_FALSE(algo.rolling_commit_active());
  EXPECT_TRUE(algo.aot_active());
  EXPECT_EQ(algo.aot_stats().fallback, 0u);
}

// A machine() poke (mutable per-node rule state access) must drop the
// table: decisions keep flowing through the VM until the next fill, and
// reconfigure() restores the table tier.
TEST(AotHotSwap, MachinePokeDropsTableUntilNextFill) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  RuleDrivenRouting algo(rulebases::nara_route_source(4, 4), 2,
                         ExecMode::Aot);
  algo.attach(m, f);
  ASSERT_TRUE(algo.aot_active());
  RouteContext ctx;
  ctx.node = 0;
  ctx.dest = 5;
  ctx.src = 0;
  ctx.in_port = m.degree();
  ctx.in_vc = 0;
  const RouteDecision before = algo.route(ctx);
  algo.machine(3);  // hand out mutable state: conservative invalidation
  EXPECT_FALSE(algo.aot_active());
  const RouteDecision during = algo.route(ctx);  // VM fallback still serves
  algo.reconfigure();
  EXPECT_TRUE(algo.aot_active());
  const RouteDecision after = algo.route(ctx);
  EXPECT_EQ(before.candidates.size(), during.candidates.size());
  EXPECT_EQ(before.candidates.size(), after.candidates.size());
  for (std::size_t i = 0; i < before.candidates.size(); ++i) {
    EXPECT_EQ(before.candidates[i].port, after.candidates[i].port);
    EXPECT_EQ(before.candidates[i].vc, after.candidates[i].vc);
  }
}

}  // namespace
}  // namespace flexrouter
