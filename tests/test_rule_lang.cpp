// Tests for the rule language: lexer, parser, interpreter semantics,
// ARON compiler (feature axes, table filling) and event manager — including
// the paper's Figure 4 excerpt (ROUTE_C state update).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ruleengine/event_manager.hpp"
#include "ruleengine/hwcost.hpp"
#include "ruleengine/lexer.hpp"
#include "ruleengine/parser.hpp"

namespace flexrouter::rules {
namespace {

// --------------------------------------------------------------------- lexer
TEST(Lexer, TokenisesOperatorsAndKeywords) {
  const auto toks = lex("IF xpos<xdes AND ypos=ydes THEN RETURN(east);");
  ASSERT_GE(toks.size(), 13u);
  EXPECT_EQ(toks[0].kind, Tok::KwIf);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "xpos");
  EXPECT_EQ(toks[2].kind, Tok::Lt);
  EXPECT_EQ(toks[4].kind, Tok::KwAnd);
  EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(Lexer, AssignVsComparisonVsComment) {
  const auto toks = lex("x <- y -- this is a comment <- ignored\nz <= 3 <> 4");
  // x <- y | z <= 3 <> 4 | eof
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[1].kind, Tok::Assign);
  EXPECT_EQ(toks[4].kind, Tok::Le);
  EXPECT_EQ(toks[6].kind, Tok::Ne);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  const auto toks = lex("forall FORALL ForAll");
  EXPECT_EQ(toks[0].kind, Tok::KwForall);
  EXPECT_EQ(toks[1].kind, Tok::KwForall);
  EXPECT_EQ(toks[2].kind, Tok::KwForall);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("a $ b"), ParseError);
}

// -------------------------------------------------------------------- parser
const char* kNaftaDirectionSnippet = R"(
  PROGRAM direction_demo;
  CONSTANT width = 4
  INPUT xpos IN 0 TO width-1
  INPUT ypos IN 0 TO width-1
  INPUT xdes IN 0 TO width-1
  INPUT ydes IN 0 TO width-1
  CONSTANT outs = {east, west, north, south, local}
  ON route RETURNS outs
    IF xpos<xdes AND ypos=ydes THEN RETURN(east);
    IF xpos>xdes AND ypos=ydes THEN RETURN(west);
    IF ypos<ydes THEN RETURN(north);
    IF ypos>ydes THEN RETURN(south);
    IF xpos=xdes AND ypos=ydes THEN RETURN(local);
  END route;
)";

TEST(Parser, ParsesPaperStyleRouteRules) {
  const Program p = parse_program(kNaftaDirectionSnippet);
  EXPECT_EQ(p.name, "direction_demo");
  EXPECT_EQ(p.inputs.size(), 4u);
  ASSERT_EQ(p.rule_bases.size(), 1u);
  const RuleBase& rb = p.rule_bases[0];
  EXPECT_EQ(rb.name, "route");
  EXPECT_EQ(rb.rules.size(), 5u);
  ASSERT_TRUE(rb.returns.has_value());
  EXPECT_EQ(rb.returns->cardinality(), 5u);
}

TEST(Parser, ConstantEnumDeclaresDomainAndSet) {
  const Program p = parse_program(
      "CONSTANT states = {safe, unsafe, faulty}\n"
      "VARIABLE s IN states INIT unsafe\n"
      "ON tick IF s = safe THEN s <- faulty; END");
  ASSERT_EQ(p.variables.size(), 1u);
  EXPECT_EQ(p.variables[0].domain.cardinality(), 3u);
  ASSERT_TRUE(p.variables[0].init.has_value());
  // The constant also exists as the full set.
  const auto it = p.constants.find("states");
  ASSERT_NE(it, p.constants.end());
  EXPECT_EQ(it->second.as_set().size(), 3u);
}

TEST(Parser, ArraysAndIntConstantDomains) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "VARIABLE queue[dirs] IN 0 TO 15\n"
      "ON noop IF 1 = 1 THEN queue(0) <- 0; END");
  ASSERT_EQ(p.variables.size(), 1u);
  EXPECT_EQ(p.variables[0].array_size, 4);
  EXPECT_EQ(p.variables[0].register_bits(), 16);  // 4 bits x 4 elements
}

TEST(Parser, ParamWithIntConstantDomain) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "ON update(dir IN dirs) IF dir = 0 THEN !ping(dir); END update");
  ASSERT_EQ(p.rule_bases[0].params.size(), 1u);
  EXPECT_EQ(p.rule_bases[0].params[0].domain.cardinality(), 4u);
}

TEST(Parser, RejectsDuplicateDeclarations) {
  EXPECT_THROW(parse_program("CONSTANT a = 1\nCONSTANT a = 2"), ParseError);
  EXPECT_THROW(parse_program("VARIABLE v IN 0 TO 1\nVARIABLE v IN 0 TO 1"),
               ParseError);
  EXPECT_THROW(parse_program("ON e IF 1=1 THEN !x(); END\n"
                             "ON e IF 1=1 THEN !y(); END"),
               ParseError);
}

TEST(Parser, RejectsMismatchedEndTrailer) {
  EXPECT_THROW(parse_program("ON foo IF 1=1 THEN !x(); END bar"), ParseError);
}

TEST(Parser, RejectsUnknownDomainName) {
  EXPECT_THROW(parse_program("VARIABLE v IN nowhere"), ParseError);
}

TEST(Parser, RejectsInitOutsideDomain) {
  EXPECT_THROW(parse_program("VARIABLE v IN 0 TO 3 INIT 9"), ParseError);
}

TEST(Parser, QuantifiedExpressionsParse) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "INPUT free(dirs) IN 0 TO 1\n"
      "ON pick RETURNS 0 TO 1\n"
      "  IF EXISTS i IN dirs: free(i) = 1 THEN RETURN(1);\n"
      "  IF FORALL i IN dirs: free(i) = 0 THEN RETURN(0);\n"
      "END pick");
  EXPECT_EQ(p.rule_bases[0].rules.size(), 2u);
  EXPECT_EQ(p.rule_bases[0].rules[0].premise->kind, Expr::Kind::Quantified);
}

TEST(Parser, PrettyPrintRoundTrips) {
  const Program p = parse_program(kNaftaDirectionSnippet);
  for (const Rule& r : p.rule_bases[0].rules) {
    const std::string text = to_string(r, p.syms);
    EXPECT_NE(text.find("IF"), std::string::npos);
    EXPECT_NE(text.find("RETURN"), std::string::npos);
  }
}

// --------------------------------------------------------------- interpreter
TEST(Interp, SelectsFirstApplicableRule) {
  const Program p = parse_program(kNaftaDirectionSnippet);
  Interpreter interp(p);
  RuleEnv env(p);
  std::map<std::string, std::int64_t> sig{
      {"xpos", 1}, {"ypos", 2}, {"xdes", 3}, {"ydes", 2}};
  interp.set_input_provider(
      [&](const std::string& name, const std::vector<Value>&) {
        return Value::make_int(sig.at(name));
      });
  const FireResult r = interp.fire(env, "route", {});
  EXPECT_EQ(r.rule_index, 0);
  ASSERT_TRUE(r.returned.has_value());
  EXPECT_EQ(p.syms.name(r.returned->as_sym()), "east");
}

TEST(Interp, NoApplicableRuleReturnsMinusOne) {
  const Program p = parse_program(
      "ON never IF 1 = 2 THEN !boom(); END");
  Interpreter interp(p);
  RuleEnv env(p);
  const FireResult r = interp.fire(env, "never", {});
  EXPECT_FALSE(r.applied());
  EXPECT_TRUE(r.events.empty());
}

TEST(Interp, ParallelConclusionUsesPreState) {
  // Swap two registers in one conclusion: only possible with parallel
  // (pre-state) semantics.
  const Program p = parse_program(
      "VARIABLE a IN 0 TO 9 INIT 3\n"
      "VARIABLE b IN 0 TO 9 INIT 7\n"
      "ON swap IF 1 = 1 THEN a <- b, b <- a; END");
  Interpreter interp(p);
  RuleEnv env(p);
  interp.fire(env, "swap", {});
  EXPECT_EQ(env.get("a").as_int(), 7);
  EXPECT_EQ(env.get("b").as_int(), 3);
}

TEST(Interp, ConflictingParallelWritesThrow) {
  const Program p = parse_program(
      "VARIABLE a IN 0 TO 9\n"
      "ON bad IF 1 = 1 THEN a <- 1, a <- 2; END");
  Interpreter interp(p);
  RuleEnv env(p);
  EXPECT_THROW(interp.fire(env, "bad", {}), EvalError);
}

TEST(Interp, IdenticalParallelWritesAreAllowed) {
  const Program p = parse_program(
      "VARIABLE a IN 0 TO 9\n"
      "ON ok IF 1 = 1 THEN a <- 5, a <- 5; END");
  Interpreter interp(p);
  RuleEnv env(p);
  EXPECT_NO_THROW(interp.fire(env, "ok", {}));
  EXPECT_EQ(env.get("a").as_int(), 5);
}

TEST(Interp, DomainViolationOnAssignThrows) {
  const Program p = parse_program(
      "VARIABLE a IN 0 TO 3\n"
      "ON inc IF 1 = 1 THEN a <- a + 1; END");
  Interpreter interp(p);
  RuleEnv env(p);
  for (int i = 0; i < 3; ++i) interp.fire(env, "inc", {});
  EXPECT_EQ(env.get("a").as_int(), 3);
  EXPECT_THROW(interp.fire(env, "inc", {}), ContractViolation);
}

TEST(Interp, ForAllCommandExpandsOverRange) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "VARIABLE mark[dirs] IN 0 TO 1\n"
      "ON set_all IF 1 = 1 THEN FORALL i IN dirs: mark(i) <- 1; END");
  Interpreter interp(p);
  RuleEnv env(p);
  interp.fire(env, "set_all", {});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(env.get("mark", i).as_int(), 1);
}

TEST(Interp, EmittedEventsCarryEvaluatedArgs) {
  const Program p = parse_program(
      "CONSTANT dirs = 3\n"
      "ON fanout(x IN 0 TO 9)\n"
      "  IF x > 0 THEN FORALL i IN dirs: !send(i, x + 1);\n"
      "END");
  Interpreter interp(p);
  RuleEnv env(p);
  const FireResult r = interp.fire(env, "fanout", {Value::make_int(4)});
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[0].name, "send");
  EXPECT_EQ(r.events[2].args[0].as_int(), 2);
  EXPECT_EQ(r.events[2].args[1].as_int(), 5);
}

TEST(Interp, SetOperationsAndMembership) {
  const Program p = parse_program(
      "CONSTANT states = {a, b, c, d}\n"
      "VARIABLE s IN SET OF states INIT {a, b}\n"
      "VARIABLE hit IN 0 TO 1\n"
      "ON go IF c IN (s UNION {c}) AND NOT (d IN s) THEN\n"
      "  s <- (s UNION {c}) SETMINUS {a}, hit <- 1;\n"
      "END");
  Interpreter interp(p);
  RuleEnv env(p);
  interp.fire(env, "go", {});
  EXPECT_EQ(env.get("hit").as_int(), 1);
  const SetValue& s = env.get("s").as_set();
  EXPECT_EQ(s.size(), 2u);  // {b, c}
  EXPECT_TRUE(s.contains(Value::make_sym(p.syms.lookup("b"))));
  EXPECT_TRUE(s.contains(Value::make_sym(p.syms.lookup("c"))));
}

TEST(Interp, QuantifierOverSetValuedExpression) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "INPUT load(dirs) IN 0 TO 7\n"
      "ON least RETURNS 0 TO 3\n"
      "  IF EXISTS i IN dirs: (FORALL j IN dirs: load(i) <= load(j))\n"
      "    AND i >= 0 THEN RETURN(0);\n"
      "END least");
  Interpreter interp(p);
  interp.set_input_provider(
      [](const std::string&, const std::vector<Value>& idx) {
        static const int loads[] = {5, 2, 7, 2};
        return Value::make_int(loads[idx[0].as_int()]);
      });
  RuleEnv env(p);
  const FireResult r = interp.fire(env, "least", {});
  EXPECT_TRUE(r.applied());
}

TEST(Interp, BuiltinsEvaluate) {
  const Program p = parse_program(
      "VARIABLE r IN 0 TO 63\n"
      "ON go(x IN 0 TO 63, y IN 0 TO 63)\n"
      "  IF 1 = 1 THEN r <- popcount(xor(x, y));\n"
      "END");
  Interpreter interp(p);
  RuleEnv env(p);
  interp.fire(env, "go", {Value::make_int(0b101010), Value::make_int(0b010101)});
  EXPECT_EQ(env.get("r").as_int(), 6);
}

TEST(Interp, MeshDistBuiltin) {
  const Program p = parse_program(
      "VARIABLE d IN 0 TO 30\n"
      "ON go(a IN 0 TO 7, b IN 0 TO 7, c IN 0 TO 7, e IN 0 TO 7)\n"
      "  IF 1 = 1 THEN d <- meshdist(a, b, c, e);\n"
      "END");
  Interpreter interp(p);
  RuleEnv env(p);
  interp.fire(env, "go",
              {Value::make_int(1), Value::make_int(2), Value::make_int(4),
               Value::make_int(7)});
  EXPECT_EQ(env.get("d").as_int(), 8);
}

TEST(Interp, SubbaseCallReturnsValue) {
  const Program p = parse_program(
      "VARIABLE out IN 0 TO 20\n"
      "ON double(x IN 0 TO 10) RETURNS 0 TO 20\n"
      "  IF 1 = 1 THEN RETURN(x * 2);\n"
      "END double\n"
      "ON go(x IN 0 TO 10) IF double(x) > 5 THEN out <- double(x); END go");
  Interpreter interp(p);
  RuleEnv env(p);
  interp.fire(env, "go", {Value::make_int(4)});
  EXPECT_EQ(env.get("out").as_int(), 8);
}

TEST(Interp, ImpureSubbaseInExpressionThrows) {
  const Program p = parse_program(
      "VARIABLE n IN 0 TO 10\n"
      "ON impure RETURNS 0 TO 10\n"
      "  IF 1 = 1 THEN n <- n + 1, RETURN(n);\n"
      "END impure\n"
      "ON go IF impure() > 0 THEN n <- 0; END go");
  Interpreter interp(p);
  RuleEnv env(p);
  EXPECT_THROW(interp.fire(env, "go", {}), EvalError);
}

TEST(Interp, ArgumentDomainChecked) {
  const Program p = parse_program(
      "ON f(x IN 0 TO 3) IF x = 0 THEN !e(); END");
  Interpreter interp(p);
  RuleEnv env(p);
  EXPECT_THROW(interp.fire(env, "f", {Value::make_int(7)}),
               ContractViolation);
  EXPECT_THROW(interp.fire(env, "f", {}), ContractViolation);
}

// --------------------------------------------- the paper's Figure 4 excerpt
const char* kFigure4 = R"(
  PROGRAM route_c_update_state;
  -- it is assumed that the event update_state occurs if a neighboring node
  -- fails, or the neighbor's state changes, or a link to it
  CONSTANT fault_states = {safe, faulty, ounsafe, sunsafe, lfault}
  CONSTANT dirs = 4
  VARIABLE number_unsafe IN 0 TO dirs
  VARIABLE number_faulty IN 0 TO dirs
  VARIABLE state IN fault_states INIT safe
  VARIABLE neighb_state[dirs] IN fault_states
  INPUT new_state(dirs) IN fault_states

  ON update_state(dir IN dirs)
    -- the first neighbor gets faulty, just note it
    IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0
    THEN neighb_state(dir) <- new_state(dir),
         number_faulty <- number_faulty + 1,
         number_unsafe <- number_unsafe + 1;
    -- now too many neighbors are unsafe, change state and propagate
    IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe
       AND number_unsafe = 2
    THEN state <- ounsafe,
         number_unsafe <- number_unsafe + 1,
         FORALL i IN dirs: !send_newmessage(i, ounsafe),
         neighb_state(dir) <- new_state(dir);
  END update_state;
)";

TEST(Figure4, ParsesAndFiresFirstRule) {
  const Program p = parse_program(kFigure4);
  Interpreter interp(p);
  RuleEnv env(p);
  SymId faulty = p.syms.lookup("faulty");
  interp.set_input_provider(
      [&](const std::string&, const std::vector<Value>&) {
        return Value::make_sym(faulty);
      });
  const FireResult r = interp.fire(env, "update_state", {Value::make_int(2)});
  EXPECT_EQ(r.rule_index, 0);
  EXPECT_EQ(env.get("number_faulty").as_int(), 1);
  EXPECT_EQ(env.get("number_unsafe").as_int(), 1);
  EXPECT_EQ(p.syms.name(env.get("neighb_state", 2).as_sym()), "faulty");
}

TEST(Figure4, SecondRulePropagatesToAllNeighbors) {
  const Program p = parse_program(kFigure4);
  Interpreter interp(p);
  RuleEnv env(p);
  env.set("number_unsafe", 0, Value::make_int(2));
  SymId sunsafe = p.syms.lookup("sunsafe");
  interp.set_input_provider(
      [&](const std::string&, const std::vector<Value>&) {
        return Value::make_sym(sunsafe);
      });
  const FireResult r = interp.fire(env, "update_state", {Value::make_int(0)});
  EXPECT_EQ(r.rule_index, 1);
  EXPECT_EQ(p.syms.name(env.get("state").as_sym()), "ounsafe");
  EXPECT_EQ(env.get("number_unsafe").as_int(), 3);
  ASSERT_EQ(r.events.size(), 4u);  // one per direction
  for (const auto& e : r.events) {
    EXPECT_EQ(e.name, "send_newmessage");
    EXPECT_EQ(p.syms.name(e.args[1].as_sym()), "ounsafe");
  }
}

// ------------------------------------------------------------------ compiler
TEST(Compiler, Figure7AxisClassification) {
  // The paper's Figure 7: state and new_state(dir) index directly, the
  // counters are reduced to compare-with-constant bits.
  const Program p = parse_program(kFigure4);
  Interpreter interp(p);
  const CompiledRuleBase c =
      compile_rule_base(p, p.rule_base("update_state"), interp);
  int direct = 0, atom = 0;
  for (const FeatureAxis& a : c.axes())
    (a.kind == FeatureAxis::Kind::Direct ? direct : atom) += 1;
  EXPECT_EQ(direct, 2);  // new_state(dir), state
  EXPECT_EQ(atom, 2);    // number_faulty = 0, number_unsafe = 2
  EXPECT_EQ(c.table_entries(), 5u * 5u * 2u * 2u);  // 100 entries
  EXPECT_GT(c.table_width_bits(), 0);
}

TEST(Compiler, TableAgreesWithInterpreterOnAllStates) {
  const Program p = parse_program(kFigure4);
  // Exhaustive differential test over the full input space of Figure 4.
  const auto fault_states = p.named_domains.at("fault_states").enumerate();
  for (const Value& new_state : fault_states) {
    for (int nf = 0; nf <= 4; ++nf) {
      for (int nu = 0; nu <= 4; ++nu) {
        for (const Value& st : fault_states) {
          EventManager direct(p, ExecMode::Interpret);
          EventManager table(p, ExecMode::Table);
          for (EventManager* em : {&direct, &table}) {
            em->set_input_provider(
                [&](const std::string&, const std::vector<Value>&) {
                  return new_state;
                });
            em->env().set("number_faulty", 0, Value::make_int(nf));
            em->env().set("number_unsafe", 0, Value::make_int(nu));
            em->env().set("state", 0, st);
          }
          // Some synthetic states overflow the counter domains (e.g.
          // number_unsafe already at its maximum when a rule increments) —
          // both engines must then fail identically.
          std::optional<FireResult> a, b;
          bool a_threw = false, b_threw = false;
          try {
            a = direct.fire("update_state", {Value::make_int(1)});
          } catch (const ContractViolation&) {
            a_threw = true;
          }
          try {
            b = table.fire("update_state", {Value::make_int(1)});
          } catch (const ContractViolation&) {
            b_threw = true;
          }
          ASSERT_EQ(a_threw, b_threw);
          if (a_threw) continue;
          EXPECT_EQ(a->rule_index, b->rule_index);
          EXPECT_EQ(a->events.size(), b->events.size());
          EXPECT_TRUE(direct.env() == table.env());
        }
      }
    }
  }
}

TEST(Compiler, ReturnsContributeToWidth) {
  const Program p = parse_program(kNaftaDirectionSnippet);
  Interpreter interp(p);
  const CompiledRuleBase c = compile_rule_base(p, p.rule_base("route"), interp);
  // 5 distinct conclusions (+none) need 3 bits, the returned direction
  // domain (5 symbols) needs 3 more.
  EXPECT_EQ(c.table_width_bits(), 6);
  // Positions are 0..3 each: too wide for direct int indexing (threshold 4
  // allows card 4), so every comparison is an atom — actually positions have
  // cardinality 4 == threshold, so they index directly.
  EXPECT_EQ(c.table_entries(), 4u * 4u * 4u * 4u);
}

TEST(Compiler, AtomFallbackForWideIntDomains) {
  const Program p = parse_program(
      "INPUT big IN 0 TO 1000\n"
      "ON check RETURNS 0 TO 1\n"
      "  IF big > 500 THEN RETURN(1);\n"
      "  IF big <= 500 THEN RETURN(0);\n"
      "END check");
  Interpreter interp(p);
  const CompiledRuleBase c = compile_rule_base(p, p.rule_base("check"), interp);
  ASSERT_EQ(c.axes().size(), 2u);  // two comparison atoms
  EXPECT_EQ(c.axes()[0].kind, FeatureAxis::Kind::Atom);
  EXPECT_EQ(c.table_entries(), 4u);
}

TEST(Compiler, QuantifiedPremisesBecomeSingleAtoms) {
  const Program p = parse_program(
      "CONSTANT dirs = 4\n"
      "INPUT free(dirs) IN 0 TO 1\n"
      "ON any RETURNS 0 TO 1\n"
      "  IF EXISTS i IN dirs: free(i) = 1 THEN RETURN(1);\n"
      "END any");
  Interpreter interp(p);
  const CompiledRuleBase c = compile_rule_base(p, p.rule_base("any"), interp);
  ASSERT_EQ(c.axes().size(), 1u);
  EXPECT_EQ(c.axes()[0].kind, FeatureAxis::Kind::Atom);
  EXPECT_EQ(c.table_entries(), 2u);
}

TEST(Compiler, TableBudgetEnforced) {
  const Program p = parse_program(
      "INPUT a IN 0 TO 3\nINPUT b IN 0 TO 3\nINPUT c IN 0 TO 3\n"
      "ON big IF a = b AND b = c THEN !hit(); END big");
  Interpreter interp(p);
  CompileOptions opts;
  opts.max_entries = 8;  // 4*4*4 = 64 > 8
  EXPECT_THROW(compile_rule_base(p, p.rule_base("big"), interp, opts),
               CompileError);
}

TEST(Compiler, RandomisedDifferentialAgainstInterpreter) {
  // A rule base mixing direct axes, atom axes, arrays and events; compare
  // table execution vs AST interpretation over random states.
  const char* src = R"(
    CONSTANT dirs = 4
    CONSTANT st = {ok, warn, bad}
    VARIABLE mode IN st
    VARIABLE count IN 0 TO 15
    VARIABLE tag[dirs] IN 0 TO 3
    INPUT sensor(dirs) IN 0 TO 7
    ON step(d IN dirs)
      IF mode = ok AND sensor(d) > 5 THEN mode <- warn, count <- count + 1;
      IF mode = warn AND sensor(d) > 5 AND count >= 3 THEN
        mode <- bad, FORALL i IN dirs: tag(i) <- 3, !alarm(d);
      IF mode = warn AND sensor(d) <= 5 THEN mode <- ok;
      IF mode = bad AND count >= 1 THEN count <- count - 1;
    END step
  )";
  const Program p = parse_program(src);
  Rng rng(777);
  EventManager direct(p, ExecMode::Interpret);
  EventManager table(p, ExecMode::Table);
  int sensor_vals[4] = {0, 0, 0, 0};
  const InputFn inputs = [&](const std::string&,
                             const std::vector<Value>& idx) {
    return Value::make_int(sensor_vals[idx[0].as_int()]);
  };
  direct.set_input_provider(inputs);
  table.set_input_provider(inputs);
  for (int iter = 0; iter < 2000; ++iter) {
    for (int& s : sensor_vals) s = static_cast<int>(rng.next_below(8));
    const auto d = static_cast<std::int64_t>(rng.next_below(4));
    const FireResult a = direct.fire("step", {Value::make_int(d)});
    const FireResult b = table.fire("step", {Value::make_int(d)});
    ASSERT_EQ(a.rule_index, b.rule_index) << "iteration " << iter;
    ASSERT_TRUE(direct.env() == table.env()) << "iteration " << iter;
  }
}

TEST(Compiler, FcfbSplitPremiseVsConclusion) {
  const Program p = parse_program(kFigure4);
  Interpreter interp(p);
  const CompiledRuleBase c =
      compile_rule_base(p, p.rule_base("update_state"), interp);
  // Premise FCFBs: the two counter comparisons (zero check + compare const).
  EXPECT_GE(c.premise_fcfbs().total_instances(), 2);
  // Conclusion FCFBs: conditional increments on the two counters.
  EXPECT_GE(c.conclusion_fcfbs().count(FcfbKind::ConditionalIncrement), 2);
  EXPECT_GT(c.decision_delay_units(), 0.0);
}

// ------------------------------------------------------------- event manager
TEST(EventManager, DrainCascades) {
  const Program p = parse_program(
      "VARIABLE n IN 0 TO 10\n"
      "ON tick(k IN 0 TO 10)\n"
      "  IF k > 0 THEN n <- k, !tick(k - 1);\n"
      "END tick");
  EventManager em(p);
  em.post("tick", {Value::make_int(5)});
  const int fired = em.drain();
  EXPECT_EQ(fired, 6);  // tick(5)..tick(0)
  EXPECT_EQ(em.env().get("n").as_int(), 1);
  EXPECT_EQ(em.total_interpretations(), 6);
}

TEST(EventManager, HostHandlerReceivesUnboundEvents) {
  const Program p = parse_program(
      "ON go IF 1 = 1 THEN !send(3), !send(5); END");
  EventManager em(p);
  std::vector<std::int64_t> sent;
  em.set_host_handler([&](const std::string& name,
                          const std::vector<Value>& args) {
    EXPECT_EQ(name, "send");
    sent.push_back(args[0].as_int());
  });
  em.fire("go", {});
  em.drain();
  EXPECT_EQ(sent, (std::vector<std::int64_t>{3, 5}));
}

TEST(EventManager, RunawayCascadeThrows) {
  const Program p = parse_program(
      "ON loop IF 1 = 1 THEN !loop(); END");
  EventManager em(p);
  em.post("loop", {});
  EXPECT_THROW(em.drain(100), ContractViolation);
}

TEST(EventManager, TraceSeesEveryInterpretation) {
  const Program p = parse_program(
      "VARIABLE n IN 0 TO 10\n"
      "ON tick(k IN 0 TO 10)\n"
      "  IF k > 0 THEN n <- k, !tick(k - 1);\n"
      "END tick");
  EventManager em(p);
  std::vector<std::string> lines;
  em.set_trace([&](const RuleBase& rb, const std::vector<Value>& args,
                   const FireResult& r) {
    lines.push_back(EventManager::describe_firing(p, rb, args, r));
  });
  em.fire("tick", {Value::make_int(2)});
  em.drain();
  ASSERT_EQ(lines.size(), 3u);  // tick(2), tick(1), tick(0)
  EXPECT_EQ(lines[0], "tick(2) -> rule #1, !tick(1)");
  EXPECT_EQ(lines[1], "tick(1) -> rule #1, !tick(0)");
  EXPECT_EQ(lines[2], "tick(0) -> no rule applicable");
}

TEST(EventManager, TraceInTableModeToo) {
  const Program p = parse_program(
      "CONSTANT outs = {east, west}\n"
      "ON pick(x IN 0 TO 1) RETURNS outs\n"
      "  IF x = 0 THEN RETURN(east);\n"
      "  IF x = 1 THEN RETURN(west);\n"
      "END pick");
  EventManager em(p, ExecMode::Table);
  std::string last;
  em.set_trace([&](const RuleBase& rb, const std::vector<Value>& args,
                   const FireResult& r) {
    last = EventManager::describe_firing(p, rb, args, r);
  });
  em.fire("pick", {Value::make_int(1)});
  EXPECT_EQ(last, "pick(1) -> rule #2, RETURN west");
}

TEST(EventManager, ResetStateRestoresInitialImage) {
  const Program p = parse_program(
      "VARIABLE n IN 0 TO 10 INIT 2\n"
      "ON bump IF n < 10 THEN n <- n + 1; END");
  EventManager em(p);
  em.fire("bump", {});
  EXPECT_EQ(em.env().get("n").as_int(), 3);
  em.reset_state();
  EXPECT_EQ(em.env().get("n").as_int(), 2);
}

// ----------------------------------------------------------------- hw report
TEST(HwReport, RegistersAndTables) {
  const Program p = parse_program(kFigure4);
  const ProgramReport rep = report_program(p);
  // Registers: number_unsafe (3 bits) + number_faulty (3) + state (3) +
  // neighb_state (3 x 4).
  EXPECT_EQ(rep.total_register_bits, 3 + 3 + 3 + 12);
  EXPECT_EQ(rep.num_registers, 4);
  ASSERT_EQ(rep.rule_bases.size(), 1u);
  EXPECT_EQ(rep.rule_bases[0].entries, 100u);
  EXPECT_FALSE(rep.rule_bases[0].in_nft);
  const std::string text = render_report(rep);
  EXPECT_NE(text.find("update_state"), std::string::npos);
}

TEST(HwReport, NftDiffMarksSharedRuleBases) {
  const Program ft = parse_program(
      "VARIABLE a IN 0 TO 3\nVARIABLE ftonly IN 0 TO 255\n"
      "ON shared IF a = 0 THEN a <- 1; END\n"
      "ON ft_extra IF a = 1 THEN ftonly <- 9; END");
  const Program nft = parse_program(
      "VARIABLE a IN 0 TO 3\n"
      "ON shared IF a = 0 THEN a <- 1; END");
  const ProgramReport rep = report_program(ft, {}, &nft);
  EXPECT_TRUE(rep.rule_bases[0].in_nft);
  EXPECT_FALSE(rep.rule_bases[1].in_nft);
  EXPECT_EQ(rep.ft_register_bits, 8);
}

}  // namespace
}  // namespace flexrouter::rules
