// Tests for the static semantic validator (the "Rule Compiler" front-end
// checks), including validation of the whole shipped corpus.
#include <gtest/gtest.h>

#include "rulebases/corpus.hpp"
#include "ruleengine/parser.hpp"
#include "ruleengine/validate.hpp"

namespace flexrouter::rules {
namespace {

std::vector<Diagnostic> diags_of(const std::string& src) {
  return validate_program(parse_program(src));
}

bool mentions(const std::vector<Diagnostic>& ds, const std::string& text) {
  for (const Diagnostic& d : ds)
    if (d.message.find(text) != std::string::npos) return true;
  return false;
}

TEST(Validate, CleanProgramHasNoDiagnostics) {
  const auto ds = diags_of(
      "CONSTANT dirs = 4\n"
      "CONSTANT states = {a, b}\n"
      "VARIABLE s IN states\n"
      "VARIABLE n IN 0 TO 7\n"
      "VARIABLE arr[dirs] IN 0 TO 3\n"
      "INPUT load(dirs) IN 0 TO 15\n"
      "ON go(d IN dirs) RETURNS 0 TO 7\n"
      "  IF s = a AND load(d) > 3 THEN n <- min(n + 1, 7), RETURN(n);\n"
      "  IF FORALL i IN dirs: load(i) = 0 THEN s <- b,\n"
      "     FORALL i IN dirs: arr(i) <- 0;\n"
      "END go");
  EXPECT_TRUE(ds.empty()) << ds.front().to_string();
}

TEST(Validate, WholeCorpusIsClean) {
  for (const std::string& src : {
           rulebases::nafta_program_source(16, 16),
           rulebases::nara_program_source(16, 16),
           rulebases::route_c_program_source(6, 2),
           rulebases::route_c_nft_program_source(6, 2),
           rulebases::nara_route_source(8, 8),
           rulebases::ecube_route_source(5),
       }) {
    const Program p = parse_program(src);
    const auto ds = validate_program(p);
    EXPECT_TRUE(ds.empty()) << p.name << ": "
                            << (ds.empty() ? "" : ds.front().to_string());
    EXPECT_NO_THROW(require_valid(p));
  }
}

TEST(Validate, NonBooleanPremise) {
  const auto ds = diags_of(
      "VARIABLE n IN 0 TO 7\n"
      "ON go IF n + 1 THEN n <- 0; END");
  EXPECT_TRUE(mentions(ds, "premise is integer"));
}

TEST(Validate, KindMismatchedAssignment) {
  const auto ds = diags_of(
      "CONSTANT states = {a, b}\n"
      "VARIABLE s IN states\n"
      "ON go IF 1 = 1 THEN s <- 3; END");
  EXPECT_TRUE(mentions(ds, "assigning integer to symbol"));
}

TEST(Validate, ArithmeticOnSymbols) {
  const auto ds = diags_of(
      "CONSTANT states = {a, b}\n"
      "VARIABLE s IN states\n"
      "VARIABLE n IN 0 TO 7\n"
      "ON go IF 1 = 1 THEN n <- s + 1; END");
  EXPECT_TRUE(mentions(ds, "arithmetic"));
}

TEST(Validate, ComparingDifferentKinds) {
  const auto ds = diags_of(
      "CONSTANT states = {a, b}\n"
      "VARIABLE s IN states\n"
      "ON go IF s = 3 THEN s <- a; END");
  EXPECT_TRUE(mentions(ds, "comparing symbol with integer"));
}

TEST(Validate, MembershipNeedsSetOnTheRight) {
  const auto ds = diags_of(
      "VARIABLE n IN 0 TO 7\n"
      "ON go IF n IN 5 THEN n <- 0; END");
  EXPECT_TRUE(mentions(ds, "IN right-hand side"));
}

TEST(Validate, ReturnKindAgainstDeclaration) {
  const auto ds = diags_of(
      "CONSTANT states = {a, b}\n"
      "ON go RETURNS 0 TO 3\n"
      "  IF 1 = 1 THEN RETURN(a);\n"
      "END go");
  EXPECT_TRUE(mentions(ds, "RETURN value is symbol"));
}

TEST(Validate, DoubleReturnInOneConclusion) {
  const auto ds = diags_of(
      "ON go RETURNS 0 TO 3\n"
      "  IF 1 = 1 THEN RETURN(1), RETURN(2);\n"
      "END go");
  EXPECT_TRUE(mentions(ds, "multiple RETURN"));
}

TEST(Validate, UnknownNamesAndBadIndexing) {
  const auto ds = diags_of(
      "VARIABLE n IN 0 TO 7\n"
      "VARIABLE arr[4] IN 0 TO 3\n"
      "ON go\n"
      "  IF ghost = 1 THEN n <- 0;\n"
      "  IF n(2) = 1 THEN n <- 0;\n"
      "  IF arr(1, 2) = 1 THEN n <- 0;\n"
      "END go");
  EXPECT_TRUE(mentions(ds, "unknown name 'ghost'"));
  EXPECT_TRUE(mentions(ds, "scalar 'n' is not indexable"));
  EXPECT_TRUE(mentions(ds, "needs exactly one index"));
}

TEST(Validate, InconsistentEventArity) {
  const auto ds = diags_of(
      "VARIABLE n IN 0 TO 7\n"
      "ON go\n"
      "  IF n = 0 THEN !ping(1);\n"
      "  IF n = 1 THEN !ping(1, 2);\n"
      "END go");
  EXPECT_TRUE(mentions(ds, "inconsistent arities"));
}

TEST(Validate, EmitArityMustMatchHandlerParams) {
  const auto ds = diags_of(
      "CONSTANT dirs = 4\n"
      "VARIABLE n IN 0 TO 7\n"
      "ON handler(d IN dirs, x IN 0 TO 7) IF d = 0 THEN n <- x; END\n"
      "ON go IF n = 0 THEN !handler(1); END");
  EXPECT_TRUE(mentions(ds, "declares 2 parameters"));
}

TEST(Validate, BuiltinArity) {
  const auto ds = diags_of(
      "VARIABLE n IN 0 TO 63\n"
      "ON go IF 1 = 1 THEN n <- xor(n); END");
  EXPECT_TRUE(mentions(ds, "builtin 'xor' expects 2"));
}

TEST(Validate, SubbaseWithoutReturnsUsedAsFunction) {
  const auto ds = diags_of(
      "VARIABLE n IN 0 TO 7\n"
      "ON helper IF 1 = 1 THEN n <- 1; END\n"
      "ON go IF helper() = 1 THEN n <- 0; END");
  EXPECT_TRUE(mentions(ds, "no RETURNS declaration"));
}

TEST(Validate, EmptyRuleBaseFlagged) {
  const auto ds = diags_of("ON hollow END");
  EXPECT_TRUE(mentions(ds, "has no rules"));
}

TEST(Validate, RequireValidThrowsWithAllDiagnostics) {
  const Program p = parse_program(
      "VARIABLE n IN 0 TO 7\n"
      "ON go IF ghost = 1 THEN n <- waldo; END");
  try {
    require_valid(p);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ghost"), std::string::npos);
    EXPECT_NE(what.find("waldo"), std::string::npos);
  }
}

}  // namespace
}  // namespace flexrouter::rules
