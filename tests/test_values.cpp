// Property tests for the finite-domain value system: domain enumeration /
// index round-trips (including subset domains), set algebra laws, value
// ordering, and symbol interning.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ruleengine/value.hpp"

namespace flexrouter::rules {
namespace {

TEST(SymTableTest, InternIsIdempotentAndOrdered) {
  SymTable t;
  const SymId a = t.intern("alpha");
  const SymId b = t.intern("beta");
  EXPECT_EQ(t.intern("alpha"), a);
  EXPECT_LT(a, b);  // declaration order = id order (the lattice order)
  EXPECT_EQ(t.name(a), "alpha");
  EXPECT_EQ(t.lookup("beta"), b);
  EXPECT_EQ(t.lookup("gamma"), -1);
  EXPECT_EQ(t.size(), 2u);
}

TEST(DomainTest, IntRangeRoundTrip) {
  const Domain d = Domain::int_range(-3, 12);
  EXPECT_EQ(d.cardinality(), 16u);
  EXPECT_EQ(d.bits(), 4);
  const auto values = d.enumerate();
  ASSERT_EQ(values.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(values[i] == d.value_at(i));
    EXPECT_EQ(d.index_of(values[i]), i);
    EXPECT_TRUE(d.contains(values[i]));
  }
  EXPECT_FALSE(d.contains(Value::make_int(13)));
  EXPECT_FALSE(d.contains(Value::make_int(-4)));
}

TEST(DomainTest, SymbolRoundTripAndRank) {
  SymTable t;
  const Domain d = Domain::symbols(
      {t.intern("safe"), t.intern("ounsafe"), t.intern("sunsafe")});
  EXPECT_EQ(d.cardinality(), 3u);
  EXPECT_EQ(d.bits(), 2);
  EXPECT_EQ(d.sym_rank(t.lookup("safe")), 0);
  EXPECT_EQ(d.sym_rank(t.lookup("sunsafe")), 2);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(d.index_of(d.value_at(i)), i);
  EXPECT_THROW(d.sym_rank(99), ContractViolation);
}

TEST(DomainTest, SetOfDomainEnumeratesPowerSet) {
  SymTable t;
  const Domain elem =
      Domain::symbols({t.intern("a"), t.intern("b"), t.intern("c")});
  const Domain d = Domain::set_of(elem);
  EXPECT_EQ(d.cardinality(), 8u);
  EXPECT_EQ(d.bits(), 3);
  const auto values = d.enumerate();
  ASSERT_EQ(values.size(), 8u);
  // index_of must invert value_at over the whole power set.
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(d.index_of(values[i]), i);
  // The empty set and the full set are both members.
  EXPECT_TRUE(values[0].as_set().empty());
  EXPECT_EQ(values[7].as_set().size(), 3u);
  // Nested sets are rejected.
  EXPECT_THROW(Domain::set_of(d), ContractViolation);
}

TEST(DomainTest, BooleanShorthand) {
  const Domain d = Domain::boolean();
  EXPECT_EQ(d.cardinality(), 2u);
  EXPECT_EQ(d.bits(), 1);
  EXPECT_TRUE(d.contains(Value::make_bool(true)));
}

TEST(SetValueTest, AlgebraLaws) {
  auto mkset = [](std::initializer_list<int> xs) {
    std::vector<Value> v;
    for (int x : xs) v.push_back(Value::make_int(x));
    return SetValue(std::move(v));
  };
  const SetValue a = mkset({1, 2, 3});
  const SetValue b = mkset({2, 3, 4});
  EXPECT_EQ(a.set_union(b).size(), 4u);
  EXPECT_EQ(a.set_intersect(b).size(), 2u);
  EXPECT_EQ(a.set_minus(b).size(), 1u);
  EXPECT_TRUE(a.set_minus(b).contains(Value::make_int(1)));
  // Commutativity / idempotence.
  EXPECT_TRUE(a.set_union(b) == b.set_union(a));
  EXPECT_TRUE(a.set_intersect(b) == b.set_intersect(a));
  EXPECT_TRUE(a.set_union(a) == a);
  EXPECT_TRUE(a.set_intersect(a) == a);
  // Absorption: a ∪ (a ∩ b) == a.
  EXPECT_TRUE(a.set_union(a.set_intersect(b)) == a);
  // Duplicates collapse on construction.
  EXPECT_EQ(mkset({5, 5, 5}).size(), 1u);
}

TEST(SetValueTest, InsertKeepsCanonicalForm) {
  SetValue s;
  s.insert(Value::make_int(3));
  s.insert(Value::make_int(1));
  s.insert(Value::make_int(3));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.elements()[0] == Value::make_int(1));  // sorted
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  SymTable t;
  std::vector<Value> vals = {
      Value::make_int(-5), Value::make_int(7), Value::make_sym(t.intern("x")),
      Value::make_sym(t.intern("y")),
      Value::make_set(SetValue({Value::make_int(1)})),
      Value::make_set(SetValue{}),
  };
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    rng.shuffle(vals);
    auto sorted = vals;
    std::sort(sorted.begin(), sorted.end(),
              [](const Value& a, const Value& b) { return a < b; });
    // Ints before syms before sets (variant index order).
    EXPECT_TRUE(sorted[0].is_int());
    EXPECT_TRUE(sorted[1].is_int());
    EXPECT_TRUE(sorted[2].is_sym());
    EXPECT_TRUE(sorted[5].is_set());
    // Irreflexivity and antisymmetry spot checks.
    for (const Value& v : vals) EXPECT_FALSE(v < v);
    for (std::size_t i = 0; i < vals.size(); ++i)
      for (std::size_t j = 0; j < vals.size(); ++j)
        if (vals[i] < vals[j]) {
          EXPECT_FALSE(vals[j] < vals[i]);
        }
  }
}

TEST(ValueTest, KindAccessorsEnforced) {
  const Value i = Value::make_int(4);
  const Value s = Value::make_set(SetValue{});
  EXPECT_THROW(i.as_set(), ContractViolation);
  EXPECT_THROW(i.as_sym(), ContractViolation);
  EXPECT_THROW(s.as_int(), ContractViolation);
}

TEST(ValueTest, ToStringForms) {
  SymTable t;
  EXPECT_EQ(Value::make_int(-3).to_string(t), "-3");
  const SymId a = t.intern("east");
  EXPECT_EQ(Value::make_sym(a).to_string(t), "east");
  const Value set = Value::make_set(
      SetValue({Value::make_int(2), Value::make_int(1)}));
  EXPECT_EQ(set.to_string(t), "{1,2}");
}

TEST(DomainTest, RandomisedIndexRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const auto lo = rng.next_in(-50, 50);
    const auto hi = lo + rng.next_in(0, 60);
    const Domain d = Domain::int_range(lo, hi);
    const auto idx = rng.next_below(d.cardinality());
    EXPECT_EQ(d.index_of(d.value_at(idx)), idx);
  }
}

}  // namespace
}  // namespace flexrouter::rules
