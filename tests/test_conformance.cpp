// Conformance suite: every routing algorithm in the repository, on its
// topology, under increasing fault counts, must (a) deliver 100% of
// offered traffic with no deadlock-watchdog trip, and (b) present an
// acyclic channel dependency graph for its deadlock layer (full function
// for algorithms claiming standalone deadlock freedom, escape layer for
// the Duato-style ones). One parameterized test covers the whole matrix.
#include <gtest/gtest.h>

#include "routing/dor_torus.hpp"
#include "routing/cdg.hpp"
#include "routing/negative_hop.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

namespace flexrouter {
namespace {

struct Case {
  std::string topo;    // "mesh", "hypercube", "torus", "mesh3d"
  std::string algo;    // factory name or special
  int link_faults;
  int node_faults;
  bool fault_tolerant;  // whether this combination must tolerate faults

  std::string label() const {
    std::string l = algo + "_" + topo + "_f" +
                    std::to_string(link_faults + node_faults);
    for (char& c : l)
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    return l;
  }
};

std::unique_ptr<Topology> make_topo(const std::string& name) {
  if (name == "mesh") return std::make_unique<Mesh>(std::vector<int>{6, 6});
  if (name == "mesh3d")
    return std::make_unique<Mesh>(std::vector<int>{3, 3, 3});
  if (name == "hypercube") return std::make_unique<Hypercube>(4);
  if (name == "torus") return std::make_unique<Torus>(std::vector<int>{6, 6});
  FR_UNREACHABLE("bad topo");
}

std::unique_ptr<RoutingAlgorithm> make_algo(const std::string& name,
                                            const Topology& topo) {
  if (name == "negative-hop")
    return std::make_unique<NegativeHop>(NegativeHop::vcs_needed_for(topo));
  if (name == "rule-ft-mesh")
    return std::make_unique<RuleDrivenRouting>(
        rulebases::ft_mesh_route_source(6, 6), 3, rules::ExecMode::Table,
        "route", 2);
  return make_algorithm(name);
}

class Conformance : public ::testing::TestWithParam<Case> {};

TEST_P(Conformance, DeliversAndStaysDeadlockFree) {
  const Case& c = GetParam();
  auto topo = make_topo(c.topo);
  auto algo = make_algo(c.algo, *topo);
  Network net(*topo, *algo);

  if (c.link_faults > 0 || c.node_faults > 0) {
    Rng rng(static_cast<std::uint64_t>(c.link_faults) * 131 +
            static_cast<std::uint64_t>(c.node_faults) * 17 + 7);
    net.apply_faults([&](FaultSet& f) {
      inject_random_node_faults(f, c.node_faults, rng);
      inject_random_link_faults(f, c.link_faults, rng);
    });
  }

  // (b) the deadlock layer's CDG is acyclic.
  const bool escape_only = !algo->is_escape_vc(0) || !algo->is_escape_vc(
      algo->num_vcs() - 1);
  const CdgReport rep =
      check_cdg(*topo, net.faults(), *algo, escape_only);
  EXPECT_TRUE(rep.acyclic) << rep.to_string();
  EXPECT_GT(rep.num_channels, 0);

  // (a) traffic delivery.
  UniformTraffic traffic(*topo);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  cfg.seed = 12;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected) << r.to_string();
  EXPECT_GT(r.injected_packets, 0);
  EXPECT_EQ(r.delivered_packets, r.injected_packets) << r.to_string();
  EXPECT_GE(r.min_hops_ratio, 1.0);
}

std::vector<Case> conformance_matrix() {
  std::vector<Case> cases;
  // Fault-free only (non-fault-tolerant algorithms).
  for (const char* a : {"dor-mesh", "nara", "planar-adaptive"})
    cases.push_back({"mesh", a, 0, 0, false});
  cases.push_back({"hypercube", "ecube", 0, 0, false});
  cases.push_back({"hypercube", "route_c_nft", 0, 0, false});
  cases.push_back({"torus", "dor-torus", 0, 0, false});
  cases.push_back({"mesh3d", "planar-adaptive", 0, 0, false});
  // Fault-tolerant algorithms: 0 / few / many faults.
  for (const char* a :
       {"nafta", "updown", "spanning-tree", "negative-hop", "rule-ft-mesh",
        "planar-adaptive-ft"}) {
    cases.push_back({"mesh", a, 0, 0, true});
    cases.push_back({"mesh", a, 4, 0, true});
    cases.push_back({"mesh", a, 8, 1, true});
  }
  cases.push_back({"hypercube", "route_c", 0, 0, true});
  cases.push_back({"hypercube", "route_c", 2, 1, true});
  cases.push_back({"hypercube", "route_c", 4, 2, true});
  cases.push_back({"hypercube", "updown", 3, 1, true});
  cases.push_back({"mesh3d", "planar-adaptive-ft", 6, 1, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, Conformance,
                         ::testing::ValuesIn(conformance_matrix()),
                         [](const auto& info) { return info.param.label(); });

}  // namespace
}  // namespace flexrouter
