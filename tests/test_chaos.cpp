// Chaos-campaign fault physics: repair and re-adoption, flapping links,
// fail-slow degradation, correlated storms, the bit-portable MTBF stream,
// and determinism of all of it under the parallel sweep engine and the
// sharded network (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "routing/dor.hpp"
#include "routing/nafta.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

/// Field-wise SimResult equality including the per-event recovery samples
/// (memcmp on doubles: bit-identity, not approximate equality).
bool results_identical(const SimResult& a, const SimResult& b) {
  if (a.recovery_durations != b.recovery_durations) return false;
  if (a.blocked_chain.size() != b.blocked_chain.size()) return false;
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    if (a.blocked_chain[i].node != b.blocked_chain[i].node ||
        a.blocked_chain[i].port != b.blocked_chain[i].port ||
        a.blocked_chain[i].vc != b.blocked_chain[i].vc ||
        a.blocked_chain[i].packet != b.blocked_chain[i].packet)
      return false;
  }
  return a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         std::memcmp(&a.avg_latency, &b.avg_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.p99_latency, &b.p99_latency, sizeof(double)) == 0 &&
         std::memcmp(&a.throughput, &b.throughput, sizeof(double)) == 0 &&
         std::memcmp(&a.availability, &b.availability, sizeof(double)) == 0 &&
         a.packets_lost == b.packets_lost &&
         a.packets_retransmitted == b.packets_retransmitted &&
         a.packets_unrecoverable == b.packets_unrecoverable &&
         a.fault_events == b.fault_events &&
         a.repair_events == b.repair_events &&
         a.degrade_events == b.degrade_events &&
         a.recovery_events == b.recovery_events &&
         a.recovery_cycles == b.recovery_cycles &&
         a.worms_killed == b.worms_killed &&
         a.reconfig_exchanges == b.reconfig_exchanges &&
         a.deadlock_suspected == b.deadlock_suspected &&
         a.cycles_run == b.cycles_run;
}

void expect_exact_accounting(const SimResult& r) {
  EXPECT_EQ(r.delivered_packets + r.packets_unrecoverable,
            r.injected_packets);
  EXPECT_EQ(r.packets_lost, r.packets_retransmitted + r.packets_unrecoverable);
}

// ----------------------------------------------- bit-portable MTBF stream
TEST(Chaos, DetLogTracksStdLog) {
  // det_log is its own fixed-operation evaluation, but it must still be a
  // *logarithm*: agree with libm to ~1 ulp across magnitudes.
  for (const double x : {1e-12, 0.3, 0.5, 0.9999, 1.0, 1.5, 2.0, 42.0,
                         1e6, 1e300}) {
    const double ref = std::log(x);
    const double got = det_log(x);
    EXPECT_NEAR(got, ref, 4e-16 * (std::abs(ref) + 1.0)) << "x=" << x;
  }
  EXPECT_NEAR(det_log(1.0), 0.0, 3e-16);  // series evaluation: 1 ulp
  EXPECT_THROW(det_log(0.0), ContractViolation);
  EXPECT_THROW(det_log(-1.0), ContractViolation);
}

TEST(Chaos, MtbfStreamExactValuesPinned) {
  // The exact event stream for (8x8 mesh, mtbf=300, horizon=2000, seed=77).
  // These values must never change: they certify that the SplitMix64 +
  // det_log inverse-CDF draw is bit-identical across platforms and
  // standard libraries. If this test fails, the RNG or det_log changed and
  // every seeded chaos campaign silently re-rolled.
  Mesh m = Mesh::two_d(8, 8);
  FaultSchedule s;
  s.add_random_link_faults(m, 300.0, 2000, 77);
  const struct {
    Cycle at;
    NodeId node;
    PortId port;
  } expected[] = {{145, 29, 0},  {383, 11, 2},  {857, 24, 2},
                  {1549, 26, 0}, {1707, 38, 2}, {1868, 23, 2}};
  ASSERT_EQ(s.events().size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s.events()[i].at, expected[i].at) << i;
    EXPECT_EQ(s.events()[i].node, expected[i].node) << i;
    EXPECT_EQ(s.events()[i].port, expected[i].port) << i;
    EXPECT_EQ(s.events()[i].kind, FaultEvent::Kind::LinkFault) << i;
  }
}

// ------------------------------------------------------ correlated storms
TEST(Chaos, RegionStormKillsExactRectangle) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSchedule s;
  const int killed = s.add_region_storm(m, 100, {1, 1}, {2, 2});
  EXPECT_EQ(killed, 4);
  ASSERT_EQ(s.events().size(), 4u);
  std::vector<NodeId> want = {m.at(1, 1), m.at(2, 1), m.at(1, 2), m.at(2, 2)};
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.events()[i].kind, FaultEvent::Kind::NodeFault);
    EXPECT_EQ(s.events()[i].at, 100);
    EXPECT_EQ(s.events()[i].node, want[i]);  // ascending node order
  }
  // Contract errors: wrong dimensionality, inverted corners, out of range,
  // non-grid topology.
  EXPECT_THROW(s.add_region_storm(m, 0, {1}, {2}), ContractViolation);
  EXPECT_THROW(s.add_region_storm(m, 0, {2, 2}, {1, 1}), ContractViolation);
  EXPECT_THROW(s.add_region_storm(m, 0, {0, 0}, {4, 0}), ContractViolation);
  Hypercube h(3);
  EXPECT_THROW(s.add_region_storm(h, 0, {0, 0}, {1, 1}), ContractViolation);
}

TEST(Chaos, SubcubeStormKillsMatchingAddresses) {
  Hypercube h(4);
  FaultSchedule s;
  // Fix the low two address bits to 01: the 2-subcube {1, 5, 9, 13}.
  const int killed = s.add_subcube_storm(h, 50, 0b0011, 0b0001);
  EXPECT_EQ(killed, 4);
  ASSERT_EQ(s.events().size(), 4u);
  const NodeId want[] = {1, 5, 9, 13};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.events()[i].kind, FaultEvent::Kind::NodeFault);
    EXPECT_EQ(s.events()[i].node, want[i]);
  }
  EXPECT_THROW(s.add_subcube_storm(h, 0, 0xFF, 0), ContractViolation);
  Mesh m = Mesh::two_d(4, 4);
  EXPECT_THROW(s.add_subcube_storm(m, 0, 1, 1), ContractViolation);
}

// -------------------------------------------- fail-slow FaultSet dimension
TEST(Chaos, DegradeDimensionIsOrthogonalToFaults) {
  Mesh m = Mesh::two_d(4, 4);
  FaultSet f(m);
  const std::uint64_t epoch = f.epoch();
  f.degrade_link(m.at(1, 1), port_of(Compass::East), 4);
  // Degradation changes no routing-visible state: the link stays usable
  // and the epoch (decision-cache key) does not move.
  EXPECT_EQ(f.epoch(), epoch);
  EXPECT_TRUE(f.link_usable(m.at(1, 1), port_of(Compass::East)));
  EXPECT_EQ(f.link_degrade_factor(m.at(1, 1), port_of(Compass::East)), 4);
  // Both directions are one channel: the reverse port reports it too.
  EXPECT_EQ(f.link_degrade_factor(m.at(2, 1), port_of(Compass::West)), 4);
  ASSERT_EQ(f.degraded_links().size(), 1u);
  EXPECT_EQ(f.degraded_links()[0].second, 4);
  // Factor 1 restores full speed and erases the entry.
  f.degrade_link(m.at(1, 1), port_of(Compass::East), 1);
  EXPECT_EQ(f.link_degrade_factor(m.at(1, 1), port_of(Compass::East)), 1);
  EXPECT_TRUE(f.degraded_links().empty());
  EXPECT_EQ(f.epoch(), epoch);
  EXPECT_THROW(f.degrade_link(m.at(0, 0), port_of(Compass::East), 0),
               ContractViolation);
}

// --------------------------------------------------- repair + re-adoption
TEST(Chaos, RepairPathTrafficReroutesThenReadopts) {
  // Phase A: the channel dies mid-run, NAFTA reroutes the survivors.
  // Phase B: the channel repairs and must carry flits again — measured on
  // the link's own information unit, which only this channel increments.
  Mesh m = Mesh::two_d(4, 4);
  Nafta algo;
  Network net(m, algo);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.06;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1200;
  cfg.seed = 5;
  const NodeId u = m.at(1, 1);
  const PortId east = port_of(Compass::East);
  FaultSchedule schedule;
  schedule.fail_link_at(600, u, east);
  schedule.repair_link_at(2200, u, east);  // fires during phase B
  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);

  const SimResult ra = sim.run();
  EXPECT_FALSE(ra.deadlock_suspected);
  EXPECT_EQ(ra.fault_events, 1);
  EXPECT_GT(ra.delivered_packets, 0);  // traffic rerouted around the cut
  expect_exact_accounting(ra);
  ASSERT_TRUE(sim.quiesce());
  // Snapshot the channel's lifetime flit count before re-adoption
  // (link_utilization with elapsed=1 reports raw flit totals).
  double flits_before = -1.0;
  for (const Network::LinkLoad& l : net.link_utilization(1)) {
    if (l.from == u && l.port == east) flits_before = l.utilization;
  }
  ASSERT_GE(flits_before, 0.0);

  const SimResult rb = sim.run();
  EXPECT_FALSE(rb.deadlock_suspected);
  EXPECT_EQ(ra.repair_events + rb.repair_events, 1);
  EXPECT_EQ(ra.recovery_events + rb.recovery_events, 2);
  EXPECT_EQ(static_cast<int>(ra.recovery_durations.size() +
                             rb.recovery_durations.size()),
            ra.recovery_events + rb.recovery_events);
  expect_exact_accounting(rb);

  // The repaired channel carried traffic again.
  double flits_after = -1.0;
  for (const Network::LinkLoad& l : net.link_utilization(1)) {
    if (l.from == u && l.port == east) flits_after = l.utilization;
  }
  EXPECT_GT(flits_after, flits_before);

  // The fault is fully healed history: FaultSet clean, hardware rejoined.
  ASSERT_TRUE(sim.quiesce());
  EXPECT_TRUE(net.faults().fault_free());
  EXPECT_TRUE(net.faults().link_usable(u, east));
  EXPECT_FALSE(net.recovery_pending());
  EXPECT_EQ(net.packet_store().live_count(), 0u);
}

TEST(Chaos, RepairOfHealthyResourceIsANoOp) {
  Mesh m = Mesh::two_d(4, 4);
  Nafta algo;
  Network net(m, algo);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 600;
  cfg.seed = 8;
  FaultSchedule schedule;
  schedule.repair_link_at(300, m.at(1, 1), port_of(Compass::East));
  schedule.repair_node_at(400, m.at(2, 2));
  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult r = sim.run();
  // Nothing was dead, so nothing queued and no diagnosis opened.
  EXPECT_EQ(r.repair_events, 0);
  EXPECT_EQ(r.recovery_events, 0);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  expect_exact_accounting(r);
}

TEST(Chaos, NodeRepairRestoresEndpointService) {
  Mesh m = Mesh::two_d(4, 4);
  Nafta algo;
  Network net(m, algo);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 2400;
  cfg.seed = 21;
  const NodeId victim = m.at(1, 2);
  FaultSchedule schedule;
  schedule.fail_node_at(600, victim);
  schedule.repair_node_at(1400, victim);
  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult r = sim.run();

  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.fault_events, 1);
  EXPECT_EQ(r.repair_events, 1);
  expect_exact_accounting(r);
  // The node delivered traffic again after its repair fired.
  bool served_after_repair = false;
  for (PacketId id = 0; id < net.packets_created(); ++id) {
    const PacketRecord& rec = net.record(id);
    if (rec.done() && rec.delivered >= 1400 &&
        (rec.src == victim || rec.dest == victim))
      served_after_repair = true;
  }
  EXPECT_TRUE(served_after_repair);
  ASSERT_TRUE(sim.quiesce());
  EXPECT_TRUE(net.faults().fault_free());
  EXPECT_FALSE(net.node_live_killed(victim));
}

// ---------------------------------------------------------- fail-slow link
TEST(Chaos, FailSlowDegradesThroughputWithoutWatchdog) {
  // Throttle every channel crossing the mesh's vertical middle cut to 1/8
  // bandwidth: half of uniform traffic crosses the cut, so the bisection
  // becomes the bottleneck and aggregate throughput must drop.
  const auto run_mesh = [](int degrade_factor) {
    Mesh m = Mesh::two_d(4, 4);
    DimensionOrderMesh dor;
    Network net(m, dor);
    UniformTraffic traffic(m);
    SimConfig cfg;
    cfg.injection_rate = 0.20;
    cfg.packet_length = 4;
    cfg.warmup_cycles = 300;
    cfg.measure_cycles = 1500;
    cfg.seed = 12;
    Simulator sim(net, traffic, cfg);
    FaultSchedule schedule;
    if (degrade_factor > 1) {
      for (int y = 0; y < 4; ++y)
        schedule.degrade_link_at(0, m.at(1, y), port_of(Compass::East),
                                 degrade_factor);
      sim.set_fault_schedule(schedule);
    }
    return sim.run();
  };
  const SimResult fast = run_mesh(1);
  const SimResult slow = run_mesh(8);
  EXPECT_FALSE(slow.deadlock_suspected);
  EXPECT_EQ(slow.degrade_events, 4);
  EXPECT_EQ(slow.fault_events, 0);
  // Fail-slow needs no diagnosis: availability stays perfect, no recovery.
  EXPECT_EQ(slow.recovery_events, 0);
  EXPECT_DOUBLE_EQ(slow.availability, 1.0);
  expect_exact_accounting(slow);
  // The harness drains to completion, so offered == delivered and the
  // degradation shows up as queueing: latency balloons behind the
  // throttled cut and the run needs far longer to drain the backlog.
  EXPECT_GT(slow.avg_latency, fast.avg_latency * 2.0);
  EXPECT_GT(slow.p99_latency, fast.p99_latency * 2.0);
  EXPECT_GT(slow.cycles_run, fast.cycles_run);
  EXPECT_GT(slow.throughput, 0.0);
}

TEST(Chaos, FailSlowVisibleToLoadMeasurement) {
  Mesh m = Mesh::two_d(4, 4);
  Nafta algo;
  Network net(m, algo);
  net.degrade_link_live(m.at(1, 1), port_of(Compass::East), 6);
  const auto loads = net.link_utilization(100);
  int seen = 0;
  for (const Network::LinkLoad& l : loads) {
    if (l.degrade == 6) {
      ++seen;
    } else {
      EXPECT_EQ(l.degrade, 1);
    }
  }
  EXPECT_EQ(seen, 2);  // both directions of the one degraded channel
  EXPECT_EQ(net.faults().link_degrade_factor(m.at(1, 1),
                                             port_of(Compass::East)),
            6);
}

// ------------------------------------------------------------ flapping soak
TEST(Chaos, FlappingSoakSweepAndShardBitIdentity) {
  // A flapping channel drives repeated kill -> repair -> kill transitions
  // (some arriving while the previous diagnosis is still draining, which
  // exercises the ordered mutation replay). The whole story must be
  // bit-identical across sweep thread counts AND across network shard
  // counts; the TSan CI job runs this test with the shard pool armed.
  const auto make_points = [](int shards) {
    std::vector<SweepPoint> points;
    for (const double rate : {0.04, 0.07}) {
      points.push_back({[rate, shards](std::uint64_t seed) {
        Mesh m = Mesh::two_d(8, 8);
        Nafta algo;
        UniformTraffic tr(m);
        NetworkConfig ncfg;
        ncfg.shards = shards;
        Network net(m, algo, ncfg);
        SimConfig cfg;
        cfg.injection_rate = rate;
        cfg.packet_length = 4;
        cfg.warmup_cycles = 200;
        cfg.measure_cycles = 1400;
        cfg.seed = seed;
        FaultSchedule schedule;
        schedule.add_flapping_link(m.at(3, 3), port_of(Compass::East), 400,
                                   1500, 120.0, 260.0, seed ^ 0xf1a9);
        Simulator sim(net, tr, cfg);
        sim.set_fault_schedule(schedule);
        return sim.run();
      }});
    }
    return points;
  };

  std::vector<SimResult> reference;
  for (const int shards : {1, 4}) {
    for (const int threads : {1, 2, 4, 8}) {
      SweepOptions opts;
      opts.num_threads = threads;
      opts.base_seed = 23;
      SweepRunner runner(opts);
      const std::vector<SimResult> results = runner.run(make_points(shards));
      if (shards == 1 && threads == 1) {
        reference = results;
        for (const SimResult& r : results) {
          EXPECT_FALSE(r.deadlock_suspected);
          EXPECT_GT(r.fault_events, 0);
          EXPECT_GT(r.repair_events, 0);
          EXPECT_EQ(static_cast<int>(r.recovery_durations.size()),
                    r.recovery_events);
          expect_exact_accounting(r);
        }
        continue;
      }
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_TRUE(results_identical(results[i], reference[i]))
            << "point " << i << " diverged at shards=" << shards
            << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace flexrouter
