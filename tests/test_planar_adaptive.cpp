// Tests for planar-adaptive routing [ChK92] on k-ary n-dimensional meshes:
// plane confinement, constant VC count, CDG acyclicity (fault-free full
// function; escape layer under faults), delivery on 3-D meshes, and the
// decision-step accounting of the fault-tolerant variant.
#include <gtest/gtest.h>

#include <set>

#include "routing/cdg.hpp"
#include "routing/planar_adaptive.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace flexrouter {
namespace {

RouteContext ctx_of(const Mesh& m, NodeId node, NodeId dest) {
  RouteContext ctx;
  ctx.node = node;
  ctx.dest = dest;
  ctx.src = node;
  ctx.in_port = m.degree();
  ctx.in_vc = 0;
  return ctx;
}

TEST(PlanarAdaptive, ActivePlaneIsFirstUncorrectedDimension) {
  Mesh m({4, 4, 4});
  FaultSet f(m);
  PlanarAdaptive pa(false);
  pa.attach(m, f);
  EXPECT_EQ(pa.active_plane(m.node_at({0, 0, 0}), m.node_at({1, 2, 3})), 0);
  EXPECT_EQ(pa.active_plane(m.node_at({1, 0, 0}), m.node_at({1, 2, 3})), 1);
  // Only the last dimension left: capped at plane n-2.
  EXPECT_EQ(pa.active_plane(m.node_at({1, 2, 0}), m.node_at({1, 2, 3})), 1);
  EXPECT_EQ(pa.active_plane(m.node_at({1, 2, 3}), m.node_at({1, 2, 3})), -1);
}

TEST(PlanarAdaptive, CandidatesConfinedToActivePlane) {
  Mesh m({4, 4, 4, 3});
  FaultSet f(m);
  PlanarAdaptive pa(false);
  pa.attach(m, f);
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const auto s = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(m.num_nodes())));
    const auto t = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(m.num_nodes())));
    if (s == t) continue;
    const int plane = pa.active_plane(s, t);
    const auto d = pa.route(ctx_of(m, s, t));
    ASSERT_FALSE(d.candidates.empty());
    for (const RouteCandidate& c : d.candidates) {
      const int dim = Mesh::dim_of_port(c.port);
      EXPECT_TRUE(dim == plane || dim == plane + 1)
          << "move in dim " << dim << " while plane " << plane << " active";
      // Role discipline: y-role moves on VC 0/1, x-role on VC 2/3.
      if (dim == plane + 1) EXPECT_LE(c.vc, 1);
      else EXPECT_GE(c.vc, 2);
    }
  }
}

TEST(PlanarAdaptive, ConstantFourVcsRegardlessOfDimensions) {
  PlanarAdaptive nft(false);
  EXPECT_EQ(nft.num_vcs(), 4);  // the planar-adaptive selling point
  PlanarAdaptive ft(true);
  EXPECT_EQ(ft.num_vcs(), 5);   // + 1 escape for fault tolerance
}

TEST(PlanarAdaptive, FullCdgAcyclicFaultFree2DAnd3D) {
  {
    Mesh m = Mesh::two_d(5, 5);
    FaultSet f(m);
    PlanarAdaptive pa(false);
    pa.attach(m, f);
    const CdgReport rep = check_full_cdg(m, f, pa);
    EXPECT_TRUE(rep.acyclic) << "2D: " << rep.to_string();
  }
  {
    Mesh m({3, 3, 3});
    FaultSet f(m);
    PlanarAdaptive pa(false);
    pa.attach(m, f);
    const CdgReport rep = check_full_cdg(m, f, pa);
    EXPECT_TRUE(rep.acyclic) << "3D: " << rep.to_string();
  }
}

TEST(PlanarAdaptive, EscapeCdgAcyclicUnderFaults) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    Mesh m({3, 3, 3});
    FaultSet f(m);
    PlanarAdaptive pa(true);
    pa.attach(m, f);
    inject_random_link_faults(f, 2 * trial, rng);
    pa.reconfigure();
    const CdgReport rep = check_escape_cdg(m, f, pa);
    EXPECT_TRUE(rep.acyclic) << "trial " << trial << ": " << rep.to_string();
  }
}

TEST(PlanarAdaptive, StepsAccounting) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  PlanarAdaptive pa(true);
  pa.attach(m, f);
  EXPECT_EQ(pa.route(ctx_of(m, m.at(0, 0), m.at(3, 3))).steps, 1);
  f.fail_link(m.at(4, 4), port_of(Compass::East));
  pa.reconfigure();
  EXPECT_EQ(pa.route(ctx_of(m, m.at(0, 0), m.at(3, 0))).steps, 2);
  // Block the only minimal in-plane direction: misroute, 3 steps.
  f.fail_link(m.at(0, 0), port_of(Compass::East));
  pa.reconfigure();
  const auto d = pa.route(ctx_of(m, m.at(0, 0), m.at(2, 0)));
  EXPECT_EQ(d.steps, 3);
  EXPECT_TRUE(d.mark_misrouted);
  EXPECT_FALSE(d.candidates.empty());
}

TEST(PlanarAdaptive, Delivers3DTrafficFaultFree) {
  Mesh m({4, 4, 4});
  PlanarAdaptive pa(false);
  Network net(m, pa);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.06;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 1.0);
}

TEST(PlanarAdaptive, Delivers3DTrafficUnderFaults) {
  Mesh m({4, 4, 4});
  PlanarAdaptive pa(true);
  Network net(m, pa);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  Rng rng(23);
  net.apply_faults([&](FaultSet& f) {
    inject_random_link_faults(f, 8, rng);
    inject_random_node_faults(f, 1, rng);
  });
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_GE(r.avg_decision_steps, 2.0);
  EXPECT_LE(r.avg_decision_steps, 3.0);
}

TEST(PlanarAdaptive, RejectsOneDimensionalMesh) {
  Mesh m({8, 2});
  FaultSet f(m);
  PlanarAdaptive pa(false);
  EXPECT_NO_THROW(pa.attach(m, f));  // 2-D is the minimum
}

}  // namespace
}  // namespace flexrouter
