// PacketStore slot-recycling tests: unit-level free-list behaviour plus a
// network soak that forces heavy slot reuse and asserts no header ever
// aliases another packet's (satellite of the packet-table data plane).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "sim/fault_injector.hpp"
#include "sim/network.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

Header sealed(PacketId id, NodeId src, NodeId dest, int len) {
  Header h;
  h.packet = id;
  h.src = src;
  h.dest = dest;
  h.length = len;
  MessageInterface::seal(h);
  return h;
}

TEST(PacketStore, AllocReleaseReuseKeepsSlotIdentity) {
  PacketStore store;
  const PacketSlot a = store.alloc(sealed(1, 0, 5, 4));
  const PacketSlot b = store.alloc(sealed(2, 1, 6, 2));
  EXPECT_NE(a, b);
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.header(a).packet, 1);
  EXPECT_EQ(store.header(b).packet, 2);

  store.release(a);
  EXPECT_EQ(store.live_count(), 1u);
  // The freed slot is recycled for the next packet; the slab does not grow.
  const PacketSlot c = store.alloc(sealed(3, 2, 7, 8));
  EXPECT_EQ(c, a);
  EXPECT_EQ(store.slots(), 2u);
  // No aliasing: the recycled slot holds only the new packet's header.
  EXPECT_EQ(store.header(c).packet, 3);
  EXPECT_EQ(store.header(c).length, 8);
  EXPECT_EQ(store.header(b).packet, 2);
}

TEST(PacketStore, ReleasedSlotIsPoisoned) {
  PacketStore store;
  const PacketSlot a = store.alloc(sealed(9, 0, 3, 4));
  store.release(a);
  EXPECT_FALSE(store.live(a));
  EXPECT_THROW(store.header(a), ContractViolation);
  EXPECT_THROW(store.release(a), ContractViolation);  // double release
  EXPECT_THROW(store.header(12345u), ContractViolation);  // out of range
}

TEST(PacketStore, FreeListIsLifoAcrossManyCycles) {
  PacketStore store;
  std::vector<PacketSlot> slots;
  for (int i = 0; i < 8; ++i)
    slots.push_back(store.alloc(sealed(i, 0, 1, 1)));
  for (int round = 0; round < 100; ++round) {
    for (const PacketSlot s : slots) store.release(s);
    std::set<PacketSlot> reused;
    for (int i = 0; i < 8; ++i) {
      const PacketSlot s = store.alloc(sealed(100 + i, 0, 1, 1));
      EXPECT_LT(s, 8u);  // always recycled, never grown
      reused.insert(s);
    }
    EXPECT_EQ(reused.size(), 8u);  // no slot handed out twice
    slots.assign(reused.begin(), reused.end());
  }
  EXPECT_EQ(store.slots(), 8u);
}

// Soak: many waves of traffic through a faulted network force the free
// list to recycle slots thousands of times. After each wave the store must
// be empty, every record must carry its own packet's data (no header
// aliasing through a stale slot), and the slab must stay near the peak
// in-flight count — far below the total packet count.
TEST(PacketStoreSoak, NetworkRecyclingNoAliasing) {
  Mesh m = Mesh::two_d(6, 6);
  Nafta nafta;
  Network net(m, nafta);
  Rng frng(5);
  net.apply_faults([&](FaultSet& f) { inject_random_link_faults(f, 4, frng); });

  Rng rng(2024);
  Cycle now = 0;
  std::int64_t total_packets = 0;
  struct Expect {
    NodeId src, dest;
    int length;
  };
  std::vector<Expect> expect;
  for (int wave = 0; wave < 30; ++wave) {
    expect.clear();
    const int burst = 40 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < burst; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(36));
      auto d = static_cast<NodeId>(rng.next_below(36));
      if (d == s) d = (d + 1) % 36;
      const int len = 1 + static_cast<int>(rng.next_below(8));
      const PacketId id = net.send(s, d, len, now);
      EXPECT_EQ(id, total_packets + i);
      expect.push_back({s, d, len});
    }
    for (int c = 0; c < 30000 && !net.idle(); ++c) net.step(now++);
    ASSERT_TRUE(net.idle());
    // Drained: every slot released back to the free list.
    EXPECT_EQ(net.packet_store().live_count(), 0u);
    // Per-record integrity: each delivered record matches what was sent —
    // a header aliased through a recycled slot would scramble these.
    for (int i = 0; i < burst; ++i) {
      const PacketRecord& rec = net.record(total_packets + i);
      EXPECT_TRUE(rec.done());
      EXPECT_EQ(rec.src, expect[static_cast<std::size_t>(i)].src);
      EXPECT_EQ(rec.dest, expect[static_cast<std::size_t>(i)].dest);
      EXPECT_EQ(rec.length, expect[static_cast<std::size_t>(i)].length);
      EXPECT_GE(rec.hops, 0);
      EXPECT_GE(rec.delivered, rec.injected);
    }
    total_packets += burst;
  }
  // Slot recycling worked: the slab peaked at the in-flight high-water
  // mark, not the total packet count.
  EXPECT_GT(total_packets, 1000);
  EXPECT_LT(net.packet_store().slots(), 200u);
}

}  // namespace
}  // namespace flexrouter
