// Integration tests: full networks under traffic, fault injection with the
// quiescent reconfiguration protocol, decision-step accounting (the paper's
// E3 numbers), and traffic pattern properties.
#include <gtest/gtest.h>

#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "routing/route_c.hpp"
#include "routing/spanning_tree.hpp"
#include "routing/updown.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {
namespace {

// ---------------------------------------------------------------- traffic
TEST(Traffic, UniformNeverSelfAddresses) {
  Mesh m = Mesh::two_d(4, 4);
  UniformTraffic t(m);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    const NodeId d = t.dest(s, rng);
    EXPECT_NE(d, s);
    EXPECT_TRUE(m.valid_node(d));
  }
}

TEST(Traffic, TransposeAndTornado) {
  Mesh m = Mesh::two_d(8, 8);
  TransposeTraffic tr(m);
  Rng rng(2);
  EXPECT_EQ(tr.dest(m.at(2, 5), rng), m.at(5, 2));
  TornadoTraffic to(m);
  EXPECT_EQ(to.dest(m.at(1, 1), rng), m.at(5, 5));
}

TEST(Traffic, BitComplement) {
  Hypercube h(4);
  BitComplementTraffic t(h);
  Rng rng(3);
  EXPECT_EQ(t.dest(0b0101, rng), 0b1010);
}

TEST(Traffic, PermutationIsFixedPointFree) {
  Mesh m = Mesh::two_d(5, 5);
  PermutationTraffic t(m, 42);
  Rng rng(4);
  std::set<NodeId> dests;
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    const NodeId d = t.dest(s, rng);
    EXPECT_NE(d, s);
    dests.insert(d);
  }
  EXPECT_EQ(dests.size(), static_cast<std::size_t>(m.num_nodes()));
}

TEST(Traffic, HotspotFraction) {
  Mesh m = Mesh::two_d(4, 4);
  HotspotTraffic t(m, m.at(2, 2), 0.5);
  Rng rng(5);
  int hot = 0;
  for (int i = 0; i < 4000; ++i)
    hot += t.dest(m.at(0, 0), rng) == m.at(2, 2);
  EXPECT_NEAR(hot / 4000.0, 0.5, 0.06);
}

TEST(Traffic, FactoryKnowsAllPatterns) {
  Mesh m = Mesh::two_d(4, 4);
  for (const char* name :
       {"uniform", "bitcomp", "transpose", "tornado", "hotspot",
        "permutation"})
    EXPECT_NE(make_traffic(name, m), nullptr) << name;
  EXPECT_THROW(make_traffic("nope", m), ContractViolation);
}

// ----------------------------------------------------------- basic network
TEST(NetworkTest, SinglePacketEndToEnd) {
  Mesh m = Mesh::two_d(4, 4);
  Nara nara;
  Network net(m, nara);
  const PacketId id = net.send(m.at(0, 0), m.at(3, 3), 5, 0);
  Cycle t = 0;
  while (t < 200 && !net.record(id).done()) net.step(t++);
  for (int extra = 0; extra < 5; ++extra) net.step(t++);  // drain credits
  const PacketRecord& rec = net.record(id);
  ASSERT_TRUE(rec.done());
  EXPECT_EQ(rec.hops, 6);  // minimal path
  EXPECT_FALSE(rec.misrouted);
  EXPECT_GE(rec.delivered - rec.created, 6);  // at least one cycle per hop
  EXPECT_TRUE(net.idle());
}

TEST(NetworkTest, RejectsFaultyEndpoints) {
  Mesh m = Mesh::two_d(4, 4);
  UpDownRouting algo;
  Network net(m, algo);
  net.apply_faults([&](FaultSet& f) { f.fail_node(m.at(1, 1)); });
  EXPECT_THROW(net.send(m.at(1, 1), m.at(0, 0), 1, 0), ContractViolation);
  EXPECT_THROW(net.send(m.at(0, 0), m.at(1, 1), 1, 0), ContractViolation);
  EXPECT_THROW(net.send(m.at(0, 0), m.at(0, 0), 1, 0), ContractViolation);
}

TEST(NetworkTest, ApplyFaultsDemandsQuiescence) {
  Mesh m = Mesh::two_d(4, 4);
  Nara nara;
  Network net(m, nara);
  net.send(m.at(0, 0), m.at(3, 3), 5, 0);
  EXPECT_THROW(net.apply_faults([](FaultSet&) {}), ContractViolation);
}

TEST(NetworkTest, ManyPacketsAllDeliveredNara) {
  Mesh m = Mesh::two_d(6, 6);
  Nara nara;
  Network net(m, nara);
  Rng rng(7);
  std::vector<PacketId> ids;
  Cycle now = 0;
  for (int i = 0; i < 300; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(36));
    auto d = static_cast<NodeId>(rng.next_below(36));
    if (d == s) d = (d + 1) % 36;
    ids.push_back(net.send(s, d, 4, now));
  }
  for (Cycle t = 0; t < 20000 && !net.idle(); ++t) net.step(now++);
  for (const PacketId id : ids) {
    EXPECT_TRUE(net.record(id).done()) << "packet " << id << " stuck";
    EXPECT_GE(net.record(id).hops,
              m.distance(net.record(id).src, net.record(id).dest));
  }
}

// --------------------------------------------------------------- simulator
TEST(SimulatorTest, NaraUniformLowLoad) {
  Mesh m = Mesh::two_d(6, 6);
  Nara nara;
  Network net(m, nara);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 700;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_GT(r.injected_packets, 100);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_GT(r.avg_latency, 5.0);
  EXPECT_LT(r.avg_latency, 100.0);
  // Minimal routing: hops == topological distance exactly.
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 1.0);
  EXPECT_EQ(r.misrouted_fraction, 0.0);
}

TEST(SimulatorTest, NaftaFaultFreeMatchesNaraSteps) {
  Mesh m = Mesh::two_d(6, 6);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 500;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 1.0);  // paper: 1 step fault-free
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
}

TEST(SimulatorTest, NaftaDeliversUnderFaultsWithMoreSteps) {
  Mesh m = Mesh::two_d(6, 6);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  Simulator sim(net, traffic, cfg);
  Rng rng(13);
  const int exchanges = net.apply_faults([&](FaultSet& f) {
    inject_random_link_faults(f, 6, rng);
  });
  EXPECT_GT(exchanges, 0);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  // paper: between 2 (fault lookup) and 3 (misroute) interpretations.
  EXPECT_GE(r.avg_decision_steps, 2.0);
  EXPECT_LE(r.avg_decision_steps, 3.0);
  // Detours exist but deliveries complete.
  EXPECT_GE(r.min_hops_ratio, 1.0);
}

TEST(SimulatorTest, NaftaSurvivesFigure2Chain) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.03;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  net.apply_faults([&](FaultSet& f) {
    inject_figure2_chain(f, m, 3, 6);  // wall between columns 3 and 4
  });
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_GT(r.misrouted_fraction, 0.0);  // traffic must detour the wall
}

TEST(SimulatorTest, RouteCDeliversUnderNodeFaults) {
  Hypercube h(4);
  RouteC route_c;
  Network net(h, route_c);
  UniformTraffic traffic(h);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  Rng rng(17);
  net.apply_faults([&](FaultSet& f) {
    inject_random_node_faults(f, 2, rng);
    inject_random_link_faults(f, 2, rng);
  });
  EXPECT_FALSE(route_c.totally_unsafe());
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 2.0);  // paper: always two
}

TEST(SimulatorTest, StrippedRouteCFaultFree) {
  Hypercube h(4);
  StrippedRouteC nft;
  Network net(h, nft);
  UniformTraffic traffic(h);
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 500;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 1.0);  // paper: one interpretation
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
}

TEST(SimulatorTest, SpanningTreePathsAreLong) {
  // Section 2: tree routing almost never uses minimal paths.
  Mesh m = Mesh::two_d(6, 6);
  SpanningTreeRouting st;
  Network net(m, st);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_GT(r.min_hops_ratio, 1.2);  // clearly non-minimal on average
}

TEST(SimulatorTest, RepeatedFaultEpochs) {
  // Inject faults in several rounds with quiesce between them: the network
  // keeps delivering after every reconfiguration.
  Mesh m = Mesh::two_d(6, 6);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.03;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 300;
  Simulator sim(net, traffic, cfg);
  Rng rng(23);
  for (int round = 0; round < 3; ++round) {
    const SimResult r = sim.run();
    EXPECT_FALSE(r.deadlock_suspected) << "round " << round;
    EXPECT_EQ(r.delivered_packets, r.injected_packets) << "round " << round;
    ASSERT_TRUE(sim.quiesce());
    net.apply_faults([&](FaultSet& f) {
      inject_random_link_faults(f, 2, rng);
    });
  }
}

TEST(SimulatorTest, LinkUtilizationAccounting) {
  Mesh m = Mesh::two_d(4, 4);
  Nara nara;
  Network net(m, nara);
  // A single packet along a known path: exactly its links carry flits.
  const PacketId id = net.send(m.at(0, 0), m.at(3, 0), 5, 0);
  Cycle now = 0;
  while (!net.record(id).done()) net.step(now++);
  const auto loads = net.link_utilization(now);
  double carried = 0;
  int active_links = 0;
  for (const auto& l : loads) {
    carried += l.utilization * static_cast<double>(now);
    active_links += l.utilization > 0 ? 1 : 0;
  }
  EXPECT_EQ(active_links, 3);  // (0,0)->(1,0)->(2,0)->(3,0)
  EXPECT_DOUBLE_EQ(carried, 15.0);  // 5 flits x 3 hops
  const auto [max_u, mean_u] = net.utilization_summary(now);
  EXPECT_GT(max_u, 0.0);
  EXPECT_GT(max_u, mean_u);
}

TEST(SimulatorTest, LatencySplitByMisrouteMark) {
  Mesh m = Mesh::two_d(6, 6);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  Simulator sim(net, traffic, cfg);
  net.apply_faults([&](FaultSet& f) {
    inject_figure2_chain(f, m, 2, 4);
  });
  const SimResult r = sim.run();
  ASSERT_GT(r.misrouted_fraction, 0.0);
  ASSERT_LT(r.misrouted_fraction, 1.0);
  EXPECT_GT(r.avg_latency_misrouted, 0.0);
  EXPECT_GT(r.avg_latency_direct, 0.0);
  // The overall mean must lie between the two class means.
  EXPECT_GE(r.avg_latency,
            std::min(r.avg_latency_misrouted, r.avg_latency_direct));
  EXPECT_LE(r.avg_latency,
            std::max(r.avg_latency_misrouted, r.avg_latency_direct));
  // Misrouted packets pay for their detours.
  EXPECT_GT(r.avg_latency_misrouted, r.avg_latency_direct);
}

TEST(SimulatorTest, MisroutePriorityBoostConfigurable) {
  // Smoke test for the Section 3 fairness hook: boosted misrouted messages
  // still leave a functioning network.
  Mesh m = Mesh::two_d(5, 5);
  Nafta nafta;
  NetworkConfig ncfg;
  ncfg.router.misroute_priority_boost = 4;
  Network net(m, nafta, ncfg);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 400;
  Simulator sim(net, traffic, cfg);
  Rng rng(31);
  net.apply_faults([&](FaultSet& f) {
    inject_random_link_faults(f, 5, rng);
  });
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
}

// ------------------------------------------------- numeric regression
// Exact SimResult values for two pinned scenarios, captured from the
// pre-sweep-engine simulator. The hot-loop overhaul (active-router
// worklist, ring-buffer injection queues, counted drain, single metrics
// pass, exact count-based percentiles) is required to reproduce every
// field bit-for-bit — EXPECT_EQ on doubles here is deliberate.
TEST(SimulatorRegression, FaultyMeshNaftaExactResults) {
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  net.apply_faults([&](FaultSet& f) { inject_figure2_chain(f, m, 3, 5); });
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.06;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 900;
  cfg.seed = 12345;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.injected_packets, 860);
  EXPECT_EQ(r.delivered_packets, 860);
  EXPECT_EQ(r.avg_latency, 62.437209302325584);
  EXPECT_EQ(r.p50_latency, 34.0);
  EXPECT_EQ(r.p99_latency, 523.81999999999994);
  EXPECT_EQ(r.avg_hops, 9.2093023255813975);
  EXPECT_EQ(r.min_hops_ratio, 1.8372285789146259);
  EXPECT_EQ(r.throughput, 0.059722222222222225);
  EXPECT_EQ(r.misrouted_fraction, 0.2069767441860465);
  EXPECT_EQ(r.avg_latency_misrouted, 153.82584269662922);
  EXPECT_EQ(r.avg_latency_direct, 38.585043988269803);
  EXPECT_EQ(r.avg_decision_steps, 2.1247344719177499);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.cycles_run, 1441);
}

TEST(SimulatorRegression, BimodalNaraExactResults) {
  // Fault-free, with the bimodal long-worm mix (exercises the outlier path
  // of the exact percentile structure and the ring-buffer regrow).
  Mesh m = Mesh::two_d(6, 6);
  Nara nara;
  Network net(m, nara);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.10;
  cfg.packet_length = 4;
  cfg.long_packet_length = 16;
  cfg.long_packet_fraction = 0.1;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  cfg.seed = 7;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.injected_packets, 451);
  EXPECT_EQ(r.delivered_packets, 451);
  EXPECT_EQ(r.avg_latency, 20.713968957871398);
  EXPECT_EQ(r.p50_latency, 20.0);
  EXPECT_EQ(r.p99_latency, 47.0);
  EXPECT_EQ(r.avg_hops, 4.1064301552106448);
  EXPECT_EQ(r.min_hops_ratio, 1.0);
  EXPECT_EQ(r.throughput, 0.10907407407407407);
  EXPECT_EQ(r.misrouted_fraction, 0.0);
  EXPECT_EQ(r.avg_latency_misrouted, 0.0);
  EXPECT_EQ(r.avg_latency_direct, 20.713968957871391);
  EXPECT_EQ(r.avg_decision_steps, 1.0);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.cycles_run, 832);
}

TEST(SimulatorRegression, FaultyHypercubeRouteCExactResults) {
  // Third rule base pinned (ROUTE_C on a faulted hypercube), so all three
  // of NAFTA / NARA / ROUTE_C have an exact-value scenario. Captured from
  // the pre-packet-store data plane; the slab-store refactor must
  // reproduce every field bit-for-bit.
  Hypercube h(4);
  RouteC routec;
  Network net(h, routec);
  Rng rng(17);
  net.apply_faults([&](FaultSet& f) {
    inject_random_node_faults(f, 2, rng);
    inject_random_link_faults(f, 2, rng);
  });
  UniformTraffic traffic(h);
  SimConfig cfg;
  cfg.injection_rate = 0.06;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 900;
  cfg.seed = 4242;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.injected_packets, 198);
  EXPECT_EQ(r.delivered_packets, 198);
  EXPECT_EQ(r.avg_latency, 18.878787878787879);
  EXPECT_EQ(r.p50_latency, 14.0);
  EXPECT_EQ(r.p99_latency, 118.12);
  EXPECT_EQ(r.avg_hops, 3.0505050505050524);
  EXPECT_EQ(r.min_hops_ratio, 1.5976430976430989);
  EXPECT_EQ(r.throughput, 0.062857142857142861);
  EXPECT_EQ(r.misrouted_fraction, 0.10606060606060606);
  EXPECT_EQ(r.avg_latency_misrouted, 54.666666666666657);
  EXPECT_EQ(r.avg_latency_direct, 14.632768361581926);
  EXPECT_EQ(r.avg_decision_steps, 2.0);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.cycles_run, 1278);
}

TEST(SimulatorRegression, DynamicFaultNaftaExactResults) {
  // Live fault lifecycle pinned: a link dies mid-measurement on a healthy
  // NAFTA mesh. The kill wedges one worm against the stale routing epoch
  // (the structured watchdog breaks it), two packets retransmit, and the
  // recovery controller gates injection until the quiescent commit. Every
  // field — including the recovery metrics — must reproduce bit-for-bit.
  Mesh m = Mesh::two_d(8, 8);
  Nafta nafta;
  Network net(m, nafta);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1000;
  cfg.seed = 20260807;
  FaultSchedule schedule;
  schedule.fail_link_at(800, m.at(3, 3), port_of(Compass::East));
  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult r = sim.run();
  EXPECT_EQ(r.injected_packets, 647);
  EXPECT_EQ(r.delivered_packets, 647);
  EXPECT_EQ(r.avg_latency, 29.822256568778979);
  EXPECT_EQ(r.p50_latency, 21.0);
  EXPECT_EQ(r.p99_latency, 44.539999999999964);
  EXPECT_EQ(r.avg_hops, 5.2936630602782087);
  EXPECT_EQ(r.min_hops_ratio, 1.0077279752704793);
  EXPECT_EQ(r.throughput, 0.040437500000000001);
  EXPECT_EQ(r.misrouted_fraction, 0.0015455950540958269);
  EXPECT_EQ(r.avg_latency_misrouted, 2731.0);
  EXPECT_EQ(r.avg_latency_direct, 25.640866873065015);
  EXPECT_EQ(r.avg_decision_steps, 1.0109626069980477);
  EXPECT_EQ(r.packets_lost, 2);
  EXPECT_EQ(r.packets_retransmitted, 2);
  EXPECT_EQ(r.packets_unrecoverable, 0);
  EXPECT_EQ(r.fault_events, 1);
  EXPECT_EQ(r.recovery_events, 1);
  EXPECT_EQ(r.recovery_cycles, 2506);
  EXPECT_EQ(r.worms_killed, 1);
  EXPECT_EQ(r.reconfig_exchanges, 2952);
  EXPECT_EQ(r.availability, 0.5);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.blocked_chain.size(), 1u);
  EXPECT_EQ(r.cycles_run, 3524);
}

TEST(SimulatorRegression, Mesh64ShardedExactResults) {
  // Large-fabric pin: 4096-node mesh stepped on the sharded/event-driven
  // path (4 spatial shards). The sharded engine is proven bit-identical to
  // the serial step in test_shard; this pin additionally freezes the
  // absolute values so drift in either path is caught even if both drift
  // together.
  Mesh m = Mesh::two_d(64, 64);
  Nafta nafta;
  NetworkConfig ncfg;
  ncfg.shards = 4;
  Network net(m, nafta, ncfg);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 300;
  cfg.seed = 6464;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_EQ(r.injected_packets, 6240);
  EXPECT_EQ(r.delivered_packets, 6240);
  EXPECT_EQ(r.avg_latency, 139.16073717948717);
  EXPECT_EQ(r.p50_latency, 135.0);
  EXPECT_EQ(r.p99_latency, 302.0);
  EXPECT_EQ(r.avg_hops, 43.283173076923006);
  EXPECT_EQ(r.min_hops_ratio, 1.0);
  EXPECT_EQ(r.throughput, 0.020312500000000001);
  EXPECT_EQ(r.misrouted_fraction, 0.0);
  EXPECT_EQ(r.avg_latency_misrouted, 0.0);
  EXPECT_EQ(r.avg_latency_direct, 139.16073717948734);
  EXPECT_EQ(r.avg_decision_steps, 1.0);
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_EQ(r.cycles_run, 711);
}

}  // namespace
}  // namespace flexrouter
