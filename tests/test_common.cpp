// Unit tests for the common substrate: contracts, RNG, statistics,
// histograms, config parsing, bit utilities and StaticVector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/static_vector.hpp"
#include "common/stats.hpp"

namespace flexrouter {
namespace {

// ---------------------------------------------------------------- contracts
TEST(Contracts, RequireThrowsWithExpressionText) {
  try {
    FR_REQUIRE_MSG(1 == 2, "math is broken");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
}

TEST(Contracts, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FR_REQUIRE(2 + 2 == 4));
  EXPECT_NO_THROW(FR_ENSURE(true));
  EXPECT_NO_THROW(FR_ASSERT(1));
}

// ---------------------------------------------------------------------- rng
TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitDoublesInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // Child stream should not replay the parent's output.
  Rng b(23);
  b.next_u64();  // advance past the split draw
  EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(Rng, RejectsZeroBound) { EXPECT_THROW(Rng(1).next_below(0), ContractViolation); }

// -------------------------------------------------------------------- stats
TEST(StreamingStats, MeanVarianceMinMax) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesCombinedStream) {
  Rng rng(31);
  StreamingStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_unit() * 10.0;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats s, empty;
  s.add(1.0);
  s.add(3.0);
  s.merge(empty);
  EXPECT_EQ(s.count(), 2);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(StreamingStats, EmptyMinThrows) {
  StreamingStats s;
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(5), 1);
  EXPECT_EQ(h.bin_count(9), 1);
  EXPECT_EQ(h.count(), 6);
}

TEST(Histogram, ExactPercentilesWithKeptSamples) {
  Histogram h(0.0, 100.0, 10, /*keep_samples=*/true);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.05);
}

TEST(Histogram, InterpolatedPercentileApproximates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100 + 0.5);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(90.0), 90.0, 2.0);
}

// -------------------------------------------------------------------- config
TEST(Config, ParsesTypesAndComments) {
  const auto cfg = Config::parse(R"(
    # a comment
    width = 8; height = 8   // trailing comment
    rate = 0.35
    name = "uniform random"
    verbose = true
  )");
  EXPECT_EQ(cfg.get_int("width", 0), 8);
  EXPECT_EQ(cfg.get_int("height", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 0.35);
  EXPECT_EQ(cfg.get_string("name", ""), "uniform random");
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_EQ(cfg.get_int("missing", -7), -7);
}

TEST(Config, IntListAndOverride) {
  const auto base = Config::parse("faults = 0,1,2,4; vcs = 2");
  const auto over = Config::parse("vcs = 5");
  const auto merged = base.overridden_by(over);
  EXPECT_EQ(merged.get_int("vcs", 0), 5);
  const auto faults = merged.get_int_list("faults", {});
  EXPECT_EQ(faults, (std::vector<std::int64_t>{0, 1, 2, 4}));
}

TEST(Config, RequireMissingThrows) {
  const auto cfg = Config::parse("a = 1");
  EXPECT_EQ(cfg.require_int("a"), 1);
  EXPECT_THROW(cfg.require_int("b"), ContractViolation);
  EXPECT_THROW(cfg.require_string("b"), ContractViolation);
}

TEST(Config, MalformedValueThrows) {
  const auto cfg = Config::parse("x = banana");
  EXPECT_THROW(cfg.get_int("x", 0), ContractViolation);
  EXPECT_THROW(cfg.get_bool("x", false), ContractViolation);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("just words no equals"), ContractViolation);
}

TEST(Config, RoundTripThroughToString) {
  const auto cfg = Config::parse("a = 1; b = two; c = 3.5");
  const auto again = Config::parse(cfg.to_string());
  EXPECT_EQ(again.get_int("a", 0), 1);
  EXPECT_EQ(again.get_string("b", ""), "two");
  EXPECT_DOUBLE_EQ(again.get_double("c", 0.0), 3.5);
}

// --------------------------------------------------------------------- log
TEST(Log, LevelsGateOutput) {
  auto& logger = Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_level(LogLevel::Warn);
  FR_DEBUG("hidden " << 42);
  FR_WARN("visible " << 43);
  FR_ERROR("also visible");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::Warn);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[warn] visible 43"), std::string::npos);
  EXPECT_NE(out.find("[error] also visible"), std::string::npos);
}

TEST(Log, TraceLevelEnablesEverything) {
  auto& logger = Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_level(LogLevel::Trace);
  FR_TRACE("t");
  FR_INFO("i");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::Warn);
  EXPECT_NE(sink.str().find("[trace] t"), std::string::npos);
  EXPECT_NE(sink.str().find("[info] i"), std::string::npos);
}

TEST(Log, OffSilencesAll) {
  auto& logger = Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_level(LogLevel::Off);
  FR_ERROR("nope");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::Warn);
  EXPECT_TRUE(sink.str().empty());
}

TEST(Config, FromFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/flexrouter_cfg_test.cfg";
  {
    std::ofstream out(path);
    out << "# experiment\nwidth = 16\nrate = 0.25\nname = \"trial one\"\n";
  }
  const auto cfg = Config::from_file(path);
  EXPECT_EQ(cfg.get_int("width", 0), 16);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0), 0.25);
  EXPECT_EQ(cfg.get_string("name", ""), "trial one");
  EXPECT_THROW(Config::from_file(path + ".missing"), ContractViolation);
  std::remove(path.c_str());
}

TEST(Histogram, AsciiRenderShowsBars) {
  Histogram h(0, 10, 5);
  for (int i = 0; i < 8; ++i) h.add(1.0);
  h.add(9.0);
  const std::string art = h.ascii_render(20);
  EXPECT_NE(art.find("####"), std::string::npos);
  EXPECT_NE(art.find("[0, 2)"), std::string::npos);
  h.reset();
  EXPECT_EQ(h.count(), 0);
}

// -------------------------------------------------------------------- bitops
TEST(BitOps, BitsFor) {
  EXPECT_EQ(bits_for(1), 0);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(1024), 10);
  EXPECT_EQ(bits_for(1025), 11);
}

TEST(BitOps, Log2CeilFloor) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(5), 3);
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(5), 2);
  EXPECT_EQ(log2_floor(8), 3);
}

TEST(BitOps, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
}

// -------------------------------------------------------------- StaticVector
TEST(StaticVector, PushIndexIterate) {
  StaticVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.emplace_back(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v.back(), 3);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
}

TEST(StaticVector, OverflowThrows) {
  StaticVector<int, 2> v{1, 2};
  EXPECT_TRUE(v.full());
  EXPECT_THROW(v.push_back(3), ContractViolation);
}

TEST(StaticVector, SwapEraseReordersButKeepsElements) {
  StaticVector<int, 8> v{10, 20, 30, 40};
  v.swap_erase(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.contains(10));
  EXPECT_FALSE(v.contains(20));
  EXPECT_TRUE(v.contains(30));
  EXPECT_TRUE(v.contains(40));
}

TEST(StaticVector, OutOfRangeIndexThrows) {
  StaticVector<int, 2> v{5};
  EXPECT_THROW(v[1], ContractViolation);
  v.pop_back();
  EXPECT_THROW(v.pop_back(), ContractViolation);
}

TEST(StaticVector, EqualityComparesContents) {
  StaticVector<int, 4> a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace flexrouter
