// Differential tests for the bytecode VM: every behaviour the reference
// interpreter exhibits — fired rule, RETURN value, emitted events, register
// effects, contract violations — must be reproduced bit-identically by the
// compiled bytecode, over the shipped corpora and over runnable routing
// programs driving RuleDrivenRouting. Also covers the per-node decision
// cache: hit parity, fault-epoch and register-write invalidation, and the
// static-analysis gate that disables caching for unsafe programs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "routing/rule_driven.hpp"
#include "topology/hypercube.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/bytecode.hpp"
#include "ruleengine/event_manager.hpp"
#include "ruleengine/parser.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace flexrouter {
namespace {

using rules::EventManager;
using rules::ExecMode;
using rules::FireResult;
using rules::InputFn;
using rules::Program;
using rules::Value;

// --------------------------------------- corpus-wide differential execution
// Fire every rule base of the shipped corpora in Interpret and Vm modes
// under memoized random inputs and require identical fired rules, RETURNs,
// event cascades, register state and contract violations.
class VmCorpusDiff : public ::testing::TestWithParam<const char*> {};

// GCC 12 at -O3 reports a -Wrestrict false positive inside libstdc++
// char_traits when `"/" + std::string(...)` is fully inlined below;
// suppress locally so -Werror stays usable.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
TEST_P(VmCorpusDiff, VmMatchesInterpreterOnRandomInputs) {
  std::string source;
  const std::string which = GetParam();
  if (which == "nafta")
    source = flexrouter::rulebases::nafta_program_source(8, 8);
  else if (which == "route_c")
    source = flexrouter::rulebases::route_c_program_source(4, 2);
  else if (which == "nara")
    source = flexrouter::rulebases::nara_program_source(8, 8);
  else
    source = flexrouter::rulebases::route_c_nft_program_source(4, 2);
  const Program prog = rules::parse_program(source);

  EventManager direct(prog, ExecMode::Interpret);
  EventManager vm(prog, ExecMode::Vm);
  ASSERT_NE(vm.bytecode(), nullptr);

  Rng rng(0xbeef00 + which.size());
  std::map<std::string, Value> memo;
  auto key = [&](const std::string& name, const std::vector<Value>& idx) {
    std::string k = name;
    for (const Value& v : idx) k += "/" + v.to_string(prog.syms);
    return k;
  };
  const InputFn inputs = [&](const std::string& name,
                             const std::vector<Value>& idx) {
    const std::string k = key(name, idx);
    const auto it = memo.find(k);
    if (it != memo.end()) return it->second;
    const rules::InputDecl* decl = prog.find_input(name);
    FR_REQUIRE(decl != nullptr);
    const Value v =
        decl->domain.value_at(rng.next_below(decl->domain.cardinality()));
    memo.emplace(k, v);
    return v;
  };
  direct.set_input_provider(inputs);
  vm.set_input_provider(inputs);

  for (int iter = 0; iter < 600; ++iter) {
    memo.clear();
    const rules::RuleBase& rb =
        prog.rule_bases[rng.next_below(prog.rule_bases.size())];
    std::vector<Value> args;
    for (const rules::Param& p : rb.params)
      args.push_back(p.domain.value_at(rng.next_below(p.domain.cardinality())));

    std::optional<FireResult> a, b;
    bool a_threw = false, b_threw = false;
    try {
      a = direct.fire(rb.name, args);
    } catch (const ContractViolation&) {
      a_threw = true;
    }
    try {
      b = vm.fire(rb.name, args);
    } catch (const ContractViolation&) {
      b_threw = true;
    }
    ASSERT_EQ(a_threw, b_threw) << rb.name << " iteration " << iter;
    if (a_threw) {
      direct.reset_state();
      vm.reset_state();
      continue;
    }
    ASSERT_EQ(a->rule_index, b->rule_index) << rb.name << " iter " << iter;
    ASSERT_EQ(a->returned.has_value(), b->returned.has_value());
    if (a->returned) {
      ASSERT_TRUE(*a->returned == *b->returned);
    }
    ASSERT_EQ(a->events.size(), b->events.size());
    for (std::size_t e = 0; e < a->events.size(); ++e) {
      ASSERT_EQ(a->events[e].name, b->events[e].name);
      ASSERT_EQ(a->events[e].args.size(), b->events[e].args.size());
      for (std::size_t k2 = 0; k2 < a->events[e].args.size(); ++k2)
        ASSERT_TRUE(a->events[e].args[k2] == b->events[e].args[k2]);
    }
    try {
      direct.drain();
      vm.drain();
    } catch (const ContractViolation&) {
      direct.reset_state();
      vm.reset_state();
      continue;
    }
    ASSERT_TRUE(direct.env() == vm.env()) << rb.name << " iter " << iter;
    ASSERT_EQ(direct.total_interpretations(), vm.total_interpretations())
        << rb.name << " iter " << iter;
  }
}
#pragma GCC diagnostic pop

INSTANTIATE_TEST_SUITE_P(Programs, VmCorpusDiff,
                         ::testing::Values("nafta", "route_c", "nara",
                                           "route_c_nft"),
                         [](const auto& info) { return info.param; });

// --------------------------------------------- routing decision differential
using CandTuple = std::tuple<PortId, VcId, int>;

std::vector<CandTuple> cands(const RouteDecision& d) {
  std::vector<CandTuple> out;
  for (const RouteCandidate& c : d.candidates)
    out.emplace_back(c.port, c.vc, c.priority);
  return out;
}

TEST(VmRouting, NaraVmMatchesInterpretEverywhere) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  RuleDrivenRouting interp(rulebases::nara_route_source(6, 6), 2,
                           ExecMode::Interpret);
  RuleDrivenRouting vm(rulebases::nara_route_source(6, 6), 2, ExecMode::Vm);
  interp.attach(m, f);
  vm.attach(m, f);
  Rng rng(17);
  for (NodeId s = 0; s < m.num_nodes(); ++s)
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      RouteContext ctx;
      ctx.node = s;
      ctx.dest = t;
      ctx.src = s;
      ctx.in_port = static_cast<PortId>(rng.next_below(
          static_cast<std::size_t>(m.degree()) + 1));
      ctx.in_vc = static_cast<VcId>(rng.next_below(2));
      const RouteDecision a = interp.route(ctx);
      const RouteDecision b = vm.route(ctx);
      ASSERT_EQ(cands(a), cands(b)) << s << " -> " << t;
      ASSERT_EQ(a.steps, b.steps) << s << " -> " << t;
    }
}

TEST(VmRouting, EcubeVmMatchesInterpretEverywhere) {
  Hypercube h(4);
  FaultSet f(h);
  RuleDrivenRouting interp(rulebases::ecube_route_source(4), 1,
                           ExecMode::Interpret);
  RuleDrivenRouting vm(rulebases::ecube_route_source(4), 1, ExecMode::Vm);
  interp.attach(h, f);
  vm.attach(h, f);
  for (NodeId s = 0; s < h.num_nodes(); ++s)
    for (NodeId t = 0; t < h.num_nodes(); ++t) {
      RouteContext ctx;
      ctx.node = s;
      ctx.dest = t;
      ctx.src = s;
      ctx.in_port = h.degree();
      ctx.in_vc = 0;
      ASSERT_EQ(cands(interp.route(ctx)), cands(vm.route(ctx)))
          << s << " -> " << t;
    }
}

TEST(VmRouting, FtMeshVmMatchesInterpretUnderFaults) {
  Rng rng(91);
  for (int trial = 0; trial < 3; ++trial) {
    Mesh m = Mesh::two_d(5, 5);
    FaultSet f(m);
    RuleDrivenRouting interp(rulebases::ft_mesh_route_source(5, 5), 3,
                             ExecMode::Interpret, "route", /*escape_vc=*/2);
    RuleDrivenRouting vm(rulebases::ft_mesh_route_source(5, 5), 3,
                         ExecMode::Vm, "route", /*escape_vc=*/2);
    interp.attach(m, f);
    vm.attach(m, f);
    inject_random_link_faults(f, 2 * trial, rng);
    interp.reconfigure();
    vm.reconfigure();
    for (NodeId s = 0; s < m.num_nodes(); ++s)
      for (NodeId t = 0; t < m.num_nodes(); ++t) {
        if (s == t || !f.node_ok(s) || !f.node_ok(t)) continue;
        RouteContext ctx;
        ctx.node = s;
        ctx.dest = t;
        ctx.src = s;
        // Arrival on the escape VC implies a packet the up*/down* protocol
        // actually steered here; fabricated escape arrivals can be
        // unrealizable, so fuzz only adaptive-layer VCs.
        ctx.in_port = static_cast<PortId>(rng.next_below(
            static_cast<std::size_t>(m.degree()) + 1));
        ctx.in_vc = static_cast<VcId>(rng.next_below(2));
        const RouteDecision a = interp.route(ctx);
        const RouteDecision b = vm.route(ctx);
        ASSERT_EQ(cands(a), cands(b))
            << "trial " << trial << ": " << s << " -> " << t;
        ASSERT_EQ(a.steps, b.steps)
            << "trial " << trial << ": " << s << " -> " << t;
      }
  }
}

TEST(VmRouting, VmDrivesAFullNetwork) {
  // End-to-end: the VM (with the decision cache) routes real traffic.
  Mesh m = Mesh::two_d(5, 5);
  RuleDrivenRouting algo(rulebases::nara_route_source(5, 5), 2, ExecMode::Vm);
  Network net(m, algo);
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 150;
  cfg.measure_cycles = 400;
  Simulator sim(net, traffic, cfg);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlock_suspected);
  EXPECT_GT(r.injected_packets, 30);
  EXPECT_EQ(r.delivered_packets, r.injected_packets);
  EXPECT_DOUBLE_EQ(r.min_hops_ratio, 1.0);
  // Cache hits replay the recorded step count, so the paper's decision-cost
  // metric is unchanged by caching.
  EXPECT_DOUBLE_EQ(r.avg_decision_steps, 1.0);
  EXPECT_GT(algo.decision_cache_hits(), 0);
}

// ------------------------------------------------------------ decision cache
TEST(DecisionCache, HitsReplayTheSameDecision) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  RuleDrivenRouting vm(rulebases::nara_route_source(6, 6), 2, ExecMode::Vm);
  vm.attach(m, f);
  ASSERT_TRUE(vm.decision_cache_enabled());

  RouteContext ctx;
  ctx.node = m.at(1, 1);
  ctx.dest = m.at(4, 3);
  ctx.src = ctx.node;
  ctx.in_port = m.degree();
  ctx.in_vc = 0;
  const RouteDecision first = vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_misses(), 1);
  EXPECT_EQ(vm.decision_cache_hits(), 0);
  const RouteDecision second = vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_hits(), 1);
  EXPECT_EQ(cands(first), cands(second));
  EXPECT_EQ(first.steps, second.steps);

  // A different key computes fresh.
  ctx.in_vc = 1;
  vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_misses(), 2);
}

TEST(DecisionCache, FaultEpochInvalidates) {
  Mesh m = Mesh::two_d(5, 5);
  FaultSet f(m);
  RuleDrivenRouting vm(rulebases::ft_mesh_route_source(5, 5), 3, ExecMode::Vm,
                       "route", /*escape_vc=*/2);
  vm.attach(m, f);
  ASSERT_TRUE(vm.decision_cache_enabled());

  RouteContext ctx;
  ctx.node = m.at(0, 0);
  ctx.dest = m.at(3, 3);
  ctx.src = ctx.node;
  ctx.in_port = m.degree();
  ctx.in_vc = 0;
  vm.route(ctx);
  vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_hits(), 1);
  EXPECT_EQ(vm.decision_cache_misses(), 1);

  Rng rng(7);
  inject_random_link_faults(f, 2, rng);
  vm.reconfigure();
  vm.route(ctx);  // new epoch: the cached entry must not be replayed
  EXPECT_EQ(vm.decision_cache_hits(), 1);
  EXPECT_EQ(vm.decision_cache_misses(), 2);

  // Fresh instance attached to the already-faulty network agrees — the
  // invalidated cache did not leak a stale decision.
  RuleDrivenRouting fresh(rulebases::ft_mesh_route_source(5, 5), 3,
                          ExecMode::Vm, "route", 2);
  fresh.attach(m, f);
  EXPECT_EQ(cands(vm.route(ctx)), cands(fresh.route(ctx)));
}

TEST(DecisionCache, RegisterWriteInvalidates) {
  // A stateless decision program may still *read* registers that the host
  // (or another rule base) writes; RuleEnv::version() must invalidate.
  static const char* kSource =
      "PROGRAM regread;\n"
      "VARIABLE pref IN 0 TO 4\n"
      "INPUT node IN 0 TO 35\n"
      "INPUT dest IN 0 TO 35\n"
      "ON route RETURNS 0 TO 4\n"
      "  IF node = dest THEN RETURN(4);\n"
      "  IF node <> dest THEN RETURN(pref);\n"
      "END route\n";
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  RuleDrivenRouting vm(kSource, 2, ExecMode::Vm);
  vm.attach(m, f);
  ASSERT_TRUE(vm.decision_cache_enabled());

  RouteContext ctx;
  ctx.node = m.at(1, 1);
  ctx.dest = m.at(4, 1);
  ctx.src = ctx.node;
  ctx.in_port = m.degree();
  ctx.in_vc = 0;
  const RouteDecision before = vm.route(ctx);
  ASSERT_FALSE(before.candidates.empty());
  EXPECT_EQ(before.candidates[0].port, 0);  // pref = 0 -> east
  vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_hits(), 1);

  // Host pokes the register: the next decision must see the new value.
  vm.machine(ctx.node).env().set("pref", 0, Value::make_int(4));
  const RouteDecision after = vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_misses(), 2);
  ASSERT_FALSE(after.candidates.empty());
  EXPECT_EQ(after.candidates[0].port, m.degree());  // pref = 4 -> local
}

TEST(DecisionCache, StatefulProgramDisablesCache) {
  // The decision rule base writes a register: caching would skip the write,
  // so the static-analysis gate must refuse.
  static const char* kSource =
      "PROGRAM statef;\n"
      "VARIABLE count IN 0 TO 7\n"
      "INPUT node IN 0 TO 35\n"
      "INPUT dest IN 0 TO 35\n"
      "ON route RETURNS 0 TO 4\n"
      "  IF node >= 0 THEN count <- min(count + 1, 7), RETURN(4);\n"
      "END route\n";
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  RuleDrivenRouting vm(kSource, 2, ExecMode::Vm);
  vm.attach(m, f);
  EXPECT_FALSE(vm.decision_cache_enabled());

  RouteContext ctx;
  ctx.node = m.at(2, 2);
  ctx.dest = m.at(2, 2);
  ctx.src = ctx.node;
  ctx.in_port = m.degree();
  ctx.in_vc = 0;
  vm.route(ctx);
  vm.route(ctx);
  EXPECT_EQ(vm.decision_cache_hits(), 0);
  // Every decision really executed: the register advanced twice.
  EXPECT_EQ(vm.machine(ctx.node).env().get("count").as_int(), 2);
}

TEST(DecisionCache, PacketLocalInputDisablesCache) {
  // path_len varies per packet without being part of the cache key, so a
  // program reading it must never be cached.
  static const char* kSource =
      "PROGRAM plen;\n"
      "INPUT path_len IN 0 TO 255\n"
      "ON route RETURNS 0 TO 4\n"
      "  IF path_len >= 0 THEN RETURN(4);\n"
      "END route\n";
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  RuleDrivenRouting vm(kSource, 2, ExecMode::Vm);
  vm.attach(m, f);
  EXPECT_FALSE(vm.decision_cache_enabled());
}

TEST(DecisionCache, InterpretModeNeverCaches) {
  Mesh m = Mesh::two_d(6, 6);
  FaultSet f(m);
  RuleDrivenRouting interp(rulebases::nara_route_source(6, 6), 2,
                           ExecMode::Interpret);
  interp.attach(m, f);
  EXPECT_FALSE(interp.decision_cache_enabled());
}

// ----------------------------------------------- static reachability analysis
TEST(RouteAnalysis, SeesThroughEventsAndSubbases) {
  static const char* kSource =
      "PROGRAM reach;\n"
      "VARIABLE seen IN 0 TO 1\n"
      "INPUT node IN 0 TO 63\n"
      "INPUT path_len IN 0 TO 255\n"
      "ON helper RETURNS 0 TO 255\n"
      "  IF 1 = 1 THEN RETURN(path_len);\n"
      "END helper\n"
      "ON note\n"
      "  IF 1 = 1 THEN seen <- 1;\n"
      "END note\n"
      "ON route RETURNS 0 TO 4\n"
      "  IF helper >= 0 THEN !note(), RETURN(4);\n"
      "END route\n";
  const Program prog = rules::parse_program(kSource);
  const rules::RouteAnalysis a = rules::analyze_reachable(prog, "route");
  EXPECT_TRUE(a.writes_state);          // via the !note event
  EXPECT_TRUE(a.reads_input("path_len"));  // via the helper subbase
  EXPECT_FALSE(a.reads_input("node"));

  const rules::RouteAnalysis h = rules::analyze_reachable(prog, "helper");
  EXPECT_FALSE(h.writes_state);
  EXPECT_TRUE(h.reads_input("path_len"));
}

// -------------------------------------------------- interned event plumbing
TEST(VmEvents, EmittedEventsCarryResolvedIds) {
  static const char* kSource =
      "PROGRAM ids;\n"
      "ON ping\n"
      "  IF 1 = 1 THEN !pong(3), !host_only(1);\n"
      "END ping\n"
      "ON pong(x IN 0 TO 7)\n"
      "  IF x >= 0 THEN !host_only(x);\n"
      "END pong\n";
  const Program prog = rules::parse_program(kSource);
  EventManager vm(prog, ExecMode::Vm);
  const FireResult r = vm.fire("ping", {});
  ASSERT_EQ(r.events.size(), 2u);
  // pong is handled by a rule base; host_only is host-bound.
  EXPECT_GE(r.events[0].target_rb, 0);
  EXPECT_EQ(r.events[1].target_rb, -1);
  int host_calls = 0;
  vm.set_host_handler_fast([&](const rules::EmittedEvent& ev) {
    EXPECT_EQ(ev.name, "host_only");
    ++host_calls;
  });
  vm.drain();
  EXPECT_EQ(host_calls, 2);  // one direct, one from the pong cascade
}

}  // namespace
}  // namespace flexrouter
