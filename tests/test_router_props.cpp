// Router protocol invariants, checked as properties over real traffic:
// credit conservation, wormhole (non-interleaving) integrity, checksum
// enforcement at routing computation, ejection fairness, and drain
// completeness after arbitrary load.
#include <gtest/gtest.h>

#include <map>

#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace flexrouter {
namespace {

TEST(RouterProps, CreditConservationAfterDrain) {
  // After the network drains, every output VC must have its full credit
  // budget back — lost or duplicated credits would show up here.
  Mesh m = Mesh::two_d(4, 4);
  Nara nara;
  NetworkConfig ncfg;
  Network net(m, nara, ncfg);
  Rng rng(1);
  Cycle now = 0;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 60; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(16));
      auto d = static_cast<NodeId>(rng.next_below(16));
      if (d == s) d = (d + 1) % 16;
      net.send(s, d, 1 + static_cast<int>(rng.next_below(6)), now);
    }
    for (int c = 0; c < 3000 && !net.idle(); ++c) net.step(now++);
    ASSERT_TRUE(net.idle());
    for (NodeId n = 0; n < m.num_nodes(); ++n) {
      for (PortId p = 0; p < m.degree(); ++p) {
        if (m.neighbor(n, p) == kInvalidNode) continue;
        for (VcId v = 0; v < nara.num_vcs(); ++v) {
          EXPECT_EQ(net.router(n).output_credits(p, v), ncfg.router.buffer_depth)
              << "node " << n << " port " << p << " vc " << v;
          EXPECT_TRUE(net.router(n).output_vc_free(p, v));
        }
      }
    }
  }
}

TEST(RouterProps, WormholeFlitsArriveInOrderPerPacket) {
  Mesh m = Mesh::two_d(5, 5);
  Nara nara;
  Network net(m, nara);
  Rng rng(7);
  Cycle now = 0;
  std::vector<PacketId> ids;
  for (int i = 0; i < 150; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(25));
    auto d = static_cast<NodeId>(rng.next_below(25));
    if (d == s) d = (d + 1) % 25;
    ids.push_back(net.send(s, d, 6, now));
  }
  // Track per-packet ejection sequence using delivered_last_cycle and the
  // record's delivered timestamps: tails must come last, and every packet
  // must complete exactly once.
  std::map<PacketId, int> tails_seen;
  for (int c = 0; c < 20000 && !net.idle(); ++c) {
    net.step(now++);
    for (const PacketId id : net.delivered_last_cycle()) ++tails_seen[id];
  }
  ASSERT_TRUE(net.idle());
  for (const PacketId id : ids) {
    EXPECT_TRUE(net.record(id).done());
    EXPECT_EQ(tails_seen[id], 1) << "packet " << id;
  }
}

TEST(RouterProps, CorruptHeaderIsRejectedAtRC) {
  Mesh m = Mesh::two_d(2, 2);
  FaultSet f(m);
  Nara nara;
  nara.attach(m, f);
  PacketStore store;
  Router r(m.at(0, 0), m, f, nara, store, RouterConfig{});
  Header h;
  h.packet = 1;
  h.src = m.at(1, 1);
  h.dest = m.at(1, 0);
  h.length = 1;
  MessageInterface::seal(h);
  const PacketSlot slot = store.alloc(h);
  store.header(slot).dest = m.at(0, 1);  // tampered after sealing
  r.inject(make_head_flit(slot, 1));
  std::vector<Flit> ejected;
  EXPECT_THROW(r.step(0, ejected), ContractViolation);
}

TEST(RouterProps, EjectionFairnessUnderConvergingTraffic) {
  // Four corners flood the centre; round-robin SA must not starve any
  // source: delivered counts stay within a small factor of each other.
  Mesh m = Mesh::two_d(5, 5);
  Nara nara;
  Network net(m, nara);
  const NodeId center = m.at(2, 2);
  const NodeId sources[4] = {m.at(0, 0), m.at(4, 0), m.at(0, 4), m.at(4, 4)};
  Cycle now = 0;
  std::map<NodeId, std::vector<PacketId>> per_source;
  for (int wave = 0; wave < 40; ++wave) {
    for (const NodeId s : sources)
      per_source[s].push_back(net.send(s, center, 4, now));
    for (int c = 0; c < 8; ++c) net.step(now++);
  }
  for (int c = 0; c < 20000 && !net.idle(); ++c) net.step(now++);
  ASSERT_TRUE(net.idle());
  // All delivered; compare the time of the last delivery per source.
  Cycle last[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    for (const PacketId id : per_source[sources[i]]) {
      ASSERT_TRUE(net.record(id).done());
      last[i] = std::max(last[i], net.record(id).delivered);
    }
  }
  const Cycle lo = *std::min_element(last, last + 4);
  const Cycle hi = *std::max_element(last, last + 4);
  EXPECT_LT(hi - lo, 400) << "a source finished far behind the others";
}

TEST(RouterProps, MixedLengthPacketsDrainCompletely) {
  Mesh m = Mesh::two_d(6, 6);
  Nafta nafta;
  Network net(m, nafta);
  Rng rng(23);
  net.apply_faults([&](FaultSet& f) {
    inject_random_link_faults(f, 5, rng);
  });
  Cycle now = 0;
  std::int64_t flits_sent = 0;
  for (int i = 0; i < 250; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(36));
    auto d = static_cast<NodeId>(rng.next_below(36));
    if (d == s) d = (d + 1) % 36;
    const int len = 1 + static_cast<int>(rng.next_below(9));
    net.send(s, d, len, now);
    flits_sent += len;
  }
  for (int c = 0; c < 60000 && !net.idle(); ++c) net.step(now++);
  ASSERT_TRUE(net.idle());
  const RouterStats agg = net.aggregate_stats();
  EXPECT_EQ(agg.flits_ejected, flits_sent);  // nothing lost or duplicated
  EXPECT_EQ(net.packets_delivered(), 250);
}

TEST(RouterProps, InjectionBackpressure) {
  // A source cannot out-inject the local buffer: injection_space bounds it
  // and the network never drops.
  Mesh m = Mesh::two_d(3, 3);
  Nara nara;
  Network net(m, nara);
  Cycle now = 0;
  // Queue far more traffic at one node than the local port can take.
  for (int i = 0; i < 100; ++i)
    net.send(m.at(0, 0), m.at(2, 2), 4, now);
  for (int c = 0; c < 30000 && !net.idle(); ++c) net.step(now++);
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.packets_delivered(), 100);
}

}  // namespace
}  // namespace flexrouter
