// Tests for the rule-program static analyzer (rulelint).
//
// Strategy: the shipped corpus must lint clean under --werror semantics;
// then seeded mutants — one deliberate fault each, injected into a pristine
// corpus source by exact string surgery — must each be caught with the
// expected diagnostic class. The deadlock certifier is additionally checked
// for agreement with the dynamic channel-dependency checker (`check_cdg`)
// on both the healthy programs and a cyclic mutant.
#include <gtest/gtest.h>

#include <string>

#include "routing/cdg.hpp"
#include "routing/nafta.hpp"
#include "routing/route_c.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "ruleanalysis/corpus_lint.hpp"
#include "ruleengine/parser.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

using ruleanalysis::AnalysisReport;
using ruleanalysis::DiagClass;
using ruleanalysis::Finding;
using ruleanalysis::Severity;

/// Replace exactly one occurrence of `from` with `to`; the test fails if
/// the anchor text is missing or ambiguous, so mutations cannot rot
/// silently when the corpus is edited.
std::string mutate(std::string source, const std::string& from,
                   const std::string& to) {
  const auto pos = source.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation anchor not found: " << from;
  EXPECT_EQ(source.find(from, pos + 1), std::string::npos)
      << "mutation anchor ambiguous: " << from;
  if (pos == std::string::npos) return source;
  source.replace(pos, from.size(), to);
  return source;
}

int count_class(const AnalysisReport& rep, DiagClass cls) {
  int n = 0;
  for (const Finding& f : rep.findings)
    if (f.cls == cls) ++n;
  return n;
}

const Finding* find_class(const AnalysisReport& rep, DiagClass cls) {
  for (const Finding& f : rep.findings)
    if (f.cls == cls) return &f;
  return nullptr;
}

AnalysisReport lint(const std::string& source) {
  return ruleanalysis::lint_source(source);
}

// ------------------------------------------------------------ corpus gate

TEST(RulelintCorpus, EveryShippedProgramIsCleanUnderWerror) {
  const auto result = ruleanalysis::lint_corpus();
  EXPECT_TRUE(result.clean(/*werror=*/true)) << result.to_string();
  // All four runnable-program certificates plus the accounting corpora.
  EXPECT_EQ(result.reports.size(), 8u);
}

TEST(RulelintCorpus, DeadlockCertificatesCoverEveryModeledProgram) {
  const auto result = ruleanalysis::lint_corpus();
  for (const AnalysisReport& rep : result.reports) {
    bool has_certificate = false;
    for (const std::string& line : rep.info)
      if (line.find("deadlock certificate") != std::string::npos &&
          line.find("acyclic") != std::string::npos)
        has_certificate = true;
    EXPECT_TRUE(has_certificate) << rep.program << " has no certificate";
  }
}

TEST(RulelintCorpus, RouteCExcludedClassesAreReportedNotSilent) {
  // The certifier covers ROUTE_C's ascending/descending classes; the
  // escape and misroute classes fall outside the VC mapping and must be
  // called out rather than silently dropped.
  const auto rep = lint(rulebases::route_c_program_source(3, 2));
  const Finding* f = find_class(rep, DiagClass::DeadlockUnmodeled);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("classes"), std::string::npos);
  EXPECT_EQ(f->severity, Severity::Note);
}

// --------------------------------------------------- seeded mutants (>=10)

// Mutant 1: syntax damage -> invalid-program error.
TEST(RulelintMutants, UnterminatedRuleBaseIsInvalidProgram) {
  const auto rep = lint(
      mutate(rulebases::nara_route_source(4, 4), "END route;\n", ""));
  const Finding* f = find_class(rep, DiagClass::InvalidProgram);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
  EXPECT_FALSE(rep.clean(/*werror=*/false));
}

// Mutant 2: undeclared register -> invalid-program error (validation).
TEST(RulelintMutants, UndeclaredNameIsInvalidProgram) {
  const auto rep = lint(mutate(rulebases::nara_route_source(4, 4),
                               "THEN !cand(0, in_vc, 0);",
                               "THEN !cand(0, ghost_vc, 0);"));
  const Finding* f = find_class(rep, DiagClass::InvalidProgram);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
}

// Mutant 3: dropped local-delivery rule -> completeness gap.
TEST(RulelintMutants, DroppedDeliveryRuleIsIncomplete) {
  ASSERT_EQ(count_class(lint(rulebases::nara_route_source(4, 4)),
                        DiagClass::Incomplete),
            0);
  const auto rep = lint(
      mutate(rulebases::nara_route_source(4, 4),
             "  IF ypos = ydes AND xpos = xdes THEN !cand(4, 0, 0);\n", ""));
  const Finding* f = find_class(rep, DiagClass::Incomplete);
  ASSERT_NE(f, nullptr);
  // The witness names the uncovered abstract state.
  EXPECT_NE(f->witness.find("xpos"), std::string::npos);
  ASSERT_FALSE(rep.bases.empty());
  EXPECT_GT(rep.bases[0].gap_states, 0u);
}

// Mutant 4: dropped x-aligned northbound case -> a different gap.
TEST(RulelintMutants, DroppedAxisCaseIsIncomplete) {
  const auto rep = lint(mutate(
      rulebases::nara_route_source(4, 4),
      "  IF ypos < ydes AND xpos = xdes THEN !cand(2, 1, 0);\n", ""));
  EXPECT_GE(count_class(rep, DiagClass::Incomplete), 1);
}

// Mutant 5: widened premise swallows a later rule -> shadowed rule.
TEST(RulelintMutants, WidenedPremiseShadowsLaterRule) {
  const auto rep = lint(mutate(rulebases::nara_route_source(4, 4),
                               "IF ypos < ydes AND xpos > xdes THEN",
                               "IF ypos < ydes THEN"));
  const Finding* f = find_class(rep, DiagClass::ShadowedRule);
  ASSERT_NE(f, nullptr);
  // The input space is exact, so the verdict is a proof -> warning.
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_EQ(f->rule_index, 2);  // "ypos < ydes AND xpos = xdes" is dead code
  EXPECT_FALSE(rep.clean(/*werror=*/true));
}

// Mutant 6: duplicated rule -> the copy is shadowed by the original.
TEST(RulelintMutants, DuplicatedRuleIsShadowed) {
  const std::string line =
      "  IF ypos = ydes AND xpos = xdes THEN !cand(4, 0, 0);\n";
  const auto rep =
      lint(mutate(rulebases::nara_route_source(4, 4), line, line + line));
  const Finding* f = find_class(rep, DiagClass::ShadowedRule);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_NE(f->message.find("rule #10"), std::string::npos);
}

// Mutant 7: contradictory premise -> dead rule.
TEST(RulelintMutants, ContradictoryPremiseIsDeadRule) {
  const auto rep = lint(mutate(
      rulebases::nara_route_source(4, 4),
      "IF ypos < ydes AND xpos = xdes THEN !cand(2, 1, 0);",
      "IF ypos < ydes AND ypos > ydes THEN !cand(2, 1, 0);"));
  const Finding* f = find_class(rep, DiagClass::DeadRule);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_EQ(f->rule_index, 2);
}

// Mutant 8: widened guard lets a counter leave its declared width.
TEST(RulelintMutants, WidenedGuardOverflowsRegister) {
  ASSERT_EQ(count_class(lint(rulebases::nafta_program_source(4, 4)),
                        DiagClass::RangeOverflow),
            0);
  // fault_count is 5 bits (0..31); "< 2" guards the increment. Flipping
  // the comparison admits fault_count = 31, where +1 assigns 32.
  const auto rep = lint(mutate(rulebases::nafta_program_source(4, 4),
                               "IF fault_count < 2\n",
                               "IF fault_count > 2\n"));
  const Finding* f = find_class(rep, DiagClass::RangeOverflow);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_EQ(f->rule_base, "consider_neighbor_state");
  EXPECT_NE(f->witness.find("fault_count=31"), std::string::npos);
}

// Mutant 9: computed store index exceeds the array bound.
TEST(RulelintMutants, ComputedIndexOverflowsArray) {
  // dir_state has 4 entries; fault_count + 3 reaches 4 under the < 2 guard.
  const auto rep = lint(mutate(
      rulebases::nafta_program_source(4, 4),
      "THEN fault_count <- fault_count + 1, dir_state(0) <- nb_state;",
      "THEN fault_count <- fault_count + 1,"
      " dir_state(fault_count + 3) <- nb_state;"));
  const Finding* f = find_class(rep, DiagClass::IndexOverflow);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_NE(f->message.find("dir_state"), std::string::npos);
}

// Mutant 10: sideways candidates on the southbound network close a
// dependency cycle (east at x = xdes flips the sign, west flips it back).
TEST(RulelintMutants, SidewaysCandidatesAreACertifiedDeadlock) {
  const std::string mutant = mutate(
      rulebases::nara_route_source(4, 4),
      "IF ypos > ydes AND xpos = xdes THEN !cand(3, 0, 0);",
      "IF ypos > ydes AND xpos = xdes"
      " THEN !cand(3, 0, 0), !cand(0, 0, 0), !cand(1, 0, 0);");
  const auto rep = lint(mutant);
  const Finding* f = find_class(rep, DiagClass::DeadlockCycle);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
  // A witness cycle in channel notation is printed.
  EXPECT_NE(f->witness.find("->"), std::string::npos);
  EXPECT_FALSE(rep.clean(/*werror=*/false));

  // The dynamic checker agrees: the same program driving a live router
  // yields a cyclic channel-dependency graph.
  Mesh m = Mesh::two_d(4, 4);
  FaultSet faults(m);
  RuleDrivenRouting algo(mutant, 2, rules::ExecMode::Interpret);
  algo.attach(m, faults);
  EXPECT_FALSE(check_full_cdg(m, faults, algo).acyclic);
}

// Mutant 11: letting the e-cube correct a not-yet-due dimension breaks the
// dimension order -> two-channel cycle, caught statically and dynamically.
TEST(RulelintMutants, BrokenDimensionOrderIsACertifiedDeadlock) {
  const std::string mutant =
      mutate(rulebases::ecube_route_source(3),
             "IF bit(xor(node, dest), 0) = 1 THEN !cand(0, 0, 0);",
             "IF bit(xor(node, dest), 0) = 1"
             " THEN !cand(0, 0, 0), !cand(1, 0, 0);");
  const auto rep = lint(mutant);
  const Finding* f = find_class(rep, DiagClass::DeadlockCycle);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
  EXPECT_NE(f->witness.find("->"), std::string::npos);

  Hypercube h(3);
  FaultSet faults(h);
  RuleDrivenRouting algo(mutant, 1, rules::ExecMode::Interpret);
  algo.attach(h, faults);
  EXPECT_FALSE(check_full_cdg(h, faults, algo).acyclic);
}

// Mutant 12: an input space too wide to reduce -> state-blowup note, not a
// hang and not a bogus verdict.
TEST(RulelintMutants, IrreducibleInputSpaceReportsBlowup) {
  std::string src = "PROGRAM blowup;\n";
  for (int i = 0; i < 13; ++i)
    src += "INPUT w" + std::to_string(i) + " IN 0 TO 1000000\n";
  src += "ON act\n  IF w0 = 0";
  for (int i = 1; i < 13; ++i) src += " AND w" + std::to_string(i) + " = 0";
  src += " THEN !go(0);\nEND act;\n";
  const auto rep = lint(src);
  const Finding* f = find_class(rep, DiagClass::StateBlowup);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Note);
}

// ------------------------------------- static vs dynamic CDG agreement

TEST(RulelintAgreement, NaraRulesStaticAndDynamicVerdictsMatch) {
  const std::string src = rulebases::nara_route_source(4, 4);
  const auto prog = rules::parse_program(src);
  const auto model = ruleanalysis::model_for(prog);
  ASSERT_TRUE(model.has_value());

  Mesh m = Mesh::two_d(4, 4);
  FaultSet faults(m);
  const auto cert = ruleanalysis::certify_deadlock(prog, *model, m, faults);
  EXPECT_TRUE(cert.modeled);
  EXPECT_TRUE(cert.report.acyclic) << cert.report.to_string();

  RuleDrivenRouting algo(src, 2, rules::ExecMode::Interpret);
  algo.attach(m, faults);
  const CdgReport dynamic = check_full_cdg(m, faults, algo);
  EXPECT_EQ(cert.report.acyclic, dynamic.acyclic);
}

TEST(RulelintAgreement, NaftaCertificateMatchesNativeAlgorithm) {
  const auto prog = rules::parse_program(rulebases::nafta_program_source(4, 4));
  const auto model = ruleanalysis::model_for(prog);
  ASSERT_TRUE(model.has_value());

  Mesh m = Mesh::two_d(4, 4);
  FaultSet faults(m);
  const auto cert = ruleanalysis::certify_deadlock(prog, *model, m, faults);
  EXPECT_TRUE(cert.report.acyclic) << cert.report.to_string();

  Nafta nafta;
  nafta.attach(m, faults);
  const CdgReport dynamic = check_full_cdg(m, faults, nafta);
  EXPECT_EQ(cert.report.acyclic, dynamic.acyclic);
}

TEST(RulelintAgreement, RouteCCertificateMatchesNativeAlgorithm) {
  const auto prog =
      rules::parse_program(rulebases::route_c_nft_program_source(3, 2));
  const auto model = ruleanalysis::model_for(prog);
  ASSERT_TRUE(model.has_value());

  Hypercube h(3);
  FaultSet faults(h);
  const auto cert = ruleanalysis::certify_deadlock(prog, *model, h, faults);
  EXPECT_TRUE(cert.report.acyclic) << cert.report.to_string();

  StrippedRouteC nft;
  nft.attach(h, faults);
  const CdgReport dynamic = check_full_cdg(h, faults, nft);
  EXPECT_EQ(cert.report.acyclic, dynamic.acyclic);
}

TEST(RulelintAgreement, FaultedOrbitSampleMatchesDynamicCdg) {
  // The k = 1 certifier and the live channel-dependency checker must agree
  // on acyclicity over faulted orbits: the static certificate reports zero
  // deadlock failures across every k = 1 orbit, so a live router rebuilt
  // under each sampled fault pattern must present an acyclic CDG too.
  const std::string src = rulebases::ft_mesh_route_source(4, 4);
  const auto report = ruleanalysis::fault_cert_source(src);
  ASSERT_TRUE(report.has_value());
  for (const auto& regime : report->regimes)
    EXPECT_EQ(regime.deadlock_failures, 0u) << regime.name;

  Mesh m = Mesh::two_d(4, 4);
  std::vector<ruleanalysis::FaultPattern> sample = report->certified_samples;
  ruleanalysis::FaultPattern corner, interior;
  corner.nodes.push_back(m.at(0, 0));
  interior.nodes.push_back(m.at(1, 2));
  sample.push_back(corner);
  sample.push_back(interior);
  ASSERT_GT(sample.size(), 2u);
  for (const auto& pattern : sample) {
    const FaultSet faults = pattern.to_fault_set(m);
    RuleDrivenRouting algo(src, 3, rules::ExecMode::Interpret, "route",
                           /*escape_vc=*/2);
    algo.attach(m, faults);
    algo.reconfigure();
    EXPECT_TRUE(check_full_cdg(m, faults, algo).acyclic)
        << "dynamic CDG cyclic under " << pattern.to_string();
  }
}

TEST(RulelintAgreement, FaultedFtMeshStaysCertified) {
  const std::string src = rulebases::ft_mesh_route_source(4, 4);
  const auto prog = rules::parse_program(src);
  const auto model = ruleanalysis::model_for(prog);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->escape_vc, 2);

  Mesh m = Mesh::two_d(4, 4);
  FaultSet faults(m);
  faults.fail_link(m.at(1, 1), 0);
  faults.fail_node(m.at(2, 2));
  const auto cert = ruleanalysis::certify_deadlock(prog, *model, m, faults);
  EXPECT_TRUE(cert.report.acyclic) << cert.report.to_string();

  RuleDrivenRouting algo(src, 3, rules::ExecMode::Interpret, "route",
                         /*escape_vc=*/2);
  algo.attach(m, faults);
  algo.reconfigure();
  const CdgReport dynamic = check_full_cdg(m, faults, algo);
  EXPECT_EQ(cert.report.acyclic, dynamic.acyclic);
}

}  // namespace
}  // namespace flexrouter
