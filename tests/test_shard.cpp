// Sharded-execution determinism suite. The contract under test: a Network
// stepped as 1, 2, 4 or 8 spatial shards — with any thread count — produces
// a SimResult bit-identical to the legacy serial step, on fault-free,
// statically-faulted and live-fault-lifecycle scenarios, across every
// registered routing algorithm; and the simulator's event-driven idle
// skipping changes wall clock only, never results. Plus unit coverage for
// the spatial shard planner itself.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "routing/routing.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "topology/hypercube.hpp"
#include "topology/shard_plan.hpp"
#include "topology/torus.hpp"

namespace flexrouter {
namespace {

// ----------------------------------------------------------- shard planner

TEST(ShardPlan, MeshTilesAreBalancedAndExhaustive) {
  Mesh m = Mesh::two_d(8, 8);
  const ShardPlan plan = plan_shards(m, 4);
  EXPECT_EQ(plan.num_shards, 4);
  EXPECT_EQ(plan.scheme, "mesh-tiles");
  std::vector<int> seen(64, 0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.nodes[static_cast<std::size_t>(s)].size(), 16u);
    for (const NodeId n : plan.nodes[static_cast<std::size_t>(s)]) {
      EXPECT_EQ(plan.shard(n), s);
      ++seen[static_cast<std::size_t>(n)];
    }
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(ShardPlan, MeshTilesAreContiguousBoxes) {
  // Recursive bisection of an 8x8 mesh into 4 shards must produce spatial
  // quadrants: every shard's bounding box contains exactly its own nodes.
  Mesh m = Mesh::two_d(8, 8);
  const ShardPlan plan = plan_shards(m, 4);
  for (int s = 0; s < 4; ++s) {
    int min_x = 8, max_x = -1, min_y = 8, max_y = -1;
    for (const NodeId n : plan.nodes[static_cast<std::size_t>(s)]) {
      min_x = std::min(min_x, m.coord(n, 0));
      max_x = std::max(max_x, m.coord(n, 0));
      min_y = std::min(min_y, m.coord(n, 1));
      max_y = std::max(max_y, m.coord(n, 1));
    }
    const std::size_t box = static_cast<std::size_t>(max_x - min_x + 1) *
                            static_cast<std::size_t>(max_y - min_y + 1);
    EXPECT_EQ(box, plan.nodes[static_cast<std::size_t>(s)].size());
  }
}

TEST(ShardPlan, HypercubeSubcubes) {
  Hypercube h(4);
  const ShardPlan plan = plan_shards(h, 4);
  EXPECT_EQ(plan.scheme, "subcubes");
  // Top two address bits pick the shard: each shard is a 2-subcube.
  for (NodeId n = 0; n < 16; ++n)
    EXPECT_EQ(plan.shard(n), static_cast<int>(n) >> 2);
}

TEST(ShardPlan, NonPowerOfTwoHypercubeFallsBackToRanges) {
  Hypercube h(4);
  const ShardPlan plan = plan_shards(h, 3);
  EXPECT_EQ(plan.scheme, "ranges");
  std::size_t total = 0;
  for (const auto& ns : plan.nodes) {
    EXPECT_FALSE(ns.empty());
    total += ns.size();
  }
  EXPECT_EQ(total, 16u);
}

TEST(ShardPlan, TorusTiles) {
  Torus t(std::vector<int>{6, 6});
  const ShardPlan plan = plan_shards(t, 4);
  EXPECT_EQ(plan.scheme, "mesh-tiles");
  for (const auto& ns : plan.nodes) EXPECT_EQ(ns.size(), 9u);
}

TEST(ShardPlan, OneShardAndOneShardPerNode) {
  Mesh m = Mesh::two_d(4, 4);
  const ShardPlan one = plan_shards(m, 1);
  EXPECT_EQ(one.nodes[0].size(), 16u);
  const ShardPlan all = plan_shards(m, 16);
  for (const auto& ns : all.nodes) EXPECT_EQ(ns.size(), 1u);
}

TEST(ShardPlan, RejectsBadShardCounts) {
  Mesh m = Mesh::two_d(4, 4);
  EXPECT_THROW(plan_shards(m, 0), ContractViolation);
  EXPECT_THROW(plan_shards(m, 17), ContractViolation);
}

// ------------------------------------------------------- identity harness

/// Bit-exact SimResult comparison over every field (memcmp on doubles:
/// identity, not tolerance).
void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  const auto bits_eq = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  EXPECT_TRUE(bits_eq(a.avg_latency, b.avg_latency));
  EXPECT_TRUE(bits_eq(a.p50_latency, b.p50_latency));
  EXPECT_TRUE(bits_eq(a.p99_latency, b.p99_latency));
  EXPECT_TRUE(bits_eq(a.avg_hops, b.avg_hops));
  EXPECT_TRUE(bits_eq(a.min_hops_ratio, b.min_hops_ratio));
  EXPECT_TRUE(bits_eq(a.throughput, b.throughput));
  EXPECT_TRUE(bits_eq(a.misrouted_fraction, b.misrouted_fraction));
  EXPECT_TRUE(bits_eq(a.avg_latency_misrouted, b.avg_latency_misrouted));
  EXPECT_TRUE(bits_eq(a.avg_latency_direct, b.avg_latency_direct));
  EXPECT_TRUE(bits_eq(a.avg_decision_steps, b.avg_decision_steps));
  EXPECT_TRUE(bits_eq(a.availability, b.availability));
  EXPECT_EQ(a.deadlock_suspected, b.deadlock_suspected);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.packets_unrecoverable, b.packets_unrecoverable);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.recovery_events, b.recovery_events);
  EXPECT_EQ(a.recovery_cycles, b.recovery_cycles);
  EXPECT_EQ(a.worms_killed, b.worms_killed);
  EXPECT_EQ(a.reconfig_exchanges, b.reconfig_exchanges);
  ASSERT_EQ(a.blocked_chain.size(), b.blocked_chain.size());
  for (std::size_t i = 0; i < a.blocked_chain.size(); ++i) {
    EXPECT_EQ(a.blocked_chain[i].node, b.blocked_chain[i].node);
    EXPECT_EQ(a.blocked_chain[i].port, b.blocked_chain[i].port);
    EXPECT_EQ(a.blocked_chain[i].vc, b.blocked_chain[i].vc);
    EXPECT_EQ(a.blocked_chain[i].packet, b.blocked_chain[i].packet);
  }
}

struct Scenario {
  std::string topo = "mesh";  // "mesh", "hypercube", "torus"
  std::string algo = "nafta";
  int static_link_faults = 0;
  int static_node_faults = 0;
  bool lifecycle = false;  // link kill @600 + node kill @800
  double rate = 0.05;
  Cycle warmup = 200;
  Cycle measure = 600;
  Cycle detection_delay = 0;
  std::uint64_t seed = 12;
};

struct RunOutput {
  SimResult result;
  std::vector<PacketId> lost_log;
  std::int64_t packets_created = 0;
  std::int64_t packets_delivered = 0;
  Cycle skipped = 0;
};

std::unique_ptr<Topology> scenario_topo(const Scenario& sc) {
  if (sc.topo == "mesh") return std::make_unique<Mesh>(std::vector<int>{6, 6});
  if (sc.topo == "mesh8") return std::make_unique<Mesh>(std::vector<int>{8, 8});
  if (sc.topo == "hypercube") return std::make_unique<Hypercube>(4);
  if (sc.topo == "torus")
    return std::make_unique<Torus>(std::vector<int>{6, 6});
  FR_UNREACHABLE("bad scenario topology");
}

RunOutput run_scenario(const Scenario& sc, int shards, bool event_driven,
                       bool idle_skip, int shard_threads) {
  auto topo = scenario_topo(sc);
  std::unique_ptr<RoutingAlgorithm> algo;
  if (sc.algo == "rule-ft-mesh") {
    algo = std::make_unique<RuleDrivenRouting>(
        rulebases::ft_mesh_route_source(6, 6), 3, rules::ExecMode::Vm,
        "route", 2);
  } else {
    algo = make_algorithm(sc.algo);
  }
  NetworkConfig ncfg;
  ncfg.shards = shards;
  ncfg.event_driven = event_driven;
  ncfg.shard_threads = shard_threads;
  Network net(*topo, *algo, ncfg);

  if (sc.static_link_faults > 0 || sc.static_node_faults > 0) {
    Rng rng(static_cast<std::uint64_t>(sc.static_link_faults) * 131 +
            static_cast<std::uint64_t>(sc.static_node_faults) * 17 + 7);
    net.apply_faults([&](FaultSet& f) {
      inject_random_node_faults(f, sc.static_node_faults, rng);
      inject_random_link_faults(f, sc.static_link_faults, rng);
    });
  }

  UniformTraffic traffic(*topo);
  SimConfig cfg;
  cfg.injection_rate = sc.rate;
  cfg.packet_length = 4;
  cfg.warmup_cycles = sc.warmup;
  cfg.measure_cycles = sc.measure;
  cfg.seed = sc.seed;
  cfg.detection_delay = sc.detection_delay;
  cfg.idle_skip = idle_skip;
  Simulator sim(net, traffic, cfg);
  if (sc.lifecycle) {
    const Mesh* m = dynamic_cast<const Mesh*>(topo.get());
    FR_ASSERT(m != nullptr);
    FaultSchedule schedule;
    schedule.fail_link_at(600, m->at(3, 3), port_of(Compass::East));
    schedule.fail_node_at(800, m->at(4, 2));
    sim.set_fault_schedule(schedule);
  }

  RunOutput out;
  out.result = sim.run();
  out.lost_log = net.lost_log();
  out.packets_created = net.packets_created();
  out.packets_delivered = net.packets_delivered();
  out.skipped = sim.idle_cycles_skipped();
  return out;
}

/// Legacy serial run vs unified runs at 1/2/4/8 shards, forced onto a
/// multi-thread pool (thread count must never matter — and under TSan this
/// is the data-race certification for the parallel phase).
void expect_shard_identity(const Scenario& sc) {
  const RunOutput base = run_scenario(sc, 1, false, false, 0);
  for (const int shards : {1, 2, 4, 8}) {
    const RunOutput got = run_scenario(sc, shards, true, false, 4);
    const std::string label =
        sc.algo + "/" + sc.topo + " shards=" + std::to_string(shards);
    expect_identical(base.result, got.result, label);
    SCOPED_TRACE(label);
    EXPECT_EQ(base.lost_log, got.lost_log);
    EXPECT_EQ(base.packets_created, got.packets_created);
    EXPECT_EQ(base.packets_delivered, got.packets_delivered);
  }
}

// --------------------------------------------- fault-free, all algorithms

struct AlgoCase {
  std::string algo;
  std::string topo;
};

class ShardIdentity : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(ShardIdentity, FaultFreeBitIdentical) {
  Scenario sc;
  sc.algo = GetParam().algo;
  sc.topo = GetParam().topo;
  expect_shard_identity(sc);
}

std::vector<AlgoCase> all_algorithms() {
  std::vector<AlgoCase> cases;
  for (const std::string& name : algorithm_names()) {
    std::string topo = "mesh";
    if (name == "ecube" || name == "route_c" || name == "route_c_nft")
      topo = "hypercube";
    if (name == "dor-torus") topo = "torus";
    cases.push_back({name, topo});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ShardIdentity,
                         ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           std::string l = info.param.algo;
                           for (char& c : l)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return l;
                         });

// ------------------------------------------------------- faulted scenarios

TEST(ShardIdentityRuleDriven, FtMeshBitIdentical) {
  // The rule interpreter's per-decision state lives in per-node slots, so
  // the sharded step may evaluate rule programs concurrently on different
  // nodes. This pins both the determinism and (under TSan) the race
  // freedom of that path.
  Scenario sc;
  sc.algo = "rule-ft-mesh";
  sc.static_link_faults = 4;
  expect_shard_identity(sc);
}

TEST(ShardIdentityFaulted, StaticFaultsBitIdentical) {
  Scenario sc;
  sc.algo = "nafta";
  sc.static_link_faults = 6;
  sc.static_node_faults = 1;
  expect_shard_identity(sc);
}

TEST(ShardIdentityFaulted, LiveLifecycleBitIdentical) {
  Scenario sc;
  sc.topo = "mesh8";
  sc.algo = "nafta";
  sc.lifecycle = true;
  sc.rate = 0.08;
  sc.warmup = 300;
  sc.measure = 900;
  sc.detection_delay = 40;
  sc.seed = 42;
  expect_shard_identity(sc);
}

// --------------------------------------------------- event-driven skipping

TEST(EventSkip, SingleShardEventModeMatchesLegacy) {
  // event_driven at shards == 1, no pool: the worklist bookkeeping alone
  // must not change results.
  Scenario sc;
  sc.algo = "nafta";
  const RunOutput base = run_scenario(sc, 1, false, false, 0);
  const RunOutput ev = run_scenario(sc, 1, true, false, 1);
  expect_identical(base.result, ev.result, "event_driven shards=1");
  EXPECT_EQ(base.lost_log, ev.lost_log);
}

TEST(EventSkip, IdleSkipBitIdenticalAndSkipsOnLowLoad) {
  // Low offered load on a live-lifecycle run with a long detection window:
  // plenty of inert cycles. Skipping must change only the skip counter.
  Scenario sc;
  sc.topo = "mesh8";
  sc.algo = "nafta";
  sc.lifecycle = true;
  sc.rate = 0.002;
  sc.warmup = 300;
  sc.measure = 1500;
  sc.detection_delay = 500;
  sc.seed = 7;
  const RunOutput off = run_scenario(sc, 2, true, false, 2);
  const RunOutput on = run_scenario(sc, 2, true, true, 2);
  expect_identical(off.result, on.result, "idle_skip on/off");
  EXPECT_EQ(off.lost_log, on.lost_log);
  EXPECT_EQ(off.skipped, 0);
  EXPECT_GT(on.skipped, 0);
}

TEST(EventSkip, FaultFreeIdleSkipBitIdentical) {
  // Fault-free near-zero load: Normal-state single-cycle skips only (the
  // injection RNG draws every cycle, so the clock never jumps).
  Scenario sc;
  sc.algo = "nafta";
  sc.rate = 0.001;
  sc.seed = 3;
  const RunOutput off = run_scenario(sc, 1, true, false, 1);
  const RunOutput on = run_scenario(sc, 1, true, true, 1);
  expect_identical(off.result, on.result, "fault-free idle_skip");
  EXPECT_GT(on.skipped, 0);
}

TEST(EventSkip, RequiresEventCapableNetwork) {
  Mesh m = Mesh::two_d(4, 4);
  auto algo = make_algorithm("nafta");
  Network net(m, *algo);  // legacy serial network
  UniformTraffic traffic(m);
  SimConfig cfg;
  cfg.idle_skip = true;
  EXPECT_THROW(Simulator(net, traffic, cfg), ContractViolation);
}

}  // namespace
}  // namespace flexrouter
