// Tests for the exhaustive bounded-fault certification engine
// (rulelint --faults).
//
// Strategy mirrors the rulelint suite: the shipped corpus must certify
// clean at k = 1 with warnings-as-errors — fault-tolerant programs within
// their claims, fault-oblivious ones degrading to note-level findings
// only — and seeded fault-intolerance mutants must each FAIL the k = 1
// certificate with a concrete witness fault set. The loop is then closed
// dynamically: a mutant's witness pattern struck mid-run through the
// fault schedule loses traffic, while the pristine program delivers under
// the same strike, and certified-safe sample patterns keep a live run
// fully delivering.
#include <gtest/gtest.h>

#include <string>

#include "rulebases/corpus.hpp"
#include "ruleanalysis/corpus_lint.hpp"
#include "sim/witness_replay.hpp"

namespace flexrouter {
namespace {

using ruleanalysis::DiagClass;
using ruleanalysis::FaultCertOptions;
using ruleanalysis::FaultCertReport;
using ruleanalysis::FaultPattern;
using ruleanalysis::Finding;
using ruleanalysis::RegimeSummary;
using ruleanalysis::Severity;

/// Replace exactly one occurrence of `from` with `to`; fails the test when
/// the anchor is missing or ambiguous so mutations cannot rot silently.
std::string mutate(std::string source, const std::string& from,
                   const std::string& to) {
  const auto pos = source.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation anchor not found: " << from;
  EXPECT_EQ(source.find(from, pos + 1), std::string::npos)
      << "mutation anchor ambiguous: " << from;
  if (pos == std::string::npos) return source;
  source.replace(pos, from.size(), to);
  return source;
}

/// The k = 1 corpus certification, computed once for the whole suite.
const ruleanalysis::FaultCertCorpusResult& corpus_k1() {
  static const auto result = ruleanalysis::fault_cert_corpus();
  return result;
}

const FaultCertReport* report_for(const std::string& program) {
  for (const FaultCertReport& r : corpus_k1().reports)
    if (r.program == program) return &r;
  return nullptr;
}

const Finding* find_error(const FaultCertReport& rep, DiagClass cls) {
  for (const Finding& f : rep.findings)
    if (f.cls == cls && f.severity == Severity::Error) return &f;
  return nullptr;
}

// ---------------------------------------------------------- corpus gate

TEST(FaultCertCorpus, EveryShippedProgramCertifiesOneFault) {
  const auto& result = corpus_k1();
  EXPECT_EQ(result.reports.size(), 7u);
  EXPECT_TRUE(result.clean(/*werror=*/true)) << result.to_string();
  for (const FaultCertReport& r : result.reports)
    EXPECT_TRUE(r.certified) << r.to_string();
}

TEST(FaultCertCorpus, FaultTolerantProgramsCertifyWithinClaim) {
  const FaultCertReport* ft = report_for("ft_mesh_rules");
  ASSERT_NE(ft, nullptr);
  EXPECT_EQ(ft->fault_tolerance, 2);
  for (const RegimeSummary& r : ft->regimes)
    EXPECT_TRUE(r.certified()) << ft->program << " regime " << r.name;

  const FaultCertReport* nafta = report_for("nafta");
  ASSERT_NE(nafta, nullptr);
  EXPECT_EQ(nafta->fault_tolerance, 1);
  for (const RegimeSummary& r : nafta->regimes)
    EXPECT_TRUE(r.certified()) << nafta->program << " regime " << r.name;
}

TEST(FaultCertCorpus, FaultObliviousProgramsDegradeToNotesOnly) {
  // nara_rules claims no fault tolerance: faults outside the claim may
  // break connectivity, but only as note-level findings — the regime
  // counters still record every failing orbit honestly.
  const FaultCertReport* nara = report_for("nara_rules");
  ASSERT_NE(nara, nullptr);
  EXPECT_EQ(nara->fault_tolerance, 0);
  EXPECT_TRUE(nara->certified);
  std::uint64_t conn = 0;
  for (const RegimeSummary& r : nara->regimes) {
    conn += r.connectivity_failures;
    EXPECT_EQ(r.deadlock_failures, 0u) << r.name;
    EXPECT_EQ(r.progress_failures, 0u) << r.name;
  }
  EXPECT_GT(conn, 0u);
  for (const Finding& f : nara->findings)
    EXPECT_NE(f.severity, Severity::Error) << f.message;
}

TEST(FaultCertCorpus, SymmetryReductionIsEffective) {
  // 4x4 / 8x8 meshes keep the axis reflections (the diagonal is not a
  // program symmetry of x-then-y routing): order 4. The e-cube keeps the
  // bit translations: order 2^3.
  const FaultCertReport* ft = report_for("ft_mesh_rules");
  ASSERT_NE(ft, nullptr);
  EXPECT_EQ(ft->group_order, 4u);
  EXPECT_TRUE(ft->group_complete);
  EXPECT_GT(ft->reduction_factor, 3.0);
  EXPECT_GT(ft->raw_fault_sets, ft->orbit_count);

  const FaultCertReport* ecube = report_for("ecube_rules");
  ASSERT_NE(ecube, nullptr);
  EXPECT_EQ(ecube->group_order, 8u);
  EXPECT_GT(ecube->reduction_factor, 3.0);
}

TEST(FaultCertCorpus, BaselineReuseDominatesRecheckCost) {
  // nara_rules reads no fault-sensitive inputs: every faulted orbit must
  // revalidate its entire enumeration from the healthy baseline without a
  // single fresh decision.
  const FaultCertReport* nara = report_for("nara_rules");
  ASSERT_NE(nara, nullptr);
  EXPECT_EQ(nara->stats.decisions_evaluated, nara->stats.baseline_decisions);
  EXPECT_GT(nara->stats.decisions_reused, nara->stats.baseline_decisions);

  // ft_mesh reads link_ok/escape inputs, so faulted orbits re-enumerate
  // the touched premise points — but reuse still dominates.
  const FaultCertReport* ft = report_for("ft_mesh_rules");
  ASSERT_NE(ft, nullptr);
  EXPECT_GT(ft->stats.decisions_evaluated, ft->stats.baseline_decisions);
  EXPECT_GT(ft->stats.decisions_reused, ft->stats.decisions_evaluated);
}

TEST(FaultCertCorpus, WitnessesNameTheFaultSetAndElideLongLists) {
  // Satellite: connectivity witnesses carry the concrete fault set and cap
  // the per-set state list at max_witnesses_per_fault_set with "+M more".
  const FaultCertReport* nara = report_for("nara_rules");
  ASSERT_NE(nara, nullptr);
  bool saw_fault_set = false;
  bool saw_elision = false;
  for (const Finding& f : nara->findings) {
    if (f.cls != DiagClass::Blackhole) continue;
    if (f.message.find("faults={") != std::string::npos) saw_fault_set = true;
    if (f.witness.find("more)") != std::string::npos) saw_elision = true;
  }
  EXPECT_TRUE(saw_fault_set);
  EXPECT_TRUE(saw_elision);
}

// ------------------------------------------------------- bounds + options

TEST(FaultCert, HealthyOnlyBoundChecksExactlyOneSet) {
  FaultCertOptions opts;
  opts.max_faults = 0;
  opts.correlated = false;
  const auto rep = ruleanalysis::fault_cert_source(
      rulebases::ft_mesh_route_source(4, 4), opts);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->certified) << rep->to_string();
  EXPECT_EQ(rep->raw_fault_sets, 1u);
  ASSERT_EQ(rep->regimes.size(), 1u);
  EXPECT_EQ(rep->regimes[0].name, "k=0");
}

TEST(FaultCert, TwoFaultCertificationOfFtMesh) {
  // The program claims tolerance 2: every pair of link/node faults must
  // certify, C(24 + 16, 2) = 780 raw pairs orbit-reduced.
  FaultCertOptions opts;
  opts.max_faults = 2;
  opts.correlated = false;
  const auto rep = ruleanalysis::fault_cert_source(
      rulebases::ft_mesh_route_source(4, 4), opts);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->certified) << rep->to_string();
  const RegimeSummary* k2 = nullptr;
  for (const RegimeSummary& r : rep->regimes)
    if (r.name == "k=2") k2 = &r;
  ASSERT_NE(k2, nullptr);
  EXPECT_EQ(k2->raw_sets, 780u);
  EXPECT_TRUE(k2->certified());
  EXPECT_GT(k2->raw_sets, k2->orbits);
}

TEST(FaultCert, ReportIsDeterministicAcrossThreadCounts) {
  const std::string src = rulebases::ft_mesh_route_source(4, 4);
  FaultCertOptions opts;
  opts.num_threads = 1;
  const auto serial = ruleanalysis::fault_cert_source(src, opts);
  opts.num_threads = 3;
  const auto parallel = ruleanalysis::fault_cert_source(src, opts);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(serial->to_string(), parallel->to_string());
}

// -------------------------------------------- fault-intolerance mutants

/// ft_mesh with the escape-entry rule deleted: the moment every minimal
/// link of a header is broken there is nowhere left to go.
std::string ft_mesh_without_escape_entry() {
  return mutate(rulebases::ft_mesh_route_source(4, 4),
                "  IF escape_ok = 1 THEN !cand(escape_port, 2, 0);\n", "");
}

TEST(FaultCertMutants, DeletedEscapeEntryFailsOneFaultCert) {
  const auto rep =
      ruleanalysis::fault_cert_source(ft_mesh_without_escape_entry());
  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->certified);
  EXPECT_FALSE(rep->clean(/*werror=*/false));
  const Finding* f = find_error(*rep, DiagClass::Blackhole);
  ASSERT_NE(f, nullptr) << rep->to_string();
  // The witness names the concrete fault set inside the claim.
  EXPECT_NE(f->message.find("faults={"), std::string::npos) << f->message;
  EXPECT_FALSE(rep->failing_sets.empty());
}

TEST(FaultCertMutants, InjectedOnlyEscapeStrandsInFlightHeaders) {
  // Narrowing the escape entry to freshly injected headers dead-ends every
  // in-flight header whose minimal links broke under it.
  const std::string mutant =
      mutate(rulebases::ft_mesh_route_source(4, 4),
             "  IF escape_ok = 1 THEN !cand(escape_port, 2, 0);",
             "  IF escape_ok = 1 AND injected = 1"
             " THEN !cand(escape_port, 2, 0);");
  const auto rep = ruleanalysis::fault_cert_source(mutant);
  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->certified);
  EXPECT_NE(find_error(*rep, DiagClass::Blackhole), nullptr)
      << rep->to_string();
}

TEST(FaultCertMutants, NaftaWithNarrowedFtRulesFailsOneFaultCert) {
  // Chained mutation disabling the east/west/south fault-mode outputs: the
  // surviving north rule cannot rescue a header whose own north link broke.
  std::string mutant = rulebases::nafta_program_source(4, 4);
  mutant = mutate(mutant,
                  "  IF deadend(0) = 0 AND link_fault(0) = 0"
                  " THEN RETURN(east),\n"
                  "      fault_count <- min(fault_count, 31);\n",
                  "");
  mutant = mutate(
      mutant, "  IF deadend(1) = 0 AND link_fault(1) = 0 THEN RETURN(west);\n",
      "");
  mutant = mutate(
      mutant, "  IF deadend(3) = 0 AND link_fault(3) = 0 THEN RETURN(south);\n",
      "");
  const auto rep = ruleanalysis::fault_cert_source(mutant);
  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->certified) << rep->to_string();
  const Finding* f = find_error(*rep, DiagClass::Blackhole);
  ASSERT_NE(f, nullptr);
  ASSERT_FALSE(rep->failing_sets.empty());
  // A single-fault witness: this program claims tolerance 1.
  EXPECT_EQ(rep->failing_sets.front().elements(), 1u);
}

// -------------------------------------- dynamic witness cross-validation

WitnessReplayOptions ft_mesh_replay_opts() {
  WitnessReplayOptions opts;
  opts.num_vcs = 3;
  opts.escape_vc = 2;
  return opts;
}

TEST(FaultCertDynamic, MutantWitnessFailsLiveAndPristineSurvivesIt) {
  const std::string mutant = ft_mesh_without_escape_entry();
  const auto rep = ruleanalysis::fault_cert_source(mutant);
  ASSERT_TRUE(rep.has_value());
  // Node-fault replays retire traffic terminating at the dead router by
  // design; cross-validate with a link-only witness.
  const FaultPattern* witness = nullptr;
  for (const FaultPattern& p : rep->failing_sets)
    if (p.nodes.empty() && !p.links.empty()) witness = &p;
  ASSERT_NE(witness, nullptr) << rep->to_string();

  const auto broken =
      replay_fault_pattern(mutant, *witness, ft_mesh_replay_opts());
  EXPECT_TRUE(broken.failure) << broken.summary;

  const auto pristine = replay_fault_pattern(
      rulebases::ft_mesh_route_source(4, 4), *witness, ft_mesh_replay_opts());
  EXPECT_FALSE(pristine.failure) << pristine.summary;
}

TEST(FaultCertDynamic, CertifiedSamplePatternsDeliverLive) {
  const FaultCertReport* ft = report_for("ft_mesh_rules");
  ASSERT_NE(ft, nullptr);
  ASSERT_FALSE(ft->certified_samples.empty());
  for (const FaultPattern& p : ft->certified_samples) {
    const auto res = replay_fault_pattern(rulebases::ft_mesh_route_source(4, 4),
                                          p, ft_mesh_replay_opts());
    EXPECT_FALSE(res.failure) << res.summary;
  }
}

}  // namespace
}  // namespace flexrouter
