#include "rulebases/corpus.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace flexrouter::rulebases {

namespace {

std::string header_mesh(int width, int height, const std::string& name) {
  std::ostringstream os;
  os << "PROGRAM " << name << ";\n"
     << "CONSTANT width = " << width << "\n"
     << "CONSTANT height = " << height << "\n"
     << "CONSTANT dirs = 4\n"
     << "CONSTANT vcs = 2\n"
     << "CONSTANT outs = {east, west, north, south, local}\n"
     << "INPUT xpos IN 0 TO width-1\n"
     << "INPUT ypos IN 0 TO height-1\n"
     << "INPUT xdes IN 0 TO width-1\n"
     << "INPUT ydes IN 0 TO height-1\n";
  return os.str();
}

}  // namespace

std::string nara_route_source(int width, int height) {
  // The runnable double-y NARA: one rule per (sign dx, sign dy) case, each
  // conclusion emitting the full adaptive candidate set. Ports follow the
  // Compass numbering (east=0, west=1, north=2, south=3, local=4); VC 1 is
  // the north-going virtual network, VC 0 the south-going one.
  std::string src = header_mesh(width, height, "nara_rules");
  src += R"(
INPUT in_vc IN vcs
INPUT injected IN 0 TO 1
ON route
  IF ypos < ydes AND xpos < xdes THEN !cand(2, 1, 0), !cand(0, 1, 0);
  IF ypos < ydes AND xpos > xdes THEN !cand(2, 1, 0), !cand(1, 1, 0);
  IF ypos < ydes AND xpos = xdes THEN !cand(2, 1, 0);
  IF ypos > ydes AND xpos < xdes THEN !cand(3, 0, 0), !cand(0, 0, 0);
  IF ypos > ydes AND xpos > xdes THEN !cand(3, 0, 0), !cand(1, 0, 0);
  IF ypos > ydes AND xpos = xdes THEN !cand(3, 0, 0);
  -- dy = 0: injected packets pick either network, in-flight ones stay on
  -- their arrival VC (deadlock freedom of the two virtual networks).
  IF ypos = ydes AND xpos < xdes AND injected = 1
    THEN !cand(0, 0, 0), !cand(0, 1, 0);
  IF ypos = ydes AND xpos < xdes AND injected = 0 THEN !cand(0, in_vc, 0);
  IF ypos = ydes AND xpos > xdes AND injected = 1
    THEN !cand(1, 0, 0), !cand(1, 1, 0);
  IF ypos = ydes AND xpos > xdes AND injected = 0 THEN !cand(1, in_vc, 0);
  IF ypos = ydes AND xpos = xdes THEN !cand(4, 0, 0);
END route;
)";
  return src;
}

std::string ft_mesh_route_source(int width, int height) {
  // Ports: east=0 west=1 north=2 south=3 local=4. VC 0/1: the NARA double
  // networks (by the sign of dy, with the stay-on-arrival rule for dy = 0);
  // VC 2: the escape layer, entered only when every minimal link is broken
  // and sticky once entered. The adaptive layer is minimal, so it is
  // acyclic by the double-network argument even with links filtered out;
  // the escape layer is up*/down*; adaptive -> escape edges are one-way —
  // the full channel dependency graph is acyclic (tests verify).
  std::string src = header_mesh(width, height, "ft_mesh_rules");
  src += R"(
CONSTANT ftvcs = 3
INPUT in_vc IN ftvcs
INPUT injected IN 0 TO 1
INPUT link_ok(dirs) IN 0 TO 1
INPUT on_escape IN 0 TO 1
INPUT escape_ok IN 0 TO 1
INPUT escape_port IN 0 TO 4
ON route
  -- delivery and escape stickiness come first
  IF xpos = xdes AND ypos = ydes THEN !cand(4, 0, 0);
  IF on_escape = 1 THEN !cand(escape_port, 2, 0);
  -- north-going (dy > 0): network 1
  IF ypos < ydes AND xpos < xdes AND link_ok(2) = 1 AND link_ok(0) = 1
    THEN !cand(2, 1, 0), !cand(0, 1, 0);
  IF ypos < ydes AND xpos < xdes AND link_ok(2) = 1 AND link_ok(0) = 0
    THEN !cand(2, 1, 0);
  IF ypos < ydes AND xpos < xdes AND link_ok(2) = 0 AND link_ok(0) = 1
    THEN !cand(0, 1, 0);
  IF ypos < ydes AND xpos > xdes AND link_ok(2) = 1 AND link_ok(1) = 1
    THEN !cand(2, 1, 0), !cand(1, 1, 0);
  IF ypos < ydes AND xpos > xdes AND link_ok(2) = 1 AND link_ok(1) = 0
    THEN !cand(2, 1, 0);
  IF ypos < ydes AND xpos > xdes AND link_ok(2) = 0 AND link_ok(1) = 1
    THEN !cand(1, 1, 0);
  IF ypos < ydes AND xpos = xdes AND link_ok(2) = 1 THEN !cand(2, 1, 0);
  -- south-going (dy < 0): network 0
  IF ypos > ydes AND xpos < xdes AND link_ok(3) = 1 AND link_ok(0) = 1
    THEN !cand(3, 0, 0), !cand(0, 0, 0);
  IF ypos > ydes AND xpos < xdes AND link_ok(3) = 1 AND link_ok(0) = 0
    THEN !cand(3, 0, 0);
  IF ypos > ydes AND xpos < xdes AND link_ok(3) = 0 AND link_ok(0) = 1
    THEN !cand(0, 0, 0);
  IF ypos > ydes AND xpos > xdes AND link_ok(3) = 1 AND link_ok(1) = 1
    THEN !cand(3, 0, 0), !cand(1, 0, 0);
  IF ypos > ydes AND xpos > xdes AND link_ok(3) = 1 AND link_ok(1) = 0
    THEN !cand(3, 0, 0);
  IF ypos > ydes AND xpos > xdes AND link_ok(3) = 0 AND link_ok(1) = 1
    THEN !cand(1, 0, 0);
  IF ypos > ydes AND xpos = xdes AND link_ok(3) = 1 THEN !cand(3, 0, 0);
  -- x-only (dy = 0): stay on the arrival network, injected may pick either
  IF ypos = ydes AND xpos < xdes AND link_ok(0) = 1 AND injected = 1
    THEN !cand(0, 0, 0), !cand(0, 1, 0);
  IF ypos = ydes AND xpos < xdes AND link_ok(0) = 1 AND injected = 0
    THEN !cand(0, min(in_vc, 1), 0);
  IF ypos = ydes AND xpos > xdes AND link_ok(1) = 1 AND injected = 1
    THEN !cand(1, 0, 0), !cand(1, 1, 0);
  IF ypos = ydes AND xpos > xdes AND link_ok(1) = 1 AND injected = 0
    THEN !cand(1, min(in_vc, 1), 0);
  -- every minimal link broken: enter the escape layer
  IF escape_ok = 1 THEN !cand(escape_port, 2, 0);
END route;
)";
  return src;
}

std::string ecube_route_source(int dimension) {
  FR_REQUIRE(dimension >= 1 && dimension <= 12);
  std::ostringstream os;
  os << "PROGRAM ecube_rules;\n"
     << "CONSTANT dim = " << dimension << "\n"
     << "CONSTANT maxnode = " << ((1 << dimension) - 1) << "\n"
     << "INPUT node IN 0 TO maxnode\n"
     << "INPUT dest IN 0 TO maxnode\n"
     << "ON route\n"
     << "  IF node = dest THEN !cand(dim, 0, 0);\n";
  // One rule per dimension: bit i differs and all lower bits agree.
  for (int i = 0; i < dimension; ++i) {
    os << "  IF bit(xor(node, dest), " << i << ") = 1";
    for (int j = 0; j < i; ++j)
      os << " AND bit(xor(node, dest), " << j << ") = 0";
    os << " THEN !cand(" << i << ", 0, 0);\n";
  }
  os << "END route;\n";
  return os.str();
}

std::string ecube_msb_route_source(int dimension) {
  FR_REQUIRE(dimension >= 1 && dimension <= 12);
  std::ostringstream os;
  os << "PROGRAM ecube_msb_rules;\n"
     << "CONSTANT dim = " << dimension << "\n"
     << "CONSTANT maxnode = " << ((1 << dimension) - 1) << "\n"
     << "INPUT node IN 0 TO maxnode\n"
     << "INPUT dest IN 0 TO maxnode\n"
     << "ON route\n"
     << "  IF node = dest THEN !cand(dim, 0, 0);\n";
  // One rule per dimension: bit i differs and all higher bits agree.
  for (int i = dimension - 1; i >= 0; --i) {
    os << "  IF bit(xor(node, dest), " << i << ") = 1";
    for (int j = dimension - 1; j > i; --j)
      os << " AND bit(xor(node, dest), " << j << ") = 0";
    os << " THEN !cand(" << i << ", 0, 0);\n";
  }
  os << "END route;\n";
  return os.str();
}

namespace {

/// Registers shared by NAFTA and its non-FT variant (NARA): 112 bits in
/// four registers.
const char* kNaftaNftRegisters = R"(
-- non-fault-tolerant registers (NARA needs these too): 112 bits
VARIABLE out_queue[5] IN 0 TO 255     -- data assigned per output (adaptivity)
VARIABLE mean_queue[5] IN 0 TO 255    -- smoothed per-output load
VARIABLE sched_credit[4] IN 0 TO 63   -- fair-scheduling credits
VARIABLE msg_count IN 0 TO 255        -- messages in transit
)";

/// FT-only registers: 47 bits in four registers (the paper: "only 47 bits
/// account for fault-tolerance").
const char* kNaftaFtRegisters = R"(
-- fault-tolerance registers: 47 bits
VARIABLE dir_state[4] IN node_states  -- per-direction region state (12)
VARIABLE fault_count IN 0 TO 31       -- known faults nearby (5)
VARIABLE exception_flags[4] IN 0 TO 3 -- special-situation markers (8)
VARIABLE ft_timer IN 0 TO 4194303     -- reconfiguration timeout (22)
)";

const char* kNaftaSharedInputs = R"(
INPUT outchan(5, vcs) IN 0 TO 1       -- output channel free flags
INPUT sel_vc IN vcs                   -- virtual network of the message
INPUT msg_len IN 0 TO 255             -- remaining message length
INPUT info_kind IN info_kinds         -- what an info message carries
INPUT changed IN 0 TO 1               -- did the last update change state
)";

const char* kNaftaFtInputs = R"(
INPUT link_fault(dirs) IN 0 TO 1      -- per-link fault flag
INPUT deadend(dirs) IN 0 TO 1         -- propagated dead-end flags
INPUT misrouted_in IN 0 TO 1          -- header misroute mark
INPUT new_info IN node_states         -- state carried by a fault message
INPUT nb_state IN node_states         -- a neighbour's current state
INPUT fault_kind IN fault_kinds       -- what failed
INPUT except_dir IN dirs              -- direction of a special situation
INPUT plen_over IN 0 TO 1             -- path-length counter over budget
)";

/// Rule bases present in both variants (the "nft" column of Table 1).
/// `incoming_message` is the fault-free fast path: one interpretation
/// selects among the minimal outputs. Its feature space — four offset-sign
/// comparators, four channel-free flags, local readiness and a distance
/// test — indexes a 1024-entry table, as in the paper.
const char* kNaftaNftRuleBases = R"(
-- handling of an incoming message (fault-free fast path)      [Table 1 row 1]
ON incoming_message RETURNS outs
  IF NOT (ypos < ydes) AND NOT (ypos > ydes) AND NOT (xpos < xdes)
     AND NOT (xpos > xdes) AND outchan(4, sel_vc) = 1
    THEN RETURN(local);
  IF ypos < ydes AND xpos < xdes AND outchan(0, sel_vc) = 1
     AND meshdist(xpos, ypos, xdes, ydes) > 1
    THEN RETURN(east), out_queue(0) <- min(out_queue(0) + msg_len, 255);
  IF ypos < ydes AND outchan(2, sel_vc) = 1
    THEN RETURN(north), out_queue(2) <- min(out_queue(2) + msg_len, 255);
  IF ypos < ydes AND xpos > xdes AND outchan(1, sel_vc) = 1
    THEN RETURN(west), out_queue(1) <- min(out_queue(1) + msg_len, 255);
  IF ypos > ydes AND xpos < xdes AND outchan(0, sel_vc) = 1
     AND meshdist(xpos, ypos, xdes, ydes) > 1
    THEN RETURN(east), out_queue(0) <- min(out_queue(0) + msg_len, 255);
  IF ypos > ydes AND outchan(3, sel_vc) = 1
    THEN RETURN(south), out_queue(3) <- min(out_queue(3) + msg_len, 255);
  IF ypos > ydes AND xpos > xdes AND outchan(1, sel_vc) = 1
    THEN RETURN(west), out_queue(1) <- min(out_queue(1) + msg_len, 255);
  IF NOT (ypos < ydes) AND NOT (ypos > ydes) AND xpos < xdes
     AND outchan(0, sel_vc) = 1
    THEN RETURN(east), msg_count <- min(msg_count + 1, 255);
  IF NOT (ypos < ydes) AND NOT (ypos > ydes) AND xpos > xdes
     AND outchan(1, sel_vc) = 1
    THEN RETURN(west), msg_count <- min(msg_count + 1, 255);
END incoming_message;

-- fair output scheduling when a message completes             [Table 1 row 4]
ON message_finished(fp IN dirs)
  IF fp IN {0, 1, 2, 3} AND sched_credit(fp) > 0 AND out_queue(fp) > 0
    THEN sched_credit(fp) <- sched_credit(fp) - 1,
         out_queue(fp) <- out_queue(fp) - 1;
  IF fp IN {0, 1, 2, 3} AND sched_credit(fp) > 0 AND mean_queue(fp) > 0
    THEN sched_credit(fp) <- sched_credit(fp) - 1,
         mean_queue(fp) <- mean_queue(fp) - 1;
  IF fp IN {0, 1, 2, 3} AND msg_count > 0
    THEN msg_count <- msg_count - 1,
         mean_queue(fp) <- min(mean_queue(fp) + 1, 255);
END message_finished;

-- generation of messages to adjacent nodes                    [Table 1 row 7]
ON tell_my_neighbors(dir IN dirs)
  IF dir IN {0, 1, 2, 3} AND changed = 1 AND info_kind = loadmsg
    THEN !send_info(dir, 0);
  IF dir IN {0, 1, 2, 3} AND changed = 1 AND info_kind = faultmsg
    THEN !send_info(dir, 1);
END tell_my_neighbors;

-- update of the adaptivity criterion per transmitted flit     [Table 1 row 8]
ON flit_finished(p IN dirs)
  IF out_queue(p) > 0 AND sched_credit(p) > 0
    THEN out_queue(p) <- out_queue(p) - 1,
         mean_queue(p) <- min(mean_queue(p) + sched_credit(p), 255);
  IF out_queue(p) > 0
    THEN out_queue(p) <- out_queue(p) - 1;
END flit_finished;

-- update of adaptivity or fault information from a neighbour  [Table 1 row 10]
ON message_from_info_channel
  IF info_kind = loadmsg THEN msg_count <- 0;
  IF info_kind = faultmsg THEN !trigger_update(0);
END message_from_info_channel;
)";

/// Rule bases only the fault-tolerant NAFTA needs.
const char* kNaftaFtRuleBases = R"(
-- routing decision in fault-tolerant mode                     [Table 1 row 2]
ON in_message_ft RETURNS outs
  IF deadend(0) = 0 AND link_fault(0) = 0 THEN RETURN(east),
      fault_count <- min(fault_count, 31);
  IF deadend(1) = 0 AND link_fault(1) = 0 THEN RETURN(west);
  IF deadend(2) = 0 AND link_fault(2) = 0 THEN RETURN(north);
  IF deadend(3) = 0 AND link_fault(3) = 0 THEN RETURN(south);
  IF link_fault(0) = 1 AND link_fault(1) = 1 AND link_fault(2) = 1
     AND link_fault(3) = 1
    THEN RETURN(local), !blocked_alert(deadend(0) = 1 OR deadend(1) = 1);
END in_message_ft;

-- new fault states require an update of routing data          [Table 1 row 3]
ON update_dir_table
  IF new_info = deact AND changed = 1
    THEN FORALL i IN dirs: dir_state(i) <- deact,
         !announce({dee, dew, den, des} SETMINUS {dee}),
         ft_timer <- 0;
  IF new_info = dee AND except_dir = 0 THEN dir_state(0) <- dee;
  IF new_info = dew AND except_dir = 1 THEN dir_state(1) <- dew;
  IF new_info = den AND except_dir = 2 THEN dir_state(2) <- den;
  IF new_info = des AND except_dir = 3 THEN dir_state(3) <- des;
  IF new_info = ok AND changed = 1
    THEN dir_state(except_dir) <- ok,
         ft_timer <- min(ft_timer + 1, 4194303);
END update_dir_table;

-- status from a neighbour node or change of a link state      [Table 1 row 5]
ON calculate_new_node_state
  IF nb_state = deact AND fault_count = 0 AND changed = 1
    THEN dir_state(0) <- nb_state, fault_count <- fault_count + 1;
  IF nb_state = iso AND plen_over = 0
    THEN dir_state(1) <- nb_state,
         !announce({deact, iso} SETMINUS {deact});
  IF nb_state = ok AND fault_count = 0
    THEN dir_state(2) <- ok;
  IF changed = 1 AND plen_over = 1
    THEN ft_timer <- min(ft_timer + 1, 4194303);
END calculate_new_node_state;

-- handling of messages in a special situation                 [Table 1 row 6]
ON test_exception
  IF misrouted_in = 1 AND plen_over = 1 AND fault_count IN {1, 2, 3}
     AND except_dir < 4
    THEN exception_flags(except_dir) <- 3, !force_escape(except_dir);
  IF misrouted_in = 1 AND plen_over = 0 AND except_dir < 4
    THEN exception_flags(except_dir) <- 1;
  IF misrouted_in = 0 AND fault_count IN {1, 2, 3} AND except_dir < 4
    THEN exception_flags(except_dir) <- 2;
END test_exception;

-- update of node state on failure                             [Table 1 row 9]
ON fault_occured
  IF fault_kind = linkf
    THEN fault_count <- min(fault_count + 1, 31),
         !mark(fault_kind IN {linkf, nodef}, fault_kind IN {nodef, transient});
  IF fault_kind = nodef
    THEN fault_count <- min(fault_count + 1, 31),
         !announce({dee} UNION {dew});
  IF fault_kind = transient THEN ft_timer <- 0;
END fault_occured;

-- consistency of neighbouring states                          [Table 1 row 11]
ON consider_neighbor_state
  IF fault_count < 2
    THEN fault_count <- fault_count + 1, dir_state(0) <- nb_state;
END consider_neighbor_state;
)";

std::string nafta_common_decls(int width, int height,
                               const std::string& name) {
  std::string src = header_mesh(width, height, name);
  src +=
      "CONSTANT node_states = {ok, dee, dew, den, des, deact, iso, spare}\n"
      "CONSTANT fault_kinds = {linkf, nodef, transient}\n"
      "CONSTANT info_kinds = {loadmsg, faultmsg}\n";
  src += kNaftaSharedInputs;
  src += kNaftaNftRegisters;
  return src;
}

}  // namespace

std::string nafta_program_source(int width, int height) {
  std::string src = nafta_common_decls(width, height, "nafta");
  src += kNaftaFtInputs;
  src += kNaftaFtRegisters;
  src += kNaftaNftRuleBases;
  src += kNaftaFtRuleBases;
  return src;
}

std::string nara_program_source(int width, int height) {
  std::string src = nafta_common_decls(width, height, "nara");
  src += kNaftaNftRuleBases;
  return src;
}

const std::map<std::string, std::string>& nafta_meanings() {
  static const std::map<std::string, std::string> meanings = {
      {"incoming_message", "handling of an incoming message"},
      {"in_message_ft", "routing decision in ft mode"},
      {"update_dir_table", "new fault states require update of data"},
      {"message_finished", "fair output scheduling"},
      {"calculate_new_node_state",
       "status from a neighbor node or change of a link state"},
      {"test_exception", "handling of messages in a special situation"},
      {"tell_my_neighbors", "generation of messages to adjacent nodes"},
      {"flit_finished", "update adaptivity criterion"},
      {"fault_occured", "update of node state on failure"},
      {"message_from_info_channel",
       "update of adaptivity or fault information"},
      {"consider_neighbor_state", "consistency of neighboring states"},
  };
  return meanings;
}

namespace {

std::string route_c_decls(int d, int a, bool ft, const std::string& name) {
  FR_REQUIRE(d >= 2 && d <= 16);
  FR_REQUIRE(a >= 1 && a <= 8);
  std::ostringstream os;
  os << "PROGRAM " << name << ";\n"
     << "CONSTANT dim = " << d << "\n"
     << "CONSTANT maxmask = " << ((1 << d) - 1) << "\n"
     << "CONSTANT maxacmd = " << ((1 << a) - 1) << "\n"
     << "CONSTANT fault_states = {safe, faulty, ounsafe, sunsafe, lfault}\n"
     << "CONSTANT phases = {asc, desc, mis, esc}\n"
     << "INPUT up_mask IN 0 TO maxmask\n"      // dimensions still to set
     << "INPUT down_mask IN 0 TO maxmask\n"    // dimensions still to clear
     << "INPUT misrouted_in IN 0 TO 1\n"
     << "INPUT phase IN phases\n"
     << "INPUT new_state(dim) IN fault_states\n"
     << "INPUT nb_unsafe IN 0 TO 1\n"
     << "INPUT dest_unsafe IN 0 TO 1\n"
     << "INPUT blocked IN 0 TO 1\n"
     << "INPUT esc_ok IN 0 TO 1\n";
  // Registers: 15d + 2*ceil(log2 d) + 3 bits in nine registers, one of them
  // constant (a configuration-time value occupying no flexible bits).
  os << "-- non-fault-tolerant register: 9d bits\n"
     << "VARIABLE queue_len[dim] IN 0 TO 511\n";
  if (ft) {
    os << "-- fault-tolerance registers: 6d + 2*ceil(log2 d) + 3 bits\n"
       << "VARIABLE neighb_state[dim] IN fault_states\n"  // 3d
       << "VARIABLE link_fault[dim] IN 0 TO 1\n"          // d
       << "VARIABLE tried_up[dim] IN 0 TO 1\n"            // d
       << "VARIABLE tried_down[dim] IN 0 TO 1\n"          // d
       << "VARIABLE number_unsafe IN 0 TO dim - 1\n"      // ceil(log2 d)
       << "VARIABLE number_faulty IN 0 TO dim - 1\n"      // ceil(log2 d)
       << "VARIABLE state IN fault_states INIT safe\n"    // 3
       << "VARIABLE cube_dim IN dim TO dim\n";            // constant, 0 bits
  }
  return os.str();
}

/// 512 entries: five direct binary signals x four mask zero-test atoms.
const char* kRouteCDecideDir = R"(
-- decides which outputs can be taken (set 2 of the decision)
ON decide_dir
  IF up_mask <> 0 AND blocked = 0 AND misrouted_in = 0 AND dest_unsafe = 0
    THEN !dirset(up_mask, 0);
  IF up_mask <> 0 AND blocked = 0 AND misrouted_in = 1
    THEN !dirset(up_mask, 0);
  IF up_mask = 0 AND down_mask <> 0 AND blocked = 0 AND dest_unsafe = 0
    THEN !dirset(down_mask, 1);
  IF up_mask = 0 AND down_mask <> 0 AND blocked = 0 AND dest_unsafe = 1
    THEN !dirset(down_mask, 1);
  IF blocked = 1 AND esc_ok = 1 AND nb_unsafe = 0
    THEN !dirset(maxmask, 2);
  IF blocked = 1 AND esc_ok = 1 AND nb_unsafe = 1
    THEN !dirset(maxmask, 2);
  IF blocked = 1 AND esc_ok = 0 AND up_mask <> 0
    THEN !dirset(up_mask, 3);
  IF blocked = 1 AND esc_ok = 0 AND down_mask <> 0
    THEN !dirset(down_mask, 3);
  IF up_mask = 0 AND down_mask = 0 THEN !dirset(0, 4);
END decide_dir;
)";

/// 4d entries: phase (4 symbols) x direction (d, direct).
const char* kRouteCDecideVc = R"(
-- decide output and virtual channel, update adaptivity
ON decide_vc(dir IN dim) RETURNS 0 TO maxacmd
  IF phase = asc AND dir < dim
    THEN RETURN(0),
         queue_len(dir) <- min(queue_len(dir) + 1, 511);
  IF phase = desc AND dir < dim
    THEN RETURN(1),
         queue_len(dir) <- min(queue_len(dir) + 1, 511);
  IF phase = mis AND dir < dim THEN RETURN(3), tried_up(dir) <- 1;
  IF phase = esc AND dir < dim THEN RETURN(2), tried_down(dir) <- 1;
END decide_vc;
)";

/// 200 entries: new_state (5, direct) x state (5, direct) x three counter
/// comparison atoms — the paper reports 180 x 7 for its encoding.
const char* kRouteCUpdateState = R"(
-- state update requires counting of unsafe or faulty neighbours (Figure 4)
ON update_state(dir IN dim)
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0
    THEN neighb_state(dir) <- new_state(dir),
         number_faulty <- min(number_faulty + 1, dim - 1),
         number_unsafe <- min(number_unsafe + 1, dim - 1);
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe
     AND number_unsafe = 2
    THEN state <- ounsafe,
         number_unsafe <- min(number_unsafe + 1, dim - 1),
         FORALL i IN dim: !send_newmessage(i, ounsafe),
         neighb_state(dir) <- new_state(dir);
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe
     AND NOT (number_unsafe = 2) AND number_faulty = 0
    THEN neighb_state(dir) <- new_state(dir),
         number_unsafe <- min(number_unsafe + 1, dim - 1);
  IF new_state(dir) = faulty AND number_faulty = dim - 1
    THEN state <- sunsafe, link_fault(dir) <- 1,
         FORALL i IN dim: !send_newmessage(i, sunsafe);
  IF new_state(dir) = safe AND state = ounsafe AND number_unsafe = 2
    THEN state <- safe, neighb_state(dir) <- safe,
         FORALL i IN dim: !send_newmessage(i, safe);
END update_state;
)";

const char* kRouteCAdaptivity = R"(
-- create adaptivity criterion (method not specified in [ChW96]; any rule
-- base fits here — this one selects the least-loaded usable dimension)
ON adaptivity RETURNS dim
  IF EXISTS i IN dim: (FORALL j IN dim: queue_len(i) <= queue_len(j))
    THEN RETURN(0);
END adaptivity;
)";

}  // namespace

std::string route_c_program_source(int d, int a) {
  std::string src = route_c_decls(d, a, /*ft=*/true, "route_c");
  src += kRouteCDecideDir;
  src += kRouteCDecideVc;
  src += kRouteCUpdateState;
  src += kRouteCAdaptivity;
  return src;
}

std::string route_c_nft_program_source(int d, int a) {
  // The stripped variant folds the (trivial) two-channel choice into
  // decide_dir — Table 2 marks only decide_dir and adaptivity as needed
  // without fault tolerance.
  std::string src = route_c_decls(d, a, /*ft=*/false, "route_c_nft");
  src += kRouteCDecideDir;
  src += kRouteCAdaptivity;
  return src;
}

const std::map<std::string, std::string>& route_c_meanings() {
  static const std::map<std::string, std::string> meanings = {
      {"decide_dir", "decides which outputs can be taken"},
      {"decide_vc", "decide output and virt. channel, update adaptivity"},
      {"update_state", "state update: counting unsafe/faulty neighbors"},
      {"adaptivity", "create adaptivity criterion (not specified)"},
  };
  return meanings;
}

}  // namespace flexrouter::rulebases
