// The rule-base corpus: the routing algorithms of Section 5 written in the
// rule language.
//
// Two kinds of programs live here:
//  * Runnable decision programs (`nara_route_source`) that drive the
//    simulated router through RuleDrivenRouting and are differentially
//    tested against the native C++ implementations.
//  * The hardware-accounting corpora for Tables 1 and 2
//    (`nafta_program_source` / `route_c_program_source` and their stripped
//    non-fault-tolerant variants): one rule base per row of the paper's
//    tables, with register budgets matching the published counts
//    (NAFTA: 159 bits in 8 registers, 47 FT-only; ROUTE_C:
//    15d + 2*ceil(log2 d) + 3 bits in 9 registers, 9d of them non-FT).
//    These compile through the ARON compiler; bench/table1_nafta and
//    bench/table2_route_c print the regenerated tables next to the paper's
//    numbers.
#pragma once

#include <map>
#include <string>

namespace flexrouter::rulebases {

/// Runnable NARA decision program for a width x height mesh (2 VCs).
std::string nara_route_source(int width, int height);

/// Runnable e-cube decision program for a d-dimensional hypercube (1 VC):
/// corrects the lowest differing address bit first, using the bit/xor
/// builtins. Differential-tested against the native ECubeHypercube.
std::string ecube_route_source(int dimension);

/// The same e-cube discipline with the opposite dimension order (highest
/// differing bit first). Still deadlock-free dimension-ordered routing, but
/// a genuinely different routing function at every multi-bit premise point
/// — the live hot-swap scenario's "new program" (bench/rule_hotswap,
/// tests/test_aot).
std::string ecube_msb_route_source(int dimension);

/// Runnable FAULT-TOLERANT mesh decision program (3 VCs: the NARA double
/// networks on 0/1, filtered by link health, plus the hardware escape layer
/// on VC 2 via the escape_* input catalog). Construct the algorithm as
///   RuleDrivenRouting(ft_mesh_route_source(w, h), 3,
///                     rules::ExecMode::Table, "route", /*escape_vc=*/2)
/// — the paper's goal realised end to end: a fault-tolerant adaptive
/// algorithm expressed entirely as rules and executed by the rule
/// interpreter inside every router.
std::string ft_mesh_route_source(int width, int height);

/// Table 1 corpus: the full fault-tolerant NAFTA program.
std::string nafta_program_source(int width, int height);
/// The non-fault-tolerant variant (NARA): exactly the rule bases marked
/// "nft" in Table 1 and the non-FT registers.
std::string nara_program_source(int width, int height);

/// Table 2 corpus: ROUTE_C for a d-dimensional hypercube with `a` bits of
/// adaptivity command, and its stripped 2-VC variant.
std::string route_c_program_source(int dimension, int adaptivity_bits);
std::string route_c_nft_program_source(int dimension, int adaptivity_bits);

/// The "Meaning" column of Tables 1 and 2 (rule base name -> description).
const std::map<std::string, std::string>& nafta_meanings();
const std::map<std::string, std::string>& route_c_meanings();

}  // namespace flexrouter::rulebases
