#include "hwcost/evaluation.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/bitops.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/parser.hpp"

namespace flexrouter::hwcost {

using rules::CompileOptions;
using rules::parse_program;
using rules::Program;
using rules::ProgramReport;
using rules::report_program;

namespace {

TableReport from_program_report(const std::string& title,
                                const ProgramReport& rep,
                                const std::map<std::string, std::string>&
                                    meanings) {
  TableReport out;
  out.title = title;
  for (const auto& rb : rep.rule_bases) {
    TableRow row;
    row.name = rb.name;
    row.entries = rb.entries;
    row.width_bits = rb.width_bits;
    row.table_bits = rb.table_bits;
    row.fcfbs = rb.fcfbs;
    const auto it = meanings.find(rb.name);
    row.meaning = it == meanings.end() ? "" : it->second;
    row.nft = rb.in_nft;
    out.rows.push_back(std::move(row));
  }
  out.total_table_bits = rep.total_table_bits;
  out.register_bits = rep.total_register_bits;
  out.num_registers = rep.num_registers;
  out.ft_register_bits = rep.ft_register_bits;
  return out;
}

}  // namespace

std::string TableReport::render() const {
  std::ostringstream os;
  os << title << "\n";
  os << std::left << std::setw(26) << "Name" << std::right << std::setw(12)
     << "Size (bits)" << std::setw(5) << "nft"
     << "  FCFBs | Meaning\n";
  os << std::string(100, '-') << "\n";
  for (const TableRow& r : rows) {
    std::ostringstream size;
    size << r.entries << " x " << r.width_bits;
    os << std::left << std::setw(26) << r.name << std::right << std::setw(12)
       << size.str() << std::setw(5) << (r.nft ? "*" : "") << "  " << r.fcfbs
       << " | " << r.meaning << "\n";
  }
  os << std::string(100, '-') << "\n";
  os << "total rule table memory: " << total_table_bits << " bits\n";
  os << "registers: " << num_registers << " holding " << register_bits
     << " bits";
  if (ft_register_bits > 0)
    os << ", " << ft_register_bits << " bits account for fault tolerance";
  os << "\n";
  return os.str();
}

TableReport table1_nafta(int width, int height) {
  const Program ft =
      parse_program(rulebases::nafta_program_source(width, height));
  const Program nft =
      parse_program(rulebases::nara_program_source(width, height));
  const ProgramReport rep = report_program(ft, CompileOptions{}, &nft);
  std::ostringstream title;
  title << "Table 1 — rule bases of NAFTA (" << width << "x" << height
        << " mesh; * = needed by the non-fault-tolerant NARA)";
  return from_program_report(title.str(), rep, rulebases::nafta_meanings());
}

TableReport table2_route_c(int dimension, int adaptivity_bits) {
  const Program ft = parse_program(
      rulebases::route_c_program_source(dimension, adaptivity_bits));
  const Program nft = parse_program(
      rulebases::route_c_nft_program_source(dimension, adaptivity_bits));
  // decide_vc's direction parameter indexes the table directly (paper: 4d
  // entries) via the default direct_param_threshold.
  const ProgramReport rep = report_program(ft, CompileOptions{}, &nft);
  std::ostringstream title;
  title << "Table 2 — rule bases of ROUTE_C (d = " << dimension
        << ", a = " << adaptivity_bits
        << "; * = needed by the stripped non-FT variant)";
  return from_program_report(title.str(), rep, rulebases::route_c_meanings());
}

std::int64_t combined_rulebase_bits(int dimension, int adaptivity_bits) {
  // "the combination of the two rule bases decide_dir and decide_vc requires
  //  a rule interpreter configuration with 1024 * 2^d x (d + 1 + a) bits"
  FR_REQUIRE(dimension >= 1 && dimension < 40);
  return (std::int64_t{1024} << dimension) *
         (dimension + 1 + adaptivity_bits);
}

std::int64_t route_c_register_formula(int dimension) {
  FR_REQUIRE(dimension >= 2);
  return 15 * static_cast<std::int64_t>(dimension) +
         2 * log2_ceil(static_cast<std::uint64_t>(dimension)) + 3;
}

std::int64_t route_c_register_measured(int dimension, int adaptivity_bits) {
  const Program p = parse_program(
      rulebases::route_c_program_source(dimension, adaptivity_bits));
  return p.total_register_bits();
}

}  // namespace flexrouter::hwcost
