// Section 5 reproduction: regenerate Table 1 (NAFTA) and Table 2 (ROUTE_C)
// from the rule-base corpus through the ARON compiler, the register-bit
// accounting, and the combined-rule-base blow-up model that justifies
// multi-step interpretation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ruleengine/hwcost.hpp"

namespace flexrouter::hwcost {

struct TableRow {
  std::string name;
  std::uint64_t entries = 0;
  int width_bits = 0;
  std::int64_t table_bits = 0;
  std::string fcfbs;
  std::string meaning;
  bool nft = false;
};

struct TableReport {
  std::string title;
  std::vector<TableRow> rows;
  std::int64_t total_table_bits = 0;
  std::int64_t register_bits = 0;
  int num_registers = 0;
  std::int64_t ft_register_bits = 0;

  std::string render() const;
};

/// Table 1: NAFTA on a width x height mesh, diffed against NARA.
TableReport table1_nafta(int width = 16, int height = 16);

/// Table 2: ROUTE_C on a d-dimensional hypercube with a adaptivity bits,
/// diffed against the stripped variant. (The paper's headline: d = 6,
/// a = 2 — "the total size of 2960 bits ... is really small".)
TableReport table2_route_c(int dimension = 6, int adaptivity_bits = 2);

/// The paper's in-text blow-up: merging ROUTE_C's decide_dir and decide_vc
/// into one interpretation step needs a 1024 * 2^d x (d + 1 + a) bit table.
std::int64_t combined_rulebase_bits(int dimension, int adaptivity_bits);

/// Register-bit formula check: the paper's 15d + 2*ceil(log2 d) + 3.
std::int64_t route_c_register_formula(int dimension);
/// Register bits actually declared by the corpus program for dimension d.
std::int64_t route_c_register_measured(int dimension, int adaptivity_bits);

}  // namespace flexrouter::hwcost
