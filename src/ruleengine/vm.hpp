// Register-based virtual machine executing compiled rule programs.
//
// One Vm owns the execution state for one node: a frame stack of Value
// registers, a pending-write list (the language's parallel-commit buffer)
// and pre-resolved input providers. The compiled BytecodeProgram is shared
// across all Vms of a network.
//
// Vm::fire() is a drop-in replacement for Interpreter::fire(): same results
// (fired rule, RETURN, emitted events, register commits) and same dynamic
// error behaviour (EvalError vs ContractViolation, messages, ordering) —
// enforced by the differential tests in tests/test_vm.cpp.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ruleengine/bytecode.hpp"
#include "ruleengine/env.hpp"
#include "ruleengine/interp.hpp"

namespace flexrouter::rules {

/// Pre-resolved input provider: `input_id` is the position of the input in
/// Program::inputs, `idx` the evaluated (domain-checked) index values. The
/// fast path replaces InputFn's per-read name dispatch and vector build.
using FastInputFn =
    std::function<Value(std::int32_t input_id, const Value* idx,
                        std::size_t nidx)>;

/// Raw variant of FastInputFn: a plain function pointer plus context, so the
/// per-read call costs one indirect call instead of a std::function dispatch.
using RawInputFn = Value (*)(void* ctx, std::int32_t input_id,
                             const Value* idx, std::size_t nidx);

/// Raw event sink for the decision path: invoked during Op::Emit for events
/// emitted by the outermost frame (subbase frames keep pooling so the
/// "no emissions inside an expression" contract stays enforced). `args`
/// points into the live register file — copy what must outlive the call.
using HostSinkFn = void (*)(void* ctx, std::int32_t name_id,
                            std::int32_t target_rb, const Value* args,
                            std::size_t nargs);

class Vm {
 public:
  Vm(std::shared_ptr<const BytecodeProgram> bc, RuleEnv& env)
      : bc_(std::move(bc)), prog_(&bc_->program()), env_(&env) {}

  /// String-keyed fallback provider (same contract as Interpreter's).
  void set_input_provider(InputFn fn) { inputs_ = std::move(fn); }
  /// Pre-resolved provider; takes precedence over the string fallback.
  void set_input_provider_fast(FastInputFn fn) {
    fast_inputs_ = std::move(fn);
  }
  /// Raw provider; takes precedence over both std::function providers.
  void set_input_provider_raw(RawInputFn fn, void* ctx) {
    raw_inputs_ = fn;
    raw_inputs_ctx_ = ctx;
  }

  FireResult fire(int rb_index, const std::vector<Value>& args);
  FireResult fire(const std::string& rule_base, const std::vector<Value>& args);

  /// Decision-path firing: identical semantics to fire(), but emitted
  /// events stay in an internal pool — read them through event_count()/
  /// event() before the next fire, which recycles the pool. The steady
  /// state allocates nothing.
  std::optional<Value> fire_fast(int rb_index, const std::vector<Value>& args);
  /// Sinked variant: top-level emissions are delivered to `sink` as they
  /// happen instead of being pooled — nothing is materialized. Candidate
  /// handling observes them mid-run rather than post-commit, which is
  /// indistinguishable for pure consumers (a throwing fire abandons the
  /// decision either way).
  std::optional<Value> fire_fast(int rb_index, const std::vector<Value>& args,
                                 HostSinkFn sink, void* sink_ctx);
  std::size_t event_count() const { return pool_used_; }
  const EmittedEvent& event(std::size_t i) const { return pool_[i]; }

  const BytecodeProgram& bytecode() const { return *bc_; }

  /// Rule-base firings, counted like Interpreter::total_fires().
  std::int64_t total_fires() const { return total_fires_; }
  void reset_counters() { total_fires_ = 0; }

 private:
  struct RunResult {
    int rule_index = -1;
    int fired_line = 0;
    std::optional<Value> returned;
  };
  struct Pending {
    std::int32_t var;
    std::int64_t index;
    Value value;
  };

  RunResult fire_core(int rb_index, const std::vector<Value>& args,
                      HostSinkFn sink, void* sink_ctx);
  void run(int rb_index, const Value* args, std::size_t nargs, RunResult& res);
  Value call_sub(std::int32_t rb_id, const std::vector<Value>& args,
                 std::int32_t line);

  std::shared_ptr<const BytecodeProgram> bc_;
  const Program* prog_;
  RuleEnv* env_;
  InputFn inputs_;
  FastInputFn fast_inputs_;
  RawInputFn raw_inputs_ = nullptr;
  void* raw_inputs_ctx_ = nullptr;
  HostSinkFn sink_ = nullptr;  // live only while a sinked fire runs
  void* sink_ctx_ = nullptr;
  std::vector<Value> regs_;      // frame stack (subbase calls push frames)
  std::size_t frame_top_ = 0;
  std::vector<Pending> writes_;  // pending parallel writes, all live calls
  std::vector<EmittedEvent> pool_;  // emitted events, recycled across fires
  std::size_t pool_used_ = 0;
  std::int64_t total_fires_ = 0;
};

}  // namespace flexrouter::rules
