#include "ruleengine/aot_classify.hpp"

#include <functional>
#include <set>
#include <vector>

namespace flexrouter::rules {

namespace {

bool is_plain_ref(const ExprPtr& e, const char* name) {
  return e != nullptr && e->kind == Expr::Kind::Ref && e->args.empty() &&
         e->name == name;
}

/// `xor(node, dest)` in either argument order.
bool is_xor_node_dest(const Expr& e) {
  if (e.kind != Expr::Kind::Ref || e.name != "xor" || e.args.size() != 2)
    return false;
  return (is_plain_ref(e.args[0], "node") && is_plain_ref(e.args[1], "dest")) ||
         (is_plain_ref(e.args[0], "dest") && is_plain_ref(e.args[1], "node"));
}

/// `node = dest` / `node <> dest` (either order) — equivalent to testing
/// xor-class 0, so it is XorFold-sanctioned.
bool is_node_dest_eq(const Expr& e) {
  if (e.kind != Expr::Kind::Binary ||
      (e.bin_op != BinOp::Eq && e.bin_op != BinOp::Ne))
    return false;
  return (is_plain_ref(e.lhs, "node") && is_plain_ref(e.rhs, "dest")) ||
         (is_plain_ref(e.lhs, "dest") && is_plain_ref(e.rhs, "node"));
}

/// A direct comparison between one coordinate input and its destination
/// counterpart (either order) — a function of the offset sign alone.
bool is_axis_sign_cmp(const Expr& e, const char* pos, const char* des) {
  if (e.kind != Expr::Kind::Binary) return false;
  switch (e.bin_op) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      break;
    default:
      return false;
  }
  return (is_plain_ref(e.lhs, pos) && is_plain_ref(e.rhs, des)) ||
         (is_plain_ref(e.lhs, des) && is_plain_ref(e.rhs, pos));
}

/// Collect every rule base reachable from `root`: subbase references in
/// expressions plus emitted events that land on rule bases — the same
/// conservative traversal analyze_reachable uses.
std::vector<const RuleBase*> reachable_bases(const Program& prog,
                                             const std::string& root) {
  std::set<const RuleBase*> visited;
  std::vector<const RuleBase*> work, out;
  auto enqueue = [&](const RuleBase* rb) {
    if (rb != nullptr && visited.insert(rb).second) work.push_back(rb);
  };
  std::function<void(const ExprPtr&)> walk_expr = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::Ref) enqueue(prog.find_rule_base(e->name));
    for (const ExprPtr& a : e->args) walk_expr(a);
    walk_expr(e->lhs);
    walk_expr(e->rhs);
  };
  std::function<void(const std::vector<Cmd>&)> walk_cmds =
      [&](const std::vector<Cmd>& cmds) {
        for (const Cmd& c : cmds) {
          if (c.kind == Cmd::Kind::Emit) enqueue(prog.find_rule_base(c.target));
          for (const ExprPtr& a : c.args) walk_expr(a);
          walk_expr(c.value);
          walk_expr(c.domain);
          walk_cmds(c.body);
        }
      };
  enqueue(prog.find_rule_base(root));
  while (!work.empty()) {
    const RuleBase* rb = work.back();
    work.pop_back();
    out.push_back(rb);
    for (const Rule& r : rb->rules) {
      walk_expr(r.premise);
      walk_cmds(r.conclusion);
    }
  }
  return out;
}

/// Recursive usage checker: `sanctioned` recognises whole subtrees whose
/// value is provably class-determined (they are not descended into);
/// `forbidden_ref` rejects any other appearance of the restricted inputs.
/// On rejection `blocker` carries the offending expression's text.
struct UsageChecker {
  const Program& prog;
  std::function<bool(const Expr&)> sanctioned;
  std::function<bool(const Expr&)> forbidden_ref;
  std::string blocker;

  bool ok(const ExprPtr& e) {
    if (e == nullptr) return true;
    if (sanctioned(*e)) return true;
    if (e->kind == Expr::Kind::Ref && forbidden_ref(*e)) {
      blocker = to_string(*e, prog.syms);
      return false;
    }
    for (const ExprPtr& a : e->args)
      if (!ok(a)) return false;
    return ok(e->lhs) && ok(e->rhs);
  }

  bool ok_cmds(const std::vector<Cmd>& cmds) {
    for (const Cmd& c : cmds) {
      for (const ExprPtr& a : c.args)
        if (!ok(a)) return false;
      if (!ok(c.value) || !ok(c.domain)) return false;
      if (!ok_cmds(c.body)) return false;
    }
    return true;
  }

  bool ok_rules(const std::vector<const RuleBase*>& bases) {
    for (const RuleBase* rb : bases)
      for (const Rule& r : rb->rules) {
        if (!ok(r.premise)) return false;
        if (!ok_cmds(r.conclusion)) return false;
      }
    return true;
  }
};

/// Inputs read anywhere in the reachable rules (names, not usage contexts).
std::set<std::string> inputs_read(const Program& prog,
                                  const std::vector<const RuleBase*>& bases) {
  std::set<std::string> reads;
  for (const RuleBase* rb : bases)
    for (const Rule& r : rb->rules)
      for_each_expr(r, [&](const Expr& e) {
        if (e.kind == Expr::Kind::Ref && prog.find_input(e.name) != nullptr)
          reads.insert(e.name);
      });
  return reads;
}

bool subset_of(const std::set<std::string>& reads,
               std::initializer_list<const char*> allowed,
               std::string& offender) {
  for (const std::string& r : reads) {
    bool ok = false;
    for (const char* a : allowed)
      if (r == a) {
        ok = true;
        break;
      }
    if (!ok) {
      offender = r;
      return false;
    }
  }
  return true;
}

}  // namespace

const char* to_string(DestClassifier c) {
  switch (c) {
    case DestClassifier::None: return "none";
    case DestClassifier::XorFold: return "xor-fold";
    case DestClassifier::OffsetSign2D: return "offset-sign-2d";
  }
  return "?";
}

DestClassAnalysis classify_dest_axis(const Program& prog,
                                     const std::string& root) {
  DestClassAnalysis out;
  const std::vector<const RuleBase*> bases = reachable_bases(prog, root);
  if (bases.empty()) {
    out.reason = "decision rule base '" + root + "' not found";
    return out;
  }
  const std::set<std::string> reads = inputs_read(prog, bases);

  // XorFold first: when it applies it collapses both id axes, so it always
  // yields the smaller table. Every other input must be premise-axis
  // determined — node-scoped reads (link_ok, xpos…) would break the node
  // collapse.
  std::string offender;
  std::string xor_blocker;
  if (subset_of(reads, {"node", "dest", "in_port", "in_vc", "injected"},
                offender)) {
    UsageChecker xc{
        prog,
        [](const Expr& e) { return is_xor_node_dest(e) || is_node_dest_eq(e); },
        [](const Expr& e) { return e.name == "node" || e.name == "dest"; },
        {}};
    if (xc.ok_rules(bases)) {
      out.kind = DestClassifier::XorFold;
      out.reason =
          "node/dest read only through xor(node, dest) and node = dest tests";
      return out;
    }
    xor_blocker = "reads raw node/dest bits: " + xc.blocker;
  }

  // OffsetSign2D keeps the node axis, so node-determined inputs are fine;
  // only raw destination reads (dest, xdes/ydes outside a sign comparison,
  // dest_reachable, the escape_* family) block it.
  if (!subset_of(reads,
                 {"node", "xpos", "ypos", "xdes", "ydes", "in_port", "in_vc",
                  "injected", "link_ok"},
                 offender)) {
    out.reason = !xor_blocker.empty()
                     ? xor_blocker
                     : "reads '" + offender + "', which depends on raw dest bits";
    return out;
  }
  UsageChecker oc{prog,
                  [](const Expr& e) {
                    return is_axis_sign_cmp(e, "xpos", "xdes") ||
                           is_axis_sign_cmp(e, "ypos", "ydes");
                  },
                  [](const Expr& e) {
                    return e.name == "xdes" || e.name == "ydes";
                  },
                  {}};
  if (oc.ok_rules(bases)) {
    out.kind = DestClassifier::OffsetSign2D;
    out.reason =
        "xdes/ydes read only in sign comparisons against xpos/ypos";
    return out;
  }
  out.reason = "reads a destination coordinate outside a sign comparison: " +
               oc.blocker;
  return out;
}

}  // namespace flexrouter::rules
