// ARON rule compiler: flattens a rule base into a completely filled table
// (see rule_table.hpp for the model). The pipeline is
//   1. decompose premises into atoms (maximal non-boolean subexpressions),
//   2. classify each atom: covered by direct-indexed signals, or a 1-bit
//      atom feature computed by a premise FCFB,
//   3. enumerate the feature space, evaluate every rule premise per point,
//      resolve conflicts (first applicable rule wins) and fill gaps with the
//      no-op conclusion,
//   4. account hardware: entries x width, premise/conclusion FCFBs.
#include "ruleengine/rule_table.hpp"

#include <map>
#include <set>
#include <sstream>

#include "common/bitops.hpp"

namespace flexrouter::rules {

namespace {

bool is_bool_structure(const Expr& e) {
  return (e.kind == Expr::Kind::Binary &&
          (e.bin_op == BinOp::And || e.bin_op == BinOp::Or)) ||
         (e.kind == Expr::Kind::Unary && e.un_op == UnOp::Not);
}

/// Collect atoms: maximal subexpressions under the AND/OR/NOT skeleton.
void collect_atoms(const ExprPtr& e, std::vector<ExprPtr>& out) {
  FR_REQUIRE(e != nullptr);
  if (is_bool_structure(*e)) {
    collect_atoms(e->lhs, out);
    if (e->kind == Expr::Kind::Binary) collect_atoms(e->rhs, out);
    return;
  }
  out.push_back(e);
}

/// A stateful scalar signal usable as a direct index axis.
struct Signal {
  std::string key;
  ExprPtr expr;
  Domain domain = Domain::boolean();
  bool is_param = false;
};

class AxisBuilder {
 public:
  AxisBuilder(const Program& prog, const RuleBase& rb,
              const CompileOptions& opts)
      : prog_(&prog), rb_(&rb), opts_(&opts) {}

  /// Domain of a Ref that names a param / variable / input; nullopt if the
  /// name is not such a signal. Sets *is_param for parameter signals.
  std::optional<Domain> signal_domain(const Expr& e, bool* is_param) const {
    *is_param = false;
    for (const Param& p : rb_->params)
      if (p.name == e.name && e.args.empty()) {
        *is_param = true;
        return p.domain;
      }
    if (const VarDecl* v = prog_->find_variable(e.name)) {
      if (v->is_array() ? e.args.size() == 1 : e.args.empty())
        return v->domain;
      return std::nullopt;
    }
    if (const InputDecl* in = prog_->find_input(e.name)) {
      if (e.args.size() == in->index_domains.size()) return in->domain;
      return std::nullopt;
    }
    return std::nullopt;
  }

  bool signal_directable(const Signal& s) const {
    switch (s.domain.kind()) {
      case Domain::Kind::Symbols:
        return s.domain.cardinality() <= opts_->direct_symbol_threshold;
      case Domain::Kind::IntRange:
      case Domain::Kind::Boolean:
        return s.domain.cardinality() <=
               (s.is_param ? opts_->direct_param_threshold
                           : opts_->direct_int_threshold);
      case Domain::Kind::SetOf:
        return false;
    }
    return false;
  }

  /// True if `e` only uses literals, constants and parameter names — such
  /// expressions are legal inside a direct signal's index arguments.
  bool is_static_index(const ExprPtr& e) const {
    if (!e) return true;
    switch (e->kind) {
      case Expr::Kind::IntLit:
      case Expr::Kind::SymLit:
        return true;
      case Expr::Kind::SetLit:
        for (const auto& a : e->args)
          if (!is_static_index(a)) return false;
        return true;
      case Expr::Kind::Ref: {
        for (const Param& p : rb_->params)
          if (p.name == e->name && e->args.empty()) return true;
        if (e->args.empty() && prog_->constants.count(e->name) > 0)
          return true;
        return false;
      }
      case Expr::Kind::Unary:
        return is_static_index(e->lhs);
      case Expr::Kind::Binary:
        return is_static_index(e->lhs) && is_static_index(e->rhs);
      case Expr::Kind::Quantified:
        return false;
    }
    return false;
  }

  /// Walk an atom collecting its stateful signal leaves; returns false if
  /// the atom contains anything that prevents direct coverage (quantifier,
  /// stateful index arguments, set-typed signals, unknown constructs).
  bool collect_signals(const ExprPtr& e, std::vector<Signal>& out) const {
    if (!e) return true;
    switch (e->kind) {
      case Expr::Kind::IntLit:
      case Expr::Kind::SymLit:
        return true;
      case Expr::Kind::SetLit:
        for (const auto& a : e->args)
          if (!collect_signals(a, out)) return false;
        return true;
      case Expr::Kind::Quantified:
        return false;
      case Expr::Kind::Unary:
        return collect_signals(e->lhs, out);
      case Expr::Kind::Binary:
        return collect_signals(e->lhs, out) && collect_signals(e->rhs, out);
      case Expr::Kind::Ref: {
        bool is_param = false;
        const auto dom = signal_domain(*e, &is_param);
        if (dom) {
          for (const auto& a : e->args)
            if (!is_static_index(a)) return false;
          Signal s;
          s.key = to_string(*e, prog_->syms);
          s.expr = e;
          s.domain = *dom;
          s.is_param = is_param;
          out.push_back(std::move(s));
          return true;
        }
        if (e->args.empty() && prog_->constants.count(e->name) > 0)
          return true;
        // Builtins over signals: recurse into arguments.
        if (!e->args.empty()) {
          for (const auto& a : e->args)
            if (!collect_signals(a, out)) return false;
          // A builtin wrapping signals needs arithmetic before indexing —
          // that is FCFB work, not direct indexing.
          return false;
        }
        return false;  // unknown bare name
      }
    }
    return false;
  }

 private:
  const Program* prog_;
  const RuleBase* rb_;
  const CompileOptions* opts_;
};

std::string conclusion_text(const Rule& r, const SymTable& syms) {
  std::ostringstream os;
  for (std::size_t i = 0; i < r.conclusion.size(); ++i) {
    if (i) os << ", ";
    os << to_string(r.conclusion[i], syms);
  }
  return os.str();
}

}  // namespace

double CompiledRuleBase::decision_delay_units() const {
  const double fcfb_stage1 = premise_fcfbs_.max_delay();
  const double fcfb_stage2 = conclusion_fcfbs_.max_delay();
  const double table_access = 2.0;  // one RAM/PAL access
  return fcfb_stage1 + fcfb_stage2 + table_access;
}

std::uint64_t CompiledRuleBase::flat_index(
    const std::vector<std::uint64_t>& axis_vals) const {
  FR_REQUIRE(axis_vals.size() == axes_.size());
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    FR_ASSERT(axis_vals[i] < axes_[i].cardinality());
    idx = idx * axes_[i].cardinality() + axis_vals[i];
  }
  return idx;
}

int CompiledRuleBase::entry_at(std::uint64_t flat) const {
  FR_REQUIRE(flat < entries_);
  return table_[static_cast<std::size_t>(flat)];
}

FireResult CompiledRuleBase::fire(Interpreter& interp, RuleEnv& env,
                                  const std::vector<Value>& args) const {
  FR_REQUIRE(args.size() == source_->params.size());
  std::vector<std::pair<std::string, Value>> bindings;
  bindings.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i)
    bindings.emplace_back(source_->params[i].name, args[i]);

  // Premise processing: evaluate every axis against live state.
  std::vector<std::uint64_t> axis_vals;
  axis_vals.reserve(axes_.size());
  for (const FeatureAxis& axis : axes_) {
    const Value v = interp.eval_expr(env, axis.expr, bindings);
    if (axis.kind == FeatureAxis::Kind::Atom) {
      axis_vals.push_back(v.as_bool() ? 1 : 0);
    } else {
      FR_REQUIRE_MSG(axis.domain.contains(v),
                     "signal '" + axis.key + "' outside its domain");
      axis_vals.push_back(axis.domain.index_of(v));
    }
  }

  // RBR kernel: one table access.
  const int rule = table_[static_cast<std::size_t>(flat_index(axis_vals))];
  if (rule < 0) {
    FireResult r;
    r.rule_index = -1;
    return r;
  }
  // Conclusion processing.
  return interp.exec_conclusion(env, *source_, rule, args);
}

std::string CompiledRuleBase::describe(const SymTable& syms) const {
  std::ostringstream os;
  os << name_ << ": " << entries_ << " x " << width_bits_ << " bits ("
     << table_bits() << " total), axes:";
  for (const FeatureAxis& a : axes_) {
    os << "\n  " << (a.kind == FeatureAxis::Kind::Direct ? "direct " : "atom   ")
       << a.key << "  [" << a.cardinality() << " values]";
  }
  os << "\n  conclusions: " << conclusions_.size() - 1 << " distinct";
  os << "\n  premise FCFBs: " << premise_fcfbs_.to_string();
  os << "\n  conclusion FCFBs: " << conclusion_fcfbs_.to_string();
  (void)syms;
  return os.str();
}

CompiledRuleBase compile_rule_base(const Program& prog, const RuleBase& rb,
                                   Interpreter& interp,
                                   const CompileOptions& opts) {
  CompiledRuleBase out;
  out.name_ = rb.name;
  out.source_ = &rb;

  AxisBuilder builder(prog, rb, opts);

  // ---- pass 1: atoms and their classification ------------------------------
  struct AtomInfo {
    ExprPtr expr;
    std::string key;
    bool direct_covered = false;
    std::vector<Signal> signals;
  };
  std::vector<AtomInfo> atoms;
  std::set<std::string> atom_seen;
  for (const Rule& r : rb.rules) {
    std::vector<ExprPtr> raw;
    collect_atoms(r.premise, raw);
    for (const ExprPtr& a : raw) {
      // Constant atoms (e.g. a literal TRUE premise) fold away entirely.
      if (interp.try_const_eval(a)) continue;
      AtomInfo info;
      info.expr = a;
      info.key = to_string(*a, prog.syms);
      if (!atom_seen.insert(info.key).second) continue;
      std::vector<Signal> sigs;
      const bool clean = builder.collect_signals(a, sigs);
      bool directable = clean && !sigs.empty();
      for (const Signal& s : sigs)
        directable = directable && builder.signal_directable(s);
      info.direct_covered = directable;
      info.signals = std::move(sigs);
      atoms.push_back(std::move(info));
    }
  }

  // ---- pass 2: build the axis list -----------------------------------------
  std::map<std::string, std::size_t> axis_index;  // key -> axes_ position
  auto add_axis = [&](FeatureAxis axis) {
    if (axis_index.count(axis.key)) return;
    axis_index.emplace(axis.key, out.axes_.size());
    out.axes_.push_back(std::move(axis));
  };
  std::vector<ExprPtr> atom_axis_exprs;
  for (const AtomInfo& a : atoms) {
    if (a.direct_covered) {
      for (const Signal& s : a.signals) {
        FeatureAxis axis;
        axis.kind = FeatureAxis::Kind::Direct;
        axis.key = s.key;
        axis.expr = s.expr;
        axis.domain = s.domain;
        add_axis(std::move(axis));
      }
    } else {
      FeatureAxis axis;
      axis.kind = FeatureAxis::Kind::Atom;
      axis.key = a.key;
      axis.expr = a.expr;
      axis.domain = Domain::boolean();
      add_axis(std::move(axis));
      atom_axis_exprs.push_back(a.expr);
    }
  }

  out.entries_ = 1;
  for (const FeatureAxis& a : out.axes_) {
    out.entries_ *= a.cardinality();
    if (out.entries_ > opts.max_entries)
      throw CompileError("rule base '" + rb.name + "' exceeds table budget (" +
                         std::to_string(opts.max_entries) + " entries)");
  }

  // ---- pass 3: conclusions (dedup drives the width accounting only) ---------
  out.conclusions_.push_back("<none>");
  std::map<std::string, int> conclusion_ids;
  for (std::size_t r = 0; r < rb.rules.size(); ++r) {
    const std::string text = conclusion_text(rb.rules[r], prog.syms);
    if (conclusion_ids.count(text)) continue;
    conclusion_ids.emplace(text, static_cast<int>(out.conclusions_.size()));
    out.conclusions_.push_back(text);
  }

  // ---- pass 4: fill the table ------------------------------------------------
  out.table_.assign(static_cast<std::size_t>(out.entries_), -1);
  std::vector<std::uint64_t> point(out.axes_.size(), 0);
  // Axis matching is by canonical printed form, but printing every premise
  // node once per table point is quadratic pain; AST nodes are immutable,
  // so the node -> axis resolution is memoised by pointer.
  std::map<const Expr*, int> axis_cache;  // -1 = not an axis
  const ResolveFn resolve = [&](const Expr& e) -> std::optional<Value> {
    auto [it, inserted] = axis_cache.try_emplace(&e, -2);
    if (it->second == -2) {
      const auto f = axis_index.find(to_string(e, prog.syms));
      it->second = f == axis_index.end() ? -1 : static_cast<int>(f->second);
    }
    if (it->second < 0) return std::nullopt;
    const FeatureAxis& axis =
        out.axes_[static_cast<std::size_t>(it->second)];
    const std::uint64_t v = point[static_cast<std::size_t>(it->second)];
    if (axis.kind == FeatureAxis::Kind::Atom)
      return Value::make_bool(v != 0);
    return axis.domain.value_at(v);
  };

  for (std::uint64_t flat = 0; flat < out.entries_; ++flat) {
    // Decode flat -> mixed-radix point (must mirror flat_index()).
    std::uint64_t rest = flat;
    for (std::size_t i = out.axes_.size(); i-- > 0;) {
      point[i] = rest % out.axes_[i].cardinality();
      rest /= out.axes_[i].cardinality();
    }
    int selected = -1;
    for (std::size_t r = 0; r < rb.rules.size(); ++r) {
      Value v;
      try {
        v = interp.eval_compiletime(rb.rules[r].premise, resolve);
      } catch (const EvalError& err) {
        throw CompileError("rule base '" + rb.name +
                           "': premise not coverable by features: " +
                           err.what());
      }
      if (v.as_bool()) {
        selected = static_cast<int>(r);
        break;
      }
    }
    out.table_[static_cast<std::size_t>(flat)] = selected;
  }

  // ---- pass 5: hardware accounting -------------------------------------------
  out.width_bits_ = bits_for(out.conclusions_.size()) +
                    (rb.returns ? rb.returns->bits() : 0);
  out.premise_fcfbs_ = infer_expr_fcfbs(prog, atom_axis_exprs);
  out.conclusion_fcfbs_ = infer_conclusion_fcfbs(prog, rb);
  return out;
}

std::vector<CompiledRuleBase> compile_program(const Program& prog,
                                              Interpreter& interp,
                                              const CompileOptions& opts) {
  std::vector<CompiledRuleBase> out;
  out.reserve(prog.rule_bases.size());
  for (const RuleBase& rb : prog.rule_bases)
    out.push_back(compile_rule_base(prog, rb, interp, opts));
  return out;
}

}  // namespace flexrouter::rules
