// Compiled rule base: the RBR-kernel.
//
// The ARON approach (Section 4.3): the rule base is compiled off-line into a
// completely filled table. Premise processing extracts the relevant features
// of the input values; the concatenated features form a unique index into
// the table; the entry selects the conclusion to execute. Conflicts between
// rules are resolved (first rule in source order wins) and gaps are
// eliminated (every index maps to exactly one entry — infeasible feature
// combinations and no-rule-applicable map to the no-op conclusion 0).
//
// Feature axes come in two flavours, exactly as in the paper's Figure 7:
//  * Direct — a scalar signal whose individual values all matter (e.g. the
//    ROUTE_C `state` register): its full value is part of the index.
//  * Atom — a 1-bit predicate computed by a premise-processing FCFB (e.g.
//    `number_unsafe = 2`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ruleengine/fcfb.hpp"
#include "ruleengine/interp.hpp"

namespace flexrouter::rules {

struct FeatureAxis {
  enum class Kind { Direct, Atom };
  Kind kind = Kind::Atom;
  /// Canonical printed form — the substitution key during table filling.
  std::string key;
  /// The expression this axis evaluates at run time.
  ExprPtr expr;
  /// Direct: the signal's domain. Atom: boolean.
  Domain domain = Domain::boolean();

  std::uint64_t cardinality() const { return domain.cardinality(); }
};

struct CompileOptions {
  /// Symbol-domain signals up to this cardinality index directly.
  std::uint64_t direct_symbol_threshold = 32;
  /// Integer-domain signals up to this cardinality index directly; larger
  /// ones are reduced to comparison bits (paper: number_unsafe via "=2").
  std::uint64_t direct_int_threshold = 4;
  /// Rule-base parameters index directly up to this cardinality — event
  /// parameters are naturally part of the table index (paper: decide_vc is
  /// a 4d-entry table indexed by the direction).
  std::uint64_t direct_param_threshold = 32;
  /// Hard cap on table entries; exceeding it is a compile error (the paper's
  /// exponential-blow-up discussion — see bench/combined_blowup).
  std::uint64_t max_entries = std::uint64_t{1} << 22;
};

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& msg) : std::runtime_error(msg) {}
};

/// The compiled artifact. Executable (fire()) and measurable (table_bits()).
class CompiledRuleBase {
 public:
  const std::string& name() const { return name_; }
  const RuleBase& source() const { return *source_; }

  // --- hardware accounting (Tables 1 and 2) --------------------------------
  const std::vector<FeatureAxis>& axes() const { return axes_; }
  /// Table entries = product of axis cardinalities ("Size" rows half).
  std::uint64_t table_entries() const { return entries_; }
  /// Entry width in bits: conclusion selector + declared output signal.
  int table_width_bits() const { return width_bits_; }
  std::int64_t table_bits() const {
    return static_cast<std::int64_t>(entries_) * width_bits_;
  }
  int num_distinct_conclusions() const {
    return static_cast<int>(conclusions_.size());
  }
  const FcfbInventory& premise_fcfbs() const { return premise_fcfbs_; }
  const FcfbInventory& conclusion_fcfbs() const { return conclusion_fcfbs_; }
  FcfbInventory all_fcfbs() const {
    FcfbInventory inv = premise_fcfbs_;
    inv.merge(conclusion_fcfbs_);
    return inv;
  }

  /// Pipeline delay model from Section 4.3: configurable wiring (negligible)
  /// + two FCFB stages + one table access.
  double decision_delay_units() const;

  // --- execution ------------------------------------------------------------
  /// Fire through the table: evaluate axes, look up the conclusion, execute
  /// it. Semantically identical to Interpreter::fire on the source rule base
  /// (the differential tests assert this).
  FireResult fire(Interpreter& interp, RuleEnv& env,
                  const std::vector<Value>& args) const;

  /// Table entry (selected source rule index; -1 = no rule applies) at a
  /// flat index. For tests. Entries keep the exact rule so diagnostics
  /// match the interpreter even when several rules share one conclusion
  /// (the conclusion dedupe only drives the width accounting).
  int entry_at(std::uint64_t flat_index) const;

  std::string describe(const SymTable& syms) const;

 private:
  friend CompiledRuleBase compile_rule_base(const Program&, const RuleBase&,
                                            Interpreter&,
                                            const CompileOptions&);

  std::uint64_t flat_index(const std::vector<std::uint64_t>& axis_vals) const;

  std::string name_;
  const RuleBase* source_ = nullptr;
  std::vector<FeatureAxis> axes_;
  std::uint64_t entries_ = 1;
  int width_bits_ = 0;
  std::vector<std::string> conclusions_;  // canonical text, [0] == "<none>"
  std::vector<int> table_;                // entries_ selected rule ids (-1 = none)
  FcfbInventory premise_fcfbs_;
  FcfbInventory conclusion_fcfbs_;
};

// --- AOT decision-table entry format (ruleengine/aot.hpp) -------------------
//
// Where CompiledRuleBase tabulates one rule base over its *feature* axes,
// the AOT table tabulates a whole decision — the route() cascade — over the
// host's *premise* axes (node, dest, in_port, in_vc). Entries index one
// shared preallocated candidate arena; the fast path is a strided load plus
// a candidate copy, with no dispatch and no allocation.

/// One precompiled route candidate in the AOT overflow arena (12 bytes, POD).
struct AotCand {
  std::int32_t port = -1;
  std::int32_t vc = -1;
  std::int32_t priority = 0;
};

/// One candidate packed for inline storage inside an AotEntry (4 bytes).
/// Ports and VCs are single-digit in every supported topology and rule
/// priorities are small constants; anything that does not fit goes to the
/// overflow arena instead (see AotEntry::kArenaFlag).
struct AotPackedCand {
  std::int8_t port = 0;
  std::int8_t vc = 0;
  std::int16_t priority = 0;
};

/// One AOT decision-table entry (16 bytes, POD). `steps == 0` marks a
/// premise point the compiler left unresolved — the host falls back to the
/// VM there (a real decision always reports steps >= 1). Up to kInlineCands
/// candidates live inside the entry itself, so the common decision is served
/// by the one cache line the entry load already touched; larger or
/// unpackable candidate sets overflow to the shared arena, flagged in
/// `count`.
struct AotEntry {
  static constexpr std::uint32_t kInlineCands = 3;
  /// Set in `count` when the candidates live in the arena at `first`.
  static constexpr std::uint16_t kArenaFlag = 0x8000;

  union {
    std::uint32_t first = 0;          // arena offset (count & kArenaFlag)
    AotPackedCand inl[kInlineCands];  // candidates (count <= kInlineCands)
  };
  std::uint16_t count = 0;  // candidate count, possibly | kArenaFlag
  std::uint16_t steps = 0;  // decision cost in rule interpretations; 0 = VM
};
static_assert(sizeof(AotEntry) == 16);

/// Compile `rb` of `prog`. `interp` supplies constant folding; it must be an
/// interpreter over the same program.
CompiledRuleBase compile_rule_base(const Program& prog, const RuleBase& rb,
                                   Interpreter& interp,
                                   const CompileOptions& opts = {});

/// Compile every rule base of a program.
std::vector<CompiledRuleBase> compile_program(const Program& prog,
                                              Interpreter& interp,
                                              const CompileOptions& opts = {});

}  // namespace flexrouter::rules
