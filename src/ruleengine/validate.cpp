#include "ruleengine/validate.hpp"

#include <map>
#include <optional>
#include <sstream>

namespace flexrouter::rules {

namespace {

/// Static kind lattice for expressions.
enum class Kind { Bool, Int, Sym, Set, Unknown };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Bool: return "boolean";
    case Kind::Int: return "integer";
    case Kind::Sym: return "symbol";
    case Kind::Set: return "set";
    case Kind::Unknown: return "unknown";
  }
  return "?";
}

Kind kind_of_domain(const Domain& d) {
  switch (d.kind()) {
    case Domain::Kind::IntRange:
    case Domain::Kind::Boolean:
      return Kind::Int;
    case Domain::Kind::Symbols:
      return Kind::Sym;
    case Domain::Kind::SetOf:
      return Kind::Set;
  }
  return Kind::Unknown;
}

class Validator {
 public:
  explicit Validator(const Program& prog) : prog_(&prog) {}

  std::vector<Diagnostic> run() {
    for (const RuleBase& rb : prog_->rule_bases) {
      rb_ = &rb;
      bindings_.clear();
      for (const Param& p : rb.params) bindings_[p.name] = kind_of_domain(p.domain);
      if (rb.rules.empty())
        note(rb.line, "rule base '" + rb.name + "' has no rules");
      for (const Rule& r : rb.rules) {
        const Kind k = infer(r.premise);
        if (k != Kind::Bool && k != Kind::Unknown)
          note(r.line, "premise is " + std::string(kind_name(k)) +
                           ", expected boolean");
        bool returned = false;
        for (const Cmd& c : r.conclusion) check_cmd(c, &returned);
      }
    }
    // Event arity consistency: every !emit of one event name must agree.
    for (const auto& [name, arities] : event_arities_) {
      if (arities.size() > 1) {
        std::ostringstream os;
        os << "event '" << name << "' emitted with inconsistent arities:";
        for (const auto& [arity, line] : arities) os << " " << arity;
        note(arities.begin()->second, os.str());
      }
      // If the event is handled by a rule base, arity must match its params.
      if (const RuleBase* target = prog_->find_rule_base(name)) {
        const auto arity = arities.begin()->first;
        if (arity != target->params.size())
          note(target->line,
               "event '" + name + "' emitted with " + std::to_string(arity) +
                   " arguments but its rule base declares " +
                   std::to_string(target->params.size()) + " parameters");
      }
    }
    return std::move(diags_);
  }

 private:
  void note(int line, const std::string& msg) { diags_.push_back({line, msg}); }

  std::optional<Domain> ref_domain(const Expr& e) const {
    for (const Param& p : rb_->params)
      if (p.name == e.name && e.args.empty()) return p.domain;
    if (const VarDecl* v = prog_->find_variable(e.name)) return v->domain;
    if (const InputDecl* in = prog_->find_input(e.name)) return in->domain;
    return std::nullopt;
  }

  void check_cmd(const Cmd& c, bool* returned) {
    switch (c.kind) {
      case Cmd::Kind::Assign: {
        const VarDecl* decl = prog_->find_variable(c.target);
        if (decl == nullptr) {
          note(c.line, "assignment to unknown variable '" + c.target + "'");
          break;
        }
        if (decl->is_array()) {
          if (c.args.size() != 1) {
            note(c.line, "array '" + c.target + "' needs exactly one index");
          } else {
            const Kind ik = infer(c.args[0]);
            if (ik != Kind::Int && ik != Kind::Unknown)
              note(c.line, "array index is " + std::string(kind_name(ik)));
          }
        } else if (!c.args.empty()) {
          note(c.line, "scalar '" + c.target + "' is not indexable");
        }
        const Kind want = kind_of_domain(decl->domain);
        const Kind got = infer(c.value);
        // Booleans store into integer registers (0/1).
        const bool ok = got == Kind::Unknown || got == want ||
                        (want == Kind::Int && got == Kind::Bool);
        if (!ok)
          note(c.line, "assigning " + std::string(kind_name(got)) + " to " +
                           kind_name(want) + " variable '" + c.target + "'");
        break;
      }
      case Cmd::Kind::Return: {
        if (*returned) note(c.line, "multiple RETURN commands in one conclusion");
        *returned = true;
        const Kind got = infer(c.value);
        if (!rb_->returns) {
          // Permitted (untyped return), but flag kind errors inside.
          break;
        }
        const Kind want = kind_of_domain(*rb_->returns);
        if (got != Kind::Unknown && got != want &&
            !(want == Kind::Int && got == Kind::Bool))
          note(c.line, "RETURN value is " + std::string(kind_name(got)) +
                           " but the rule base returns " + kind_name(want));
        break;
      }
      case Cmd::Kind::Emit: {
        for (const ExprPtr& a : c.args) infer(a);
        auto& entry = event_arities_[c.target];
        entry.emplace(c.args.size(), c.line);
        break;
      }
      case Cmd::Kind::ForAll: {
        const Kind dk = infer(c.domain);
        if (dk != Kind::Int && dk != Kind::Set && dk != Kind::Unknown)
          note(c.line, "FORALL domain is " + std::string(kind_name(dk)));
        bindings_[c.bound] = Kind::Unknown;  // int or element kind
        for (const Cmd& b : c.body) check_cmd(b, returned);
        bindings_.erase(c.bound);
        break;
      }
    }
  }

  Kind infer(const ExprPtr& e) {
    if (!e) return Kind::Unknown;
    switch (e->kind) {
      case Expr::Kind::IntLit:
        return Kind::Int;
      case Expr::Kind::SymLit:
        return Kind::Sym;
      case Expr::Kind::SetLit:
        for (const ExprPtr& a : e->args) infer(a);
        return Kind::Set;
      case Expr::Kind::Ref:
        return infer_ref(*e);
      case Expr::Kind::Unary: {
        const Kind k = infer(e->lhs);
        if (e->un_op == UnOp::Not) {
          if (k != Kind::Bool && k != Kind::Unknown)
            note(e->line, "NOT applied to " + std::string(kind_name(k)));
          return Kind::Bool;
        }
        if (k != Kind::Int && k != Kind::Unknown)
          note(e->line, "negation applied to " + std::string(kind_name(k)));
        return Kind::Int;
      }
      case Expr::Kind::Binary:
        return infer_binary(*e);
      case Expr::Kind::Quantified: {
        const Kind dk = infer(e->lhs);
        if (dk != Kind::Int && dk != Kind::Set && dk != Kind::Unknown)
          note(e->line,
               "quantifier domain is " + std::string(kind_name(dk)));
        bindings_[e->name] = Kind::Unknown;
        const Kind bk = infer(e->rhs);
        bindings_.erase(e->name);
        if (bk != Kind::Bool && bk != Kind::Unknown)
          note(e->line, "quantifier body is " + std::string(kind_name(bk)));
        return Kind::Bool;
      }
    }
    return Kind::Unknown;
  }

  Kind infer_ref(const Expr& e) {
    // Bound names first.
    if (e.args.empty()) {
      const auto it = bindings_.find(e.name);
      if (it != bindings_.end()) return it->second;
    }
    if (const VarDecl* v = prog_->find_variable(e.name)) {
      if (v->is_array()) {
        if (e.args.size() != 1)
          note(e.line, "array '" + e.name + "' needs exactly one index");
        else if (const Kind ik = infer(e.args[0]);
                 ik != Kind::Int && ik != Kind::Unknown)
          note(e.line, "array index is " + std::string(kind_name(ik)));
      } else if (!e.args.empty()) {
        note(e.line, "scalar '" + e.name + "' is not indexable");
      }
      return kind_of_domain(v->domain);
    }
    if (const InputDecl* in = prog_->find_input(e.name)) {
      if (e.args.size() != in->index_domains.size())
        note(e.line, "input '" + e.name + "' expects " +
                         std::to_string(in->index_domains.size()) +
                         " indices, got " + std::to_string(e.args.size()));
      for (const ExprPtr& a : e.args) infer(a);
      return kind_of_domain(in->domain);
    }
    if (e.args.empty()) {
      const auto it = prog_->constants.find(e.name);
      if (it != prog_->constants.end()) {
        if (it->second.is_int()) return Kind::Int;
        if (it->second.is_sym()) return Kind::Sym;
        return Kind::Set;
      }
    }
    // Builtins.
    static const std::map<std::string, std::pair<int, Kind>> builtins = {
        {"abs", {1, Kind::Int}},      {"signum", {1, Kind::Int}},
        {"min", {-1, Kind::Int}},     {"max", {-1, Kind::Int}},
        {"card", {1, Kind::Int}},     {"xor", {2, Kind::Int}},
        {"bitand", {2, Kind::Int}},   {"bit", {2, Kind::Int}},
        {"popcount", {1, Kind::Int}}, {"meshdist", {4, Kind::Int}},
    };
    const auto bit = builtins.find(e.name);
    if (bit != builtins.end()) {
      const auto [arity, kind] = bit->second;
      if (arity >= 0 && static_cast<int>(e.args.size()) != arity)
        note(e.line, "builtin '" + e.name + "' expects " +
                         std::to_string(arity) + " arguments, got " +
                         std::to_string(e.args.size()));
      if (arity < 0 && e.args.empty())
        note(e.line, "builtin '" + e.name + "' needs arguments");
      for (const ExprPtr& a : e.args)
        if (const Kind k = infer(a); k != Kind::Int && k != Kind::Unknown)
          note(e.line, "builtin '" + e.name + "' argument is " +
                           std::string(kind_name(k)));
      return kind;
    }
    // Subbases used as functions.
    if (const RuleBase* sub = prog_->find_rule_base(e.name)) {
      if (e.args.size() != sub->params.size())
        note(e.line, "subbase '" + e.name + "' expects " +
                         std::to_string(sub->params.size()) +
                         " arguments, got " + std::to_string(e.args.size()));
      for (const ExprPtr& a : e.args) infer(a);
      if (!sub->returns) {
        note(e.line,
             "subbase '" + e.name + "' used in an expression but has no "
             "RETURNS declaration");
        return Kind::Unknown;
      }
      return kind_of_domain(*sub->returns);
    }
    note(e.line, "unknown name '" + e.name + "'");
    return Kind::Unknown;
  }

  Kind infer_binary(const Expr& e) {
    const Kind l = infer(e.lhs);
    const Kind r = infer(e.rhs);
    auto both = [&](Kind want, const char* what) {
      if (l != want && l != Kind::Unknown)
        note(e.line, std::string(what) + " left operand is " + kind_name(l));
      if (r != want && r != Kind::Unknown)
        note(e.line, std::string(what) + " right operand is " + kind_name(r));
    };
    switch (e.bin_op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Mod:
        both(Kind::Int, "arithmetic");
        return Kind::Int;
      case BinOp::And:
      case BinOp::Or:
        both(Kind::Bool, "logical");
        return Kind::Bool;
      case BinOp::Eq:
      case BinOp::Ne:
        if (l != Kind::Unknown && r != Kind::Unknown && l != r &&
            !(l == Kind::Bool && r == Kind::Int) &&
            !(l == Kind::Int && r == Kind::Bool))
          note(e.line, "comparing " + std::string(kind_name(l)) + " with " +
                           kind_name(r));
        return Kind::Bool;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (l != Kind::Unknown && r != Kind::Unknown && l != r)
          note(e.line, "ordering " + std::string(kind_name(l)) + " against " +
                           kind_name(r));
        if (l == Kind::Set || r == Kind::Set)
          note(e.line, "sets have no order comparison");
        return Kind::Bool;
      case BinOp::In:
        if (r != Kind::Set && r != Kind::Unknown)
          note(e.line, "IN right-hand side is " + std::string(kind_name(r)));
        if (l == Kind::Set)
          note(e.line, "IN left-hand side must be a scalar");
        return Kind::Bool;
      case BinOp::Union:
      case BinOp::Intersect:
      case BinOp::SetMinus:
        both(Kind::Set, "set operation");
        return Kind::Set;
    }
    return Kind::Unknown;
  }

  const Program* prog_;
  const RuleBase* rb_ = nullptr;
  std::map<std::string, Kind> bindings_;
  std::map<std::string, std::map<std::size_t, int>> event_arities_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> validate_program(const Program& prog) {
  return Validator(prog).run();
}

void require_valid(const Program& prog) {
  const auto diags = validate_program(prog);
  if (diags.empty()) return;
  std::ostringstream os;
  os << "rule program '" << prog.name << "' failed validation:";
  for (const Diagnostic& d : diags) os << "\n  " << d.to_string();
  FR_REQUIRE_MSG(false, os.str());
}

}  // namespace flexrouter::rules
