#include "ruleengine/event_manager.hpp"

#include <sstream>

namespace flexrouter::rules {

EventManager::EventManager(const Program& prog, ExecMode mode,
                           const CompileOptions& opts,
                           std::shared_ptr<const BytecodeProgram> bytecode)
    : prog_(&prog), mode_(mode), interp_(prog), env_(prog) {
  if (mode_ == ExecMode::Table)
    compiled_ = compile_program(prog, interp_, opts);
  if (mode_ == ExecMode::Vm || mode_ == ExecMode::Aot) {
    bytecode_ = bytecode ? std::move(bytecode) : compile_bytecode(prog);
    FR_REQUIRE_MSG(&bytecode_->program() == prog_,
                   "bytecode compiled from a different program");
    vm_ = std::make_unique<Vm>(bytecode_, env_);
  }
}

FireResult EventManager::dispatch(const RuleBase& rb,
                                  const std::vector<Value>& args) {
  ++interpretations_;
  FireResult r;
  if (mode_ == ExecMode::Table) {
    const CompiledRuleBase* hit = nullptr;
    for (const CompiledRuleBase& c : compiled_)
      if (&c.source() == &rb) hit = &c;
    FR_ASSERT_MSG(hit != nullptr, "rule base missing from compiled program");
    r = hit->fire(interp_, env_, args);
  } else if (mode_ == ExecMode::Vm || mode_ == ExecMode::Aot) {
    r = vm_->fire(static_cast<int>(&rb - prog_->rule_bases.data()), args);
  } else {
    r = interp_.fire(env_, rb, args);
  }
  if (trace_) trace_(rb, args, r);
  return r;
}

std::string EventManager::describe_firing(const Program& prog,
                                          const RuleBase& rb,
                                          const std::vector<Value>& args,
                                          const FireResult& r) {
  std::ostringstream os;
  os << rb.name << "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    os << args[i].to_string(prog.syms);
  }
  os << ")";
  if (!r.applied()) {
    os << " -> no rule applicable";
    return os.str();
  }
  os << " -> rule #" << r.rule_index + 1;
  if (r.returned) os << ", RETURN " << r.returned->to_string(prog.syms);
  for (const EmittedEvent& e : r.events) {
    os << ", !" << e.name << "(";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i) os << ", ";
      os << e.args[i].to_string(prog.syms);
    }
    os << ")";
  }
  return os.str();
}

FireResult EventManager::fire(const std::string& rule_base,
                              const std::vector<Value>& args) {
  FireResult r = dispatch(prog_->rule_base(rule_base), args);
  for (EmittedEvent& e : r.events) queue_.push_back(std::move(e));
  return r;
}

FireResult EventManager::fire(int rb_index, const std::vector<Value>& args) {
  FR_REQUIRE(rb_index >= 0 &&
             rb_index < static_cast<int>(prog_->rule_bases.size()));
  FireResult r =
      dispatch(prog_->rule_bases[static_cast<std::size_t>(rb_index)], args);
  for (EmittedEvent& e : r.events) queue_.push_back(std::move(e));
  return r;
}

int EventManager::base_index(const std::string& rule_base) const {
  const RuleBase* rb = prog_->find_rule_base(rule_base);
  return rb ? static_cast<int>(rb - prog_->rule_bases.data()) : -1;
}

void EventManager::post(const std::string& event, std::vector<Value> args) {
  queue_.push_back({event, std::move(args)});
}

int EventManager::drain(int max_steps) {
  int fired = 0;
  int steps = 0;
  while (!queue_.empty()) {
    FR_REQUIRE_MSG(++steps <= max_steps, "event cascade exceeded max_steps");
    EmittedEvent ev = std::move(queue_.front());
    queue_.pop_front();
    // VM-produced events carry a pre-resolved target; others look up by name.
    const RuleBase* rb =
        ev.target_rb >= 0
            ? &prog_->rule_bases[static_cast<std::size_t>(ev.target_rb)]
            : (ev.target_rb == -1 ? nullptr : prog_->find_rule_base(ev.name));
    if (rb == nullptr) {
      if (host_fast_)
        host_fast_(ev);
      else if (host_)
        host_(ev.name, ev.args);
      continue;
    }
    FireResult r = dispatch(*rb, ev.args);
    ++fired;
    for (EmittedEvent& e : r.events) queue_.push_back(std::move(e));
  }
  return fired;
}

void EventManager::reset_state() {
  env_.reset();
  queue_.clear();
}

}  // namespace flexrouter::rules
