#include "ruleengine/aot.hpp"

#include <limits>

namespace flexrouter::rules {

void AotTable::reset(const Dims& d, std::size_t expected_cands) {
  FR_REQUIRE(d.nodes > 0 && d.dests > 0 && d.ports > 0 && d.vcs > 0);
  dims_ = d;
  dest_stride_ = static_cast<std::uint64_t>(d.ports) *
                 static_cast<std::uint64_t>(d.vcs);
  node_stride_ = dest_stride_ * static_cast<std::uint64_t>(d.dests);
  entries_.assign(static_cast<std::size_t>(d.entry_count()), AotEntry{});
  arena_.clear();
  arena_.reserve(expected_cands);
}

namespace {

bool packable(const AotCand& c) {
  return c.port >= std::numeric_limits<std::int8_t>::min() &&
         c.port <= std::numeric_limits<std::int8_t>::max() &&
         c.vc >= std::numeric_limits<std::int8_t>::min() &&
         c.vc <= std::numeric_limits<std::int8_t>::max() &&
         c.priority >= std::numeric_limits<std::int16_t>::min() &&
         c.priority <= std::numeric_limits<std::int16_t>::max();
}

}  // namespace

void AotTable::set_entry(std::uint64_t flat, int steps, const AotCand* cands,
                         std::size_t n) {
  FR_REQUIRE(flat < entries_.size());
  FR_REQUIRE_MSG(steps >= 1, "a resolved AOT entry needs steps >= 1");
  FR_REQUIRE(steps <= std::numeric_limits<std::uint16_t>::max());
  FR_REQUIRE(n < AotEntry::kArenaFlag);
  AotEntry& e = entries_[static_cast<std::size_t>(flat)];
  FR_REQUIRE_MSG(e.steps == 0 && e.count == 0,
                 "AOT premise point resolved twice");
  bool inlinable = n <= AotEntry::kInlineCands;
  for (std::size_t i = 0; inlinable && i < n; ++i)
    inlinable = packable(cands[i]);
  if (inlinable) {
    for (std::size_t i = 0; i < n; ++i)
      e.inl[i] = {static_cast<std::int8_t>(cands[i].port),
                  static_cast<std::int8_t>(cands[i].vc),
                  static_cast<std::int16_t>(cands[i].priority)};
    e.count = static_cast<std::uint16_t>(n);
  } else {
    FR_REQUIRE(arena_.size() <= std::numeric_limits<std::uint32_t>::max());
    e.first = static_cast<std::uint32_t>(arena_.size());
    e.count = static_cast<std::uint16_t>(n) | AotEntry::kArenaFlag;
    arena_.insert(arena_.end(), cands, cands + n);
  }
  e.steps = static_cast<std::uint16_t>(steps);
}

void AotTable::mark_unreachable(std::uint64_t flat) {
  FR_REQUIRE(flat < entries_.size());
  AotEntry& e = entries_[static_cast<std::size_t>(flat)];
  FR_REQUIRE_MSG(e.steps == 0 && e.count == 0,
                 "AOT premise point resolved twice");
  e.count = kUnreachableCount;
}

bool AotTable::decode(std::uint64_t flat, int& steps,
                      std::vector<AotCand>& cands) const {
  FR_REQUIRE(flat < entries_.size());
  const AotEntry& e = entries_[static_cast<std::size_t>(flat)];
  cands.clear();
  if (e.steps == 0) return false;
  steps = e.steps;
  if (e.count & AotEntry::kArenaFlag) {
    const std::uint32_t n = e.count & (AotEntry::kArenaFlag - 1u);
    cands.insert(cands.end(), arena_.begin() + e.first,
                 arena_.begin() + e.first + n);
  } else {
    for (std::uint32_t i = 0; i < e.count; ++i)
      cands.push_back({e.inl[i].port, e.inl[i].vc, e.inl[i].priority});
  }
  return true;
}

AotTable::Stats AotTable::stats() const {
  Stats s;
  s.entries = entries_.size();
  for (const AotEntry& e : entries_) {
    if (e.steps != 0)
      ++s.resolved;
    else if (e.count == kUnreachableCount)
      ++s.unreachable;
  }
  s.fallback = s.entries - s.resolved - s.unreachable;
  s.arena_candidates = arena_.size();
  s.bytes = s.entries * sizeof(AotEntry) + s.arena_candidates * sizeof(AotCand);
  return s;
}

}  // namespace flexrouter::rules
