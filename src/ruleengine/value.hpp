// Finite-domain value system of the rule language.
//
// The paper restricts data types to "integers within finite ranges, discrete
// symbols, the union of these two, and subsets of these" so that every
// variable maps to a fixed number of hardware bits. Value is the runtime
// representation (integer, interned symbol, or small set); Domain describes
// the static type and yields the bit width used by the hardware cost model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/assert.hpp"

namespace flexrouter::rules {

/// Interned symbol identifier. Symbols are global to a Program.
using SymId = std::int32_t;

/// Bidirectional string <-> SymId interning table.
class SymTable {
 public:
  SymId intern(const std::string& name);
  /// Returns the id if interned, -1 otherwise.
  SymId lookup(const std::string& name) const;
  const std::string& name(SymId id) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::map<std::string, SymId> ids_;
  std::vector<std::string> names_;
};

class Value;

/// Small set of scalar values, kept sorted and unique. Sets in routing
/// algorithms are tiny (directions, states), so a flat vector wins.
class SetValue {
 public:
  SetValue() = default;
  explicit SetValue(std::vector<Value> elems);

  bool contains(const Value& v) const;
  SetValue set_union(const SetValue& o) const;
  SetValue set_intersect(const SetValue& o) const;
  SetValue set_minus(const SetValue& o) const;
  void insert(const Value& v);

  std::size_t size() const { return elems_.size(); }
  bool empty() const { return elems_.empty(); }
  const std::vector<Value>& elements() const { return elems_; }

  friend bool operator==(const SetValue& a, const SetValue& b);

 private:
  std::vector<Value> elems_;  // sorted, unique
};

/// Runtime value: integer, symbol, or set.
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  static Value make_int(std::int64_t v) { return Value(v); }
  static Value make_sym(SymId s) { return Value(SymTag{s}); }
  static Value make_bool(bool b) { return Value(std::int64_t{b ? 1 : 0}); }
  static Value make_set(SetValue s) { return Value(std::move(s)); }

  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_sym() const { return std::holds_alternative<SymTag>(data_); }
  bool is_set() const { return std::holds_alternative<SetValue>(data_); }

  std::int64_t as_int() const {
    FR_REQUIRE_MSG(is_int(), "value is not an integer");
    return std::get<std::int64_t>(data_);
  }
  bool as_bool() const { return as_int() != 0; }
  SymId as_sym() const {
    FR_REQUIRE_MSG(is_sym(), "value is not a symbol");
    return std::get<SymTag>(data_).id;
  }
  const SetValue& as_set() const {
    FR_REQUIRE_MSG(is_set(), "value is not a set");
    return std::get<SetValue>(data_);
  }

  /// Total order (int < sym < set; by content within kind) so Values can key
  /// sorted containers and sets stay canonical.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator==(const Value& a, const Value& b);

  std::string to_string(const SymTable& syms) const;

 private:
  struct SymTag {
    SymId id;
    friend bool operator==(const SymTag&, const SymTag&) = default;
    friend auto operator<=>(const SymTag&, const SymTag&) = default;
  };
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(SymTag s) : data_(s) {}
  explicit Value(SetValue s) : data_(std::move(s)) {}

  std::variant<std::int64_t, SymTag, SetValue> data_;
};

/// Static type of a variable/input/parameter.
class Domain {
 public:
  enum class Kind {
    IntRange,   // [lo, hi] inclusive
    Symbols,    // ordered finite set of symbols (order = lattice order)
    SetOf,      // subsets of an element domain
    Boolean,    // {0, 1} shorthand
  };

  static Domain int_range(std::int64_t lo, std::int64_t hi);
  static Domain symbols(std::vector<SymId> syms);
  static Domain set_of(Domain element);
  static Domain boolean() { return int_range(0, 1); }

  Kind kind() const { return kind_; }
  std::int64_t lo() const { return lo_; }
  std::int64_t hi() const { return hi_; }
  const std::vector<SymId>& syms() const { return syms_; }
  const Domain& element() const;

  /// Number of distinct values (for SetOf: 2^|element|).
  std::uint64_t cardinality() const;
  /// Hardware bits to store one value of this domain.
  int bits() const;

  bool contains(const Value& v) const;

  /// All values of the domain in canonical order. Contract: cardinality is
  /// small (used by the compiler to enumerate feature axes).
  std::vector<Value> enumerate() const;

  /// Finite abstraction of the domain for static analysis: every value when
  /// cardinality <= full_enum_cap, otherwise a boundary sample (lo, lo+1,
  /// midpoint, hi-1, hi for ranges; empty and full set for SetOf). Sorted
  /// and unique; never empty.
  std::vector<Value> sample_values(std::uint64_t full_enum_cap) const;

  /// Position of `v` in enumerate() order. Contract: contains(v).
  std::uint64_t index_of(const Value& v) const;
  Value value_at(std::uint64_t index) const;

  /// Lattice rank of a symbol in a Symbols domain (its declaration order).
  int sym_rank(SymId s) const;

  std::string to_string(const SymTable& syms) const;

 private:
  Kind kind_ = Kind::IntRange;
  std::int64_t lo_ = 0, hi_ = 0;
  std::vector<SymId> syms_;
  std::vector<Domain> elem_;  // size 1 for SetOf (vector for value semantics)
};

}  // namespace flexrouter::rules
