// Dest-axis classification for the AOT decision table: static proofs that a
// routing program's decision depends on the destination only through a small
// derived quantity, so the table's dest axis can collapse from N node ids to
// O(degree) classes. Two classifiers are recognised:
//
//  * XorFold — every read of `node` / `dest` occurs inside `xor(node, dest)`
//    or as a direct `node = dest` / `node <> dest` comparison, and no other
//    node-dependent input is read. The decision is then a function of
//    (node ^ dest, in_port, in_vc) alone — both id axes collapse to one
//    xor-class axis (e-cube / dimension-order programs on hypercubes).
//  * OffsetSign2D — every read of `xdes` / `ydes` occurs as a direct
//    comparison against `xpos` / `ypos` respectively. Any comparison between
//    a position and the matching destination coordinate is a function of the
//    per-axis offset *sign*, so the dest axis collapses to the nine
//    (sgn dx, sgn dy) combinations while the node axis stays (node-scoped
//    inputs like link_ok remain legal) — DOR / NARA-style mesh programs.
//
// The analysis is conservative: it walks every rule reachable from the
// decision rule base (the same traversal as analyze_reachable) and rejects
// on the first read it cannot prove class-determined — e.g. ft_mesh_rules'
// `escape_port`, which depends on raw destination bits. The host validates
// the verdict point-by-point against the VM during the table fill and
// demotes to the lazy tier on any mismatch, so a classifier bug can cost
// performance but never correctness.
#pragma once

#include <cstdint>
#include <string>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

enum class DestClassifier : std::uint8_t {
  None = 0,      // dest axis cannot be collapsed
  XorFold,       // class = node ^ dest (node axis collapses too)
  OffsetSign2D,  // class = (sgn(ydes-ypos), sgn(xdes-xpos)); node axis stays
};

const char* to_string(DestClassifier c);

struct DestClassAnalysis {
  DestClassifier kind = DestClassifier::None;
  /// Human-readable verdict: which proof succeeded, or the first read that
  /// blocked both (surfaced by rulelint --emit-table and flexsim).
  std::string reason;
};

/// Decide whether the premise space reachable from rule base `root` admits
/// a dest-axis classifier. Purely syntactic — host applicability (2-D mesh
/// for OffsetSign2D, tabulable program) is the caller's business.
DestClassAnalysis classify_dest_axis(const Program& prog,
                                     const std::string& root);

}  // namespace flexrouter::rules
