// Program-level hardware cost reports — the machinery behind Tables 1 and 2
// of the paper: per-rule-base table dimensions and FCFB inventories,
// register-bit accounting, and the fault-tolerance overhead obtained by
// diffing a fault-tolerant program against its non-fault-tolerant variant
// (NAFTA vs NARA; ROUTE_C vs its stripped version).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ruleengine/rule_table.hpp"

namespace flexrouter::rules {

struct RuleBaseReport {
  std::string name;
  std::uint64_t entries = 0;
  int width_bits = 0;
  std::int64_t table_bits = 0;
  int num_rules = 0;
  int num_conclusions = 0;
  std::string fcfbs;
  double decision_delay = 0.0;
  /// True when a rule base of the same name exists in the non-FT variant —
  /// the paper's "nft" column marker (*).
  bool in_nft = false;
};

struct RegisterReport {
  std::string name;
  int element_bits = 0;
  std::int64_t array_size = 1;
  std::int64_t total_bits = 0;
  bool in_nft = false;
};

struct ProgramReport {
  std::string program;
  std::vector<RuleBaseReport> rule_bases;
  std::vector<RegisterReport> registers;
  std::int64_t total_table_bits = 0;
  std::int64_t total_register_bits = 0;
  int num_registers = 0;
  /// Register bits attributable to fault tolerance (total minus the bits of
  /// the non-FT variant); 0 when no variant was supplied.
  std::int64_t ft_register_bits = 0;
  std::int64_t ft_table_bits = 0;
};

/// Build the report for `prog`, compiling every rule base. When `nft` is
/// given, rule bases and registers present there (by name) are flagged as
/// needed-without-fault-tolerance and the FT overhead deltas are computed.
ProgramReport report_program(const Program& prog,
                             const CompileOptions& opts = {},
                             const Program* nft = nullptr);

/// Render a report as an aligned text table (used by the bench binaries).
std::string render_report(const ProgramReport& report);

}  // namespace flexrouter::rules
