#include "ruleengine/parser.hpp"

#include <set>

#include "ruleengine/lexer.hpp"

namespace flexrouter::rules {

namespace {

class Parser {
 public:
  Parser(const std::string& source, std::string default_name)
      : toks_(lex(source)) {
    prog_.name = std::move(default_name);
  }

  Program run() {
    if (peek().kind == Tok::KwProgram) {
      next();
      prog_.name = expect_ident("program name");
      accept(Tok::Semi);
    }
    while (peek().kind != Tok::End) parse_decl();
    return std::move(prog_);
  }

 private:
  // --- token helpers -------------------------------------------------------
  const Token& peek(int ahead = 0) const {
    const auto i = std::min(pos_ + static_cast<std::size_t>(ahead),
                            toks_.size() - 1);
    return toks_[i];
  }
  const Token& next() {
    const Token& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool accept(Tok kind) {
    if (peek().kind == kind) {
      next();
      return true;
    }
    return false;
  }
  void expect(Tok kind, const char* what) {
    if (!accept(kind))
      throw ParseError(std::string("expected ") + to_string(kind) + " (" +
                           what + "), found " + describe(peek()),
                       peek().line);
  }
  std::string expect_ident(const char* what) {
    if (peek().kind != Tok::Ident)
      throw ParseError(std::string("expected identifier (") + what +
                           "), found " + describe(peek()),
                       peek().line);
    return next().text;
  }
  static std::string describe(const Token& t) {
    if (t.kind == Tok::Ident) return "'" + t.text + "'";
    if (t.kind == Tok::Int) return "'" + std::to_string(t.int_val) + "'";
    return std::string("'") + to_string(t.kind) + "'";
  }

  // --- declarations --------------------------------------------------------
  void parse_decl() {
    switch (peek().kind) {
      case Tok::KwConstant: parse_constant(); return;
      case Tok::KwVariable: parse_variable(); return;
      case Tok::KwInput: parse_input(); return;
      case Tok::KwOn: parse_on_block(); return;
      default:
        throw ParseError("expected CONSTANT, VARIABLE, INPUT or ON, found " +
                             describe(peek()),
                         peek().line);
    }
  }

  void parse_constant() {
    const int line = peek().line;
    expect(Tok::KwConstant, "constant declaration");
    const std::string name = expect_ident("constant name");
    check_fresh_name(name, line);
    expect(Tok::Eq, "constant definition");
    if (peek().kind == Tok::LBrace) {
      // Symbol enum: declares both a named domain and the full-set constant.
      std::vector<SymId> syms = parse_symbol_list();
      prog_.named_domains.emplace(name, Domain::symbols(syms));
      std::vector<Value> elems;
      elems.reserve(syms.size());
      for (const SymId s : syms) elems.push_back(Value::make_sym(s));
      prog_.constants.emplace(name, Value::make_set(SetValue(std::move(elems))));
    } else {
      prog_.constants.emplace(name, Value::make_int(parse_const_int()));
    }
    accept(Tok::Semi);
  }

  std::vector<SymId> parse_symbol_list() {
    expect(Tok::LBrace, "symbol set");
    std::vector<SymId> syms;
    if (peek().kind != Tok::RBrace) {
      do {
        syms.push_back(prog_.syms.intern(expect_ident("symbol")));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RBrace, "symbol set");
    return syms;
  }

  void parse_variable() {
    VarDecl var;
    var.line = peek().line;
    expect(Tok::KwVariable, "variable declaration");
    var.name = expect_ident("variable name");
    check_fresh_name(var.name, var.line);
    if (accept(Tok::LBracket)) {
      var.array_size = parse_const_int();
      if (var.array_size < 1)
        throw ParseError("array size must be positive", var.line);
      expect(Tok::RBracket, "array size");
    }
    expect(Tok::KwIn, "variable domain");
    var.domain = parse_domain();
    if (accept(Tok::KwInit)) {
      // Initialisers are restricted to literals so that the initial register
      // image is static.
      var.init = parse_literal_value(var.domain);
    }
    prog_.variables.push_back(std::move(var));
    accept(Tok::Semi);
  }

  void parse_input() {
    InputDecl in;
    in.line = peek().line;
    expect(Tok::KwInput, "input declaration");
    in.name = expect_ident("input name");
    check_fresh_name(in.name, in.line);
    if (accept(Tok::LParen)) {
      do {
        in.index_domains.push_back(parse_domain());
      } while (accept(Tok::Comma));
      expect(Tok::RParen, "input index domains");
    }
    expect(Tok::KwIn, "input domain");
    in.domain = parse_domain();
    prog_.inputs.push_back(std::move(in));
    accept(Tok::Semi);
  }

  void parse_on_block() {
    RuleBase rb;
    rb.line = peek().line;
    expect(Tok::KwOn, "rule base");
    rb.name = expect_ident("event name");
    if (prog_.find_rule_base(rb.name) != nullptr)
      throw ParseError("duplicate rule base '" + rb.name + "'", rb.line);
    if (accept(Tok::LParen)) {
      if (peek().kind != Tok::RParen) {
        do {
          Param p;
          p.name = expect_ident("parameter name");
          expect(Tok::KwIn, "parameter domain");
          p.domain = parse_domain();
          rb.params.push_back(std::move(p));
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "parameter list");
    }
    if (accept(Tok::KwReturns)) rb.returns = parse_domain();
    while (peek().kind == Tok::KwIf) rb.rules.push_back(parse_rule());
    expect(Tok::KwEnd, "rule base");
    if (peek().kind == Tok::Ident) {
      const std::string trailer = next().text;
      if (trailer != rb.name)
        throw ParseError("END " + trailer + " does not match ON " + rb.name,
                         peek().line);
    }
    accept(Tok::Semi);
    prog_.rule_bases.push_back(std::move(rb));
  }

  Rule parse_rule() {
    Rule r;
    r.line = peek().line;
    expect(Tok::KwIf, "rule");
    r.premise = parse_expr();
    expect(Tok::KwThen, "rule");
    do {
      r.conclusion.push_back(parse_cmd());
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "rule terminator");
    return r;
  }

  Cmd parse_cmd() {
    Cmd c;
    c.line = peek().line;
    if (accept(Tok::Bang)) {
      c.kind = Cmd::Kind::Emit;
      c.target = expect_ident("event name");
      expect(Tok::LParen, "event arguments");
      if (peek().kind != Tok::RParen) {
        do {
          c.args.push_back(parse_expr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "event arguments");
      return c;
    }
    if (accept(Tok::KwReturn)) {
      c.kind = Cmd::Kind::Return;
      expect(Tok::LParen, "RETURN value");
      c.value = parse_expr();
      expect(Tok::RParen, "RETURN value");
      return c;
    }
    if (accept(Tok::KwForall)) {
      c.kind = Cmd::Kind::ForAll;
      c.bound = expect_ident("bound variable");
      expect(Tok::KwIn, "quantifier domain");
      c.domain = parse_expr_additive();
      expect(Tok::Colon, "quantified command");
      if (accept(Tok::LParen)) {
        do {
          c.body.push_back(parse_cmd());
        } while (accept(Tok::Comma));
        expect(Tok::RParen, "quantified command group");
      } else {
        c.body.push_back(parse_cmd());
      }
      return c;
    }
    // assignment: target [ (args) ] <- expr
    c.kind = Cmd::Kind::Assign;
    c.target = expect_ident("assignment target");
    if (accept(Tok::LParen)) {
      do {
        c.args.push_back(parse_expr());
      } while (accept(Tok::Comma));
      expect(Tok::RParen, "assignment index");
    }
    expect(Tok::Assign, "assignment");
    c.value = parse_expr();
    return c;
  }

  // --- domains & constant folding ------------------------------------------
  Domain parse_domain() {
    const int line = peek().line;
    if (peek().kind == Tok::LBrace) {
      return Domain::symbols(parse_symbol_list());
    }
    if (accept(Tok::KwSet)) {
      expect(Tok::KwOf, "SET OF domain");
      return Domain::set_of(parse_domain());
    }
    // Either `expr TO expr` or a bare name. A bare identifier that names an
    // enum is that enum; one that names an int constant c means 0 TO c-1.
    if (peek().kind == Tok::Ident && peek(1).kind != Tok::KwTo) {
      const std::string name = next().text;
      const auto dit = prog_.named_domains.find(name);
      if (dit != prog_.named_domains.end()) return dit->second;
      const auto cit = prog_.constants.find(name);
      if (cit != prog_.constants.end() && cit->second.is_int()) {
        const auto c = cit->second.as_int();
        if (c < 1)
          throw ParseError("constant '" + name + "' is not positive", line);
        return Domain::int_range(0, c - 1);
      }
      throw ParseError("unknown domain '" + name + "'", line);
    }
    const std::int64_t lo = parse_const_int();
    if (!accept(Tok::KwTo)) {
      // Cardinality shorthand: a bare constant c denotes 0 TO c-1.
      if (lo < 1)
        throw ParseError("cardinality domain must be positive", line);
      return Domain::int_range(0, lo - 1);
    }
    const std::int64_t hi = parse_const_int();
    if (lo > hi) throw ParseError("empty integer range domain", line);
    return Domain::int_range(lo, hi);
  }

  /// Constant integer expression: literals, named int constants, + - * /
  /// and parentheses.
  std::int64_t parse_const_int() { return const_add(); }

  std::int64_t const_add() {
    std::int64_t v = const_mul();
    while (true) {
      if (accept(Tok::Plus)) v += const_mul();
      else if (accept(Tok::Minus)) v -= const_mul();
      else return v;
    }
  }

  std::int64_t const_mul() {
    std::int64_t v = const_primary();
    while (true) {
      if (accept(Tok::Star)) v *= const_primary();
      else if (accept(Tok::Slash)) {
        const auto d = const_primary();
        if (d == 0) throw ParseError("division by zero in constant", peek().line);
        v /= d;
      } else {
        return v;
      }
    }
  }

  std::int64_t const_primary() {
    if (peek().kind == Tok::Int) return next().int_val;
    if (accept(Tok::Minus)) return -const_primary();
    if (accept(Tok::LParen)) {
      const auto v = const_add();
      expect(Tok::RParen, "constant expression");
      return v;
    }
    if (peek().kind == Tok::Ident) {
      const int line = peek().line;
      const std::string name = next().text;
      const auto it = prog_.constants.find(name);
      if (it == prog_.constants.end() || !it->second.is_int())
        throw ParseError("'" + name + "' is not an integer constant", line);
      return it->second.as_int();
    }
    throw ParseError("expected constant expression, found " + describe(peek()),
                     peek().line);
  }

  Value parse_literal_value(const Domain& domain) {
    const int line = peek().line;
    Value v;
    if (peek().kind == Tok::Int || peek().kind == Tok::Minus) {
      v = Value::make_int(parse_const_int());
    } else if (peek().kind == Tok::LBrace) {
      std::vector<Value> elems;
      expect(Tok::LBrace, "set literal");
      if (peek().kind != Tok::RBrace) {
        do {
          if (peek().kind == Tok::Int) {
            elems.push_back(Value::make_int(next().int_val));
          } else {
            elems.push_back(Value::make_sym(resolve_symbol(line)));
          }
        } while (accept(Tok::Comma));
      }
      expect(Tok::RBrace, "set literal");
      v = Value::make_set(SetValue(std::move(elems)));
    } else {
      v = Value::make_sym(resolve_symbol(line));
    }
    if (!domain.contains(v))
      throw ParseError("initialiser outside variable domain", line);
    return v;
  }

  SymId resolve_symbol(int line) {
    const std::string name = expect_ident("symbol");
    const SymId s = prog_.syms.lookup(name);
    if (s < 0) throw ParseError("unknown symbol '" + name + "'", line);
    return s;
  }

  // --- expressions ----------------------------------------------------------
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (peek().kind == Tok::KwOr) {
      const int line = next().line;
      e = Expr::make_binary(BinOp::Or, e, parse_and(), line);
    }
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_not();
    while (peek().kind == Tok::KwAnd) {
      const int line = next().line;
      e = Expr::make_binary(BinOp::And, e, parse_not(), line);
    }
    return e;
  }

  ExprPtr parse_not() {
    if (peek().kind == Tok::KwNot) {
      const int line = next().line;
      return Expr::make_unary(UnOp::Not, parse_not(), line);
    }
    return parse_rel();
  }

  ExprPtr parse_rel() {
    ExprPtr e = parse_expr_additive();
    BinOp op;
    switch (peek().kind) {
      case Tok::Eq: op = BinOp::Eq; break;
      case Tok::Ne: op = BinOp::Ne; break;
      case Tok::Lt: op = BinOp::Lt; break;
      case Tok::Le: op = BinOp::Le; break;
      case Tok::Gt: op = BinOp::Gt; break;
      case Tok::Ge: op = BinOp::Ge; break;
      case Tok::KwIn: op = BinOp::In; break;
      default: return e;
    }
    const int line = next().line;
    return Expr::make_binary(op, e, parse_expr_additive(), line);
  }

  ExprPtr parse_expr_additive() {
    ExprPtr e = parse_mul();
    while (true) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Plus: op = BinOp::Add; break;
        case Tok::Minus: op = BinOp::Sub; break;
        case Tok::KwUnion: op = BinOp::Union; break;
        case Tok::KwSetminus: op = BinOp::SetMinus; break;
        default: return e;
      }
      const int line = next().line;
      e = Expr::make_binary(op, e, parse_mul(), line);
    }
  }

  ExprPtr parse_mul() {
    ExprPtr e = parse_unary();
    while (true) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Star: op = BinOp::Mul; break;
        case Tok::Slash: op = BinOp::Div; break;
        case Tok::KwMod: op = BinOp::Mod; break;
        case Tok::KwIntersect: op = BinOp::Intersect; break;
        default: return e;
      }
      const int line = next().line;
      e = Expr::make_binary(op, e, parse_unary(), line);
    }
  }

  ExprPtr parse_unary() {
    if (peek().kind == Tok::Minus) {
      const int line = next().line;
      return Expr::make_unary(UnOp::Neg, parse_unary(), line);
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::Int: {
        const Token tok = next();
        return Expr::make_int(tok.int_val, tok.line);
      }
      case Tok::LParen: {
        next();
        ExprPtr e = parse_expr();
        expect(Tok::RParen, "parenthesised expression");
        return e;
      }
      case Tok::LBrace: {
        const int line = next().line;
        std::vector<ExprPtr> elems;
        if (peek().kind != Tok::RBrace) {
          do {
            elems.push_back(parse_expr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RBrace, "set literal");
        return Expr::make_set(std::move(elems), line);
      }
      case Tok::KwExists:
      case Tok::KwForall: {
        const Quant q =
            t.kind == Tok::KwExists ? Quant::Exists : Quant::ForAll;
        const int line = next().line;
        const std::string var = expect_ident("bound variable");
        expect(Tok::KwIn, "quantifier domain");
        ExprPtr dom = parse_expr_additive();
        expect(Tok::Colon, "quantifier body");
        ExprPtr body = parse_or();
        return Expr::make_quantified(q, var, std::move(dom), std::move(body),
                                     line);
      }
      case Tok::Ident: {
        const Token tok = next();
        std::vector<ExprPtr> args;
        if (accept(Tok::LParen)) {
          if (peek().kind != Tok::RParen) {
            do {
              args.push_back(parse_expr());
            } while (accept(Tok::Comma));
          }
          expect(Tok::RParen, "argument list");
        }
        // A bare identifier that is an interned enum symbol and not any
        // declared entity resolves to a symbol literal.
        if (args.empty() && !names_entity(tok.text)) {
          const SymId s = prog_.syms.lookup(tok.text);
          if (s >= 0) return Expr::make_sym(s, tok.line);
        }
        return Expr::make_ref(tok.text, std::move(args), tok.line);
      }
      default:
        throw ParseError("expected expression, found " + describe(t), t.line);
    }
  }

  bool names_entity(const std::string& n) const {
    return prog_.find_variable(n) != nullptr ||
           prog_.find_input(n) != nullptr || prog_.constants.count(n) > 0;
  }

  void check_fresh_name(const std::string& name, int line) const {
    if (names_entity(name) || prog_.named_domains.count(name) > 0)
      throw ParseError("duplicate declaration of '" + name + "'", line);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  Program prog_;
};

}  // namespace

Program parse_program(const std::string& source,
                      const std::string& default_name) {
  Parser p(source, default_name);
  return p.run();
}

}  // namespace flexrouter::rules
