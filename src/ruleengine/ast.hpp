// Abstract syntax of the rule language (Section 4.2 of the paper).
//
// The language is the paper's: rules of the form IF <premise> THEN
// <conclusion>; grouped into event-triggered rule bases (`ON event(params)
// ... END`), with finite-domain variables, indexed accesses, quantifiers
// (EXISTS/FORALL), set operations, event generation (`!event(args)`) and
// RETURN commands. ASTs are immutable and shared.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ruleengine/value.hpp"

namespace flexrouter::rules {

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
  In,          // membership: scalar IN set
  Union, Intersect, SetMinus,
};

enum class UnOp { Not, Neg };
enum class Quant { Exists, ForAll };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind {
    IntLit,     // 42
    SymLit,     // east  (resolved symbol)
    SetLit,     // {a, b, c} — element exprs in args
    Ref,        // name or name(arg, ...) — variable, array, input, param,
                //   bound var, named constant, builtin function or subbase
    Unary,      // NOT e / -e       (operand in lhs)
    Binary,     // lhs op rhs
    Quantified, // EXISTS/FORALL name IN lhs : rhs
  };

  Kind kind = Kind::IntLit;
  std::int64_t int_val = 0;        // IntLit
  SymId sym = -1;                  // SymLit
  std::vector<ExprPtr> args;       // SetLit elements / Ref arguments
  std::string name;                // Ref target / quantifier bound variable
  UnOp un_op = UnOp::Not;
  BinOp bin_op = BinOp::Add;
  ExprPtr lhs, rhs;
  Quant quant = Quant::Exists;
  int line = 0;

  static ExprPtr make_int(std::int64_t v, int line = 0);
  static ExprPtr make_sym(SymId s, int line = 0);
  static ExprPtr make_set(std::vector<ExprPtr> elems, int line = 0);
  static ExprPtr make_ref(std::string name, std::vector<ExprPtr> args = {},
                          int line = 0);
  static ExprPtr make_unary(UnOp op, ExprPtr operand, int line = 0);
  static ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line = 0);
  static ExprPtr make_quantified(Quant q, std::string var, ExprPtr domain,
                                 ExprPtr body, int line = 0);
};

/// Conclusion command.
struct Cmd {
  enum class Kind {
    Assign,  // target(args) <- value
    Return,  // RETURN(value)
    Emit,    // !event(args)
    ForAll,  // FORALL var IN domain : body
  };

  Kind kind = Kind::Assign;
  std::string target;              // Assign variable / Emit event name
  std::vector<ExprPtr> args;       // Assign index args / Emit arguments
  ExprPtr value;                   // Assign RHS / Return expression
  std::string bound;               // ForAll bound variable
  ExprPtr domain;                  // ForAll domain expression
  std::vector<Cmd> body;           // ForAll body commands
  int line = 0;
};

struct Rule {
  ExprPtr premise;
  std::vector<Cmd> conclusion;
  int line = 0;
};

struct Param {
  std::string name;
  Domain domain;
};

/// One `ON event(params) [RETURNS domain] ... END` block.
struct RuleBase {
  std::string name;
  std::vector<Param> params;
  std::optional<Domain> returns;
  std::vector<Rule> rules;
  int line = 0;
};

struct VarDecl {
  std::string name;
  Domain domain;
  std::int64_t array_size = 0;  // 0 = scalar, else VARIABLE name[size]
  std::optional<Value> init;    // default: first domain value
  int line = 0;

  bool is_array() const { return array_size > 0; }
  /// Register bits this variable occupies in hardware.
  std::int64_t register_bits() const {
    return domain.bits() * (is_array() ? array_size : 1);
  }
};

/// Host-provided signal (message header field, buffer state, link state…).
struct InputDecl {
  std::string name;
  Domain domain;
  std::vector<Domain> index_domains;  // empty = scalar input
  int line = 0;
};

/// A complete rule program: one routing algorithm.
struct Program {
  std::string name;
  SymTable syms;
  std::map<std::string, Value> constants;
  std::map<std::string, Domain> named_domains;
  std::vector<VarDecl> variables;
  std::vector<InputDecl> inputs;
  std::vector<RuleBase> rule_bases;

  const VarDecl* find_variable(const std::string& n) const;
  const InputDecl* find_input(const std::string& n) const;
  const RuleBase* find_rule_base(const std::string& n) const;
  const RuleBase& rule_base(const std::string& n) const;

  /// Total register bits across all variables (paper Section 5 accounting).
  std::int64_t total_register_bits() const;
};

/// Depth-first walkers over the immutable AST — the traversal backbone of
/// the static analyzers (signal discovery, cut-point collection). The
/// visitor sees every node exactly once, parents before children.
void for_each_subexpr(const ExprPtr& e,
                      const std::function<void(const Expr&)>& fn);
/// Every expression reachable from a command: assignment index args and RHS,
/// RETURN value, emit args, FORALL domain and body (recursively).
void for_each_expr(const Cmd& c, const std::function<void(const Expr&)>& fn);
/// Every expression of a rule: premise plus all conclusion commands.
void for_each_expr(const Rule& r, const std::function<void(const Expr&)>& fn);

/// Pretty-printers — canonical text used for structural dedupe and testing.
std::string to_string(const Expr& e, const SymTable& syms);
std::string to_string(const ExprPtr& e, const SymTable& syms);
std::string to_string(const Cmd& c, const SymTable& syms);
std::string to_string(const Rule& r, const SymTable& syms);
const char* to_string(BinOp op);

}  // namespace flexrouter::rules
