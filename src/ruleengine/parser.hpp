// Recursive-descent parser for the rule language.
//
// Grammar (keywords case-insensitive, `--` comments):
//
//   program    := [PROGRAM ident ;] { decl }
//   decl       := CONSTANT ident = (setlit | constexpr)
//              |  VARIABLE ident [ '[' constexpr ']' ] IN domain [INIT expr]
//              |  INPUT ident [ '(' domain {, domain} ')' ] IN domain
//              |  ON ident [ '(' param {, param} ')' ] [RETURNS domain]
//                   { rule } END [ident] [;]
//   param      := ident IN domain
//   domain     := constexpr TO constexpr        -- integer range
//              |  setlit                        -- anonymous symbol enum
//              |  SET OF domain                 -- subsets
//              |  ident                         -- named enum, or integer
//                                               -- constant c ⇒ 0 TO c-1
//   rule       := IF expr THEN cmd {, cmd} ;
//   cmd        := ident [ '(' expr {, expr} ')' ] <- expr
//              |  RETURN '(' expr ')'
//              |  '!' ident '(' [expr {, expr}] ')'
//              |  FORALL ident IN expr ':' ( cmd | '(' cmd {, cmd} ')' )
//   expr       := or-expr with the usual precedence: OR < AND < NOT <
//                 (= <> < <= > >= IN) < (+ - UNION SETMINUS) <
//                 (* / MOD INTERSECT) < unary- < primary
//   primary    := int | setlit | ident [ '(' expr {, expr} ')' ]
//              |  '(' expr ')'
//              |  (EXISTS|FORALL) ident IN expr ':' expr
//
// Bare identifiers resolve at evaluation time (parameter, bound variable,
// VARIABLE, INPUT, constant, enum symbol, builtin function, or subbase).
#pragma once

#include <string>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

/// Parse a complete rule program. Throws ParseError on malformed input.
Program parse_program(const std::string& source,
                      const std::string& default_name = "program");

}  // namespace flexrouter::rules
