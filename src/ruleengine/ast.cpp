#include "ruleengine/ast.hpp"

#include <sstream>

namespace flexrouter::rules {

ExprPtr Expr::make_int(std::int64_t v, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::IntLit;
  e->int_val = v;
  e->line = line;
  return e;
}

ExprPtr Expr::make_sym(SymId s, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::SymLit;
  e->sym = s;
  e->line = line;
  return e;
}

ExprPtr Expr::make_set(std::vector<ExprPtr> elems, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::SetLit;
  e->args = std::move(elems);
  e->line = line;
  return e;
}

ExprPtr Expr::make_ref(std::string name, std::vector<ExprPtr> args, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Ref;
  e->name = std::move(name);
  e->args = std::move(args);
  e->line = line;
  return e;
}

ExprPtr Expr::make_unary(UnOp op, ExprPtr operand, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Unary;
  e->un_op = op;
  e->lhs = std::move(operand);
  e->line = line;
  return e;
}

ExprPtr Expr::make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Binary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->line = line;
  return e;
}

ExprPtr Expr::make_quantified(Quant q, std::string var, ExprPtr domain,
                              ExprPtr body, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Quantified;
  e->quant = q;
  e->name = std::move(var);
  e->lhs = std::move(domain);
  e->rhs = std::move(body);
  e->line = line;
  return e;
}

const VarDecl* Program::find_variable(const std::string& n) const {
  for (const auto& v : variables)
    if (v.name == n) return &v;
  return nullptr;
}

const InputDecl* Program::find_input(const std::string& n) const {
  for (const auto& i : inputs)
    if (i.name == n) return &i;
  return nullptr;
}

const RuleBase* Program::find_rule_base(const std::string& n) const {
  for (const auto& rb : rule_bases)
    if (rb.name == n) return &rb;
  return nullptr;
}

const RuleBase& Program::rule_base(const std::string& n) const {
  const RuleBase* rb = find_rule_base(n);
  FR_REQUIRE_MSG(rb != nullptr, "no rule base named '" + n + "'");
  return *rb;
}

std::int64_t Program::total_register_bits() const {
  std::int64_t bits = 0;
  for (const auto& v : variables) bits += v.register_bits();
  return bits;
}

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "MOD";
    case BinOp::Eq: return "=";
    case BinOp::Ne: return "<>";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "AND";
    case BinOp::Or: return "OR";
    case BinOp::In: return "IN";
    case BinOp::Union: return "UNION";
    case BinOp::Intersect: return "INTERSECT";
    case BinOp::SetMinus: return "SETMINUS";
  }
  return "?";
}

std::string to_string(const ExprPtr& e, const SymTable& syms) {
  FR_REQUIRE(e != nullptr);
  return to_string(*e, syms);
}

std::string to_string(const Expr& e, const SymTable& syms) {
  std::ostringstream os;
  switch (e.kind) {
    case Expr::Kind::IntLit:
      os << e.int_val;
      break;
    case Expr::Kind::SymLit:
      os << syms.name(e.sym);
      break;
    case Expr::Kind::SetLit: {
      os << "{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ",";
        os << to_string(e.args[i], syms);
      }
      os << "}";
      break;
    }
    case Expr::Kind::Ref: {
      os << e.name;
      if (!e.args.empty()) {
        os << "(";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i) os << ",";
          os << to_string(e.args[i], syms);
        }
        os << ")";
      }
      break;
    }
    case Expr::Kind::Unary:
      os << (e.un_op == UnOp::Not ? "NOT " : "-") << "("
         << to_string(e.lhs, syms) << ")";
      break;
    case Expr::Kind::Binary:
      os << "(" << to_string(e.lhs, syms) << " " << to_string(e.bin_op) << " "
         << to_string(e.rhs, syms) << ")";
      break;
    case Expr::Kind::Quantified:
      os << (e.quant == Quant::Exists ? "EXISTS " : "FORALL ") << e.name
         << " IN " << to_string(e.lhs, syms) << ": ("
         << to_string(e.rhs, syms) << ")";
      break;
  }
  return os.str();
}

std::string to_string(const Cmd& c, const SymTable& syms) {
  std::ostringstream os;
  switch (c.kind) {
    case Cmd::Kind::Assign: {
      os << c.target;
      if (!c.args.empty()) {
        os << "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i) os << ",";
          os << to_string(c.args[i], syms);
        }
        os << ")";
      }
      os << " <- " << to_string(c.value, syms);
      break;
    }
    case Cmd::Kind::Return:
      os << "RETURN(" << to_string(c.value, syms) << ")";
      break;
    case Cmd::Kind::Emit: {
      os << "!" << c.target << "(";
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i) os << ",";
        os << to_string(c.args[i], syms);
      }
      os << ")";
      break;
    }
    case Cmd::Kind::ForAll: {
      os << "FORALL " << c.bound << " IN " << to_string(c.domain, syms)
         << ": ";
      for (std::size_t i = 0; i < c.body.size(); ++i) {
        if (i) os << ", ";
        os << to_string(c.body[i], syms);
      }
      break;
    }
  }
  return os.str();
}

void for_each_subexpr(const ExprPtr& e,
                      const std::function<void(const Expr&)>& fn) {
  if (!e) return;
  fn(*e);
  for (const ExprPtr& a : e->args) for_each_subexpr(a, fn);
  for_each_subexpr(e->lhs, fn);
  for_each_subexpr(e->rhs, fn);
}

void for_each_expr(const Cmd& c, const std::function<void(const Expr&)>& fn) {
  for (const ExprPtr& a : c.args) for_each_subexpr(a, fn);
  for_each_subexpr(c.value, fn);
  for_each_subexpr(c.domain, fn);
  for (const Cmd& b : c.body) for_each_expr(b, fn);
}

void for_each_expr(const Rule& r, const std::function<void(const Expr&)>& fn) {
  for_each_subexpr(r.premise, fn);
  for (const Cmd& c : r.conclusion) for_each_expr(c, fn);
}

std::string to_string(const Rule& r, const SymTable& syms) {
  std::ostringstream os;
  os << "IF " << to_string(r.premise, syms) << " THEN ";
  for (std::size_t i = 0; i < r.conclusion.size(); ++i) {
    if (i) os << ", ";
    os << to_string(r.conclusion[i], syms);
  }
  os << ";";
  return os.str();
}

}  // namespace flexrouter::rules
