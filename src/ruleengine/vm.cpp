#include "ruleengine/vm.hpp"

#include <algorithm>
#include <bit>

namespace flexrouter::rules {

namespace {

std::int64_t want_int(const Value& v, int line, const char* what) {
  if (!v.is_int())
    throw EvalError(std::string(what) + " must be an integer", line);
  return v.as_int();
}

const SetValue& want_set(const Value& v, int line, const char* what) {
  if (!v.is_set()) throw EvalError(std::string(what) + " must be a set", line);
  return v.as_set();
}

}  // namespace

FireResult Vm::fire(const std::string& rule_base,
                    const std::vector<Value>& args) {
  const RuleBase* rb = prog_->find_rule_base(rule_base);
  FR_REQUIRE_MSG(rb != nullptr, "unknown rule base '" + rule_base + "'");
  return fire(static_cast<int>(rb - prog_->rule_bases.data()), args);
}

Vm::RunResult Vm::fire_core(int rb_index, const std::vector<Value>& args,
                            HostSinkFn sink, void* sink_ctx) {
  // A previous fire may have thrown mid-run; start from a clean slate. The
  // sink is (re)installed unconditionally so a throw in a sinked fire can
  // never leak it into a later pooled fire.
  sink_ = sink;
  sink_ctx_ = sink_ctx;
  writes_.clear();
  frame_top_ = 0;
  pool_used_ = 0;

  RunResult res;
  run(rb_index, args.data(), args.size(), res);

  // Parallel commit: all RHS were evaluated against the pre-state.
  for (Pending& w : writes_) env_->set_by_id(w.var, w.index, std::move(w.value));
  writes_.clear();

  const RuleBase& rb = prog_->rule_bases[static_cast<std::size_t>(rb_index)];
  if (rb.returns && res.returned && !rb.returns->contains(*res.returned))
    throw EvalError("RETURN value outside declared domain of '" + rb.name + "'",
                    res.fired_line);
  return res;
}

FireResult Vm::fire(int rb_index, const std::vector<Value>& args) {
  RunResult res = fire_core(rb_index, args, nullptr, nullptr);
  FireResult out;
  out.rule_index = res.rule_index;
  out.returned = std::move(res.returned);
  out.events.assign(pool_.begin(),
                    pool_.begin() + static_cast<std::ptrdiff_t>(pool_used_));
  return out;
}

std::optional<Value> Vm::fire_fast(int rb_index,
                                   const std::vector<Value>& args) {
  return std::move(fire_core(rb_index, args, nullptr, nullptr).returned);
}

std::optional<Value> Vm::fire_fast(int rb_index, const std::vector<Value>& args,
                                   HostSinkFn sink, void* sink_ctx) {
  return std::move(fire_core(rb_index, args, sink, sink_ctx).returned);
}

Value Vm::call_sub(std::int32_t rb_id, const std::vector<Value>& args,
                   std::int32_t line) {
  const RuleBase& rb = prog_->rule_bases[static_cast<std::size_t>(rb_id)];
  const std::size_t wm = writes_.size();
  const std::size_t em = pool_used_;
  RunResult res;
  run(rb_id, args.data(), args.size(), res);

  // The interpreter fires subbases on a scratch copy of the register file,
  // commits, then diffs against the original. Replicate that contract
  // without the copy: run the per-write commit checks in commit order, then
  // require every write to be an identity write.
  for (std::size_t i = wm; i < writes_.size(); ++i) {
    const Pending& w = writes_[i];
    const VarDecl& d = prog_->variables[static_cast<std::size_t>(w.var)];
    FR_REQUIRE_MSG(w.index >= 0 &&
                       w.index < (d.is_array() ? d.array_size : 1),
                   "index out of range for '" + d.name + "'");
    FR_REQUIRE_MSG(d.domain.contains(w.value),
                   "assignment outside domain of '" + d.name + "'");
  }
  if (rb.returns && res.returned && !rb.returns->contains(*res.returned))
    throw EvalError("RETURN value outside declared domain of '" + rb.name + "'",
                    res.fired_line);
  for (std::size_t i = wm; i < writes_.size(); ++i) {
    const Pending& w = writes_[i];
    if (!(w.value == env_->get_by_id(w.var, w.index)))
      throw EvalError(
          "subbase '" + rb.name + "' modified state inside an expression",
          line);
  }
  if (pool_used_ > em)
    throw EvalError(
        "subbase '" + rb.name + "' emitted events inside an expression", line);
  if (!res.returned)
    throw EvalError("subbase '" + rb.name + "' did not RETURN a value", line);
  writes_.resize(wm);
  return *std::move(res.returned);
}

void Vm::run(int rb_index, const Value* args, std::size_t nargs,
             RunResult& res) {
  const RuleBase& rb = prog_->rule_bases[static_cast<std::size_t>(rb_index)];
  FR_REQUIRE_MSG(nargs == rb.params.size(),
                 "argument count mismatch firing '" + rb.name + "'");
  for (std::size_t i = 0; i < nargs; ++i)
    FR_REQUIRE_MSG(rb.params[i].domain.contains(args[i]),
                   "argument outside parameter domain in '" + rb.name + "'");
  ++total_fires_;

  const BcRuleBase& info = bc_->bases[static_cast<std::size_t>(rb_index)];
  const std::size_t base = frame_top_;
  frame_top_ = base + static_cast<std::size_t>(info.frame_size);
  if (regs_.size() < frame_top_) regs_.resize(frame_top_);
  for (std::size_t i = 0; i < nargs; ++i) regs_[base + i] = args[i];
  if (info.mask_reg >= 0)  // input latches start invalid each firing
    regs_[base + static_cast<std::size_t>(info.mask_reg)] =
        Value::make_int(0);
  const std::size_t write_base = writes_.size();

  const Instr* code = bc_->code.data();
  const Value* consts = bc_->consts.data();
  std::size_t pc = static_cast<std::size_t>(info.entry);
  // r(i): current-frame register; never hold the reference across CallSub
  // (the frame stack may reallocate).
  auto r = [&](std::int32_t i) -> Value& {
    return regs_[base + static_cast<std::size_t>(i)];
  };

  for (;;) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::LoadConst:
        r(in.a) = consts[in.b];
        break;
      case Op::Move:
        r(in.a) = r(in.b);
        break;
      case Op::LoadReg:
        r(in.a) = env_->get_by_id(in.b, in.c);
        break;
      case Op::LoadRegIdx: {
        const std::int64_t idx = want_int(r(in.c), in.line, "array index");
        r(in.a) = env_->get_by_id(in.b, idx);
        break;
      }
      case Op::CheckInIdx: {
        const InputDecl& decl = prog_->inputs[static_cast<std::size_t>(in.b)];
        if (!decl.index_domains[static_cast<std::size_t>(in.c)].contains(
                r(in.a)))
          throw EvalError(
              "index outside domain for input '" + decl.name + "'", in.line);
        break;
      }
      case Op::LoadInput: {
        const InputDecl& decl = prog_->inputs[static_cast<std::size_t>(in.b)];
        Value v;
        if (raw_inputs_ != nullptr) {
          v = raw_inputs_(raw_inputs_ctx_, in.b, &r(in.c),
                          static_cast<std::size_t>(in.aux));
        } else if (fast_inputs_) {
          v = fast_inputs_(in.b, &r(in.c), static_cast<std::size_t>(in.aux));
        } else if (inputs_) {
          const std::vector<Value> idx(
              regs_.begin() + static_cast<std::ptrdiff_t>(base + in.c),
              regs_.begin() + static_cast<std::ptrdiff_t>(base + in.c + in.aux));
          v = inputs_(decl.name, idx);
        } else {
          throw EvalError(
              "no input provider installed (input '" + decl.name + "')",
              in.line);
        }
        if (!decl.domain.contains(v))
          throw EvalError("host returned value outside domain of input '" +
                              decl.name + "'",
                          in.line);
        r(in.a) = std::move(v);
        break;
      }
      case Op::LoadInputMemo: {
        if (r(info.mask_reg).as_int() & (std::int64_t{1} << in.aux)) {
          r(in.a) = r(in.c);  // latched: replay the sampled signal
          break;
        }
        const InputDecl& decl = prog_->inputs[static_cast<std::size_t>(in.b)];
        Value v;
        if (raw_inputs_ != nullptr) {
          v = raw_inputs_(raw_inputs_ctx_, in.b, nullptr, 0);
        } else if (fast_inputs_) {
          v = fast_inputs_(in.b, nullptr, 0);
        } else if (inputs_) {
          v = inputs_(decl.name, {});
        } else {
          throw EvalError(
              "no input provider installed (input '" + decl.name + "')",
              in.line);
        }
        if (!decl.domain.contains(v))
          throw EvalError("host returned value outside domain of input '" +
                              decl.name + "'",
                          in.line);
        r(in.c) = v;
        r(in.a) = std::move(v);
        r(info.mask_reg) = Value::make_int(r(info.mask_reg).as_int() |
                                           (std::int64_t{1} << in.aux));
        break;
      }
      case Op::MemoCheck:
        if (r(info.mask_reg).as_int() & (std::int64_t{1} << in.aux)) {
          r(in.a) = r(in.c);  // latched: replay and skip the evaluation
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::MemoStore:
        r(in.c) = r(in.a);
        r(info.mask_reg) = Value::make_int(r(info.mask_reg).as_int() |
                                           (std::int64_t{1} << in.aux));
        break;
      case Op::MakeSet: {
        std::vector<Value> elems(
            regs_.begin() + static_cast<std::ptrdiff_t>(base + in.b),
            regs_.begin() + static_cast<std::ptrdiff_t>(base + in.b + in.c));
        r(in.a) = Value::make_set(SetValue(std::move(elems)));
        break;
      }
      case Op::Not:
        r(in.a) = Value::make_bool(!r(in.b).as_bool());
        break;
      case Op::Neg:
        r(in.a) = Value::make_int(
            -want_int(r(in.b), in.line, "negation operand"));
        break;
      case Op::ToBool:
        r(in.a) = Value::make_bool(r(in.a).as_bool());
        break;
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Mod: {
        const auto x = want_int(r(in.b), in.line, "arithmetic operand");
        const auto y = want_int(r(in.c), in.line, "arithmetic operand");
        std::int64_t v = 0;
        switch (in.op) {
          case Op::Add: v = x + y; break;
          case Op::Sub: v = x - y; break;
          case Op::Mul: v = x * y; break;
          case Op::Div:
            if (y == 0) throw EvalError("division by zero", in.line);
            v = x / y;
            break;
          case Op::Mod:
            if (y == 0) throw EvalError("modulo by zero", in.line);
            v = ((x % y) + y) % y;
            break;
          default: FR_UNREACHABLE("arith");
        }
        r(in.a) = Value::make_int(v);
        break;
      }
      case Op::CmpEq:
        r(in.a) = Value::make_bool(r(in.b) == r(in.c));
        break;
      case Op::CmpNe:
        r(in.a) = Value::make_bool(!(r(in.b) == r(in.c)));
        break;
      case Op::CmpEqConst:
        r(in.a) = Value::make_bool(r(in.b) == consts[in.c]);
        break;
      case Op::CmpNeConst:
        r(in.a) = Value::make_bool(!(r(in.b) == consts[in.c]));
        break;
      case Op::CmpLt:
      case Op::CmpLe:
      case Op::CmpGt:
      case Op::CmpGe: {
        const Value& a = r(in.b);
        const Value& b = r(in.c);
        std::int64_t x, y;
        if (a.is_sym() && b.is_sym()) {
          x = a.as_sym();
          y = b.as_sym();
        } else {
          x = want_int(a, in.line, "comparison operand");
          y = want_int(b, in.line, "comparison operand");
        }
        bool v = false;
        switch (in.op) {
          case Op::CmpLt: v = x < y; break;
          case Op::CmpLe: v = x <= y; break;
          case Op::CmpGt: v = x > y; break;
          case Op::CmpGe: v = x >= y; break;
          default: FR_UNREACHABLE("cmp");
        }
        r(in.a) = Value::make_bool(v);
        break;
      }
      case Op::TestIn:
        r(in.a) = Value::make_bool(
            want_set(r(in.c), in.line, "IN right-hand side").contains(r(in.b)));
        break;
      case Op::TestInConst:
        r(in.a) = Value::make_bool(
            want_set(consts[in.c], in.line, "IN right-hand side")
                .contains(r(in.b)));
        break;
      case Op::Union:
        r(in.a) = Value::make_set(
            want_set(r(in.b), in.line, "UNION operand")
                .set_union(want_set(r(in.c), in.line, "UNION operand")));
        break;
      case Op::Intersect:
        r(in.a) = Value::make_set(
            want_set(r(in.b), in.line, "INTERSECT operand")
                .set_intersect(
                    want_set(r(in.c), in.line, "INTERSECT operand")));
        break;
      case Op::SetMinus:
        r(in.a) = Value::make_set(
            want_set(r(in.b), in.line, "SETMINUS operand")
                .set_minus(want_set(r(in.c), in.line, "SETMINUS operand")));
        break;
      case Op::Abs: {
        const auto v = want_int(r(in.b), in.line, "abs argument");
        r(in.a) = Value::make_int(v < 0 ? -v : v);
        break;
      }
      case Op::Signum: {
        const auto v = want_int(r(in.b), in.line, "signum argument");
        r(in.a) = Value::make_int(v < 0 ? -1 : (v > 0 ? 1 : 0));
        break;
      }
      case Op::Card:
        r(in.a) = Value::make_int(static_cast<std::int64_t>(
            want_set(r(in.b), in.line, "card argument").size()));
        break;
      case Op::Popcount: {
        const auto x = want_int(r(in.b), in.line, "popcount argument");
        if (x < 0) throw EvalError("popcount of negative value", in.line);
        r(in.a) = Value::make_int(
            std::popcount(static_cast<std::uint64_t>(x)));
        break;
      }
      case Op::Min2:
      case Op::Max2: {
        const auto x = want_int(r(in.b), in.line, "min/max argument");
        const auto y = want_int(r(in.c), in.line, "min/max argument");
        r(in.a) = Value::make_int(in.op == Op::Min2 ? std::min(x, y)
                                                    : std::max(x, y));
        break;
      }
      case Op::Xor:
        r(in.a) = Value::make_int(
            want_int(r(in.b), in.line, "xor argument") ^
            want_int(r(in.c), in.line, "xor argument"));
        break;
      case Op::BitAnd:
        r(in.a) = Value::make_int(
            want_int(r(in.b), in.line, "bitand argument") &
            want_int(r(in.c), in.line, "bitand argument"));
        break;
      case Op::Bit: {
        const auto x = want_int(r(in.b), in.line, "bit argument");
        const auto i = want_int(r(in.c), in.line, "bit index");
        if (i < 0 || i > 62)
          throw EvalError("bit index out of range", in.line);
        r(in.a) = Value::make_int((x >> i) & 1);
        break;
      }
      case Op::BitConst:
        r(in.a) = Value::make_int(
            (want_int(r(in.b), in.line, "bit argument") >> in.c) & 1);
        break;
      case Op::Meshdist: {
        const auto x1 = want_int(r(in.b), in.line, "meshdist argument");
        const auto y1 = want_int(r(in.b + 1), in.line, "meshdist argument");
        const auto x2 = want_int(r(in.b + 2), in.line, "meshdist argument");
        const auto y2 = want_int(r(in.b + 3), in.line, "meshdist argument");
        r(in.a) = Value::make_int(std::abs(x1 - x2) + std::abs(y1 - y2));
        break;
      }
      case Op::Jump:
        pc = static_cast<std::size_t>(in.a);
        continue;
      case Op::JumpIfFalse:
        if (!r(in.a).as_bool()) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::JumpIfTrue:
        if (r(in.a).as_bool()) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::JumpUnlessPremise: {
        const Value& p = r(in.a);
        if (!p.is_int())
          throw EvalError("premise is not boolean", in.line);
        if (p.as_int() == 0) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      }
      case Op::JumpUnlessEq:
        if (!(r(in.a) == r(in.c))) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::JumpUnlessNe:
        if (r(in.a) == r(in.c)) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::JumpUnlessLt:
      case Op::JumpUnlessLe:
      case Op::JumpUnlessGt:
      case Op::JumpUnlessGe: {
        const Value& a = r(in.a);
        const Value& b = r(in.c);
        std::int64_t x, y;
        if (a.is_sym() && b.is_sym()) {
          x = a.as_sym();
          y = b.as_sym();
        } else {
          x = want_int(a, in.line, "comparison operand");
          y = want_int(b, in.line, "comparison operand");
        }
        bool v = false;
        switch (in.op) {
          case Op::JumpUnlessLt: v = x < y; break;
          case Op::JumpUnlessLe: v = x <= y; break;
          case Op::JumpUnlessGt: v = x > y; break;
          case Op::JumpUnlessGe: v = x >= y; break;
          default: FR_UNREACHABLE("cmp-branch");
        }
        if (!v) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      }
      case Op::JumpUnlessEqConst:
        if (!(r(in.a) == consts[in.c])) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::JumpUnlessNeConst:
        if (r(in.a) == consts[in.c]) {
          pc = static_cast<std::size_t>(in.b);
          continue;
        }
        break;
      case Op::DomLen: {
        const Value& d = r(in.b);
        std::int64_t len;
        if (d.is_int()) {
          len = d.as_int();
          if (len < 0 || len > 4096)
            throw EvalError("quantifier range out of bounds", in.line);
        } else if (d.is_set()) {
          len = static_cast<std::int64_t>(d.as_set().size());
        } else {
          throw EvalError("quantifier domain must be a set or integer",
                          in.line);
        }
        r(in.a) = Value::make_int(len);
        break;
      }
      case Op::DomGet: {
        const Value& d = r(in.b);
        const std::int64_t i = r(in.c).as_int();
        Value v = d.is_int()
                      ? Value::make_int(i)
                      : d.as_set().elements()[static_cast<std::size_t>(i)];
        r(in.a) = std::move(v);
        break;
      }
      case Op::CallSub: {
        const std::vector<Value> argv(
            regs_.begin() + static_cast<std::ptrdiff_t>(base + in.c),
            regs_.begin() + static_cast<std::ptrdiff_t>(base + in.c + in.aux));
        Value v = call_sub(in.b, argv, in.line);
        r(in.a) = std::move(v);
        break;
      }
      case Op::BeginRule:
        res.rule_index = in.a;
        res.fired_line = in.line;
        break;
      case Op::CheckIdxInt:
        if (!r(in.a).is_int())
          throw EvalError("array index must be an integer", in.line);
        break;
      case Op::Store: {
        const std::int64_t idx = in.c < 0 ? 0 : r(in.c).as_int();
        const Value& v = r(in.a);
        for (std::size_t i = write_base; i < writes_.size(); ++i) {
          const Pending& w = writes_[i];
          if (w.var == in.b && w.index == idx && !(w.value == v))
            throw EvalError(
                "conflicting parallel writes to '" +
                    prog_->variables[static_cast<std::size_t>(in.b)].name +
                    "'",
                in.line);
        }
        writes_.push_back({in.b, idx, v});
        break;
      }
      case Op::Return: {
        Value v = r(in.a);
        if (res.returned && !(*res.returned == v))
          throw EvalError("conflicting RETURN values in one conclusion",
                          in.line);
        res.returned = std::move(v);
        break;
      }
      case Op::Emit: {
        const BcEvent& be = bc_->events[static_cast<std::size_t>(in.b)];
        if (sink_ != nullptr && base == 0) {
          // Top-level emission on the decision path: hand the argument
          // window to the sink in place, no EmittedEvent materialized.
          // Nested frames fall through to the pool so call_sub still sees
          // expression-context emissions.
          sink_(sink_ctx_, in.b, be.target_rb,
                in.c == 0 ? nullptr : &r(in.a),
                static_cast<std::size_t>(in.c));
          break;
        }
        if (pool_used_ == pool_.size()) pool_.emplace_back();
        EmittedEvent& ev = pool_[pool_used_++];  // recycled slot
        ev.name = be.name;
        ev.name_id = in.b;
        ev.target_rb = be.target_rb;
        ev.args.assign(
            regs_.begin() + static_cast<std::ptrdiff_t>(base + in.a),
            regs_.begin() + static_cast<std::ptrdiff_t>(base + in.a + in.c));
        break;
      }
      case Op::EmitConst: {
        const BcEvent& be = bc_->events[static_cast<std::size_t>(in.b)];
        if (sink_ != nullptr && base == 0) {
          sink_(sink_ctx_, in.b, be.target_rb, consts + in.a,
                static_cast<std::size_t>(in.c));
          break;
        }
        if (pool_used_ == pool_.size()) pool_.emplace_back();
        EmittedEvent& ev = pool_[pool_used_++];
        ev.name = be.name;
        ev.name_id = in.b;
        ev.target_rb = be.target_rb;
        ev.args.assign(consts + in.a, consts + in.a + in.c);
        break;
      }
      case Op::Trap:
        throw EvalError(bc_->traps[static_cast<std::size_t>(in.a)], in.line);
      case Op::Halt:
        frame_top_ = base;
        return;
    }
    ++pc;
  }
}

}  // namespace flexrouter::rules
