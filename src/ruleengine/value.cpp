#include "ruleengine/value.hpp"

#include <algorithm>
#include <sstream>

#include "common/bitops.hpp"

namespace flexrouter::rules {

SymId SymTable::intern(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<SymId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

SymId SymTable::lookup(const std::string& name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? SymId{-1} : it->second;
}

const std::string& SymTable::name(SymId id) const {
  FR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size());
  return names_[static_cast<std::size_t>(id)];
}

SetValue::SetValue(std::vector<Value> elems) : elems_(std::move(elems)) {
  std::sort(elems_.begin(), elems_.end());
  elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
}

bool SetValue::contains(const Value& v) const {
  return std::binary_search(elems_.begin(), elems_.end(), v);
}

void SetValue::insert(const Value& v) {
  const auto it = std::lower_bound(elems_.begin(), elems_.end(), v);
  if (it == elems_.end() || !(*it == v)) elems_.insert(it, v);
}

SetValue SetValue::set_union(const SetValue& o) const {
  std::vector<Value> out;
  std::set_union(elems_.begin(), elems_.end(), o.elems_.begin(),
                 o.elems_.end(), std::back_inserter(out));
  SetValue s;
  s.elems_ = std::move(out);
  return s;
}

SetValue SetValue::set_intersect(const SetValue& o) const {
  std::vector<Value> out;
  std::set_intersection(elems_.begin(), elems_.end(), o.elems_.begin(),
                        o.elems_.end(), std::back_inserter(out));
  SetValue s;
  s.elems_ = std::move(out);
  return s;
}

SetValue SetValue::set_minus(const SetValue& o) const {
  std::vector<Value> out;
  std::set_difference(elems_.begin(), elems_.end(), o.elems_.begin(),
                      o.elems_.end(), std::back_inserter(out));
  SetValue s;
  s.elems_ = std::move(out);
  return s;
}

bool operator==(const SetValue& a, const SetValue& b) {
  return a.elems_ == b.elems_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index())
    return a.data_.index() < b.data_.index();
  if (a.is_int()) return a.as_int() < b.as_int();
  if (a.is_sym()) return a.as_sym() < b.as_sym();
  return a.as_set().elements() < b.as_set().elements();
}

bool operator==(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) return false;
  if (a.is_int()) return a.as_int() == b.as_int();
  if (a.is_sym()) return a.as_sym() == b.as_sym();
  return a.as_set() == b.as_set();
}

std::string Value::to_string(const SymTable& syms) const {
  if (is_int()) return std::to_string(as_int());
  if (is_sym()) return syms.name(as_sym());
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Value& e : as_set().elements()) {
    if (!first) os << ",";
    first = false;
    os << e.to_string(syms);
  }
  os << "}";
  return os.str();
}

Domain Domain::int_range(std::int64_t lo, std::int64_t hi) {
  FR_REQUIRE_MSG(lo <= hi, "empty integer range domain");
  Domain d;
  d.kind_ = Kind::IntRange;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

Domain Domain::symbols(std::vector<SymId> syms) {
  FR_REQUIRE_MSG(!syms.empty(), "empty symbol domain");
  Domain d;
  d.kind_ = Kind::Symbols;
  d.syms_ = std::move(syms);
  return d;
}

Domain Domain::set_of(Domain element) {
  FR_REQUIRE_MSG(element.kind() != Kind::SetOf,
                 "nested set domains are not supported");
  Domain d;
  d.kind_ = Kind::SetOf;
  d.elem_.push_back(std::move(element));
  return d;
}

const Domain& Domain::element() const {
  FR_REQUIRE(kind_ == Kind::SetOf);
  return elem_.front();
}

std::uint64_t Domain::cardinality() const {
  switch (kind_) {
    case Kind::IntRange:
      return static_cast<std::uint64_t>(hi_ - lo_) + 1;
    case Kind::Symbols:
      return syms_.size();
    case Kind::SetOf: {
      const auto n = element().cardinality();
      FR_REQUIRE_MSG(n < 63, "set domain universe too large");
      return std::uint64_t{1} << n;
    }
    case Kind::Boolean:
      return 2;
  }
  FR_UNREACHABLE("bad domain kind");
}

int Domain::bits() const { return bits_for(cardinality()); }

bool Domain::contains(const Value& v) const {
  switch (kind_) {
    case Kind::IntRange:
    case Kind::Boolean:
      return v.is_int() && v.as_int() >= lo_ && v.as_int() <= hi_;
    case Kind::Symbols:
      if (!v.is_sym()) return false;
      return std::find(syms_.begin(), syms_.end(), v.as_sym()) != syms_.end();
    case Kind::SetOf:
      if (!v.is_set()) return false;
      for (const Value& e : v.as_set().elements())
        if (!element().contains(e)) return false;
      return true;
  }
  return false;
}

std::vector<Value> Domain::enumerate() const {
  std::vector<Value> out;
  switch (kind_) {
    case Kind::IntRange:
    case Kind::Boolean:
      out.reserve(cardinality());
      for (std::int64_t v = lo_; v <= hi_; ++v) out.push_back(Value::make_int(v));
      return out;
    case Kind::Symbols:
      out.reserve(syms_.size());
      for (const SymId s : syms_) out.push_back(Value::make_sym(s));
      return out;
    case Kind::SetOf: {
      const auto univ = element().enumerate();
      FR_REQUIRE_MSG(univ.size() <= 16, "set domain too large to enumerate");
      const auto total = std::uint64_t{1} << univ.size();
      out.reserve(total);
      for (std::uint64_t mask = 0; mask < total; ++mask) {
        std::vector<Value> elems;
        for (std::size_t i = 0; i < univ.size(); ++i)
          if (mask & (std::uint64_t{1} << i)) elems.push_back(univ[i]);
        out.push_back(Value::make_set(SetValue(std::move(elems))));
      }
      return out;
    }
  }
  FR_UNREACHABLE("bad domain kind");
}

std::vector<Value> Domain::sample_values(std::uint64_t full_enum_cap) const {
  if (cardinality() <= full_enum_cap) return enumerate();
  std::vector<Value> out;
  switch (kind_) {
    case Kind::IntRange:
    case Kind::Boolean:
      for (const std::int64_t v :
           {lo_, lo_ + 1, lo_ + (hi_ - lo_) / 2, hi_ - 1, hi_})
        out.push_back(Value::make_int(v));
      break;
    case Kind::Symbols:
      // Symbol domains are small by construction; keep the head and tail of
      // the lattice order when capped.
      for (std::size_t i = 0; i < syms_.size(); ++i)
        if (i == 0 || i + 1 == syms_.size() ||
            i < static_cast<std::size_t>(full_enum_cap))
          out.push_back(Value::make_sym(syms_[i]));
      break;
    case Kind::SetOf: {
      out.push_back(Value::make_set(SetValue{}));
      std::vector<Value> univ = element().sample_values(full_enum_cap);
      for (const Value& e : univ)
        out.push_back(Value::make_set(SetValue({e})));
      out.push_back(Value::make_set(SetValue(std::move(univ))));
      break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  FR_ASSERT(!out.empty());
  return out;
}

std::uint64_t Domain::index_of(const Value& v) const {
  FR_REQUIRE_MSG(contains(v), "value outside domain");
  switch (kind_) {
    case Kind::IntRange:
    case Kind::Boolean:
      return static_cast<std::uint64_t>(v.as_int() - lo_);
    case Kind::Symbols: {
      const auto it = std::find(syms_.begin(), syms_.end(), v.as_sym());
      return static_cast<std::uint64_t>(it - syms_.begin());
    }
    case Kind::SetOf: {
      std::uint64_t mask = 0;
      for (const Value& e : v.as_set().elements())
        mask |= std::uint64_t{1} << element().index_of(e);
      return mask;
    }
  }
  FR_UNREACHABLE("bad domain kind");
}

Value Domain::value_at(std::uint64_t index) const {
  FR_REQUIRE(index < cardinality());
  switch (kind_) {
    case Kind::IntRange:
    case Kind::Boolean:
      return Value::make_int(lo_ + static_cast<std::int64_t>(index));
    case Kind::Symbols:
      return Value::make_sym(syms_[static_cast<std::size_t>(index)]);
    case Kind::SetOf: {
      std::vector<Value> elems;
      const auto n = element().cardinality();
      for (std::uint64_t i = 0; i < n; ++i)
        if (index & (std::uint64_t{1} << i))
          elems.push_back(element().value_at(i));
      return Value::make_set(SetValue(std::move(elems)));
    }
  }
  FR_UNREACHABLE("bad domain kind");
}

int Domain::sym_rank(SymId s) const {
  FR_REQUIRE(kind_ == Kind::Symbols);
  const auto it = std::find(syms_.begin(), syms_.end(), s);
  FR_REQUIRE_MSG(it != syms_.end(), "symbol not in domain");
  return static_cast<int>(it - syms_.begin());
}

std::string Domain::to_string(const SymTable& syms) const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::IntRange:
    case Kind::Boolean:
      os << lo_ << " TO " << hi_;
      return os.str();
    case Kind::Symbols:
      os << "{";
      for (std::size_t i = 0; i < syms_.size(); ++i) {
        if (i) os << ",";
        os << syms.name(syms_[i]);
      }
      os << "}";
      return os.str();
    case Kind::SetOf:
      os << "SET OF " << element().to_string(syms);
      return os.str();
  }
  return "?";
}

}  // namespace flexrouter::rules
