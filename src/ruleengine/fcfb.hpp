// Free Configurable Function Blocks (FCFBs).
//
// In the paper's rule interpreter (Figures 5–7), premise predicates and
// conclusion calculations run on a shared pool of configurable hardware
// units. This module defines the FCFB catalog with a relative area/delay
// cost model, and infers from a rule base's AST which FCFBs its
// configuration needs — that inference regenerates the "FCFBs" columns of
// Tables 1 and 2.
//
// Costs are in normalised units (a 2-input logical unit = 1 area, 1 delay);
// absolute transistor counts were never published, only which blocks each
// rule base needs, so relative units preserve the paper's comparisons.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

enum class FcfbKind {
  LogicalUnit,         // AND/OR/NOT network over wide operands
  ZeroCheck,           // x = 0
  CompareConst,        // x <op> constant
  MagnitudeComparator, // x <op> y, both variable
  EqualityCheck,       // x = y on symbols
  MembershipTest,      // x IN S
  SetUnion,            // S UNION T
  SetIntersect,        // S INTERSECT T
  SetDifference,       // S SETMINUS T
  MinimumSelection,    // argmin / min over a candidate set
  MaximumSelection,
  Incrementer,         // x + 1
  Decrementer,         // x - 1
  ConditionalIncrement,// rule-controlled counter update
  Adder,               // general x + y
  Subtractor,          // general x - y
  Multiplier,
  MeshDistance,        // |x1-x2| + |y1-y2|
  FiniteLattice,       // computation in a finite lattice of states
  PriorityDetect,      // leading-one / first-applicable detection
  InputNegate,
  BitExtract,          // bit(x, i)
  XorUnit,             // xor / bitand
  Popcount,
};

struct FcfbCost {
  double area = 1.0;   // relative area units
  double delay = 1.0;  // relative combinational delay units
};

const char* to_string(FcfbKind kind);
FcfbCost cost_of(FcfbKind kind);

/// A rule base's inferred FCFB requirement: kind -> instance count.
class FcfbInventory {
 public:
  void add(FcfbKind kind, int count = 1);
  void merge(const FcfbInventory& other);

  int count(FcfbKind kind) const;
  int total_instances() const;
  double total_area() const;
  /// Worst-case single-stage delay (the pipeline model charges 2 FCFB
  /// stages: premise processing and conclusion processing).
  double max_delay() const;

  const std::map<FcfbKind, int>& entries() const { return counts_; }
  bool empty() const { return counts_.empty(); }
  std::string to_string() const;

 private:
  std::map<FcfbKind, int> counts_;
};

/// Infer the FCFBs a rule base configuration needs. `premises_only`
/// restricts the scan to premise expressions (used by the compiler to cost
/// the premise-processing stage separately from conclusion processing).
FcfbInventory infer_fcfbs(const Program& prog, const RuleBase& rb);
FcfbInventory infer_premise_fcfbs(const Program& prog, const RuleBase& rb);
FcfbInventory infer_conclusion_fcfbs(const Program& prog, const RuleBase& rb);

/// FCFBs needed to evaluate a specific set of premise expressions — used by
/// the compiler, which charges FCFBs only for atom axes (direct-indexed
/// signals need no comparison hardware, paper Figure 7).
FcfbInventory infer_expr_fcfbs(const Program& prog,
                               const std::vector<ExprPtr>& exprs);

}  // namespace flexrouter::rules
