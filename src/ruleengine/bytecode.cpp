#include "ruleengine/bytecode.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <set>

#include "ruleengine/interp.hpp"

namespace flexrouter::rules {

namespace {

/// Same catalogue as Interpreter::is_builtin (kept sorted for reading; the
/// compiler resolves names once, so lookup speed is irrelevant here).
bool is_builtin_name(const std::string& name) {
  static const char* names[] = {"abs",      "bit",    "bitand", "card",
                                "max",      "meshdist", "min",  "popcount",
                                "signum",   "xor"};
  return std::binary_search(
      std::begin(names), std::end(names), name.c_str(),
      [](const char* a, const char* b) { return std::strcmp(a, b) < 0; });
}

/// Compile-time shape of an expression subtree: whether it mentions a name
/// currently bound in the compiler scope (parameter / quantifier variable),
/// and its static nesting height (the interpreter's eval depth).
struct ExprShape {
  bool scoped = false;
  int height = 0;
};

class Compiler {
 public:
  Compiler(const Program& prog, BytecodeProgram& out)
      : prog_(prog), out_(out), folder_(prog) {}

  void run() {
    out_.bases.resize(prog_.rule_bases.size());
    for (std::size_t i = 0; i < prog_.rule_bases.size(); ++i)
      compile_base(static_cast<int>(i));
  }

 private:
  // ------------------------------------------------------------- utilities
  int emit(Op op, std::int32_t a = 0, std::int32_t b = 0, std::int32_t c = 0,
           std::int32_t aux = 0, std::int32_t line = 0) {
    out_.code.push_back({op, a, b, c, aux, line});
    return static_cast<int>(out_.code.size()) - 1;
  }

  int here() const { return static_cast<int>(out_.code.size()); }

  /// Backpatch the jump target of the instruction at `pc`.
  void patch(int pc, int target) {
    Instr& in = out_.code[static_cast<std::size_t>(pc)];
    if (in.op == Op::Jump)
      in.a = target;
    else
      in.b = target;  // conditional jumps carry the target in b
  }

  std::int32_t add_const(const Value& v) {
    for (std::size_t i = 0; i < out_.consts.size(); ++i)
      if (out_.consts[i] == v) return static_cast<std::int32_t>(i);
    out_.consts.push_back(v);
    return static_cast<std::int32_t>(out_.consts.size()) - 1;
  }

  /// Contiguous run in the constant pool (EmitConst argument windows);
  /// reuses an existing run when one matches.
  std::int32_t add_const_block(const std::vector<Value>& vs) {
    for (std::size_t i = 0; i + vs.size() <= out_.consts.size(); ++i) {
      bool same = true;
      for (std::size_t j = 0; j < vs.size(); ++j)
        if (!(out_.consts[i + j] == vs[j])) {
          same = false;
          break;
        }
      if (same) return static_cast<std::int32_t>(i);
    }
    const auto start = static_cast<std::int32_t>(out_.consts.size());
    out_.consts.insert(out_.consts.end(), vs.begin(), vs.end());
    return start;
  }

  /// Defer a runtime error the interpreter would raise at this point.
  void trap(const std::string& msg, int line) {
    out_.traps.push_back(msg);
    emit(Op::Trap, static_cast<std::int32_t>(out_.traps.size()) - 1, 0, 0, 0,
         line);
  }

  std::int32_t intern_event(const std::string& name) {
    for (std::size_t i = 0; i < out_.events.size(); ++i)
      if (out_.events[i].name == name) return static_cast<std::int32_t>(i);
    BcEvent ev;
    ev.name = name;
    const RuleBase* rb = prog_.find_rule_base(name);
    ev.target_rb =
        rb ? static_cast<std::int32_t>(rb - prog_.rule_bases.data()) : -1;
    out_.events.push_back(std::move(ev));
    return static_cast<std::int32_t>(out_.events.size()) - 1;
  }

  void touch(int reg) { frame_high_ = std::max(frame_high_, reg + 1); }

  int scope_lookup(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it)
      if (it->first == name) return it->second;
    return -1;
  }

  ExprShape inspect(const Expr& e) const {
    ExprShape s;
    s.height = 1;
    auto merge = [&](const ExprPtr& child) {
      if (child == nullptr) return;
      const ExprShape c = inspect(*child);
      s.scoped = s.scoped || c.scoped;
      s.height = std::max(s.height, c.height + 1);
    };
    switch (e.kind) {
      case Expr::Kind::IntLit:
      case Expr::Kind::SymLit:
        break;
      case Expr::Kind::SetLit:
        for (const ExprPtr& a : e.args) merge(a);
        break;
      case Expr::Kind::Ref:
        if (e.args.empty() && scope_lookup(e.name) >= 0) s.scoped = true;
        for (const ExprPtr& a : e.args) merge(a);
        break;
      case Expr::Kind::Unary:
        merge(e.lhs);
        break;
      case Expr::Kind::Binary:
        merge(e.lhs);
        merge(e.rhs);
        break;
      case Expr::Kind::Quantified:
        merge(e.lhs);
        merge(e.rhs);
        break;
    }
    return s;
  }

  /// Constant-fold `e` when that provably matches runtime evaluation: the
  /// subtree must not mention scope-bound names (those outrank globals) and
  /// must stay within the interpreter's depth budget (deeper trees raise
  /// "evaluation too deep" at runtime, which folding would hide).
  std::optional<Value> try_fold(const ExprPtr& e, int depth) {
    const ExprShape s = inspect(*e);
    if (s.scoped) return std::nullopt;
    if (depth + s.height - 1 > 256) return std::nullopt;
    return folder_.try_const_eval(e);
  }

  // ---------------------------------------------- fire-invariant latching
  /// Everything an expression can read is stable within one firing: inputs
  /// are the paper's sampled signal pins, register writes commit in
  /// parallel after the firing. A subexpression whose leaves are inputs,
  /// registers and constants (no quantifier/parameter bindings, no subbase
  /// calls — those have observable side conditions) therefore evaluates to
  /// the same value at every occurrence of one firing, and is latched in a
  /// frame memo slot guarded by a valid bit. Premise chains re-testing the
  /// same conjuncts then degenerate to single-op replays — the software
  /// image of the RBR kernel's parallel premise evaluation.
  struct MemoEntry {
    std::int32_t bit = 0;  // valid bit in the base's mask register
    std::int32_t reg = 0;  // latched value slot
  };
  struct FpInfo {
    bool input_read = false;  // bare input read (provider call saved)
  };

  /// Structural fingerprint of `e` under the current scope; returns false
  /// when `e` is not fire-invariant. Names are encoded by resolved id, so
  /// equal fingerprints denote equal values regardless of shadowing.
  bool fingerprint(const Expr& e, std::string& out) const {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        out += 'i';
        out += std::to_string(e.int_val);
        return true;
      case Expr::Kind::SymLit:
        out += 's';
        out += std::to_string(e.sym);
        return true;
      case Expr::Kind::SetLit:
        out += "S(";
        for (const ExprPtr& a : e.args)
          if (!fingerprint(*a, out)) return false;
        out += ')';
        return true;
      case Expr::Kind::Ref: {
        if (e.args.empty() && scope_lookup(e.name) >= 0) return false;
        if (const VarDecl* d = prog_.find_variable(e.name)) {
          out += 'v';
          out += std::to_string(d - prog_.variables.data());
          out += '(';
          for (const ExprPtr& a : e.args)
            if (!fingerprint(*a, out)) return false;
          out += ')';
          return true;
        }
        if (const InputDecl* in = prog_.find_input(e.name)) {
          out += 'n';
          out += std::to_string(in - prog_.inputs.data());
          out += '(';
          for (const ExprPtr& a : e.args)
            if (!fingerprint(*a, out)) return false;
          out += ')';
          return true;
        }
        if (e.args.empty() && prog_.constants.count(e.name)) {
          out += 'c';
          out += e.name;
          out += ';';
          return true;
        }
        if (is_builtin_name(e.name)) {
          out += 'b';
          out += e.name;
          out += '(';
          for (const ExprPtr& a : e.args)
            if (!fingerprint(*a, out)) return false;
          out += ')';
          return true;
        }
        return false;  // subbase call or unknown name
      }
      case Expr::Kind::Unary:
        out += 'u';
        out += std::to_string(static_cast<int>(e.un_op));
        return fingerprint(*e.lhs, out);
      case Expr::Kind::Binary:
        out += 'o';
        out += std::to_string(static_cast<int>(e.bin_op));
        return fingerprint(*e.lhs, out) && fingerprint(*e.rhs, out);
      case Expr::Kind::Quantified:
        return false;  // per-iteration binding: not fire-invariant
    }
    return false;
  }

  /// Pre-scan: count fire-invariant subexpression occurrences under the
  /// live compiler scope. Over-approximation is safe — compile_expr latches
  /// only fingerprints that were assigned a slot.
  void scan_expr(const ExprPtr& e) {
    if (e == nullptr) return;
    // Folded subtrees compile to one constant: nothing inside ever runs.
    if (try_fold(e, 2)) return;
    if (e->kind == Expr::Kind::Quantified) {
      scan_expr(e->lhs);
      scope_.emplace_back(e->name, 0);
      scan_expr(e->rhs);
      scope_.pop_back();
      return;
    }
    std::string f;
    if (fingerprint(*e, f)) {
      FpInfo& info = fp_counts_[std::move(f)];
      if (e->kind == Expr::Kind::Ref &&
          prog_.find_variable(e->name) == nullptr &&
          prog_.find_input(e->name) != nullptr &&
          !(e->args.empty() && scope_lookup(e->name) >= 0))
        info.input_read = true;
    }
    for (const ExprPtr& a : e->args) scan_expr(a);
    scan_expr(e->lhs);
    scan_expr(e->rhs);
  }

  void scan_cmds(const std::vector<Cmd>& cmds) {
    for (const Cmd& c : cmds) {
      for (const ExprPtr& a : c.args) scan_expr(a);
      scan_expr(c.value);
      if (c.kind == Cmd::Kind::ForAll) {
        scan_expr(c.domain);
        scope_.emplace_back(c.bound, 0);
        scan_cmds(c.body);
        scope_.pop_back();
      }
    }
  }

  // ----------------------------------------------------------- expressions
  /// Emit code leaving the value of `e` in frame register `dst`; registers
  /// above `dst` are scratch. `depth` is the interpreter's eval depth of
  /// this node (1-based), tracked to replicate the depth limit.
  void compile_expr(const ExprPtr& e, int dst, int depth) {
    FR_REQUIRE(e != nullptr);
    touch(dst);
    if (depth > 256) {
      trap("evaluation too deep", e->line);
      return;
    }
    if (auto v = try_fold(e, depth)) {
      emit(Op::LoadConst, dst, add_const(*v));
      return;
    }
    // Fire-invariant subexpression with a latch slot: replay when valid,
    // else evaluate once and latch. The body keeps its own error/laziness
    // behaviour — a throwing first evaluation never stores.
    if (!expr_memo_.empty()) {
      std::string f;
      if (fingerprint(*e, f)) {
        const auto it = expr_memo_.find(f);
        if (it != expr_memo_.end()) {
          const MemoEntry& m = it->second;
          // A bare input read latches in one fused instruction — the
          // dominant case (node, dest, in_port, ...).
          if (e->kind == Expr::Kind::Ref && e->args.empty() &&
              scope_lookup(e->name) < 0 &&
              prog_.find_variable(e->name) == nullptr) {
            if (const InputDecl* in = prog_.find_input(e->name)) {
              if (in->index_domains.empty()) {
                emit(Op::LoadInputMemo, dst,
                     static_cast<std::int32_t>(in - prog_.inputs.data()),
                     m.reg, m.bit, e->line);
                return;
              }
            }
          }
          const int j_hit = emit(Op::MemoCheck, dst, -1, m.reg, m.bit,
                                 e->line);
          compile_expr_raw(e, dst, depth);
          emit(Op::MemoStore, dst, 0, m.reg, m.bit, e->line);
          patch(j_hit, here());
          return;
        }
      }
    }
    compile_expr_raw(e, dst, depth);
  }

  void compile_expr_raw(const ExprPtr& e, int dst, int depth) {
    switch (e->kind) {
      case Expr::Kind::IntLit:
        emit(Op::LoadConst, dst, add_const(Value::make_int(e->int_val)));
        return;
      case Expr::Kind::SymLit:
        emit(Op::LoadConst, dst, add_const(Value::make_sym(e->sym)));
        return;
      case Expr::Kind::SetLit: {
        const int n = static_cast<int>(e->args.size());
        for (int i = 0; i < n; ++i)
          compile_expr(e->args[static_cast<std::size_t>(i)], dst + i,
                       depth + 1);
        emit(Op::MakeSet, dst, dst, n, 0, e->line);
        return;
      }
      case Expr::Kind::Ref:
        compile_ref(*e, dst, depth);
        return;
      case Expr::Kind::Unary:
        compile_expr(e->lhs, dst, depth + 1);
        emit(e->un_op == UnOp::Not ? Op::Not : Op::Neg, dst, dst, 0, 0,
             e->line);
        return;
      case Expr::Kind::Binary:
        compile_binary(*e, dst, depth);
        return;
      case Expr::Kind::Quantified:
        compile_quantified(*e, dst, depth);
        return;
    }
    FR_UNREACHABLE("bad expr kind");
  }

  void compile_ref(const Expr& e, int dst, int depth) {
    // Resolution order mirrors Interpreter::eval_ref.
    // 1. Bound names (parameters, quantifier variables), innermost first.
    if (e.args.empty()) {
      const int reg = scope_lookup(e.name);
      if (reg >= 0) {
        emit(Op::Move, dst, reg);
        return;
      }
    }
    // 2. Program variables (registers).
    if (const VarDecl* decl = prog_.find_variable(e.name)) {
      const auto var_id =
          static_cast<std::int32_t>(decl - prog_.variables.data());
      if (decl->is_array()) {
        if (e.args.size() != 1) {
          trap("array '" + e.name + "' needs exactly one index", e.line);
          return;
        }
        if (auto idx = try_fold(e.args[0], depth + 1)) {
          if (idx->is_int() && idx->as_int() >= 0 &&
              idx->as_int() < decl->array_size) {
            emit(Op::LoadReg, dst, var_id,
                 static_cast<std::int32_t>(idx->as_int()), 0, e.line);
            return;
          }
          // Out-of-range or non-int constant index: take the runtime path
          // so the error (and its kind) matches the interpreter.
        }
        compile_expr(e.args[0], dst, depth + 1);
        emit(Op::LoadRegIdx, dst, var_id, dst, 0, e.line);
        return;
      }
      if (!e.args.empty()) {
        trap("scalar variable '" + e.name + "' is not indexed", e.line);
        return;
      }
      emit(Op::LoadReg, dst, var_id, 0, 0, e.line);
      return;
    }
    // 3. Inputs (host signals). Fire-invariant reads are latched by the
    // memo wrapper in compile_expr; this is the evaluate-once path.
    if (const InputDecl* in = prog_.find_input(e.name)) {
      const auto input_id =
          static_cast<std::int32_t>(in - prog_.inputs.data());
      if (e.args.size() != in->index_domains.size()) {
        trap("wrong number of indices for input '" + e.name + "'", e.line);
        return;
      }
      const int n = static_cast<int>(e.args.size());
      for (int i = 0; i < n; ++i) {
        compile_expr(e.args[static_cast<std::size_t>(i)], dst + i, depth + 1);
        // An index constant provably inside its domain needs no runtime
        // check; anything else (including provable failures) keeps the
        // interpreter's check and error.
        const auto idx = try_fold(e.args[static_cast<std::size_t>(i)],
                                  depth + 1);
        if (idx &&
            in->index_domains[static_cast<std::size_t>(i)].contains(*idx))
          continue;
        emit(Op::CheckInIdx, dst + i, input_id, i, 0, e.line);
      }
      emit(Op::LoadInput, dst, input_id, dst, n, e.line);
      return;
    }
    // 4. Named constants.
    if (e.args.empty()) {
      const auto it = prog_.constants.find(e.name);
      if (it != prog_.constants.end()) {
        emit(Op::LoadConst, dst, add_const(it->second));
        return;
      }
    }
    // 5. Builtin functions.
    if (is_builtin_name(e.name)) {
      compile_builtin(e, dst, depth);
      return;
    }
    // 6. Subbases (pure rule-base calls).
    if (const RuleBase* rb = prog_.find_rule_base(e.name)) {
      const auto rb_id = static_cast<std::int32_t>(rb - prog_.rule_bases.data());
      const int n = static_cast<int>(e.args.size());
      for (int i = 0; i < n; ++i)
        compile_expr(e.args[static_cast<std::size_t>(i)], dst + i, depth + 1);
      touch(dst + std::max(n - 1, 0));
      emit(Op::CallSub, dst, rb_id, dst, n, e.line);
      return;
    }
    trap("unknown name '" + e.name + "'", e.line);
  }

  void compile_builtin(const Expr& e, int dst, int depth) {
    const int n = static_cast<int>(e.args.size());
    auto compile_args = [&] {
      for (int i = 0; i < n; ++i)
        compile_expr(e.args[static_cast<std::size_t>(i)], dst + i, depth + 1);
      touch(dst + std::max(n - 1, 0));
    };
    auto expects = [&](int want) {
      trap("builtin '" + e.name + "' expects " + std::to_string(want) +
               " arguments",
           e.line);
    };
    if (e.name == "min" || e.name == "max") {
      if (n == 0) {
        trap("builtin '" + e.name + "' needs arguments", e.line);
        return;
      }
      compile_args();
      const Op op = e.name == "min" ? Op::Min2 : Op::Max2;
      if (n == 1) {
        emit(op, dst, dst, dst, 0, e.line);
        return;
      }
      for (int i = 1; i < n; ++i) emit(op, dst, dst, dst + i, 0, e.line);
      return;
    }
    struct Fixed {
      const char* name;
      int arity;
      Op op;
    };
    static const Fixed fixed[] = {
        {"abs", 1, Op::Abs},           {"signum", 1, Op::Signum},
        {"card", 1, Op::Card},         {"popcount", 1, Op::Popcount},
        {"xor", 2, Op::Xor},           {"bitand", 2, Op::BitAnd},
        {"bit", 2, Op::Bit},           {"meshdist", 4, Op::Meshdist},
    };
    for (const Fixed& f : fixed) {
      if (e.name != f.name) continue;
      if (n != f.arity) {
        expects(f.arity);
        return;
      }
      // `bit(x, literal)` — the premise-chain workhorse — skips the index
      // register and its runtime range check. Out-of-range or non-int
      // indices keep the generic path so the error matches Op::Bit's.
      if (f.op == Op::Bit) {
        if (auto idx = try_fold(e.args[1], depth + 1)) {
          if (idx->is_int() && idx->as_int() >= 0 && idx->as_int() <= 62) {
            compile_expr(e.args[0], dst, depth + 1);
            emit(Op::BitConst, dst, dst,
                 static_cast<std::int32_t>(idx->as_int()), 0, e.line);
            return;
          }
        }
      }
      compile_args();
      // Unary ops read r[b]; binary ops read r[b], r[c]; meshdist reads
      // r[b..b+3].
      emit(f.op, dst, dst, f.arity >= 2 ? dst + 1 : 0, 0, e.line);
      return;
    }
    FR_UNREACHABLE("builtin catalogue mismatch");
  }

  void compile_binary(const Expr& e, int dst, int depth) {
    if (e.bin_op == BinOp::And || e.bin_op == BinOp::Or) {
      // Short-circuit, like the interpreter (including its as_bool checks).
      compile_expr(e.lhs, dst, depth + 1);
      const int jshort = e.bin_op == BinOp::And
                             ? emit(Op::JumpIfFalse, dst, -1)
                             : emit(Op::JumpIfTrue, dst, -1);
      compile_expr(e.rhs, dst, depth + 1);
      emit(Op::ToBool, dst);
      const int jend = emit(Op::Jump, -1);
      patch(jshort, here());
      emit(Op::LoadConst, dst,
           add_const(Value::make_bool(e.bin_op == BinOp::Or)));
      patch(jend, here());
      return;
    }

    // Fused forms for the hot premise shapes `x = const` / `x IN constset`:
    // the right operand folds, the left does not (else the whole node folds).
    if (e.bin_op == BinOp::Eq || e.bin_op == BinOp::Ne ||
        e.bin_op == BinOp::In) {
      if (auto rhs = try_fold(e.rhs, depth + 1)) {
        compile_expr(e.lhs, dst, depth + 1);
        const Op op = e.bin_op == BinOp::Eq   ? Op::CmpEqConst
                      : e.bin_op == BinOp::Ne ? Op::CmpNeConst
                                              : Op::TestInConst;
        emit(op, dst, dst, add_const(*rhs), 0, e.line);
        return;
      }
    }

    compile_expr(e.lhs, dst, depth + 1);
    compile_expr(e.rhs, dst + 1, depth + 1);
    Op op = Op::Halt;
    switch (e.bin_op) {
      case BinOp::Add: op = Op::Add; break;
      case BinOp::Sub: op = Op::Sub; break;
      case BinOp::Mul: op = Op::Mul; break;
      case BinOp::Div: op = Op::Div; break;
      case BinOp::Mod: op = Op::Mod; break;
      case BinOp::Eq: op = Op::CmpEq; break;
      case BinOp::Ne: op = Op::CmpNe; break;
      case BinOp::Lt: op = Op::CmpLt; break;
      case BinOp::Le: op = Op::CmpLe; break;
      case BinOp::Gt: op = Op::CmpGt; break;
      case BinOp::Ge: op = Op::CmpGe; break;
      case BinOp::In: op = Op::TestIn; break;
      case BinOp::Union: op = Op::Union; break;
      case BinOp::Intersect: op = Op::Intersect; break;
      case BinOp::SetMinus: op = Op::SetMinus; break;
      case BinOp::And:
      case BinOp::Or:
        FR_UNREACHABLE("handled above");
    }
    emit(op, dst, dst, dst + 1, 0, e.line);
  }

  void compile_quantified(const Expr& e, int dst, int depth) {
    const int r_dom = dst + 1, r_len = dst + 2, r_i = dst + 3, r_one = dst + 4,
              r_t = dst + 5, r_var = dst + 6, r_body = dst + 7;
    touch(r_body);
    compile_expr(e.lhs, r_dom, depth + 1);
    emit(Op::DomLen, r_len, r_dom, 0, 0, e.lhs->line);
    emit(Op::LoadConst, r_i, add_const(Value::make_int(0)));
    emit(Op::LoadConst, r_one, add_const(Value::make_int(1)));
    const int l_cond = here();
    emit(Op::CmpLt, r_t, r_i, r_len, 0, e.line);
    const int j_exhaust = emit(Op::JumpIfFalse, r_t, -1);
    emit(Op::DomGet, r_var, r_dom, r_i);
    scope_.emplace_back(e.name, r_var);
    compile_expr(e.rhs, r_body, depth + 1);
    scope_.pop_back();
    // EXISTS stops on the first true body, FORALL on the first false one —
    // including the interpreter's as_bool check on every body value.
    const int j_found = e.quant == Quant::Exists
                            ? emit(Op::JumpIfTrue, r_body, -1)
                            : emit(Op::JumpIfFalse, r_body, -1);
    emit(Op::Add, r_i, r_i, r_one, 0, e.line);
    emit(Op::Jump, l_cond);
    patch(j_exhaust, here());
    emit(Op::LoadConst, dst, add_const(Value::make_bool(e.quant == Quant::ForAll)));
    const int j_end = emit(Op::Jump, -1);
    patch(j_found, here());
    emit(Op::LoadConst, dst, add_const(Value::make_bool(e.quant == Quant::Exists)));
    patch(j_end, here());
  }

  // ------------------------------------------------------------- commands
  void compile_cmds(const std::vector<Cmd>& cmds, int scratch) {
    for (const Cmd& c : cmds) {
      switch (c.kind) {
        case Cmd::Kind::Assign: {
          const VarDecl* decl = prog_.find_variable(c.target);
          if (decl == nullptr) {
            trap("assignment to unknown variable '" + c.target + "'", c.line);
            break;
          }
          const auto var_id =
              static_cast<std::int32_t>(decl - prog_.variables.data());
          if (decl->is_array()) {
            if (c.args.size() != 1) {
              trap("array variable '" + c.target +
                       "' needs exactly one index",
                   c.line);
              break;
            }
            compile_expr(c.args[0], scratch, 1);
            // The index type check precedes RHS evaluation, like exec_cmds.
            emit(Op::CheckIdxInt, scratch, 0, 0, 0, c.line);
            compile_expr(c.value, scratch + 1, 1);
            emit(Op::Store, scratch + 1, var_id, scratch, 0, c.line);
          } else {
            if (!c.args.empty()) {
              trap("scalar variable '" + c.target + "' is not indexed",
                   c.line);
              break;
            }
            compile_expr(c.value, scratch, 1);
            emit(Op::Store, scratch, var_id, -1, 0, c.line);
          }
          break;
        }
        case Cmd::Kind::Return:
          compile_expr(c.value, scratch, 1);
          emit(Op::Return, scratch, 0, 0, 0, c.line);
          break;
        case Cmd::Kind::Emit: {
          const int n = static_cast<int>(c.args.size());
          // All-constant argument lists (the typical `!cand(2, 0, 1)`) are
          // interned as one pool run — no per-fire register writes.
          std::vector<Value> folded;
          folded.reserve(static_cast<std::size_t>(n));
          for (const ExprPtr& a : c.args) {
            auto v = try_fold(a, 1);
            if (!v) break;
            folded.push_back(*std::move(v));
          }
          if (static_cast<int>(folded.size()) == n) {
            emit(Op::EmitConst, add_const_block(folded),
                 intern_event(c.target), n, 0, c.line);
            break;
          }
          for (int i = 0; i < n; ++i)
            compile_expr(c.args[static_cast<std::size_t>(i)], scratch + i, 1);
          touch(scratch + std::max(n - 1, 0));
          emit(Op::Emit, scratch, intern_event(c.target), n, 0, c.line);
          break;
        }
        case Cmd::Kind::ForAll: {
          const int r_dom = scratch, r_len = scratch + 1, r_i = scratch + 2,
                    r_one = scratch + 3, r_t = scratch + 4,
                    r_var = scratch + 5;
          touch(r_var);
          compile_expr(c.domain, r_dom, 1);
          emit(Op::DomLen, r_len, r_dom, 0, 0, c.domain->line);
          emit(Op::LoadConst, r_i, add_const(Value::make_int(0)));
          emit(Op::LoadConst, r_one, add_const(Value::make_int(1)));
          const int l_cond = here();
          emit(Op::CmpLt, r_t, r_i, r_len, 0, c.line);
          const int j_done = emit(Op::JumpIfFalse, r_t, -1);
          emit(Op::DomGet, r_var, r_dom, r_i);
          scope_.emplace_back(c.bound, r_var);
          compile_cmds(c.body, scratch + 6);
          scope_.pop_back();
          emit(Op::Add, r_i, r_i, r_one, 0, c.line);
          emit(Op::Jump, l_cond);
          patch(j_done, here());
          break;
        }
      }
    }
  }

  /// Compile a premise (or, recursively, one AND operand of it) so control
  /// falls through when it holds and branches to a to-be-patched target
  /// (appended to `jumps`) when it does not. AND chains decompose into
  /// per-conjunct branches — no boolean is materialized — and comparison
  /// conjuncts fuse into compare-and-branch ops. Evaluation order, depth
  /// accounting and errors replicate the interpreter: an AND operand is
  /// checked via Value::as_bool (JumpIfFalse) exactly as eval_binary does,
  /// the premise root via the premise type check, and a fused comparison
  /// raises the same "comparison operand" errors as its Cmp* twin.
  void compile_premise(const ExprPtr& p, int scratch, int depth,
                       bool conjunct, int rule_line, std::vector<int>& jumps) {
    if (p->kind == Expr::Kind::Binary && !try_fold(p, depth)) {
      std::string f;
      const bool latched = !expr_memo_.empty() && fingerprint(*p, f) &&
                           expr_memo_.find(f) != expr_memo_.end();
      if (!latched) {
        if (p->bin_op == BinOp::And) {
          compile_premise(p->lhs, scratch, depth + 1, true, rule_line, jumps);
          compile_premise(p->rhs, scratch, depth + 1, true, rule_line, jumps);
          return;
        }
        Op fused = Op::Halt;
        switch (p->bin_op) {
          case BinOp::Eq: fused = Op::JumpUnlessEq; break;
          case BinOp::Ne: fused = Op::JumpUnlessNe; break;
          case BinOp::Lt: fused = Op::JumpUnlessLt; break;
          case BinOp::Le: fused = Op::JumpUnlessLe; break;
          case BinOp::Gt: fused = Op::JumpUnlessGt; break;
          case BinOp::Ge: fused = Op::JumpUnlessGe; break;
          default: break;
        }
        if (fused != Op::Halt) {
          if (p->bin_op == BinOp::Eq || p->bin_op == BinOp::Ne) {
            if (auto rhs = try_fold(p->rhs, depth + 1)) {
              compile_expr(p->lhs, scratch, depth + 1);
              jumps.push_back(emit(p->bin_op == BinOp::Eq
                                       ? Op::JumpUnlessEqConst
                                       : Op::JumpUnlessNeConst,
                                   scratch, -1, add_const(*rhs), 0, p->line));
              return;
            }
          }
          compile_expr(p->lhs, scratch, depth + 1);
          compile_expr(p->rhs, scratch + 1, depth + 1);
          jumps.push_back(
              emit(fused, scratch, -1, scratch + 1, 0, p->line));
          return;
        }
      }
    }
    compile_expr(p, scratch, depth);
    jumps.push_back(conjunct
                        ? emit(Op::JumpIfFalse, scratch, -1, 0, 0, p->line)
                        : emit(Op::JumpUnlessPremise, scratch, -1, 0, 0,
                               rule_line));
  }

  void compile_base(int rb_id) {
    const RuleBase& rb = prog_.rule_bases[static_cast<std::size_t>(rb_id)];
    frame_high_ = static_cast<int>(rb.params.size());
    scope_.clear();
    for (std::size_t i = 0; i < rb.params.size(); ++i)
      scope_.emplace_back(rb.params[i].name, static_cast<int>(i));
    BcRuleBase& base = out_.bases[static_cast<std::size_t>(rb_id)];
    base.entry = here();

    // Frame layout: params | latch mask + memo slots | scratch. Slots are
    // assigned to bare input reads only: those always save a provider call
    // on replay, whereas latching derived subexpressions costs mask
    // maintenance on the (dominant) first-rule-fires path and measures as a
    // net loss under first-match rule scanning. The mask register holds 62
    // usable bits.
    fp_counts_.clear();
    expr_memo_.clear();
    for (const Rule& rule : rb.rules) {
      scan_expr(rule.premise);
      scan_cmds(rule.conclusion);
    }
    int scratch = static_cast<int>(rb.params.size());
    std::int32_t bit = 0;
    int next_slot = scratch + 1;  // slot regs follow the mask register
    for (const auto& [f, info] : fp_counts_) {
      if (!info.input_read) continue;
      if (bit >= 62) break;
      expr_memo_.emplace(f, MemoEntry{bit++, next_slot++});
    }
    if (bit > 0) {
      base.mask_reg = scratch;
      scratch = next_slot;
    }
    touch(scratch);
    std::vector<int> premise_jumps;
    for (std::size_t r = 0; r < rb.rules.size(); ++r) {
      const Rule& rule = rb.rules[r];
      premise_jumps.clear();
      compile_premise(rule.premise, scratch, 1, false, rule.line,
                      premise_jumps);
      emit(Op::BeginRule, static_cast<std::int32_t>(r), 0, 0, 0, rule.line);
      compile_cmds(rule.conclusion, scratch);
      emit(Op::Halt);
      for (const int j : premise_jumps) patch(j, here());
    }
    emit(Op::Halt);  // no rule applicable
    base.frame_size = frame_high_;
  }

  const Program& prog_;
  BytecodeProgram& out_;
  Interpreter folder_;  // constant folding via the reference evaluator
  std::vector<std::pair<std::string, int>> scope_;
  std::map<std::string, FpInfo> fp_counts_;    // current base's scan result
  std::map<std::string, MemoEntry> expr_memo_; // fingerprints with a slot
  int frame_high_ = 0;
};

}  // namespace

std::int32_t BytecodeProgram::event_id(const std::string& name) const {
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i].name == name) return static_cast<std::int32_t>(i);
  return -1;
}

std::shared_ptr<const BytecodeProgram> compile_bytecode(const Program& prog) {
  auto bc = std::make_shared<BytecodeProgram>();
  bc->prog_ = &prog;
  Compiler c(prog, *bc);
  c.run();
  return bc;
}

bool RouteAnalysis::reads_input(const std::string& name) const {
  return std::binary_search(inputs_read.begin(), inputs_read.end(), name);
}

RouteAnalysis analyze_reachable(const Program& prog, const std::string& root) {
  RouteAnalysis out;
  std::set<const RuleBase*> visited;
  std::vector<const RuleBase*> work;
  std::set<std::string> inputs;

  auto enqueue = [&](const RuleBase* rb) {
    if (rb != nullptr && visited.insert(rb).second) work.push_back(rb);
  };

  std::function<void(const ExprPtr&)> walk_expr = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::Ref) {
      // Conservative: scope shadowing is ignored, so this over-approximates
      // both input reads and subbase reachability (never under-approximates).
      if (prog.find_input(e->name) != nullptr) inputs.insert(e->name);
      enqueue(prog.find_rule_base(e->name));
    }
    for (const ExprPtr& a : e->args) walk_expr(a);
    walk_expr(e->lhs);
    walk_expr(e->rhs);
  };

  std::function<void(const std::vector<Cmd>&)> walk_cmds =
      [&](const std::vector<Cmd>& cmds) {
        for (const Cmd& c : cmds) {
          switch (c.kind) {
            case Cmd::Kind::Assign:
              out.writes_state = true;
              for (const ExprPtr& a : c.args) walk_expr(a);
              walk_expr(c.value);
              break;
            case Cmd::Kind::Return:
              walk_expr(c.value);
              break;
            case Cmd::Kind::Emit:
              enqueue(prog.find_rule_base(c.target));
              for (const ExprPtr& a : c.args) walk_expr(a);
              break;
            case Cmd::Kind::ForAll:
              walk_expr(c.domain);
              walk_cmds(c.body);
              break;
          }
        }
      };

  enqueue(prog.find_rule_base(root));
  while (!work.empty()) {
    const RuleBase* rb = work.back();
    work.pop_back();
    for (const Rule& r : rb->rules) {
      walk_expr(r.premise);
      walk_cmds(r.conclusion);
    }
  }
  out.inputs_read.assign(inputs.begin(), inputs.end());
  return out;
}

}  // namespace flexrouter::rules
