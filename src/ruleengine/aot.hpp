// Ahead-of-time decision table: the whole route() cascade pre-resolved over
// the premise space a router can ever present — the same
// (node, dest, in_port, in_vc) axes the static deadlock certifier walks.
//
// The host (routing/rule_driven.*) enumerates every premise point at
// reconfigure time, runs the decision once through the VM, and stores the
// result here: a flat direct-LUT of 16-byte AotEntry records over
// precomputed strides, candidates packed inline in the entry (oversized
// sets overflow to a shared arena). A table lookup is branchless up to the
// fallback test — no bytecode dispatch, no hashing, no allocation, and for
// inline entries no second memory dependency. Premise points outside the
// table (or whole
// programs the soundness analysis rejects) keep going through the VM; the
// entry encoding (steps == 0) makes the fallback test a single compare.
//
// The table is rebuilt from scratch whenever its inputs can have changed
// (fault epoch / program swap); build() tags the result so the host can
// assert freshness the same way the escape table does.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "ruleengine/rule_table.hpp"

namespace flexrouter::rules {

/// Flat direct-LUT over (node, dest, port-axis, vc-axis) premise points.
/// Axis conventions are the host's: the port axis collapses in_port = -1
/// (injection) to 0, so its extent is degree + 2 (−1 .. degree); the vc
/// axis collapses in_vc = -1 the same way (extent num_vcs + 1).
class AotTable {
 public:
  struct Dims {
    std::int32_t nodes = 0;
    std::int32_t dests = 0;
    std::int32_t ports = 0;  // degree + 2: in_port in -1 .. degree
    std::int32_t vcs = 0;    // num_vcs + 1: in_vc in -1 .. num_vcs-1

    std::uint64_t entry_count() const {
      return static_cast<std::uint64_t>(nodes) *
             static_cast<std::uint64_t>(dests) *
             static_cast<std::uint64_t>(ports) *
             static_cast<std::uint64_t>(vcs);
    }
  };

  struct Stats {
    std::uint64_t entries = 0;          // premise points tabulated
    std::uint64_t resolved = 0;         // entries with a stored decision
    /// Premise points no packet can dynamically present (the engine threw
    /// a contract violation evaluating them — e.g. arrival through a
    /// nonexistent boundary link). The VM fallback reproduces the throw
    /// should one ever materialize.
    std::uint64_t unreachable = 0;
    std::uint64_t fallback = 0;         // presentable entries left to the VM
    std::uint64_t arena_candidates = 0; // AotCand records in the arena
    std::uint64_t bytes = 0;            // entries + arena footprint

    /// Fraction of presentable premise points the table cannot serve —
    /// the rulelint --emit-table / aot_table_corpus metric.
    double fallback_fraction() const {
      const std::uint64_t presentable = entries - unreachable;
      return presentable == 0 ? 1.0
                              : static_cast<double>(fallback) /
                                    static_cast<double>(presentable);
    }
  };

  /// Sentinel in AotEntry::count (with steps == 0) distinguishing an
  /// unreachable premise point from an ordinary fallback. The fast path
  /// never reads count when steps == 0, so the encoding is free.
  static constexpr std::uint16_t kUnreachableCount = 0xffff;

  AotTable() = default;

  /// True iff a table over `d` fits the entry budget. Oversized premise
  /// spaces are not an error — the host simply keeps the VM + cache tiers.
  static bool within_budget(const Dims& d, std::uint64_t max_entries) {
    return d.entry_count() > 0 && d.entry_count() <= max_entries;
  }

  /// Drop any previous contents and allocate `d.entry_count()` unresolved
  /// entries. `expected_cands` presizes the arena (one reallocation-free
  /// build when the estimate holds; growing during build is correct too —
  /// the arena is only indexed, never pointed into, until the build ends).
  void reset(const Dims& d, std::size_t expected_cands);

  /// Store the decision for one premise point. Candidates are appended to
  /// the arena; `steps` must be >= 1 (0 is the fallback encoding).
  void set_entry(std::uint64_t flat, int steps, const AotCand* cands,
                 std::size_t n);

  /// Record a premise point the engine threw on. Runtime-wise identical to
  /// an ordinary fallback (steps stays 0); only the accounting differs.
  void mark_unreachable(std::uint64_t flat);

  /// Drop the table (host bypass after external state mutation); the next
  /// fill rebuilds it from scratch.
  void clear() {
    entries_.clear();
    arena_.clear();
  }

  bool empty() const { return entries_.empty(); }
  const Dims& dims() const { return dims_; }
  std::uint64_t node_stride() const { return node_stride_; }
  std::uint64_t dest_stride() const { return dest_stride_; }

  std::uint64_t flat_index(std::int32_t node, std::int32_t dest,
                           std::int32_t port_axis,
                           std::int32_t vc_axis) const {
    return (static_cast<std::uint64_t>(node) * node_stride_) +
           (static_cast<std::uint64_t>(dest) * dest_stride_) +
           (static_cast<std::uint64_t>(port_axis) *
            static_cast<std::uint64_t>(dims_.vcs)) +
           static_cast<std::uint64_t>(vc_axis);
  }

  // Raw views for the host's fast path (no bounds checks — the host proves
  // the premise point in-range before indexing).
  const AotEntry* entries_raw() const { return entries_.data(); }
  const AotCand* arena_raw() const { return arena_.data(); }

  /// Decode one entry into (steps, candidates); false when the entry is
  /// unresolved (fallback or unreachable). For fill-time validation of the
  /// compressed layout and for tests — the hot path unpacks inline.
  bool decode(std::uint64_t flat, int& steps,
              std::vector<AotCand>& cands) const;

  Stats stats() const;

 private:
  Dims dims_;
  std::uint64_t node_stride_ = 0;  // dests * ports * vcs
  std::uint64_t dest_stride_ = 0;  // ports * vcs
  std::vector<AotEntry> entries_;
  std::vector<AotCand> arena_;
};

}  // namespace flexrouter::rules
