// Bytecode lowering of rule programs.
//
// The reference interpreter walks the shared AST with string-keyed name
// resolution on every firing. This compiler lowers each rule base once into
// a flat, register-based instruction stream mirroring the paper's hardware
// split (premise processing -> rule selection -> conclusion processing):
//
//  * every premise compiles to straight-line code ending in a conditional
//    jump to the next rule's premise — first applicable rule in source
//    order wins, exactly like Interpreter::fire();
//  * names are resolved at compile time: parameters and quantifier-bound
//    variables become frame registers, VARIABLEs become register-file ids,
//    INPUTs become input ids (served through a pre-resolved provider),
//    constants and literal subtrees are folded into a constant pool;
//  * conclusions compile to pending-write stores, RETURN/Emit ops and
//    loops, preserving the language's parallel-commit semantics.
//
// The compiled program is immutable and shared: one BytecodeProgram serves
// every per-node Vm of a network (each node keeps only its own register
// file and frame). Dynamic error behaviour (EvalError/ContractViolation,
// messages, trigger order) replicates the interpreter — the VM is a
// drop-in engine, differentially tested against the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

enum class Op : std::uint8_t {
  LoadConst,   // r[a] = consts[b]
  Move,        // r[a] = r[b]
  LoadReg,     // r[a] = register file var b, element c (compile-checked)
  LoadRegIdx,  // r[a] = register file var b, element r[c] (runtime-checked)
  CheckInIdx,  // require r[a] in index domain c of input b
  LoadInput,   // r[a] = input b with indices r[c..c+aux)
  MemoCheck,   // latch slot c valid (mask bit aux)? r[a] = r[c], pc = b
  MemoStore,   // latch r[a] into slot c, set mask bit aux
  LoadInputMemo,  // fused latched read of zero-index input b (slot c/bit aux)
  MakeSet,     // r[a] = set of r[b..b+c)
  Not,         // r[a] = !bool(r[b])
  Neg,         // r[a] = -int(r[b])
  ToBool,      // r[a] = bool(r[a]) normalised to 0/1
  Add, Sub, Mul, Div, Mod,                  // r[a] = r[b] op r[c]
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, // r[a] = r[b] op r[c]
  CmpEqConst, CmpNeConst,                   // r[a] = r[b] op consts[c]
  TestIn,                                   // r[a] = r[b] IN r[c]
  TestInConst,                              // r[a] = r[b] IN consts[c]
  Union, Intersect, SetMinus,               // r[a] = r[b] op r[c]
  Abs, Signum, Card, Popcount,              // r[a] = f(r[b])
  Min2, Max2, Xor, BitAnd, Bit,             // r[a] = f(r[b], r[c])
  BitConst,                                 // r[a] = (r[b] >> c) & 1, c literal
  Meshdist,                                 // r[a] = f(r[b], .., r[b+3])
  Jump,               // pc = a
  JumpIfFalse,        // if !bool(r[a]) pc = b
  JumpIfTrue,         // if bool(r[a]) pc = b
  JumpUnlessPremise,  // premise check: non-int r[a] errors, false jumps to b
  // Fused premise tails for the dominant `lhs = rhs` / `lhs # rhs` shapes —
  // a comparison result is always boolean, so no premise type check needed.
  JumpUnlessEq,       // unless r[a] == r[c], pc = b
  JumpUnlessNe,       // unless r[a] != r[c], pc = b
  JumpUnlessLt,       // unless r[a] < r[c], pc = b (CmpLt operand rules)
  JumpUnlessLe,       // unless r[a] <= r[c], pc = b
  JumpUnlessGt,       // unless r[a] > r[c], pc = b
  JumpUnlessGe,       // unless r[a] >= r[c], pc = b
  JumpUnlessEqConst,  // unless r[a] == consts[c], pc = b
  JumpUnlessNeConst,  // unless r[a] != consts[c], pc = b
  DomLen,      // r[a] = iteration length of quantifier domain r[b]
  DomGet,      // r[a] = element r[c] of quantifier domain r[b]
  CallSub,     // r[a] = pure call of rule base b with args r[c..c+aux)
  BeginRule,   // rule a fired: record it in the result
  CheckIdxInt, // require r[a] to be an integer (assignment index)
  Store,       // pending write var b, element r[c] (c<0: scalar) = r[a]
  Return,      // RETURN r[a]
  Emit,        // emit event b with args r[a..a+c)
  EmitConst,   // emit event b with args consts[a..a+c) (all args folded)
  Trap,        // throw EvalError(traps[a], line)
  Halt,        // end of rule-base code
};

struct Instr {
  Op op = Op::Halt;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t aux = 0;
  std::int32_t line = 0;
};

/// Per-rule-base code descriptor. Fire-invariant subexpressions (pure over
/// inputs, registers and constants — both are stable within one firing:
/// inputs are the paper's sampled signal pins, register writes commit in
/// parallel after the firing) are latched in per-frame memo slots:
/// `mask_reg` holds a valid-bit mask over the slots that follow it in the
/// frame, zeroed on frame entry.
struct BcRuleBase {
  std::int32_t entry = 0;       // pc of the premise chain
  std::int32_t frame_size = 0;  // registers (params live in r[0..n))
  std::int32_t mask_reg = -1;   // latch valid-bit register, -1 if unused
};

/// Interned event name; `target_rb` pre-resolves dispatch (index into
/// Program::rule_bases, or -1 for host-bound events).
struct BcEvent {
  std::string name;
  std::int32_t target_rb = -1;
};

class BytecodeProgram {
 public:
  const Program& program() const { return *prog_; }

  /// Event id for `name`, or -1 if the program never emits it.
  std::int32_t event_id(const std::string& name) const;

  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<BcRuleBase> bases;   // parallel to program().rule_bases
  std::vector<BcEvent> events;
  std::vector<std::string> traps;  // deferred runtime error messages

 private:
  friend std::shared_ptr<const BytecodeProgram> compile_bytecode(
      const Program& prog);
  const Program* prog_ = nullptr;
};

/// Lower every rule base of `prog` to bytecode. The result borrows `prog`
/// (same lifetime contract as Interpreter/RuleEnv).
std::shared_ptr<const BytecodeProgram> compile_bytecode(const Program& prog);

/// Static reachability analysis for the per-node decision cache: everything
/// transitively reachable from `root` (subbase calls in expressions and
/// emitted events that land on rule bases).
struct RouteAnalysis {
  bool writes_state = false;         // any reachable Assign command
  std::vector<std::string> inputs_read;  // input names read (sorted, unique)

  bool reads_input(const std::string& name) const;
};
RouteAnalysis analyze_reachable(const Program& prog, const std::string& root);

}  // namespace flexrouter::rules
