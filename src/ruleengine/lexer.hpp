// Lexer for the rule language. Keywords are case-insensitive (the paper
// writes them in upper case), identifiers are case-sensitive, `--` starts a
// line comment (as in the paper's Figure 4 listing).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace flexrouter::rules {

enum class Tok {
  End,
  Ident, Int,
  // keywords
  KwProgram, KwConstant, KwVariable, KwInput, KwOn, KwEnd, KwIf, KwThen,
  KwReturn, KwReturns, KwIn, KwTo, KwInit, KwExists, KwForall, KwAnd, KwOr,
  KwNot, KwMod, KwUnion, KwIntersect, KwSetminus, KwSet, KwOf,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Colon, Semi, Bang,
  Assign,  // <-
  Eq, Ne, Lt, Le, Gt, Ge,
  Plus, Minus, Star, Slash,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // identifier spelling
  std::int64_t int_val = 0;
  int line = 1;
};

/// Thrown on lexical or syntax errors; carries the source line.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

std::vector<Token> lex(const std::string& source);

const char* to_string(Tok t);

}  // namespace flexrouter::rules
