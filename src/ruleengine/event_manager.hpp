// Event manager: coordinates the parallel, event-triggered execution of a
// rule program's rule bases (Section 4.2/4.3).
//
// Events arrive either from the host hardware (message arrival, link state
// change — posted by the router model) or from rule conclusions
// (`!event(args)`). Each rule base is bound to the event of its ON block.
// Rule execution is atomic; generated events are queued and processed
// asynchronously, which realises the language's explicit-asynchronity model.
// Events with no matching ON block are handed to the host handler — that is
// how `!send(...)`-style commands reach the router data path.
#pragma once

#include <deque>
#include <memory>

#include "ruleengine/rule_table.hpp"
#include "ruleengine/vm.hpp"

namespace flexrouter::rules {

enum class ExecMode {
  Interpret,  // reference AST interpreter
  Table,      // compiled ARON rule tables (RBR kernel)
  Vm,         // bytecode VM (premise chains + register frames)
  Aot,        // host-side AOT decision table (ruleengine/aot.hpp); inside
              // the EventManager this behaves exactly like Vm — the table
              // lives in the routing host, the VM serves fallback points
};

class EventManager {
 public:
  /// `bytecode` lets hosts share one compiled program across many managers
  /// (e.g. one per node); when null it is compiled on demand in Vm mode.
  explicit EventManager(const Program& prog,
                        ExecMode mode = ExecMode::Interpret,
                        const CompileOptions& opts = {},
                        std::shared_ptr<const BytecodeProgram> bytecode =
                            nullptr);

  const Program& program() const { return *prog_; }
  RuleEnv& env() { return env_; }
  const RuleEnv& env() const { return env_; }
  Interpreter& interpreter() { return interp_; }
  ExecMode mode() const { return mode_; }

  void set_input_provider(InputFn fn) {
    interp_.set_input_provider(fn);
    if (vm_) vm_->set_input_provider(std::move(fn));
  }
  /// Pre-resolved provider for the VM hot path (input ids, no name lookup).
  /// Interpret/Table dispatch still uses the string-keyed provider.
  void set_input_provider_fast(FastInputFn fn) {
    if (vm_) vm_->set_input_provider_fast(std::move(fn));
  }
  /// Raw pre-resolved provider (function pointer + context) — the cheapest
  /// per-read dispatch; wins over both std::function providers in Vm mode.
  void set_input_provider_raw(RawInputFn fn, void* ctx) {
    if (vm_) vm_->set_input_provider_raw(fn, ctx);
  }

  /// Receives events that no rule base handles (host-bound outputs).
  using HostHandler =
      std::function<void(const std::string&, const std::vector<Value>&)>;
  void set_host_handler(HostHandler fn) {
    host_ = std::move(fn);
    host_fast_ = nullptr;
  }
  /// Pre-resolved host handler: receives the full EmittedEvent so hosts can
  /// dispatch on the interned `name_id` instead of the name string. Mutually
  /// exclusive with set_host_handler (last installed wins).
  using HostHandlerFast = std::function<void(const EmittedEvent&)>;
  void set_host_handler_fast(HostHandlerFast fn) {
    host_fast_ = std::move(fn);
    host_ = nullptr;
  }

  /// Firing trace: called after every rule interpretation with the rule
  /// base, its arguments and the result — the rule-program debugger's hook.
  using TraceFn = std::function<void(const RuleBase&, const std::vector<Value>&,
                                     const FireResult&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Render one firing as a human-readable line (used by examples/tools).
  static std::string describe_firing(const Program& prog, const RuleBase& rb,
                                     const std::vector<Value>& args,
                                     const FireResult& r);

  /// Fire one rule base synchronously (one rule interpretation). Emitted
  /// events are queued for drain().
  FireResult fire(const std::string& rule_base, const std::vector<Value>& args);
  /// Same, by rule-base index (see base_index) — skips the name lookup.
  FireResult fire(int rb_index, const std::vector<Value>& args);

  /// Index of a rule base in Program::rule_bases, or -1 if absent.
  int base_index(const std::string& rule_base) const;

  /// Queue an event for asynchronous processing.
  void post(const std::string& event, std::vector<Value> args);

  /// Process queued events until the queue is empty; returns the number of
  /// rule interpretations performed. Throws if `max_steps` is exceeded
  /// (runaway event cascade).
  int drain(int max_steps = 100000);

  bool queue_empty() const { return queue_.empty(); }

  /// Total rule interpretations since construction/reset — the paper's
  /// time-overhead unit ("NAFTA needs one step fault-free, three worst
  /// case").
  std::int64_t total_interpretations() const { return interpretations_; }
  void reset_counters() { interpretations_ = 0; }

  /// Reset registers to the initial image and clear the queue.
  void reset_state();

  /// Compiled artifacts (Table mode); empty in Interpret mode.
  const std::vector<CompiledRuleBase>& compiled() const { return compiled_; }
  /// Compiled bytecode (Vm mode); null otherwise.
  const std::shared_ptr<const BytecodeProgram>& bytecode() const {
    return bytecode_;
  }
  /// The bytecode VM (Vm mode); null otherwise. Hosts with their own event
  /// loop (RuleDrivenRouting's decision path) fire it directly and skip the
  /// queue machinery.
  Vm* vm() const { return vm_.get(); }

 private:
  FireResult dispatch(const RuleBase& rb, const std::vector<Value>& args);

  const Program* prog_;
  ExecMode mode_;
  Interpreter interp_;
  RuleEnv env_;
  std::vector<CompiledRuleBase> compiled_;  // parallel to prog_->rule_bases
  std::shared_ptr<const BytecodeProgram> bytecode_;
  std::unique_ptr<Vm> vm_;
  std::deque<EmittedEvent> queue_;
  HostHandler host_;
  HostHandlerFast host_fast_;
  TraceFn trace_;
  std::int64_t interpretations_ = 0;
};

}  // namespace flexrouter::rules
