#include "ruleengine/interp.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace flexrouter::rules {

namespace {

std::int64_t want_int(const Value& v, int line, const char* what) {
  if (!v.is_int()) throw EvalError(std::string(what) + " must be an integer", line);
  return v.as_int();
}

const SetValue& want_set(const Value& v, int line, const char* what) {
  if (!v.is_set()) throw EvalError(std::string(what) + " must be a set", line);
  return v.as_set();
}

}  // namespace

bool Interpreter::is_builtin(const std::string& name) {
  static const char* names[] = {"abs",      "bit",      "bitand", "card",
                                "max",      "meshdist", "min",    "popcount",
                                "signum",   "xor"};
  return std::binary_search(
      std::begin(names), std::end(names), name.c_str(),
      [](const char* a, const char* b) { return std::strcmp(a, b) < 0; });
}

FireResult Interpreter::fire(RuleEnv& env, const std::string& rule_base,
                             const std::vector<Value>& args) {
  return fire(env, prog_->rule_base(rule_base), args);
}

FireResult Interpreter::fire(RuleEnv& env, const RuleBase& rb,
                             const std::vector<Value>& args) {
  FR_REQUIRE_MSG(args.size() == rb.params.size(),
                 "argument count mismatch firing '" + rb.name + "'");
  Ctx ctx;
  ctx.env = &env;
  ctx.bindings.reserve(args.size() + 4);  // headroom for quantifier pushes
  for (std::size_t i = 0; i < args.size(); ++i) {
    FR_REQUIRE_MSG(rb.params[i].domain.contains(args[i]),
                   "argument outside parameter domain in '" + rb.name + "'");
    ctx.bindings.emplace_back(rb.params[i].name, args[i]);
  }
  ++total_fires_;

  FireResult result;
  for (std::size_t r = 0; r < rb.rules.size(); ++r) {
    const Value p = eval(rb.rules[r].premise, ctx);
    if (!p.is_int())
      throw EvalError("premise is not boolean", rb.rules[r].line);
    if (!p.as_bool()) continue;
    result.rule_index = static_cast<int>(r);
    std::vector<PendingWrite> writes;
    exec_cmds(rb.rules[r].conclusion, ctx, result, writes);
    // Parallel commit: all RHS were evaluated against the pre-state above.
    for (const PendingWrite& w : writes) env.set(w.name, w.index, w.value);
    if (rb.returns && result.returned &&
        !rb.returns->contains(*result.returned))
      throw EvalError("RETURN value outside declared domain of '" + rb.name +
                          "'",
                      rb.rules[r].line);
    return result;
  }
  return result;  // no rule applicable
}

bool Interpreter::premise_holds(const RuleEnv& env, const RuleBase& rb,
                                int rule_index,
                                const std::vector<Value>& args) {
  FR_REQUIRE(rule_index >= 0 &&
             rule_index < static_cast<int>(rb.rules.size()));
  Ctx ctx;
  ctx.env = &env;
  ctx.bindings.reserve(args.size() + 4);
  for (std::size_t i = 0; i < args.size(); ++i)
    ctx.bindings.emplace_back(rb.params[i].name, args[i]);
  return eval(rb.rules[static_cast<std::size_t>(rule_index)].premise, ctx)
      .as_bool();
}

Value Interpreter::eval_expr(
    const RuleEnv& env, const ExprPtr& e,
    const std::vector<std::pair<std::string, Value>>& bindings,
    const ResolveFn& override) {
  Ctx ctx;
  ctx.env = &env;
  ctx.bindings = bindings;
  if (override) ctx.override = &override;
  return eval(e, ctx);
}

Value Interpreter::eval_compiletime(const ExprPtr& e,
                                    const ResolveFn& override) {
  Ctx ctx;
  ctx.env = nullptr;
  ctx.allow_inputs = false;
  ctx.override = &override;
  return eval(e, ctx);
}

FireResult Interpreter::exec_conclusion(RuleEnv& env, const RuleBase& rb,
                                        int rule_index,
                                        const std::vector<Value>& args) {
  FR_REQUIRE(rule_index >= 0 &&
             rule_index < static_cast<int>(rb.rules.size()));
  FR_REQUIRE(args.size() == rb.params.size());
  Ctx ctx;
  ctx.env = &env;
  ctx.bindings.reserve(args.size() + 4);
  for (std::size_t i = 0; i < args.size(); ++i)
    ctx.bindings.emplace_back(rb.params[i].name, args[i]);
  ++total_fires_;
  FireResult result;
  result.rule_index = rule_index;
  std::vector<PendingWrite> writes;
  exec_cmds(rb.rules[static_cast<std::size_t>(rule_index)].conclusion, ctx,
            result, writes);
  for (const PendingWrite& w : writes) env.set(w.name, w.index, w.value);
  return result;
}

std::optional<Value> Interpreter::try_const_eval(const ExprPtr& e) const {
  Ctx ctx;
  ctx.env = nullptr;
  ctx.allow_inputs = false;
  try {
    // const_cast is safe: with env==nullptr and inputs forbidden the
    // evaluation cannot touch mutable state.
    return const_cast<Interpreter*>(this)->eval(e, ctx);
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

void Interpreter::exec_cmds(const std::vector<Cmd>& cmds, Ctx& ctx,
                            FireResult& result,
                            std::vector<PendingWrite>& writes) {
  for (const Cmd& c : cmds) {
    switch (c.kind) {
      case Cmd::Kind::Assign: {
        const VarDecl* decl = prog_->find_variable(c.target);
        if (decl == nullptr)
          throw EvalError("assignment to unknown variable '" + c.target + "'",
                          c.line);
        std::int64_t index = 0;
        if (decl->is_array()) {
          if (c.args.size() != 1)
            throw EvalError("array variable '" + c.target +
                                "' needs exactly one index",
                            c.line);
          index = want_int(eval(c.args[0], ctx), c.line, "array index");
        } else if (!c.args.empty()) {
          throw EvalError("scalar variable '" + c.target + "' is not indexed",
                          c.line);
        }
        Value v = eval(c.value, ctx);
        for (const PendingWrite& w : writes) {
          if (w.name == c.target && w.index == index && !(w.value == v))
            throw EvalError("conflicting parallel writes to '" + c.target +
                                "'",
                            c.line);
        }
        writes.push_back({c.target, index, std::move(v), c.line});
        break;
      }
      case Cmd::Kind::Return: {
        Value v = eval(c.value, ctx);
        if (result.returned && !(*result.returned == v))
          throw EvalError("conflicting RETURN values in one conclusion",
                          c.line);
        result.returned = std::move(v);
        break;
      }
      case Cmd::Kind::Emit: {
        EmittedEvent ev;
        ev.name = c.target;
        ev.args.reserve(c.args.size());
        for (const ExprPtr& a : c.args) ev.args.push_back(eval(a, ctx));
        result.events.push_back(std::move(ev));
        break;
      }
      case Cmd::Kind::ForAll: {
        const auto values = domain_values(c.domain, ctx);
        for (const Value& v : values) {
          ctx.bindings.emplace_back(c.bound, v);
          exec_cmds(c.body, ctx, result, writes);
          ctx.bindings.pop_back();
        }
        break;
      }
    }
  }
}

std::vector<Value> Interpreter::domain_values(const ExprPtr& domain_expr,
                                              Ctx& ctx) {
  const Value d = eval(domain_expr, ctx);
  if (d.is_int()) {
    // An integer n denotes the index range 0..n-1 (e.g. `FORALL i IN dirs`).
    const auto n = d.as_int();
    if (n < 0 || n > 4096)
      throw EvalError("quantifier range out of bounds", domain_expr->line);
    std::vector<Value> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) out.push_back(Value::make_int(i));
    return out;
  }
  if (d.is_set()) return d.as_set().elements();
  throw EvalError("quantifier domain must be a set or integer",
                  domain_expr->line);
}

Value Interpreter::eval(const ExprPtr& e, Ctx& ctx) {
  FR_REQUIRE(e != nullptr);
  if (++ctx.depth > 256) throw EvalError("evaluation too deep", e->line);
  struct DepthGuard {
    Ctx& ctx;
    ~DepthGuard() { --ctx.depth; }
  } guard{ctx};

  if (ctx.override != nullptr) {
    const auto v = (*ctx.override)(*e);
    if (v) return *v;
  }

  switch (e->kind) {
    case Expr::Kind::IntLit:
      return Value::make_int(e->int_val);
    case Expr::Kind::SymLit:
      return Value::make_sym(e->sym);
    case Expr::Kind::SetLit: {
      std::vector<Value> elems;
      elems.reserve(e->args.size());
      for (const ExprPtr& a : e->args) elems.push_back(eval(a, ctx));
      return Value::make_set(SetValue(std::move(elems)));
    }
    case Expr::Kind::Ref:
      return eval_ref(*e, ctx);
    case Expr::Kind::Unary: {
      const Value v = eval(e->lhs, ctx);
      if (e->un_op == UnOp::Not)
        return Value::make_bool(!v.as_bool());
      return Value::make_int(-want_int(v, e->line, "negation operand"));
    }
    case Expr::Kind::Binary:
      return eval_binary(*e, ctx);
    case Expr::Kind::Quantified: {
      const auto values = domain_values(e->lhs, ctx);
      for (const Value& v : values) {
        ctx.bindings.emplace_back(e->name, v);
        const bool b = eval(e->rhs, ctx).as_bool();
        ctx.bindings.pop_back();
        if (e->quant == Quant::Exists && b) return Value::make_bool(true);
        if (e->quant == Quant::ForAll && !b) return Value::make_bool(false);
      }
      return Value::make_bool(e->quant == Quant::ForAll);
    }
  }
  FR_UNREACHABLE("bad expr kind");
}

Value Interpreter::eval_ref(const Expr& e, Ctx& ctx) {
  // 1. Bound names (parameters, quantifier variables), innermost first.
  if (e.args.empty()) {
    for (auto it = ctx.bindings.rbegin(); it != ctx.bindings.rend(); ++it)
      if (it->first == e.name) return it->second;
  }
  // 2. Program variables (registers).
  if (const VarDecl* decl = prog_->find_variable(e.name)) {
    if (ctx.env == nullptr)
      throw EvalError("state access to '" + e.name + "' not allowed here",
                      e.line);
    std::int64_t index = 0;
    if (decl->is_array()) {
      if (e.args.size() != 1)
        throw EvalError("array '" + e.name + "' needs exactly one index",
                        e.line);
      index = want_int(eval(e.args[0], ctx), e.line, "array index");
    } else if (!e.args.empty()) {
      throw EvalError("scalar variable '" + e.name + "' is not indexed",
                      e.line);
    }
    return ctx.env->get(e.name, index);
  }
  // 3. Inputs (host signals).
  if (const InputDecl* in = prog_->find_input(e.name)) {
    if (!ctx.allow_inputs)
      throw EvalError("input access to '" + e.name + "' not allowed here",
                      e.line);
    if (!inputs_)
      throw EvalError("no input provider installed (input '" + e.name + "')",
                      e.line);
    if (e.args.size() != in->index_domains.size())
      throw EvalError("wrong number of indices for input '" + e.name + "'",
                      e.line);
    std::vector<Value> idx;
    idx.reserve(e.args.size());
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      Value v = eval(e.args[i], ctx);
      if (!in->index_domains[i].contains(v))
        throw EvalError("index outside domain for input '" + e.name + "'",
                        e.line);
      idx.push_back(std::move(v));
    }
    Value v = inputs_(e.name, idx);
    if (!in->domain.contains(v))
      throw EvalError("host returned value outside domain of input '" +
                          e.name + "'",
                      e.line);
    return v;
  }
  // 4. Named constants.
  if (e.args.empty()) {
    const auto it = prog_->constants.find(e.name);
    if (it != prog_->constants.end()) return it->second;
  }
  // 5. Builtin functions.
  if (is_builtin(e.name)) {
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) args.push_back(eval(a, ctx));
    return eval_builtin(e, args, ctx);
  }
  // 6. Subbases: a rule base used as a function; its RETURN is the value.
  if (const RuleBase* rb = prog_->find_rule_base(e.name)) {
    if (ctx.env == nullptr)
      throw EvalError("subbase call not allowed here", e.line);
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) args.push_back(eval(a, ctx));
    // Subbases used in expressions must be pure ("fully functional
    // interpretation" per the paper): fire on a scratch copy and reject any
    // state change or generated event.
    RuleEnv scratch = *ctx.env;
    FireResult r = fire(scratch, *rb, args);
    if (!(scratch == *ctx.env))
      throw EvalError("subbase '" + e.name + "' modified state inside an "
                      "expression",
                      e.line);
    if (!r.events.empty())
      throw EvalError("subbase '" + e.name + "' emitted events inside an "
                      "expression",
                      e.line);
    if (!r.returned)
      throw EvalError("subbase '" + e.name + "' did not RETURN a value",
                      e.line);
    return *r.returned;
  }
  throw EvalError("unknown name '" + e.name + "'", e.line);
}

Value Interpreter::eval_builtin(const Expr& e, const std::vector<Value>& args,
                                Ctx&) {
  auto need = [&](std::size_t n) {
    if (args.size() != n)
      throw EvalError("builtin '" + e.name + "' expects " + std::to_string(n) +
                          " arguments",
                      e.line);
  };
  if (e.name == "abs") {
    need(1);
    const auto v = want_int(args[0], e.line, "abs argument");
    return Value::make_int(v < 0 ? -v : v);
  }
  if (e.name == "signum") {
    need(1);
    const auto v = want_int(args[0], e.line, "signum argument");
    return Value::make_int(v < 0 ? -1 : (v > 0 ? 1 : 0));
  }
  if (e.name == "min" || e.name == "max") {
    if (args.empty())
      throw EvalError("builtin '" + e.name + "' needs arguments", e.line);
    std::int64_t acc = want_int(args[0], e.line, "min/max argument");
    for (std::size_t i = 1; i < args.size(); ++i) {
      const auto v = want_int(args[i], e.line, "min/max argument");
      acc = e.name == "min" ? std::min(acc, v) : std::max(acc, v);
    }
    return Value::make_int(acc);
  }
  if (e.name == "card") {
    need(1);
    return Value::make_int(static_cast<std::int64_t>(
        want_set(args[0], e.line, "card argument").size()));
  }
  if (e.name == "xor") {
    need(2);
    return Value::make_int(want_int(args[0], e.line, "xor argument") ^
                           want_int(args[1], e.line, "xor argument"));
  }
  if (e.name == "bitand") {
    need(2);
    return Value::make_int(want_int(args[0], e.line, "bitand argument") &
                           want_int(args[1], e.line, "bitand argument"));
  }
  if (e.name == "bit") {
    need(2);
    const auto x = want_int(args[0], e.line, "bit argument");
    const auto i = want_int(args[1], e.line, "bit index");
    if (i < 0 || i > 62) throw EvalError("bit index out of range", e.line);
    return Value::make_int((x >> i) & 1);
  }
  if (e.name == "popcount") {
    need(1);
    const auto x = want_int(args[0], e.line, "popcount argument");
    if (x < 0) throw EvalError("popcount of negative value", e.line);
    return Value::make_int(
        std::popcount(static_cast<std::uint64_t>(x)));
  }
  if (e.name == "meshdist") {
    need(4);
    const auto x1 = want_int(args[0], e.line, "meshdist argument");
    const auto y1 = want_int(args[1], e.line, "meshdist argument");
    const auto x2 = want_int(args[2], e.line, "meshdist argument");
    const auto y2 = want_int(args[3], e.line, "meshdist argument");
    return Value::make_int(std::abs(x1 - x2) + std::abs(y1 - y2));
  }
  throw EvalError("unknown builtin '" + e.name + "'", e.line);
}

Value Interpreter::eval_binary(const Expr& e, Ctx& ctx) {
  // Short-circuit boolean operators.
  if (e.bin_op == BinOp::And) {
    if (!eval(e.lhs, ctx).as_bool()) return Value::make_bool(false);
    return Value::make_bool(eval(e.rhs, ctx).as_bool());
  }
  if (e.bin_op == BinOp::Or) {
    if (eval(e.lhs, ctx).as_bool()) return Value::make_bool(true);
    return Value::make_bool(eval(e.rhs, ctx).as_bool());
  }

  const Value a = eval(e.lhs, ctx);
  const Value b = eval(e.rhs, ctx);

  switch (e.bin_op) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod: {
      const auto x = want_int(a, e.line, "arithmetic operand");
      const auto y = want_int(b, e.line, "arithmetic operand");
      switch (e.bin_op) {
        case BinOp::Add: return Value::make_int(x + y);
        case BinOp::Sub: return Value::make_int(x - y);
        case BinOp::Mul: return Value::make_int(x * y);
        case BinOp::Div:
          if (y == 0) throw EvalError("division by zero", e.line);
          return Value::make_int(x / y);
        case BinOp::Mod:
          if (y == 0) throw EvalError("modulo by zero", e.line);
          return Value::make_int(((x % y) + y) % y);
        default: break;
      }
      FR_UNREACHABLE("arith");
    }
    case BinOp::Eq:
      return Value::make_bool(a == b);
    case BinOp::Ne:
      return Value::make_bool(!(a == b));
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      // Symbols compare by interning order, which is declaration order —
      // the "finite lattice" order of an enum like the ROUTE_C fault states.
      std::int64_t x, y;
      if (a.is_sym() && b.is_sym()) {
        x = a.as_sym();
        y = b.as_sym();
      } else {
        x = want_int(a, e.line, "comparison operand");
        y = want_int(b, e.line, "comparison operand");
      }
      switch (e.bin_op) {
        case BinOp::Lt: return Value::make_bool(x < y);
        case BinOp::Le: return Value::make_bool(x <= y);
        case BinOp::Gt: return Value::make_bool(x > y);
        case BinOp::Ge: return Value::make_bool(x >= y);
        default: break;
      }
      FR_UNREACHABLE("cmp");
    }
    case BinOp::In:
      return Value::make_bool(
          want_set(b, e.line, "IN right-hand side").contains(a));
    case BinOp::Union:
      return Value::make_set(want_set(a, e.line, "UNION operand")
                                 .set_union(want_set(b, e.line, "UNION operand")));
    case BinOp::Intersect:
      return Value::make_set(
          want_set(a, e.line, "INTERSECT operand")
              .set_intersect(want_set(b, e.line, "INTERSECT operand")));
    case BinOp::SetMinus:
      return Value::make_set(
          want_set(a, e.line, "SETMINUS operand")
              .set_minus(want_set(b, e.line, "SETMINUS operand")));
    case BinOp::And:
    case BinOp::Or:
      break;
  }
  FR_UNREACHABLE("bad binary op");
}

}  // namespace flexrouter::rules
