#include "ruleengine/hwcost.hpp"

#include <iomanip>
#include <sstream>

namespace flexrouter::rules {

ProgramReport report_program(const Program& prog, const CompileOptions& opts,
                             const Program* nft) {
  ProgramReport rep;
  rep.program = prog.name;
  Interpreter interp(prog);

  for (const RuleBase& rb : prog.rule_bases) {
    const CompiledRuleBase c = compile_rule_base(prog, rb, interp, opts);
    RuleBaseReport row;
    row.name = rb.name;
    row.entries = c.table_entries();
    row.width_bits = c.table_width_bits();
    row.table_bits = c.table_bits();
    row.num_rules = static_cast<int>(rb.rules.size());
    row.num_conclusions = c.num_distinct_conclusions() - 1;
    row.fcfbs = c.all_fcfbs().to_string();
    row.decision_delay = c.decision_delay_units();
    row.in_nft = nft != nullptr && nft->find_rule_base(rb.name) != nullptr;
    rep.total_table_bits += row.table_bits;
    rep.rule_bases.push_back(std::move(row));
  }

  for (const VarDecl& v : prog.variables) {
    RegisterReport row;
    row.name = v.name;
    row.element_bits = v.domain.bits();
    row.array_size = v.is_array() ? v.array_size : 1;
    row.total_bits = v.register_bits();
    row.in_nft = nft != nullptr && nft->find_variable(v.name) != nullptr;
    rep.total_register_bits += row.total_bits;
    rep.registers.push_back(std::move(row));
  }
  rep.num_registers = static_cast<int>(rep.registers.size());

  if (nft != nullptr) {
    rep.ft_register_bits =
        rep.total_register_bits - nft->total_register_bits();
    Interpreter nft_interp(*nft);
    std::int64_t nft_table_bits = 0;
    for (const RuleBase& rb : nft->rule_bases)
      nft_table_bits +=
          compile_rule_base(*nft, rb, nft_interp, opts).table_bits();
    rep.ft_table_bits = rep.total_table_bits - nft_table_bits;
  }
  return rep;
}

std::string render_report(const ProgramReport& rep) {
  std::ostringstream os;
  os << "program: " << rep.program << "\n";
  os << std::left << std::setw(28) << "rule base" << std::right
     << std::setw(10) << "entries" << std::setw(7) << "width" << std::setw(10)
     << "bits" << std::setw(6) << "nft"
     << "  FCFBs\n";
  for (const RuleBaseReport& r : rep.rule_bases) {
    os << std::left << std::setw(28) << r.name << std::right << std::setw(10)
       << r.entries << std::setw(7) << r.width_bits << std::setw(10)
       << r.table_bits << std::setw(6) << (r.in_nft ? "*" : "") << "  "
       << r.fcfbs << "\n";
  }
  os << "total rule table bits: " << rep.total_table_bits << "\n";
  os << "registers: " << rep.num_registers << " holding "
     << rep.total_register_bits << " bits";
  if (rep.ft_register_bits > 0)
    os << " (" << rep.ft_register_bits << " bits account for fault tolerance)";
  os << "\n";
  for (const RegisterReport& r : rep.registers) {
    os << "  " << std::left << std::setw(26) << r.name << std::right
       << std::setw(4) << r.element_bits << " bit";
    if (r.array_size > 1) os << " x " << r.array_size;
    os << " = " << r.total_bits << (r.in_nft ? "  (nft)" : "") << "\n";
  }
  return os.str();
}

}  // namespace flexrouter::rules
