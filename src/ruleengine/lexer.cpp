#include "ruleengine/lexer.hpp"

#include <cctype>
#include <map>
#include <stdexcept>

namespace flexrouter::rules {

namespace {

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

const std::map<std::string, Tok>& keyword_table() {
  static const std::map<std::string, Tok> table = {
      {"program", Tok::KwProgram},   {"constant", Tok::KwConstant},
      {"variable", Tok::KwVariable}, {"input", Tok::KwInput},
      {"on", Tok::KwOn},             {"end", Tok::KwEnd},
      {"if", Tok::KwIf},             {"then", Tok::KwThen},
      {"return", Tok::KwReturn},     {"returns", Tok::KwReturns},
      {"in", Tok::KwIn},             {"to", Tok::KwTo},
      {"init", Tok::KwInit},         {"exists", Tok::KwExists},
      {"forall", Tok::KwForall},     {"and", Tok::KwAnd},
      {"or", Tok::KwOr},             {"not", Tok::KwNot},
      {"mod", Tok::KwMod},           {"union", Tok::KwUnion},
      {"intersect", Tok::KwIntersect}, {"setminus", Tok::KwSetminus},
      {"set", Tok::KwSet},           {"of", Tok::KwOf},
  };
  return table;
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const auto n = src.size();

  auto push = [&](Tok kind) { out.push_back({kind, "", 0, line}); };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment (but "<-" and binary minus handled below)
    if (c == '-' && i + 1 < n && src[i + 1] == '-') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) {
        v = v * 10 + (src[i] - '0');
        ++i;
      }
      out.push_back({Tok::Int, "", v, line});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ident.push_back(src[i]);
        ++i;
      }
      const auto& kws = keyword_table();
      const auto it = kws.find(to_lower(ident));
      if (it != kws.end()) {
        out.push_back({it->second, ident, 0, line});
      } else {
        out.push_back({Tok::Ident, ident, 0, line});
      }
      continue;
    }
    switch (c) {
      case '(': push(Tok::LParen); ++i; break;
      case ')': push(Tok::RParen); ++i; break;
      case '{': push(Tok::LBrace); ++i; break;
      case '}': push(Tok::RBrace); ++i; break;
      case '[': push(Tok::LBracket); ++i; break;
      case ']': push(Tok::RBracket); ++i; break;
      case ',': push(Tok::Comma); ++i; break;
      case ':': push(Tok::Colon); ++i; break;
      case ';': push(Tok::Semi); ++i; break;
      case '!': push(Tok::Bang); ++i; break;
      case '+': push(Tok::Plus); ++i; break;
      case '*': push(Tok::Star); ++i; break;
      case '/': push(Tok::Slash); ++i; break;
      case '=': push(Tok::Eq); ++i; break;
      case '-':
        push(Tok::Minus);
        ++i;
        break;
      case '<':
        if (i + 1 < n && src[i + 1] == '-') {
          push(Tok::Assign);
          i += 2;
        } else if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::Le);
          i += 2;
        } else if (i + 1 < n && src[i + 1] == '>') {
          push(Tok::Ne);
          i += 2;
        } else {
          push(Tok::Lt);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::Ge);
          i += 2;
        } else {
          push(Tok::Gt);
          ++i;
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         line);
    }
  }
  out.push_back({Tok::End, "", 0, line});
  return out;
}

const char* to_string(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer";
    case Tok::KwProgram: return "PROGRAM";
    case Tok::KwConstant: return "CONSTANT";
    case Tok::KwVariable: return "VARIABLE";
    case Tok::KwInput: return "INPUT";
    case Tok::KwOn: return "ON";
    case Tok::KwEnd: return "END";
    case Tok::KwIf: return "IF";
    case Tok::KwThen: return "THEN";
    case Tok::KwReturn: return "RETURN";
    case Tok::KwReturns: return "RETURNS";
    case Tok::KwIn: return "IN";
    case Tok::KwTo: return "TO";
    case Tok::KwInit: return "INIT";
    case Tok::KwExists: return "EXISTS";
    case Tok::KwForall: return "FORALL";
    case Tok::KwAnd: return "AND";
    case Tok::KwOr: return "OR";
    case Tok::KwNot: return "NOT";
    case Tok::KwMod: return "MOD";
    case Tok::KwUnion: return "UNION";
    case Tok::KwIntersect: return "INTERSECT";
    case Tok::KwSetminus: return "SETMINUS";
    case Tok::KwSet: return "SET";
    case Tok::KwOf: return "OF";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Colon: return ":";
    case Tok::Semi: return ";";
    case Tok::Bang: return "!";
    case Tok::Assign: return "<-";
    case Tok::Eq: return "=";
    case Tok::Ne: return "<>";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
  }
  return "?";
}

}  // namespace flexrouter::rules
