#include "ruleengine/fcfb.hpp"

#include <sstream>

namespace flexrouter::rules {

const char* to_string(FcfbKind kind) {
  switch (kind) {
    case FcfbKind::LogicalUnit: return "logical unit";
    case FcfbKind::ZeroCheck: return "zero check";
    case FcfbKind::CompareConst: return "compare with constant";
    case FcfbKind::MagnitudeComparator: return "magnitude comparator";
    case FcfbKind::EqualityCheck: return "equality check";
    case FcfbKind::MembershipTest: return "membership testing";
    case FcfbKind::SetUnion: return "set union";
    case FcfbKind::SetIntersect: return "set intersection";
    case FcfbKind::SetDifference: return "set difference";
    case FcfbKind::MinimumSelection: return "minimum selection";
    case FcfbKind::MaximumSelection: return "maximum selection";
    case FcfbKind::Incrementer: return "incrementer";
    case FcfbKind::Decrementer: return "decrementer";
    case FcfbKind::ConditionalIncrement: return "conditional increment";
    case FcfbKind::Adder: return "adder";
    case FcfbKind::Subtractor: return "subtractor";
    case FcfbKind::Multiplier: return "multiplier";
    case FcfbKind::MeshDistance: return "mesh distance computation";
    case FcfbKind::FiniteLattice: return "computation in a finite lattice";
    case FcfbKind::PriorityDetect: return "priority detection";
    case FcfbKind::InputNegate: return "input negate";
    case FcfbKind::BitExtract: return "bit extraction";
    case FcfbKind::XorUnit: return "xor unit";
    case FcfbKind::Popcount: return "population count";
  }
  return "?";
}

FcfbCost cost_of(FcfbKind kind) {
  switch (kind) {
    case FcfbKind::LogicalUnit: return {1.0, 1.0};
    case FcfbKind::ZeroCheck: return {1.0, 1.0};
    case FcfbKind::CompareConst: return {2.0, 1.5};
    case FcfbKind::MagnitudeComparator: return {4.0, 2.0};
    case FcfbKind::EqualityCheck: return {2.0, 1.0};
    case FcfbKind::MembershipTest: return {2.0, 1.0};
    case FcfbKind::SetUnion: return {1.5, 1.0};
    case FcfbKind::SetIntersect: return {1.5, 1.0};
    case FcfbKind::SetDifference: return {1.5, 1.0};
    case FcfbKind::MinimumSelection: return {8.0, 3.0};
    case FcfbKind::MaximumSelection: return {8.0, 3.0};
    case FcfbKind::Incrementer: return {2.0, 1.5};
    case FcfbKind::Decrementer: return {2.0, 1.5};
    case FcfbKind::ConditionalIncrement: return {2.5, 1.5};
    case FcfbKind::Adder: return {4.0, 2.0};
    case FcfbKind::Subtractor: return {4.0, 2.0};
    case FcfbKind::Multiplier: return {16.0, 4.0};
    case FcfbKind::MeshDistance: return {8.0, 3.0};
    case FcfbKind::FiniteLattice: return {3.0, 1.5};
    case FcfbKind::PriorityDetect: return {2.0, 1.5};
    case FcfbKind::InputNegate: return {0.5, 0.5};
    case FcfbKind::BitExtract: return {0.5, 0.5};
    case FcfbKind::XorUnit: return {1.0, 1.0};
    case FcfbKind::Popcount: return {4.0, 2.0};
  }
  return {1.0, 1.0};
}

void FcfbInventory::add(FcfbKind kind, int count) {
  FR_REQUIRE(count >= 0);
  if (count > 0) counts_[kind] += count;
}

void FcfbInventory::merge(const FcfbInventory& other) {
  for (const auto& [k, c] : other.counts_) counts_[k] += c;
}

int FcfbInventory::count(FcfbKind kind) const {
  const auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

int FcfbInventory::total_instances() const {
  int total = 0;
  for (const auto& [_, c] : counts_) total += c;
  return total;
}

double FcfbInventory::total_area() const {
  double area = 0.0;
  for (const auto& [k, c] : counts_) area += cost_of(k).area * c;
  return area;
}

double FcfbInventory::max_delay() const {
  double d = 0.0;
  for (const auto& [k, _] : counts_) d = std::max(d, cost_of(k).delay);
  return d;
}

std::string FcfbInventory::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, c] : counts_) {
    if (!first) os << ", ";
    first = false;
    if (c > 1) os << c << " x ";
    os << rules::to_string(k);
  }
  if (first) os << "no FCFB needed";
  return os.str();
}

namespace {

/// AST walker classifying operator occurrences into FCFB kinds.
class Inference {
 public:
  explicit Inference(const Program& prog) : prog_(&prog) {}

  FcfbInventory result() const {
    FcfbInventory inv;
    for (const auto& [key, kind] : seen_) {
      (void)key;
      inv.add(kind, 1);
    }
    return inv;
  }

  void scan_expr(const ExprPtr& e, bool in_quantifier = false) {
    if (!e) return;
    switch (e->kind) {
      case Expr::Kind::IntLit:
      case Expr::Kind::SymLit:
        return;
      case Expr::Kind::SetLit:
        for (const auto& a : e->args) scan_expr(a, in_quantifier);
        return;
      case Expr::Kind::Ref:
        scan_ref(*e, in_quantifier);
        return;
      case Expr::Kind::Unary:
        if (e->un_op == UnOp::Not) note(e, FcfbKind::InputNegate);
        scan_expr(e->lhs, in_quantifier);
        return;
      case Expr::Kind::Binary:
        scan_binary(*e, in_quantifier);
        return;
      case Expr::Kind::Quantified:
        // A quantifier over comparisons is the paper's minimum-selection /
        // priority-detection pattern: replicated comparators + selection.
        scan_expr(e->lhs, in_quantifier);
        if (contains_order_compare(e->rhs)) {
          note(e, FcfbKind::MinimumSelection);
        } else {
          note(e, FcfbKind::PriorityDetect);
        }
        scan_expr(e->rhs, true);
        return;
    }
  }

  void scan_cmd(const Cmd& c) {
    // Boolean structure inside conclusions runs on FCFBs; in premises it is
    // absorbed by the RBR kernel (the rule skeleton), so the flag is only
    // set while scanning commands.
    conclusion_mode_ = true;
    scan_cmd_impl(c);
    conclusion_mode_ = false;
  }

 private:
  void scan_cmd_impl(const Cmd& c) {
    switch (c.kind) {
      case Cmd::Kind::Assign: {
        for (const auto& a : c.args) scan_expr(a);
        scan_assign_rhs(c);
        // Assigning into a symbol-lattice variable from premises over states
        // is the paper's "computation in a finite lattice".
        const VarDecl* decl = prog_->find_variable(c.target);
        if (decl != nullptr &&
            decl->domain.kind() == Domain::Kind::Symbols &&
            c.value->kind != Expr::Kind::SymLit) {
          note_key("lattice:" + c.target, FcfbKind::FiniteLattice);
        }
        break;
      }
      case Cmd::Kind::Return:
        scan_expr(c.value);
        break;
      case Cmd::Kind::Emit:
        for (const auto& a : c.args) scan_expr(a);
        break;
      case Cmd::Kind::ForAll:
        scan_expr(c.domain);
        for (const Cmd& b : c.body) scan_cmd_impl(b);
        break;
    }
  }

  void scan_assign_rhs(const Cmd& c) {
    const ExprPtr& v = c.value;
    // Counter idioms: x <- x + 1 / x <- x - 1 become (conditional)
    // incrementers/decrementers, not general adders.
    if (v->kind == Expr::Kind::Binary &&
        (v->bin_op == BinOp::Add || v->bin_op == BinOp::Sub) &&
        v->rhs->kind == Expr::Kind::IntLit && v->rhs->int_val == 1 &&
        v->lhs->kind == Expr::Kind::Ref && v->lhs->name == c.target) {
      note_key("ctr:" + c.target,
               v->bin_op == BinOp::Add ? FcfbKind::ConditionalIncrement
                                       : FcfbKind::Decrementer);
      return;
    }
    scan_expr(v);
  }

  void scan_ref(const Expr& e, bool in_quantifier) {
    for (const auto& a : e.args) scan_expr(a, in_quantifier);
    if (e.name == "min") note(&e, FcfbKind::MinimumSelection);
    else if (e.name == "max") note(&e, FcfbKind::MaximumSelection);
    else if (e.name == "abs") note(&e, FcfbKind::Subtractor);
    else if (e.name == "meshdist") note(&e, FcfbKind::MeshDistance);
    else if (e.name == "xor" || e.name == "bitand") note(&e, FcfbKind::XorUnit);
    else if (e.name == "bit") note(&e, FcfbKind::BitExtract);
    else if (e.name == "popcount") note(&e, FcfbKind::Popcount);
    else if (e.name == "card") note(&e, FcfbKind::Popcount);
    else if (e.name == "signum") note(&e, FcfbKind::CompareConst);
  }

  void scan_binary(const Expr& e, bool in_quantifier) {
    scan_expr(e.lhs, in_quantifier);
    scan_expr(e.rhs, in_quantifier);
    switch (e.bin_op) {
      case BinOp::And:
      case BinOp::Or:
        if (conclusion_mode_) note(&e, FcfbKind::LogicalUnit);
        return;
      case BinOp::Eq:
      case BinOp::Ne:
        if (is_zero(e.rhs) || is_zero(e.lhs)) {
          note(&e, FcfbKind::ZeroCheck);
        } else if (is_const(e.rhs) || is_const(e.lhs)) {
          note(&e, is_symbolic(e) ? FcfbKind::EqualityCheck
                                  : FcfbKind::CompareConst);
        } else {
          note(&e, is_symbolic(e) ? FcfbKind::EqualityCheck
                                  : FcfbKind::MagnitudeComparator);
        }
        return;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (is_const(e.rhs) || is_const(e.lhs)) {
          note(&e, FcfbKind::CompareConst);
        } else {
          note(&e, FcfbKind::MagnitudeComparator);
        }
        return;
      case BinOp::In:
        note(&e, FcfbKind::MembershipTest);
        return;
      case BinOp::Union:
        note(&e, FcfbKind::SetUnion);
        return;
      case BinOp::Intersect:
        note(&e, FcfbKind::SetIntersect);
        return;
      case BinOp::SetMinus:
        note(&e, FcfbKind::SetDifference);
        return;
      case BinOp::Add:
        if (is_one(e.rhs) || is_one(e.lhs)) note(&e, FcfbKind::Incrementer);
        else note(&e, FcfbKind::Adder);
        return;
      case BinOp::Sub:
        if (is_one(e.rhs)) note(&e, FcfbKind::Decrementer);
        else note(&e, FcfbKind::Subtractor);
        return;
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Mod:
        note(&e, FcfbKind::Multiplier);
        return;
    }
    (void)in_quantifier;
  }

  static bool is_zero(const ExprPtr& e) {
    return e && e->kind == Expr::Kind::IntLit && e->int_val == 0;
  }
  static bool is_one(const ExprPtr& e) {
    return e && e->kind == Expr::Kind::IntLit && e->int_val == 1;
  }
  bool is_const(const ExprPtr& e) const {
    if (!e) return false;
    if (e->kind == Expr::Kind::IntLit || e->kind == Expr::Kind::SymLit)
      return true;
    if (e->kind == Expr::Kind::SetLit) {
      for (const auto& a : e->args)
        if (!is_const(a)) return false;
      return true;
    }
    if (e->kind == Expr::Kind::Ref && e->args.empty())
      return prog_->constants.count(e->name) > 0;
    return false;
  }
  static bool is_symbolic(const Expr& e) {
    return (e.lhs && e.lhs->kind == Expr::Kind::SymLit) ||
           (e.rhs && e.rhs->kind == Expr::Kind::SymLit);
  }
  static bool contains_order_compare(const ExprPtr& e) {
    if (!e) return false;
    if (e->kind == Expr::Kind::Binary &&
        (e->bin_op == BinOp::Lt || e->bin_op == BinOp::Le ||
         e->bin_op == BinOp::Gt || e->bin_op == BinOp::Ge))
      return true;
    return contains_order_compare(e->lhs) || contains_order_compare(e->rhs) ||
           (e->kind == Expr::Kind::Quantified &&
            contains_order_compare(e->rhs));
  }

  /// Structural dedupe: identical expressions share one hardware instance
  /// (the FCFB pool is shared between rules).
  void note(const Expr* e, FcfbKind kind) {
    note_key(to_string(*e, prog_->syms), kind);
  }
  void note(const ExprPtr& e, FcfbKind kind) { note(e.get(), kind); }
  void note_key(const std::string& key, FcfbKind kind) {
    seen_.emplace(key, kind);
  }

  const Program* prog_;
  std::map<std::string, FcfbKind> seen_;
  bool conclusion_mode_ = false;
};

}  // namespace

FcfbInventory infer_premise_fcfbs(const Program& prog, const RuleBase& rb) {
  Inference inf(prog);
  for (const Rule& r : rb.rules) inf.scan_expr(r.premise);
  return inf.result();
}

FcfbInventory infer_conclusion_fcfbs(const Program& prog, const RuleBase& rb) {
  Inference inf(prog);
  for (const Rule& r : rb.rules)
    for (const Cmd& c : r.conclusion) inf.scan_cmd(c);
  return inf.result();
}

FcfbInventory infer_expr_fcfbs(const Program& prog,
                               const std::vector<ExprPtr>& exprs) {
  Inference inf(prog);
  for (const ExprPtr& e : exprs) inf.scan_expr(e);
  return inf.result();
}

FcfbInventory infer_fcfbs(const Program& prog, const RuleBase& rb) {
  Inference inf(prog);
  for (const Rule& r : rb.rules) {
    inf.scan_expr(r.premise);
    for (const Cmd& c : r.conclusion) inf.scan_cmd(c);
  }
  return inf.result();
}

}  // namespace flexrouter::rules
