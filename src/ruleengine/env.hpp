// Runtime register file of a rule program: one slot per VARIABLE element,
// domain-checked on every write. This models the router's register block —
// the "state" half of the algorithm = state + rules decomposition.
#pragma once

#include <map>
#include <vector>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

class RuleEnv {
 public:
  explicit RuleEnv(const Program& prog) : prog_(&prog) { reset(); }

  /// Reinitialise all registers to their INIT values (or the first domain
  /// value when none is declared).
  void reset() {
    storage_.clear();
    for (const VarDecl& v : prog_->variables) {
      const Value init = v.init.value_or(v.domain.value_at(0));
      const auto count =
          static_cast<std::size_t>(v.is_array() ? v.array_size : 1);
      storage_[v.name] = std::vector<Value>(count, init);
    }
  }

  const Value& get(const std::string& name, std::int64_t index = 0) const {
    const auto [decl, slot] = locate(name, index);
    (void)decl;
    return slot->at(static_cast<std::size_t>(index));
  }

  void set(const std::string& name, std::int64_t index, Value value) {
    const auto [decl, slot] = locate(name, index);
    FR_REQUIRE_MSG(decl->domain.contains(value),
                   "assignment outside domain of '" + name + "'");
    (*const_cast<std::vector<Value>*>(slot))[static_cast<std::size_t>(index)] =
        std::move(value);
  }

  const Program& program() const { return *prog_; }

  friend bool operator==(const RuleEnv& a, const RuleEnv& b) {
    return a.storage_ == b.storage_;
  }

 private:
  std::pair<const VarDecl*, const std::vector<Value>*> locate(
      const std::string& name, std::int64_t index) const {
    const VarDecl* decl = prog_->find_variable(name);
    FR_REQUIRE_MSG(decl != nullptr, "unknown variable '" + name + "'");
    const auto it = storage_.find(name);
    FR_ASSERT(it != storage_.end());
    const auto count = decl->is_array() ? decl->array_size : 1;
    FR_REQUIRE_MSG(index >= 0 && index < count,
                   "index out of range for '" + name + "'");
    return {decl, &it->second};
  }

  const Program* prog_;
  std::map<std::string, std::vector<Value>> storage_;
};

}  // namespace flexrouter::rules
