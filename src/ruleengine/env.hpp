// Runtime register file of a rule program: one slot per VARIABLE element,
// domain-checked on every write. This models the router's register block —
// the "state" half of the algorithm = state + rules decomposition.
//
// Besides the name-keyed interface used by the interpreter and tests, the
// register file exposes an index-keyed fast path (variable id = position in
// Program::variables) used by the bytecode VM, plus a monotonically
// increasing version counter that advances on every write — the
// rule-register half of the decision-cache invalidation contract.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

class RuleEnv {
 public:
  explicit RuleEnv(const Program& prog) : prog_(&prog) { reset(); }

  RuleEnv(const RuleEnv& o)
      : prog_(o.prog_), storage_(o.storage_), version_(o.version_) {
    rebuild_slots();
  }
  RuleEnv& operator=(const RuleEnv& o) {
    prog_ = o.prog_;
    storage_ = o.storage_;
    version_ = o.version_;
    rebuild_slots();
    return *this;
  }

  /// Reinitialise all registers to their INIT values (or the first domain
  /// value when none is declared). Storage vectors are reassigned in place,
  /// so slot pointers handed out before stay valid.
  void reset() {
    for (const VarDecl& v : prog_->variables) {
      const Value init = v.init.value_or(v.domain.value_at(0));
      const auto count =
          static_cast<std::size_t>(v.is_array() ? v.array_size : 1);
      storage_[v.name].assign(count, init);
    }
    if (slots_.size() != prog_->variables.size()) rebuild_slots();
    ++version_;
  }

  const Value& get(const std::string& name, std::int64_t index = 0) const {
    const auto [decl, slot] = locate(name, index);
    (void)decl;
    return slot->at(static_cast<std::size_t>(index));
  }

  void set(const std::string& name, std::int64_t index, Value value) {
    const auto [decl, slot] = locate(name, index);
    FR_REQUIRE_MSG(decl->domain.contains(value),
                   "assignment outside domain of '" + name + "'");
    (*const_cast<std::vector<Value>*>(slot))[static_cast<std::size_t>(index)] =
        std::move(value);
    ++version_;
  }

  /// Index-keyed access: `var_id` is the position in Program::variables.
  /// Semantics (checks, messages) match the name-keyed interface exactly.
  const Value& get_by_id(std::int32_t var_id, std::int64_t index) const {
    const VarDecl& d = prog_->variables[static_cast<std::size_t>(var_id)];
    FR_REQUIRE_MSG(index >= 0 && index < (d.is_array() ? d.array_size : 1),
                   "index out of range for '" + d.name + "'");
    return (*slots_[static_cast<std::size_t>(var_id)])
        [static_cast<std::size_t>(index)];
  }

  void set_by_id(std::int32_t var_id, std::int64_t index, Value value) {
    const VarDecl& d = prog_->variables[static_cast<std::size_t>(var_id)];
    FR_REQUIRE_MSG(index >= 0 && index < (d.is_array() ? d.array_size : 1),
                   "index out of range for '" + d.name + "'");
    FR_REQUIRE_MSG(d.domain.contains(value),
                   "assignment outside domain of '" + d.name + "'");
    (*slots_[static_cast<std::size_t>(var_id)])
        [static_cast<std::size_t>(index)] = std::move(value);
    ++version_;
  }

  /// Advances on every committed write (set/set_by_id/reset). Decision
  /// caches compare this to detect rule-register changes.
  std::uint64_t version() const { return version_; }

  const Program& program() const { return *prog_; }

  friend bool operator==(const RuleEnv& a, const RuleEnv& b) {
    return a.storage_ == b.storage_;
  }

 private:
  void rebuild_slots() {
    slots_.clear();
    slots_.reserve(prog_->variables.size());
    for (const VarDecl& v : prog_->variables) slots_.push_back(&storage_[v.name]);
  }

  std::pair<const VarDecl*, const std::vector<Value>*> locate(
      const std::string& name, std::int64_t index) const {
    const VarDecl* decl = prog_->find_variable(name);
    FR_REQUIRE_MSG(decl != nullptr, "unknown variable '" + name + "'");
    const auto it = storage_.find(name);
    FR_ASSERT(it != storage_.end());
    const auto count = decl->is_array() ? decl->array_size : 1;
    FR_REQUIRE_MSG(index >= 0 && index < count,
                   "index out of range for '" + name + "'");
    return {decl, &it->second};
  }

  const Program* prog_;
  std::map<std::string, std::vector<Value>> storage_;
  std::vector<std::vector<Value>*> slots_;  // parallel to prog_->variables
  std::uint64_t version_ = 0;
};

}  // namespace flexrouter::rules
