// Static semantic validation of rule programs — the checks the "Rule
// Compiler" tool of Section 4.2 performs before generating configuration
// data: name resolution, kind (type) consistency of every expression,
// boolean premises, assignment compatibility, RETURN discipline, event
// arity consistency, and quantifier domain sanity. Parsing guarantees
// syntax; this pass guarantees a program cannot fail with a kind error at
// interpretation time (dynamic *domain-range* violations remain runtime
// contracts, as in the hardware).
#pragma once

#include <string>
#include <vector>

#include "ruleengine/ast.hpp"

namespace flexrouter::rules {

struct Diagnostic {
  int line = 0;
  std::string message;

  std::string to_string() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

/// Validate `prog`; returns all diagnostics (empty = valid).
std::vector<Diagnostic> validate_program(const Program& prog);

/// Convenience: throws ContractViolation listing every diagnostic.
void require_valid(const Program& prog);

}  // namespace flexrouter::rules
