// Reference interpreter for rule programs.
//
// Semantics (Section 4.2): on an event, premises of all rules in the bound
// rule base are conceptually checked in parallel; exactly one applicable
// rule fires (this implementation deterministically picks the first in
// source order, which the paper explicitly leaves to the implementation).
// All commands of the conclusion execute "in parallel": every right-hand
// side is evaluated against the pre-state, then all assignments commit
// atomically. Rule execution is atomic; generated events (`!event(...)`)
// are handed to the caller (the event manager) for asynchronous processing.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ruleengine/ast.hpp"
#include "ruleengine/env.hpp"

namespace flexrouter::rules {

struct EmittedEvent {
  std::string name;
  std::vector<Value> args;
  /// Pre-resolved dispatch, filled by the bytecode VM: id of the event in
  /// BytecodeProgram::events (-1 when produced by the interpreter) and the
  /// target rule-base index (-1 host-bound, -2 unresolved: look up by name).
  std::int32_t name_id = -1;
  std::int32_t target_rb = -2;
};

struct FireResult {
  /// Index of the rule that fired; -1 if no premise applied.
  int rule_index = -1;
  std::optional<Value> returned;
  std::vector<EmittedEvent> events;

  bool applied() const { return rule_index >= 0; }
};

/// Host-supplied resolver for INPUT signals.
using InputFn =
    std::function<Value(const std::string&, const std::vector<Value>&)>;

/// Optional expression override used by the rule compiler: called on every
/// Ref/atom before normal resolution; a non-nullopt result short-circuits.
using ResolveFn = std::function<std::optional<Value>(const Expr&)>;

/// Thrown on dynamic semantic errors (type mismatch, unknown name, write
/// conflicts within one conclusion, ...).
class EvalError : public std::runtime_error {
 public:
  EvalError(const std::string& msg, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg) {}
};

class Interpreter {
 public:
  explicit Interpreter(const Program& prog) : prog_(&prog) {}

  void set_input_provider(InputFn fn) { inputs_ = std::move(fn); }
  const Program& program() const { return *prog_; }

  /// Fire a rule base: bind `args` to its parameters, select the first
  /// applicable rule, execute its conclusion against `env`.
  FireResult fire(RuleEnv& env, const RuleBase& rb,
                  const std::vector<Value>& args);
  FireResult fire(RuleEnv& env, const std::string& rule_base,
                  const std::vector<Value>& args);

  /// Evaluate `premise` of rule `rule_index` only (no side effects).
  bool premise_holds(const RuleEnv& env, const RuleBase& rb, int rule_index,
                     const std::vector<Value>& args);

  /// Evaluate an arbitrary expression with parameter bindings against env.
  /// Exposed for the compiler (axis evaluation) and tests.
  Value eval_expr(const RuleEnv& env, const ExprPtr& e,
                  const std::vector<std::pair<std::string, Value>>& bindings,
                  const ResolveFn& override = nullptr);

  /// Constant-fold: evaluate using only literals and program constants.
  /// Returns nullopt if the expression touches state, inputs or parameters.
  std::optional<Value> try_const_eval(const ExprPtr& e) const;

  /// Compile-time evaluation for the rule compiler: `override` must resolve
  /// every stateful leaf (feature axes); reaching unresolved state or inputs
  /// throws EvalError.
  Value eval_compiletime(const ExprPtr& e, const ResolveFn& override);

  /// Execute only the conclusion of rule `rule_index` (the table already
  /// selected it). Used by CompiledRuleBase::fire; counts as one rule
  /// interpretation.
  FireResult exec_conclusion(RuleEnv& env, const RuleBase& rb, int rule_index,
                             const std::vector<Value>& args);

  /// Cumulative number of rule-base firings (one per fire() that found an
  /// applicable rule or not — every table lookup counts, matching the
  /// paper's "rule interpretations per message" metric).
  std::int64_t total_fires() const { return total_fires_; }
  void reset_counters() { total_fires_ = 0; }

 private:
  struct Ctx {
    const RuleEnv* env = nullptr;           // nullptr forbids state reads
    std::vector<std::pair<std::string, Value>> bindings;
    const ResolveFn* override = nullptr;
    bool allow_inputs = true;
    int depth = 0;
  };

  Value eval(const ExprPtr& e, Ctx& ctx);
  Value eval_ref(const Expr& e, Ctx& ctx);
  Value eval_binary(const Expr& e, Ctx& ctx);
  Value eval_builtin(const Expr& e, const std::vector<Value>& args, Ctx& ctx);
  std::vector<Value> domain_values(const ExprPtr& domain_expr, Ctx& ctx);

  struct PendingWrite {
    std::string name;
    std::int64_t index;
    Value value;
    int line;
  };
  void exec_cmds(const std::vector<Cmd>& cmds, Ctx& ctx, FireResult& result,
                 std::vector<PendingWrite>& writes);

  static bool is_builtin(const std::string& name);

  const Program* prog_;
  InputFn inputs_;
  std::int64_t total_fires_ = 0;
};

}  // namespace flexrouter::rules
