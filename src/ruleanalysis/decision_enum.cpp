#include "ruleanalysis/decision_enum.hpp"

#include <algorithm>
#include <exception>
#include <functional>

#include "topology/graph_algo.hpp"

namespace flexrouter::ruleanalysis {
namespace {

constexpr std::uint64_t kMaxCombos = 4096;
constexpr std::uint64_t kMaxUnknownCardinality = 16;

bool is_escape_port_ref(const rules::ExprPtr& e) {
  return e != nullptr && e->kind == rules::Expr::Kind::Ref &&
         e->name == "escape_port" && e->args.empty();
}

}  // namespace

DecisionEnumerator::DecisionEnumerator(const rules::Program& prog,
                                       const DeadlockModel& model,
                                       const Topology& topo)
    : prog_(prog),
      model_(model),
      topo_(topo),
      faults_(topo),
      interp_(prog),
      env_(prog) {
  rb_ = prog_.find_rule_base(model_.route_base);
  if (rb_ == nullptr) {
    error_ = "rule base '" + model_.route_base +
             "' not found; nothing to certify";
    return;
  }
  if (!rb_->params.empty()) {
    error_ =
        "certified rule base has parameters; headers cannot be enumerated";
    return;
  }
  mesh_ = dynamic_cast<const Mesh*>(&topo_);
  if (model_.injection == InjectionVcs::BySignDy &&
      (mesh_ == nullptr || mesh_->dims() != 2)) {
    error_ = "BySignDy injection requires a 2-D mesh";
    return;
  }
  if (!model_.ft_route_base.empty()) {
    ft_rb_ = prog_.find_rule_base(model_.ft_route_base);
    if (ft_rb_ != nullptr && !ft_rb_->params.empty()) ft_rb_ = nullptr;
  }
  if (model_.style == DecisionStyle::DirsetMask) {
    for (const auto& [cls, vc] : model_.class_vcs) included_vcs_.insert(vc);
  } else {
    for (int v = 0; v < model_.num_vcs; ++v) included_vcs_.insert(v);
  }
  comp_ = components(faults_);
  if (model_.escape_vc >= 0) escape_.rebuild(faults_);
  interp_.set_input_provider(
      [this](const std::string& n, const std::vector<rules::Value>& i) {
        return provide(n, i);
      });
  scan_axes();
  audit_escape_port();
}

void DecisionEnumerator::set_faults(const FaultSet& faults) {
  faults_ = faults;
  comp_ = components(faults_);
  if (model_.escape_vc >= 0) escape_.rebuild(faults_);
  overlay_.clear();
  overlay_owned_.clear();
}

void DecisionEnumerator::merge_notes(const DecisionEnumerator& other) {
  for (const std::string& m : other.unmodeled_) note_unmodeled(m);
  excluded_classes_.insert(other.excluded_classes_.begin(),
                           other.excluded_classes_.end());
  if (!other.modeled_) modeled_ = false;
}

DecisionEnumerator::DecisionKey DecisionEnumerator::make_key(
    NodeId node, NodeId dest, PortId in_port, VcId in_vc) const {
  // Programs without an escape layer never read in_port directly, so the
  // memo key only needs the injected/in-flight distinction.
  const PortId key_port =
      model_.escape_vc >= 0
          ? in_port
          : (in_port < 0 || in_port >= topo_.degree() ? topo_.degree()
                                                      : PortId{0});
  return {node, dest, key_port, in_vc};
}

// ---- input model ---------------------------------------------------------

std::optional<rules::Value> DecisionEnumerator::known_input(
    const std::string& name, const std::vector<rules::Value>& idx) {
  using rules::Value;
  const PortId degree = topo_.degree();
  if (name == "node") return Value::make_int(node_);
  if (name == "dest") return Value::make_int(dest_);
  if (name == "in_port") return Value::make_int(in_port_);
  if (name == "in_vc") return Value::make_int(std::max<VcId>(in_vc_, 0));
  if (name == "injected")
    return Value::make_bool(in_port_ < 0 || in_port_ >= degree);
  if ((name == "link_ok" || name == "link_fault") && idx.size() == 1) {
    const bool want_ok = name == "link_ok";
    const auto p = static_cast<PortId>(idx[0].as_int());
    if (p < 0 || p >= degree) return Value::make_bool(!want_ok);
    bool ok;
    if (abstract_) {
      ok = ((valuation_ >> p) & 1u) != 0;
    } else {
      ok = faults_.link_usable(node_, p);
      record(CatalogRead::Kind::LinkOk, p, ok ? 1 : 0);
    }
    return Value::make_bool(want_ok ? ok : !ok);
  }
  if (name == "dest_reachable") {
    bool ok;
    if (abstract_) {
      ok = ((valuation_ >> degree) & 1u) != 0;
    } else {
      ok = connected_now(node_, dest_);
      record(CatalogRead::Kind::DestReachable, kInvalidPort, ok ? 1 : 0);
    }
    return Value::make_bool(ok);
  }
  if (model_.escape_vc >= 0) {
    const bool on_escape =
        in_vc_ == model_.escape_vc && in_port_ >= 0 && in_port_ < degree;
    if (name == "on_escape") return Value::make_bool(on_escape);
    if (name == "escape_ok") {
      bool ok;
      if (abstract_) {
        ok = ((valuation_ >> (degree + 1)) & 1u) != 0;
      } else {
        ok = escape_.reachable(node_, dest_);
        record(CatalogRead::Kind::EscapeOk, kInvalidPort, ok ? 1 : 0);
      }
      return Value::make_bool(ok);
    }
    if (name == "escape_port") {
      // The concrete escape next hop is tree-dependent; in abstract mode
      // the audited token stands in for it.
      if (abstract_) return Value::make_int(kAbstractEscapePort);
      PortId port = degree;
      if (dest_ != node_ && escape_.reachable(node_, dest_)) {
        UpDownTable::Phase phase = UpDownTable::Phase::Up;
        if (on_escape) {
          const NodeId prev = topo_.neighbor(node_, in_port_);
          phase =
              escape_.is_up_move(prev, topo_.reverse_port(node_, in_port_))
                  ? UpDownTable::Phase::Up
                  : UpDownTable::Phase::Down;
        }
        port = escape_.next_hops(node_, dest_, phase)[0];
      }
      record(CatalogRead::Kind::EscapePort, kInvalidPort, port);
      return Value::make_int(port);
    }
  }
  if (mesh_ != nullptr && mesh_->dims() == 2) {
    if (name == "xpos") return Value::make_int(mesh_->x_of(node_));
    if (name == "ypos") return Value::make_int(mesh_->y_of(node_));
    if (name == "xdes") return Value::make_int(mesh_->x_of(dest_));
    if (name == "ydes") return Value::make_int(mesh_->y_of(dest_));
  }
  // Hypercube dimension-correction masks (ROUTE_C, [Kon90] convention:
  // ascending sets 0->1 bits, descending clears 1->0 bits).
  const std::int64_t all = (std::int64_t{1} << degree) - 1;
  if (name == "up_mask") return Value::make_int(dest_ & ~node_ & all);
  if (name == "down_mask") return Value::make_int(node_ & ~dest_ & all);
  return std::nullopt;
}

rules::Value DecisionEnumerator::provide(const std::string& name,
                                         const std::vector<rules::Value>& idx) {
  if (auto v = known_input(name, idx)) return *v;
  const rules::InputDecl* decl = prog_.find_input(name);
  FR_REQUIRE(decl != nullptr);  // eval_ref resolved it as an input
  std::int64_t flat = -1;
  if (!decl->index_domains.empty()) {
    flat = 0;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const rules::Domain& d = decl->index_domains[i];
      flat = flat * static_cast<std::int64_t>(d.cardinality()) +
             static_cast<std::int64_t>(d.index_of(idx[i]));
    }
  }
  const auto key = std::make_pair(name, flat);
  auto it = uix_.find(key);
  if (it == uix_.end()) {
    Unknown u;
    u.name = name;
    u.flat = flat;
    if (decl->domain.cardinality() <= kMaxUnknownCardinality) {
      u.vals = decl->domain.enumerate();
    } else {
      u.vals = {decl->domain.value_at(0)};
      note_unmodeled("free input '" + name +
                     "' has a domain too large to enumerate");
    }
    it = uix_.emplace(key, unknowns_.size()).first;
    unknowns_.push_back(std::move(u));
    discovered_ = true;
  }
  const Unknown& u = unknowns_[it->second];
  return u.vals[u.cur];
}

bool DecisionEnumerator::advance() {
  for (Unknown& u : unknowns_) {
    if (++u.cur < u.vals.size()) return true;
    u.cur = 0;
  }
  return false;
}

void DecisionEnumerator::record(CatalogRead::Kind kind, PortId port,
                                std::int32_t value) {
  const CatalogRead r{kind, port, value};
  if (std::find(reads_.begin(), reads_.end(), r) == reads_.end())
    reads_.push_back(r);
}

// ---- decision enumeration ------------------------------------------------

void DecisionEnumerator::enumerate_base(const rules::RuleBase& rb, bool is_ft,
                                        std::set<Cand>& out) {
  for (const rules::Rule& r : rb.rules) {
    bool may = false;
    bool must = true;
    std::set<Cand> cs;
    unknowns_.clear();
    uix_.clear();
    // Fixpoint: free inputs are discovered while evaluating, so re-sweep
    // until a full enumeration pass discovers nothing new.
    for (int iter = 0; iter < 8; ++iter) {
      discovered_ = false;
      for (Unknown& u : unknowns_) u.cur = 0;
      may = false;
      must = true;
      cs.clear();
      std::uint64_t combos = 0;
      bool more = true;
      while (more) {
        if (++combos > kMaxCombos) {
          note_unmodeled("free-input space of a premise exceeds the "
                         "enumeration budget");
          must = false;
          break;
        }
        bool fires = false;
        try {
          fires = interp_.eval_expr(env_, r.premise, binds_).as_bool();
        } catch (const std::exception& e) {
          note_unmodeled(std::string("premise not evaluable: ") + e.what());
          must = false;
        }
        if (fires) {
          may = true;
          try {
            collect_cmds(r.conclusion, is_ft, cs);
          } catch (const std::exception& e) {
            note_unmodeled(std::string("conclusion not evaluable: ") +
                           e.what());
          }
        } else {
          must = false;
        }
        more = advance();
      }
      if (!discovered_) break;
    }
    if (may) out.insert(cs.begin(), cs.end());
    if (may && must) break;  // later rules are unreachable
  }
}

rules::Value DecisionEnumerator::eval(const rules::ExprPtr& e) {
  return interp_.eval_expr(env_, e, binds_);
}

void DecisionEnumerator::collect_cmds(const std::vector<rules::Cmd>& cmds,
                                      bool is_ft, std::set<Cand>& out) {
  for (const rules::Cmd& c : cmds) collect_cmd(c, is_ft, out);
}

void DecisionEnumerator::collect_cmd(const rules::Cmd& c, bool is_ft,
                                     std::set<Cand>& out) {
  using CK = rules::Cmd::Kind;
  // The ft companion base expresses its decision as RETURN <direction>
  // whatever the primary style is (NAFTA's in_message_ft).
  const DecisionStyle style =
      is_ft ? DecisionStyle::ReturnPort : model_.style;
  const rules::RuleBase* rb = is_ft ? ft_rb_ : rb_;
  switch (c.kind) {
    case CK::Assign:
      return;  // register writes induce no channel request
    case CK::Return: {
      if (style != DecisionStyle::ReturnPort) return;
      const rules::Value v = eval(c.value);
      const PortId port =
          v.is_sym() ? static_cast<PortId>(rb->returns->sym_rank(v.as_sym()))
                     : static_cast<PortId>(v.as_int());
      add_cand(port, std::max<VcId>(in_vc_, 0), out);
      return;
    }
    case CK::Emit: {
      if (style == DecisionStyle::CandEvents && c.target == "cand" &&
          c.args.size() >= 2) {
        add_cand(static_cast<PortId>(eval(c.args[0]).as_int()),
                 static_cast<VcId>(eval(c.args[1]).as_int()), out);
      } else if (style == DecisionStyle::DirsetMask && c.target == "dirset" &&
                 c.args.size() >= 2) {
        const std::int64_t mask = eval(c.args[0]).as_int();
        const std::int64_t cls = eval(c.args[1]).as_int();
        if (mask == 0 && node_ == dest_) {
          // ROUTE_C's delivery command: both correction masks empty means
          // the header is home.
          delivers_ = true;
          return;
        }
        const auto it = model_.class_vcs.find(cls);
        if (it == model_.class_vcs.end()) {
          excluded_classes_.insert(cls);
          return;
        }
        for (PortId p = 0; p < topo_.degree(); ++p)
          if ((mask >> p) & 1) add_cand(p, it->second, out);
      }
      return;
    }
    case CK::ForAll: {
      const rules::Value dom = eval(c.domain);
      std::vector<rules::Value> vals;
      if (dom.is_set()) {
        vals = dom.as_set().elements();
      } else {
        const std::int64_t n = dom.as_int();
        FR_REQUIRE_MSG(n >= 0 && n <= 64, "FORALL range out of bounds");
        for (std::int64_t i = 0; i < n; ++i)
          vals.push_back(rules::Value::make_int(i));
      }
      for (const rules::Value& v : vals) {
        binds_.emplace_back(c.bound, v);
        collect_cmds(c.body, is_ft, out);
        binds_.pop_back();
      }
      return;
    }
  }
}

void DecisionEnumerator::add_cand(PortId port, VcId vc, std::set<Cand>& out) {
  if (abstract_ && port == kAbstractEscapePort) {
    out.insert({port, vc});
    return;
  }
  if (port == topo_.degree()) {
    // Local-port candidate: delivery when the header is at its
    // destination; elsewhere it would leave the network short of it, so it
    // is no candidate (the dead-end check then sees the truth).
    if (node_ == dest_) delivers_ = true;
    return;
  }
  if (port < 0 || port > topo_.degree()) {
    note_unmodeled("rule requests a port outside the router");
    return;
  }
  if (vc < 0 || vc >= model_.num_vcs) {
    note_unmodeled("rule requests a VC outside the model");
    return;
  }
  if (!included_vcs_.count(vc)) return;
  if (abstract_ && model_.escape_vc >= 0 && vc == model_.escape_vc)
    escape_violation_ = true;  // escape-VC cand bypassing the audited token
  out.insert({port, vc});
}

const EnumeratedDecision& DecisionEnumerator::decide(NodeId node, NodeId dest,
                                                     PortId in_port,
                                                     VcId in_vc) {
  const DecisionKey key = make_key(node, dest, in_port, in_vc);
  const bool healthy = faults_.fault_free();
  if (healthy) {
    if (shared_ != nullptr) {
      if (const auto it = shared_->baseline_.find(key);
          it != shared_->baseline_.end()) {
        ++reused_;
        return it->second;
      }
    } else if (const auto it = baseline_.find(key); it != baseline_.end()) {
      return it->second;
    }
  } else {
    if (const auto it = overlay_.find(key); it != overlay_.end())
      return *it->second;
    const EnumeratedDecision* base = nullptr;
    if (const auto it = baseline_.find(key); it != baseline_.end())
      base = &it->second;
    if (base == nullptr && shared_ != nullptr) {
      if (const auto it = shared_->baseline_.find(key);
          it != shared_->baseline_.end())
        base = &it->second;
    }
    if (base != nullptr && validate(key, *base)) {
      ++reused_;
      overlay_.emplace(key, base);
      return *base;
    }
  }

  // Enumerate afresh under the current fault state.
  node_ = node;
  dest_ = dest;
  in_port_ = in_port;
  in_vc_ = in_vc;
  abstract_ = false;
  delivers_ = false;
  reads_.clear();
  EnumeratedDecision d;
  std::set<Cand> acc;
  enumerate_base(*rb_, /*is_ft=*/false, acc);
  d.cands.assign(acc.begin(), acc.end());
  if (ft_rb_ != nullptr) {
    std::set<Cand> ft;
    enumerate_base(*ft_rb_, /*is_ft=*/true, ft);
    d.ft_cands.assign(ft.begin(), ft.end());
  }
  d.delivers = delivers_;
  d.reads = reads_;
  ++evaluated_;
  if (healthy) {
    if (shared_ == nullptr)
      return baseline_.emplace(key, std::move(d)).first->second;
    // A shared-baseline miss (shouldn't happen after warmup, but harmless):
    // keep the result locally.
    overlay_owned_.push_back(std::move(d));
    overlay_.emplace(key, &overlay_owned_.back());
    return overlay_owned_.back();
  }
  overlay_owned_.push_back(std::move(d));
  overlay_.emplace(key, &overlay_owned_.back());
  return overlay_owned_.back();
}

const AbstractDecision& DecisionEnumerator::decide_abstract(
    NodeId node, NodeId dest, PortId in_port, VcId in_vc,
    std::uint32_t valuation) {
  const AbstractKey key{make_key(node, dest, in_port, in_vc), valuation};
  if (const auto it = abs_memo_.find(key); it != abs_memo_.end())
    return it->second;
  node_ = node;
  dest_ = dest;
  in_port_ = in_port;
  in_vc_ = in_vc;
  abstract_ = true;
  valuation_ = valuation;
  delivers_ = false;
  escape_violation_ = false;
  AbstractDecision d;
  std::set<Cand> acc;
  enumerate_base(*rb_, /*is_ft=*/false, acc);
  d.cands.assign(acc.begin(), acc.end());
  if (ft_rb_ != nullptr) {
    std::set<Cand> ft;
    enumerate_base(*ft_rb_, /*is_ft=*/true, ft);
    d.ft_cands.assign(ft.begin(), ft.end());
  }
  d.delivers = delivers_;
  // Stickiness: an on-escape header at a foreign node must stay on the
  // escape VC, otherwise escape -> adaptive dependency edges exist and the
  // escape layer cannot be factored out of orbit transport.
  if (model_.escape_vc >= 0 && in_vc == model_.escape_vc && node != dest &&
      in_port >= 0 && in_port < topo_.degree()) {
    for (const Cand& c : d.cands)
      if (c.second != model_.escape_vc) escape_violation_ = true;
  }
  d.escape_violation = escape_violation_;
  abstract_ = false;
  return abs_memo_.emplace(key, std::move(d)).first->second;
}

// ---- incremental revalidation --------------------------------------------

std::int32_t DecisionEnumerator::recompute(const CatalogRead& r) const {
  switch (r.kind) {
    case CatalogRead::Kind::LinkOk:
      return faults_.link_usable(node_, r.port) ? 1 : 0;
    case CatalogRead::Kind::DestReachable:
      return connected_now(node_, dest_) ? 1 : 0;
    case CatalogRead::Kind::EscapeOk:
      return escape_.reachable(node_, dest_) ? 1 : 0;
    case CatalogRead::Kind::EscapePort: {
      const PortId degree = topo_.degree();
      if (dest_ == node_ || !escape_.reachable(node_, dest_)) return degree;
      UpDownTable::Phase phase = UpDownTable::Phase::Up;
      if (in_vc_ == model_.escape_vc && in_port_ >= 0 && in_port_ < degree) {
        const NodeId prev = topo_.neighbor(node_, in_port_);
        phase = escape_.is_up_move(prev, topo_.reverse_port(node_, in_port_))
                    ? UpDownTable::Phase::Up
                    : UpDownTable::Phase::Down;
      }
      return escape_.next_hops(node_, dest_, phase)[0];
    }
  }
  return 0;
}

bool DecisionEnumerator::validate(const DecisionKey& key,
                                  const EnumeratedDecision& d) {
  node_ = std::get<0>(key);
  dest_ = std::get<1>(key);
  in_port_ = std::get<2>(key);
  in_vc_ = std::get<3>(key);
  for (const CatalogRead& r : d.reads)
    if (recompute(r) != r.value) return false;
  return true;
}

// ---- model metadata ------------------------------------------------------

void DecisionEnumerator::seed_vcs(NodeId s, NodeId d,
                                  std::vector<VcId>& out) const {
  out.clear();
  switch (model_.injection) {
    case InjectionVcs::Zero:
      out.push_back(0);
      return;
    case InjectionVcs::All:
      out.assign(included_vcs_.begin(), included_vcs_.end());
      return;
    case InjectionVcs::BySignDy: {
      const int dy = mesh_->y_of(d) - mesh_->y_of(s);
      if (dy >= 0) out.push_back(1);
      if (dy <= 0) out.push_back(0);
      return;
    }
  }
}

void DecisionEnumerator::scan_axes() {
  const auto scan_base = [this](const rules::RuleBase* rb) {
    if (rb == nullptr) return;
    for (const rules::Rule& r : rb->rules) {
      rules::for_each_expr(r, [this](const rules::Expr& e) {
        if (e.kind != rules::Expr::Kind::Ref) return;
        if (e.name == "link_ok" || e.name == "link_fault")
          axes_.link_bits = true;
        else if (e.name == "dest_reachable")
          axes_.dest_reachable = true;
        else if (e.name == "escape_ok")
          axes_.escape_ok = true;
        else if (e.name == "escape_port")
          axes_.escape_port = true;
      });
    }
  };
  scan_base(rb_);
  scan_base(ft_rb_);
}

void DecisionEnumerator::audit_escape_port() {
  if (!axes_.escape_port || model_.escape_vc < 0) {
    // Nothing uses the symbol (or there is no escape layer): the token
    // abstraction is vacuously sound.
    escape_port_audited_ = axes_.escape_port ? false : true;
    if (axes_.escape_port)
      note_unmodeled("escape_port referenced without an escape layer");
    return;
  }
  std::size_t total = 0;
  std::size_t allowed = 0;
  bool every_escape_emit_uses_token = true;
  for (const rules::Rule& r : rb_->rules) {
    rules::for_each_expr(r, [&total](const rules::Expr& e) {
      if (e.kind == rules::Expr::Kind::Ref && e.name == "escape_port")
        ++total;
    });
    // Count the sanctioned occurrences: !cand(escape_port, <escape_vc>, …)
    // with the symbol verbatim in the port slot and a literal escape VC.
    const std::function<void(const rules::Cmd&)> visit =
        [&](const rules::Cmd& c) {
          if (c.kind == rules::Cmd::Kind::ForAll) {
            for (const rules::Cmd& b : c.body) visit(b);
            return;
          }
          if (c.kind != rules::Cmd::Kind::Emit || c.target != "cand" ||
              c.args.size() < 2)
            return;
          const bool literal_escape_vc =
              c.args[1]->kind == rules::Expr::Kind::IntLit &&
              c.args[1]->int_val == model_.escape_vc;
          if (is_escape_port_ref(c.args[0])) {
            if (literal_escape_vc)
              ++allowed;
            else
              every_escape_emit_uses_token = false;  // token off escape VC
          } else if (literal_escape_vc) {
            every_escape_emit_uses_token = false;  // escape VC, foreign port
          }
        };
    for (const rules::Cmd& c : r.conclusion) visit(c);
  }
  escape_port_audited_ = total == allowed && every_escape_emit_uses_token;
  if (!escape_port_audited_)
    note_unmodeled(
        "escape_port flows beyond escape-VC cand emits; orbit transport of "
        "escape channels disabled");
}

void DecisionEnumerator::note_unmodeled(const std::string& msg) {
  if (unmodeled_.insert(msg).second) modeled_ = false;
}

}  // namespace flexrouter::ruleanalysis
