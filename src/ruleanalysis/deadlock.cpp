#include "ruleanalysis/deadlock.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "routing/updown.hpp"
#include "ruleengine/env.hpp"
#include "ruleengine/interp.hpp"
#include "topology/graph_algo.hpp"
#include "topology/mesh.hpp"

namespace flexrouter::ruleanalysis {
namespace {

// One free (non-catalog) input signal discovered while evaluating a rule:
// its declared domain is enumerated so the rule's may/must-fire status is
// exact over the inputs it actually reads.
struct Unknown {
  std::string name;
  std::int64_t flat = -1;  // flattened index, -1 = scalar
  std::vector<rules::Value> vals;
  std::size_t cur = 0;
};

constexpr std::uint64_t kMaxCombos = 4096;
constexpr std::uint64_t kMaxUnknownCardinality = 16;

class Certifier {
 public:
  Certifier(const rules::Program& prog, const DeadlockModel& model,
            const Topology& topo, const FaultSet& faults)
      : prog_(prog),
        model_(model),
        topo_(topo),
        faults_(faults),
        interp_(prog),
        env_(prog) {}

  DeadlockCertificate run() {
    rb_ = prog_.find_rule_base(model_.route_base);
    if (rb_ == nullptr) {
      note_unmodeled("rule base '" + model_.route_base +
                     "' not found; nothing to certify");
      return finish();
    }
    if (!rb_->params.empty()) {
      note_unmodeled("certified rule base has parameters; headers cannot be "
                     "enumerated");
      return finish();
    }
    mesh_ = dynamic_cast<const Mesh*>(&topo_);
    if (model_.injection == InjectionVcs::BySignDy &&
        (mesh_ == nullptr || mesh_->dims() != 2)) {
      note_unmodeled("BySignDy injection requires a 2-D mesh");
      return finish();
    }
    if (model_.escape_vc >= 0) escape_.rebuild(faults_);
    interp_.set_input_provider(
        [this](const std::string& n, const std::vector<rules::Value>& i) {
          return provide(n, i);
        });

    if (model_.style == DecisionStyle::DirsetMask) {
      for (const auto& [cls, vc] : model_.class_vcs) included_vcs_.insert(vc);
    } else {
      for (int v = 0; v < model_.num_vcs; ++v) included_vcs_.insert(v);
    }

    // Intern every usable channel up front so isolated channels still count.
    for (NodeId n = 0; n < topo_.num_nodes(); ++n)
      for (PortId p = 0; p < topo_.degree(); ++p)
        if (faults_.link_usable(n, p))
          for (const VcId vc : included_vcs_) graph_.channel_id({n, p, vc});

    // Seed the closure with every injectable header, then follow rule
    // decisions hop by hop. States are (occupied channel, destination).
    for (NodeId s = 0; s < topo_.num_nodes(); ++s) {
      if (faults_.node_faulty(s)) continue;
      for (NodeId d = 0; d < topo_.num_nodes(); ++d) {
        if (d == s || faults_.node_faulty(d)) continue;
        if (!connected(faults_, s, d)) continue;
        switch (model_.injection) {
          case InjectionVcs::Zero:
            expand(-1, s, d, topo_.degree(), 0);
            break;
          case InjectionVcs::All:
            for (const VcId vc : included_vcs_)
              expand(-1, s, d, topo_.degree(), vc);
            break;
          case InjectionVcs::BySignDy: {
            const int dy = mesh_->y_of(d) - mesh_->y_of(s);
            if (dy >= 0) expand(-1, s, d, topo_.degree(), 1);
            if (dy <= 0) expand(-1, s, d, topo_.degree(), 0);
            break;
          }
        }
      }
    }
    while (!frontier_.empty()) {
      const auto [cid, dest] = frontier_.back();
      frontier_.pop_back();
      const Channel& c = graph_.channel(cid);
      const NodeId m = topo_.neighbor(c.node, c.port);
      if (m == dest) continue;  // consumed at the destination
      expand(cid, m, dest, topo_.reverse_port(c.node, c.port), c.vc);
    }

    cert_.report = graph_.check();
    cert_.decisions = memo_.size();
    return finish();
  }

 private:
  using Cand = std::pair<PortId, VcId>;
  using DecisionKey = std::tuple<NodeId, NodeId, PortId, VcId>;

  // ---- input model -------------------------------------------------------

  /// Catalog inputs the host computes from the decision header, mirroring
  /// RuleDrivenRouting::input_value. nullopt = free input.
  std::optional<rules::Value> known_input(const std::string& name,
                                          const std::vector<rules::Value>& idx) {
    using rules::Value;
    const PortId degree = topo_.degree();
    if (name == "node") return Value::make_int(node_);
    if (name == "dest") return Value::make_int(dest_);
    if (name == "in_port") return Value::make_int(in_port_);
    if (name == "in_vc") return Value::make_int(std::max<VcId>(in_vc_, 0));
    if (name == "injected")
      return Value::make_bool(in_port_ < 0 || in_port_ >= degree);
    if (name == "link_ok" && idx.size() == 1) {
      const auto p = static_cast<PortId>(idx[0].as_int());
      if (p < 0 || p >= degree) return Value::make_bool(false);
      return Value::make_bool(faults_.link_usable(node_, p));
    }
    if (name == "dest_reachable")
      return Value::make_bool(connected(faults_, node_, dest_));
    if (model_.escape_vc >= 0) {
      const bool on_escape = in_vc_ == model_.escape_vc && in_port_ >= 0 &&
                             in_port_ < degree;
      if (name == "on_escape") return Value::make_bool(on_escape);
      if (name == "escape_ok")
        return Value::make_bool(escape_.reachable(node_, dest_));
      if (name == "escape_port") {
        if (dest_ == node_ || !escape_.reachable(node_, dest_))
          return Value::make_int(degree);
        UpDownTable::Phase phase = UpDownTable::Phase::Up;
        if (on_escape) {
          const NodeId prev = topo_.neighbor(node_, in_port_);
          phase = escape_.is_up_move(prev,
                                     topo_.reverse_port(node_, in_port_))
                      ? UpDownTable::Phase::Up
                      : UpDownTable::Phase::Down;
        }
        return Value::make_int(escape_.next_hops(node_, dest_, phase)[0]);
      }
    }
    if (mesh_ != nullptr && mesh_->dims() == 2) {
      if (name == "xpos") return Value::make_int(mesh_->x_of(node_));
      if (name == "ypos") return Value::make_int(mesh_->y_of(node_));
      if (name == "xdes") return Value::make_int(mesh_->x_of(dest_));
      if (name == "ydes") return Value::make_int(mesh_->y_of(dest_));
    }
    // Hypercube dimension-correction masks (ROUTE_C, [Kon90] convention:
    // ascending sets 0->1 bits, descending clears 1->0 bits).
    const std::int64_t all = (std::int64_t{1} << degree) - 1;
    if (name == "up_mask") return Value::make_int(dest_ & ~node_ & all);
    if (name == "down_mask") return Value::make_int(node_ & ~dest_ & all);
    return std::nullopt;
  }

  rules::Value provide(const std::string& name,
                       const std::vector<rules::Value>& idx) {
    if (auto v = known_input(name, idx)) return *v;
    const rules::InputDecl* decl = prog_.find_input(name);
    FR_REQUIRE(decl != nullptr);  // eval_ref resolved it as an input
    std::int64_t flat = -1;
    if (!decl->index_domains.empty()) {
      flat = 0;
      for (std::size_t i = 0; i < idx.size(); ++i) {
        const rules::Domain& d = decl->index_domains[i];
        flat = flat * static_cast<std::int64_t>(d.cardinality()) +
               static_cast<std::int64_t>(d.index_of(idx[i]));
      }
    }
    const auto key = std::make_pair(name, flat);
    auto it = uix_.find(key);
    if (it == uix_.end()) {
      Unknown u;
      u.name = name;
      u.flat = flat;
      if (decl->domain.cardinality() <= kMaxUnknownCardinality) {
        u.vals = decl->domain.enumerate();
      } else {
        u.vals = {decl->domain.value_at(0)};
        note_unmodeled("free input '" + name +
                       "' has a domain too large to enumerate");
      }
      it = uix_.emplace(key, unknowns_.size()).first;
      unknowns_.push_back(std::move(u));
      discovered_ = true;
    }
    const Unknown& u = unknowns_[it->second];
    return u.vals[u.cur];
  }

  bool advance() {
    for (Unknown& u : unknowns_) {
      if (++u.cur < u.vals.size()) return true;
      u.cur = 0;
    }
    return false;
  }

  // ---- decision enumeration ---------------------------------------------

  /// Channels a header (dest, arrived at `node` via in_port/in_vc) may
  /// request, over-approximated by may/must-fire analysis of the rules.
  const std::vector<Cand>& decide(NodeId node, NodeId dest, PortId in_port,
                                  VcId in_vc) {
    // Programs without an escape layer never read in_port directly, so the
    // memo key only needs the injected/in-flight distinction.
    const PortId key_port =
        model_.escape_vc >= 0
            ? in_port
            : (in_port < 0 || in_port >= topo_.degree() ? topo_.degree()
                                                        : PortId{0});
    const DecisionKey key{node, dest, key_port, in_vc};
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
    node_ = node;
    dest_ = dest;
    in_port_ = in_port;
    in_vc_ = in_vc;

    std::set<Cand> acc;
    for (const rules::Rule& r : rb_->rules) {
      bool may = false;
      bool must = true;
      std::set<Cand> cs;
      unknowns_.clear();
      uix_.clear();
      // Fixpoint: free inputs are discovered while evaluating, so re-sweep
      // until a full enumeration pass discovers nothing new.
      for (int iter = 0; iter < 8; ++iter) {
        discovered_ = false;
        for (Unknown& u : unknowns_) u.cur = 0;
        may = false;
        must = true;
        cs.clear();
        std::uint64_t combos = 0;
        bool more = true;
        while (more) {
          if (++combos > kMaxCombos) {
            note_unmodeled("free-input space of a premise exceeds the "
                           "enumeration budget");
            must = false;
            break;
          }
          bool fires = false;
          try {
            fires = interp_.eval_expr(env_, r.premise, binds_).as_bool();
          } catch (const std::exception& e) {
            note_unmodeled(std::string("premise not evaluable: ") + e.what());
            must = false;
          }
          if (fires) {
            may = true;
            try {
              collect_cmds(r.conclusion, cs);
            } catch (const std::exception& e) {
              note_unmodeled(std::string("conclusion not evaluable: ") +
                             e.what());
            }
          } else {
            must = false;
          }
          more = advance();
        }
        if (!discovered_) break;
      }
      if (may) acc.insert(cs.begin(), cs.end());
      if (may && must) break;  // later rules are unreachable
    }
    auto& slot = memo_[key];
    slot.assign(acc.begin(), acc.end());
    return slot;
  }

  rules::Value eval(const rules::ExprPtr& e) {
    return interp_.eval_expr(env_, e, binds_);
  }

  void collect_cmds(const std::vector<rules::Cmd>& cmds, std::set<Cand>& out) {
    for (const rules::Cmd& c : cmds) collect_cmd(c, out);
  }

  void collect_cmd(const rules::Cmd& c, std::set<Cand>& out) {
    using CK = rules::Cmd::Kind;
    switch (c.kind) {
      case CK::Assign:
        return;  // register writes induce no channel request
      case CK::Return: {
        if (model_.style != DecisionStyle::ReturnPort) return;
        const rules::Value v = eval(c.value);
        const PortId port =
            v.is_sym() ? static_cast<PortId>(rb_->returns->sym_rank(v.as_sym()))
                       : static_cast<PortId>(v.as_int());
        add_cand(port, std::max<VcId>(in_vc_, 0), out);
        return;
      }
      case CK::Emit: {
        if (model_.style == DecisionStyle::CandEvents && c.target == "cand" &&
            c.args.size() >= 2) {
          add_cand(static_cast<PortId>(eval(c.args[0]).as_int()),
                   static_cast<VcId>(eval(c.args[1]).as_int()), out);
        } else if (model_.style == DecisionStyle::DirsetMask &&
                   c.target == "dirset" && c.args.size() >= 2) {
          const std::int64_t mask = eval(c.args[0]).as_int();
          const std::int64_t cls = eval(c.args[1]).as_int();
          const auto it = model_.class_vcs.find(cls);
          if (it == model_.class_vcs.end()) {
            excluded_classes_.insert(cls);
            return;
          }
          for (PortId p = 0; p < topo_.degree(); ++p)
            if ((mask >> p) & 1) add_cand(p, it->second, out);
        }
        return;
      }
      case CK::ForAll: {
        const rules::Value dom = eval(c.domain);
        std::vector<rules::Value> vals;
        if (dom.is_set()) {
          vals = dom.as_set().elements();
        } else {
          const std::int64_t n = dom.as_int();
          FR_REQUIRE_MSG(n >= 0 && n <= 64, "FORALL range out of bounds");
          for (std::int64_t i = 0; i < n; ++i)
            vals.push_back(rules::Value::make_int(i));
        }
        for (const rules::Value& v : vals) {
          binds_.emplace_back(c.bound, v);
          collect_cmds(c.body, out);
          binds_.pop_back();
        }
        return;
      }
    }
  }

  void add_cand(PortId port, VcId vc, std::set<Cand>& out) {
    if (port == topo_.degree()) return;  // local delivery
    if (port < 0 || port > topo_.degree()) {
      note_unmodeled("rule requests a port outside the router");
      return;
    }
    if (vc < 0 || vc >= model_.num_vcs) {
      note_unmodeled("rule requests a VC outside the model");
      return;
    }
    if (!included_vcs_.count(vc)) return;
    out.insert({port, vc});
  }

  // ---- closure -----------------------------------------------------------

  void expand(int from, NodeId node, NodeId dest, PortId in_port, VcId in_vc) {
    for (const auto& [p, vc] : decide(node, dest, in_port, in_vc)) {
      if (!faults_.link_usable(node, p)) continue;  // arbiter masks dead links
      const int to = graph_.channel_id({node, p, vc});
      if (from >= 0) graph_.add_edge(from, to);
      if (seen_.insert({to, dest}).second) frontier_.push_back({to, dest});
    }
  }

  // ---- reporting ---------------------------------------------------------

  void note_unmodeled(const std::string& msg) {
    if (unmodeled_.insert(msg).second) cert_.modeled = false;
  }

  DeadlockCertificate finish() {
    if (!cert_.report.acyclic) {
      Finding f;
      f.cls = DiagClass::DeadlockCycle;
      f.severity = Severity::Error;
      f.rule_base = model_.route_base;
      std::ostringstream msg;
      msg << "static channel-dependency graph has a cycle ("
          << cert_.report.num_channels << " channels, "
          << cert_.report.num_edges << " edges)";
      f.message = msg.str();
      std::ostringstream wit;
      for (const Channel& c : cert_.report.cycle)
        wit << "(" << c.node << ":" << c.port << "/" << c.vc << ") -> ";
      if (!cert_.report.cycle.empty())
        wit << "(" << cert_.report.cycle.front().node << ":"
            << cert_.report.cycle.front().port << "/"
            << cert_.report.cycle.front().vc << ")";
      f.witness = wit.str();
      cert_.findings.push_back(std::move(f));
    }
    if (!excluded_classes_.empty()) {
      Finding f;
      f.cls = DiagClass::DeadlockUnmodeled;
      f.severity = Severity::Note;
      f.rule_base = model_.route_base;
      std::ostringstream msg;
      msg << "command classes {";
      bool first = true;
      for (const std::int64_t c : excluded_classes_) {
        if (!first) msg << ", ";
        msg << c;
        first = false;
      }
      msg << "} are outside the certificate (no VC mapping)";
      f.message = msg.str();
      cert_.findings.push_back(std::move(f));
    }
    for (const std::string& m : unmodeled_) {
      Finding f;
      f.cls = DiagClass::DeadlockUnmodeled;
      f.severity = Severity::Note;
      f.rule_base = model_.route_base;
      f.message = m;
      cert_.findings.push_back(std::move(f));
    }
    return std::move(cert_);
  }

  const rules::Program& prog_;
  const DeadlockModel& model_;
  const Topology& topo_;
  const FaultSet& faults_;
  rules::Interpreter interp_;
  rules::RuleEnv env_;
  const rules::RuleBase* rb_ = nullptr;
  const Mesh* mesh_ = nullptr;
  UpDownTable escape_;

  // Current decision header (read by the input provider).
  NodeId node_ = 0;
  NodeId dest_ = 0;
  PortId in_port_ = 0;
  VcId in_vc_ = 0;

  std::vector<Unknown> unknowns_;
  std::map<std::pair<std::string, std::int64_t>, std::size_t> uix_;
  bool discovered_ = false;
  std::vector<std::pair<std::string, rules::Value>> binds_;

  std::set<VcId> included_vcs_;
  ChannelDepGraph graph_;
  std::map<DecisionKey, std::vector<Cand>> memo_;
  std::set<std::pair<int, NodeId>> seen_;
  std::vector<std::pair<int, NodeId>> frontier_;

  std::set<std::int64_t> excluded_classes_;
  std::set<std::string> unmodeled_;
  DeadlockCertificate cert_;
};

}  // namespace

std::optional<DeadlockModel> model_for(const rules::Program& prog) {
  DeadlockModel m;
  if (prog.name == "nara_rules") {
    m.route_base = "route";
    m.style = DecisionStyle::CandEvents;
    m.num_vcs = 2;
    return m;
  }
  if (prog.name == "ecube_rules") {
    m.route_base = "route";
    m.style = DecisionStyle::CandEvents;
    m.num_vcs = 1;
    return m;
  }
  if (prog.name == "ft_mesh_rules") {
    m.route_base = "route";
    m.style = DecisionStyle::CandEvents;
    m.num_vcs = 3;
    m.escape_vc = 2;
    return m;
  }
  if (prog.name == "nafta" || prog.name == "nara") {
    m.route_base = "incoming_message";
    m.style = DecisionStyle::ReturnPort;
    m.injection = InjectionVcs::BySignDy;
    m.num_vcs = 2;
    return m;
  }
  if (prog.name == "route_c" || prog.name == "route_c_nft") {
    m.route_base = "decide_dir";
    m.style = DecisionStyle::DirsetMask;
    m.num_vcs = 2;
    m.class_vcs = {{0, 0}, {1, 1}};
    return m;
  }
  return std::nullopt;
}

DeadlockCertificate certify_deadlock(const rules::Program& prog,
                                     const DeadlockModel& model,
                                     const Topology& topo,
                                     const FaultSet& faults) {
  return Certifier(prog, model, topo, faults).run();
}

}  // namespace flexrouter::ruleanalysis
