#include "ruleanalysis/deadlock.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ruleanalysis/decision_enum.hpp"
#include "topology/mesh.hpp"

namespace flexrouter::ruleanalysis {
namespace {

class Certifier {
 public:
  Certifier(const rules::Program& prog, const DeadlockModel& model,
            const Topology& topo, const FaultSet& faults)
      : model_(model), topo_(topo), faults_(faults), enum_(prog, model, topo) {}

  DeadlockCertificate run() {
    if (!enum_.ok()) {
      note(enum_.error());
      return finish();
    }
    enum_.set_faults(faults_);

    // Intern every usable channel up front so isolated channels still count.
    for (NodeId n = 0; n < topo_.num_nodes(); ++n)
      for (PortId p = 0; p < topo_.degree(); ++p)
        if (faults_.link_usable(n, p))
          for (const VcId vc : enum_.included_vcs()) graph_.channel_id({n, p, vc});

    // Seed the closure with every injectable header, then follow rule
    // decisions hop by hop. States are (occupied channel, destination).
    const Mesh* mesh = enum_.mesh();
    for (NodeId s = 0; s < topo_.num_nodes(); ++s) {
      if (faults_.node_faulty(s)) continue;
      for (NodeId d = 0; d < topo_.num_nodes(); ++d) {
        if (d == s || faults_.node_faulty(d)) continue;
        if (!enum_.connected_now(s, d)) continue;
        switch (model_.injection) {
          case InjectionVcs::Zero:
            expand(-1, s, d, topo_.degree(), 0);
            break;
          case InjectionVcs::All:
            for (const VcId vc : enum_.included_vcs())
              expand(-1, s, d, topo_.degree(), vc);
            break;
          case InjectionVcs::BySignDy: {
            const int dy = mesh->y_of(d) - mesh->y_of(s);
            if (dy >= 0) expand(-1, s, d, topo_.degree(), 1);
            if (dy <= 0) expand(-1, s, d, topo_.degree(), 0);
            break;
          }
        }
      }
    }
    while (!frontier_.empty()) {
      const auto [cid, dest] = frontier_.back();
      frontier_.pop_back();
      const Channel& c = graph_.channel(cid);
      const NodeId m = topo_.neighbor(c.node, c.port);
      if (m == dest) continue;  // consumed at the destination
      expand(cid, m, dest, topo_.reverse_port(c.node, c.port), c.vc);
    }

    cert_.report = graph_.check();
    cert_.decisions = enum_.evaluated();
    return finish();
  }

 private:
  void expand(int from, NodeId node, NodeId dest, PortId in_port, VcId in_vc) {
    for (const auto& [p, vc] : enum_.decide(node, dest, in_port, in_vc).cands) {
      if (!faults_.link_usable(node, p)) continue;  // arbiter masks dead links
      const int to = graph_.channel_id({node, p, vc});
      if (from >= 0) graph_.add_edge(from, to);
      if (seen_.insert({to, dest}).second) frontier_.push_back({to, dest});
    }
  }

  void note(const std::string& msg) {
    if (extra_notes_.insert(msg).second) cert_.modeled = false;
  }

  DeadlockCertificate finish() {
    if (!cert_.report.acyclic) {
      Finding f;
      f.cls = DiagClass::DeadlockCycle;
      f.severity = Severity::Error;
      f.rule_base = model_.route_base;
      std::ostringstream msg;
      msg << "static channel-dependency graph has a cycle ("
          << cert_.report.num_channels << " channels, "
          << cert_.report.num_edges << " edges)";
      f.message = msg.str();
      f.witness = format_cycle_witness(cert_.report.cycle, faults_);
      cert_.findings.push_back(std::move(f));
    }
    if (!enum_.excluded_classes().empty()) {
      Finding f;
      f.cls = DiagClass::DeadlockUnmodeled;
      f.severity = Severity::Note;
      f.rule_base = model_.route_base;
      std::ostringstream msg;
      msg << "command classes {";
      bool first = true;
      for (const std::int64_t c : enum_.excluded_classes()) {
        if (!first) msg << ", ";
        msg << c;
        first = false;
      }
      msg << "} are outside the certificate (no VC mapping)";
      f.message = msg.str();
      cert_.findings.push_back(std::move(f));
    }
    std::set<std::string> notes = extra_notes_;
    notes.insert(enum_.unmodeled().begin(), enum_.unmodeled().end());
    for (const std::string& m : notes) {
      Finding f;
      f.cls = DiagClass::DeadlockUnmodeled;
      f.severity = Severity::Note;
      f.rule_base = model_.route_base;
      f.message = m;
      cert_.findings.push_back(std::move(f));
    }
    if (!enum_.modeled()) cert_.modeled = false;
    return std::move(cert_);
  }

  const DeadlockModel& model_;
  const Topology& topo_;
  const FaultSet& faults_;
  DecisionEnumerator enum_;

  ChannelDepGraph graph_;
  std::set<std::pair<int, NodeId>> seen_;
  std::vector<std::pair<int, NodeId>> frontier_;

  std::set<std::string> extra_notes_;
  DeadlockCertificate cert_;
};

}  // namespace

std::string describe_faults(const FaultSet& faults) {
  if (faults.fault_free()) return "no faults";
  std::ostringstream os;
  os << "faults={";
  bool first = true;
  for (const LinkRef& l : faults.faulty_links()) {
    if (!first) os << ", ";
    os << "link " << l.node << ":" << l.port;
    first = false;
  }
  for (const NodeId n : faults.faulty_nodes()) {
    if (!first) os << ", ";
    os << "node " << n;
    first = false;
  }
  os << "}";
  return os.str();
}

std::string format_cycle_witness(const std::vector<Channel>& cycle,
                                 const FaultSet& faults) {
  std::ostringstream wit;
  const std::size_t shown =
      std::min<std::size_t>(cycle.size(), kMaxWitnessChannels);
  for (std::size_t i = 0; i < shown; ++i)
    wit << "(" << cycle[i].node << ":" << cycle[i].port << "/" << cycle[i].vc
        << ") -> ";
  if (cycle.size() > shown)
    wit << "... +" << (cycle.size() - shown) << " more -> ";
  if (!cycle.empty())
    wit << "(" << cycle.front().node << ":" << cycle.front().port << "/"
        << cycle.front().vc << ")";
  if (!faults.fault_free()) wit << " under " << describe_faults(faults);
  return wit.str();
}

std::optional<DeadlockModel> model_for(const rules::Program& prog) {
  DeadlockModel m;
  if (prog.name == "nara_rules") {
    m.route_base = "route";
    m.style = DecisionStyle::CandEvents;
    m.num_vcs = 2;
    return m;
  }
  if (prog.name == "ecube_rules") {
    m.route_base = "route";
    m.style = DecisionStyle::CandEvents;
    m.num_vcs = 1;
    return m;
  }
  if (prog.name == "ft_mesh_rules") {
    m.route_base = "route";
    m.style = DecisionStyle::CandEvents;
    m.num_vcs = 3;
    m.escape_vc = 2;
    // The escape layer reroutes around any fault pattern that leaves the
    // mesh connected; two arbitrary faults never cut more than a corner
    // off a >=4x4 mesh, so the program claims 2-fault tolerance.
    m.fault_tolerance = 2;
    return m;
  }
  if (prog.name == "nafta" || prog.name == "nara") {
    m.route_base = "incoming_message";
    m.style = DecisionStyle::ReturnPort;
    m.injection = InjectionVcs::BySignDy;
    m.num_vcs = 2;
    if (prog.name == "nafta") {
      // NAFTA switches to the fault-tolerant decision base when a minimal
      // output is broken (paper Table 1 row 2); NARA has no such base and
      // claims nothing.
      m.ft_route_base = "in_message_ft";
      m.fault_tolerance = 1;
    }
    return m;
  }
  if (prog.name == "route_c" || prog.name == "route_c_nft") {
    m.route_base = "decide_dir";
    m.style = DecisionStyle::DirsetMask;
    m.num_vcs = 2;
    m.class_vcs = {{0, 0}, {1, 1}};
    return m;
  }
  return std::nullopt;
}

DeadlockCertificate certify_deadlock(const rules::Program& prog,
                                     const DeadlockModel& model,
                                     const Topology& topo,
                                     const FaultSet& faults) {
  return Certifier(prog, model, topo, faults).run();
}

}  // namespace flexrouter::ruleanalysis
