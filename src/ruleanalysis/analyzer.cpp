#include "ruleanalysis/analyzer.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "ruleengine/env.hpp"
#include "ruleengine/interp.hpp"

namespace flexrouter::ruleanalysis {
namespace {

using rules::Cmd;
using rules::Domain;
using rules::Expr;
using rules::ExprPtr;
using rules::InputDecl;
using rules::Interpreter;
using rules::Program;
using rules::Rule;
using rules::RuleBase;
using rules::RuleEnv;
using rules::Value;
using rules::VarDecl;

/// Identity of one scalar slot before axes exist: (name, flat element
/// index). flat -1 = scalar or parameter.
using SigKey = std::pair<std::string, std::int64_t>;

/// One enumeration axis: a parameter, a scalar signal, one array element,
/// or a whole array collapsed to a single shared abstract element.
struct Axis {
  enum class Slot { Param, Var, Input };
  Slot slot = Slot::Input;
  std::string name;
  std::int64_t flat = -1;  // -1 scalar/param, -2 shared array element
  std::string label;       // display name, e.g. "outchan(east,1)"
  const Domain* dom = nullptr;
  std::vector<Value> samples;
  std::size_t cursor = 0;

  const Value& current() const { return samples[cursor]; }
};

/// Everything known about one referenced array (variable or input).
struct ArrayMeta {
  bool is_input = false;
  const Domain* value_dom = nullptr;
  std::vector<Domain> index_doms;
  std::int64_t total = 1;  // number of elements
  /// Some access uses a data-dependent index: all elements are live.
  bool dynamic = false;
  /// Elements reached through compile-time-constant indices.
  std::set<std::int64_t> static_flats;
  // Filled by finalize():
  bool shared = false;
  int shared_axis = -1;
  std::map<std::int64_t, int> elem_axis;
};

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b)
    return std::numeric_limits<std::uint64_t>::max();
  return a * b;
}

/// The finite abstraction of a set of rules' input space, plus the
/// machinery to enumerate it: per-state variable writes into a RuleEnv,
/// an input provider serving the current point, and witness rendering.
class SignalSpace {
 public:
  SignalSpace(const Program& prog, Interpreter& interp)
      : prog_(&prog), interp_(&interp) {}

  /// Record every signal referenced by `r` (premise only, or the whole
  /// rule including conclusion expressions).
  void collect(const RuleBase& rb, const Rule& r, bool premise_only) {
    const auto visit = [&](const Expr& e) { this->visit_ref(rb, e); };
    if (premise_only)
      rules::for_each_subexpr(r.premise, visit);
    else
      rules::for_each_expr(r, visit);
  }

  /// Harvest comparison cut points and signal-to-signal links from the
  /// premise so sampled axes keep every decision boundary.
  void add_cuts(const Rule& r) {
    rules::for_each_subexpr(r.premise, [&](const Expr& e) {
      if (e.kind != Expr::Kind::Binary) return;
      switch (e.bin_op) {
        case rules::BinOp::Eq:
        case rules::BinOp::Ne:
        case rules::BinOp::Lt:
        case rules::BinOp::Le:
        case rules::BinOp::Gt:
        case rules::BinOp::Ge: {
          const auto kl = key_of(e.lhs), kr = key_of(e.rhs);
          if (kl && kr) {
            // Normalize so a comparison repeated across rules is one link.
            links_.insert(*kl < *kr ? std::pair{*kl, *kr}
                                    : std::pair{*kr, *kl});
          } else if (kl) {
            if (const auto c = interp_->try_const_eval(e.rhs))
              add_cut(*kl, *c);
          } else if (kr) {
            if (const auto c = interp_->try_const_eval(e.lhs))
              add_cut(*kr, *c);
          }
          break;
        }
        case rules::BinOp::In: {
          const auto kl = key_of(e.lhs);
          if (!kl) break;
          if (const auto c = interp_->try_const_eval(e.rhs))
            if (c->is_set())
              for (const Value& v : c->as_set().elements()) add_cut(*kl, v);
          break;
        }
        default:
          break;
      }
    });
  }

  /// Build the axes and bound the cartesian product: collapse arrays and
  /// thin sample sets until the state count fits `max_states`. Returns
  /// false when the space cannot be reduced enough.
  bool finalize(const AnalysisOptions& opts, std::uint64_t max_states) {
    std::set<std::string> force_shared;
    int thin = 0;
    for (;;) {
      build_axes(opts, force_shared, thin);
      std::uint64_t prod = 1;
      for (const Axis& a : axes_)
        prod = saturating_mul(prod, a.samples.size());
      if (prod <= max_states) {
        num_states_ = prod;
        return true;
      }
      // Reduction 1: thin sample sets (5-point, then 3-point). Thinning
      // first keeps array elements distinct, so element-comparing premises
      // stay satisfiable.
      if (thin < 2) {
        ++thin;
        continue;
      }
      // Reduction 2: collapse the widest still-elementized array into one
      // shared abstract element.
      std::string widest;
      std::size_t widest_n = 1;
      for (const auto& [name, m] : arrays_)
        if (!force_shared.count(name) && m.elem_axis.size() > widest_n) {
          widest = name;
          widest_n = m.elem_axis.size();
        }
      if (!widest.empty()) {
        force_shared.insert(widest);
        continue;
      }
      return false;
    }
  }

  std::uint64_t num_states() const { return num_states_; }
  /// The enumerated product equals the concrete input space (projected on
  /// the referenced signals): universal verdicts are proofs.
  bool exact() const { return exact_ && !fallback_read_; }

  // --- enumeration ------------------------------------------------------
  void first(RuleEnv& env) {
    for (Axis& a : axes_) a.cursor = 0;
    write_vars(env);
  }

  bool next(RuleEnv& env) {
    for (Axis& a : axes_) {
      if (++a.cursor < a.samples.size()) {
        write_vars(env);
        return true;
      }
      a.cursor = 0;
    }
    return false;
  }

  std::vector<std::pair<std::string, Value>> param_binds() const {
    std::vector<std::pair<std::string, Value>> out;
    for (const Axis& a : axes_)
      if (a.slot == Axis::Slot::Param) out.emplace_back(a.name, a.current());
    return out;
  }

  rules::InputFn provider() {
    return [this](const std::string& name,
                  const std::vector<Value>& idx) -> Value {
      if (idx.empty()) {
        const auto it = scalar_axis_.find(name);
        if (it != scalar_axis_.end() &&
            axes_[static_cast<std::size_t>(it->second)].slot ==
                Axis::Slot::Input)
          return axes_[static_cast<std::size_t>(it->second)].current();
      } else {
        const auto it = arrays_.find(name);
        if (it != arrays_.end() && it->second.is_input) {
          const ArrayMeta& m = it->second;
          if (m.shared)
            return axes_[static_cast<std::size_t>(m.shared_axis)].current();
          const auto eit = m.elem_axis.find(flat_of(m, idx));
          if (eit != m.elem_axis.end())
            return axes_[static_cast<std::size_t>(eit->second)].current();
        }
      }
      // Read outside the collected footprint (e.g. from a subbase fired
      // inside an expression): serve a fixed value, drop exactness.
      fallback_read_ = true;
      const InputDecl* in = prog_->find_input(name);
      FR_REQUIRE_MSG(in != nullptr, "provider asked for unknown input");
      return in->domain.value_at(0);
    };
  }

  std::string state_string() const {
    std::ostringstream os;
    bool sep = false;
    for (const Axis& a : axes_) {
      if (sep) os << " ";
      sep = true;
      os << a.label << "=" << a.current().to_string(prog_->syms);
    }
    return os.str();
  }

  /// Compile-time-constant indices that are already outside the declared
  /// bounds — definite index overflows found during collection.
  struct StaticOob {
    std::string name;
    int line;
    std::string index_text;
  };
  const std::vector<StaticOob>& static_oob() const { return static_oob_; }

 private:
  void visit_ref(const RuleBase& rb, const Expr& e) {
    if (e.kind != Expr::Kind::Ref) return;
    if (e.args.empty()) {
      for (const auto& p : rb.params)
        if (p.name == e.name) {
          ensure_scalar(Axis::Slot::Param, e.name, &p.domain);
          return;
        }
    }
    if (const VarDecl* v = prog_->find_variable(e.name)) {
      if (!v->is_array()) {
        ensure_scalar(Axis::Slot::Var, e.name, &v->domain);
      } else {
        ArrayMeta& m = ensure_array(
            /*is_input=*/false, e.name, &v->domain,
            {Domain::int_range(0, v->array_size - 1)});
        note_access(m, e);
      }
      return;
    }
    if (const InputDecl* in = prog_->find_input(e.name)) {
      if (in->index_domains.empty())
        ensure_scalar(Axis::Slot::Input, e.name, &in->domain);
      else
        note_access(ensure_array(/*is_input=*/true, e.name, &in->domain,
                                 in->index_domains),
                    e);
      return;
    }
  }

  void ensure_scalar(Axis::Slot slot, const std::string& name,
                     const Domain* dom) {
    scalars_.emplace(name, ScalarSig{slot, dom});
  }

  ArrayMeta& ensure_array(bool is_input, const std::string& name,
                          const Domain* value_dom,
                          std::vector<Domain> index_doms) {
    auto it = arrays_.find(name);
    if (it == arrays_.end()) {
      ArrayMeta m;
      m.is_input = is_input;
      m.value_dom = value_dom;
      m.index_doms = std::move(index_doms);
      for (const Domain& d : m.index_doms)
        m.total *= static_cast<std::int64_t>(d.cardinality());
      it = arrays_.emplace(name, std::move(m)).first;
    }
    return it->second;
  }

  void note_access(ArrayMeta& m, const Expr& e) {
    if (e.args.size() != m.index_doms.size()) {
      m.dynamic = true;  // malformed access; validation reports it
      return;
    }
    std::int64_t flat = 0;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const auto c = interp_->try_const_eval(e.args[i]);
      if (!c) {
        m.dynamic = true;
        return;
      }
      if (!m.index_doms[i].contains(*c)) {
        static_oob_.push_back(
            {e.name, e.line, c->to_string(prog_->syms)});
        return;
      }
      flat = flat * static_cast<std::int64_t>(m.index_doms[i].cardinality()) +
             static_cast<std::int64_t>(m.index_doms[i].index_of(*c));
    }
    m.static_flats.insert(flat);
  }

  std::optional<SigKey> key_of(const ExprPtr& e) const {
    if (!e || e->kind != Expr::Kind::Ref) return std::nullopt;
    if (e->args.empty() && scalars_.count(e->name))
      return SigKey{e->name, -1};
    const auto it = arrays_.find(e->name);
    if (it == arrays_.end()) return std::nullopt;
    const ArrayMeta& m = it->second;
    if (e->args.size() != m.index_doms.size()) return std::nullopt;
    std::int64_t flat = 0;
    for (std::size_t i = 0; i < e->args.size(); ++i) {
      const auto c = interp_->try_const_eval(e->args[i]);
      if (!c || !m.index_doms[i].contains(*c)) return std::nullopt;
      flat = flat * static_cast<std::int64_t>(m.index_doms[i].cardinality()) +
             static_cast<std::int64_t>(m.index_doms[i].index_of(*c));
    }
    return SigKey{e->name, flat};
  }

  void add_cut(const SigKey& k, const Value& c) {
    auto& set = cuts_[k];
    if (c.is_int()) {
      set.insert(Value::make_int(c.as_int() - 1));
      set.insert(c);
      set.insert(Value::make_int(c.as_int() + 1));
    } else {
      set.insert(c);
    }
  }

  std::string elem_label(const std::string& name, const ArrayMeta& m,
                         std::int64_t flat) const {
    std::vector<std::uint64_t> digits(m.index_doms.size());
    auto rest = static_cast<std::uint64_t>(flat);
    for (std::size_t i = m.index_doms.size(); i-- > 0;) {
      const auto card = m.index_doms[i].cardinality();
      digits[i] = rest % card;
      rest /= card;
    }
    std::ostringstream os;
    os << name << "(";
    for (std::size_t i = 0; i < digits.size(); ++i) {
      if (i) os << ",";
      os << m.index_doms[i].value_at(digits[i]).to_string(prog_->syms);
    }
    os << ")";
    return os.str();
  }

  void build_axes(const AnalysisOptions& opts,
                  const std::set<std::string>& force_shared, int thin) {
    axes_.clear();
    scalar_axis_.clear();
    exact_ = true;

    const auto add_axis = [&](Axis a) {
      a.samples = a.dom->sample_values(opts.full_enum_cardinality);
      axes_.push_back(std::move(a));
      return static_cast<int>(axes_.size()) - 1;
    };

    for (const auto& [name, sig] : scalars_) {
      Axis a;
      a.slot = sig.slot;
      a.name = name;
      a.label = name;
      a.dom = sig.dom;
      scalar_axis_[name] = add_axis(std::move(a));
    }
    for (auto& [name, m] : arrays_) {
      m.shared = false;
      m.shared_axis = -1;
      m.elem_axis.clear();
      const bool collapse =
          force_shared.count(name) ||
          (m.dynamic &&
           m.total > static_cast<std::int64_t>(opts.max_array_elements));
      const Axis::Slot slot =
          m.is_input ? Axis::Slot::Input : Axis::Slot::Var;
      if (collapse) {
        m.shared = true;
        if (m.total > 1) exact_ = false;
        Axis a;
        a.slot = slot;
        a.name = name;
        a.flat = -2;
        a.label = name + "(*)";
        a.dom = m.value_dom;
        m.shared_axis = add_axis(std::move(a));
      } else {
        std::set<std::int64_t> flats = m.static_flats;
        if (m.dynamic)
          for (std::int64_t f = 0; f < m.total; ++f) flats.insert(f);
        for (const std::int64_t f : flats) {
          Axis a;
          a.slot = slot;
          a.name = name;
          a.flat = f;
          a.label = elem_label(name, m, f);
          a.dom = m.value_dom;
          m.elem_axis[f] = add_axis(std::move(a));
        }
      }
    }

    // Comparison cut points keep decision boundaries inside sampled axes.
    for (const auto& [key, vals] : cuts_) {
      const int id = axis_of(key);
      if (id < 0) continue;
      Axis& a = axes_[static_cast<std::size_t>(id)];
      for (const Value& v : vals)
        if (a.dom->contains(v)) a.samples.push_back(v);
    }
    // Signals compared against each other share the union of their samples
    // so equality/ordering boundaries exist on both sides.
    const auto uniq = [](std::vector<Value>& vals) {
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    };
    for (const auto& [k1, k2] : links_) {
      const int i1 = axis_of(k1), i2 = axis_of(k2);
      if (i1 < 0 || i2 < 0 || i1 == i2) continue;
      Axis& a1 = axes_[static_cast<std::size_t>(i1)];
      Axis& a2 = axes_[static_cast<std::size_t>(i2)];
      for (const Value& v : a1.samples)
        if (a2.dom->contains(v)) a2.samples.push_back(v);
      for (const Value& v : a2.samples)
        if (a1.dom->contains(v)) a1.samples.push_back(v);
      uniq(a1.samples);
      uniq(a2.samples);
    }

    for (Axis& a : axes_) {
      std::sort(a.samples.begin(), a.samples.end());
      a.samples.erase(std::unique(a.samples.begin(), a.samples.end()),
                      a.samples.end());
      const std::size_t cap = thin == 0  ? a.samples.size()
                              : thin == 1 ? std::size_t{5}
                                          : std::size_t{3};
      if (a.samples.size() > cap) {
        std::vector<Value> kept;
        const std::size_t n = a.samples.size();
        if (cap >= 5) {
          for (const std::size_t i :
               {std::size_t{0}, n / 4, n / 2, (3 * n) / 4, n - 1})
            kept.push_back(a.samples[i]);
        } else {
          for (const std::size_t i : {std::size_t{0}, n / 2, n - 1})
            kept.push_back(a.samples[i]);
        }
        std::sort(kept.begin(), kept.end());
        kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
        a.samples = std::move(kept);
      }
      if (a.samples.size() < a.dom->cardinality()) exact_ = false;
    }
  }

  int axis_of(const SigKey& key) const {
    if (key.second < 0) {
      const auto it = scalar_axis_.find(key.first);
      return it == scalar_axis_.end() ? -1 : it->second;
    }
    const auto it = arrays_.find(key.first);
    if (it == arrays_.end()) return -1;
    if (it->second.shared) return it->second.shared_axis;
    const auto eit = it->second.elem_axis.find(key.second);
    return eit == it->second.elem_axis.end() ? -1 : eit->second;
  }

  std::int64_t flat_of(const ArrayMeta& m,
                       const std::vector<Value>& idx) const {
    std::int64_t flat = 0;
    for (std::size_t i = 0; i < idx.size(); ++i)
      flat =
          flat * static_cast<std::int64_t>(m.index_doms[i].cardinality()) +
          static_cast<std::int64_t>(m.index_doms[i].index_of(idx[i]));
    return flat;
  }

  void write_vars(RuleEnv& env) {
    for (const Axis& a : axes_) {
      if (a.slot != Axis::Slot::Var) continue;
      if (a.flat == -2) {
        const auto& m = arrays_.at(a.name);
        for (std::int64_t f = 0; f < m.total; ++f)
          env.set(a.name, f, a.current());
      } else {
        env.set(a.name, a.flat < 0 ? 0 : a.flat, a.current());
      }
    }
  }

  struct ScalarSig {
    Axis::Slot slot;
    const Domain* dom;
  };

  const Program* prog_;
  Interpreter* interp_;
  std::map<std::string, ScalarSig> scalars_;
  std::map<std::string, ArrayMeta> arrays_;
  std::map<SigKey, std::set<Value>> cuts_;
  std::set<std::pair<SigKey, SigKey>> links_;
  std::vector<StaticOob> static_oob_;
  std::vector<Axis> axes_;
  std::map<std::string, int> scalar_axis_;
  std::uint64_t num_states_ = 0;
  bool exact_ = true;
  bool fallback_read_ = false;
};

/// Report sink with structural dedupe: one finding per (class, base, rule,
/// line) regardless of how many states exhibit it.
class Sink {
 public:
  explicit Sink(AnalysisReport& out) : out_(&out) {}

  void add(DiagClass cls, Severity sev, const RuleBase& rb, int rule_index,
           int line, std::string message, std::string witness = {}) {
    if (!seen_.insert({static_cast<int>(cls), rb.name, rule_index, line})
             .second)
      return;
    Finding f;
    f.cls = cls;
    f.severity = sev;
    f.rule_base = rb.name;
    f.rule_index = rule_index;
    f.line = line;
    f.message = std::move(message);
    f.witness = std::move(witness);
    out_->findings.push_back(std::move(f));
  }

 private:
  AnalysisReport* out_;
  std::set<std::tuple<int, std::string, int, int>> seen_;
};

/// True when an evaluation error denotes an out-of-bounds array or input
/// index (vs. a construct the analyzer cannot model).
bool is_index_error(const std::string& what) {
  return what.find("index outside domain") != std::string::npos ||
         what.find("index out of range") != std::string::npos ||
         what.find("index out of bounds") != std::string::npos;
}

void report_static_oob(const SignalSpace& space, const RuleBase& rb,
                       int rule_index, Sink& sink) {
  for (const auto& s : space.static_oob())
    sink.add(DiagClass::IndexOverflow, Severity::Warning, rb, rule_index,
             s.line,
             "constant index " + s.index_text + " outside the bounds of '" +
                 s.name + "'");
}

/// Completeness + shadowed/dead-rule pass over one rule base.
void analyze_base(const Program& prog, Interpreter& interp,
                  const RuleBase& rb, const AnalysisOptions& opts,
                  Sink& sink, AnalysisReport& out) {
  BaseReport base;
  base.rule_base = rb.name;

  const std::size_t n = rb.rules.size();
  if (n == 0 || n > 64) {
    if (n > 64)
      sink.add(DiagClass::StateBlowup, Severity::Note, rb, -1, rb.line,
               "more than 64 rules; completeness pass skipped");
    out.bases.push_back(base);
    return;
  }

  SignalSpace space(prog, interp);
  for (const Rule& r : rb.rules) space.collect(rb, r, /*premise_only=*/true);
  for (const Rule& r : rb.rules) space.add_cuts(r);

  if (!space.finalize(opts, opts.max_states)) {
    sink.add(DiagClass::StateBlowup, Severity::Note, rb, -1, rb.line,
             "abstract input space exceeds the state budget; completeness "
             "pass skipped");
    out.bases.push_back(base);
    return;
  }

  RuleEnv env(prog);
  interp.set_input_provider(space.provider());

  std::uint64_t true_any = 0, exclusive = 0, evalfail = 0;
  std::vector<std::uint64_t> always_before(n, ~std::uint64_t{0});
  std::vector<std::string> fail_msg(n);
  std::vector<std::string> gap_witness;
  std::uint64_t gaps = 0;

  space.first(env);
  do {
    ++base.states;
    const auto binds = space.param_binds();
    std::uint64_t true_mask = 0, unknown_mask = 0;
    for (std::size_t r = 0; r < n; ++r) {
      try {
        if (interp.eval_expr(env, rb.rules[r].premise, binds).as_bool())
          true_mask |= std::uint64_t{1} << r;
      } catch (const std::exception& ex) {
        unknown_mask |= std::uint64_t{1} << r;
        if (fail_msg[r].empty()) fail_msg[r] = ex.what();
        if (is_index_error(ex.what()))
          sink.add(DiagClass::IndexOverflow, Severity::Warning, rb,
                   static_cast<int>(r), rb.rules[r].line,
                   std::string("premise indexes outside declared bounds: ") +
                       ex.what(),
                   space.state_string());
      }
    }
    evalfail |= unknown_mask;
    true_any |= true_mask;
    if ((true_mask | unknown_mask) == 0) {
      ++gaps;
      if (gap_witness.size() <
          static_cast<std::size_t>(opts.max_gap_witnesses))
        gap_witness.push_back(space.state_string());
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (!(true_mask >> r & 1)) continue;
      const std::uint64_t below = (std::uint64_t{1} << r) - 1;
      const std::uint64_t earlier = true_mask & below;
      if (earlier == 0)
        exclusive |= std::uint64_t{1} << r;  // fires first here
      else
        always_before[r] &= earlier;
    }
  } while (space.next(env));
  interp.set_input_provider(nullptr);

  base.gap_states = gaps;
  base.exact = space.exact();
  out.bases.push_back(base);

  // Universal claims are proofs only over an exact space.
  const Severity uni = base.exact ? Severity::Warning : Severity::Note;
  const char* scope = base.exact ? "" : " (sampled input space)";
  for (std::size_t r = 0; r < n; ++r) {
    const Rule& rule = rb.rules[r];
    if (evalfail >> r & 1) {
      if (!is_index_error(fail_msg[r]))
        sink.add(DiagClass::StateBlowup, Severity::Note, rb,
                 static_cast<int>(r), rule.line,
                 "premise not statically evaluable: " + fail_msg[r]);
      continue;
    }
    if (!(true_any >> r & 1)) {
      sink.add(DiagClass::DeadRule, uni, rb, static_cast<int>(r), rule.line,
               std::string("premise never holds") + scope);
    } else if (!(exclusive >> r & 1)) {
      const std::uint64_t mask =
          always_before[r] & ((std::uint64_t{1} << r) - 1);
      std::string by = "an earlier rule";
      if (mask != 0) {
        const int k = std::countr_zero(mask);
        by = "rule #" + std::to_string(k) + " (line " +
             std::to_string(rb.rules[static_cast<std::size_t>(k)].line) +
             ")";
      }
      sink.add(DiagClass::ShadowedRule, uni, rb, static_cast<int>(r),
               rule.line,
               "never the first applicable rule: always preceded by " + by +
                   scope);
    }
  }
  if (gaps > 0) {
    std::ostringstream msg;
    msg << gaps << " of " << base.states
        << " abstract states fire no rule";
    std::string witness;
    for (const std::string& w : gap_witness) {
      if (!witness.empty()) witness += "; ";
      witness += w;
    }
    sink.add(DiagClass::Incomplete,
             opts.completeness_is_warning ? Severity::Warning
                                          : Severity::Note,
             rb, -1, rb.line, msg.str(), witness);
  }
}

/// Register range / index pass over one rule: at every sampled state where
/// the premise holds, evaluate each conclusion command's indices and values
/// against the declared domains.
void analyze_rule_ranges(const Program& prog, Interpreter& interp,
                         const RuleBase& rb, int rule_index,
                         const AnalysisOptions& opts, Sink& sink) {
  const Rule& rule = rb.rules[static_cast<std::size_t>(rule_index)];
  SignalSpace space(prog, interp);
  space.collect(rb, rule, /*premise_only=*/false);
  space.add_cuts(rule);
  report_static_oob(space, rb, rule_index, sink);

  if (!space.finalize(opts, opts.max_range_states)) {
    sink.add(DiagClass::StateBlowup, Severity::Note, rb, rule_index,
             rule.line,
             "abstract state space exceeds the range-pass budget");
    return;
  }

  RuleEnv env(prog);
  interp.set_input_provider(space.provider());

  const auto eval_opt =
      [&](const ExprPtr& e,
          const std::vector<std::pair<std::string, Value>>& binds,
          int line) -> std::optional<Value> {
    try {
      return interp.eval_expr(env, e, binds);
    } catch (const std::exception& ex) {
      if (is_index_error(ex.what()))
        sink.add(DiagClass::IndexOverflow, Severity::Warning, rb, rule_index,
                 line,
                 std::string("index outside declared bounds: ") + ex.what(),
                 space.state_string());
      return std::nullopt;
    }
  };

  // Recursive conclusion walker; `binds` grows with FORALL bound variables.
  const std::function<void(
      const std::vector<Cmd>&,
      std::vector<std::pair<std::string, Value>>&)>
      walk = [&](const std::vector<Cmd>& cmds,
                 std::vector<std::pair<std::string, Value>>& binds) {
        for (const Cmd& c : cmds) {
          switch (c.kind) {
            case Cmd::Kind::Assign: {
              const VarDecl* d = prog.find_variable(c.target);
              if (d == nullptr) break;
              if (!c.args.empty()) {
                if (const auto idx = eval_opt(c.args[0], binds, c.line)) {
                  const std::int64_t size =
                      d->is_array() ? d->array_size : 1;
                  if (!idx->is_int() || idx->as_int() < 0 ||
                      idx->as_int() >= size)
                    sink.add(DiagClass::IndexOverflow, Severity::Warning,
                             rb, rule_index, c.line,
                             "index " + idx->to_string(prog.syms) +
                                 " outside the bounds of '" + c.target +
                                 "[" + std::to_string(size) + "]'",
                             space.state_string());
                }
              }
              if (const auto v = eval_opt(c.value, binds, c.line))
                if (!d->domain.contains(*v))
                  sink.add(DiagClass::RangeOverflow, Severity::Warning, rb,
                           rule_index, c.line,
                           "assigns " + v->to_string(prog.syms) + " to '" +
                               c.target + "', outside its domain " +
                               d->domain.to_string(prog.syms),
                           space.state_string());
              break;
            }
            case Cmd::Kind::Return: {
              if (const auto v = eval_opt(c.value, binds, c.line))
                if (rb.returns && !rb.returns->contains(*v))
                  sink.add(DiagClass::RangeOverflow, Severity::Warning, rb,
                           rule_index, c.line,
                           "RETURN value " + v->to_string(prog.syms) +
                               " outside the RETURNS domain " +
                               rb.returns->to_string(prog.syms),
                           space.state_string());
              break;
            }
            case Cmd::Kind::Emit: {
              const RuleBase* t = prog.find_rule_base(c.target);
              for (std::size_t i = 0; i < c.args.size(); ++i) {
                const auto v = eval_opt(c.args[i], binds, c.line);
                if (v && t != nullptr && i < t->params.size() &&
                    !t->params[i].domain.contains(*v))
                  sink.add(DiagClass::RangeOverflow, Severity::Warning, rb,
                           rule_index, c.line,
                           "argument " + std::to_string(i + 1) + " of !" +
                               c.target + " is " + v->to_string(prog.syms) +
                               ", outside the parameter domain " +
                               t->params[i].domain.to_string(prog.syms),
                           space.state_string());
              }
              break;
            }
            case Cmd::Kind::ForAll: {
              const auto dv = eval_opt(c.domain, binds, c.line);
              if (!dv) break;
              std::vector<Value> vals;
              if (dv->is_set()) {
                vals = dv->as_set().elements();
              } else if (dv->is_int() && dv->as_int() >= 0 &&
                         dv->as_int() <= 64) {
                for (std::int64_t i = 0; i < dv->as_int(); ++i)
                  vals.push_back(Value::make_int(i));
              }
              for (const Value& v : vals) {
                binds.emplace_back(c.bound, v);
                walk(c.body, binds);
                binds.pop_back();
              }
              break;
            }
          }
        }
      };

  space.first(env);
  do {
    auto binds = space.param_binds();
    bool fires = false;
    try {
      fires = interp.eval_expr(env, rule.premise, binds).as_bool();
    } catch (const std::exception&) {
      // Premise evaluation problems are reported by the base pass.
    }
    if (fires) walk(rule.conclusion, binds);
  } while (space.next(env));
  interp.set_input_provider(nullptr);
}

}  // namespace

AnalysisReport analyze_program(const Program& prog,
                               const AnalysisOptions& opts) {
  AnalysisReport out;
  out.program = prog.name;
  Sink sink(out);
  Interpreter interp(prog);
  for (const RuleBase& rb : prog.rule_bases) {
    analyze_base(prog, interp, rb, opts, sink, out);
    for (std::size_t r = 0; r < rb.rules.size(); ++r)
      analyze_rule_ranges(prog, interp, rb, static_cast<int>(r), opts, sink);
  }
  return out;
}

}  // namespace flexrouter::ruleanalysis
