#include "ruleanalysis/fault_cert.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "routing/cdg.hpp"
#include "ruleanalysis/decision_enum.hpp"
#include "sim/sweep.hpp"
#include "topology/automorphism.hpp"
#include "topology/graph_algo.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter::ruleanalysis {
namespace {

constexpr std::size_t kMaxGroupOrder = 4096;
constexpr std::size_t kMaxFailingSets = 32;

// ---- symmetries: verified automorphisms + a VC relabeling ----------------

/// A program symmetry: a (verified) topology automorphism together with the
/// VC permutation under which the program's decisions are equivariant.
/// sigma always fixes the escape VC.
struct Symmetry {
  Automorphism map;
  std::vector<VcId> sigma;
};

std::vector<VcId> identity_sigma(int num_vcs) {
  std::vector<VcId> s(static_cast<std::size_t>(num_vcs));
  std::iota(s.begin(), s.end(), VcId{0});
  return s;
}

/// All VC permutations that fix the escape VC and move only certified VCs,
/// identity first (the deterministic tie-break when several work).
std::vector<std::vector<VcId>> sigma_candidates(const DeadlockModel& model,
                                                const std::set<VcId>& vcs) {
  std::vector<VcId> movable;
  for (const VcId v : vcs)
    if (v != model.escape_vc) movable.push_back(v);
  std::vector<VcId> perm = movable;  // ascending = identity image first
  std::vector<std::vector<VcId>> out;
  do {
    std::vector<VcId> sigma = identity_sigma(model.num_vcs);
    for (std::size_t i = 0; i < movable.size(); ++i)
      sigma[static_cast<std::size_t>(movable[i])] = perm[i];
    out.push_back(std::move(sigma));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

/// g . nu: permute the per-port link bits of a valuation along the port map
/// of node `n`; the dest_reachable / escape_ok bits ride along unchanged.
std::uint32_t map_valuation(const Automorphism& g, NodeId n, PortId degree,
                            std::uint32_t nu) {
  std::uint32_t out = (nu >> degree) << degree;
  for (PortId p = 0; p < degree; ++p)
    if ((nu >> p) & 1u) out |= 1u << g.map_port(n, p, degree);
  return out;
}

/// The abstract-input valuations that have to be compared at node `n`:
/// every assignment of the fault-sensitive inputs the program reads, with
/// bits of unconnected ports pinned to 0 (a dead port can never read ok).
std::vector<std::uint32_t> node_valuations(const Topology& topo,
                                           const FaultInputAxes& axes,
                                           NodeId n) {
  std::vector<std::uint32_t> bits;
  if (axes.link_bits)
    for (PortId p = 0; p < topo.degree(); ++p)
      if (topo.neighbor(n, p) != kInvalidNode)
        bits.push_back(1u << p);
  if (axes.dest_reachable) bits.push_back(1u << topo.degree());
  if (axes.escape_ok) bits.push_back(1u << (topo.degree() + 1));
  std::vector<std::uint32_t> out;
  out.reserve(std::size_t{1} << bits.size());
  for (std::uint32_t m = 0; m < (1u << bits.size()); ++m) {
    std::uint32_t nu = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
      if ((m >> i) & 1u) nu |= bits[i];
    out.push_back(nu);
  }
  return out;
}

/// Transport a candidate set through (g, sigma) at deciding node `n` and
/// sort it back into set order. Escape candidates are presence tokens (the
/// concrete escape hop is tree-dependent); everything else maps port-wise.
std::vector<Cand> transport_cands(const std::vector<Cand>& cands,
                                  const Automorphism& g,
                                  const std::vector<VcId>& sigma, NodeId n,
                                  PortId degree) {
  std::vector<Cand> out;
  out.reserve(cands.size());
  for (const Cand& c : cands) {
    const PortId p = c.first == kAbstractEscapePort
                         ? kAbstractEscapePort
                         : g.map_port(n, c.first, degree);
    out.push_back({p, sigma[static_cast<std::size_t>(c.second)]});
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Proof obligation for using automorphism `g` with relabeling `sigma` in
/// orbit reduction: for EVERY decision header and EVERY valuation nu of the
/// declared fault-sensitive inputs, D(g.h, g.nu) == sigma.g.D(h, nu).
/// Sweeping all valuations (not just the healthy one) is what makes the
/// identification sound — faulted valuations exercise rule branches no
/// healthy header reaches. Injected headers are special: the injection VC
/// comes from the model, not the header, so both sides take the union over
/// their own seed VCs and the unions must transport onto each other.
bool check_equivariance(DecisionEnumerator& en, const Automorphism& g,
                        const std::vector<VcId>& sigma) {
  const Topology& topo = en.topo();
  const PortId degree = topo.degree();
  std::vector<VcId> vr, vm;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const NodeId gn = g.map_node(n);
    const std::vector<std::uint32_t> vals =
        node_valuations(topo, en.axes(), n);
    for (NodeId d = 0; d < topo.num_nodes(); ++d) {
      const NodeId gd = g.map_node(d);
      for (const std::uint32_t nu : vals) {
        const std::uint32_t gnu = map_valuation(g, n, degree, nu);
        if (n != d) {
          // Injected header: compare the seed-VC unions.
          std::set<Cand> rep, repft, mem, memft;
          en.seed_vcs(n, d, vr);
          for (const VcId v : vr) {
            const AbstractDecision& a = en.decide_abstract(n, d, degree, v, nu);
            if (a.escape_violation) return false;
            rep.insert(a.cands.begin(), a.cands.end());
            repft.insert(a.ft_cands.begin(), a.ft_cands.end());
          }
          en.seed_vcs(gn, gd, vm);
          for (const VcId v : vm) {
            const AbstractDecision& a =
                en.decide_abstract(gn, gd, degree, v, gnu);
            if (a.escape_violation) return false;
            mem.insert(a.cands.begin(), a.cands.end());
            memft.insert(a.ft_cands.begin(), a.ft_cands.end());
          }
          const std::vector<Cand> r(rep.begin(), rep.end());
          const std::vector<Cand> rf(repft.begin(), repft.end());
          if (transport_cands(r, g, sigma, n, degree) !=
              std::vector<Cand>(mem.begin(), mem.end()))
            return false;
          if (transport_cands(rf, g, sigma, n, degree) !=
              std::vector<Cand>(memft.begin(), memft.end()))
            return false;
        }
        // In-flight (and delivery) headers transport in_vc through sigma.
        for (PortId p = 0; p < degree; ++p) {
          if (topo.neighbor(n, p) == kInvalidNode) continue;
          const PortId gp = g.map_port(n, p, degree);
          for (const VcId v : en.included_vcs()) {
            const AbstractDecision& a = en.decide_abstract(n, d, p, v, nu);
            const AbstractDecision& b = en.decide_abstract(
                gn, gd, gp, sigma[static_cast<std::size_t>(v)], gnu);
            if (a.escape_violation || b.escape_violation) return false;
            if (a.delivers != b.delivers) return false;
            if (transport_cands(a.cands, g, sigma, n, degree) != b.cands)
              return false;
            if (transport_cands(a.ft_cands, g, sigma, n, degree) != b.ft_cands)
              return false;
          }
        }
      }
    }
  }
  return true;
}

/// Close the accepted (g, sigma) pairs under composition. Composition of
/// equivariant symmetries is equivariant, so closure members need no
/// re-check. Keyed by (node_map, sigma); includes the identity.
std::vector<Symmetry> close_symmetries(const Topology& topo,
                                       const DeadlockModel& model,
                                       const std::vector<Symmetry>& gens,
                                       bool* complete) {
  using Key = std::pair<std::vector<NodeId>, std::vector<VcId>>;
  std::map<Key, std::size_t> seen;
  std::vector<Symmetry> out;
  Symmetry id{identity_automorphism(topo), identity_sigma(model.num_vcs)};
  seen.emplace(Key{id.map.node_map, id.sigma}, 0);
  out.push_back(std::move(id));
  *complete = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (const Symmetry& g : gens) {
      Symmetry h;
      h.map = compose(topo, g.map, out[i].map);  // apply out[i], then g
      h.sigma.resize(out[i].sigma.size());
      for (std::size_t v = 0; v < h.sigma.size(); ++v)
        h.sigma[v] =
            g.sigma[static_cast<std::size_t>(out[i].sigma[v])];
      const Key key{h.map.node_map, h.sigma};
      if (seen.count(key)) continue;
      if (out.size() >= kMaxGroupOrder) {
        *complete = false;
        return out;
      }
      seen.emplace(key, out.size());
      out.push_back(std::move(h));
    }
  }
  return out;
}

// ---- fault regimes and orbit reduction -----------------------------------

LinkRef canon_link(const Topology& topo, const LinkRef& l) {
  const NodeId m = topo.neighbor(l.node, l.port);
  if (m != kInvalidNode && m < l.node)
    return {m, topo.reverse_port(l.node, l.port)};
  return l;
}

FaultPattern map_pattern(const Topology& topo, const Automorphism& g,
                         const FaultPattern& pat) {
  FaultPattern out;
  out.links.reserve(pat.links.size());
  for (const LinkRef& l : pat.links)
    out.links.push_back(canon_link(topo, g.map_link(l, topo.degree())));
  out.nodes.reserve(pat.nodes.size());
  for (const NodeId n : pat.nodes) out.nodes.push_back(g.map_node(n));
  std::sort(out.links.begin(), out.links.end());
  std::sort(out.nodes.begin(), out.nodes.end());
  return out;
}

struct Regime {
  std::string name;
  std::vector<FaultPattern> sets;
};

/// One canonical orbit: the minimal pattern over the group plus the raw
/// regime members it stands for.
struct Orbit {
  FaultPattern rep;
  std::vector<FaultPattern> members;
  std::size_t regime = 0;
};

void append_combinations(const Topology& topo, int k,
                         std::vector<FaultPattern>& out) {
  const std::vector<LinkRef> links = topo.undirected_links();
  const std::size_t num_elems =
      links.size() + static_cast<std::size_t>(topo.num_nodes());
  std::vector<std::size_t> ix(static_cast<std::size_t>(k));
  std::iota(ix.begin(), ix.end(), std::size_t{0});
  const auto emit = [&] {
    FaultPattern p;
    for (const std::size_t e : ix) {
      if (e < links.size())
        p.links.push_back(links[e]);
      else
        p.nodes.push_back(static_cast<NodeId>(e - links.size()));
    }
    out.push_back(std::move(p));
  };
  if (static_cast<std::size_t>(k) > num_elems) return;
  while (true) {
    emit();
    // Next k-combination of {0..num_elems-1} in lexicographic order.
    std::size_t i = ix.size();
    while (i > 0 && ix[i - 1] == num_elems - (ix.size() - (i - 1))) --i;
    if (i == 0) break;
    ++ix[i - 1];
    for (std::size_t j = i; j < ix.size(); ++j) ix[j] = ix[j - 1] + 1;
  }
}

std::vector<Regime> make_regimes(const Topology& topo,
                                 const FaultCertOptions& opts) {
  std::vector<Regime> regimes;
  regimes.push_back({"k=0", {FaultPattern{}}});
  for (int k = 1; k <= opts.max_faults; ++k) {
    Regime r;
    r.name = "k=" + std::to_string(k);
    append_combinations(topo, k, r.sets);
    regimes.push_back(std::move(r));
  }
  if (!opts.correlated) return regimes;

  // A router that dies together with all of its line cards.
  Regime rl;
  rl.name = "router+links";
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    FaultPattern p;
    p.nodes.push_back(n);
    for (PortId q = 0; q < topo.degree(); ++q)
      if (topo.neighbor(n, q) != kInvalidNode)
        p.links.push_back(canon_link(topo, {n, q}));
    std::sort(p.links.begin(), p.links.end());
    rl.sets.push_back(std::move(p));
  }
  regimes.push_back(std::move(rl));

  if (const auto* mesh = dynamic_cast<const Mesh*>(&topo);
      mesh != nullptr && mesh->dims() == 2 && mesh->radix(1) > 1) {
    // A whole mesh row failing (backplane / power domain).
    Regime rows;
    rows.name = "row";
    for (int y = 0; y < mesh->radix(1); ++y) {
      FaultPattern p;
      for (int x = 0; x < mesh->radix(0); ++x)
        p.nodes.push_back(mesh->at(x, y));
      rows.sets.push_back(std::move(p));
    }
    regimes.push_back(std::move(rows));
  }
  if (const auto* cube = dynamic_cast<const Hypercube*>(&topo);
      cube != nullptr && cube->dimension() >= 2) {
    // A whole (d-1)-subcube failing: every node with bit b of its address
    // equal to v.
    Regime sub;
    sub.name = "subcube";
    for (int b = 0; b < cube->dimension(); ++b)
      for (int v = 0; v < 2; ++v) {
        FaultPattern p;
        for (NodeId n = 0; n < topo.num_nodes(); ++n)
          if (((n >> b) & 1) == v) p.nodes.push_back(n);
        sub.sets.push_back(std::move(p));
      }
    regimes.push_back(std::move(sub));
  }
  return regimes;
}

std::vector<Orbit> reduce_regime(const Topology& topo,
                                 const std::vector<Symmetry>& group,
                                 const std::vector<FaultPattern>& sets,
                                 std::size_t regime_ix) {
  std::map<FaultPattern, std::vector<FaultPattern>> orbits;
  for (const FaultPattern& pat : sets) {
    FaultPattern canon = pat;
    for (const Symmetry& g : group) {
      FaultPattern m = map_pattern(topo, g.map, pat);
      if (m < canon) canon = std::move(m);
    }
    orbits[std::move(canon)].push_back(pat);
  }
  std::vector<Orbit> out;
  out.reserve(orbits.size());
  for (auto& [rep, members] : orbits)
    out.push_back({rep, std::move(members), regime_ix});
  return out;
}

// ---- per-fault-set certification -----------------------------------------

struct MemberResult {
  bool deadlock_failed = false;
  bool conn_failed = false;
  bool progress_failed = false;
  std::vector<Finding> findings;
};

struct OrbitOutcome {
  bool deadlock_failed = false;
  bool conn_failed = false;
  bool progress_failed = false;
  bool expanded = false;
  bool clean = true;  // no failure at any severity
  std::uint64_t members_checked = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t reused = 0;
  std::vector<Finding> findings;
  std::vector<FaultPattern> failing;  // members with error-level findings
};

std::string state_str(const Channel& c, NodeId dest) {
  std::ostringstream os;
  os << "(" << c.node << ":" << c.port << "/" << c.vc << " | dest " << dest
     << ")";
  return os.str();
}

/// Depth-first search for a cycle in the per-destination decision relation;
/// returns the state indices along the first cycle found (empty = acyclic).
std::vector<int> find_state_cycle(const std::vector<std::vector<int>>& adj) {
  const std::size_t n = adj.size();
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<int> path;
  std::vector<std::pair<int, std::size_t>> stack;
  for (std::size_t s0 = 0; s0 < n; ++s0) {
    if (color[s0] != 0) continue;
    stack.push_back({static_cast<int>(s0), 0});
    while (!stack.empty()) {
      auto& [s, child] = stack.back();
      if (child == 0) {
        color[static_cast<std::size_t>(s)] = 1;
        path.push_back(s);
      }
      if (child < adj[static_cast<std::size_t>(s)].size()) {
        const int t = adj[static_cast<std::size_t>(s)][child++];
        if (color[static_cast<std::size_t>(t)] == 0) {
          stack.push_back({t, 0});
        } else if (color[static_cast<std::size_t>(t)] == 1) {
          const auto it = std::find(path.begin(), path.end(), t);
          return std::vector<int>(it, path.end());
        }
      } else {
        color[static_cast<std::size_t>(s)] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return {};
}

class MemberCertifier {
 public:
  MemberCertifier(DecisionEnumerator& en, const FaultCertOptions& opts,
                  int claim)
      : en_(en), opts_(opts), claim_(claim), topo_(en.topo()) {}

  MemberResult run(const FaultPattern& pat) {
    pat_ = &pat;
    const FaultSet fs = pat.to_fault_set(topo_);
    en_.set_faults(fs);
    graph_ = ChannelDepGraph{};
    state_ix_.clear();
    states_.clear();
    adj_.clear();
    frontier_.clear();
    witnesses_.clear();
    suppressed_ = 0;
    res_ = MemberResult{};

    seed_all(fs);
    while (!frontier_.empty()) {
      const int s = frontier_.back();
      frontier_.pop_back();
      expand(s, fs);
    }

    finish_connectivity(fs);
    const CdgReport cdg = graph_.check();
    if (!cdg.acyclic) {
      res_.deadlock_failed = true;
      Finding f;
      f.cls = DiagClass::DeadlockCycle;
      f.severity = Severity::Error;
      f.rule_base = en_.model().route_base;
      std::ostringstream msg;
      msg << "channel-dependency cycle under " << describe_faults(fs) << " ("
          << cdg.num_channels << " channels, " << cdg.num_edges << " edges)";
      f.message = msg.str();
      f.witness = format_cycle_witness(cdg.cycle, fs);
      res_.findings.push_back(std::move(f));
    }
    const std::vector<int> cyc = find_state_cycle(adj_);
    if (!cyc.empty()) {
      res_.progress_failed = true;
      Finding f;
      f.cls = DiagClass::LivelockCycle;
      f.severity = Severity::Error;
      f.rule_base = en_.model().route_base;
      std::ostringstream msg;
      msg << "no well-founded progress measure: " << cyc.size()
          << "-state decision cycle toward one destination under "
          << describe_faults(fs);
      f.message = msg.str();
      std::ostringstream wit;
      const std::size_t shown =
          std::min<std::size_t>(cyc.size(), kMaxWitnessChannels);
      for (std::size_t i = 0; i < shown; ++i) {
        const auto& [cid, dest] = states_[static_cast<std::size_t>(cyc[i])];
        wit << state_str(graph_.channel(cid), dest) << " -> ";
      }
      if (cyc.size() > shown)
        wit << "... +" << (cyc.size() - shown) << " more -> ";
      const auto& [cid0, dest0] = states_[static_cast<std::size_t>(cyc[0])];
      wit << state_str(graph_.channel(cid0), dest0);
      f.witness = wit.str();
      res_.findings.push_back(std::move(f));
    }
    return std::move(res_);
  }

 private:
  int intern_state(int cid, NodeId dest, bool* fresh) {
    const auto [it, inserted] =
        state_ix_.emplace(std::make_pair(cid, dest), states_.size());
    if (inserted) {
      states_.push_back({cid, dest});
      adj_.emplace_back();
    }
    *fresh = inserted;
    return static_cast<int>(it->second);
  }

  void witness_conn(const std::string& w) {
    if (witnesses_.size() < opts_.max_witnesses_per_fault_set)
      witnesses_.push_back(w);
    else
      ++suppressed_;
    res_.conn_failed = true;
  }

  /// Usable candidates of a decision under `fs`: the primary base, joined
  /// by the fault-mode companion base when faults are present.
  void usable_cands(const EnumeratedDecision& d, NodeId node,
                    const FaultSet& fs, std::vector<Cand>& primary,
                    bool* ft_covers) {
    primary.clear();
    for (const Cand& c : d.cands)
      if (fs.link_usable(node, c.first)) primary.push_back(c);
    *ft_covers = false;
    if (!fs.fault_free() && en_.has_ft_base()) {
      for (const Cand& c : d.ft_cands)
        if (fs.link_usable(node, c.first)) {
          *ft_covers = true;
          break;
        }
    }
  }

  void seed_all(const FaultSet& fs) {
    std::vector<VcId> seeds;
    std::vector<Cand> usable;
    for (NodeId s = 0; s < topo_.num_nodes(); ++s) {
      if (fs.node_faulty(s)) continue;
      for (NodeId d = 0; d < topo_.num_nodes(); ++d) {
        if (d == s || fs.node_faulty(d)) continue;
        if (!en_.connected_now(s, d)) continue;
        en_.seed_vcs(s, d, seeds);
        for (const VcId vc : seeds) {
          const EnumeratedDecision& dec =
              en_.decide(s, d, topo_.degree(), vc);
          bool ft_covers = false;
          usable_cands(dec, s, fs, usable, &ft_covers);
          if (usable.empty() && !ft_covers)
            witness_conn("injection at " + std::to_string(s) + " for dest " +
                         std::to_string(d) + " on vc " + std::to_string(vc) +
                         " has no usable candidate");
          for (const Cand& c : usable) {
            const int to = graph_.channel_id({s, c.first, c.second});
            bool fresh = false;
            const int st = intern_state(to, d, &fresh);
            if (fresh) frontier_.push_back(st);
          }
        }
      }
    }
  }

  void expand(int state, const FaultSet& fs) {
    const auto [cid, dest] = states_[static_cast<std::size_t>(state)];
    const Channel c = graph_.channel(cid);
    const NodeId m = topo_.neighbor(c.node, c.port);
    const PortId rev = topo_.reverse_port(c.node, c.port);
    const EnumeratedDecision& dec = en_.decide(m, dest, rev, c.vc);
    if (m == dest) {
      // Arrival state: a delivery rule must consume the header; candidates
      // past the destination are not followed (consumption assumption).
      if (!dec.delivers)
        witness_conn("arrival " + state_str(c, dest) +
                     " is not consumed by any delivery rule");
      return;
    }
    bool ft_covers = false;
    std::vector<Cand> usable;
    usable_cands(dec, m, fs, usable, &ft_covers);
    if (usable.empty() && !ft_covers)
      witness_conn("state " + state_str(c, dest) +
                   " dead-ends: no usable candidate");
    for (const Cand& cc : usable) {
      const int to = graph_.channel_id({m, cc.first, cc.second});
      graph_.add_edge(cid, to);
      bool fresh = false;
      const int st = intern_state(to, dest, &fresh);
      adj_[static_cast<std::size_t>(state)].push_back(st);
      if (fresh) frontier_.push_back(st);
    }
  }

  void finish_connectivity(const FaultSet& fs) {
    if (witnesses_.empty()) return;
    Finding f;
    f.cls = DiagClass::Blackhole;
    // Inside the program's declared tolerance a broken route is a broken
    // promise; beyond it the program never claimed to survive.
    f.severity = pat_->elements() <= static_cast<std::size_t>(claim_)
                     ? Severity::Error
                     : Severity::Note;
    f.rule_base = en_.model().route_base;
    std::ostringstream msg;
    msg << "static connectivity broken under " << describe_faults(fs) << ": "
        << witnesses_.size() + suppressed_
        << " dead-end or undelivered decision state(s)";
    f.message = msg.str();
    std::ostringstream wit;
    for (std::size_t i = 0; i < witnesses_.size(); ++i) {
      if (i > 0) wit << "; ";
      wit << witnesses_[i];
    }
    if (suppressed_ > 0) wit << " (+" << suppressed_ << " more)";
    f.witness = wit.str();
    res_.findings.push_back(std::move(f));
  }

  DecisionEnumerator& en_;
  const FaultCertOptions& opts_;
  const int claim_;
  const Topology& topo_;
  const FaultPattern* pat_ = nullptr;

  ChannelDepGraph graph_;
  std::map<std::pair<int, NodeId>, std::size_t> state_ix_;
  std::vector<std::pair<int, NodeId>> states_;  // (channel id, dest)
  std::vector<std::vector<int>> adj_;
  std::vector<int> frontier_;
  std::vector<std::string> witnesses_;
  std::size_t suppressed_ = 0;
  MemberResult res_;
};

/// Does the representative's verdict transport to every orbit member?
/// Non-escape programs: always (equivariance covered the whole decision).
/// Escape programs additionally pin the escape tree's root component: the
/// root is the healthy node of maximal usable degree, so when all such
/// argmax nodes share one component — a property preserved by any
/// automorphism — every member's escape layer serves the image of the same
/// component, escape reachability is equivariant, and the tree-dependent
/// next hops are covered by the audited-token argument (up*/down* trees are
/// acyclic and destination-directed whatever the member's tree looks like).
bool transport_safe(const DecisionEnumerator& en, const FaultSet& fs) {
  if (en.model().escape_vc < 0) return true;
  if (!en.escape_port_audited()) return false;
  const Topology& topo = en.topo();
  const std::vector<int> comp = components(fs);
  int best = -1;
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    if (!fs.node_faulty(n)) best = std::max(best, fs.usable_degree(n));
  int root_comp = -1;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (fs.node_faulty(n) || fs.usable_degree(n) != best) continue;
    const int c = comp[static_cast<std::size_t>(n)];
    if (root_comp < 0) root_comp = c;
    if (c != root_comp) return false;
  }
  return true;
}

void merge_member(OrbitOutcome& out, MemberResult&& mr,
                  const FaultPattern& pat, std::size_t max_findings) {
  out.deadlock_failed = out.deadlock_failed || mr.deadlock_failed;
  out.conn_failed = out.conn_failed || mr.conn_failed;
  out.progress_failed = out.progress_failed || mr.progress_failed;
  if (mr.deadlock_failed || mr.conn_failed || mr.progress_failed)
    out.clean = false;
  bool has_error = false;
  for (Finding& f : mr.findings) {
    if (f.severity == Severity::Error) has_error = true;
    if (out.findings.size() < max_findings)
      out.findings.push_back(std::move(f));
  }
  if (has_error) out.failing.push_back(pat);
  ++out.members_checked;
}

OrbitOutcome certify_orbit(DecisionEnumerator& en, const Orbit& orbit,
                           const FaultCertOptions& opts, int claim) {
  OrbitOutcome out;
  const std::uint64_t ev0 = en.evaluated();
  const std::uint64_t ru0 = en.reused();
  MemberCertifier cert(en, opts, claim);
  const FaultSet rep_fs = orbit.rep.to_fault_set(en.topo());
  if (orbit.members.size() <= 1 || transport_safe(en, rep_fs)) {
    merge_member(out, cert.run(orbit.rep), orbit.rep, opts.max_findings);
  } else {
    // The escape tree is not automorphism-stable for this fault shape:
    // fall back to certifying every raw member of the orbit directly.
    out.expanded = true;
    for (const FaultPattern& m : orbit.members)
      merge_member(out, cert.run(m), m, opts.max_findings);
  }
  out.evaluated = en.evaluated() - ev0;
  out.reused = en.reused() - ru0;
  return out;
}

}  // namespace

// ---- public surface ------------------------------------------------------

std::string FaultPattern::to_string() const {
  if (empty()) return "no faults";
  std::ostringstream os;
  os << "faults={";
  bool first = true;
  for (const LinkRef& l : links) {
    if (!first) os << ", ";
    os << "link " << l.node << ":" << l.port;
    first = false;
  }
  for (const NodeId n : nodes) {
    if (!first) os << ", ";
    os << "node " << n;
    first = false;
  }
  os << "}";
  return os.str();
}

FaultSet FaultPattern::to_fault_set(const Topology& topo) const {
  FaultSet fs(topo);
  for (const LinkRef& l : links) fs.fail_link(l.node, l.port);
  for (const NodeId n : nodes) fs.fail_node(n);
  return fs;
}

int FaultCertReport::count(Severity s) const {
  int n = 0;
  for (const Finding& f : findings)
    if (f.severity == s) ++n;
  return n;
}

bool FaultCertReport::clean(bool werror) const {
  if (count(Severity::Error) > 0) return false;
  if (werror && count(Severity::Warning) > 0) return false;
  return true;
}

std::string FaultCertReport::to_string() const {
  std::ostringstream os;
  os << "fault certificate: " << program << " on " << topology << " (claim <="
     << fault_tolerance << " fault" << (fault_tolerance == 1 ? "" : "s")
     << "): " << (certified ? "CERTIFIED" : "FAILED") << "\n";
  os << "  symmetry: group order " << group_order
     << (group_complete ? "" : " (truncated)") << ", " << generators
     << " generator(s) kept, " << generators_dropped << " dropped; "
     << raw_fault_sets << " fault sets -> " << orbit_count << " orbits (x"
     << reduction_factor << ")\n";
  os << "  reuse: " << stats.decisions_reused << " revalidated / "
     << stats.decisions_evaluated << " fresh decisions (baseline "
     << stats.baseline_decisions << "), " << stats.orbits_expanded
     << " orbit(s) expanded\n";
  for (const RegimeSummary& r : regimes) {
    os << "  regime " << r.name << ": " << r.raw_sets << " set(s), "
       << r.orbits << " orbit(s)";
    if (r.certified()) {
      os << " - certified\n";
    } else {
      os << " - failures: deadlock " << r.deadlock_failures
         << ", connectivity " << r.connectivity_failures << ", progress "
         << r.progress_failures << "\n";
    }
  }
  for (const Finding& f : findings) os << "  " << f.to_string() << "\n";
  for (const std::string& i : info) os << "  " << i << "\n";
  return os.str();
}

FaultCertReport certify_faults(const rules::Program& prog,
                               const DeadlockModel& model,
                               const Topology& topo,
                               const FaultCertOptions& opts) {
  FaultCertReport rep;
  rep.program = prog.name;
  rep.topology = topo.name();
  rep.fault_tolerance = model.fault_tolerance;

  DecisionEnumerator main_en(prog, model, topo);
  if (!main_en.ok()) {
    Finding f;
    f.cls = DiagClass::DeadlockUnmodeled;
    f.severity = Severity::Note;
    f.rule_base = model.route_base;
    f.message = main_en.error();
    rep.findings.push_back(std::move(f));
    return rep;
  }

  // Warm the healthy baseline and certify the fault-free regime on the main
  // enumerator; worker enumerators then share the baseline read-only.
  const std::vector<Regime> regimes = make_regimes(topo, opts);
  rep.regimes.reserve(regimes.size());
  for (const Regime& r : regimes) {
    RegimeSummary s;
    s.name = r.name;
    s.raw_sets = r.sets.size();
    rep.regimes.push_back(std::move(s));
  }
  const int claim = model.fault_tolerance;
  OrbitOutcome healthy =
      certify_orbit(main_en, Orbit{FaultPattern{}, {FaultPattern{}}, 0}, opts,
                    claim);

  // Build the program's symmetry group: every verified topology
  // automorphism generator survives only if the program is provably
  // equivariant under it (for some VC relabeling).
  std::vector<Symmetry> kept;
  const std::vector<Automorphism> gens = automorphism_generators(topo);
  const std::vector<std::vector<VcId>> sigmas =
      sigma_candidates(model, main_en.included_vcs());
  const bool escape_transportable =
      model.escape_vc < 0 || main_en.escape_port_audited();
  for (const Automorphism& g : gens) {
    bool matched = false;
    if (escape_transportable) {
      for (const std::vector<VcId>& sig : sigmas) {
        if (check_equivariance(main_en, g, sig)) {
          kept.push_back({g, sig});
          matched = true;
          break;
        }
      }
    }
    if (!matched) ++rep.generators_dropped;
  }
  rep.generators = kept.size();
  const std::vector<Symmetry> group =
      close_symmetries(topo, model, kept, &rep.group_complete);
  rep.group_order = group.size();

  // Quotient every regime to canonical orbits.
  std::vector<Orbit> orbits;  // flattened; index 0 is the healthy regime
  orbits.push_back({FaultPattern{}, {FaultPattern{}}, 0});
  for (std::size_t r = 1; r < regimes.size(); ++r) {
    std::vector<Orbit> reduced =
        reduce_regime(topo, group, regimes[r].sets, r);
    for (Orbit& o : reduced) orbits.push_back(std::move(o));
  }

  // Fan the faulted orbits out on the sweep pool. Each worker owns an
  // enumerator sharing the warmed healthy baseline; outcome slots are
  // index-ordered, so aggregation is deterministic at any thread count.
  std::vector<OrbitOutcome> outcomes(orbits.size());
  outcomes[0] = std::move(healthy);
  if (orbits.size() > 1) {
    SweepOptions sopts;
    sopts.num_threads = opts.num_threads;
    SweepRunner runner(sopts);
    const std::size_t workers = std::min<std::size_t>(
        static_cast<std::size_t>(runner.num_threads()), orbits.size() - 1);
    std::vector<std::unique_ptr<DecisionEnumerator>> wens;
    for (std::size_t w = 0; w < workers; ++w) {
      auto en = std::make_unique<DecisionEnumerator>(prog, model, topo);
      FR_REQUIRE(en->ok());
      en->share_baseline(&main_en);
      wens.push_back(std::move(en));
    }
    std::vector<std::function<void()>> tasks;
    for (std::size_t w = 0; w < workers; ++w)
      tasks.push_back([&, w] {
        for (std::size_t i = 1 + w; i < orbits.size(); i += workers)
          outcomes[i] = certify_orbit(*wens[w], orbits[i], opts, claim);
      });
    runner.run_tasks(tasks);
    for (const auto& en : wens) main_en.merge_notes(*en);
  }

  // Deterministic index-ordered aggregation.
  std::size_t kept_findings = 0;
  std::size_t elided_findings = 0;
  for (std::size_t i = 0; i < orbits.size(); ++i) {
    const Orbit& o = orbits[i];
    OrbitOutcome& out = outcomes[i];
    RegimeSummary& r = rep.regimes[o.regime];
    ++r.orbits;
    if (out.deadlock_failed) ++r.deadlock_failures;
    if (out.conn_failed) ++r.connectivity_failures;
    if (out.progress_failed) ++r.progress_failures;
    rep.stats.decisions_evaluated += out.evaluated;
    rep.stats.decisions_reused += out.reused;
    rep.stats.members_checked += out.members_checked;
    ++rep.stats.orbits_checked;
    if (out.expanded) ++rep.stats.orbits_expanded;
    for (Finding& f : out.findings) {
      if (f.severity == Severity::Error) rep.certified = false;
      if (kept_findings < opts.max_findings) {
        rep.findings.push_back(std::move(f));
        ++kept_findings;
      } else {
        ++elided_findings;
      }
    }
    for (const FaultPattern& p : out.failing)
      if (rep.failing_sets.size() < kMaxFailingSets)
        rep.failing_sets.push_back(p);
    if (out.clean && !o.rep.empty() && o.rep.nodes.empty() &&
        rep.certified_samples.size() < opts.max_certified_samples)
      rep.certified_samples.push_back(o.rep);
  }
  if (elided_findings > 0) {
    Finding f;
    f.cls = DiagClass::Blackhole;
    f.severity = Severity::Note;
    f.rule_base = model.route_base;
    f.message = "+" + std::to_string(elided_findings) +
                " more finding(s) elided (raise max_findings for the full "
                "list)";
    rep.findings.push_back(std::move(f));
  }

  // Fold in what escaped the abstraction, as in certify_deadlock.
  if (main_en.has_ft_base() && opts.max_faults > 0) {
    Finding f;
    f.cls = DiagClass::DeadlockUnmodeled;
    f.severity = Severity::Note;
    f.rule_base = model.route_base;
    f.message = "fault-mode base '" + model.ft_route_base +
                "' joins the connectivity check only; its candidates are "
                "not followed by the closure";
    rep.findings.push_back(std::move(f));
  }
  for (const std::string& m : main_en.unmodeled()) {
    Finding f;
    f.cls = DiagClass::DeadlockUnmodeled;
    f.severity = Severity::Note;
    f.rule_base = model.route_base;
    f.message = m;
    rep.findings.push_back(std::move(f));
  }

  rep.stats.baseline_decisions = main_en.baseline_size();
  for (const RegimeSummary& r : rep.regimes) {
    rep.raw_fault_sets += r.raw_sets;
    rep.orbit_count += r.orbits;
  }
  rep.reduction_factor =
      rep.orbit_count > 0 ? static_cast<double>(rep.raw_fault_sets) /
                                static_cast<double>(rep.orbit_count)
                          : 1.0;
  {
    std::ostringstream os;
    os << "fault certification of '" << prog.name << "': " << rep.raw_fault_sets
       << " fault sets in " << rep.regimes.size() << " regimes -> "
       << rep.orbit_count << " orbits under a group of order "
       << rep.group_order;
    rep.info.push_back(os.str());
  }
  return rep;
}

}  // namespace flexrouter::ruleanalysis
