// Sampled abstract interpretation over rule programs.
//
// The analyzer builds, per rule base, a finite abstraction of the input
// space: one axis per referenced parameter, scalar input/variable, and
// array element (arrays indexed by data collapse to one shared element when
// too large). Each axis carries a sample set — the full domain when small,
// otherwise boundaries plus the cut points of every comparison in the
// premises — and the cartesian product is enumerated. Every enumerated
// point is a *concrete* state, so anything the analyzer observes (a gap, an
// out-of-range assignment) is a real behavior, never a false positive; when
// the product covers the whole concrete space the pass is marked exact and
// universal claims (dead rule, shadowed rule) become proofs.
#pragma once

#include "ruleanalysis/diagnostics.hpp"
#include "ruleengine/ast.hpp"

namespace flexrouter::ruleanalysis {

/// Run completeness, shadowing/dead-rule and range/index analysis over
/// every rule base of `prog`. The program must have passed validation.
AnalysisReport analyze_program(const rules::Program& prog,
                               const AnalysisOptions& opts = {});

}  // namespace flexrouter::ruleanalysis
