#include "ruleanalysis/diagnostics.hpp"

#include <sstream>

namespace flexrouter::ruleanalysis {

const char* to_string(DiagClass c) {
  switch (c) {
    case DiagClass::InvalidProgram: return "invalid-program";
    case DiagClass::Incomplete: return "incomplete";
    case DiagClass::ShadowedRule: return "shadowed-rule";
    case DiagClass::DeadRule: return "dead-rule";
    case DiagClass::RangeOverflow: return "range-overflow";
    case DiagClass::IndexOverflow: return "index-overflow";
    case DiagClass::StateBlowup: return "state-blowup";
    case DiagClass::DeadlockCycle: return "deadlock-cycle";
    case DiagClass::DeadlockUnmodeled: return "deadlock-unmodeled";
    case DiagClass::Blackhole: return "blackhole";
    case DiagClass::LivelockCycle: return "livelock-cycle";
  }
  return "?";
}

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  os << ruleanalysis::to_string(severity) << "["
     << ruleanalysis::to_string(cls) << "]";
  if (!rule_base.empty()) {
    os << " " << rule_base;
    if (rule_index >= 0) os << "#" << rule_index;
  }
  if (line > 0) os << " (line " << line << ")";
  os << ": " << message;
  if (!witness.empty()) os << " [" << witness << "]";
  return os.str();
}

int AnalysisReport::count(Severity s) const {
  int n = 0;
  for (const Finding& f : findings)
    if (f.severity == s) ++n;
  return n;
}

bool AnalysisReport::clean(bool werror) const {
  if (count(Severity::Error) > 0) return false;
  return !werror || count(Severity::Warning) == 0;
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  os << "== " << program << " ==\n";
  for (const BaseReport& b : bases) {
    os << "  base " << b.rule_base << ": " << b.states << " states";
    if (b.exact) os << " (exact)";
    if (b.gap_states > 0) os << ", " << b.gap_states << " gaps";
    os << "\n";
  }
  for (const std::string& line : info) os << "  " << line << "\n";
  for (const Finding& f : findings) os << "  " << f.to_string() << "\n";
  os << "  " << count(Severity::Error) << " errors, "
     << count(Severity::Warning) << " warnings, " << count(Severity::Note)
     << " notes\n";
  return os.str();
}

}  // namespace flexrouter::ruleanalysis
