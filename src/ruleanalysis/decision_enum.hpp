// May/must decision enumeration of rule programs under an abstract input
// model — the engine shared by the static deadlock certifier (deadlock.cpp)
// and the k-fault certification engine (fault_cert.cpp).
//
// A decision header (node, dest, in_port, in_vc) fixes the catalog inputs
// the host computes (coordinates, link health, escape-layer signals); every
// other input is enumerated over its declared domain. The channels of every
// may-firing rule up to and including the first must-firing one are
// collected, so the candidate relation over-approximates the live router:
// a dependency edge is never missed.
//
// Three additions over the PR 4 certifier make fault sweeps tractable:
//  * every fault-sensitive catalog read (link_ok, link_fault,
//    dest_reachable, escape_ok, escape_port) is recorded with its observed
//    value, so a healthy baseline decision can be revalidated under a new
//    fault set in O(reads) instead of re-enumerated — programs that read no
//    fault inputs reuse their entire baseline;
//  * decisions carry a `delivers` flag (a local-port candidate at the
//    destination), driving the static connectivity property;
//  * an abstract mode evaluates a header under an explicit valuation of
//    the fault-sensitive inputs instead of a concrete FaultSet — the
//    equivariance check behind orbit reduction sweeps all valuations, so a
//    symmetry is only trusted where every faulted branch was compared.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "routing/updown.hpp"
#include "ruleanalysis/deadlock.hpp"
#include "ruleengine/ast.hpp"
#include "ruleengine/env.hpp"
#include "ruleengine/interp.hpp"
#include "topology/fault_model.hpp"
#include "topology/mesh.hpp"
#include "topology/topology.hpp"

namespace flexrouter::ruleanalysis {

/// One fault-sensitive catalog read observed while enumerating a decision.
/// A baseline decision stays valid under a different fault set iff every
/// recorded read recomputes to the same value there.
struct CatalogRead {
  enum class Kind : std::uint8_t {
    LinkOk,         // link_usable(node, port) — also backs link_fault
    DestReachable,  // connected(faults, node, dest)
    EscapeOk,       // escape table reaches (node, dest)
    EscapePort,     // next escape hop (or degree when unroutable)
  };
  Kind kind = Kind::LinkOk;
  PortId port = kInvalidPort;  // LinkOk only: the queried port
  std::int32_t value = 0;
  bool operator==(const CatalogRead&) const = default;
  bool operator<(const CatalogRead& o) const {
    return std::tie(kind, port, value) < std::tie(o.kind, o.port, o.value);
  }
};

using Cand = std::pair<PortId, VcId>;

/// The enumerated may-candidate set of one decision header.
struct EnumeratedDecision {
  std::vector<Cand> cands;     // primary route-base candidates
  std::vector<Cand> ft_cands;  // fault-mode companion base (connectivity
                               // union only; empty without an ft base)
  /// A local-port candidate fired with node == dest: the header is
  /// consumed here.
  bool delivers = false;
  std::vector<CatalogRead> reads;
};

/// Sentinel port of escape-layer candidates in abstract mode: the concrete
/// escape next hop is tree-dependent, so the equivariance check compares
/// escape candidates as presence tokens (sound because the escape_port
/// audit proves the symbol only ever names the port of an escape-VC emit).
inline constexpr PortId kAbstractEscapePort = -2;

/// A decision under an explicit fault-input valuation (abstract mode).
struct AbstractDecision {
  std::vector<Cand> cands;
  std::vector<Cand> ft_cands;
  bool delivers = false;
  /// An escape-VC candidate appeared whose port is not the audited
  /// escape_port symbol (breaks the token abstraction), or a non-escape
  /// candidate fired from an on-escape header (breaks stickiness).
  bool escape_violation = false;
  bool operator==(const AbstractDecision&) const = default;
};

/// Which fault-sensitive catalog inputs the certified rule bases reference;
/// these are the axes of the abstract-valuation grid.
struct FaultInputAxes {
  bool link_bits = false;       // link_ok or link_fault
  bool dest_reachable = false;
  bool escape_ok = false;
  bool escape_port = false;
};

class DecisionEnumerator {
 public:
  /// The program must have passed validation. `ok()` is false when the
  /// model cannot be enumerated (missing base, parameters, BySignDy off a
  /// 2-D mesh); `error()` says why.
  DecisionEnumerator(const rules::Program& prog, const DeadlockModel& model,
                     const Topology& topo);

  DecisionEnumerator(const DecisionEnumerator&) = delete;
  DecisionEnumerator& operator=(const DecisionEnumerator&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Switch the concrete fault state: copies the set, recomputes
  /// components, rebuilds the escape table and drops the per-fault-set
  /// overlay. The healthy baseline memo is kept for reuse.
  void set_faults(const FaultSet& faults);
  const FaultSet& faults() const { return faults_; }

  /// Reuse another enumerator's healthy baseline read-only (parallel orbit
  /// workers share the warmed baseline of the main enumerator). The base
  /// must outlive this object and must not be mutated concurrently.
  void share_baseline(const DecisionEnumerator* base) { shared_ = base; }

  /// May-candidates of a header under the current fault set. References
  /// stay valid until the enumerator is destroyed or set_faults is called
  /// (baseline entries survive set_faults).
  const EnumeratedDecision& decide(NodeId node, NodeId dest, PortId in_port,
                                   VcId in_vc);

  /// Abstract-mode decision: fault-sensitive inputs come from `valuation`
  /// (bit p = link_ok(p) for p < degree, bit degree = dest_reachable, bit
  /// degree+1 = escape_ok) instead of the fault set. Memoized.
  const AbstractDecision& decide_abstract(NodeId node, NodeId dest,
                                          PortId in_port, VcId in_vc,
                                          std::uint32_t valuation);

  /// Injection-seed VCs of a (src, dest) pair under the model.
  void seed_vcs(NodeId s, NodeId d, std::vector<VcId>& out) const;

  /// Both endpoints alive and in the same component of the current faults.
  bool connected_now(NodeId a, NodeId b) const {
    const auto ca = comp_[static_cast<std::size_t>(a)];
    return ca >= 0 && ca == comp_[static_cast<std::size_t>(b)];
  }

  const rules::Program& program() const { return prog_; }
  const DeadlockModel& model() const { return model_; }
  const Topology& topo() const { return topo_; }
  const Mesh* mesh() const { return mesh_; }
  const UpDownTable& escape() const { return escape_; }
  const std::set<VcId>& included_vcs() const { return included_vcs_; }
  bool has_ft_base() const { return ft_rb_ != nullptr; }
  const FaultInputAxes& axes() const { return axes_; }
  /// True when the escape_port symbol provably appears only as the port of
  /// escape-VC cand emits (or is never used): the abstract escape token and
  /// the member-transport argument for escape channels are then sound.
  bool escape_port_audited() const { return escape_port_audited_; }

  std::uint64_t evaluated() const { return evaluated_; }
  std::uint64_t reused() const { return reused_; }
  std::uint64_t baseline_size() const { return baseline_.size(); }
  void reset_counters() { evaluated_ = reused_ = 0; }

  const std::set<std::string>& unmodeled() const { return unmodeled_; }
  const std::set<std::int64_t>& excluded_classes() const {
    return excluded_classes_;
  }
  bool modeled() const { return modeled_; }
  /// Fold another enumerator's notes into this one (worker aggregation).
  void merge_notes(const DecisionEnumerator& other);

 private:
  struct Unknown {
    std::string name;
    std::int64_t flat = -1;  // flattened index, -1 = scalar
    std::vector<rules::Value> vals;
    std::size_t cur = 0;
  };
  using DecisionKey = std::tuple<NodeId, NodeId, PortId, VcId>;
  using AbstractKey = std::pair<DecisionKey, std::uint32_t>;

  DecisionKey make_key(NodeId node, NodeId dest, PortId in_port,
                       VcId in_vc) const;
  std::optional<rules::Value> known_input(const std::string& name,
                                          const std::vector<rules::Value>& idx);
  rules::Value provide(const std::string& name,
                       const std::vector<rules::Value>& idx);
  bool advance();
  void enumerate_base(const rules::RuleBase& rb, bool is_ft,
                      std::set<Cand>& out);
  rules::Value eval(const rules::ExprPtr& e);
  void collect_cmds(const std::vector<rules::Cmd>& cmds, bool is_ft,
                    std::set<Cand>& out);
  void collect_cmd(const rules::Cmd& c, bool is_ft, std::set<Cand>& out);
  void add_cand(PortId port, VcId vc, std::set<Cand>& out);
  void record(CatalogRead::Kind kind, PortId port, std::int32_t value);
  /// Recompute every recorded read under the current fault state; true iff
  /// all values match (the baseline decision transfers).
  bool validate(const DecisionKey& key, const EnumeratedDecision& d);
  std::int32_t recompute(const CatalogRead& r) const;
  void note_unmodeled(const std::string& msg);
  void scan_axes();
  /// Audit that `escape_port` only ever appears verbatim as the port of an
  /// escape-VC cand emit (and every escape-VC cand emit uses it); on
  /// failure the token abstraction is off and a note is recorded.
  void audit_escape_port();

  const rules::Program& prog_;
  const DeadlockModel& model_;
  const Topology& topo_;
  FaultSet faults_;
  std::vector<int> comp_;
  rules::Interpreter interp_;
  rules::RuleEnv env_;
  const rules::RuleBase* rb_ = nullptr;
  const rules::RuleBase* ft_rb_ = nullptr;
  const Mesh* mesh_ = nullptr;
  UpDownTable escape_;
  std::string error_;
  FaultInputAxes axes_;
  bool escape_port_audited_ = false;

  // Current decision header (read by the input provider).
  NodeId node_ = 0;
  NodeId dest_ = 0;
  PortId in_port_ = 0;
  VcId in_vc_ = 0;
  bool abstract_ = false;
  std::uint32_t valuation_ = 0;
  bool delivers_ = false;
  bool escape_violation_ = false;
  std::vector<CatalogRead> reads_;

  std::vector<Unknown> unknowns_;
  std::map<std::pair<std::string, std::int64_t>, std::size_t> uix_;
  bool discovered_ = false;
  std::vector<std::pair<std::string, rules::Value>> binds_;

  std::set<VcId> included_vcs_;
  std::map<DecisionKey, EnumeratedDecision> baseline_;
  const DecisionEnumerator* shared_ = nullptr;
  std::map<DecisionKey, const EnumeratedDecision*> overlay_;
  std::deque<EnumeratedDecision> overlay_owned_;
  std::map<AbstractKey, AbstractDecision> abs_memo_;

  std::uint64_t evaluated_ = 0;
  std::uint64_t reused_ = 0;
  std::set<std::int64_t> excluded_classes_;
  std::set<std::string> unmodeled_;
  bool modeled_ = true;
};

}  // namespace flexrouter::ruleanalysis
