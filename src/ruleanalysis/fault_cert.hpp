// Exhaustive bounded-fault certification of rule programs (rulelint
// --faults <k>).
//
// For every fault set of up to k link/node faults — plus named correlated
// regimes (a router with all its links, mesh rows, hypercube subcubes) —
// three properties of the routing program are certified statically, with a
// concrete witness on failure:
//   (a) deadlock freedom: the channel-dependency graph stays acyclic;
//   (b) connectivity: no reachable decision state dead-ends short of its
//       destination (blackhole detection) and the delivery rule fires at
//       the destination — with the may-candidate over-approximation this
//       means "no textual blackhole": a reported dead end is real, a clean
//       verdict says no rule text covers the gap;
//   (c) progress: the per-destination decision relation is acyclic, i.e. a
//       topological order serves as a well-founded measure ruling out
//       static livelock cycles.
//
// Tractability comes from two reductions. Fault sets are quotiented to
// canonical orbits under the topology's automorphism group — but a
// symmetry is only used after the program itself is proved equivariant
// under it, by sweeping every header against every valuation of the
// program's declared fault-sensitive inputs (a healthy-grid comparison
// would be unsound: faulted valuations exercise rule branches no healthy
// header reaches). Within an orbit representative, decisions are
// revalidated against the cached healthy baseline via their recorded
// fault-sensitive reads, so programs that never read fault inputs reuse
// their entire enumeration. Orbit checking fans out on the deterministic
// sweep worker pool; aggregation is index-ordered, so the report is
// bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ruleanalysis/deadlock.hpp"
#include "topology/fault_model.hpp"
#include "topology/topology.hpp"

namespace flexrouter::ruleanalysis {

/// One concrete fault set: canonical undirected link endpoints (smaller
/// node id first) plus faulted nodes, both sorted.
struct FaultPattern {
  std::vector<LinkRef> links;
  std::vector<NodeId> nodes;

  std::size_t elements() const { return links.size() + nodes.size(); }
  bool empty() const { return links.empty() && nodes.empty(); }
  bool operator==(const FaultPattern&) const = default;
  bool operator<(const FaultPattern& o) const {
    if (links != o.links) return links < o.links;
    return nodes < o.nodes;
  }
  /// "faults={link 5:0, node 3}" (or "no faults").
  std::string to_string() const;
  /// The pattern applied to a fresh fault set on `topo`.
  FaultSet to_fault_set(const Topology& topo) const;
};

/// One row of the program x fault-regime verdict matrix.
struct RegimeSummary {
  std::string name;  // "k=0", "k=1", ..., "router+links", "row", "subcube"
  std::uint64_t raw_sets = 0;  // concrete fault sets in the regime
  std::uint64_t orbits = 0;    // canonical orbits actually certified
  /// Orbits with at least one failing member, per property.
  std::uint64_t deadlock_failures = 0;
  std::uint64_t connectivity_failures = 0;
  std::uint64_t progress_failures = 0;

  bool certified() const {
    return deadlock_failures == 0 && connectivity_failures == 0 &&
           progress_failures == 0;
  }
};

/// Cost accounting of the incremental re-enumeration (EXPERIMENTS.md
/// records the symmetry-reduction and baseline-reuse wins from these).
struct OrbitStats {
  std::uint64_t decisions_evaluated = 0;  // enumerated fresh under faults
  std::uint64_t decisions_reused = 0;     // healthy baseline revalidated
  std::uint64_t baseline_decisions = 0;   // healthy enumeration size
  std::uint64_t orbits_checked = 0;       // representative certifications
  std::uint64_t orbits_expanded = 0;      // orbits re-checked member by
                                          // member (transport unsafe)
  std::uint64_t members_checked = 0;      // fault sets actually certified
};

struct FaultCertOptions {
  /// Certify every fault set of up to this many elements (k). 0 = only the
  /// healthy topology.
  int max_faults = 1;
  /// Also certify the named correlated regimes.
  bool correlated = true;
  /// Connectivity/progress witnesses reported per fault set before "+M
  /// more" elision.
  std::size_t max_witnesses_per_fault_set = 2;
  /// Findings kept per program report before "+M more" elision.
  std::size_t max_findings = 12;
  /// Sweep worker threads (0 = FLEXROUTER_THREADS / hardware).
  int num_threads = 0;
  /// Certified-safe representatives sampled for dynamic spot checks
  /// (link-fault patterns only: node-fault replays retire in-flight
  /// packets to the dead node as unrecoverable by design).
  std::size_t max_certified_samples = 3;
};

/// The per-program certificate.
struct FaultCertReport {
  std::string program;
  std::string topology;
  int fault_tolerance = 0;  // the model's declared claim

  // Symmetry statistics.
  std::size_t generators = 0;     // equivariance-checked generators kept
  std::size_t generators_dropped = 0;  // verified automorphisms the program
                                       // is not equivariant under
  std::size_t group_order = 1;
  bool group_complete = true;
  std::uint64_t raw_fault_sets = 0;
  std::uint64_t orbit_count = 0;
  double reduction_factor = 1.0;  // raw_fault_sets / orbit_count

  std::vector<RegimeSummary> regimes;
  OrbitStats stats;
  std::vector<Finding> findings;
  std::vector<std::string> info;

  /// Error-severity witness fault sets (for FaultSchedule replay).
  std::vector<FaultPattern> failing_sets;
  /// Fully clean link-only representatives (for dynamic spot checks).
  std::vector<FaultPattern> certified_samples;

  /// No error findings: every property holds on every fault set inside the
  /// program's claim (and deadlock/progress everywhere).
  bool certified = true;

  int count(Severity s) const;
  bool clean(bool werror) const;
  std::string to_string() const;
};

/// Certify `prog` on `topo` under every bounded fault set. The program
/// must have passed validation; `model` declares its decision style and
/// fault-tolerance claim (model_for).
FaultCertReport certify_faults(const rules::Program& prog,
                               const DeadlockModel& model,
                               const Topology& topo,
                               const FaultCertOptions& opts = {});

}  // namespace flexrouter::ruleanalysis
