// rulelint driver: run the full static-analysis pipeline (parse, validate,
// abstract interpretation, deadlock certification) over one source text or
// over the whole rule-base corpus. Shared by the tools/rulelint CLI, the
// rulelint_corpus ctest and the mutation tests.
#pragma once

#include <string>
#include <vector>

#include "ruleanalysis/analyzer.hpp"
#include "ruleanalysis/deadlock.hpp"

namespace flexrouter::ruleanalysis {

struct CorpusLintOptions {
  AnalysisOptions analysis;
  /// Skip the deadlock certification stage (analysis only).
  bool deadlock = true;
};

/// Lint one rule program source: parse, validate, analyze and — when
/// `model_for` knows the program — statically certify deadlock freedom on
/// the topology the program's own constants describe (width/height for
/// meshes, dim for hypercubes). Parse and validation failures are reported
/// as error findings, not exceptions.
AnalysisReport lint_source(const std::string& source,
                           const CorpusLintOptions& opts = {});

struct CorpusLintResult {
  std::vector<AnalysisReport> reports;

  bool clean(bool werror) const;
  std::string to_string() const;
};

/// Lint every program of rulebases:: — the runnable decision programs at
/// the sizes the differential tests use, the Table 1/2 accounting corpora
/// at a closure-friendly 4x4 / d=3, plus a faulted ft_mesh certification.
CorpusLintResult lint_corpus(const CorpusLintOptions& opts = {});

}  // namespace flexrouter::ruleanalysis
