// rulelint driver: run the full static-analysis pipeline (parse, validate,
// abstract interpretation, deadlock certification) over one source text or
// over the whole rule-base corpus. Shared by the tools/rulelint CLI, the
// rulelint_corpus ctest and the mutation tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ruleanalysis/analyzer.hpp"
#include "ruleanalysis/deadlock.hpp"
#include "ruleanalysis/fault_cert.hpp"

namespace flexrouter::ruleanalysis {

struct CorpusLintOptions {
  AnalysisOptions analysis;
  /// Skip the deadlock certification stage (analysis only).
  bool deadlock = true;
};

/// Lint one rule program source: parse, validate, analyze and — when
/// `model_for` knows the program — statically certify deadlock freedom on
/// the topology the program's own constants describe (width/height for
/// meshes, dim for hypercubes). Parse and validation failures are reported
/// as error findings, not exceptions.
AnalysisReport lint_source(const std::string& source,
                           const CorpusLintOptions& opts = {});

struct CorpusLintResult {
  std::vector<AnalysisReport> reports;

  bool clean(bool werror) const;
  std::string to_string() const;
};

/// Lint every program of rulebases:: — the runnable decision programs at
/// the sizes the differential tests use, the Table 1/2 accounting corpora
/// at a closure-friendly 4x4 / d=3, plus a faulted ft_mesh certification.
CorpusLintResult lint_corpus(const CorpusLintOptions& opts = {});

/// Fault-certify one rule program source on the topology its constants
/// describe (rulelint --faults, mutation tests). nullopt when the source
/// does not parse/validate, has no deadlock model, or names no topology.
std::optional<FaultCertReport> fault_cert_source(
    const std::string& source, const FaultCertOptions& opts = {});

struct FaultCertCorpusResult {
  std::vector<FaultCertReport> reports;

  bool clean(bool werror) const;
  std::string to_string() const;
};

/// The per-program k-fault certificate over the shipped corpus, each on its
/// home test-scale topology (the same sizes lint_corpus certifies). The CI
/// gate: with max_faults = 1 and --werror every report must be clean —
/// programs that claim fault tolerance must certify it, and programs that
/// claim none may only degrade to note-level findings.
FaultCertCorpusResult fault_cert_corpus(const FaultCertOptions& opts = {});

/// One runnable rule base AOT-compiled to its decision table
/// (rulelint --emit-table / the aot_table_corpus ctest).
struct TableReport {
  std::string program;            // program @ the topology it was built for
  bool active = false;            // a table tier is serving (analysis
                                  // accepted; direct, compressed or lazy)
  std::string tier = "vm";        // chosen tier: vm/direct/compressed/lazy
  std::string classifier = "none";  // dest-class classifier, if any
  std::string tier_reason;        // why this tier (budget arithmetic,
                                  // classifier verdict, VM keep-alive cause)
  std::uint64_t full_entries = 0;  // uncompressed premise-space size
  double compression_ratio = 1.0;  // full_entries / allocated entries
  std::uint64_t entries = 0;      // premise points tabulated (direct and
                                  // compressed; lazy allocation bound)
  std::uint64_t resolved = 0;     // entries with a stored decision
  std::uint64_t unreachable = 0;  // points no packet can present
  std::uint64_t fallback = 0;     // presentable points left to the VM
  std::uint64_t bytes = 0;        // entries + arena footprint
  double fallback_fraction = 1.0;
};

/// AOT-compile every runnable decision program of the corpus — at the sizes
/// the differential tests use AND at the 4096-node scale (64x64 meshes,
/// 12-cubes) — and report its table. The shipped-corpus gate: each report
/// must reach a non-VM tier, and the eager tiers (direct/compressed) must
/// leave zero presentable premise points to the VM fallback. The lazy tier
/// fills from the miss path, so its fallback counter is structurally zero
/// only after traffic; the gate checks tier, not fill state, there.
std::vector<TableReport> emit_table_corpus();

std::string to_string(const std::vector<TableReport>& reports);

}  // namespace flexrouter::ruleanalysis
