#include "ruleanalysis/corpus_lint.hpp"

#include <exception>
#include <memory>
#include <sstream>
#include <utility>

#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "ruleengine/parser.hpp"
#include "ruleengine/validate.hpp"
#include "topology/fault_model.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter::ruleanalysis {
namespace {

std::int64_t int_constant(const rules::Program& prog, const std::string& name,
                          std::int64_t fallback) {
  const auto it = prog.constants.find(name);
  if (it == prog.constants.end() || !it->second.is_int()) return fallback;
  return it->second.as_int();
}

/// The topology a program routes: its own constants describe it (width and
/// height for meshes, dim for hypercubes).
std::unique_ptr<Topology> topology_of(const rules::Program& prog) {
  if (prog.constants.count("width") && prog.constants.count("height")) {
    const auto w = static_cast<int>(int_constant(prog, "width", 0));
    const auto h = static_cast<int>(int_constant(prog, "height", 0));
    if (w >= 2 && h >= 2) return std::make_unique<Mesh>(Mesh::two_d(w, h));
  }
  if (prog.constants.count("dim")) {
    const auto d = static_cast<int>(int_constant(prog, "dim", 0));
    if (d >= 1 && d <= 16) return std::make_unique<Hypercube>(d);
  }
  return nullptr;
}

void certify_onto(AnalysisReport& report, const rules::Program& prog,
                  const DeadlockModel& model, const Topology& topo,
                  const FaultSet& faults, const std::string& context) {
  DeadlockCertificate cert = certify_deadlock(prog, model, topo, faults);
  std::ostringstream os;
  os << "deadlock certificate";
  if (!context.empty()) os << " (" << context << ")";
  os << ": " << (cert.report.acyclic ? "acyclic" : "CYCLIC") << ", "
     << cert.report.num_channels << " channels, " << cert.report.num_edges
     << " edges, " << cert.decisions << " decisions";
  if (!cert.modeled) os << ", partial model";
  report.info.push_back(os.str());
  for (Finding& f : cert.findings) {
    if (!context.empty()) f.message += " [" + context + "]";
    report.findings.push_back(std::move(f));
  }
}

}  // namespace

AnalysisReport lint_source(const std::string& source,
                           const CorpusLintOptions& opts) {
  AnalysisReport report;
  rules::Program prog;
  try {
    prog = rules::parse_program(source);
  } catch (const std::exception& e) {
    report.program = "<unparsed>";
    Finding f;
    f.cls = DiagClass::InvalidProgram;
    f.severity = Severity::Error;
    f.message = std::string("parse error: ") + e.what();
    report.findings.push_back(std::move(f));
    return report;
  }
  const auto diags = rules::validate_program(prog);
  if (!diags.empty()) {
    // The analyzer's contract needs a validated program; stop here.
    report.program = prog.name;
    for (const auto& d : diags) {
      Finding f;
      f.cls = DiagClass::InvalidProgram;
      f.severity = Severity::Error;
      f.line = d.line;
      f.message = d.message;
      report.findings.push_back(std::move(f));
    }
    return report;
  }
  report = analyze_program(prog, opts.analysis);
  if (opts.deadlock) {
    if (const auto model = model_for(prog)) {
      const std::unique_ptr<Topology> topo = topology_of(prog);
      if (topo == nullptr) {
        Finding f;
        f.cls = DiagClass::DeadlockUnmodeled;
        f.severity = Severity::Note;
        f.message = "program constants describe no known topology; "
                    "deadlock certification skipped";
        report.findings.push_back(std::move(f));
      } else {
        const FaultSet faults(*topo);
        certify_onto(report, prog, *model, *topo, faults, "");
      }
    }
  }
  return report;
}

CorpusLintResult lint_corpus(const CorpusLintOptions& opts) {
  CorpusLintResult out;
  // Runnable decision programs at the sizes the differential tests use;
  // the accounting corpora on closure-friendly 4x4 meshes / 3-cubes.
  out.reports.push_back(lint_source(rulebases::nara_route_source(8, 8), opts));
  out.reports.push_back(lint_source(rulebases::ecube_route_source(3), opts));
  out.reports.push_back(
      lint_source(rulebases::ft_mesh_route_source(4, 4), opts));
  out.reports.push_back(
      lint_source(rulebases::nafta_program_source(4, 4), opts));
  out.reports.push_back(lint_source(rulebases::nara_program_source(4, 4), opts));
  out.reports.push_back(
      lint_source(rulebases::route_c_program_source(3, 2), opts));
  out.reports.push_back(
      lint_source(rulebases::route_c_nft_program_source(3, 2), opts));
  if (opts.deadlock) {
    // Faulted re-certification of the fault-tolerant mesh program: the
    // rebuilt escape layer must keep the dependency graph acyclic.
    rules::Program prog =
        rules::parse_program(rulebases::ft_mesh_route_source(4, 4));
    if (const auto model = model_for(prog)) {
      const Mesh mesh = Mesh::two_d(4, 4);
      FaultSet faults(mesh);
      faults.fail_link(mesh.at(1, 1), /*port=*/0);
      faults.fail_node(mesh.at(2, 2));
      AnalysisReport rep;
      rep.program = prog.name + " (faulted)";
      certify_onto(rep, prog, *model, mesh, faults, "1 link + 1 node fault");
      out.reports.push_back(std::move(rep));
    }
  }
  return out;
}

std::vector<TableReport> emit_table_corpus() {
  struct Case {
    std::string source;
    int num_vcs;
    VcId escape_vc;
  };
  // The runnable decision programs at the sizes the differential tests and
  // benches use, plus the 4096-node fabrics the tier ladder exists for
  // (64x64 meshes and 12-cubes blow the direct budget; the compressed and
  // lazy tiers must absorb them). Each AOT-compiles against its own
  // topology (topology_of on the program's constants) with a clean fault
  // set.
  const Case cases[] = {
      {rulebases::nara_route_source(8, 8), 2, -1},
      {rulebases::ft_mesh_route_source(8, 8), 3, 2},
      {rulebases::ecube_route_source(6), 1, -1},
      {rulebases::ecube_msb_route_source(6), 1, -1},
      {rulebases::nara_route_source(64, 64), 2, -1},
      {rulebases::ft_mesh_route_source(64, 64), 3, 2},
      {rulebases::ecube_route_source(12), 1, -1},
      {rulebases::ecube_msb_route_source(12), 1, -1},
  };
  std::vector<TableReport> out;
  for (const Case& c : cases) {
    // The algorithm builds its execution image on attach; parse a separate
    // copy up front to read the topology constants.
    const rules::Program prog = rules::parse_program(c.source);
    const std::unique_ptr<Topology> topo = topology_of(prog);
    TableReport rep;
    rep.program = prog.name;
    if (topo == nullptr) {
      out.push_back(std::move(rep));
      continue;
    }
    RuleDrivenRouting algo(c.source, c.num_vcs, rules::ExecMode::Aot, "route",
                           c.escape_vc);
    const FaultSet faults(*topo);
    algo.attach(*topo, faults);
    rep.program += " @ " + topo->name();
    rep.active = algo.aot_active();
    const RuleDrivenRouting::AotTierInfo ti = algo.aot_tier_info();
    rep.tier = RuleDrivenRouting::tier_name(ti.tier);
    rep.classifier = rules::to_string(ti.classifier);
    rep.tier_reason = ti.reason;
    rep.full_entries = ti.full_entries;
    rep.compression_ratio = ti.compression_ratio;
    if (ti.tier == RuleDrivenRouting::AotTier::Lazy) {
      // The lazy tier has no eager fill to account: report the allocation
      // bound (the budget split across nodes) as the table size.
      rep.entries = ti.table_entries;
      rep.bytes = ti.table_entries * sizeof(rules::AotEntry);
      rep.fallback_fraction = 0.0;
    } else {
      const rules::AotTable::Stats st = algo.aot_stats();
      rep.entries = st.entries;
      rep.resolved = st.resolved;
      rep.unreachable = st.unreachable;
      rep.fallback = st.fallback;
      rep.bytes = st.bytes;
      rep.fallback_fraction = st.fallback_fraction();
    }
    out.push_back(std::move(rep));
  }
  return out;
}

std::string to_string(const std::vector<TableReport>& reports) {
  std::ostringstream os;
  for (const TableReport& r : reports) {
    os << r.program << ": ";
    if (!r.active) {
      os << "NO TABLE (VM fallback serves every decision; "
         << (r.tier_reason.empty() ? "no reason recorded" : r.tier_reason)
         << ")\n";
      continue;
    }
    os << "tier " << r.tier;
    if (r.classifier != "none") os << " [" << r.classifier << "]";
    if (r.compression_ratio > 1.0)
      os << " " << r.compression_ratio << "x compression";
    os << ", ";
    if (r.tier == "lazy") {
      os << r.entries << " entries allocated (of " << r.full_entries
         << " premise points; filled on first touch), " << r.bytes
         << " bytes\n";
      continue;
    }
    os << r.entries << " entries (" << r.resolved << " resolved, "
       << r.unreachable << " unreachable, " << r.fallback << " fallback), "
       << r.bytes << " bytes, fallback fraction " << r.fallback_fraction
       << "\n";
  }
  return os.str();
}

std::optional<FaultCertReport> fault_cert_source(const std::string& source,
                                                 const FaultCertOptions& opts) {
  rules::Program prog;
  try {
    prog = rules::parse_program(source);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!rules::validate_program(prog).empty()) return std::nullopt;
  const auto model = model_for(prog);
  if (!model) return std::nullopt;
  const std::unique_ptr<Topology> topo = topology_of(prog);
  if (topo == nullptr) return std::nullopt;
  return certify_faults(prog, *model, *topo, opts);
}

FaultCertCorpusResult fault_cert_corpus(const FaultCertOptions& opts) {
  FaultCertCorpusResult out;
  // The same programs and home test-scale topologies lint_corpus certifies.
  const std::string sources[] = {
      rulebases::nara_route_source(8, 8),
      rulebases::ecube_route_source(3),
      rulebases::ft_mesh_route_source(4, 4),
      rulebases::nafta_program_source(4, 4),
      rulebases::nara_program_source(4, 4),
      rulebases::route_c_program_source(3, 2),
      rulebases::route_c_nft_program_source(3, 2),
  };
  for (const std::string& src : sources)
    if (auto rep = fault_cert_source(src, opts))
      out.reports.push_back(std::move(*rep));
  return out;
}

bool FaultCertCorpusResult::clean(bool werror) const {
  for (const FaultCertReport& r : reports)
    if (!r.clean(werror)) return false;
  return true;
}

std::string FaultCertCorpusResult::to_string() const {
  std::ostringstream os;
  for (const FaultCertReport& r : reports) os << r.to_string();
  return os.str();
}

bool CorpusLintResult::clean(bool werror) const {
  for (const AnalysisReport& r : reports)
    if (!r.clean(werror)) return false;
  return true;
}

std::string CorpusLintResult::to_string() const {
  std::ostringstream os;
  for (const AnalysisReport& r : reports) os << r.to_string();
  return os.str();
}

}  // namespace flexrouter::ruleanalysis
