// Diagnostic vocabulary of the rule-program static analyzer (rulelint).
//
// Findings are classified along the paper's fault taxonomy: completeness
// (does some rule fire in every reachable input state), determinism/priority
// (shadowed and dead rules), register safety (assignments provably inside
// the declared domains the hardware cost model charges bits for) and
// deadlock freedom (static channel-dependency certification).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flexrouter::ruleanalysis {

enum class DiagClass {
  InvalidProgram,  // parse or validation failure (pre-analysis)
  Incomplete,     // abstract input state where no rule of a base fires
  ShadowedRule,   // rule never first-to-fire: an earlier rule always wins
  DeadRule,       // premise unsatisfiable over the analyzed input space
  RangeOverflow,  // assignment/RETURN/event argument outside its domain
  IndexOverflow,  // array or input index outside the declared bounds
  StateBlowup,    // abstract state space exceeded the budget; pass skipped
  DeadlockCycle,  // static channel-dependency graph has a cycle (witness)
  DeadlockUnmodeled,  // program shape outside the certifier's input model
  Blackhole,      // reachable decision state with no usable candidate (or a
                  // destination arrival no delivery rule consumes)
  LivelockCycle,  // per-destination decision relation has a static cycle:
                  // no well-founded progress measure exists
};

enum class Severity { Note, Warning, Error };

const char* to_string(DiagClass c);
const char* to_string(Severity s);

/// One diagnostic. `witness` carries the abstract state (or dependency
/// cycle) that exhibits the problem; empty when no witness applies.
struct Finding {
  DiagClass cls = DiagClass::Incomplete;
  Severity severity = Severity::Note;
  std::string rule_base;  // empty = program level
  int rule_index = -1;    // 0-based within the base, -1 = base level
  int line = 0;           // source line in the rule program
  std::string message;
  std::string witness;

  std::string to_string() const;
};

/// Knobs of the sampled abstract interpretation. Defaults fit the corpus:
/// full enumeration of mesh-coordinate domains (cardinality 8), bounded
/// cartesian products, boundary+cut-point sampling beyond that.
struct AnalysisOptions {
  /// Domains up to this cardinality enumerate fully; larger ones sample
  /// boundaries, midpoints and comparison cut points.
  std::uint64_t full_enum_cardinality = 8;
  /// Abstract state budget of the per-base completeness/shadowing pass.
  std::uint64_t max_states = std::uint64_t{1} << 18;
  /// Abstract state budget of the per-rule range pass.
  std::uint64_t max_range_states = std::uint64_t{1} << 14;
  /// Arrays accessed with data-dependent indices are modeled per element up
  /// to this many elements, then collapsed to one shared abstract element.
  std::uint64_t max_array_elements = 16;
  /// Completeness gap witnesses reported per rule base.
  int max_gap_witnesses = 3;
  /// Promote Incomplete from Note to Warning (a base whose fall-through
  /// means "no action this cycle" legitimately has gaps, so default off).
  bool completeness_is_warning = false;
};

/// Per-rule-base coverage statistics of the completeness pass.
struct BaseReport {
  std::string rule_base;
  /// Abstract states enumerated (0 when the pass was skipped).
  std::uint64_t states = 0;
  /// States where no rule fired.
  std::uint64_t gap_states = 0;
  /// True when the analyzed space was the exact concrete input space
  /// (every axis fully enumerated, nothing collapsed): Shadowed/Dead
  /// verdicts are then proofs, not samples, and report as warnings.
  bool exact = false;
};

struct AnalysisReport {
  std::string program;
  std::vector<Finding> findings;
  std::vector<BaseReport> bases;
  /// Informational lines (deadlock certificate summaries etc.).
  std::vector<std::string> info;

  int count(Severity s) const;
  /// With `werror`: no warnings or errors. Without: no errors.
  bool clean(bool werror) const;
  std::string to_string() const;
};

}  // namespace flexrouter::ruleanalysis
