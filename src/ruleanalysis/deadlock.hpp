// Static deadlock certification of rule programs (rulelint).
//
// Reconstructs, from the rules alone, the channel-dependency graph a
// routing program induces on its topology. The routing conclusions —
// !cand(port, vc, prio) events, RETURN <port> values or ROUTE_C
// !dirset(mask, class) events — are enumerated under an abstract input
// model: inputs the host catalog of RuleDrivenRouting computes (node
// coordinates, link health, the escape-layer signals) are evaluated
// concretely per (node, dest, in_port, in_vc) decision header, every other
// input is left free and enumerated over its declared domain. A rule MAY
// fire when its premise holds under some assignment of its free inputs and
// MUST fire when it holds under all of them; the channels requested by
// every may-firing rule up to and including the first must-firing one are
// collected, so the dependency relation is an over-approximation: a cycle
// is never missed, the certificate can only err towards reporting one.
// Edges feed the same ChannelDepGraph used by check_cdg on the live
// algorithms, so static and dynamic verdicts are directly comparable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "routing/cdg.hpp"
#include "ruleanalysis/diagnostics.hpp"
#include "ruleengine/ast.hpp"
#include "topology/fault_model.hpp"
#include "topology/topology.hpp"

namespace flexrouter::ruleanalysis {

/// How the certified rule base expresses its (turn, vc) decision.
enum class DecisionStyle {
  CandEvents,  // !cand(port, vc, prio) host events (runnable programs)
  ReturnPort,  // RETURN <symbol> ranked in the RETURNS domain; vc = in_vc
  DirsetMask,  // !dirset(mask, class): mask bits = ports, class -> vc
};

/// Virtual channels a header occupies when injected at the source.
enum class InjectionVcs {
  Zero,      // always VC 0 (the rules re-route onto the right VC)
  All,       // any certified VC
  BySignDy,  // NAFTA/NARA double network: VC 1 iff ydes > ypos, VC 0 iff
             // ydes < ypos, both when equal (x-only traffic)
};

/// Input model of one corpus program: which rule base routes, how its
/// conclusions map to channels, and which VCs the certificate covers.
struct DeadlockModel {
  std::string route_base = "route";
  DecisionStyle style = DecisionStyle::CandEvents;
  InjectionVcs injection = InjectionVcs::Zero;
  int num_vcs = 1;
  /// VC of the up*/down* escape layer (-1 = none). Enables the escape_*
  /// entries of the input catalog.
  int escape_vc = -1;
  /// DirsetMask only: class id -> VC. Classes absent here (ROUTE_C's
  /// escape/misroute commands) are excluded and reported as a note.
  std::map<std::int64_t, int> class_vcs;
  /// Declared fault-tolerance claim of the program: static connectivity
  /// failures under fault sets of at most this many elements are
  /// certification errors; beyond it they demote to notes (the program
  /// never promised to survive them). Deadlock and progress failures are
  /// errors at every fault count.
  int fault_tolerance = 0;
  /// Fault-mode companion rule base (NAFTA's `in_message_ft`): under a
  /// non-empty fault set its may-candidates are unioned into the
  /// connectivity check only — the dependency graph and progress measure
  /// still cover just the primary base (reported as a note), mirroring the
  /// excluded-class treatment of ROUTE_C.
  std::string ft_route_base;
};

/// The certifier's verdict. `report.acyclic` is the deadlock-freedom
/// claim; it is trustworthy as a proof only when `modeled` (no construct
/// fell outside the input model and no free-input space was truncated).
struct DeadlockCertificate {
  CdgReport report;
  std::vector<Finding> findings;
  /// False when part of the program escaped the abstraction (findings
  /// carry deadlock-unmodeled notes saying what).
  bool modeled = true;
  /// Distinct (node, dest, in_port, in_vc) decision headers evaluated.
  std::uint64_t decisions = 0;
};

/// Witness channels printed per dependency cycle before eliding the rest
/// as "+M more" (large faulted CDGs can otherwise dump unbounded lists).
inline constexpr std::size_t kMaxWitnessChannels = 16;

/// "faults={link n:p, node m, ...}" (or "no faults") — the fault-set tag
/// every faulted witness carries.
std::string describe_faults(const FaultSet& faults);

/// A dependency-cycle witness capped at kMaxWitnessChannels channels and
/// tagged with the fault set that produced it.
std::string format_cycle_witness(const std::vector<Channel>& cycle,
                                 const FaultSet& faults);

/// The built-in model for a corpus program, keyed by PROGRAM name;
/// nullopt when the program has no routing rule base to certify.
std::optional<DeadlockModel> model_for(const rules::Program& prog);

/// Build and check the static channel-dependency graph of `prog` on
/// `topo` with the given fault state. The program must have passed
/// validation.
DeadlockCertificate certify_deadlock(const rules::Program& prog,
                                     const DeadlockModel& model,
                                     const Topology& topo,
                                     const FaultSet& faults);

}  // namespace flexrouter::ruleanalysis
