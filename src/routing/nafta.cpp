#include "routing/nafta.hpp"

namespace flexrouter {

void Nafta::attach(const Topology& topo, const FaultSet& faults) {
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  FR_REQUIRE_MSG(mesh_ != nullptr && mesh_->dims() == 2,
                 "NAFTA requires a 2-D mesh");
  faults_ = &faults;
  max_path_len_ = 2 * (mesh_->radix(0) + mesh_->radix(1)) + 8;
  reconfigure();
}

int Nafta::reconfigure() {
  int exchanges = escape_.rebuild(*faults_);
  exchanges += compute_dead_ends();
  exchanges += compute_deactivation();
  epoch_ = faults_->epoch();
  return exchanges;
}

int Nafta::compute_dead_ends() {
  const int w = mesh_->radix(0);
  const int h = mesh_->radix(1);
  const auto n = static_cast<std::size_t>(mesh_->num_nodes());
  for (auto& v : dead_end_) v.assign(n, 0);

  // A column/row "has a fault" if it contains a faulty node or an endpoint
  // of a faulty link.
  std::vector<char> col_fault(static_cast<std::size_t>(w), 0);
  std::vector<char> row_fault(static_cast<std::size_t>(h), 0);
  for (const NodeId bad : faults_->faulty_nodes()) {
    col_fault[static_cast<std::size_t>(mesh_->x_of(bad))] = 1;
    row_fault[static_cast<std::size_t>(mesh_->y_of(bad))] = 1;
  }
  for (const LinkRef& l : faults_->faulty_links()) {
    const NodeId a = l.node;
    const NodeId b = mesh_->neighbor(a, l.port);
    for (const NodeId e : {a, b}) {
      col_fault[static_cast<std::size_t>(mesh_->x_of(e))] = 1;
      row_fault[static_cast<std::size_t>(mesh_->y_of(e))] = 1;
    }
  }

  // Suffix/prefix conjunctions, computed as the wave propagation would be:
  // dead-end-east at column c <=> every column > c has a fault.
  std::vector<char> dee(static_cast<std::size_t>(w)), dew(dee), den, des;
  den.resize(static_cast<std::size_t>(h));
  des.resize(static_cast<std::size_t>(h));
  dee[static_cast<std::size_t>(w - 1)] = 1;  // vacuous: nothing further east
  for (int c = w - 2; c >= 0; --c)
    dee[static_cast<std::size_t>(c)] =
        col_fault[static_cast<std::size_t>(c + 1)] &&
        dee[static_cast<std::size_t>(c + 1)];
  dew[0] = 1;
  for (int c = 1; c < w; ++c)
    dew[static_cast<std::size_t>(c)] =
        col_fault[static_cast<std::size_t>(c - 1)] &&
        dew[static_cast<std::size_t>(c - 1)];
  den[static_cast<std::size_t>(h - 1)] = 1;
  for (int r = h - 2; r >= 0; --r)
    den[static_cast<std::size_t>(r)] =
        row_fault[static_cast<std::size_t>(r + 1)] &&
        den[static_cast<std::size_t>(r + 1)];
  des[0] = 1;
  for (int r = 1; r < h; ++r)
    des[static_cast<std::size_t>(r)] =
        row_fault[static_cast<std::size_t>(r - 1)] &&
        des[static_cast<std::size_t>(r - 1)];

  for (NodeId node = 0; node < mesh_->num_nodes(); ++node) {
    const auto x = static_cast<std::size_t>(mesh_->x_of(node));
    const auto y = static_cast<std::size_t>(mesh_->y_of(node));
    dead_end_[static_cast<std::size_t>(port_of(Compass::East))]
             [static_cast<std::size_t>(node)] = dee[x];
    dead_end_[static_cast<std::size_t>(port_of(Compass::West))]
             [static_cast<std::size_t>(node)] = dew[x];
    dead_end_[static_cast<std::size_t>(port_of(Compass::North))]
             [static_cast<std::size_t>(node)] = den[y];
    dead_end_[static_cast<std::size_t>(port_of(Compass::South))]
             [static_cast<std::size_t>(node)] = des[y];
  }
  // Wave cost: the flags ripple one column/row per round; each boundary
  // crossing is one exchange per node in that column/row.
  return 2 * (w - 1) * h + 2 * (h - 1) * w;
}

int Nafta::compute_deactivation() {
  const auto n = static_cast<std::size_t>(mesh_->num_nodes());
  deactivated_.assign(n, 0);
  // A connected port is "blocked" if its link is unusable or it leads into a
  // faulty/deactivated node. A healthy node with two blocked ports forming a
  // corner (E+N, E+S, W+N, W+S) lies in a concave pocket and is deactivated;
  // iterating completes fault regions to convex (rectangular) shapes.
  int exchanges = 0;
  bool changed = true;
  settle_rounds_ = 0;
  while (changed) {
    changed = false;
    ++settle_rounds_;
    for (NodeId node = 0; node < mesh_->num_nodes(); ++node) {
      if (deactivated_[static_cast<std::size_t>(node)] ||
          faults_->node_faulty(node))
        continue;
      auto blocked = [&](Compass c) {
        const PortId p = port_of(c);
        const NodeId m = mesh_->neighbor(node, p);
        if (m == kInvalidNode) return false;  // borders are not faults
        if (!faults_->link_usable(node, p)) return true;
        return deactivated_[static_cast<std::size_t>(m)] != 0;
      };
      const bool e = blocked(Compass::East), w = blocked(Compass::West);
      const bool s = blocked(Compass::South), no = blocked(Compass::North);
      if ((e && no) || (e && s) || (w && no) || (w && s)) {
        deactivated_[static_cast<std::size_t>(node)] = 1;
        changed = true;
      }
    }
    exchanges += faults_->fault_free() ? 0 : mesh_->num_nodes();
    if (faults_->fault_free()) break;
  }
  return exchanges;
}

int Nafta::num_deactivated() const {
  int c = 0;
  for (const char d : deactivated_) c += d != 0;
  return c;
}

bool Nafta::transit_ok(NodeId neighbor, NodeId dest) const {
  if (neighbor == dest) return true;  // destinations are always approachable
  return !deactivated_[static_cast<std::size_t>(neighbor)];
}

void Nafta::add_escape(const RouteContext& ctx, RouteDecision& d) const {
  UpDownTable::Phase phase = UpDownTable::Phase::Up;
  const bool arrived_on_escape =
      ctx.in_vc == kEscapeVc && ctx.in_port >= 0 &&
      ctx.in_port < mesh_->degree();
  if (arrived_on_escape) {
    const NodeId prev = mesh_->neighbor(ctx.node, ctx.in_port);
    phase = escape_.is_up_move(prev, mesh_->reverse_port(ctx.node, ctx.in_port))
                ? UpDownTable::Phase::Up
                : UpDownTable::Phase::Down;
  }
  if (!escape_.reachable(ctx.node, ctx.dest)) return;
  // Fault-aware adaptivity ranks the escape layer last; a fault-blind
  // measure treats it like any other output and may drag traffic onto the
  // slow tree paths.
  const int prio = fault_aware_ ? -3 : 0;
  for (const PortId p : escape_.next_hops(ctx.node, ctx.dest, phase))
    d.candidates.push_back({p, kEscapeVc, prio});
}

RouteDecision Nafta::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(mesh_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(epoch_ == faults_->epoch(),
                 "stale NAFTA state: reconfigure() missed an epoch");
  RouteDecision d;
  const bool fault_free = faults_->fault_free();
  // Every decision — including local delivery — consults the fault state
  // once faults are known.
  d.steps = fault_free ? 1 : 2;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({mesh_->degree(), 0, 0});
    return d;
  }

  // Once a message is on the escape layer it stays there: allowing it back
  // onto adaptive channels would let blocked adaptive traffic occupy escape
  // buffers (an indirect dependency that breaks the Duato argument).
  if (ctx.in_vc == kEscapeVc && ctx.in_port >= 0 &&
      ctx.in_port < mesh_->degree()) {
    add_escape(ctx, d);
    return d;
  }

  // Minimal adaptive layer (identical to NARA), filtered by link health and
  // node deactivation.
  RouteDecision minimal;
  const bool from_network =
      ctx.in_port >= 0 && ctx.in_port < mesh_->degree();
  const VcId arrival_vc =
      from_network && (ctx.in_vc == 0 || ctx.in_vc == 1) ? ctx.in_vc
                                                         : kInvalidVc;
  Nara::minimal_candidates(*mesh_, ctx.node, ctx.dest, arrival_vc, minimal);
  for (const RouteCandidate& c : minimal.candidates) {
    if (!faults_->link_usable(ctx.node, c.port)) continue;
    if (!transit_ok(mesh_->neighbor(ctx.node, c.port), ctx.dest)) continue;
    d.candidates.push_back(c);
  }

  if (d.candidates.empty() && !fault_free) {
    // Misroute: third interpretation; mark the header (lifelock handling).
    d.steps = 3;
    d.mark_misrouted = true;
    const int dx = mesh_->x_of(ctx.dest) - mesh_->x_of(ctx.node);
    const int dy = mesh_->y_of(ctx.dest) - mesh_->y_of(ctx.node);
    const VcId net_vc = dy > 0 ? 1 : 0;
    for (PortId p = 0; p < mesh_->degree(); ++p) {
      if (p == ctx.in_port) continue;  // no immediate reversal
      if (!faults_->link_usable(ctx.node, p)) continue;
      const NodeId m = mesh_->neighbor(ctx.node, p);
      if (!transit_ok(m, ctx.dest)) continue;
      // Prefer detours that do not lead into a dead-end region relative to
      // the goal direction (fault-aware adaptivity only).
      int prio = -1;
      if (fault_aware_ &&
          ((dx > 0 && dead_end(m, Compass::East)) ||
           (dx < 0 && dead_end(m, Compass::West)) ||
           (dy > 0 && dead_end(m, Compass::North)) ||
           (dy < 0 && dead_end(m, Compass::South))))
        prio = -2;
      d.candidates.push_back({p, net_vc, prio});
    }
  }

  // The escape channel is only consulted in fault mode — fault-free NAFTA
  // behaves exactly like NARA (one interpretation, same candidates).
  if (!fault_free) add_escape(ctx, d);
  return d;
}

}  // namespace flexrouter
