// ROUTE_C — fault-tolerant routing for hypercubes [ChW96], reconstructed
// from the paper's description (see DESIGN.md §2):
//
//  * Node states {safe, ordinarily-unsafe, strongly-unsafe} computed from
//    neighbour health: a node with >= 2 faulty neighbours or faulty incident
//    links is strongly unsafe; a node with >= 2 unsafe-or-worse neighbours
//    is ordinarily unsafe. State combination is monotone in a finite
//    lattice, so the neighbour-exchange propagation settles quickly.
//    Routing avoids unsafe nodes in transit; the network keeps condition 3
//    while not "totally unsafe".
//  * Deadlock avoidance after [Kon90]: first all links with increasing
//    coordinates (0->1 bit flips, VC 0), afterwards decreasing ones (VC 1).
//  * Five virtual channels total: 2 base + 3 only needed for fault
//    tolerance (misroute channels 3 and 4, escape channel 2); the
//    stripped-down non-FT variant uses 2 VCs and one interpretation.
//  * Every decision costs two rule interpretations (decide_dir, decide_vc).
#pragma once

#include <vector>

#include "routing/updown.hpp"
#include "topology/hypercube.hpp"

namespace flexrouter {

enum class NodeState : std::uint8_t {
  Safe = 0,
  OrdinarilyUnsafe = 1,
  StronglyUnsafe = 2,
  Faulty = 3,
};

const char* to_string(NodeState s);

class RouteC final : public RoutingAlgorithm {
 public:
  static constexpr VcId kAscVc = 0;      // increasing-coordinate phase
  static constexpr VcId kDescVc = 1;     // decreasing-coordinate phase
  static constexpr VcId kEscapeVc = 2;   // up*/down* escape (FT only)
  static constexpr VcId kMisrouteVc0 = 3;
  static constexpr VcId kMisrouteVc1 = 4;

  std::string name() const override { return "route_c"; }
  int num_vcs() const override { return 5; }
  bool is_escape_vc(VcId vc) const override { return vc == kEscapeVc; }
  int max_path_len() const override { return max_path_len_; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  NodeState state(NodeId n) const {
    return states_[static_cast<std::size_t>(n)];
  }
  /// True when every healthy node is unsafe — the easily detected situation
  /// in which condition 3 can no longer be guaranteed (needs more than n-1
  /// faulty nodes).
  bool totally_unsafe() const;
  int num_unsafe() const;
  const UpDownTable& escape_table() const { return escape_; }

  /// Rounds the state propagation needed to reach its fixed point in the
  /// last reconfiguration — the paper: "the way in which error states are
  /// combined forms a partial order. Therefore the propagation scheme
  /// settles fast."
  int last_settle_rounds() const { return settle_rounds_; }

 private:
  bool transit_ok(NodeId neighbor, NodeId dest) const;
  void add_escape(const RouteContext& ctx, RouteDecision& d) const;

  const Hypercube* cube_ = nullptr;
  const FaultSet* faults_ = nullptr;
  UpDownTable escape_;
  std::vector<NodeState> states_;
  std::uint64_t epoch_ = 0;
  int max_path_len_ = 1 << 20;
  int settle_rounds_ = 0;
};

/// The stripped-down non-fault-tolerant variant: identical behaviour in a
/// fault-free network, 2 VCs, one interpretation per decision.
class StrippedRouteC final : public RoutingAlgorithm {
 public:
  std::string name() const override { return "route_c_nft"; }
  int num_vcs() const override { return 2; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// The Kon90 minimal candidate set shared with RouteC's fast path.
  static void minimal_candidates(const Hypercube& cube, NodeId node,
                                 NodeId dest, RouteDecision& d);

 private:
  const Hypercube* cube_ = nullptr;
};

}  // namespace flexrouter
