#include "routing/rule_driven.hpp"

#include <algorithm>

#include "ruleengine/parser.hpp"
#include "ruleengine/validate.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {

using rules::Value;

RuleDrivenRouting::RuleDrivenRouting(std::string program_source, int num_vcs,
                                     rules::ExecMode mode,
                                     std::string route_base, VcId escape_vc)
    : source_(std::move(program_source)),
      route_base_(std::move(route_base)),
      mode_(mode),
      vcs_(num_vcs),
      escape_vc_(escape_vc) {
  FR_REQUIRE(num_vcs >= 1);
  FR_REQUIRE(escape_vc < num_vcs);
}

int RuleDrivenRouting::reconfigure() {
  if (escape_vc_ < 0) return 0;
  return escape_.rebuild(*faults_);
}

std::string RuleDrivenRouting::name() const {
  return program_ ? "rule:" + program_->name : "rule:<unattached>";
}

void RuleDrivenRouting::attach(const Topology& topo, const FaultSet& faults) {
  topo_ = &topo;
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  faults_ = &faults;
  program_ = std::make_unique<rules::Program>(rules::parse_program(source_));
  rules::require_valid(*program_);  // reject kind errors before compiling
  if (escape_vc_ >= 0) escape_.rebuild(faults);
  FR_REQUIRE_MSG(program_->find_rule_base(route_base_) != nullptr,
                 "rule program lacks the decision rule base '" + route_base_ +
                     "'");
  machines_.clear();
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    auto em = std::make_unique<rules::EventManager>(*program_, mode_);
    // The input provider closes over the *algorithm*; the active context is
    // installed per decision.
    em->set_input_provider(
        [this](const std::string& input, const std::vector<Value>& idx) {
          FR_REQUIRE_MSG(active_ctx_ != nullptr,
                         "rule program read an input outside a decision");
          return input_value(*active_ctx_, input, idx);
        });
    machines_.push_back(std::move(em));
  }
}

rules::EventManager& RuleDrivenRouting::machine(NodeId n) const {
  FR_REQUIRE(topo_ != nullptr && topo_->valid_node(n));
  return *machines_[static_cast<std::size_t>(n)];
}

Value RuleDrivenRouting::input_value(const RouteContext& ctx,
                                     const std::string& name,
                                     const std::vector<Value>& idx) const {
  if (name == "node") return Value::make_int(ctx.node);
  if (name == "dest") return Value::make_int(ctx.dest);
  if (name == "src") return Value::make_int(ctx.src);
  if (name == "in_port") return Value::make_int(ctx.in_port);
  if (name == "in_vc")
    return Value::make_int(std::max<VcId>(ctx.in_vc, 0));
  if (name == "injected")
    return Value::make_bool(ctx.in_port < 0 || ctx.in_port >= topo_->degree());
  if (name == "path_len") return Value::make_int(ctx.path_len);
  if (name == "misrouted") return Value::make_bool(ctx.misrouted);
  if (name == "link_ok") {
    FR_REQUIRE_MSG(idx.size() == 1, "link_ok takes one direction index");
    const auto p = static_cast<PortId>(idx[0].as_int());
    if (p < 0 || p >= topo_->degree()) return Value::make_bool(false);
    return Value::make_bool(faults_->link_usable(ctx.node, p));
  }
  if (name == "dest_reachable")
    return Value::make_bool(connected(*faults_, ctx.node, ctx.dest));
  if (escape_vc_ >= 0) {
    const bool on_escape = ctx.in_vc == escape_vc_ && ctx.in_port >= 0 &&
                           ctx.in_port < topo_->degree();
    if (name == "on_escape") return Value::make_bool(on_escape);
    if (name == "escape_ok")
      return Value::make_bool(escape_.reachable(ctx.node, ctx.dest));
    if (name == "escape_port") {
      // Deterministic escape hop; the injection port signals "none".
      if (ctx.dest == ctx.node || !escape_.reachable(ctx.node, ctx.dest))
        return Value::make_int(topo_->degree());
      UpDownTable::Phase phase = UpDownTable::Phase::Up;
      if (on_escape) {
        const NodeId prev = topo_->neighbor(ctx.node, ctx.in_port);
        phase = escape_.is_up_move(
                    prev, topo_->reverse_port(ctx.node, ctx.in_port))
                    ? UpDownTable::Phase::Up
                    : UpDownTable::Phase::Down;
      }
      return Value::make_int(
          escape_.next_hops(ctx.node, ctx.dest, phase)[0]);
    }
  }
  if (mesh_ != nullptr && mesh_->dims() == 2) {
    if (name == "xpos") return Value::make_int(mesh_->x_of(ctx.node));
    if (name == "ypos") return Value::make_int(mesh_->y_of(ctx.node));
    if (name == "xdes") return Value::make_int(mesh_->x_of(ctx.dest));
    if (name == "ydes") return Value::make_int(mesh_->y_of(ctx.dest));
  }
  FR_REQUIRE_MSG(false, "rule program input '" + name +
                            "' is not in the host catalog");
  return Value::make_int(0);
}

RouteDecision RuleDrivenRouting::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(program_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(escape_vc_ < 0 ||
                     escape_.built_for_epoch() == faults_->epoch(),
                 "stale escape table: reconfigure() missed an epoch");
  rules::EventManager& em = machine(ctx.node);
  active_ctx_ = &ctx;

  RouteDecision d;
  auto add_candidate = [&](PortId port, VcId vc, int prio) {
    FR_REQUIRE_MSG(port >= 0 && port <= topo_->degree(),
                   "rule program produced an invalid port");
    FR_REQUIRE_MSG(vc >= 0 && vc < vcs_,
                   "rule program produced an invalid VC");
    d.candidates.push_back({port, vc, prio});
  };

  const auto interpretations_before = em.total_interpretations();
  em.set_host_handler([&](const std::string& event,
                          const std::vector<Value>& args) {
    if (event == "cand") {
      FR_REQUIRE_MSG(args.size() == 3, "!cand needs (port, vc, priority)");
      add_candidate(static_cast<PortId>(args[0].as_int()),
                    static_cast<VcId>(args[1].as_int()),
                    static_cast<int>(args[2].as_int()));
    }
    // Other events (e.g. state propagation to neighbours) are dropped by
    // this adapter; dedicated tests exercise them through the machines.
  });

  const rules::FireResult r = em.fire(route_base_, {});
  em.drain();

  if (r.returned) {
    PortId port;
    if (r.returned->is_int()) {
      port = static_cast<PortId>(r.returned->as_int());
    } else {
      const rules::RuleBase& rb = program_->rule_base(route_base_);
      FR_REQUIRE_MSG(rb.returns.has_value(),
                     "symbolic RETURN without a RETURNS domain");
      port = static_cast<PortId>(rb.returns->index_of(*r.returned));
    }
    // A RETURNed port means "any VC of that port".
    if (port == topo_->degree()) {
      add_candidate(port, 0, 0);
    } else {
      for (VcId v = 0; v < vcs_; ++v) add_candidate(port, v, 0);
    }
  }

  d.steps = static_cast<int>(em.total_interpretations() -
                             interpretations_before);
  active_ctx_ = nullptr;
  return d;
}

}  // namespace flexrouter
